/**
 * @file
 * Figure 15: POLCA parameter sweeps — (a) the T1 capping frequency
 * for low-priority workloads, (b) the fraction of low-priority
 * servers in the row.
 */

#include "analysis/table.hh"
#include "bench_common.hh"
#include "core/oversub_experiment.hh"

#include <iostream>

using namespace polca;
using namespace polca::core;

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseArgs(
        argc, argv, "Reproduces Fig 15: POLCA parameter sweeps");
    bench::banner(
        "Figure 15 -- Parameter sweeps for POLCA (+30% servers)",
        "(a) below 1275 MHz the LP SLO slips -> cap at the A100 base "
        "clock; (b) shrinking the LP pool pushes capping onto HP "
        "workloads");

    ExperimentConfig base;
    base.row.addedServerFraction = 0.30;
    base.duration = options.horizon(1.0, 7.0);
    base.seed = options.seed;
    ExperimentResult baseline =
        runOversubExperiment(unthrottledBaseline(base));

    std::printf("(a) T1 capping frequency for low priority\n");
    analysis::Table a({"T1 lock (MHz)", "LP p50", "LP p99", "HP p50",
                       "HP p99", "Brakes"});
    for (double mhz : {1350.0, 1300.0, 1275.0, 1250.0, 1200.0,
                       1150.0}) {
        ExperimentConfig config = base;
        config.policy = PolicyConfig::polca(0.80, 0.89, mhz);
        ExperimentResult result = runOversubExperiment(config);
        NormalizedLatency low =
            normalizeLatency(result.low, baseline.low);
        NormalizedLatency high =
            normalizeLatency(result.high, baseline.high);
        a.row()
            .cell(mhz, 0)
            .cell(low.p50, 3)
            .cell(low.p99, 3)
            .cell(high.p50, 3)
            .cell(high.p99, 3)
            .cell(static_cast<long long>(result.powerBrakeEvents));
    }
    a.print(std::cout);

    std::printf("\n(b) Low- to high-priority workload ratio\n");
    analysis::Table b({"LP share", "LP p50", "LP p99", "HP p50",
                       "HP p99", "Brakes"});
    for (double fraction : {0.10, 0.25, 0.36, 0.50, 0.75, 0.90}) {
        // Re-split every workload class so the cluster-wide LP
        // share of work is `fraction`; pools auto-balance to match.
        // Run at +35% where the reclaim margin is tight, so losing
        // low-priority headroom visibly pushes capping onto HP.
        ExperimentConfig config = base;
        config.row.addedServerFraction = 0.35;
        for (auto &w : config.mix)
            w.highPriorityFraction = 1.0 - fraction;
        ExperimentResult result = runOversubExperiment(config);
        ExperimentConfig ubase = unthrottledBaseline(config);
        ExperimentResult unthrottled = runOversubExperiment(ubase);
        NormalizedLatency low =
            normalizeLatency(result.low, unthrottled.low);
        NormalizedLatency high =
            normalizeLatency(result.high, unthrottled.high);
        b.row()
            .percentCell(fraction, 0)
            .cell(low.p50, 3)
            .cell(low.p99, 3)
            .cell(high.p50, 3)
            .cell(high.p99, 3)
            .cell(static_cast<long long>(result.powerBrakeEvents));
    }
    b.print(std::cout);

    std::printf("\nPaper anchors: 1275 MHz (A100 base clock) is the "
                "shallowest T1 lock that leaves LP within SLO;\n"
                "decreasing the LP share degrades HP p99 because "
                "there is less low-priority power to reclaim.\n");
    return 0;
}
