#include "bench_common.hh"

#include <algorithm>
#include <fstream>
#include <vector>

#include "analysis/csv.hh"
#include "sim/timeseries.hh"

namespace polca::bench {

void
exportSeriesCsv(const BenchOptions &options,
                const std::vector<std::string> &labels,
                const std::vector<const sim::TimeSeries *> &series,
                sim::Tick grid)
{
    if (options.csvPath.empty())
        return;
    if (labels.size() != series.size())
        sim::fatal("exportSeriesCsv: labels/series size mismatch");

    std::ofstream file(options.csvPath);
    if (!file)
        sim::fatal("cannot open '", options.csvPath, "' for writing");

    analysis::CsvWriter writer(file);
    std::vector<std::string> header{"time_s"};
    header.insert(header.end(), labels.begin(), labels.end());
    writer.header(header);

    sim::Tick start = sim::maxTick;
    sim::Tick end = 0;
    for (const sim::TimeSeries *s : series) {
        if (!s || s->empty())
            sim::fatal("exportSeriesCsv: null or empty series");
        start = std::min(start, s->startTime());
        end = std::max(end, s->endTime());
    }

    for (sim::Tick t = start; t <= end; t += grid) {
        std::vector<double> row{sim::ticksToSeconds(t)};
        for (const sim::TimeSeries *s : series)
            row.push_back(s->valueAt(t));
        writer.row(row);
    }
    std::printf("\n[exported %zu series to %s]\n", series.size(),
                options.csvPath.c_str());
}

} // namespace polca::bench
