/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrate: the
 * event kernel, the GPU power model, and an end-to-end simulated
 * cluster-hour, so performance regressions in the simulator itself
 * are visible.
 */

#include <benchmark/benchmark.h>

#include <tuple>
#include <utility>
#include <vector>

#include "core/oversub_experiment.hh"
#include "core/sweep_runner.hh"
#include "llm/phase_model.hh"
#include "obs/observability.hh"
#include "power/gpu_power_model.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/timeseries.hh"

using namespace polca;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue queue;
        int fired = 0;
        for (int i = 0; i < state.range(0); ++i)
            std::ignore = queue.schedule((i * 7919) % 100000, [&] { ++fired; });
        queue.runAll();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

/** Fire-and-forget fast path: no Handle, no control block. */
void
BM_EventQueuePostRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue queue;
        queue.reserve(static_cast<std::size_t>(state.range(0)));
        int fired = 0;
        for (int i = 0; i < state.range(0); ++i)
            queue.post((i * 7919) % 100000, [&] { ++fired; });
        queue.runAll();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueuePostRun)->Arg(1000)->Arg(100000);

void
BM_GpuPowerEvaluation(benchmark::State &state)
{
    power::GpuPowerModel gpu(power::GpuSpec::a100_80gb());
    gpu.setActivity({0.8, 0.6});
    gpu.lockClock(1200.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gpu.powerWatts());
    }
}
BENCHMARK(BM_GpuPowerEvaluation);

void
BM_CapControllerStep(benchmark::State &state)
{
    power::GpuPowerModel gpu(power::GpuSpec::a100_80gb());
    gpu.setActivity({1.05, 0.5});
    gpu.setPowerCap(325.0);
    for (auto _ : state) {
        gpu.stepCapController();
        benchmark::DoNotOptimize(gpu.effectiveClockMhz());
    }
}
BENCHMARK(BM_CapControllerStep);

void
BM_PhaseModelLatency(benchmark::State &state)
{
    llm::ModelCatalog catalog;
    llm::PhaseModel phases(catalog.byName("BLOOM-176B"));
    llm::InferenceConfig config;
    config.inputTokens = 2048;
    config.outputTokens = 512;
    for (auto _ : state) {
        benchmark::DoNotOptimize(phases.totalLatency(config));
    }
}
BENCHMARK(BM_PhaseModelLatency);

void
BM_TimeSeriesMaxRise(benchmark::State &state)
{
    sim::TimeSeries series;
    for (int i = 0; i < state.range(0); ++i) {
        series.add(i * 1000,
                   static_cast<double>((i * 2654435761u) % 1000));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            series.maxRiseWithin(sim::secondsToTicks(2)));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TimeSeriesMaxRise)->Arg(100000);

void
BM_ClusterHourEndToEnd(benchmark::State &state)
{
    sim::setQuiet(true);
    for (auto _ : state) {
        core::ExperimentConfig config;
        config.row.baseServers = static_cast<int>(state.range(0));
        config.row.addedServerFraction = 0.30;
        config.duration = sim::secondsToTicks(3600.0);
        config.seed = 9;
        core::ExperimentResult result =
            runOversubExperiment(config);
        benchmark::DoNotOptimize(result.lowCompletions);
    }
}
BENCHMARK(BM_ClusterHourEndToEnd)->Arg(10)->Arg(40)
    ->Unit(benchmark::kMillisecond);

/**
 * Same cluster-hour with a metrics sink attached and interval stats
 * snapshotting every simulated 60 s.  CI compares this against
 * BM_ClusterHourEndToEnd with a 2 % bench_compare threshold: the
 * observability pipeline must stay effectively free.
 */
void
BM_ClusterHourEndToEndIntervalStats(benchmark::State &state)
{
    sim::setQuiet(true);
    for (auto _ : state) {
        obs::Observability sink;
        core::ExperimentConfig config;
        config.row.baseServers = static_cast<int>(state.range(0));
        config.row.addedServerFraction = 0.30;
        config.duration = sim::secondsToTicks(3600.0);
        config.seed = 9;
        config.obs = &sink;
        config.obsOptions.metricsInterval = sim::secondsToTicks(60.0);
        core::ExperimentResult result =
            runOversubExperiment(config);
        benchmark::DoNotOptimize(result.lowCompletions);
        benchmark::DoNotOptimize(sink.interval.rows());
    }
}
BENCHMARK(BM_ClusterHourEndToEndIntervalStats)->Arg(10)->Arg(40)
    ->Unit(benchmark::kMillisecond);

/**
 * Site-mode end to end: a heterogeneous power-domain tree
 * (range(0) rows per group x two groups, 20 servers per row) for a
 * simulated 10 minutes.  Exercises the per-rack/row/site rollup
 * managers and breakers on top of the serving cells; CI gates it
 * with bench_compare like the flat cluster-hour run.
 */
void
BM_SiteEndToEnd(benchmark::State &state)
{
    sim::setQuiet(true);
    for (auto _ : state) {
        core::ExperimentConfig config;
        config.duration = sim::secondsToTicks(600.0);
        config.seed = 9;
        config.topology.enabled = true;
        config.topology.rowBudgetFraction = 0.9;
        cluster::TopologyRowGroup a100;
        a100.name = "a100";
        a100.rows = static_cast<int>(state.range(0));
        a100.racksPerRow = 2;
        a100.serversPerRack = 10;
        config.topology.groups.push_back(a100);
        cluster::TopologyRowGroup h100;
        h100.name = "h100";
        h100.rows = static_cast<int>(state.range(0));
        h100.racksPerRow = 2;
        h100.serversPerRack = 10;
        h100.server = "DGX-H100";
        h100.model = "Llama2-70B";
        config.topology.groups.push_back(h100);
        core::ExperimentResult result =
            runOversubExperiment(config);
        benchmark::DoNotOptimize(result.lowCompletions);
        benchmark::DoNotOptimize(result.domains.size());
    }
}
BENCHMARK(BM_SiteEndToEnd)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/**
 * Merged-cursor grid summation across range(0) server-power series
 * of 10k samples each (the hot loop behind every per-domain rollup
 * in the results pipeline).  SetItemsProcessed reports
 * series x samples so items/s stays comparable across Arg values.
 */
void
BM_SumOnGrid(benchmark::State &state)
{
    const int count = static_cast<int>(state.range(0));
    const int samples = 10000;
    std::vector<sim::TimeSeries> series(
        static_cast<std::size_t>(count));
    std::vector<const sim::TimeSeries *> sources;
    for (int s = 0; s < count; ++s) {
        series[static_cast<std::size_t>(s)].reserve(samples);
        for (int i = 0; i < samples; ++i) {
            // Offset per series so sample times interleave off-grid.
            series[static_cast<std::size_t>(s)].add(
                i * 2000 + s * 7,
                static_cast<double>((i * 2654435761u + s) % 1000));
        }
        sources.push_back(&series[static_cast<std::size_t>(s)]);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::sumOnGrid(sources, 2000).size());
    }
    state.SetItemsProcessed(state.iterations() * count * samples);
}
BENCHMARK(BM_SumOnGrid)->Arg(8)->Arg(64);

/**
 * Checkpoint/branch sweep execution against full re-simulation: the
 * same two-point policy sweep plus per-point baselines, where all
 * four runs share a 3000 s warmup prefix of a 3600 s horizon.
 * Arg(0) runs every point from scratch (4 x 3600 simulated
 * seconds); Arg(1) simulates the warmup once and forks the other
 * three runs from the in-memory snapshot (3000 + 4 x 600).  The
 * branched variant must stay >= 2x faster; CI gates both rows via
 * tools/bench_compare against BENCH_simperf.json.
 */
void
BM_SweepBranchVsFull(benchmark::State &state)
{
    sim::setQuiet(true);
    const bool branch = state.range(0) == 1;
    auto makeConfig = [](core::PolicyConfig policy) {
        core::ExperimentConfig config;
        config.row.baseServers = 10;
        config.row.addedServerFraction = 0.30;
        config.duration = sim::secondsToTicks(3600.0);
        config.warmup = sim::secondsToTicks(3000.0);
        config.seed = 9;
        config.policy = std::move(policy);
        return config;
    };
    for (auto _ : state) {
        std::vector<core::SweepPoint> points;
        points.push_back(
            {"polca", makeConfig(core::PolicyConfig::polca()),
             "shared-warmup"});
        points.push_back(
            {"1tlp",
             makeConfig(core::PolicyConfig::oneThreshLowPri()),
             "shared-warmup"});
        core::SweepOptions options;
        options.runBaseline = true;
        options.echoProgress = false;
        options.branch = branch;
        core::SweepRunner runner(std::move(points), options);
        benchmark::DoNotOptimize(runner.run().size());
    }
}
BENCHMARK(BM_SweepBranchVsFull)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
