/** @file Table 6: workload distribution and SLOs. */

#include "analysis/table.hh"
#include "bench_common.hh"
#include "llm/phase_model.hh"
#include "workload/trace_gen.hh"

#include <iostream>

int
main(int argc, char **argv)
{
    using namespace polca;
    bench::parseArgs(argc, argv,
                     "Reproduces Table 6: workload mix and SLOs");
    bench::banner(
        "Table 6 -- Workload distribution and SLOs",
        "Summarize 2048-8192/256-512 25% low; Search 512-2048/"
        "1024-2048 25% high; Chat 2048-4096/128-2048 50% 50:50");

    analysis::Table mix({"Workload", "Prompt size", "Output size",
                         "Traffic", "Priority", "Mean service (s)"});
    workload::TraceGenerator generator;
    llm::ModelCatalog catalog;
    llm::PhaseModel phases(catalog.byName("BLOOM-176B"));
    for (const auto &w : generator.mix()) {
        llm::InferenceConfig config;
        config.inputTokens = (w.promptMin + w.promptMax) / 2;
        config.outputTokens = (w.outputMin + w.outputMax) / 2;
        std::string priority = w.highPriorityFraction == 0.0 ? "Low"
            : w.highPriorityFraction == 1.0 ? "High" : "50:50";
        mix.row()
            .cell(w.name)
            .cell(std::to_string(w.promptMin) + "-" +
                  std::to_string(w.promptMax))
            .cell(std::to_string(w.outputMin) + "-" +
                  std::to_string(w.outputMax))
            .percentCell(w.trafficFraction, 0)
            .cell(priority)
            .cell(sim::ticksToSeconds(phases.totalLatency(config)), 1);
    }
    mix.print(std::cout);

    workload::SloSpec slos = workload::paperSlos();
    std::printf("\nSLOs (normalized to unthrottled latency):\n");
    analysis::Table slo({"Metric", "High priority", "Low priority"});
    slo.row().cell("p50 latency impact")
        .cell("< " + analysis::formatPercent(slos.hpP50Limit - 1.0, 0))
        .cell("< " +
              analysis::formatPercent(slos.lpP50Limit - 1.0, 0));
    slo.row().cell("p99 latency impact")
        .cell("< " + analysis::formatPercent(slos.hpP99Limit - 1.0, 0))
        .cell("< " +
              analysis::formatPercent(slos.lpP99Limit - 1.0, 0));
    slo.row().cell("Power brake events").cell("0").cell("0");
    slo.print(std::cout);

    std::printf("\nLow-priority share of total work: %.1f%% (pool "
                "sizing uses work share, not request share).\n",
                generator.lowPriorityWorkShare(phases) * 100.0);
    return 0;
}
