/**
 * @file
 * Figure 10: (a) peak power vs performance reduction across models
 * under SM frequency locking; (b) BLOOM sensitivity across
 * input/batch configurations; (c) performance vs SM frequency.
 */

#include "analysis/table.hh"
#include "bench_common.hh"
#include "llm/phase_model.hh"
#include "power/gpu_power_model.hh"

#include <iostream>

using namespace polca;

namespace {

struct Point
{
    double peakReduction;   ///< vs unthrottled prompt peak
    double perfReduction;   ///< vs unthrottled end-to-end latency
};

Point
measure(const llm::ModelSpec &model, const llm::InferenceConfig &config,
        double lockMhz)
{
    llm::PhaseModel phases(model);
    power::GpuPowerModel gpu(power::GpuSpec::a100_80gb());

    gpu.setActivity(phases.promptActivity(config));
    double basePeak = gpu.powerWatts();
    sim::Tick baseLatency = phases.latencyAtClock(config, gpu);

    gpu.lockClock(lockMhz);
    double peak = gpu.powerWatts();
    sim::Tick latency = phases.latencyAtClock(config, gpu);

    return {1.0 - peak / basePeak,
            1.0 - static_cast<double>(baseLatency) /
                static_cast<double>(latency)};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv,
                     "Reproduces Fig 10: frequency-lock sensitivity");
    bench::banner(
        "Figure 10 -- Peak power vs. performance reduction under SM "
        "frequency locking",
        "Superlinear: up to ~20% peak power for <=7% perf loss; "
        "GPT-NeoX ~0% loss, BLOOM ~5% at ~13% power reduction");

    llm::ModelCatalog catalog;
    llm::InferenceConfig defaultConfig;
    defaultConfig.inputTokens = 2048;
    defaultConfig.outputTokens = 512;

    std::printf("(a) All models (input=2048, output=512, batch=1)\n");
    analysis::Table a({"Model", "SM MHz", "Peak power reduction",
                       "Perf reduction"});
    for (const std::string &name : catalog.inferenceModelNames()) {
        const llm::ModelSpec &model = catalog.byName(name);
        for (double mhz : {1400.0, 1300.0, 1200.0, 1100.0}) {
            Point p = measure(model, defaultConfig, mhz);
            a.row().cell(name).cell(mhz, 0)
                .percentCell(p.peakReduction)
                .percentCell(p.perfReduction);
        }
    }
    a.print(std::cout);

    std::printf("\n(b) BLOOM across configurations\n");
    analysis::Table b({"Config", "SM MHz", "Peak power reduction",
                       "Perf reduction"});
    const llm::ModelSpec &bloom = catalog.byName("BLOOM-176B");
    struct NamedConfig
    {
        const char *label;
        int input;
        int batch;
    };
    for (const NamedConfig &nc :
         {NamedConfig{"b=1 i=512", 512, 1},
          NamedConfig{"b=1 i=2048", 2048, 1},
          NamedConfig{"b=1 i=8192", 8192, 1},
          NamedConfig{"b=16 i=512", 512, 16}}) {
        llm::InferenceConfig config;
        config.inputTokens = nc.input;
        config.batchSize = nc.batch;
        config.outputTokens = 512;
        for (double mhz : {1300.0, 1100.0}) {
            Point p = measure(bloom, config, mhz);
            b.row().cell(nc.label).cell(mhz, 0)
                .percentCell(p.peakReduction)
                .percentCell(p.perfReduction);
        }
    }
    b.print(std::cout);

    std::printf("\n(c) Performance vs SM frequency (BLOOM, "
                "i=2048 o=512 b=1)\n");
    analysis::Table c({"SM MHz", "Relative performance"});
    for (double mhz = 1100.0; mhz <= 1410.0; mhz += 50.0) {
        Point p = measure(bloom, defaultConfig, mhz);
        c.row().cell(mhz, 0).cell(1.0 - p.perfReduction, 4);
    }
    c.print(std::cout);

    std::printf("\n");
    Point neox = measure(catalog.byName("GPT-NeoX-20B"),
                         defaultConfig, 1200.0);
    Point bloomPt = measure(bloom, defaultConfig, 1200.0);
    bench::compare("GPT-NeoX perf loss at ~13% power reduction",
                   "~0%", neox.perfReduction * 100.0, "%");
    bench::compare("BLOOM perf loss at ~13% power reduction", "~5%",
                   bloomPt.perfReduction * 100.0, "%");
    Point near = measure(bloom, defaultConfig, 1305.0);
    bench::compare("perf loss ~100MHz below max", "<2%",
                   near.perfReduction * 100.0, "%");
    return 0;
}
