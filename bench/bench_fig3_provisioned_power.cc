/** @file Figure 3: provisioned power breakdown of a DGX server. */

#include "analysis/ascii_chart.hh"
#include "analysis/table.hh"
#include "bench_common.hh"
#include "power/server_model.hh"

#include <iostream>

int
main(int argc, char **argv)
{
    using namespace polca;
    bench::parseArgs(
        argc, argv,
        "Reproduces Fig 3: provisioned power per server component");
    bench::banner(
        "Figure 3 -- Provisioned power (8xA100-80GB server)",
        "~50% of provisioned power for GPUs, fans ~25% (Section 5); "
        "6500 W rated");

    power::ServerSpec spec = power::ServerSpec::dgxA100_80gb();
    auto breakdown = spec.provisionedBreakdown();

    analysis::Table table({"Component", "Watts", "Share"});
    std::vector<std::string> labels;
    std::vector<double> values;
    for (const auto &[name, watts] : breakdown) {
        table.row().cell(name).cell(watts, 0).percentCell(
            watts / spec.ratedPowerWatts);
        labels.push_back(name);
        values.push_back(watts);
    }
    table.row().cell("Total").cell(spec.ratedPowerWatts, 0)
        .percentCell(1.0);
    table.print(std::cout);

    std::printf("\n%s\n",
                analysis::asciiBars(labels, values, 50).c_str());

    bench::compare("GPU share of provisioned power", "~50%",
                   spec.provisionedGpuWatts() / spec.ratedPowerWatts);
    bench::compare("Fan share of provisioned power", "~25%",
                   spec.provisionedFansWatts / spec.ratedPowerWatts);
    return 0;
}
