/**
 * @file
 * Figure 9: BLOOM inference (input=8192, output=128, batch=1) under
 * no cap, a 325 W power cap, and a 1.1 GHz frequency lock.
 */

#include "analysis/ascii_chart.hh"
#include "analysis/table.hh"
#include "bench_common.hh"
#include "llm/executor.hh"
#include "llm/phase_model.hh"
#include "llm/segments.hh"
#include "power/server_model.hh"

#include <iostream>

using namespace polca;

namespace {

enum class Knob
{
    NoCap,
    PowerCap325,
    Lock1100,
};

sim::TimeSeries
run(Knob knob, double *latencySeconds)
{
    llm::ModelCatalog catalog;
    const llm::ModelSpec &model = catalog.byName("BLOOM-176B");
    llm::PhaseModel phases(model);
    llm::InferenceConfig config;
    config.inputTokens = 8192;
    config.outputTokens = 128;
    config.batchSize = 1;

    power::ServerModel server(power::ServerSpec::dgxA100_80gb());
    if (knob == Knob::PowerCap325)
        server.setPowerCapAll(325.0);
    else if (knob == Knob::Lock1100)
        server.lockClockAll(1100.0);

    llm::SegmentExecutor exec(server, {0, 1, 2, 3, 4, 5, 6, 7});
    auto segments = llm::inferenceSegments(phases, config);
    sim::Tick total = 0;
    for (int request = 0; request < 3; ++request) {
        total += exec.run(segments);
        exec.idle(sim::msToTicks(500));
    }
    *latencySeconds = sim::ticksToSeconds(total) / 3.0;
    return exec.firstGpuPowerSeries().scaled(1.0 / 400.0);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv,
                     "Reproduces Fig 9: capping vs locking on BLOOM "
                     "inference");
    bench::banner(
        "Figure 9 -- Power capping / frequency locking on BLOOM "
        "inference (in=8192, out=128, b=1)",
        "Reactive caps let prompt peaks through; locks bound the "
        "whole series but slow the entire request (Insight 7)");

    analysis::Table table({"Knob", "Peak (xTDP)", "Cap (xTDP)",
                           "Latency (s)", "Latency vs no cap"});

    double baseLatency = 0.0;
    for (Knob knob : {Knob::NoCap, Knob::PowerCap325, Knob::Lock1100}) {
        double latency = 0.0;
        sim::TimeSeries series = run(knob, &latency);
        if (knob == Knob::NoCap)
            baseLatency = latency;
        const char *label = knob == Knob::NoCap ? "(a) no cap"
            : knob == Knob::PowerCap325 ? "(b) 325W cap"
                                        : "(c) 1.1GHz lock";
        table.row()
            .cell(label)
            .cell(series.maxValue(), 3)
            .cell(knob == Knob::PowerCap325 ? "0.81" : "-")
            .cell(latency, 2)
            .cell(latency / baseLatency, 3);

        analysis::ChartOptions options;
        options.title = std::string("  ") + label +
            " -- GPU power / TDP:";
        options.height = 9;
        options.width = 90;
        std::cout << analysis::asciiChart(series, options) << "\n";
    }
    table.print(std::cout);

    double capLatency = 0.0, lockLatency = 0.0;
    sim::TimeSeries capped = run(Knob::PowerCap325, &capLatency);
    run(Knob::Lock1100, &lockLatency);
    std::printf("\n");
    bench::compare("capped series still spikes above cap", "> 0.81",
                   capped.maxValue(), " xTDP");
    bench::compare("lock slows request end-to-end", "> 1.0",
                   lockLatency / baseLatency, "x");
    return 0;
}
