/**
 * @file
 * Figure 17: POLCA's dual-threshold policy vs. 1-Thresh-Low-Pri,
 * 1-Thresh-All, and No-cap at +30% oversubscription, with and
 * without the +5% workload power intensification.
 */

#include "analysis/table.hh"
#include "bench_common.hh"
#include "core/oversub_experiment.hh"

#include <iostream>

using namespace polca;
using namespace polca::core;

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseArgs(
        argc, argv, "Reproduces Fig 17: policy comparison at +30%");
    bench::banner(
        "Figure 17 -- Policy comparison at 30% oversubscription "
        "(values normalized to the unthrottled baseline)",
        "1-Thresh-Low-Pri misses LP SLOs; 1-Thresh-All breaches both "
        "p99 SLOs; No-cap matches POLCA normally but is fragile "
        "under +5% power");

    const std::vector<std::pair<const char *, PolicyConfig>> policies{
        {"POLCA", PolicyConfig::polca()},
        {"1-Thresh-Low-Pri", PolicyConfig::oneThreshLowPri()},
        {"1-Thresh-All", PolicyConfig::oneThreshAll()},
        {"No-cap", PolicyConfig::noCap()},
    };

    workload::SloSpec slos = workload::paperSlos();

    for (double powerScale : {1.0, 1.05}) {
        std::printf("\n%s workload power\n",
                    powerScale == 1.0 ? "Default" : "+5%");

        ExperimentConfig base;
        base.row.addedServerFraction = 0.30;
        base.duration = options.horizon(2.0, 35.0);
        base.seed = options.seed;
        base.powerScaleFactor = powerScale;
        ExperimentResult baseline =
            runOversubExperiment(unthrottledBaseline(base));

        analysis::Table table({"Policy", "LP p50", "HP p50", "LP p99",
                               "HP p99", "LP max", "HP max",
                               "Brakes", "SLOs"});
        for (const auto &[name, policy] : policies) {
            ExperimentConfig config = base;
            config.policy = policy;
            ExperimentResult result = runOversubExperiment(config);
            NormalizedLatency low =
                normalizeLatency(result.low, baseline.low);
            NormalizedLatency high =
                normalizeLatency(result.high, baseline.high);
            table.row()
                .cell(name)
                .cell(low.p50, 3)
                .cell(high.p50, 3)
                .cell(low.p99, 3)
                .cell(high.p99, 3)
                .cell(low.max, 2)
                .cell(high.max, 2)
                .cell(static_cast<long long>(result.powerBrakeEvents))
                .cell(meetsSlos(low, high, result.powerBrakeEvents,
                                slos)
                          ? "yes" : "no");
        }
        table.print(std::cout);
    }

    std::printf("\nPaper conclusion: only POLCA meets all SLOs in "
                "both scenarios; it is the most robust to workload "
                "power drift.\n");
    return 0;
}
