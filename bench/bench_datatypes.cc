/**
 * @file
 * Section 4.2 "Impact of datatypes" (Insight 6): Llama2-70B and
 * Llama2-13B with FP32/FP16/INT8 weights — GPUs required, latency,
 * and peak/mean power.  Quantization shrinks deployments and power
 * but does not change the prompt/token phase asymmetry.
 */

#include "analysis/table.hh"
#include "bench_common.hh"
#include "llm/phase_model.hh"
#include "power/gpu_power_model.hh"

#include <iostream>

using namespace polca;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv,
                     "Reproduces the Section 4.2 datatype study");
    bench::banner(
        "Section 4.2 -- Impact of datatypes (Insight 6)",
        "Llama2-70B: 4 GPUs at FP32, 2 at INT8; FP16 fastest and "
        "highest peak (tensor cores); quantization cuts deployment "
        "power, phases stay asymmetric");

    llm::ModelCatalog catalog;
    llm::InferenceConfig config;
    config.inputTokens = 2048;
    config.outputTokens = 256;

    analysis::Table table(
        {"Model", "Datatype", "GPUs", "Latency (s)",
         "Peak W/GPU", "Token W/GPU", "Deployment peak (W)"});

    for (const char *name : {"Llama2-13B", "Llama2-70B"}) {
        llm::PhaseModel phases(catalog.byName(name));
        for (llm::Datatype datatype :
             {llm::Datatype::FP32, llm::Datatype::FP16,
              llm::Datatype::INT8}) {
            llm::InferenceConfig c = config;
            c.datatype = datatype;

            power::GpuPowerModel gpu(power::GpuSpec::a100_80gb());
            gpu.setActivity(phases.promptActivity(c));
            double peak = gpu.powerWatts();
            gpu.setActivity(phases.tokenActivity(c));
            double token = gpu.powerWatts();
            int gpus = phases.numGpus(c);

            table.row()
                .cell(std::string(name))
                .cell(llm::toString(datatype))
                .cell(static_cast<long long>(gpus))
                .cell(sim::ticksToSeconds(phases.totalLatency(c)), 2)
                .cell(peak, 0)
                .cell(token, 0)
                .cell(peak * gpus, 0);
        }
    }
    table.print(std::cout);

    // Anchors.
    llm::PhaseModel llama70(catalog.byName("Llama2-70B"));
    llm::InferenceConfig fp32 = config;
    fp32.datatype = llm::Datatype::FP32;
    llm::InferenceConfig fp16 = config;
    llm::InferenceConfig int8 = config;
    int8.datatype = llm::Datatype::INT8;

    std::printf("\n");
    bench::compare("Llama2-70B GPUs at FP32", "4 (paper)",
                   llama70.numGpus(fp32));
    bench::compare("Llama2-70B GPUs at INT8", "2 (paper)",
                   llama70.numGpus(int8));
    bench::compare(
        "FP16 vs FP32 latency", "FP16 much faster",
        static_cast<double>(llama70.totalLatency(fp32)) /
            static_cast<double>(llama70.totalLatency(fp16)),
        "x");
    bench::compare(
        "INT8 deployment peak vs FP16", "< 1.0 (fewer GPUs)",
        [&] {
            power::GpuPowerModel gpu(power::GpuSpec::a100_80gb());
            gpu.setActivity(llama70.promptActivity(int8));
            double int8Peak =
                gpu.powerWatts() * llama70.numGpus(int8);
            gpu.setActivity(llama70.promptActivity(fp16));
            double fp16Peak =
                gpu.powerWatts() * llama70.numGpus(fp16);
            return int8Peak / fp16Peak;
        }(),
        "x");
    std::printf("\nInsight 6: quantization reduces model sizes and "
                "power, enabling more workloads under a budget, but "
                "the prompt/token asymmetry persists.\n");
    return 0;
}
