/** @file Table 3: the characterized LLM workloads. */

#include "analysis/table.hh"
#include "bench_common.hh"
#include "llm/model_spec.hh"

#include <iostream>

int
main(int argc, char **argv)
{
    using namespace polca;
    bench::parseArgs(argc, argv,
                     "Reproduces Table 3: characterized LLMs");
    bench::banner(
        "Table 3 -- LLM workloads that we characterize",
        "Encoder RoBERTa 355M/1; Decoder Llama2 13B/70B, GPT-NeoX "
        "20B/2, OPT 30B/4, BLOOM 176B/8; Enc-Dec Flan-T5 XXL 11B/1");

    llm::ModelCatalog catalog;
    analysis::Table table({"Category", "Model", "#Params (B)",
                           "#Inference GPUs", "Fine-tuned here"});
    for (const auto &model : catalog.models()) {
        table.row()
            .cell(llm::toString(model.architecture))
            .cell(model.name)
            .cell(model.paramsBillions, 3)
            .cell(static_cast<long long>(model.inferenceGpus))
            .cell(model.trainable ? "yes" : "no (inference only)");
    }
    table.print(std::cout);
    return 0;
}
