/**
 * @file
 * Ablations of POLCA's design choices (DESIGN.md section 5):
 *  1. hysteresis gap (uncap offset below the cap threshold),
 *  2. telemetry decision smoothing,
 *  3. OOB command latency,
 *  4. derated provisioning depth,
 *  5. phase-aware token clocks,
 *  6. workload-aware lock frequencies,
 *  7. padded batching (Insight 5),
 *  8. SMBPBI failure injection.

 */

#include "analysis/table.hh"
#include "bench_common.hh"
#include "core/oversub_experiment.hh"
#include "core/workload_aware.hh"

#include <iostream>

using namespace polca;
using namespace polca::core;

namespace {

PolicyConfig
polcaWithGap(double gap)
{
    PolicyConfig policy = PolicyConfig::polca();
    for (auto &rule : policy.rules)
        rule.uncapFraction = rule.capFraction - gap;
    return policy;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseArgs(
        argc, argv, "Ablates POLCA design choices");
    bench::banner(
        "Ablations -- POLCA design choices at +30% servers",
        "Hysteresis gap and decision smoothing prevent cap/uncap "
        "thrash; 40s OOB latency forces the conservative T2 margin");

    ExperimentConfig base;
    base.row.addedServerFraction = 0.30;
    base.duration = options.horizon(0.5, 7.0);
    base.seed = options.seed;

    std::printf("(1) Hysteresis gap (uncap offset below cap)\n");
    analysis::Table gapTable({"Gap", "Cap cmds", "Uncap cmds",
                              "Brakes", "LP locked (h)"});
    for (double gap : {0.01, 0.03, 0.05, 0.08}) {
        ExperimentConfig config = base;
        config.policy = polcaWithGap(gap);
        ExperimentResult r = runOversubExperiment(config);
        gapTable.row()
            .percentCell(gap, 0)
            .cell(static_cast<long long>(r.capCommands))
            .cell(static_cast<long long>(r.uncapCommands))
            .cell(static_cast<long long>(r.powerBrakeEvents))
            .cell(sim::ticksToSeconds(r.lpLockedTicks) / 3600.0, 2);
    }
    gapTable.print(std::cout);

    std::printf("\n(2) Telemetry decision smoothing window\n");
    analysis::Table smoothTable({"Window (s)", "Cap cmds",
                                 "Uncap cmds", "Brakes"});
    for (double window : {2.0, 10.0, 30.0, 60.0}) {
        ExperimentConfig config = base;
        config.manager.decisionSmoothingWindow =
            sim::secondsToTicks(window);
        ExperimentResult r = runOversubExperiment(config);
        smoothTable.row()
            .cell(window, 0)
            .cell(static_cast<long long>(r.capCommands))
            .cell(static_cast<long long>(r.uncapCommands))
            .cell(static_cast<long long>(r.powerBrakeEvents));
    }
    smoothTable.print(std::cout);

    std::printf("\n(3) OOB capping command latency\n");
    analysis::Table latencyTable({"OOB latency (s)", "Brakes",
                                  "Max util", "LP p99 (s)"});
    for (double latency : {5.0, 20.0, 40.0, 80.0}) {
        ExperimentConfig config = base;
        config.manager.oobCommandLatency =
            sim::secondsToTicks(latency);
        ExperimentResult r = runOversubExperiment(config);
        latencyTable.row()
            .cell(latency, 0)
            .cell(static_cast<long long>(r.powerBrakeEvents))
            .percentCell(r.maxUtilization)
            .cell(r.low.p99, 1);
    }
    latencyTable.print(std::cout);

    std::printf("\n(4) Provisioned budget per base server "
                "(derating depth)\n");
    analysis::Table budgetTable({"Budget (W/server)", "Mean util",
                                 "Max util", "Brakes",
                                 "LP locked (h)"});
    for (double budget : {4500.0, 4950.0, 5400.0, 5850.0, 6500.0}) {
        ExperimentConfig config = base;
        config.row.provisionedPerServerWatts = budget;
        ExperimentResult r = runOversubExperiment(config);
        budgetTable.row()
            .cell(budget, 0)
            .percentCell(r.meanUtilization)
            .percentCell(r.maxUtilization)
            .cell(static_cast<long long>(r.powerBrakeEvents))
            .cell(sim::ticksToSeconds(r.lpLockedTicks) / 3600.0, 2);
    }
    budgetTable.print(std::cout);

    std::printf("\n(5) Phase-aware power management (Section 5.2): "
                "token phases at a lower clock\n");
    analysis::Table phaseTable({"Token clock", "Mean util",
                                "Max util", "LP p50", "LP p99",
                                "Brakes"});
    {
        ExperimentResult unthrottled =
            runOversubExperiment(unthrottledBaseline(base));
        for (double mhz : {0.0, 1350.0, 1275.0, 1200.0}) {
            ExperimentConfig config = base;
            config.row.phaseAwareTokenClockMhz = mhz;
            ExperimentResult r = runOversubExperiment(config);
            NormalizedLatency low =
                normalizeLatency(r.low, unthrottled.low);
            phaseTable.row()
                .cell(mhz > 0.0
                          ? analysis::formatFixed(mhz, 0) + " MHz"
                          : std::string("off"))
                .percentCell(r.meanUtilization)
                .percentCell(r.maxUtilization)
                .cell(low.p50, 3)
                .cell(low.p99, 3)
                .cell(static_cast<long long>(r.powerBrakeEvents));
        }
    }
    phaseTable.print(std::cout);
    std::printf("  Token phases are memory bound: a lower token "
                "clock trims the power floor for little latency.\n");

    std::printf("\n(6) Workload-aware lock frequencies "
                "(Section 6.7) vs Table 5 constants\n");
    {
        analysis::Table awareTable(
            {"Policy", "T1/T2-LP/T2-HP locks", "Brakes",
             "Mean util", "LP p99 (s)"});
        llm::ModelCatalog catalog;
        for (bool aware : {false, true}) {
            ExperimentConfig config = base;
            config.policy = aware
                ? workloadAwarePolicy(catalog.byName("BLOOM-176B"))
                : PolicyConfig::polca();
            ExperimentResult r = runOversubExperiment(config);
            std::string locks;
            for (const auto &rule : config.policy.rules) {
                if (!locks.empty())
                    locks += "/";
                locks += analysis::formatFixed(rule.lockMhz, 0);
            }
            awareTable.row()
                .cell(aware ? "workload-aware" : "Table 5 constants")
                .cell(locks)
                .cell(static_cast<long long>(r.powerBrakeEvents))
                .percentCell(r.meanUtilization)
                .cell(r.low.p99, 1);
        }
        awareTable.print(std::cout);
        std::printf("  Derived frequencies land near the paper's "
                    "constants for BLOOM; clock-insensitive models "
                    "would cap far deeper.\n");
    }

    std::printf("\n(7) Batching as a knob (Insight 5): padded "
                "batches at +30%% servers\n");
    {
        analysis::Table batchTable({"Max batch", "LP p50 (s)",
                                    "LP p99 (s)", "Mean util",
                                    "Max util", "Brakes"});
        for (std::size_t maxBatch : {1u, 2u, 4u}) {
            ExperimentConfig config = base;
            config.row.maxBatchSize = maxBatch;
            config.row.bufferSize = std::max<std::size_t>(
                maxBatch, config.row.bufferSize);
            ExperimentResult r = runOversubExperiment(config);
            batchTable.row()
                .cell(static_cast<long long>(maxBatch))
                .cell(r.low.p50, 1)
                .cell(r.low.p99, 1)
                .percentCell(r.meanUtilization)
                .percentCell(r.maxUtilization)
                .cell(static_cast<long long>(r.powerBrakeEvents));
        }
        batchTable.print(std::cout);
        std::printf("  Batching absorbs queueing at the cost of "
                    "higher peak power per server (Fig 8c).\n");
    }

    std::printf("\n(8) SMBPBI silent-failure injection "
                "(guardrail check)\n");
    analysis::Table failTable({"Failure prob", "Re-issued cmds",
                               "Brakes", "LP p99 (s)"});
    for (double p : {0.0, 0.1, 0.3, 0.5}) {
        ExperimentConfig config = base;
        config.manager.smbpbiFailureProbability = p;
        ExperimentResult r = runOversubExperiment(config);
        failTable.row()
            .percentCell(p, 0)
            .cell(static_cast<long long>(r.reissuedCommands))
            .cell(static_cast<long long>(r.powerBrakeEvents))
            .cell(r.low.p99, 1);
    }
    failTable.print(std::cout);
    return 0;
}
