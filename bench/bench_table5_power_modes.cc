/** @file Table 5: POLCA power modes per threshold and priority. */

#include "analysis/table.hh"
#include "bench_common.hh"
#include "core/policy.hh"

#include <iostream>

int
main(int argc, char **argv)
{
    using namespace polca;
    bench::parseArgs(argc, argv,
                     "Reproduces Table 5: POLCA power modes");
    bench::banner(
        "Table 5 -- Power modes for low and high priority workloads",
        "T1: LP locked to 1275 MHz; T2: LP to 1110 MHz, HP to "
        "1305 MHz; power brake: 288 MHz for everyone");

    core::PolicyConfig policy = core::PolicyConfig::polca();

    analysis::Table table({"Mode", "Trigger (row util)",
                           "Release", "Low priority",
                           "High priority"});
    table.row().cell("Uncapped").cell("-").cell("-")
        .cell("uncapped").cell("uncapped");
    table.row().cell("Threshold T1")
        .percentCell(policy.rules[0].capFraction, 0)
        .percentCell(policy.rules[0].uncapFraction, 0)
        .cell(analysis::formatFixed(policy.rules[0].lockMhz, 0) +
              " MHz lock")
        .cell("uncapped");
    table.row().cell("Threshold T2")
        .percentCell(policy.rules[1].capFraction, 0)
        .percentCell(policy.rules[1].uncapFraction, 0)
        .cell(analysis::formatFixed(policy.rules[1].lockMhz, 0) +
              " MHz lock")
        .cell(analysis::formatFixed(policy.rules[2].lockMhz, 0) +
              " MHz lock");
    table.row().cell("Power brake")
        .percentCell(policy.powerBrakeFraction, 0)
        .percentCell(policy.powerBrakeReleaseFraction, 0)
        .cell("288 MHz").cell("288 MHz");
    table.print(std::cout);

    std::printf("\nEscalation is staged: rules engage one per 2 s "
                "telemetry reading; uncap thresholds sit 5%% below "
                "cap thresholds to avoid hysteresis (Section 6.3).\n");
    return 0;
}
