/**
 * @file
 * Figure 18: number of power-brake events per policy, for the
 * default and +5%-power workloads at +30% oversubscription.
 */

#include "analysis/ascii_chart.hh"
#include "analysis/table.hh"
#include "bench_common.hh"
#include "core/oversub_experiment.hh"

#include <cmath>
#include <iostream>

using namespace polca;
using namespace polca::core;

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseArgs(
        argc, argv, "Reproduces Fig 18: power brake event counts");
    bench::banner(
        "Figure 18 -- Power brake events per policy (+30% servers)",
        "POLCA: zero brakes normally and the fewest under +5% power; "
        "No-cap incurs orders of magnitude more");

    const std::vector<std::pair<const char *, PolicyConfig>> policies{
        {"POLCA", PolicyConfig::polca()},
        {"1-Thresh-Low-Pri", PolicyConfig::oneThreshLowPri()},
        {"1-Thresh-All", PolicyConfig::oneThreshAll()},
        {"No-cap", PolicyConfig::noCap()},
    };

    analysis::Table table({"Policy", "Brakes (default)",
                           "Brakes (+5% power)"});
    std::vector<std::string> labels;
    std::vector<double> logCounts;
    std::uint64_t polcaDefault = 0, nocapDefault = 0;

    for (const auto &[name, policy] : policies) {
        std::uint64_t counts[2] = {0, 0};
        int i = 0;
        for (double powerScale : {1.0, 1.05}) {
            ExperimentConfig config;
            config.row.addedServerFraction = 0.30;
            config.duration = options.horizon(2.0, 35.0);
            config.seed = options.seed;
            config.powerScaleFactor = powerScale;
            config.policy = policy;
            ExperimentResult result = runOversubExperiment(config);
            counts[i++] = result.powerBrakeEvents;

            labels.push_back(std::string(name) +
                             (powerScale == 1.0 ? "" : "+5%"));
            logCounts.push_back(std::log10(
                1.0 + static_cast<double>(result.powerBrakeEvents)));
        }
        table.row()
            .cell(name)
            .cell(static_cast<long long>(counts[0]))
            .cell(static_cast<long long>(counts[1]));
        if (std::string(name) == "POLCA")
            polcaDefault = counts[0];
        if (std::string(name) == "No-cap")
            nocapDefault = counts[0];
    }
    table.print(std::cout);

    std::printf("\nlog10(1 + brake events):\n%s\n",
                analysis::asciiBars(labels, logCounts, 40).c_str());

    bench::compare("POLCA brakes (default)", "0",
                   static_cast<double>(polcaDefault));
    bench::compare("No-cap brakes vs POLCA", ">> 0",
                   static_cast<double>(nocapDefault));
    return 0;
}
