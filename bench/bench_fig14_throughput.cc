/**
 * @file
 * Figure 14: normalized server throughput per priority as servers
 * are added under the chosen POLCA configuration (T1=80%, T2=89%).
 */

#include "analysis/table.hh"
#include "bench_common.hh"
#include "core/oversub_experiment.hh"

#include <iostream>

using namespace polca;
using namespace polca::core;

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseArgs(
        argc, argv, "Reproduces Fig 14: server throughput");
    bench::banner(
        "Figure 14 -- Server throughput under POLCA",
        "High-priority throughput unaffected; low-priority sees a "
        "minor < 2% decline at +30%");

    analysis::Table table({"Added", "LP throughput (norm.)",
                           "HP throughput (norm.)",
                           "LP completions", "HP completions"});

    for (double added : {0.0, 0.10, 0.20, 0.30, 0.40}) {
        ExperimentConfig config;
        config.row.addedServerFraction = added;
        config.duration = options.horizon(1.0, 7.0);
        config.seed = options.seed;
        ExperimentResult managed = runOversubExperiment(config);
        ExperimentResult base =
            runOversubExperiment(unthrottledBaseline(config));

        table.row()
            .percentCell(added, 0)
            .cell(managed.lowThroughput / base.lowThroughput, 4)
            .cell(managed.highThroughput / base.highThroughput, 4)
            .cell(static_cast<long long>(managed.lowCompletions))
            .cell(static_cast<long long>(managed.highCompletions));
    }
    table.print(std::cout);

    ExperimentConfig headline;
    headline.row.addedServerFraction = 0.30;
    headline.duration = options.horizon(1.0, 7.0);
    headline.seed = options.seed;
    ExperimentResult managed = runOversubExperiment(headline);
    ExperimentResult base =
        runOversubExperiment(unthrottledBaseline(headline));
    std::printf("\n");
    bench::compare("LP throughput at +30%", ">= 0.98",
                   managed.lowThroughput / base.lowThroughput);
    bench::compare("HP throughput at +30%", "~1.00",
                   managed.highThroughput / base.highThroughput);
    return 0;
}
