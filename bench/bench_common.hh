/**
 * @file
 * Shared scaffolding for the reproduction bench binaries: flag
 * parsing (--full for paper-scale horizons, --days/--seed overrides)
 * and uniform experiment headers so output is easy to diff against
 * the paper.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/timeseries.hh"
#include "sim/types.hh"

namespace polca::bench {

/** Common bench options. */
struct BenchOptions
{
    bool full = false;           ///< paper-scale horizons
    double days = 0.0;           ///< explicit horizon override
    std::uint64_t seed = 42;
    std::string csvPath;         ///< optional series export target

    /** Evaluation horizon: default short, --full = paper scale. */
    sim::Tick
    horizon(double defaultDays, double fullDays) const
    {
        double d = days > 0.0 ? days : (full ? fullDays : defaultDays);
        return sim::secondsToTicks(d * 24.0 * 3600.0);
    }
};

/** Parse --full, --days <n>, --seed <n>; exits on --help. */
inline BenchOptions
parseArgs(int argc, char **argv, const char *description)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--full")) {
            options.full = true;
        } else if (!std::strcmp(argv[i], "--days") && i + 1 < argc) {
            options.days = std::atof(argv[++i]);
        } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
            options.seed =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (!std::strcmp(argv[i], "--csv") && i + 1 < argc) {
            options.csvPath = argv[++i];
        } else if (!std::strcmp(argv[i], "--help")) {
            std::printf("%s\n\nOptions:\n"
                        "  --full       paper-scale horizons\n"
                        "  --days <n>   explicit horizon in days\n"
                        "  --seed <n>   RNG seed (default 42)\n"
                        "  --csv <f>    export plotted series to a "
                        "CSV file\n",
                        description);
            std::exit(0);
        }
    }
    sim::setQuiet(true);
    return options;
}

/** Print a banner naming the experiment and the paper artifact. */
inline void
banner(const char *artifact, const char *claim)
{
    std::printf("==================================================="
                "=============================\n");
    std::printf("%s\n", artifact);
    std::printf("Paper: %s\n", claim);
    std::printf("==================================================="
                "=============================\n\n");
}

/** Print a paper-vs-measured comparison line. */
inline void
compare(const char *metric, const char *paperValue, double measured,
        const char *unit = "")
{
    std::printf("  %-46s paper: %-14s measured: %.3f%s\n", metric,
                paperValue, measured, unit);
}

/**
 * Export labelled time series as CSV (time_s, <label>...) when the
 * user passed --csv.  Series are step-sampled onto a common grid so
 * the file plots directly in any tool.
 */
void exportSeriesCsv(const BenchOptions &options,
                     const std::vector<std::string> &labels,
                     const std::vector<const sim::TimeSeries *> &series,
                     sim::Tick grid = sim::msToTicks(100));

} // namespace polca::bench

