/**
 * @file
 * Table 4: LLM cluster power usage "in production" — training vs
 * inference peak utilization, swing pattern, and max power spikes
 * within the 2 s telemetry and 40 s OOB-capping windows.
 */

#include "analysis/table.hh"
#include "bench_common.hh"
#include "cluster/row.hh"
#include "cluster/training_cluster.hh"
#include "llm/training_model.hh"
#include "workload/trace_gen.hh"

#include <iostream>

using namespace polca;

namespace {

struct ClusterStats
{
    double peakUtilization;
    double spike2s;
    double spike40s;
};

ClusterStats
trainingCluster(const bench::BenchOptions &options)
{
    // Production-scale training jobs run much longer iterations
    // than our 8-GPU fine-tuning runs (Section 3.4 validates
    // server-level shapes against cluster data, not durations):
    // scale the GPT-NeoX waveform to a 10.5 s iteration so the
    // synchronization trough spans the 2 s telemetry window.
    llm::TrainingSpec spec =
        llm::TrainingSpec::forModel("GPT-NeoX-20B");
    spec.iterationPeriod = sim::secondsToTicks(10.5);
    llm::TrainingModel model(spec);
    cluster::TrainingClusterOptions tc;
    tc.numServers = 40;
    tc.duration = options.horizon(0.05, 0.5);
    tc.sampleInterval = sim::secondsToTicks(2);
    tc.phaseJitterFraction = 0.08;
    tc.seed = options.seed;
    sim::TimeSeries series = cluster::trainingClusterPower(
        model, power::ServerSpec::dgxA100_40gb(), tc);

    // Training rows are provisioned for peak.
    double provisioned = 40 * 5850.0;
    return {series.maxValue() / provisioned,
            series.maxRiseWithin(sim::secondsToTicks(2)) / provisioned,
            series.maxRiseWithin(sim::secondsToTicks(40)) /
                provisioned};
}

ClusterStats
inferenceCluster(const bench::BenchOptions &options)
{
    sim::Simulation sim(options.seed);
    cluster::RowConfig rowConfig;
    rowConfig.baseServers = 40;
    rowConfig.recordPowerSeries = true;
    cluster::Row row(sim, rowConfig, sim.rng().fork(1));

    workload::TraceGenerator generator;
    llm::PhaseModel phases(row.model());
    workload::TraceGenOptions traceOptions;
    traceOptions.duration = options.horizon(1.0, 7.0);
    traceOptions.numServers = row.numServers();
    traceOptions.serviceSecondsPerRequest =
        generator.expectedServiceSeconds(phases);
    traceOptions.seed = options.seed;
    workload::Trace trace = generator.generate(traceOptions);
    row.dispatcher().injectTrace(trace);
    sim.runUntil(traceOptions.duration);

    const sim::TimeSeries &series = row.rowManager().series();
    double provisioned = row.provisionedWatts();
    return {series.maxValue() / provisioned,
            series.maxRiseWithin(sim::secondsToTicks(2)) / provisioned,
            series.maxRiseWithin(sim::secondsToTicks(40)) /
                provisioned};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseArgs(
        argc, argv, "Reproduces Table 4: cluster power usage");
    bench::banner(
        "Table 4 -- LLM cluster power usage in production",
        "Training: 97% peak util, 37.5% max 2s spike; inference: "
        "79% peak util, 9% max 2s spike, 11.8% max 40s spike");

    ClusterStats training = trainingCluster(options);
    ClusterStats inference = inferenceCluster(options);

    analysis::Table table({"Metric", "Training (paper)",
                           "Training (ours)", "Inference (paper)",
                           "Inference (ours)"});
    table.row()
        .cell("Peak power utilization")
        .cell("97%")
        .percentCell(training.peakUtilization)
        .cell("79%")
        .percentCell(inference.peakUtilization);
    table.row()
        .cell("Max power spike in 2s")
        .cell("37.5%")
        .percentCell(training.spike2s)
        .cell("9%")
        .percentCell(inference.spike2s);
    table.row()
        .cell("Max power spike in 40s")
        .cell("-")
        .percentCell(training.spike40s)
        .cell("11.8%")
        .percentCell(inference.spike40s);
    table.row()
        .cell("Power usage pattern")
        .cell("coordinated swings")
        .cell("every iteration")
        .cell("diurnal")
        .cell("diurnal + noise");
    table.print(std::cout);

    std::printf("\nInsight 9: despite similar *server* peaks, "
                "inference rows keep ~%d%% headroom where training "
                "keeps ~%d%%.\n",
                static_cast<int>(
                    (1.0 - inference.peakUtilization) * 100.0 + 0.5),
                static_cast<int>(
                    (1.0 - training.peakUtilization) * 100.0 + 0.5));
    return 0;
}
