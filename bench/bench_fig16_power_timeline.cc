/**
 * @file
 * Figure 16: row-level power utilization over time, default fleet
 * vs. +30% servers, at 2 s and 5 min averaging.
 */

#include "analysis/ascii_chart.hh"
#include "analysis/table.hh"
#include "bench_common.hh"
#include "core/oversub_experiment.hh"

#include <iostream>

using namespace polca;
using namespace polca::core;

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseArgs(
        argc, argv,
        "Reproduces Fig 16: row power utilization timeline");
    bench::banner(
        "Figure 16 -- Row-level power utilization, default vs +30% "
        "servers",
        "+30% follows the same diurnal pattern at a higher offset; "
        "short-term spikes grow; peaks stay under the budget");

    auto run = [&](double added) {
        ExperimentConfig config;
        config.row.addedServerFraction = added;
        config.duration = options.horizon(2.0, 42.0);
        config.seed = options.seed;
        config.recordRowSeries = true;
        return runOversubExperiment(config);
    };

    ExperimentResult base = run(0.0);
    ExperimentResult more = run(0.30);

    double provisioned = 40 * 4950.0;
    sim::TimeSeries base2s = base.rowPowerSeries.scaled(
        1.0 / provisioned);
    sim::TimeSeries more2s = more.rowPowerSeries.scaled(
        1.0 / provisioned);
    sim::TimeSeries base5m =
        base2s.movingAverage(sim::secondsToTicks(300));
    sim::TimeSeries more5m =
        more2s.movingAverage(sim::secondsToTicks(300));

    analysis::ChartOptions chart;
    chart.title = "  Row power utilization (5 min avg):";
    chart.height = 14;
    chart.width = 100;
    std::cout << analysis::asciiChart({&base5m, &more5m},
                                      {"default", "+30% servers"},
                                      chart)
              << "\n";

    analysis::Table table({"Fleet", "Mean util", "Peak (2s)",
                           "Peak (5min)", "Max 2s spike", "Brakes"});
    auto emit = [&](const char *label, const ExperimentResult &r,
                    const sim::TimeSeries &s2, const sim::TimeSeries &s5) {
        table.row()
            .cell(label)
            .percentCell(r.meanUtilization)
            .percentCell(s2.maxValue())
            .percentCell(s5.maxValue())
            .percentCell(s2.maxRiseWithin(sim::secondsToTicks(2)))
            .cell(static_cast<long long>(r.powerBrakeEvents));
    };
    emit("default", base, base2s, base5m);
    emit("+30% servers", more, more2s, more5m);
    table.print(std::cout);

    bench::exportSeriesCsv(
        options,
        {"default_2s", "plus30_2s", "default_5min", "plus30_5min"},
        {&base2s, &more2s, &base5m, &more5m},
        sim::secondsToTicks(2));

    std::printf("\n");
    bench::compare("peak (2s) utilization at +30%", "< 100%",
                   more2s.maxValue() * 100.0, "%");
    bench::compare("spike growth (+30% vs default)", "> 1x",
                   more2s.maxRiseWithin(sim::secondsToTicks(2)) /
                       base2s.maxRiseWithin(sim::secondsToTicks(2)),
                   "x");
    return 0;
}
