/**
 * @file
 * Figure 11: peak server power vs. peak GPU power (both normalized
 * to their TDP) across a production-like inference fleet.
 */

#include "analysis/correlation.hh"
#include "analysis/table.hh"
#include "bench_common.hh"
#include "cluster/row.hh"
#include "workload/trace_gen.hh"

#include <algorithm>
#include <iostream>

using namespace polca;

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseArgs(
        argc, argv,
        "Reproduces Fig 11: server vs GPU peak power at fleet scale");
    bench::banner(
        "Figure 11 -- Server and GPU peak power normalized to TDP",
        "GPU ~60% of server power; peak GPU power exceeds aggregate "
        "GPU TDP (by up to ~500W); server/GPU peaks correlated");

    sim::Simulation sim(options.seed);
    cluster::RowConfig rowConfig;
    rowConfig.baseServers = 24;
    cluster::Row row(sim, rowConfig, sim.rng().fork(1));

    // Silicon/assembly variability across the fleet ("Not All GPUs
    // Are Created Equal"): per-server power scale ~N(1, 0.03).
    {
        sim::Rng variability = sim.rng().fork(2);
        for (cluster::InferenceServer *server : row.servers()) {
            double scale = std::clamp(
                variability.normal(1.0, 0.03), 0.92, 1.10);
            server->setPowerScaleFactor(scale);
        }
    }

    workload::TraceGenerator generator;
    llm::PhaseModel phases(row.model());
    workload::TraceGenOptions traceOptions;
    traceOptions.duration = options.horizon(0.08, 1.0);
    traceOptions.numServers = row.numServers();
    traceOptions.serviceSecondsPerRequest =
        generator.expectedServiceSeconds(phases);
    traceOptions.seed = options.seed;
    workload::Trace trace = generator.generate(traceOptions);
    row.dispatcher().injectTrace(trace);

    // Track per-server peaks with a periodic 1 s sampler.
    std::size_t n = static_cast<std::size_t>(row.numServers());
    std::vector<double> serverPeak(n, 0.0), gpuPeak(n, 0.0);
    std::vector<double> gpuShareAtPeak(n, 0.0);
    auto servers = row.servers();
    auto sampler = sim.every(sim::secondsToTicks(1), [&](sim::Tick) {
        for (std::size_t i = 0; i < n; ++i) {
            double server = servers[i]->powerWatts();
            double gpu = servers[i]->serverModel().gpuPowerWatts();
            gpuPeak[i] = std::max(gpuPeak[i], gpu);
            if (server > serverPeak[i]) {
                serverPeak[i] = server;
                gpuShareAtPeak[i] = gpu / server;
            }
        }
    });
    sim.runUntil(traceOptions.duration);

    double serverTdp = rowConfig.serverSpec.ratedPowerWatts;
    double gpuTdp = rowConfig.serverSpec.provisionedGpuWatts();

    analysis::Table table({"Server", "Peak server (xrated)",
                           "Peak GPU (xTDP)", "GPU share at peak"});
    std::vector<double> serverNorm, gpuNorm;
    double meanShare = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        serverNorm.push_back(serverPeak[i] / serverTdp);
        gpuNorm.push_back(gpuPeak[i] / gpuTdp);
        meanShare += gpuShareAtPeak[i];
        table.row()
            .cell(static_cast<long long>(i))
            .cell(serverPeak[i] / serverTdp, 3)
            .cell(gpuPeak[i] / gpuTdp, 3)
            .percentCell(gpuShareAtPeak[i]);
    }
    meanShare /= static_cast<double>(n);
    table.print(std::cout);

    std::printf("\n");
    bench::compare("corr(peak server, peak GPU)", "high (+)",
                   analysis::pearson(serverNorm, gpuNorm));
    bench::compare("mean GPU share of server power at peak", "~60%",
                   meanShare * 100.0, "%");
    double maxGpuExcess = 0.0;
    for (double g : gpuPeak)
        maxGpuExcess = std::max(maxGpuExcess, g - gpuTdp);
    bench::compare("max peak GPU power above aggregate TDP",
                   "up to ~500W", maxGpuExcess, " W");
    return 0;
}
