/**
 * @file
 * Section 6.4 methodology check: the synthetic request trace,
 * regenerated from only the binned arrival rate of the "production"
 * trace, must reproduce the production power time-series within a
 * 3% MAPE.
 */

#include "analysis/error_metrics.hh"
#include "analysis/table.hh"
#include "bench_common.hh"
#include "cluster/row.hh"
#include "workload/trace_gen.hh"

#include <iostream>

using namespace polca;

namespace {

sim::TimeSeries
simulatePower(const workload::Trace &trace, std::uint64_t seed)
{
    sim::Simulation sim(seed);
    cluster::RowConfig rowConfig;
    rowConfig.baseServers = 40;
    rowConfig.recordPowerSeries = true;
    cluster::Row row(sim, rowConfig, sim.rng().fork(1));
    row.dispatcher().injectTrace(trace);
    sim.runUntil(trace.duration());
    return row.rowManager().series();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseArgs(
        argc, argv,
        "Validates the synthetic trace methodology (Section 6.4)");
    bench::banner(
        "Trace fidelity -- synthetic vs production power series",
        "MAPE between the synthetic and original power time-series "
        "is within 3%");

    workload::TraceGenerator generator;
    llm::PhaseModel phases(
        llm::ModelCatalog().byName("BLOOM-176B"));

    workload::TraceGenOptions traceOptions;
    traceOptions.duration = options.horizon(1.0, 42.0);
    traceOptions.numServers = 40;
    traceOptions.serviceSecondsPerRequest =
        generator.expectedServiceSeconds(phases);
    traceOptions.seed = options.seed;

    workload::Trace production = generator.generate(traceOptions);
    workload::Trace synthetic = generator.regenerate(
        production, sim::secondsToTicks(300), options.seed + 1);

    sim::TimeSeries productionPower =
        simulatePower(production, options.seed);
    sim::TimeSeries syntheticPower =
        simulatePower(synthetic, options.seed);

    // Compare 5-minute moving averages: instantaneous 2 s readings
    // of two stochastic runs differ by prompt-multiplexing noise
    // even for identical offered load.
    sim::TimeSeries productionAvg =
        productionPower.movingAverage(sim::secondsToTicks(300));
    sim::TimeSeries syntheticAvg =
        syntheticPower.movingAverage(sim::secondsToTicks(300));
    double mape5m = analysis::mape(productionAvg, syntheticAvg,
                                   sim::secondsToTicks(300));
    double mape1m = analysis::mape(productionAvg, syntheticAvg,
                                   sim::secondsToTicks(60));

    analysis::Table table({"Metric", "Production", "Synthetic"});
    table.row().cell("Requests")
        .cell(static_cast<long long>(production.size()))
        .cell(static_cast<long long>(synthetic.size()));
    table.row().cell("Mean arrival rate (req/s)")
        .cell(production.meanArrivalRate(), 4)
        .cell(synthetic.meanArrivalRate(), 4);
    table.row().cell("High-priority fraction")
        .percentCell(production.highPriorityFraction())
        .percentCell(synthetic.highPriorityFraction());
    table.row().cell("Mean power (W)")
        .cell(productionPower.meanValue(), 0)
        .cell(syntheticPower.meanValue(), 0);
    table.row().cell("Peak power (W)")
        .cell(productionPower.maxValue(), 0)
        .cell(syntheticPower.maxValue(), 0);
    table.print(std::cout);

    std::printf("\n");
    bench::compare("power MAPE (5 min avg)", "<= 3%",
                   mape5m * 100.0, "%");
    bench::compare("power MAPE (5 min avg, 1 min grid)", "<= ~3%",
                   mape1m * 100.0, "%");
    std::printf("\n%s\n", mape5m <= 0.03
                    ? "PASS: synthetic trace replicates production "
                      "power within the paper's 3% bound."
                    : "FAIL: MAPE above the paper's 3% bound.");
    return mape5m <= 0.03 ? 0 : 1;
}
