/** @file Table 1: power monitoring interfaces in an LLM cluster. */

#include "analysis/table.hh"
#include "bench_common.hh"
#include "telemetry/interface_registry.hh"

#include <iostream>

int
main(int argc, char **argv)
{
    using namespace polca;
    bench::parseArgs(argc, argv,
                     "Reproduces Table 1: power monitoring interfaces");
    bench::banner(
        "Table 1 -- Power monitoring interfaces in an LLM cluster",
        "RAPL 1-10ms IB; DCGM 100ms+ IB; SMBPBI 5s+ OOB; IPMI 1-5s "
        "OOB; row manager 2s OOB");

    analysis::Table table(
        {"Mechanism", "Granularity", "Path", "Interval",
         "Simulated interval"});
    for (const auto &mi : telemetry::monitoringInterfaces()) {
        table.row()
            .cell(mi.mechanism)
            .cell(mi.granularity)
            .cell(mi.path)
            .cell(mi.intervalText)
            .cell(analysis::formatFixed(
                      sim::ticksToMs(mi.typicalInterval), 0) + " ms");
    }
    table.print(std::cout);
    return 0;
}
