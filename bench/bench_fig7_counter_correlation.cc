/**
 * @file
 * Figure 7: pairwise Pearson correlations of GPU counters during
 * BLOOM inference, prompt phase vs. token phase.
 */

#include "analysis/correlation.hh"
#include "analysis/table.hh"
#include "bench_common.hh"
#include "llm/counters.hh"

#include <iostream>

using namespace polca;

namespace {

analysis::CorrelationMatrix
collect(llm::Phase phase, int samples, std::uint64_t seed)
{
    llm::ModelCatalog catalog;
    llm::CounterSynthesizer synth(catalog.byName("BLOOM-176B"),
                                  sim::Rng(seed));
    llm::InferenceConfig config;
    config.inputTokens = 2048;
    config.outputTokens = 256;

    auto names = llm::counterNames();
    std::vector<std::vector<double>> columns(names.size());
    for (int i = 0; i < samples; ++i) {
        auto values = llm::counterValues(synth.sample(phase, config));
        for (std::size_t c = 0; c < values.size(); ++c)
            columns[c].push_back(values[c]);
    }
    analysis::CorrelationMatrix matrix;
    for (std::size_t c = 0; c < names.size(); ++c)
        matrix.addSignal(names[c], std::move(columns[c]));
    return matrix;
}

void
printMatrix(const analysis::CorrelationMatrix &matrix)
{
    std::vector<std::string> headers{""};
    for (const auto &name : matrix.names())
        headers.push_back(name);
    analysis::Table table(headers);
    auto values = matrix.matrix();
    for (std::size_t i = 0; i < matrix.numSignals(); ++i) {
        table.row().cell(matrix.names()[i]);
        for (std::size_t j = 0; j < matrix.numSignals(); ++j)
            table.cell(values[i][j], 2);
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseArgs(
        argc, argv, "Reproduces Fig 7: GPU counter correlations");
    bench::banner(
        "Figure 7 -- Pairwise GPU counter correlations (BLOOM)",
        "Prompt: power strongly +correlated with SM/tensor activity, "
        "-correlated with memory; token: largely uncorrelated");

    int samples = options.full ? 20000 : 4000;

    std::printf("Prompt phase (%d samples):\n", samples);
    auto prompt = collect(llm::Phase::Prompt, samples, options.seed);
    printMatrix(prompt);

    std::printf("\nToken phase (%d samples):\n", samples);
    auto token = collect(llm::Phase::Token, samples, options.seed + 1);
    printMatrix(token);

    std::printf("\n");
    bench::compare("prompt corr(Power, SM activity)", "+0.8",
                   prompt.at(0, 3));
    bench::compare("prompt corr(Power, Tensor activity)", "+0.84",
                   prompt.at(0, 4));
    bench::compare("prompt corr(Power, Memory util)", "-0.8",
                   prompt.at(0, 2));
    bench::compare("token |corr(Power, SM activity)|", "~0",
                   token.at(0, 3));
    return 0;
}
