/** @file Table 2: row-level parameters of the production cluster. */

#include "analysis/table.hh"
#include "bench_common.hh"
#include "telemetry/interface_registry.hh"

#include <iostream>

int
main(int argc, char **argv)
{
    using namespace polca;
    bench::parseArgs(argc, argv,
                     "Reproduces Table 2: row-level parameters");
    bench::banner(
        "Table 2 -- Row-level parameters in our study",
        "40 DGX-A100 servers; 2s power telemetry delay; 5s power "
        "brake latency; 40s OOB control latency");

    telemetry::RowParameters params = telemetry::paperRowParameters();
    analysis::Table table({"Parameter", "Value"});
    table.row().cell("Number of servers")
        .cell(static_cast<long long>(params.numServers));
    table.row().cell("Server type").cell(params.serverType);
    table.row().cell("Power telemetry delay")
        .cell(analysis::formatFixed(
                  sim::ticksToSeconds(params.powerTelemetryDelay), 0) +
              " s");
    table.row().cell("Power brake latency")
        .cell(analysis::formatFixed(
                  sim::ticksToSeconds(params.powerBrakeLatency), 0) +
              " s");
    table.row().cell("OOB control latency")
        .cell(analysis::formatFixed(
                  sim::ticksToSeconds(params.oobControlLatency), 0) +
              " s");
    table.row().cell("UPS capping deadline")
        .cell(analysis::formatFixed(
                  sim::ticksToSeconds(params.upsCappingDeadline), 0) +
              " s");
    table.row().cell("IB control latency")
        .cell(analysis::formatFixed(
                  sim::ticksToMs(params.ibControlLatency), 0) + " ms");
    table.print(std::cout);

    std::printf("\nNote: the OOB control latency (40 s) exceeds the "
                "UPS deadline (10 s);\nonly the power brake (5 s) "
                "meets it -- the design constraint POLCA works "
                "around.\n");
    return 0;
}
