/**
 * @file
 * Figure 5: peak power reduction vs. performance (throughput)
 * reduction for training under (a) frequency locking and (b) power
 * capping.
 */

#include "analysis/table.hh"
#include "bench_common.hh"
#include "sim/stats.hh"
#include "llm/executor.hh"
#include "llm/segments.hh"
#include "llm/training_model.hh"
#include "power/server_model.hh"

#include <iostream>

using namespace polca;

namespace {

struct Point
{
    double peakReduction;
    double perfReduction;
};

Point
runLock(const char *model_name, double lockMhz)
{
    auto iterate = [&](double mhz) {
        power::ServerModel server(power::ServerSpec::dgxA100_40gb());
        if (mhz > 0)
            server.lockClockAll(mhz);
        llm::TrainingModel model(
            llm::TrainingSpec::forModel(model_name));
        llm::SegmentExecutor exec(server, {0, 1, 2, 3, 4, 5, 6, 7});
        auto iteration = llm::trainingIterationSegments(model);
        for (int i = 0; i < 3; ++i)
            exec.run(iteration);
        return std::pair<double, double>(
            exec.firstGpuPowerSeries().maxValue(),
            sim::ticksToSeconds(exec.now()) / 3.0);
    };
    auto [basePeak, baseIter] = iterate(0.0);
    auto [peak, iter] = iterate(lockMhz);
    return {1.0 - peak / basePeak, 1.0 - baseIter / iter};
}

Point
runCap(const char *model_name, double capWatts)
{
    auto iterate = [&](double cap) {
        power::ServerModel server(power::ServerSpec::dgxA100_40gb());
        if (cap > 0)
            server.setPowerCapAll(cap);
        llm::TrainingModel model(
            llm::TrainingSpec::forModel(model_name));
        llm::SegmentExecutor exec(server, {0, 1, 2, 3, 4, 5, 6, 7});
        auto iteration = llm::trainingIterationSegments(model);
        for (int i = 0; i < 3; ++i)
            exec.run(iteration);
        // Sustained peak (p98) rather than raw max: reactive caps
        // always let the first instants of a phase through.
        sim::Sampler sampler;
        for (const auto &p : exec.firstGpuPowerSeries().points())
            sampler.add(p.value);
        return std::pair<double, double>(
            sampler.quantile(0.98),
            sim::ticksToSeconds(exec.now()) / 3.0);
    };
    auto [basePeak, baseIter] = iterate(0.0);
    auto [peak, iter] = iterate(capWatts);
    return {1.0 - peak / basePeak, 1.0 - baseIter / iter};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv,
                     "Reproduces Fig 5: training peak power vs "
                     "performance reduction");
    bench::banner(
        "Figure 5 -- Peak power vs. performance reduction (training)",
        "Frequency capping reduces peak ~22% for ~10% performance "
        "loss on Flan-T5/GPT-NeoX (Section 4.1)");

    std::printf("(a) Frequency locking\n");
    analysis::Table lockTable(
        {"Model", "SM clock (MHz)", "Peak power reduction",
         "Perf reduction"});
    for (const char *name : {"RoBERTa", "GPT-NeoX-20B",
                             "Flan-T5-XXL"}) {
        for (double mhz : {1400.0, 1300.0, 1200.0, 1100.0}) {
            Point p = runLock(name, mhz);
            lockTable.row()
                .cell(std::string(name))
                .cell(mhz, 0)
                .percentCell(p.peakReduction)
                .percentCell(p.perfReduction);
        }
    }
    lockTable.print(std::cout);

    std::printf("\n(b) Power capping\n");
    analysis::Table capTable(
        {"Model", "Cap (W)", "Peak power reduction",
         "Perf reduction"});
    for (const char *name : {"RoBERTa", "GPT-NeoX-20B",
                             "Flan-T5-XXL"}) {
        for (double cap : {400.0, 375.0, 350.0, 325.0}) {
            Point p = runCap(name, cap);
            capTable.row()
                .cell(std::string(name))
                .cell(cap, 0)
                .percentCell(p.peakReduction)
                .percentCell(p.perfReduction);
        }
    }
    capTable.print(std::cout);

    Point anchor = runLock("Flan-T5-XXL", 1100.0);
    std::printf("\n");
    bench::compare("Flan-T5 @1.1GHz peak power reduction", "~22%",
                   anchor.peakReduction * 100.0, "%");
    bench::compare("Flan-T5 @1.1GHz performance reduction", "~10%",
                   anchor.perfReduction * 100.0, "%");
    return 0;
}
