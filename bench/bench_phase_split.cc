/**
 * @file
 * Extension study (Section 5.2): phase-splitting vs. combined
 * serving.  Same GPU count, same offered trace; compares the power
 * profile (peak, p99, flatness) and end-to-end latency of
 * (a) a combined fleet where every server runs both phases, and
 * (b) a split fleet with a small full-clock prompt pool feeding a
 *     large frequency-locked token pool.
 */

#include "analysis/table.hh"
#include "bench_common.hh"
#include "cluster/phase_split.hh"
#include "cluster/row.hh"
#include "sim/stats.hh"
#include "workload/trace_gen.hh"

#include <iostream>

using namespace polca;

namespace {

struct Profile
{
    double peakWatts;
    double p99Watts;
    double meanWatts;
    double latencyP50;
    double latencyP99;
    std::uint64_t completions;
};

workload::Trace
makeTrace(const bench::BenchOptions &options, int servers)
{
    workload::TraceGenerator generator;
    llm::PhaseModel phases(
        llm::ModelCatalog().byName("BLOOM-176B"));
    workload::TraceGenOptions traceOptions;
    traceOptions.duration = options.horizon(0.25, 2.0);
    traceOptions.numServers = servers;
    traceOptions.serviceSecondsPerRequest =
        generator.expectedServiceSeconds(phases);
    traceOptions.seed = options.seed;
    workload::Trace raw = generator.generate(traceOptions);

    // Priorities are irrelevant to this study (no POLCA manager):
    // flatten to a single pool.
    workload::Trace trace(raw.duration());
    for (workload::Request r : raw.requests()) {
        r.priority = workload::Priority::Low;
        trace.add(r);
    }
    trace.setDuration(raw.duration());
    return trace;
}

Profile
runCombined(const bench::BenchOptions &options,
            const workload::Trace &trace, int servers)
{
    sim::Simulation sim(options.seed);
    cluster::RowConfig rowConfig;
    rowConfig.baseServers = servers;
    rowConfig.lpServerFraction = 1.0;  // one pool; no POLCA here
    cluster::Row row(sim, rowConfig, sim.rng().fork(1));

    sim::Sampler power;
    auto sampler = sim.every(sim::secondsToTicks(2), [&](sim::Tick) {
        power.add(row.powerWatts());
    });
    row.dispatcher().injectTrace(trace);
    sim.runUntil(trace.duration());

    const sim::Sampler &latency =
        row.dispatcher().latencySeconds(workload::Priority::Low);
    return {power.max(), power.p99(), power.mean(), latency.p50(),
            latency.p99(),
            row.dispatcher().completions(workload::Priority::Low)};
}

Profile
runSplit(const bench::BenchOptions &options,
         const workload::Trace &trace, int promptServers,
         int tokenServers)
{
    sim::Simulation sim(options.seed);
    cluster::PhaseSplitConfig config;
    config.promptServers = promptServers;
    config.tokenServers = tokenServers;
    cluster::PhaseSplitCluster split(sim, config, sim.rng().fork(1));

    sim::Sampler power;
    auto sampler = sim.every(sim::secondsToTicks(2), [&](sim::Tick) {
        power.add(split.powerWatts());
    });
    split.injectTrace(trace);
    sim.runUntil(trace.duration());

    const sim::Sampler &latency = split.latencySeconds();
    return {power.max(), power.p99(), power.mean(), latency.p50(),
            latency.p99(), split.completions()};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseArgs(
        argc, argv,
        "Extension: phase-split serving vs combined (Section 5.2)");
    bench::banner(
        "Extension -- Phase-aware separation of prompt and token "
        "GPUs (Section 5.2 / Splitwise)",
        "Token-only machines can be frequency capped without hurting "
        "prompt latency; the fleet's power profile flattens");

    const int servers = 12;
    // Prompt work is a few percent of request time: 2 prompt + 10
    // token machines serve what 12 combined machines serve.
    workload::Trace trace = makeTrace(options, servers);

    Profile combined = runCombined(options, trace, servers);
    Profile split = runSplit(options, trace, 2, 10);
    // Token work is ~96 % of request time, so 10 locked token
    // machines run hotter than 12 combined ones; one extra token
    // server buys the latency back while staying below the combined
    // peak.
    Profile resized = runSplit(options, trace, 2, 11);

    analysis::Table table({"Deployment", "Peak power (kW)",
                           "p99 power (kW)", "Mean power (kW)",
                           "Latency p50 (s)", "Latency p99 (s)",
                           "Completions"});
    auto emit = [&](const char *label, const Profile &p) {
        table.row()
            .cell(label)
            .cell(p.peakWatts / 1000.0, 2)
            .cell(p.p99Watts / 1000.0, 2)
            .cell(p.meanWatts / 1000.0, 2)
            .cell(p.latencyP50, 1)
            .cell(p.latencyP99, 1)
            .cell(static_cast<long long>(p.completions));
    };
    emit("combined (12 servers)", combined);
    emit("split (2 prompt + 10 token @1110MHz)", split);
    emit("split resized (2 prompt + 11 token)", resized);
    table.print(std::cout);

    std::printf("\n");
    bench::compare("peak power: split vs combined", "< 1.0",
                   split.peakWatts / combined.peakWatts, "x");
    bench::compare("mean power: split vs combined", "< 1.0",
                   split.meanWatts / combined.meanWatts, "x");
    bench::compare("latency p50: split (same GPUs)", "> 1.0",
                   split.latencyP50 / combined.latencyP50, "x");
    bench::compare("latency p50: split resized (+1 server)",
                   "~1.0",
                   resized.latencyP50 / combined.latencyP50, "x");
    bench::compare("peak power: split resized vs combined", "< 1.0",
                   resized.peakWatts / combined.peakWatts, "x");
    std::printf("\nSection 5.2's promise: \"only power cap GPUs that "
                "run the token phases\" -- the split fleet's token\n"
                "machines never see prompt spikes, so the provisioned "
                "peak can be derated accordingly.\n");
    return 0;
}
