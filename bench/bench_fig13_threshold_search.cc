/**
 * @file
 * Figure 13: threshold space search — normalized p50/p99 latency per
 * priority and power-brake onset as servers are added, for T1-T2
 * in {75-85%, 80-89%, 85-95%}.
 */

#include "analysis/table.hh"
#include "bench_common.hh"
#include "core/oversub_experiment.hh"

#include <iostream>
#include <map>

using namespace polca;
using namespace polca::core;

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseArgs(
        argc, argv, "Reproduces Fig 13: threshold space search");
    bench::banner(
        "Figure 13 -- Threshold space search (added servers sweep)",
        "75-85% and 80-89% allow ~35% more servers brake-free "
        "(85-95% only ~32.5%); 75-85% over-caps LP; POLCA picks "
        "80-89% and deploys +30%");

    const std::vector<double> addedLevels{0.0, 0.10, 0.20, 0.30,
                                          0.35, 0.40, 0.45, 0.50};
    struct Combo
    {
        const char *label;
        double t1;
        double t2;
    };
    const std::vector<Combo> combos{
        {"T1=75% T2=85%", 0.75, 0.85},
        {"T1=80% T2=89%", 0.80, 0.89},
        {"T1=85% T2=95%", 0.85, 0.95},
    };

    // Unthrottled baselines per added level (latency normalizer).
    std::map<double, ExperimentResult> baselines;
    for (double added : addedLevels) {
        ExperimentConfig config;
        config.row.addedServerFraction = added;
        config.duration = options.horizon(2.0, 7.0);
        config.seed = options.seed;
        baselines[added] =
            runOversubExperiment(unthrottledBaseline(config));
    }

    workload::SloSpec slos = workload::paperSlos();
    for (const Combo &combo : combos) {
        std::printf("\n%s\n", combo.label);
        analysis::Table table({"Added", "LP p50", "LP p99", "HP p50",
                               "HP p99", "Brakes", "Meets SLOs"});
        double maxBrakeFree = -1.0;
        for (double added : addedLevels) {
            ExperimentConfig config;
            config.row.addedServerFraction = added;
            config.duration = options.horizon(2.0, 7.0);
            config.seed = options.seed;
            config.policy = PolicyConfig::polca(combo.t1, combo.t2);
            ExperimentResult result = runOversubExperiment(config);
            const ExperimentResult &base = baselines[added];

            NormalizedLatency low =
                normalizeLatency(result.low, base.low);
            NormalizedLatency high =
                normalizeLatency(result.high, base.high);
            bool ok = meetsSlos(low, high, result.powerBrakeEvents,
                                slos);
            if (result.powerBrakeEvents == 0)
                maxBrakeFree = added;

            table.row()
                .percentCell(added, 0)
                .cell(low.p50, 3)
                .cell(low.p99, 3)
                .cell(high.p50, 3)
                .cell(high.p99, 3)
                .cell(static_cast<long long>(result.powerBrakeEvents))
                .cell(ok ? "yes" : "no");
        }
        table.print(std::cout);
        std::printf("  max added servers without power brake: "
                    "%.0f%%\n", maxBrakeFree * 100.0);
    }

    std::printf("\nPaper conclusion: select T1=80%%, T2=89%%, deploy "
                "+30%% servers strictly within SLOs.\n");
    return 0;
}
