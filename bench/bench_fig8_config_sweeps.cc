/**
 * @file
 * Figure 8: peak/mean power (normalized to TDP) and latency
 * sensitivity to input size (a,b), batch size (c,d), and output size
 * (e,f) across the five inference models.
 */

#include "analysis/table.hh"
#include "bench_common.hh"
#include "llm/phase_model.hh"
#include "power/gpu_power_model.hh"

#include <functional>
#include <iostream>

using namespace polca;

namespace {

struct Measured
{
    double peakOverTdp;
    double meanOverTdp;
    double latencySeconds;
};

/**
 * Analytic power per phase plus duration-weighted mean over the
 * request, matching the paper's stacked peak/mean bars.
 */
Measured
measure(const llm::ModelSpec &model, const llm::InferenceConfig &config)
{
    llm::PhaseModel phases(model);
    power::GpuPowerModel gpu(power::GpuSpec::a100_80gb());

    gpu.setActivity(phases.promptActivity(config));
    double promptPower = gpu.powerWatts();
    gpu.setActivity(phases.tokenActivity(config));
    double tokenPower = gpu.powerWatts();

    double promptSec =
        sim::ticksToSeconds(phases.promptDuration(config));
    double tokenSec =
        sim::ticksToSeconds(phases.tokenPhaseDuration(config));
    double total = promptSec + tokenSec;
    double mean = total > 0.0
        ? (promptPower * promptSec + tokenPower * tokenSec) / total
        : promptPower;

    return {std::max(promptPower, tokenPower) / 400.0, mean / 400.0,
            total};
}

void
sweep(const char *title, const char *paperNote,
      const std::vector<llm::InferenceConfig> &configs,
      const char *knobName,
      const std::function<int(const llm::InferenceConfig &)> &knob)
{
    std::printf("%s\n  paper: %s\n", title, paperNote);
    llm::ModelCatalog catalog;

    std::vector<std::string> headers{"Model"};
    for (const auto &config : configs)
        headers.push_back(std::string(knobName) + "=" +
                          std::to_string(knob(config)));
    analysis::Table table(headers);

    for (const std::string &name : catalog.inferenceModelNames()) {
        const llm::ModelSpec &model = catalog.byName(name);
        table.row().cell(name + " peak/mean xTDP | lat(s)");
        for (const auto &config : configs) {
            Measured m = measure(model, config);
            table.cell(analysis::formatFixed(m.peakOverTdp, 2) + "/" +
                       analysis::formatFixed(m.meanOverTdp, 2) + "|" +
                       analysis::formatFixed(m.latencySeconds, 1));
        }
    }
    table.print(std::cout);
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv,
                     "Reproduces Fig 8: power/latency sensitivity to "
                     "input, batch, and output sizes");
    bench::banner(
        "Figure 8 -- Power (peak, mean) and latency vs. "
        "configuration knobs",
        "Peak power rises with input and batch size; mean power "
        "stays low; latency rises with output size (Insight 5)");

    auto config = [](int input, int batch, int output) {
        llm::InferenceConfig c;
        c.inputTokens = input;
        c.batchSize = batch;
        c.outputTokens = output;
        return c;
    };

    std::vector<llm::InferenceConfig> inputSweep;
    for (int input : {256, 512, 1024, 2048, 4096, 8192})
        inputSweep.push_back(config(input, 1, 128));
    sweep("(a,b) Input size sweep (batch=1, output=128)",
          "peak grows with input, mean/latency barely move until "
          ">4096",
          inputSweep, "in",
          [](const llm::InferenceConfig &c) { return c.inputTokens; });

    std::vector<llm::InferenceConfig> batchSweep;
    for (int batch : {1, 2, 4, 8, 16})
        batchSweep.push_back(config(1024, batch, 128));
    sweep("(c,d) Batch size sweep (input=1024, output=128)",
          "peak grows like input-size growth; mean rises gradually; "
          "slight latency increase",
          batchSweep, "b",
          [](const llm::InferenceConfig &c) { return c.batchSize; });

    std::vector<llm::InferenceConfig> outputSweep;
    for (int output : {128, 256, 512, 1024, 2048, 4096})
        outputSweep.push_back(config(1024, 1, output));
    sweep("(e,f) Output size sweep (input=1024, batch=1)",
          "peak and mean power unchanged; latency scales linearly "
          "with output size",
          outputSweep, "out",
          [](const llm::InferenceConfig &c) { return c.outputTokens; });

    // Quantified anchors.
    llm::ModelCatalog catalog;
    const llm::ModelSpec &bloom = catalog.byName("BLOOM-176B");
    Measured small = measure(bloom, config(256, 1, 128));
    Measured large = measure(bloom, config(8192, 1, 128));
    bench::compare("BLOOM peak xTDP at input 8192", ">1.0",
                   large.peakOverTdp);
    bench::compare("BLOOM peak growth 256->8192", "large",
                   large.peakOverTdp / small.peakOverTdp, "x");
    Measured out1 = measure(bloom, config(1024, 1, 512));
    Measured out4 = measure(bloom, config(1024, 1, 2048));
    bench::compare("BLOOM latency scaling output 512->2048", "4x",
                   out4.latencySeconds / out1.latencySeconds, "x");
    return 0;
}
