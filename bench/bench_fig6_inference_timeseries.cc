/**
 * @file
 * Figure 6: GPU power time-series for the five inference models,
 * three identical requests each — spiky prompt phases, long stable
 * token phases.
 */

#include "analysis/ascii_chart.hh"
#include "analysis/table.hh"
#include "bench_common.hh"
#include "sim/stats.hh"
#include "llm/executor.hh"
#include "llm/phase_model.hh"
#include "llm/segments.hh"
#include "power/server_model.hh"

#include <iostream>

using namespace polca;

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseArgs(
        argc, argv,
        "Reproduces Fig 6: inference power time-series");
    bench::banner(
        "Figure 6 -- GPU power time-series for inference models",
        "Prompt spikes at/above TDP at each request start; token "
        "phases longer, stable, lower power (Insight 4)");

    llm::ModelCatalog catalog;
    analysis::Table table({"Model", "Peak (xTDP)", "Token level "
                           "(xTDP)", "Prompt (s)", "Token (s)"});
    std::vector<std::string> csvLabels;
    std::vector<sim::TimeSeries> csvSeries;

    for (const std::string &name : catalog.inferenceModelNames()) {
        const llm::ModelSpec &model = catalog.byName(name);
        llm::PhaseModel phases(model);
        llm::InferenceConfig config;
        config.inputTokens = 2048;
        config.outputTokens = 256;

        power::ServerModel server(power::ServerSpec::dgxA100_80gb());
        std::vector<std::size_t> gpus;
        for (int i = 0; i < model.inferenceGpus; ++i)
            gpus.push_back(static_cast<std::size_t>(i));
        llm::SegmentExecutor exec(server, gpus);

        auto segments = llm::inferenceSegments(phases, config);
        for (int request = 0; request < 3; ++request) {
            exec.run(segments);
            exec.idle(sim::msToTicks(500));
        }

        sim::TimeSeries normalized =
            exec.firstGpuPowerSeries().scaled(1.0 / 400.0);

        sim::Sampler sampler;
        for (const auto &p : normalized.points())
            sampler.add(p.value);

        table.row()
            .cell(name)
            .cell(normalized.maxValue(), 3)
            .cell(sampler.p50(), 3)
            .cell(sim::ticksToSeconds(phases.promptDuration(config)),
                  2)
            .cell(sim::ticksToSeconds(
                      phases.tokenPhaseDuration(config)), 2);

        analysis::ChartOptions chartOptions;
        chartOptions.title = "  " + name +
            " -- 3 requests, GPU power / TDP:";
        chartOptions.height = 9;
        chartOptions.width = 90;
        std::cout << analysis::asciiChart(normalized, chartOptions)
                  << "\n";

        csvLabels.push_back(name);
        csvSeries.push_back(normalized);
    }
    table.print(std::cout);

    std::vector<const sim::TimeSeries *> csvPointers;
    for (const auto &series : csvSeries)
        csvPointers.push_back(&series);
    bench::exportSeriesCsv(options, csvLabels, csvPointers);

    std::printf("\nPaper anchors: spikes recur at every request "
                "start; larger models draw more in both phases;\n"
                "token phases dominate request duration.\n");
    return 0;
}
