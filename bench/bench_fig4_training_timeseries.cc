/**
 * @file
 * Figure 4: GPU power time-series for training workloads under no
 * cap, a 325 W power cap, and a 1.1 GHz frequency lock (RoBERTa,
 * GPT-NeoX, Flan-T5; 5 iterations; 100 ms sampling).
 */

#include "analysis/ascii_chart.hh"
#include "analysis/table.hh"
#include "bench_common.hh"
#include "llm/executor.hh"
#include "llm/segments.hh"
#include "llm/training_model.hh"
#include "power/server_model.hh"

#include <iostream>

using namespace polca;

namespace {

enum class Knob
{
    NoCap,
    PowerCap325,
    Lock1100,
};

sim::TimeSeries
run(const char *model_name, Knob knob, int iterations)
{
    power::ServerModel server(power::ServerSpec::dgxA100_40gb());
    if (knob == Knob::PowerCap325)
        server.setPowerCapAll(325.0);
    else if (knob == Knob::Lock1100)
        server.lockClockAll(1100.0);

    llm::TrainingModel model(llm::TrainingSpec::forModel(model_name));
    llm::SegmentExecutor exec(server, {0, 1, 2, 3, 4, 5, 6, 7});
    auto iteration = llm::trainingIterationSegments(model);
    for (int i = 0; i < iterations; ++i)
        exec.run(iteration);
    // Normalize to TDP like the paper's y-axis.
    return exec.firstGpuPowerSeries().scaled(1.0 / 400.0);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv,
                     "Reproduces Fig 4: training power time-series "
                     "under capping knobs");
    bench::banner(
        "Figure 4 -- Power usage time-series for training workloads",
        "Peaks reach/exceed TDP (except RoBERTa); troughs at "
        "75/50/20% TDP; caps clip peaks; locks lower everything");

    analysis::Table table({"Model", "Knob", "Peak (xTDP)",
                           "Trough (xTDP)", "Iteration (s)"});

    for (const char *name : {"RoBERTa", "GPT-NeoX-20B", "Flan-T5-XXL"}) {
        for (Knob knob : {Knob::NoCap, Knob::PowerCap325,
                          Knob::Lock1100}) {
            sim::TimeSeries series = run(name, knob, 5);
            const char *label = knob == Knob::NoCap ? "no cap"
                : knob == Knob::PowerCap325 ? "325W cap" : "1.1GHz";
            table.row()
                .cell(std::string(name))
                .cell(label)
                .cell(series.maxValue(), 3)
                .cell(series.minValue(), 3)
                .cell(sim::ticksToSeconds(series.endTime()) / 5.0, 2);

            if (knob == Knob::NoCap) {
                analysis::ChartOptions options;
                options.title = std::string("  ") + name +
                    " (no cap), GPU power / TDP:";
                options.height = 10;
                options.width = 90;
                std::cout << analysis::asciiChart(series, options)
                          << "\n";
            }
        }
    }
    table.print(std::cout);

    std::printf("\nPaper anchors:\n");
    std::printf("  RoBERTa trough ~0.75 TDP, GPT-NeoX ~0.50, "
                "Flan-T5 ~0.20 (idle)\n");
    std::printf("  GPT-NeoX / Flan-T5 peaks at or above 1.0 TDP; "
                "RoBERTa below\n");
    std::printf("  Power capping clips peaks but leaves troughs; "
                "frequency locking lowers both (Insight 3)\n");
    return 0;
}
