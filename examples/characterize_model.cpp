/**
 * @file
 * Model characterization tool: the Section 4.2 methodology as a CLI.
 * Profiles one model's prompt/token phases — durations, power,
 * frequency sensitivity — and renders its power waveform.
 *
 * Usage:
 *   characterize_model [model] [input] [output] [batch]
 *   characterize_model BLOOM-176B 4096 512 1
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "analysis/ascii_chart.hh"
#include "analysis/table.hh"
#include "llm/executor.hh"
#include "llm/phase_model.hh"
#include "llm/segments.hh"
#include "power/server_model.hh"
#include "sim/logging.hh"

int
main(int argc, char **argv)
{
    using namespace polca;
    sim::setQuiet(true);

    std::string modelName = argc > 1 ? argv[1] : "BLOOM-176B";
    llm::InferenceConfig config;
    config.inputTokens = argc > 2 ? std::atoi(argv[2]) : 4096;
    config.outputTokens = argc > 3 ? std::atoi(argv[3]) : 512;
    config.batchSize = argc > 4 ? std::atoi(argv[4]) : 1;

    llm::ModelCatalog catalog;
    if (!catalog.contains(modelName)) {
        std::printf("Unknown model '%s'. Available:\n",
                    modelName.c_str());
        for (const auto &model : catalog.models())
            std::printf("  %s\n", model.name.c_str());
        return 1;
    }

    const llm::ModelSpec &model = catalog.byName(modelName);
    llm::PhaseModel phases(model);

    std::printf("Characterizing %s (%s, %.1fB params, %d GPUs)\n",
                model.name.c_str(), llm::toString(model.architecture),
                model.paramsBillions, model.inferenceGpus);
    std::printf("Config: input=%d output=%d batch=%d FP16\n\n",
                config.inputTokens, config.outputTokens,
                config.batchSize);

    // Phase report.
    power::GpuPowerModel gpu(power::GpuSpec::a100_80gb());
    analysis::Table table({"Phase", "Duration (s)", "GPU power (W)",
                           "xTDP", "Compute-bound"});
    gpu.setActivity(phases.promptActivity(config));
    table.row()
        .cell("prompt")
        .cell(sim::ticksToSeconds(phases.promptDuration(config)), 3)
        .cell(gpu.powerWatts(), 0)
        .cell(gpu.powerWatts() / 400.0, 2)
        .percentCell(phases.computeBoundFraction(llm::Phase::Prompt));
    gpu.setActivity(phases.tokenActivity(config));
    table.row()
        .cell("token")
        .cell(sim::ticksToSeconds(phases.tokenPhaseDuration(config)),
              3)
        .cell(gpu.powerWatts(), 0)
        .cell(gpu.powerWatts() / 400.0, 2)
        .percentCell(phases.computeBoundFraction(llm::Phase::Token));
    table.print(std::cout);

    // Frequency sensitivity (the Insight 7 trade-off).
    std::printf("\nFrequency-lock sensitivity:\n");
    analysis::Table freq({"SM clock (MHz)", "Peak power reduction",
                          "Latency increase"});
    gpu.setActivity(phases.promptActivity(config));
    gpu.unlockClock();
    double basePeak = gpu.powerWatts();
    sim::Tick baseLatency = phases.latencyAtClock(config, gpu);
    for (double mhz : {1410.0, 1305.0, 1275.0, 1200.0, 1110.0}) {
        gpu.lockClock(mhz);
        freq.row()
            .cell(mhz, 0)
            .percentCell(1.0 - gpu.powerWatts() / basePeak)
            .percentCell(static_cast<double>(
                             phases.latencyAtClock(config, gpu)) /
                             static_cast<double>(baseLatency) - 1.0);
    }
    freq.print(std::cout);

    // Power waveform over two requests.
    power::ServerModel server(power::ServerSpec::dgxA100_80gb());
    std::vector<std::size_t> gpus;
    for (int i = 0; i < model.inferenceGpus; ++i)
        gpus.push_back(static_cast<std::size_t>(i));
    llm::SegmentExecutor exec(server, gpus);
    auto segments = llm::inferenceSegments(phases, config);
    for (int request = 0; request < 2; ++request) {
        exec.run(segments);
        exec.idle(sim::msToTicks(500));
    }
    analysis::ChartOptions chart;
    chart.title = "\nGPU power waveform (2 requests), watts:";
    chart.height = 10;
    chart.width = 90;
    std::cout << analysis::asciiChart(exec.firstGpuPowerSeries(),
                                      chart);
    return 0;
}
