/**
 * @file
 * Quickstart: build a 40-server BLOOM inference row, oversubscribe
 * it by 30%, attach the POLCA power manager, replay a day of
 * diurnal traffic, and print the headline metrics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/oversub_experiment.hh"
#include "sim/logging.hh"

int
main()
{
    using namespace polca;
    sim::setQuiet(true);

    // 1. Describe the deployment: a row provisioned for 40 DGX-A100
    //    servers, serving BLOOM-176B, with 30% extra servers added
    //    under the same power budget.
    core::ExperimentConfig config;
    config.row.baseServers = 40;
    config.row.addedServerFraction = 0.30;
    config.row.modelName = "BLOOM-176B";

    // 2. Pick the policy: the paper's dual-threshold POLCA
    //    (T1 = 80% -> lock low-priority to 1275 MHz;
    //     T2 = 89% -> LP to 1110 MHz, then HP to 1305 MHz).
    config.policy = core::PolicyConfig::polca();

    // 3. Simulate two days of diurnal traffic (tail percentiles
    //    need more than one day to settle).
    config.duration = sim::secondsToTicks(2 * 24 * 3600.0);
    config.seed = 42;

    std::printf("Running POLCA on a +30%% oversubscribed row "
                "(two simulated days)...\n");
    core::ExperimentResult result = runOversubExperiment(config);

    // 4. Compare against the same row without power management.
    core::ExperimentResult baseline =
        runOversubExperiment(core::unthrottledBaseline(config));
    core::NormalizedLatency low =
        core::normalizeLatency(result.low, baseline.low);
    core::NormalizedLatency high =
        core::normalizeLatency(result.high, baseline.high);

    std::printf("\nResults (+30%% servers under the original power "
                "budget):\n");
    std::printf("  power brake events ......... %llu (target: 0)\n",
                static_cast<unsigned long long>(
                    result.powerBrakeEvents));
    std::printf("  peak row utilization ....... %.1f%%\n",
                result.maxUtilization * 100.0);
    std::printf("  mean row utilization ....... %.1f%%\n",
                result.meanUtilization * 100.0);
    std::printf("  requests served ............ %llu\n",
                static_cast<unsigned long long>(
                    result.lowCompletions + result.highCompletions));
    std::printf("  high-pri p50 latency ....... %.3fx baseline "
                "(SLO < 1.01)\n", high.p50);
    std::printf("  high-pri p99 latency ....... %.3fx baseline "
                "(SLO < 1.05)\n", high.p99);
    std::printf("  low-pri p50 latency ........ %.3fx baseline "
                "(SLO < 1.05)\n", low.p50);
    std::printf("  low-pri p99 latency ........ %.3fx baseline "
                "(SLO < 1.50)\n", low.p99);
    std::printf("  capping commands ........... %llu cap / %llu "
                "uncap\n",
                static_cast<unsigned long long>(result.capCommands),
                static_cast<unsigned long long>(
                    result.uncapCommands));

    bool ok = core::meetsSlos(low, high, result.powerBrakeEvents,
                              workload::paperSlos());
    std::printf("\n%s\n",
                ok ? "All SLOs met: 30% more servers deployed with "
                     "no extra power budget."
                   : "SLO violation detected; try a smaller "
                     "oversubscription level.");
    return ok ? 0 : 1;
}
