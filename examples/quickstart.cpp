/**
 * @file
 * Quickstart: run the paper's headline experiment — a 40-server
 * BLOOM inference row oversubscribed by 30% under the POLCA policy —
 * from its declarative scenario file (scenarios/quickstart.toml),
 * and print the headline metrics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <fstream>

#include "config/scenario.hh"
#include "core/oversub_experiment.hh"
#include "sim/logging.hh"

namespace {

using namespace polca;

/** The shipped scenario, embedded as a fallback so the example runs
 *  from any working directory.  Mirrors scenarios/quickstart.toml. */
const char *kQuickstartScenario = R"toml(
[experiment]
duration = 2d
seed = 42

[row]
base_servers = 40
added_server_fraction = 30%

[policy]
preset = "polca"
)toml";

/** Load scenarios/quickstart.toml from the usual run directories,
 *  falling back to the embedded copy. */
config::ScenarioSet
loadQuickstart(config::Diagnostics &diag)
{
    for (const char *path : {"scenarios/quickstart.toml",
                             "../scenarios/quickstart.toml",
                             "../../scenarios/quickstart.toml"}) {
        std::ifstream probe(path);
        if (probe)
            return config::loadScenarioFile(path, {}, diag);
    }
    return config::loadScenarioString(kQuickstartScenario,
                                      "quickstart (embedded)", {},
                                      diag);
}

} // namespace

int
main()
{
    sim::setQuiet(true);

    // 1. One scenario file describes the whole experiment: the
    //    deployment, the policy, and the run parameters.  Resolution
    //    order is struct defaults < file < --set overrides < sweep.
    config::Diagnostics diag;
    config::ScenarioSet scenario = loadQuickstart(diag);
    if (!diag.ok()) {
        std::fprintf(stderr, "%s\n", diag.str().c_str());
        return 2;
    }
    core::ExperimentConfig config =
        scenario.points.front().config;

    std::printf("Running POLCA on a +%.0f%% oversubscribed row "
                "(%.0f simulated days)...\n",
                config.row.addedServerFraction * 100.0,
                sim::ticksToSeconds(config.duration) / 86400.0);
    core::ExperimentResult result = runOversubExperiment(config);

    // 2. Compare against the same row without power management.
    core::ExperimentResult baseline =
        runOversubExperiment(core::unthrottledBaseline(config));
    core::NormalizedLatency low =
        core::normalizeLatency(result.low, baseline.low);
    core::NormalizedLatency high =
        core::normalizeLatency(result.high, baseline.high);

    std::printf("\nResults (+30%% servers under the original power "
                "budget):\n");
    std::printf("  power brake events ......... %llu (target: 0)\n",
                static_cast<unsigned long long>(
                    result.powerBrakeEvents));
    std::printf("  peak row utilization ....... %.1f%%\n",
                result.maxUtilization * 100.0);
    std::printf("  mean row utilization ....... %.1f%%\n",
                result.meanUtilization * 100.0);
    std::printf("  requests served ............ %llu\n",
                static_cast<unsigned long long>(
                    result.lowCompletions + result.highCompletions));
    std::printf("  high-pri p50 latency ....... %.3fx baseline "
                "(SLO < 1.01)\n", high.p50);
    std::printf("  high-pri p99 latency ....... %.3fx baseline "
                "(SLO < 1.05)\n", high.p99);
    std::printf("  low-pri p50 latency ........ %.3fx baseline "
                "(SLO < 1.05)\n", low.p50);
    std::printf("  low-pri p99 latency ........ %.3fx baseline "
                "(SLO < 1.50)\n", low.p99);
    std::printf("  capping commands ........... %llu cap / %llu "
                "uncap\n",
                static_cast<unsigned long long>(result.capCommands),
                static_cast<unsigned long long>(
                    result.uncapCommands));

    bool ok = core::meetsSlos(low, high, result.powerBrakeEvents,
                              workload::paperSlos());
    std::printf("\n%s\n",
                ok ? "All SLOs met: 30% more servers deployed with "
                     "no extra power budget."
                   : "SLO violation detected; try a smaller "
                     "oversubscription level.");
    return ok ? 0 : 1;
}
