/**
 * @file
 * Site capacity planning: a heterogeneous site (A100 and H100 row
 * groups serving different models) swept over the site budget
 * fraction — how far can the site oversubscribe before the site
 * breaker starts to complain?  The scenario-file twin of this demo
 * is scenarios/site_capacity.toml.
 *
 * Budgets stack multiplicatively: each row gets 90 % of its
 * nameplate sum, the site gets `fraction` of the summed row budgets,
 * so the site can be oversubscribed even while every row clears its
 * own budget — the paper's Insight 9 applied once more at site
 * scope.
 *
 * Usage:
 *   datacenter_fleet [rowsPerGroup] [hours]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "analysis/table.hh"
#include "core/oversub_experiment.hh"
#include "sim/logging.hh"

int
main(int argc, char **argv)
{
    using namespace polca;
    sim::setQuiet(true);

    int rowsPerGroup = argc > 1 ? std::atoi(argv[1]) : 2;
    double hours = argc > 2 ? std::atof(argv[2]) : 2.0;

    core::ExperimentConfig config;
    config.duration = sim::secondsToTicks(hours * 3600.0);
    config.seed = 7;

    cluster::TopologyConfig &topology = config.topology;
    topology.enabled = true;
    topology.rowBudgetFraction = 0.90;

    cluster::TopologyRowGroup a100;
    a100.name = "a100";
    a100.rows = rowsPerGroup;
    a100.racksPerRow = 4;
    a100.serversPerRack = 10;
    a100.server = "DGX-A100-80GB";
    a100.model = "BLOOM-176B";
    topology.groups.push_back(a100);

    cluster::TopologyRowGroup h100;
    h100.name = "h100";
    h100.rows = rowsPerGroup;
    h100.racksPerRow = 4;
    h100.serversPerRack = 10;
    h100.server = "DGX-H100";
    h100.model = "Llama2-70B";
    topology.groups.push_back(h100);

    std::printf("Site: %d rows (%d servers) in two hardware "
                "generations, %.1f h per point\n\n",
                topology.numRows(), topology.numServers(), hours);

    analysis::Table table({"Site budget", "Budget (kW)", "Peak (kW)",
                           "Near-trips", "Trips", "Brakes",
                           "Completions", "Energy (kWh)"});
    for (double fraction : {1.0, 0.9, 0.8, 0.7}) {
        topology.siteBudgetFraction = fraction;
        core::ExperimentResult result =
            core::runOversubExperiment(config);

        // The site root is the first pre-order rollup entry.
        const core::DomainStats &site = result.domains.front();
        table.row()
            .percentCell(fraction)
            .cell(analysis::formatFixed(site.budgetWatts / 1000.0, 0))
            .cell(analysis::formatFixed(site.peakWatts / 1000.0, 0))
            .cell(static_cast<long long>(result.breakerNearTrips))
            .cell(static_cast<long long>(result.breakerTrips))
            .cell(static_cast<long long>(result.powerBrakeEvents))
            .cell(static_cast<long long>(result.lowCompletions +
                                         result.highCompletions))
            .cell(analysis::formatFixed(result.energyKwh, 1));
    }
    table.print(std::cout);

    std::printf("\nEach row keeps its own POLCA manager and budget; "
                "the site breaker only sees the\ncompositional "
                "rollup, so shrinking the site budget surfaces as "
                "near-trips before any\nrow misbehaves — the "
                "capacity planner's early-warning margin.\n");
    return 0;
}
