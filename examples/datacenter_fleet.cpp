/**
 * @file
 * Fleet view: several rows (PDU domains), each oversubscribed +30%
 * and managed by its own POLCA instance — the Figure 2 hierarchy end
 * to end.  Shows that per-row management composes: each row keeps
 * its own budget while the fleet gains rows x 30% extra capacity.
 *
 * Usage:
 *   datacenter_fleet [numRows] [serversPerRow] [hours]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "analysis/table.hh"
#include "cluster/datacenter.hh"
#include "core/power_manager.hh"
#include "llm/phase_model.hh"
#include "sim/logging.hh"
#include "telemetry/energy_meter.hh"
#include "workload/trace_gen.hh"

int
main(int argc, char **argv)
{
    using namespace polca;
    sim::setQuiet(true);

    int numRows = argc > 1 ? std::atoi(argv[1]) : 3;
    int serversPerRow = argc > 2 ? std::atoi(argv[2]) : 20;
    double hours = argc > 3 ? std::atof(argv[3]) : 6.0;

    sim::Simulation sim(7);

    cluster::DatacenterConfig config;
    config.numRows = numRows;
    config.row.baseServers = serversPerRow;
    config.row.addedServerFraction = 0.30;
    cluster::Datacenter dc(sim, config, sim.rng().fork(1));

    // One POLCA manager per row (the PDU is the control domain).
    std::vector<std::unique_ptr<core::PowerManager>> managers;
    for (int r = 0; r < dc.numRows(); ++r) {
        cluster::Row &row = dc.row(r);
        auto manager = std::make_unique<core::PowerManager>(
            sim, row.rowManager(), row.provisionedWatts(),
            core::PolicyConfig::polca(),
            sim.rng().fork(100 + static_cast<std::uint64_t>(r)));
        for (workload::Priority p :
             {workload::Priority::Low, workload::Priority::High}) {
            for (cluster::InferenceServer *server : row.pool(p))
                manager->addTarget(p, server);
        }
        manager->start();
        managers.push_back(std::move(manager));
    }

    // Independent diurnal traffic per row.
    workload::TraceGenerator generator;
    llm::PhaseModel phases(
        llm::ModelCatalog().byName("BLOOM-176B"));
    std::vector<workload::Trace> traces;
    traces.reserve(static_cast<std::size_t>(dc.numRows()));
    for (int r = 0; r < dc.numRows(); ++r) {
        workload::TraceGenOptions traceOptions;
        traceOptions.duration = sim::secondsToTicks(hours * 3600.0);
        traceOptions.numServers = dc.row(r).numServers();
        traceOptions.serviceSecondsPerRequest =
            generator.expectedServiceSeconds(phases);
        traceOptions.seed = 1000 + static_cast<std::uint64_t>(r);
        traces.push_back(generator.generate(traceOptions));
    }
    for (int r = 0; r < dc.numRows(); ++r)
        dc.row(r).dispatcher().injectTrace(
            traces[static_cast<std::size_t>(r)]);

    telemetry::EnergyMeter fleetEnergy(
        sim, [&dc] { return dc.powerWatts(); });
    fleetEnergy.start();

    std::printf("Simulating %d rows x (%d + 30%%) servers for %.1f "
                "hours...\n\n", numRows, serversPerRow, hours);
    sim.runFor(sim::secondsToTicks(hours * 3600.0));

    analysis::Table table({"Row", "Servers", "Mean util", "Peak util",
                           "Brakes", "Caps", "Completions"});
    std::uint64_t fleetBrakes = 0;
    for (int r = 0; r < dc.numRows(); ++r) {
        core::PowerManager &manager =
            *managers[static_cast<std::size_t>(r)];
        fleetBrakes += manager.powerBrakeEvents();
        std::uint64_t completions =
            dc.row(r).dispatcher().completions(
                workload::Priority::Low) +
            dc.row(r).dispatcher().completions(
                workload::Priority::High);
        table.row()
            .cell(static_cast<long long>(r))
            .cell(static_cast<long long>(dc.row(r).numServers()))
            .percentCell(manager.meanUtilization())
            .percentCell(manager.maxUtilization())
            .cell(static_cast<long long>(manager.powerBrakeEvents()))
            .cell(static_cast<long long>(manager.capCommands()))
            .cell(static_cast<long long>(completions));
    }
    table.print(std::cout);

    int extraServers = dc.numServers() - numRows * serversPerRow;
    std::printf("\nFleet: %d servers under a %.0f kW total budget "
                "(%d of them added via oversubscription)\n",
                dc.numServers(), dc.provisionedWatts() / 1000.0,
                extraServers);
    std::printf("Fleet energy: %.1f kWh; power brakes fleet-wide: "
                "%llu\n", fleetEnergy.kilowattHours(),
                static_cast<unsigned long long>(fleetBrakes));
    std::printf("\nPer-row POLCA instances compose: each PDU domain "
                "is protected independently, so the\nfleet gains "
                "+30%% capacity without any cross-row coordination.\n");
    return 0;
}
