/**
 * @file
 * Fault-scenario sweep: how does POLCA survive a hostile control
 * plane?
 *
 * Part 1 runs every canned fault scenario (telemetry blackout,
 * bursty Gilbert–Elliott reading loss, flaky sensors, a correlated
 * SMBPBI outage, server crashes) twice — with the safety watchdog
 * enabled and disabled — and prints survival metrics: breaker
 * trips, overdraw energy, fail-safe time, and dropped work.
 *
 * Part 2 is the spotlight: a telemetry blackout that begins while
 * load is still moderate and covers the rising edge of the traffic
 * ramp.  With the watchdog off, the manager freezes in its benign
 * pre-blackout state, row power climbs through the breaker's trip
 * limit with nobody watching, and the breaker opens.  With the
 * watchdog on, stale telemetry triggers fail-safe (deepest caps
 * plus the power brake over its dedicated hardware line) and the
 * breaker never trips.  Same seed, same trace — the only variable
 * is the watchdog.
 *
 * Part 2 is declared in scenarios/blackout_watchdog.toml — a
 * two-point [sweep] over manager.watchdog_enabled — and executed
 * here through the scenario layer and core::SweepRunner, exactly as
 * `polcactl run --scenario-file` would.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/fault_scenarios
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/table.hh"
#include "config/scenario.hh"
#include "core/oversub_experiment.hh"
#include "core/sweep_runner.hh"
#include "faults/fault_plan.hh"
#include "sim/logging.hh"

namespace {

using namespace polca;

/** Part 1: every canned scenario, watchdog on and off. */
void
sweepScenarios()
{
    // Quickstart-level stress (+30% servers) with a tight breaker:
    // trip limit only 5% above the provisioned budget.
    core::ExperimentConfig base;
    base.row.baseServers = 24;
    base.row.addedServerFraction = 0.30;
    base.row.modelName = "BLOOM-176B";
    base.policy = core::PolicyConfig::polca();
    base.duration = sim::secondsToTicks(6 * 3600.0);
    base.seed = 42;
    base.breakerLimitFraction = 1.05;

    int numServers = static_cast<int>(
        base.row.baseServers * (1.0 + base.row.addedServerFraction));

    std::printf("Part 1: sweeping %zu fault scenarios x {watchdog "
                "on, off} on a +30%% row\n(6 simulated hours "
                "each)...\n\n",
                faults::scenarioNames().size());

    analysis::Table table({"Scenario", "Watchdog", "Brk trips",
                           "Near", "Overdraw kJ", "Fail-safe s",
                           "Brakes", "Drop rd", "Corrupt",
                           "Crash (req)"});
    for (const std::string &name : faults::scenarioNames()) {
        for (bool watchdog : {true, false}) {
            core::ExperimentConfig config = base;
            config.faultPlan = faults::scenarioByName(
                name, config.duration, numServers);
            config.manager.watchdogEnabled = watchdog;

            core::ExperimentResult result =
                runOversubExperiment(config);
            table.row()
                .cell(name)
                .cell(watchdog ? "on" : "off")
                .cell(static_cast<long long>(result.breakerTrips))
                .cell(static_cast<long long>(result.breakerNearTrips))
                .cell(result.overdrawWattSeconds / 1000.0, 1)
                .cell(sim::ticksToSeconds(result.failSafeTicks), 0)
                .cell(static_cast<long long>(result.powerBrakeEvents))
                .cell(static_cast<long long>(result.droppedReadings))
                .cell(static_cast<long long>(
                    result.corruptedReadings))
                .cell(std::to_string(result.crashesInjected) + " (" +
                      std::to_string(result.droppedRequests) + ")");
        }
    }
    table.print(std::cout);
}

/**
 * Part 2: the blackout-on-the-rising-edge spotlight.
 *
 * The diurnal cycle is shaped so traffic ramps from ~63% to ~95%
 * busy across the run, with short-term noise turned down so the
 * crossing times are stable.  Telemetry goes dark at t = 5 min —
 * while row power is still below the first cap trigger, so the
 * frozen manager holds no caps at all — and stays dark for 3.5
 * hours, through the point where power crosses the breaker's trip
 * limit.
 */
int
spotlightBlackout()
{
    // The scenario file carries the whole setup: +50% servers under
    // a 1.05x breaker, a steep traffic ramp peaking at 95% busy
    // 4.5 h in, telemetry dark from t=5 min for 3.5 h, and a [sweep]
    // axis over manager.watchdog_enabled.  The embedded copy mirrors
    // scenarios/blackout_watchdog.toml so the example runs from any
    // working directory.
    static const char *kSpotlightScenario = R"toml(
[experiment]
duration = 6h
seed = 42
breaker_limit_fraction = 1.05

[row]
base_servers = 24
added_server_fraction = 50%

[policy]
preset = "polca"

[workload.diurnal]
base_utilization = 40%
daily_amplitude = 55%
noise_amplitude = 0.5%
peak_seconds_of_day = 4.5h

[faults]
[[faults.blackouts]]
start = 5min
duration = 3.5h

[sweep]
"manager.watchdog_enabled" = [false, true]
)toml";

    config::Diagnostics diag;
    config::ScenarioSet scenario;
    const char *source = nullptr;
    for (const char *path :
         {"scenarios/blackout_watchdog.toml",
          "../scenarios/blackout_watchdog.toml",
          "../../scenarios/blackout_watchdog.toml"}) {
        std::ifstream probe(path);
        if (probe) {
            scenario = config::loadScenarioFile(path, {}, diag);
            source = path;
            break;
        }
    }
    if (!source) {
        scenario = config::loadScenarioString(
            kSpotlightScenario, "blackout_watchdog (embedded)", {},
            diag);
        source = "embedded scenario";
    }
    if (!diag.ok()) {
        std::fprintf(stderr, "%s\n", diag.str().c_str());
        return 2;
    }

    std::printf("\nPart 2: spotlight — telemetry goes dark at "
                "t=5 min while the row is lightly\nloaded and "
                "uncapped, then stays dark for 3.5 h as traffic "
                "ramps through the\nbreaker limit "
                "(%zu sweep points from %s).\n\n",
                scenario.points.size(), source);

    std::vector<core::SweepPoint> points;
    for (const config::ResolvedScenario &point : scenario.points)
        points.push_back({point.label, point.config, ""});
    core::SweepOptions options;
    options.runBaseline = false;
    options.echoProgress = false;
    core::SweepRunner runner(std::move(points), options);
    const std::vector<core::SweepPointResult> &results = runner.run();

    analysis::Table table({"Watchdog", "Brk trips", "First trip s",
                           "Over-limit streak s", "Overdraw kJ",
                           "Fail-safe s", "Peak util"});
    std::uint64_t tripsOff = 0, tripsOn = 0;
    for (const core::SweepPointResult &point : results) {
        const core::ExperimentResult &result = point.result;
        bool watchdog =
            point.label.find("true") != std::string::npos;
        if (watchdog)
            tripsOn = result.breakerTrips;
        else
            tripsOff = result.breakerTrips;
        table.row()
            .cell(watchdog ? "on" : "off")
            .cell(static_cast<long long>(result.breakerTrips))
            .cell(result.firstBreakerTrip < 0
                      ? std::string("never")
                      : analysis::formatFixed(
                            sim::ticksToSeconds(
                                result.firstBreakerTrip), 0))
            .cell(sim::ticksToSeconds(result.longestOverLimitStreak),
                  0)
            .cell(result.overdrawWattSeconds / 1000.0, 1)
            .cell(sim::ticksToSeconds(result.failSafeTicks), 0)
            .percentCell(result.maxUtilization);
    }
    table.print(std::cout);

    bool contrast = tripsOff > 0 && tripsOn == 0;
    std::printf(
        "\n%s\n",
        contrast
            ? "Watchdog off: the frozen manager let the breaker "
              "trip.  Watchdog on: fail-safe\ncapped the row within "
              "one timeout and the breaker never opened."
            : "Unexpected: the watchdog contrast did not reproduce "
              "(tune the scenario).");
    return contrast ? 0 : 1;
}

} // namespace

int
main()
{
    sim::setQuiet(true);
    sweepScenarios();
    return spotlightBlackout();
}
