/**
 * @file
 * Training power audit: the Section 4.1/5.1 view. Shows a training
 * job's iteration waveform, how far cluster-scale synchronized
 * swings stress the power infrastructure, and what each capping
 * knob buys.
 *
 * Usage:
 *   training_power_audit [model] [numServers]
 *   training_power_audit Flan-T5-XXL 64
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "analysis/ascii_chart.hh"
#include "analysis/table.hh"
#include "cluster/training_cluster.hh"
#include "llm/executor.hh"
#include "llm/segments.hh"
#include "llm/training_model.hh"
#include "power/server_model.hh"
#include "sim/logging.hh"

int
main(int argc, char **argv)
{
    using namespace polca;
    sim::setQuiet(true);

    std::string modelName = argc > 1 ? argv[1] : "GPT-NeoX-20B";
    int numServers = argc > 2 ? std::atoi(argv[2]) : 40;

    llm::TrainingModel model(llm::TrainingSpec::forModel(modelName));
    std::printf("Training power audit: %s on %d DGX-A100 servers\n\n",
                modelName.c_str(), numServers);

    // Server-level waveform under each knob.
    analysis::Table table({"Knob", "Peak server (W)",
                           "Trough server (W)", "Iterations/s",
                           "Perf vs uncapped"});
    double baseRate = 0.0;
    for (int knob = 0; knob < 3; ++knob) {
        power::ServerModel server(power::ServerSpec::dgxA100_40gb());
        if (knob == 1)
            server.setPowerCapAll(325.0);
        else if (knob == 2)
            server.lockClockAll(1100.0);

        llm::SegmentExecutor exec(server, {0, 1, 2, 3, 4, 5, 6, 7});
        auto iteration = llm::trainingIterationSegments(model);
        for (int i = 0; i < 5; ++i)
            exec.run(iteration);

        double rate = 5.0 / sim::ticksToSeconds(exec.now());
        if (knob == 0)
            baseRate = rate;
        const char *label = knob == 0 ? "uncapped"
            : knob == 1 ? "325W power cap" : "1.1GHz lock";
        table.row()
            .cell(label)
            .cell(exec.serverPowerSeries().maxValue(), 0)
            .cell(exec.serverPowerSeries().minValue(), 0)
            .cell(rate, 3)
            .percentCell(rate / baseRate);

        if (knob == 0) {
            analysis::ChartOptions chart;
            chart.title = "Server power over 5 iterations "
                          "(uncapped), watts:";
            chart.height = 9;
            chart.width = 90;
            std::cout << analysis::asciiChart(
                             exec.serverPowerSeries(), chart)
                      << "\n";
        }
    }
    table.print(std::cout);

    // Cluster-scale synchronized swings (Insight 2).
    cluster::TrainingClusterOptions tc;
    tc.numServers = numServers;
    tc.duration = sim::secondsToTicks(300.0);
    // Sample at 0.5 s: the row manager cadence (2 s) aliases with
    // round iteration periods and would hide the swings.
    tc.sampleInterval = sim::msToTicks(500);
    sim::TimeSeries cluster = cluster::trainingClusterPower(
        model, power::ServerSpec::dgxA100_40gb(), tc);

    double provisioned = numServers * 5850.0;
    std::printf("\nCluster-scale (synchronized %d-server job):\n",
                numServers);
    std::printf("  peak utilization ........... %.1f%% of "
                "provisioned\n",
                cluster.maxValue() / provisioned * 100.0);
    std::printf("  max 2s power swing ......... %.1f%% of "
                "provisioned\n",
                cluster.maxRiseWithin(sim::secondsToTicks(2)) /
                    provisioned * 100.0);
    std::printf("  swing magnitude ............ %.0f kW "
                "(peak-to-trough)\n",
                (cluster.maxValue() - cluster.minValue()) / 1000.0);
    std::printf("\nImplication (Insight 2): training clusters offer "
                "only ~3%% oversubscription headroom;\nuse frequency "
                "locking to damp swings, and keep oversubscription "
                "for inference rows.\n");
    return 0;
}
