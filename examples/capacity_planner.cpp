/**
 * @file
 * Capacity planner: the operator-facing use case. Given a row's
 * power budget and the Table 6 SLOs, sweep oversubscription levels
 * and report the largest safe one — plus what each level buys.
 *
 * Usage:
 *   capacity_planner [baseServers] [simulatedHours]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "analysis/table.hh"
#include "core/oversub_experiment.hh"
#include "sim/logging.hh"

int
main(int argc, char **argv)
{
    using namespace polca;
    using namespace polca::core;
    sim::setQuiet(true);

    int baseServers = argc > 1 ? std::atoi(argv[1]) : 40;
    double hours = argc > 2 ? std::atof(argv[2]) : 12.0;

    std::printf("Capacity plan for a %d-server row "
                "(budget %.0f kW, BLOOM-176B, POLCA 80/89)\n\n",
                baseServers, baseServers * 4950.0 / 1000.0);

    workload::SloSpec slos = workload::paperSlos();
    analysis::Table table({"Added servers", "Deployed", "Brakes",
                           "Peak util", "HP p99", "LP p99",
                           "Verdict"});

    double best = 0.0;
    for (double added : {0.0, 0.10, 0.20, 0.25, 0.30, 0.35, 0.40}) {
        ExperimentConfig config;
        config.row.baseServers = baseServers;
        config.row.addedServerFraction = added;
        config.duration = sim::secondsToTicks(hours * 3600.0);
        config.seed = 42;

        ExperimentResult managed = runOversubExperiment(config);
        ExperimentResult baseline =
            runOversubExperiment(unthrottledBaseline(config));
        NormalizedLatency low =
            normalizeLatency(managed.low, baseline.low);
        NormalizedLatency high =
            normalizeLatency(managed.high, baseline.high);
        bool ok =
            meetsSlos(low, high, managed.powerBrakeEvents, slos);
        if (ok)
            best = added;

        int deployed = baseServers +
            static_cast<int>(added * baseServers + 0.5);
        table.row()
            .percentCell(added, 0)
            .cell(static_cast<long long>(deployed))
            .cell(static_cast<long long>(managed.powerBrakeEvents))
            .percentCell(managed.maxUtilization)
            .cell(high.p99, 3)
            .cell(low.p99, 3)
            .cell(ok ? "SAFE" : "violates SLOs");
    }
    table.print(std::cout);

    int extra = static_cast<int>(best * baseServers + 0.5);
    std::printf("\nRecommendation: deploy %d extra servers (+%.0f%%) "
                "under the existing %.0f kW budget.\n", extra,
                best * 100.0, baseServers * 4950.0 / 1000.0);
    std::printf("That is %d additional BLOOM-176B endpoints with "
                "zero new datacenter build-out.\n", extra);
    return 0;
}
