/**
 * @file
 * Control-plane timeline: trace-driven visualization and a
 * self-check of the observability subsystem.
 *
 * Runs one seeded oversubscription experiment with metrics and
 * tracing attached, then:
 *
 *  1. verifies every cap_issue span in the trace has exactly the
 *     configured OOB command latency (the 40 s actuation lag of
 *     Table 2 — if these disagree, either the SMBPBI model or the
 *     trace recorder is lying);
 *  2. re-runs the identical configuration and checks that the
 *     metrics dump and the exported Chrome JSON are byte-identical
 *     (determinism is what makes traces diffable across policy
 *     changes);
 *  3. renders the reactive-capping overshoot story as an ASCII
 *     timeline: row power sparkline from the telemetry readings,
 *     annotated with cap issues (C), brake engagements (B),
 *     fail-safe entries (F), and breaker trips (T).
 *
 * Exits non-zero when any check fails, so it doubles as an
 * integration test of the obs subsystem.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/control_plane_timeline
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/oversub_experiment.hh"
#include "faults/fault_plan.hh"
#include "obs/observability.hh"
#include "sim/logging.hh"

namespace {

using namespace polca;

int failures = 0;

void
check(bool ok, const char *what)
{
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
    if (!ok)
        ++failures;
}

core::ExperimentConfig
makeConfig()
{
    core::ExperimentConfig config;
    config.row.baseServers = 24;
    config.row.addedServerFraction = 0.30;
    config.policy = core::PolicyConfig::polca();
    config.duration = sim::secondsToTicks(6 * 3600.0);
    config.seed = 42;
    config.breakerLimitFraction = 1.05;
    int numServers = static_cast<int>(
        config.row.baseServers *
        (1.0 + config.row.addedServerFraction));
    // A telemetry blackout makes the timeline interesting: the
    // manager goes blind mid-ramp and the watchdog's fail-safe
    // window shows up as an F mark.
    config.faultPlan = faults::scenarioByName(
        "blackout", config.duration, numServers);
    return config;
}

struct RunOutput
{
    core::ExperimentResult result;
    std::string metricsDump;
    std::string traceJson;
    std::vector<obs::TraceEvent> events;
};

RunOutput
runOnce()
{
    // Capacity sized so a 6 h run keeps every event (no ring
    // overwrite => run-to-run comparisons see the full trace).
    obs::Observability observability(1u << 18);
    observability.trace.setCategoryMask(obs::kAllTraceCategories);

    core::ExperimentConfig config = makeConfig();
    config.obs = &observability;

    RunOutput out;
    out.result = core::runOversubExperiment(config);

    std::ostringstream metrics;
    observability.metrics.dump(metrics);
    out.metricsDump = metrics.str();

    std::ostringstream json;
    observability.trace.exportChromeJson(json);
    out.traceJson = json.str();

    out.events = observability.trace.events();
    return out;
}

} // namespace

int
main()
{
    sim::setQuiet(true);
    core::ExperimentConfig config = makeConfig();

    std::printf("Running %s, %d+%.0f%% servers, %.1f h, seed %llu "
                "(blackout scenario)...\n\n",
                config.policy.name.c_str(), config.row.baseServers,
                config.row.addedServerFraction * 100.0,
                sim::ticksToSeconds(config.duration) / 3600.0,
                static_cast<unsigned long long>(config.seed));
    RunOutput first = runOnce();

    // --- Check 1: cap-apply latency matches the configured OOB
    // command latency, span by span. -------------------------------
    std::printf("Check 1: cap_issue spans vs configured OOB "
                "latency (%.0f s)\n",
                sim::ticksToSeconds(config.manager.oobCommandLatency));
    std::size_t capSpans = 0;
    std::size_t mismatched = 0;
    for (const obs::TraceEvent &e : first.events) {
        if (std::strcmp(e.name, "cap_issue") != 0)
            continue;
        ++capSpans;
        if (e.duration != config.manager.oobCommandLatency)
            ++mismatched;
    }
    std::printf("  %zu cap_issue spans, %zu mismatched\n", capSpans,
                mismatched);
    check(capSpans > 0, "at least one cap_issue span recorded");
    check(mismatched == 0,
          "every span duration equals the configured latency");

    // --- Check 2: same seed => byte-identical exports. -------------
    std::printf("\nCheck 2: determinism across two identical runs\n");
    RunOutput second = runOnce();
    check(first.metricsDump == second.metricsDump,
          "metrics dumps byte-identical");
    check(first.traceJson == second.traceJson,
          "Chrome JSON exports byte-identical");

    // --- Timeline: power sparkline + control-plane marks. ----------
    constexpr std::size_t kColumns = 72;
    double columnTicks =
        static_cast<double>(config.duration) / kColumns;
    std::vector<double> peakWatts(kColumns, 0.0);
    std::string marks(kColumns, ' ');
    auto column = [&](sim::Tick t) {
        auto c = static_cast<std::size_t>(
            static_cast<double>(t) / columnTicks);
        return std::min(c, kColumns - 1);
    };
    // Later marks overwrite earlier ones within a column; rank the
    // passes so the rarest, most important events win.
    for (const obs::TraceEvent &e : first.events) {
        if (std::strcmp(e.name, "row_reading") == 0) {
            std::size_t c = column(e.start);
            peakWatts[c] = std::max(peakWatts[c], e.value);
        }
    }
    for (const obs::TraceEvent &e : first.events) {
        if (std::strcmp(e.name, "cap_issue") == 0)
            marks[column(e.start)] = 'C';
    }
    for (const obs::TraceEvent &e : first.events) {
        if (std::strcmp(e.name, "brake_engage") == 0)
            marks[column(e.start)] = 'B';
    }
    for (const obs::TraceEvent &e : first.events) {
        if (std::strcmp(e.name, "failsafe_enter") == 0)
            marks[column(e.start)] = 'F';
    }
    for (const obs::TraceEvent &e : first.events) {
        if (std::strcmp(e.name, "breaker_trip") == 0)
            marks[column(e.start)] = 'T';
    }

    double maxWatts =
        *std::max_element(peakWatts.begin(), peakWatts.end());
    const char levels[] = " .:-=+*#%@";
    std::string spark(kColumns, ' ');
    for (std::size_t c = 0; c < kColumns; ++c) {
        if (maxWatts <= 0.0)
            continue;
        auto level = static_cast<std::size_t>(
            peakWatts[c] / maxWatts * 9.0 + 0.5);
        spark[c] = levels[std::min<std::size_t>(level, 9)];
    }

    std::printf("\nTimeline (%.1f h, %.0f min/column; peak %.0f kW)\n",
                sim::ticksToSeconds(config.duration) / 3600.0,
                sim::ticksToSeconds(
                    static_cast<sim::Tick>(columnTicks)) / 60.0,
                maxWatts / 1000.0);
    std::printf("  power |%s|\n", spark.c_str());
    std::printf("  marks |%s|\n", marks.c_str());
    std::printf("  C cap issued   B brake engaged   F fail-safe "
                "entry   T breaker trip\n");

    std::printf("\nRun summary: %llu cap / %llu uncap commands, "
                "%llu brake events, %llu fail-safe entries, "
                "%llu breaker trips\n",
                static_cast<unsigned long long>(
                    first.result.capCommands),
                static_cast<unsigned long long>(
                    first.result.uncapCommands),
                static_cast<unsigned long long>(
                    first.result.powerBrakeEvents),
                static_cast<unsigned long long>(
                    first.result.failSafeEntries),
                static_cast<unsigned long long>(
                    first.result.breakerTrips));

    std::printf("\n%s\n",
                failures == 0 ? "All checks passed."
                              : "CHECKS FAILED");
    return failures == 0 ? 0 : 1;
}
