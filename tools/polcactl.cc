/**
 * @file
 * polcactl — command-line front-end to the polcasim library.
 *
 *   polcactl models
 *   polcactl policy <polca|1tlp|1tall|nocap|aware>
 *   polcactl trace generate [--days N] [--servers N] [--seed S] \
 *                           [--out FILE]
 *   polcactl trace stats FILE
 *   polcactl trace regenerate FILE [--bin SECONDS] [--seed S] \
 *                             [--out FILE]
 *   polcactl run [--added F] [--days N] [--seed S] \
 *                [--policy NAME] [--power-scale F] [--workload FILE] \
 *                [--servers N] [--failures P] [--dropout P] \
 *                [--scenario NAME] [--watchdog 0|1] \
 *                [--trace FILE] [--metrics FILE] \
 *                [--trace-categories LIST]
 *   polcactl scenarios
 *
 * `run --trace` exports the control-plane trace as Chrome
 * trace_event JSON (chrome://tracing / Perfetto); `--metrics` dumps
 * the metrics registry (gem5 stats style, or CSV when the file name
 * ends in .csv).  Flags accept both `--flag VALUE` and
 * `--flag=VALUE`.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis/table.hh"
#include "core/oversub_experiment.hh"
#include "core/workload_aware.hh"
#include "faults/fault_plan.hh"
#include "llm/model_spec.hh"
#include "llm/phase_model.hh"
#include "obs/observability.hh"
#include "sim/logging.hh"
#include "workload/trace_gen.hh"

using namespace polca;

namespace {

/** Tiny --flag VALUE parser over argv tail. */
class Args
{
  public:
    Args(int argc, char **argv, int start)
    {
        for (int i = start; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--", 0) != 0) {
                positional_.push_back(arg);
                continue;
            }
            std::string::size_type eq = arg.find('=');
            if (eq != std::string::npos) {
                values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
            } else if (i + 1 < argc &&
                       std::string(argv[i + 1]).rfind("--", 0) != 0) {
                values_[arg.substr(2)] = argv[++i];
            } else {
                values_[arg.substr(2)] = "1";
            }
        }
    }

    double
    number(const std::string &key, double fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback
                                   : std::atof(it->second.c_str());
    }

    std::string
    text(const std::string &key, const std::string &fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    const std::vector<std::string> &
    positional() const
    {
        return positional_;
    }

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

int
usage()
{
    std::printf(
        "polcactl -- LLM cluster power management simulator\n\n"
        "  polcactl models\n"
        "  polcactl policy <polca|1tlp|1tall|nocap|aware>\n"
        "  polcactl trace generate [--days N] [--servers N] "
        "[--seed S] [--out FILE]\n"
        "  polcactl trace stats FILE\n"
        "  polcactl trace regenerate FILE [--bin SECONDS] [--seed S] "
        "[--out FILE]\n"
        "  polcactl run [--added F] [--days N] [--seed S] "
        "[--policy NAME]\n"
        "               [--power-scale F] [--servers N] "
        "[--failures P] [--workload FILE]\n"
        "               [--dropout P] [--scenario NAME] "
        "[--watchdog 0|1]\n"
        "               [--trace FILE] [--metrics FILE] "
        "[--trace-categories LIST]\n"
        "  polcactl scenarios\n"
        "\n"
        "  run --trace exports Chrome trace_event JSON "
        "(chrome://tracing);\n"
        "  --metrics dumps the metrics registry (.csv for CSV);\n"
        "  --trace-categories filters: "
        "sim,telemetry,control,power,cluster,fault,all\n");
    return 2;
}

core::PolicyConfig
policyByName(const std::string &name)
{
    if (name == "polca")
        return core::PolicyConfig::polca();
    if (name == "1tlp")
        return core::PolicyConfig::oneThreshLowPri();
    if (name == "1tall")
        return core::PolicyConfig::oneThreshAll();
    if (name == "nocap")
        return core::PolicyConfig::noCap();
    if (name == "aware") {
        return core::workloadAwarePolicy(
            llm::ModelCatalog().byName("BLOOM-176B"));
    }
    sim::fatal("unknown policy '", name,
               "' (use polca|1tlp|1tall|nocap|aware)");
}

int
cmdModels()
{
    llm::ModelCatalog catalog;
    analysis::Table table({"Model", "Architecture", "Params (B)",
                           "GPUs", "Token ms", "Prompt ms/Ktok"});
    for (const auto &model : catalog.models()) {
        table.row()
            .cell(model.name)
            .cell(llm::toString(model.architecture))
            .cell(model.paramsBillions, 3)
            .cell(static_cast<long long>(model.inferenceGpus))
            .cell(model.tokenTimeMs, 1)
            .cell(model.promptMsPerKtoken, 1);
    }
    table.print(std::cout);
    return 0;
}

int
cmdPolicy(const Args &args)
{
    if (args.positional().empty())
        return usage();
    core::PolicyConfig policy = policyByName(args.positional()[0]);
    std::printf("Policy: %s\n", policy.name.c_str());
    analysis::Table table({"Rule", "Target", "Cap at", "Uncap at",
                           "Lock (MHz)"});
    for (const auto &rule : policy.rules) {
        table.row()
            .cell(rule.name)
            .cell(workload::toString(rule.target))
            .percentCell(rule.capFraction, 0)
            .percentCell(rule.uncapFraction, 0)
            .cell(rule.lockMhz, 0);
    }
    table.print(std::cout);
    std::printf("Power brake at %.0f%% (release %.0f%%), %s\n",
                policy.powerBrakeFraction * 100.0,
                policy.powerBrakeReleaseFraction * 100.0,
                policy.powerBrakeEnabled ? "enabled" : "disabled");
    return 0;
}

int
cmdTraceGenerate(const Args &args)
{
    workload::TraceGenerator generator;
    llm::PhaseModel phases(
        llm::ModelCatalog().byName("BLOOM-176B"));

    workload::TraceGenOptions options;
    options.duration = sim::secondsToTicks(
        args.number("days", 1.0) * 24 * 3600.0);
    options.numServers =
        static_cast<int>(args.number("servers", 40));
    options.serviceSecondsPerRequest =
        generator.expectedServiceSeconds(phases);
    options.seed =
        static_cast<std::uint64_t>(args.number("seed", 42));

    workload::Trace trace = generator.generate(options);
    std::string out = args.text("out", "");
    if (out.empty()) {
        trace.save(std::cout);
    } else {
        std::ofstream file(out);
        if (!file)
            sim::fatal("cannot open '", out, "' for writing");
        trace.save(file);
        std::printf("wrote %zu requests over %.2f days to %s\n",
                    trace.size(),
                    sim::ticksToSeconds(trace.duration()) / 86400.0,
                    out.c_str());
    }
    return 0;
}

workload::Trace
loadTrace(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        sim::fatal("cannot open trace '", path, "'");
    return workload::Trace::load(file);
}

int
cmdTraceStats(const Args &args)
{
    if (args.positional().empty())
        return usage();
    workload::Trace trace = loadTrace(args.positional()[0]);

    analysis::Table table({"Metric", "Value"});
    table.row().cell("Requests")
        .cell(static_cast<long long>(trace.size()));
    table.row().cell("Duration (days)")
        .cell(sim::ticksToSeconds(trace.duration()) / 86400.0, 2);
    table.row().cell("Mean arrival rate (req/s)")
        .cell(trace.meanArrivalRate(), 4);
    table.row().cell("High-priority fraction")
        .percentCell(trace.highPriorityFraction());

    double inputSum = 0.0, outputSum = 0.0;
    for (const auto &r : trace.requests()) {
        inputSum += r.inputTokens;
        outputSum += r.outputTokens;
    }
    double n = std::max<double>(1.0, static_cast<double>(trace.size()));
    table.row().cell("Mean input tokens").cell(inputSum / n, 0);
    table.row().cell("Mean output tokens").cell(outputSum / n, 0);
    table.print(std::cout);
    return 0;
}

int
cmdTraceRegenerate(const Args &args)
{
    if (args.positional().empty())
        return usage();
    workload::Trace reference = loadTrace(args.positional()[0]);
    workload::TraceGenerator generator;
    workload::Trace synthetic = generator.regenerate(
        reference,
        sim::secondsToTicks(args.number("bin", 300.0)),
        static_cast<std::uint64_t>(args.number("seed", 99)));

    std::string out = args.text("out", "");
    if (out.empty()) {
        synthetic.save(std::cout);
    } else {
        std::ofstream file(out);
        if (!file)
            sim::fatal("cannot open '", out, "' for writing");
        synthetic.save(file);
        std::printf("wrote synthetic trace (%zu requests) to %s\n",
                    synthetic.size(), out.c_str());
    }
    return 0;
}

int
cmdScenarios()
{
    analysis::Table table({"Scenario", "What it injects"});
    table.row().cell("none").cell("ideal sensing and actuation");
    table.row().cell("blackout").cell(
        "telemetry fully dark for 15 min at 25% of the run");
    table.row().cell("bursty").cell(
        "Gilbert-Elliott reading loss (bursts, not i.i.d.)");
    table.row().cell("flaky-sensor").cell(
        "low-biased then stuck-at-last sensor windows");
    table.row().cell("oob-outage").cell(
        "all SMBPBI command channels dead for 20 min");
    table.row().cell("crashes").cell(
        "rolling server crash/restart wave");
    table.print(std::cout);
    return 0;
}

int
cmdRun(const Args &args)
{
    core::ExperimentConfig config;
    config.row.baseServers =
        static_cast<int>(args.number("servers", 40));
    config.row.addedServerFraction = args.number("added", 0.30);
    config.duration = sim::secondsToTicks(
        args.number("days", 1.0) * 24 * 3600.0);
    config.seed = static_cast<std::uint64_t>(args.number("seed", 42));
    config.policy = policyByName(args.text("policy", "polca"));
    config.powerScaleFactor = args.number("power-scale", 1.0);
    config.manager.smbpbiFailureProbability =
        args.number("failures", 0.0);
    config.row.telemetryDropoutProbability =
        args.number("dropout", 0.0);
    config.manager.watchdogEnabled = args.number("watchdog", 1) != 0;

    workload::Trace external;
    std::string workloadPath = args.text("workload", "");
    if (!workloadPath.empty()) {
        external = loadTrace(workloadPath);
        config.externalTrace = &external;
        config.duration = external.duration();
    }

    // Observability: attach to the managed run only — the baseline
    // exists purely as a latency reference.
    std::string traceOut = args.text("trace", "");
    std::string metricsOut = args.text("metrics", "");
    obs::Observability observability;
    if (!traceOut.empty() || !metricsOut.empty()) {
        observability.trace.setCategoryMask(
            obs::parseTraceCategories(
                args.text("trace-categories", "all")));
        config.obs = &observability;
    }

    std::string scenario = args.text("scenario", "none");
    config.faultPlan = faults::scenarioByName(
        scenario, config.duration,
        static_cast<int>(
            config.row.baseServers *
            (1.0 + config.row.addedServerFraction)));

    std::printf("Running %s on %d+%.0f%% servers for %.2f days "
                "(seed %llu, scenario %s, watchdog %s)...\n",
                config.policy.name.c_str(), config.row.baseServers,
                config.row.addedServerFraction * 100.0,
                sim::ticksToSeconds(config.duration) / 86400.0,
                static_cast<unsigned long long>(config.seed),
                scenario.c_str(),
                config.manager.watchdogEnabled ? "on" : "off");

    core::ExperimentResult result = runOversubExperiment(config);

    if (!traceOut.empty()) {
        std::ofstream file(traceOut);
        if (!file)
            sim::fatal("cannot open '", traceOut, "' for writing");
        observability.trace.exportChromeJson(file);
        std::printf("wrote %llu trace events to %s\n",
                    static_cast<unsigned long long>(
                        observability.trace.events().size()),
                    traceOut.c_str());
    }
    if (!metricsOut.empty()) {
        std::ofstream file(metricsOut);
        if (!file)
            sim::fatal("cannot open '", metricsOut, "' for writing");
        if (metricsOut.size() >= 4 &&
            metricsOut.compare(metricsOut.size() - 4, 4, ".csv") == 0)
            observability.metrics.dumpCsv(file);
        else
            observability.metrics.dump(file);
        std::printf("wrote %zu metrics to %s\n",
                    observability.metrics.size(), metricsOut.c_str());
    }

    core::ExperimentConfig baselineConfig =
        core::unthrottledBaseline(config);
    baselineConfig.obs = nullptr;
    core::ExperimentResult baseline =
        runOversubExperiment(baselineConfig);
    core::NormalizedLatency low =
        core::normalizeLatency(result.low, baseline.low);
    core::NormalizedLatency high =
        core::normalizeLatency(result.high, baseline.high);

    analysis::Table table({"Metric", "Value"});
    table.row().cell("Power brake events")
        .cell(static_cast<long long>(result.powerBrakeEvents));
    table.row().cell("Cap / uncap commands")
        .cell(std::to_string(result.capCommands) + " / " +
              std::to_string(result.uncapCommands));
    table.row().cell("Re-issued (failed) commands")
        .cell(static_cast<long long>(result.reissuedCommands));
    table.row().cell("Mean / peak row utilization")
        .cell(analysis::formatPercent(result.meanUtilization) + " / " +
              analysis::formatPercent(result.maxUtilization));
    table.row().cell("Requests served")
        .cell(static_cast<long long>(result.lowCompletions +
                                     result.highCompletions));
    table.row().cell("Row energy")
        .cell(analysis::formatFixed(result.energyKwh, 1) + " kWh (" +
              analysis::formatFixed(result.energyPerRequestKj, 1) +
              " kJ/request)");
    table.row().cell("LP p50/p99 latency (normalized)")
        .cell(analysis::formatFixed(low.p50, 3) + " / " +
              analysis::formatFixed(low.p99, 3));
    table.row().cell("HP p50/p99 latency (normalized)")
        .cell(analysis::formatFixed(high.p50, 3) + " / " +
              analysis::formatFixed(high.p99, 3));
    table.row().cell("LP time locked")
        .cell(analysis::formatFixed(
                  sim::ticksToSeconds(result.lpLockedTicks) / 3600.0,
                  2) + " h");
    table.row().cell("HP time locked")
        .cell(analysis::formatFixed(
                  sim::ticksToSeconds(result.hpLockedTicks) / 3600.0,
                  2) + " h");
    table.row().cell("Breaker trips / near-trips")
        .cell(std::to_string(result.breakerTrips) + " / " +
              std::to_string(result.breakerNearTrips));
    table.row().cell("Time above provisioned")
        .cell(analysis::formatFixed(
                  sim::ticksToSeconds(result.ticksAboveProvisioned),
                  0) + " s");
    table.row().cell("Overdraw energy")
        .cell(analysis::formatFixed(
                  result.overdrawWattSeconds / 1000.0, 1) + " kJ");
    table.row().cell("Fail-safe entries / time")
        .cell(std::to_string(result.failSafeEntries) + " / " +
              analysis::formatFixed(
                  sim::ticksToSeconds(result.failSafeTicks), 0) +
              " s");
    table.row().cell("Flagged OOB channels")
        .cell(static_cast<long long>(result.flaggedChannels));
    table.row().cell("Dropped / corrupted readings")
        .cell(std::to_string(result.droppedReadings) + " / " +
              std::to_string(result.corruptedReadings));
    table.row().cell("Server crashes (dropped requests)")
        .cell(std::to_string(result.crashesInjected) + " (" +
              std::to_string(result.droppedRequests) + ")");
    table.print(std::cout);

    bool ok = core::meetsSlos(low, high, result.powerBrakeEvents,
                              workload::paperSlos());
    std::printf("\nSLOs: %s\n", ok ? "MET" : "VIOLATED");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setQuiet(true);
    if (argc < 2)
        return usage();

    std::string command = argv[1];
    if (command == "models")
        return cmdModels();
    if (command == "policy")
        return cmdPolicy(Args(argc, argv, 2));
    if (command == "run")
        return cmdRun(Args(argc, argv, 2));
    if (command == "scenarios")
        return cmdScenarios();
    if (command == "trace") {
        if (argc < 3)
            return usage();
        std::string sub = argv[2];
        Args args(argc, argv, 3);
        if (sub == "generate")
            return cmdTraceGenerate(args);
        if (sub == "stats")
            return cmdTraceStats(args);
        if (sub == "regenerate")
            return cmdTraceRegenerate(args);
        return usage();
    }
    if (command == "--help" || command == "-h")
        return usage();
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return usage();
}
