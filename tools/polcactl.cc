/**
 * @file
 * polcactl — command-line front-end to the polcasim library.
 *
 *   polcactl models
 *   polcactl policy <polca|1tlp|1tall|nocap|aware>
 *   polcactl trace generate [--days N] [--servers N] [--seed S] \
 *                           [--out FILE]
 *   polcactl trace stats FILE
 *   polcactl trace regenerate FILE [--bin SECONDS] [--seed S] \
 *                             [--out FILE]
 *   polcactl run [--scenario-file FILE] [--set path=value]... \
 *                [--out-dir DIR] [--jobs N] [--branch 0|1] \
 *                [legacy flags]
 *   polcactl report <run-dir>...
 *   polcactl config check FILE...
 *   polcactl config dump [--scenario-file FILE] [--set path=value]... \
 *                        [--point N]
 *   polcactl scenarios
 *
 * `run` resolves its configuration through the scenario layer
 * (config/scenario.hh): struct defaults < scenario file < `--set`
 * dotted-path overrides < sweep axis values.  The legacy flags
 * (--days, --seed, --policy, --servers, --added, --power-scale,
 * --failures, --dropout, --scenario, --watchdog) are sugar for the
 * equivalent --set paths.  A scenario file with a [sweep] section
 * expands into one run per point, executed with one metrics CSV
 * artifact per point plus a summary table; --jobs N (or the file's
 * [sweep] jobs key) runs the points on N worker threads with
 * byte-identical artifacts.  When the points share a warmup prefix
 * ([sweep] warmup, sugar for experiment.warmup), the runner
 * simulates the prefix once per distinct prefix and branches every
 * point — and every baseline — from the in-memory snapshot
 * (checkpoint/branch execution; --branch 0 or [sweep] branch =
 * false disables it), with artifacts byte-identical either way.
 *
 * `config dump` prints the fully-resolved effective configuration
 * with per-value provenance comments; the output reparses to the
 * identical resolved config.  `config check` validates scenario
 * files without running anything.
 *
 * `run --trace` exports the control-plane trace as Chrome
 * trace_event JSON (chrome://tracing / Perfetto); `--metrics` dumps
 * the metrics registry (gem5 stats style, or CSV when the file name
 * ends in .csv).  Flags accept both `--flag VALUE` and
 * `--flag=VALUE`; unknown flags are rejected with a nearest-match
 * suggestion.
 */

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/table.hh"
#include "config/scenario.hh"
#include "core/oversub_experiment.hh"
#include "core/run_artifacts.hh"
#include "core/sweep_runner.hh"
#include "core/thread_pool.hh"
#include "core/workload_aware.hh"
#include "faults/fault_plan.hh"
#include "llm/model_spec.hh"
#include "llm/phase_model.hh"
#include "obs/manifest.hh"
#include "obs/observability.hh"
#include "obs/report.hh"
#include "sim/logging.hh"
#include "workload/trace_gen.hh"

using namespace polca;

namespace {

/**
 * --flag VALUE parser over an argv tail.  Every flag must be in the
 * command's known set — a typo is fatal with a nearest-match
 * suggestion.  Repeated flags accumulate (needed for --set).
 */
class Args
{
  public:
    Args(int argc, char **argv, int start,
         std::vector<std::string> known)
        : known_(std::move(known))
    {
        for (int i = start; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--", 0) != 0) {
                positional_.push_back(arg);
                continue;
            }
            std::string key, value;
            std::string::size_type eq = arg.find('=');
            if (eq != std::string::npos) {
                key = arg.substr(2, eq - 2);
                value = arg.substr(eq + 1);
            } else if (i + 1 < argc &&
                       std::string(argv[i + 1]).rfind("--", 0) != 0) {
                key = arg.substr(2);
                value = argv[++i];
            } else {
                key = arg.substr(2);
                value = "1";
            }
            checkKnown(key);
            values_.emplace_back(std::move(key), std::move(value));
        }
    }

    bool
    has(const std::string &key) const
    {
        for (const auto &[k, v] : values_) {
            if (k == key)
                return true;
        }
        return false;
    }

    /** Last value of @p key (later flags win), or @p fallback. */
    std::string
    text(const std::string &key, const std::string &fallback) const
    {
        const std::string *found = nullptr;
        for (const auto &[k, v] : values_) {
            if (k == key)
                found = &v;
        }
        return found ? *found : fallback;
    }

    /** Strict numeric flag: malformed values are fatal, naming the
     *  flag and the offending value. */
    double
    number(const std::string &key, double fallback) const
    {
        std::string raw = text(key, "");
        if (raw.empty() && !has(key))
            return fallback;
        double value = 0.0;
        const char *begin = raw.data();
        const char *end = begin + raw.size();
        auto [ptr, ec] = std::from_chars(begin, end, value);
        if (ec != std::errc() || ptr != end || raw.empty()) {
            sim::fatal("--", key, ": malformed number '", raw, "'");
        }
        return value;
    }

    /** All values of a repeatable flag, in order. */
    std::vector<std::string>
    list(const std::string &key) const
    {
        std::vector<std::string> out;
        for (const auto &[k, v] : values_) {
            if (k == key)
                out.push_back(v);
        }
        return out;
    }

    const std::vector<std::string> &
    positional() const
    {
        return positional_;
    }

  private:
    void
    checkKnown(const std::string &key) const
    {
        for (const std::string &k : known_) {
            if (k == key)
                return;
        }
        std::string near = config::nearestKey(key, known_);
        if (near.empty()) {
            sim::fatal("unknown flag '--", key, "'");
        }
        sim::fatal("unknown flag '--", key, "' (did you mean '--",
                   near, "'?)");
    }

    std::vector<std::string> known_;
    std::vector<std::pair<std::string, std::string>> values_;
    std::vector<std::string> positional_;
};

int
usage()
{
    std::printf(
        "polcactl -- LLM cluster power management simulator\n\n"
        "  polcactl models\n"
        "  polcactl policy <polca|1tlp|1tall|nocap|aware>\n"
        "  polcactl trace generate [--days N] [--servers N] "
        "[--seed S] [--out FILE]\n"
        "  polcactl trace stats FILE\n"
        "  polcactl trace regenerate FILE [--bin SECONDS] [--seed S] "
        "[--out FILE]\n"
        "  polcactl run [--scenario-file FILE] [--set path=value]... "
        "[--out-dir DIR]\n"
        "               [--jobs N] [--branch 0|1] [--added F] "
        "[--days N] [--seed S] [--policy NAME]\n"
        "               [--power-scale F] [--servers N] "
        "[--failures P] [--workload FILE]\n"
        "               [--dropout P] [--scenario NAME] "
        "[--watchdog 0|1]\n"
        "               [--trace FILE] [--metrics FILE] "
        "[--metrics-interval SECS]\n"
        "               [--trace-categories LIST]\n"
        "  polcactl chaos [--runs N] [--seed S] "
        "[--scenario-file FILE]\n"
        "                 [--set path=value]... [--out-dir DIR]\n"
        "  polcactl report <run-dir>...\n"
        "  polcactl config check FILE...\n"
        "  polcactl config dump [--scenario-file FILE] "
        "[--set path=value]... [--point N]\n"
        "  polcactl scenarios\n"
        "\n"
        "  chaos runs N randomized fault campaigns (seeds derived "
        "from --seed) with\n"
        "  the safety monitor armed; exits 1 if any invariant is "
        "violated.  --out-dir\n"
        "  writes a per-run CSV and, for violating seeds, a "
        "reproduction trace.\n"
        "  run resolves defaults < scenario file < --set overrides "
        "< sweep values;\n"
        "  legacy flags are sugar for --set paths "
        "(--days 2 == --set experiment.duration=2d).\n"
        "  A [sweep] section runs every point and writes one metrics "
        "CSV per point\n"
        "  into --out-dir plus a summary table.  --jobs N runs points "
        "on N worker\n"
        "  threads (0 = one per hardware thread) with byte-identical "
        "artifacts;\n"
        "  a scenario file can set the same via the [sweep] jobs "
        "key.\n"
        "  With [sweep] warmup = \"1h\" (sugar for "
        "experiment.warmup) points sharing a\n"
        "  warmup prefix simulate it once and branch from the "
        "snapshot — artifacts\n"
        "  stay byte-identical; disable via --branch 0 or [sweep] "
        "branch = false.\n"
        "  run --trace exports Chrome trace_event JSON "
        "(chrome://tracing);\n"
        "  --metrics dumps the metrics registry (.csv for CSV);\n"
        "  --trace-categories filters: "
        "sim,telemetry,control,power,cluster,fault,all\n"
        "  run --metrics-interval S snapshots the registry every S "
        "simulated seconds\n"
        "  (sugar for --set obs.interval=S); single-point run "
        "--out-dir writes the\n"
        "  full artifact set (manifest.json, resolved.toml, "
        "result.csv, metrics.csv,\n"
        "  stats_interval.csv, violations.csv) that `polcactl "
        "report` turns into\n"
        "  report.md + report.html (self-contained, inline-SVG "
        "timeline).\n");
    return 2;
}

core::PolicyConfig
policyByName(const std::string &name)
{
    if (name == "polca")
        return core::PolicyConfig::polca();
    if (name == "1tlp")
        return core::PolicyConfig::oneThreshLowPri();
    if (name == "1tall")
        return core::PolicyConfig::oneThreshAll();
    if (name == "nocap")
        return core::PolicyConfig::noCap();
    if (name == "aware") {
        return core::workloadAwarePolicy(
            llm::ModelCatalog().byName("BLOOM-176B"));
    }
    sim::fatal("unknown policy '", name,
               "' (use polca|1tlp|1tall|nocap|aware)");
}

int
cmdModels()
{
    llm::ModelCatalog catalog;
    analysis::Table table({"Model", "Architecture", "Params (B)",
                           "GPUs", "Token ms", "Prompt ms/Ktok"});
    for (const auto &model : catalog.models()) {
        table.row()
            .cell(model.name)
            .cell(llm::toString(model.architecture))
            .cell(model.paramsBillions, 3)
            .cell(static_cast<long long>(model.inferenceGpus))
            .cell(model.tokenTimeMs, 1)
            .cell(model.promptMsPerKtoken, 1);
    }
    table.print(std::cout);
    return 0;
}

int
cmdPolicy(const Args &args)
{
    if (args.positional().empty())
        return usage();
    core::PolicyConfig policy = policyByName(args.positional()[0]);
    std::printf("Policy: %s\n", policy.name.c_str());
    analysis::Table table({"Rule", "Target", "Cap at", "Uncap at",
                           "Lock (MHz)"});
    for (const auto &rule : policy.rules) {
        table.row()
            .cell(rule.name)
            .cell(workload::toString(rule.target))
            .percentCell(rule.capFraction, 0)
            .percentCell(rule.uncapFraction, 0)
            .cell(rule.lockMhz, 0);
    }
    table.print(std::cout);
    std::printf("Power brake at %.0f%% (release %.0f%%), %s\n",
                policy.powerBrakeFraction * 100.0,
                policy.powerBrakeReleaseFraction * 100.0,
                policy.powerBrakeEnabled ? "enabled" : "disabled");
    return 0;
}

int
cmdTraceGenerate(const Args &args)
{
    workload::TraceGenerator generator;
    llm::PhaseModel phases(
        llm::ModelCatalog().byName("BLOOM-176B"));

    workload::TraceGenOptions options;
    options.duration = sim::secondsToTicks(
        args.number("days", 1.0) * 24 * 3600.0);
    options.numServers =
        static_cast<int>(args.number("servers", 40));
    options.serviceSecondsPerRequest =
        generator.expectedServiceSeconds(phases);
    options.seed =
        static_cast<std::uint64_t>(args.number("seed", 42));

    workload::Trace trace = generator.generate(options);
    std::string out = args.text("out", "");
    if (out.empty()) {
        trace.save(std::cout);
    } else {
        std::ofstream file(out);
        if (!file)
            sim::fatal("cannot open '", out, "' for writing");
        trace.save(file);
        std::printf("wrote %zu requests over %.2f days to %s\n",
                    trace.size(),
                    sim::ticksToSeconds(trace.duration()) / 86400.0,
                    out.c_str());
    }
    return 0;
}

workload::Trace
loadTrace(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        sim::fatal("cannot open trace '", path, "'");
    return workload::Trace::load(file);
}

int
cmdTraceStats(const Args &args)
{
    if (args.positional().empty())
        return usage();
    workload::Trace trace = loadTrace(args.positional()[0]);

    analysis::Table table({"Metric", "Value"});
    table.row().cell("Requests")
        .cell(static_cast<long long>(trace.size()));
    table.row().cell("Duration (days)")
        .cell(sim::ticksToSeconds(trace.duration()) / 86400.0, 2);
    table.row().cell("Mean arrival rate (req/s)")
        .cell(trace.meanArrivalRate(), 4);
    table.row().cell("High-priority fraction")
        .percentCell(trace.highPriorityFraction());

    double inputSum = 0.0, outputSum = 0.0;
    for (const auto &r : trace.requests()) {
        inputSum += r.inputTokens;
        outputSum += r.outputTokens;
    }
    double n = std::max<double>(1.0, static_cast<double>(trace.size()));
    table.row().cell("Mean input tokens").cell(inputSum / n, 0);
    table.row().cell("Mean output tokens").cell(outputSum / n, 0);
    table.print(std::cout);
    return 0;
}

int
cmdTraceRegenerate(const Args &args)
{
    if (args.positional().empty())
        return usage();
    workload::Trace reference = loadTrace(args.positional()[0]);
    workload::TraceGenerator generator;
    workload::Trace synthetic = generator.regenerate(
        reference,
        sim::secondsToTicks(args.number("bin", 300.0)),
        static_cast<std::uint64_t>(args.number("seed", 99)));

    std::string out = args.text("out", "");
    if (out.empty()) {
        synthetic.save(std::cout);
    } else {
        std::ofstream file(out);
        if (!file)
            sim::fatal("cannot open '", out, "' for writing");
        synthetic.save(file);
        std::printf("wrote synthetic trace (%zu requests) to %s\n",
                    synthetic.size(), out.c_str());
    }
    return 0;
}

int
cmdScenarios()
{
    analysis::Table table({"Scenario", "What it injects"});
    table.row().cell("none").cell("ideal sensing and actuation");
    table.row().cell("blackout").cell(
        "telemetry fully dark for 15 min at 25% of the run");
    table.row().cell("bursty").cell(
        "Gilbert-Elliott reading loss (bursts, not i.i.d.)");
    table.row().cell("flaky-sensor").cell(
        "low-biased then stuck-at-last sensor windows");
    table.row().cell("oob-outage").cell(
        "all SMBPBI command channels dead for 20 min");
    table.row().cell("crashes").cell(
        "rolling server crash/restart wave");
    table.print(std::cout);
    return 0;
}

/** Known flags of `run` (and the subset `config dump` reuses). */
std::vector<std::string>
runFlags()
{
    return {"scenario-file", "set", "out-dir", "jobs", "branch",
            "added", "days", "seed", "policy", "power-scale",
            "servers", "failures", "workload", "dropout", "scenario",
            "watchdog", "trace", "metrics", "metrics-interval",
            "trace-categories", "point"};
}

/**
 * Resolve the run/dump configuration set: scenario file (or empty
 * text), legacy-flag sugar, then explicit --set overrides, expanded
 * over sweep axes.  Legacy flags become --set values *before* the
 * explicit ones so `--set` always wins.
 */
config::ScenarioSet
resolveScenario(const Args &args, config::Diagnostics &diag)
{
    std::vector<std::string> overrides;
    bool haveFile = args.has("scenario-file");

    auto legacy = [&](const char *flag, const char *path) {
        if (args.has(flag))
            overrides.push_back(std::string(path) + "=" +
                                args.text(flag, ""));
    };
    // Pure-CLI runs keep the historical quickstart defaults (+30 %
    // servers, 1 day); a scenario file states its own.
    if (!haveFile) {
        if (!args.has("added"))
            overrides.push_back("row.added_server_fraction=0.30");
        if (!args.has("days"))
            overrides.push_back("experiment.duration=1d");
    }
    legacy("servers", "row.base_servers");
    legacy("added", "row.added_server_fraction");
    if (args.has("days")) {
        overrides.push_back(
            "experiment.duration=" +
            config::formatDouble(args.number("days", 1.0) * 86400.0));
    }
    legacy("seed", "experiment.seed");
    legacy("policy", "policy.preset");
    legacy("power-scale", "experiment.power_scale_factor");
    legacy("failures", "manager.smbpbi_failure_probability");
    legacy("dropout", "row.telemetry_dropout_probability");
    legacy("scenario", "faults.scenario");
    legacy("metrics-interval", "obs.interval");
    if (args.has("watchdog")) {
        overrides.push_back(
            std::string("manager.watchdog_enabled=") +
            (args.number("watchdog", 1) != 0 ? "true" : "false"));
    }
    for (const std::string &set : args.list("set"))
        overrides.push_back(set);

    if (haveFile) {
        return config::loadScenarioFile(
            args.text("scenario-file", ""), overrides, diag);
    }
    return config::loadScenarioString("", "cli", overrides, diag);
}

/** Detailed single-run report (the classic `polcactl run` output). */
int
runSinglePoint(const Args &args, config::ResolvedScenario &point)
{
    core::ExperimentConfig &config = point.config;

    workload::Trace external;
    std::string workloadPath = args.text("workload", "");
    if (!workloadPath.empty()) {
        external = loadTrace(workloadPath);
        config.externalTrace = &external;
        config.duration = external.duration();
    }

    // Observability: attach to the managed run only — the baseline
    // exists purely as a latency reference.  A run directory
    // (--out-dir) always gets a metrics dump, so it attaches too.
    std::string traceOut = args.text("trace", "");
    std::string metricsOut = args.text("metrics", "");
    std::string outDir = args.text("out-dir", "");
    obs::Observability observability;
    if (!traceOut.empty() || !metricsOut.empty() || !outDir.empty()) {
        observability.trace.setCategoryMask(
            obs::parseTraceCategories(
                args.text("trace-categories", "all")));
        config.obs = &observability;
    }

    if (config.topology.enabled) {
        std::printf("Running %s on a %d-row / %d-server site for "
                    "%.2f days (seed %llu, watchdog %s)...\n",
                    config.policy.name.c_str(),
                    config.topology.numRows(),
                    config.topology.numServers(),
                    sim::ticksToSeconds(config.duration) / 86400.0,
                    static_cast<unsigned long long>(config.seed),
                    config.manager.watchdogEnabled ? "on" : "off");
    } else {
        std::printf("Running %s on %d+%.0f%% servers for %.2f days "
                    "(seed %llu, watchdog %s)...\n",
                    config.policy.name.c_str(),
                    config.row.baseServers,
                    config.row.addedServerFraction * 100.0,
                    sim::ticksToSeconds(config.duration) / 86400.0,
                    static_cast<unsigned long long>(config.seed),
                    config.manager.watchdogEnabled ? "on" : "off");
    }

    core::ExperimentResult result = runOversubExperiment(config);

    if (!traceOut.empty()) {
        std::ofstream file(traceOut);
        if (!file)
            sim::fatal("cannot open '", traceOut, "' for writing");
        observability.trace.exportChromeJson(file);
        std::printf("wrote %llu trace events to %s\n",
                    static_cast<unsigned long long>(
                        observability.trace.events().size()),
                    traceOut.c_str());
    }
    if (!metricsOut.empty()) {
        std::ofstream file(metricsOut);
        if (!file)
            sim::fatal("cannot open '", metricsOut, "' for writing");
        if (metricsOut.size() >= 4 &&
            metricsOut.compare(metricsOut.size() - 4, 4, ".csv") == 0)
            observability.metrics.dumpCsv(file);
        else
            observability.metrics.dump(file);
        std::printf("wrote %zu metrics to %s\n",
                    observability.metrics.size(), metricsOut.c_str());
    }

    core::ExperimentConfig baselineConfig =
        core::unthrottledBaseline(config);
    baselineConfig.obs = nullptr;
    core::ExperimentResult baseline =
        runOversubExperiment(baselineConfig);
    core::NormalizedLatency low =
        core::normalizeLatency(result.low, baseline.low);
    core::NormalizedLatency high =
        core::normalizeLatency(result.high, baseline.high);

    if (!outDir.empty()) {
        core::RunDirOptions dirOptions;
        dirOptions.dir = outDir;
        dirOptions.scenarioPath = args.text("scenario-file", "");
        dirOptions.command = "run";
        std::ostringstream resolved;
        config::dumpResolved(config, point.tree, resolved);
        dirOptions.resolvedConfig = resolved.str();
        std::vector<std::string> written = core::writeRunDir(
            dirOptions, config, result, low, high,
            config.obs);
        if (written.empty())
            sim::fatal("cannot write run directory '", outDir, "'");
        std::printf("wrote %zu artifacts to %s (report with: "
                    "polcactl report %s)\n",
                    written.size(), outDir.c_str(), outDir.c_str());
    }

    analysis::Table table({"Metric", "Value"});
    table.row().cell("Power brake events")
        .cell(static_cast<long long>(result.powerBrakeEvents));
    table.row().cell("Cap / uncap commands")
        .cell(std::to_string(result.capCommands) + " / " +
              std::to_string(result.uncapCommands));
    table.row().cell("Re-issued (failed) commands")
        .cell(static_cast<long long>(result.reissuedCommands));
    table.row().cell("Mean / peak row utilization")
        .cell(analysis::formatPercent(result.meanUtilization) + " / " +
              analysis::formatPercent(result.maxUtilization));
    table.row().cell("Requests served")
        .cell(static_cast<long long>(result.lowCompletions +
                                     result.highCompletions));
    table.row().cell("Row energy")
        .cell(analysis::formatFixed(result.energyKwh, 1) + " kWh (" +
              analysis::formatFixed(result.energyPerRequestKj, 1) +
              " kJ/request)");
    table.row().cell("LP p50/p99 latency (normalized)")
        .cell(analysis::formatFixed(low.p50, 3) + " / " +
              analysis::formatFixed(low.p99, 3));
    table.row().cell("HP p50/p99 latency (normalized)")
        .cell(analysis::formatFixed(high.p50, 3) + " / " +
              analysis::formatFixed(high.p99, 3));
    table.row().cell("LP time locked")
        .cell(analysis::formatFixed(
                  sim::ticksToSeconds(result.lpLockedTicks) / 3600.0,
                  2) + " h");
    table.row().cell("HP time locked")
        .cell(analysis::formatFixed(
                  sim::ticksToSeconds(result.hpLockedTicks) / 3600.0,
                  2) + " h");
    table.row().cell("Breaker trips / near-trips")
        .cell(std::to_string(result.breakerTrips) + " / " +
              std::to_string(result.breakerNearTrips));
    table.row().cell("Time above provisioned")
        .cell(analysis::formatFixed(
                  sim::ticksToSeconds(result.ticksAboveProvisioned),
                  0) + " s");
    table.row().cell("Overdraw energy")
        .cell(analysis::formatFixed(
                  result.overdrawWattSeconds / 1000.0, 1) + " kJ");
    table.row().cell("Fail-safe entries / time")
        .cell(std::to_string(result.failSafeEntries) + " / " +
              analysis::formatFixed(
                  sim::ticksToSeconds(result.failSafeTicks), 0) +
              " s");
    table.row().cell("Flagged OOB channels")
        .cell(static_cast<long long>(result.flaggedChannels));
    table.row().cell("Dropped / corrupted readings")
        .cell(std::to_string(result.droppedReadings) + " / " +
              std::to_string(result.corruptedReadings));
    table.row().cell("Server crashes (dropped requests)")
        .cell(std::to_string(result.crashesInjected) + " (" +
              std::to_string(result.droppedRequests) + ")");
    table.print(std::cout);

    if (!result.domains.empty()) {
        // Site and row levels only; domains.csv keeps the racks.
        std::printf("\nTopology rollup (racks in domains.csv):\n");
        analysis::Table rollup({"Domain", "Level", "Servers",
                                "Budget (kW)", "Peak (kW)",
                                "Mean (kW)", "Trips / near",
                                "Overdraw (kJ)", "Completions"});
        for (const core::DomainStats &d : result.domains) {
            if (d.level == "rack")
                continue;
            rollup.row().cell(d.path).cell(d.level)
                .cell(static_cast<long long>(d.servers))
                .cell(analysis::formatFixed(d.budgetWatts / 1000.0,
                                            1))
                .cell(analysis::formatFixed(d.peakWatts / 1000.0, 1))
                .cell(analysis::formatFixed(d.meanWatts / 1000.0, 1))
                .cell(std::to_string(d.breakerTrips) + " / " +
                      std::to_string(d.breakerNearTrips))
                .cell(analysis::formatFixed(
                          d.overdrawWattSeconds / 1000.0, 1))
                .cell(static_cast<long long>(d.completions));
        }
        rollup.print(std::cout);
    }

    bool ok = core::meetsSlos(low, high, result.powerBrakeEvents,
                              workload::paperSlos());
    std::printf("\nSLOs: %s\n", ok ? "MET" : "VIOLATED");
    return ok ? 0 : 1;
}

int
cmdRun(const Args &args)
{
    config::Diagnostics diag;
    config::ScenarioSet set = resolveScenario(args, diag);
    if (!diag.ok()) {
        std::fprintf(stderr, "%s\n", diag.str().c_str());
        return 2;
    }
    if (set.points.empty()) {
        std::fprintf(stderr, "scenario resolved to no points\n");
        return 2;
    }

    if (!set.isSweep())
        return runSinglePoint(args, set.points.front());

    if (args.has("trace") || args.has("metrics") ||
        args.has("workload")) {
        sim::fatal("--trace/--metrics/--workload do not apply to "
                   "sweep runs; use --out-dir for per-point "
                   "artifacts");
    }

    std::vector<core::SweepPoint> points;
    points.reserve(set.points.size());
    for (config::ResolvedScenario &point : set.points) {
        points.push_back(
            {point.label, point.config,
             point.config.warmup > 0
                 ? config::warmupDigest(point.config, point.tree)
                 : std::string()});
    }

    core::SweepOptions options;
    options.artifactDir =
        args.text("out-dir", "sweep-" + set.name);
    options.jobs = set.jobs;
    if (args.has("jobs")) {
        double jobs = args.number("jobs", 1);
        if (jobs < 0 || jobs != static_cast<int>(jobs))
            sim::fatal("--jobs: expected a non-negative integer");
        options.jobs = jobs == 0
            ? static_cast<int>(core::ThreadPool::defaultWorkerCount())
            : static_cast<int>(jobs);
    }
    options.branch = set.branch;
    if (args.has("branch")) {
        double branch = args.number("branch", 1);
        if (branch != 0 && branch != 1)
            sim::fatal("--branch: expected 0 or 1");
        options.branch = branch == 1;
    }

    // Sweep provenance: the manifest digest covers every point's
    // fully-resolved configuration, labels included.
    options.writeManifest = true;
    options.manifest.command = "sweep";
    options.manifest.scenarioPath = args.text("scenario-file", "");
    std::ostringstream resolved;
    for (const config::ResolvedScenario &point : set.points) {
        resolved << "# point: " << point.label << "\n";
        config::dumpResolved(point.config, point.tree, resolved);
    }
    options.manifest.configDigest = obs::fnv1a64Hex(resolved.str());
    options.manifest.seed = set.points.front().config.seed;
    options.manifest.jobs = options.jobs;
    options.manifest.durationS =
        sim::ticksToSeconds(set.points.front().config.duration);
    options.manifest.metricsIntervalS = sim::ticksToSeconds(
        set.points.front().config.obsOptions.metricsInterval);

    core::SweepRunner runner(std::move(points), std::move(options));
    const std::vector<core::SweepPointResult> &results = runner.run();

    std::printf("\nSweep '%s': %zu points (%d worker%s)\n",
                set.name.c_str(), results.size(), options.jobs,
                options.jobs == 1 ? "" : "s");
    runner.summaryTable().print(std::cout);
    std::printf("\nArtifacts in %s (one metrics CSV per point + "
                "summary.csv)\n",
                args.text("out-dir", "sweep-" + set.name).c_str());
    return 0;
}

/**
 * Seeded chaos campaign: N randomized fault scenarios, safety
 * monitor armed, deterministic per-run seeds derived from --seed.
 * Exit 1 on any invariant violation; --out-dir captures a summary
 * CSV plus a reproduction trace for every violating seed.
 */
int
cmdChaos(const Args &args)
{
    double runsRaw = args.number("runs", 10);
    if (runsRaw < 1 || runsRaw != static_cast<int>(runsRaw))
        sim::fatal("--runs: expected a positive integer");
    int runs = static_cast<int>(runsRaw);
    auto baseSeed =
        static_cast<std::uint64_t>(args.number("seed", 42));

    std::vector<std::string> overrides;
    bool haveFile = args.has("scenario-file");
    if (!haveFile) {
        // Campaign defaults: a small row and a 2 h run keep 100
        // seeded scenarios CI-sized; a scenario file states its own.
        overrides.push_back("row.base_servers=8");
        overrides.push_back("row.added_server_fraction=0.30");
        overrides.push_back("experiment.duration=7200");
    }
    // The campaign is pointless without the chaos engine and the
    // monitor, so they are forced on ahead of user --set overrides.
    overrides.push_back("chaos.enabled=true");
    overrides.push_back("safety.monitor=true");
    for (const std::string &set : args.list("set"))
        overrides.push_back(set);

    config::Diagnostics diag;
    config::ScenarioSet set = haveFile
        ? config::loadScenarioFile(args.text("scenario-file", ""),
                                   overrides, diag)
        : config::loadScenarioString("", "cli", overrides, diag);
    if (!diag.ok()) {
        std::fprintf(stderr, "%s\n", diag.str().c_str());
        return 2;
    }
    if (set.points.empty()) {
        std::fprintf(stderr, "scenario resolved to no points\n");
        return 2;
    }
    if (set.isSweep()) {
        sim::fatal("chaos: the scenario expands to a sweep; chaos "
                   "varies the seed instead — drop the [sweep] "
                   "section");
    }
    const core::ExperimentConfig &base = set.points.front().config;

    std::string outDir = args.text("out-dir", "");
    std::ofstream csv;
    std::vector<std::string> artifacts;
    if (!outDir.empty()) {
        std::filesystem::create_directories(outDir);
        csv.open(std::filesystem::path(outDir) / "chaos_summary.csv");
        csv << "run,seed,controller_crashes,server_crashes,"
               "failsafe_entries,failsafe_s,mttr_max_s,caps_stale_s,"
               "brake_s,violations\n";
        artifacts.push_back("chaos_summary.csv");
    }

    std::printf("Chaos campaign: %d runs (base seed %llu, intensity "
                "%.2f) on %d+%.0f%% servers, %.2f h each\n",
                runs, static_cast<unsigned long long>(baseSeed),
                base.chaos.intensity, base.row.baseServers,
                base.row.addedServerFraction * 100.0,
                sim::ticksToSeconds(base.duration) / 3600.0);

    analysis::Table table({"run", "seed", "ctl crashes",
                           "srv crashes", "failsafe", "failsafe (s)",
                           "MTTR max (s)", "caps stale (s)",
                           "violations"});
    std::uint64_t totalViolations = 0;
    for (int i = 0; i < runs; ++i) {
        core::ExperimentConfig config = base;
        // Sequential seeds, so any reported seed reproduces directly
        // via `--runs 1 --seed <seed>` (run 0 = the base seed).
        config.seed = baseSeed + static_cast<std::uint64_t>(i);
        core::ExperimentResult result = runOversubExperiment(config);
        totalViolations += result.violations.size();

        table.row()
            .cell(static_cast<long long>(i))
            .cell(std::to_string(config.seed))
            .cell(static_cast<long long>(result.controllerCrashes))
            .cell(static_cast<long long>(result.crashesInjected))
            .cell(static_cast<long long>(result.failSafeEntries))
            .cell(sim::ticksToSeconds(result.failSafeTicks), 0)
            .cell(sim::ticksToSeconds(result.mttrMaxTicks), 0)
            .cell(sim::ticksToSeconds(result.capsHeldStaleTicks), 0)
            .cell(static_cast<long long>(result.violations.size()));
        if (csv.is_open()) {
            csv << i << ',' << config.seed << ','
                << result.controllerCrashes << ','
                << result.crashesInjected << ','
                << result.failSafeEntries << ','
                << sim::ticksToSeconds(result.failSafeTicks) << ','
                << sim::ticksToSeconds(result.mttrMaxTicks) << ','
                << sim::ticksToSeconds(result.capsHeldStaleTicks)
                << ','
                << sim::ticksToSeconds(result.brakeTicks) << ','
                << result.violations.size() << '\n';
        }

        for (const core::SafetyViolation &v : result.violations) {
            std::printf("run %d (seed %llu): %s violated at "
                        "t=%.0f s (value %.2f, limit %.2f)\n",
                        i,
                        static_cast<unsigned long long>(config.seed),
                        core::toString(v.invariant),
                        sim::ticksToSeconds(v.at), v.value, v.limit);
        }
        if (!result.violations.empty() && !outDir.empty()) {
            // Reproduction artifact: rerun the violating seed with
            // observability attached and export the full trace.
            obs::Observability observability;
            core::ExperimentConfig repro = config;
            repro.obs = &observability;
            (void)runOversubExperiment(repro);
            std::filesystem::path tracePath =
                std::filesystem::path(outDir) /
                ("violation_seed_" + std::to_string(config.seed) +
                 ".trace.json");
            std::ofstream traceFile(tracePath);
            if (traceFile)
                observability.trace.exportChromeJson(traceFile);
            artifacts.push_back(tracePath.filename().string());
            std::printf("run %d: wrote reproduction trace %s\n", i,
                        tracePath.string().c_str());
        }
    }
    table.print(std::cout);

    if (!outDir.empty()) {
        obs::RunManifest manifest;
        manifest.command = "chaos";
        manifest.scenarioPath = args.text("scenario-file", "");
        std::ostringstream resolved;
        config::dumpResolved(base, set.points.front().tree, resolved);
        manifest.configDigest = obs::fnv1a64Hex(resolved.str());
        manifest.seed = baseSeed;
        manifest.durationS = sim::ticksToSeconds(base.duration);
        manifest.metricsIntervalS =
            sim::ticksToSeconds(base.obsOptions.metricsInterval);
        manifest.artifacts = artifacts;
        std::ofstream ms(std::filesystem::path(outDir) /
                         "manifest.json");
        if (ms)
            manifest.writeJson(ms);
    }

    std::printf("\n%d runs, %llu safety violation%s\n", runs,
                static_cast<unsigned long long>(totalViolations),
                totalViolations == 1 ? "" : "s");
    if (totalViolations > 0) {
        std::printf("reproduce with: polcactl chaos --runs 1 "
                    "--seed <violating seed shown above>\n");
        return 1;
    }
    return 0;
}

/** `polcactl report <run-dir>`: render report.md + report.html from
 *  the artifacts a previous run wrote. */
int
cmdReport(const Args &args)
{
    if (args.positional().empty()) {
        std::fprintf(stderr,
                     "report: no run directory given "
                     "(usage: polcactl report <run-dir>)\n");
        return 2;
    }
    int failures = 0;
    for (const std::string &dir : args.positional()) {
        obs::ReportResult result = obs::writeRunReport(dir);
        if (!result.ok) {
            std::fprintf(stderr, "report: %s\n",
                         result.error.c_str());
            ++failures;
            continue;
        }
        for (const std::string &path : result.written)
            std::printf("wrote %s\n", path.c_str());
    }
    return failures == 0 ? 0 : 2;
}

int
cmdConfigCheck(const Args &args)
{
    if (args.positional().empty()) {
        std::fprintf(stderr,
                     "config check: no scenario files given\n");
        return 2;
    }
    int failures = 0;
    for (const std::string &path : args.positional()) {
        config::Diagnostics diag;
        config::ScenarioSet set =
            config::loadScenarioFile(path, {}, diag);
        if (!diag.ok()) {
            std::fprintf(stderr, "%s: FAILED\n%s\n", path.c_str(),
                         diag.str().c_str());
            ++failures;
            continue;
        }
        std::printf("%s: OK (%zu point%s)\n", path.c_str(),
                    set.points.size(),
                    set.points.size() == 1 ? "" : "s");
    }
    return failures == 0 ? 0 : 1;
}

int
cmdConfigDump(const Args &args)
{
    config::Diagnostics diag;
    config::ScenarioSet set = resolveScenario(args, diag);
    if (!diag.ok()) {
        std::fprintf(stderr, "%s\n", diag.str().c_str());
        return 2;
    }
    if (set.points.empty()) {
        std::fprintf(stderr, "scenario resolved to no points\n");
        return 2;
    }
    std::size_t index =
        static_cast<std::size_t>(args.number("point", 0));
    if (index >= set.points.size()) {
        sim::fatal("--point ", index, " out of range (scenario has ",
                   set.points.size(), " points)");
    }
    const config::ResolvedScenario &point = set.points[index];
    if (set.isSweep()) {
        std::printf("# sweep point %zu/%zu: %s\n", index + 1,
                    set.points.size(), point.label.c_str());
    }
    config::dumpResolved(point.config, point.tree, std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setQuiet(true);
    if (argc < 2)
        return usage();

    std::string command = argv[1];
    if (command == "models")
        return cmdModels();
    if (command == "policy")
        return cmdPolicy(Args(argc, argv, 2, {}));
    if (command == "run")
        return cmdRun(Args(argc, argv, 2, runFlags()));
    if (command == "chaos") {
        return cmdChaos(Args(argc, argv, 2,
                             {"runs", "seed", "scenario-file", "set",
                              "out-dir"}));
    }
    if (command == "report")
        return cmdReport(Args(argc, argv, 2, {}));
    if (command == "scenarios")
        return cmdScenarios();
    if (command == "config") {
        if (argc < 3)
            return usage();
        std::string sub = argv[2];
        if (sub == "check")
            return cmdConfigCheck(Args(argc, argv, 3, {}));
        if (sub == "dump")
            return cmdConfigDump(Args(argc, argv, 3, runFlags()));
        return usage();
    }
    if (command == "trace") {
        if (argc < 3)
            return usage();
        std::string sub = argv[2];
        std::vector<std::string> traceFlags = {"days", "servers",
                                               "seed", "out", "bin"};
        Args args(argc, argv, 3, traceFlags);
        if (sub == "generate")
            return cmdTraceGenerate(args);
        if (sub == "stats")
            return cmdTraceStats(args);
        if (sub == "regenerate")
            return cmdTraceRegenerate(args);
        return usage();
    }
    if (command == "--help" || command == "-h")
        return usage();
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return usage();
}
