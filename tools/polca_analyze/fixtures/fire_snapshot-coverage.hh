// Fixture: a snapshot-protocol class whose State value object misses
// a member, plus a stale skip annotation.  Every problem below must
// fire snapshot-coverage.  With no bodies visible the analyzer uses
// the naming-convention fallback (member `foo_` <-> State field
// `foo`), the same path the mutation oracle exercises.
#pragma once

#include <cstdint>

namespace polca {

class Meter
{
  public:
    struct State
    {
        double joules = 0;
        std::int64_t extraField = 0;  // matches no member: fires
    };

    State saveState() const;
    void restoreState(const State &state);

  private:
    double joules_ = 0;
    std::int64_t droppedTicks_ = 0;  // no State field: fires
    // polca-snapshot: skip(ghost_, annotation names no member: fires)
    bool armed_ = false;  // no State field: fires
};

} // namespace polca
