// Fixture: unit mistakes the dimensional analysis must catch.  Every
// statement marked below fires unit-consistency.

namespace polca {

double
mixedDimensions(double powerWatts, double energyJoules)
{
    return powerWatts + energyJoules;  // watts + joules: fires
}

double
mixedScales(double energyJoules)
{
    double totalKwh = energyJoules;  // joules into kWh slot: fires
    return totalKwh;
}

bool
mixedComparison(double timeoutSeconds, double elapsedMs)
{
    return elapsedMs > timeoutSeconds;  // ms vs seconds: fires
}

double
unannotatedConversion(double energyJoules, double idleSeconds)
{
    // Dividing by a bare literal does not change the unit; stuffing
    // the result into a kWh variable outside a kWh-named function
    // fires (compare energyMeter::kilowattHours(), which is exempt).
    double bankedKwh = energyJoules / 3.6e6;  // fires
    return bankedKwh + idleSeconds * 0.0;
}

} // namespace polca
