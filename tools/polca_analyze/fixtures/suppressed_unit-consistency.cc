// Fixture: the clean shapes of unit-suffixed arithmetic.  Conversions
// through named helpers, scale-neutral literals, conversion-named
// functions, "per" factors, and an explicit suppression.  Must
// produce no findings.

namespace polca {

double ticksToSeconds(double ticks);

const double ticksPerSecond = 1e6;

double
meanPowerWatts(double energyJoules, double elapsedTicks)
{
    // Crossing ticks -> seconds through the named helper keeps the
    // dimensions consistent: joules / seconds = watts.
    return energyJoules / ticksToSeconds(elapsedTicks);
}

double
kilowattHours(double energyJoules)
{
    // A function named for its unit may rescale within the dimension:
    // this is the conversion's single annotated home.
    return energyJoules / 3.6e6;
}

double
scaleNeutralLiterals(double budgetWatts)
{
    double headroomWatts = budgetWatts * 0.2 + 50.0;
    return headroomWatts;
}

double
conversionFactor(double elapsedTicks)
{
    // "per" identifiers are conversion factors, not checkable units.
    return elapsedTicks / ticksPerSecond;
}

double
reviewedMix(double energyJoules, double uptimeSeconds)
{
    return energyJoules + uptimeSeconds;  // polca-analyze: allow(unit-consistency)
}

} // namespace polca
