// Fixture: the clean shapes of the snapshot protocol.  Members are
// either mirrored in State, auto-exempt (static/const/reference/
// pointer/std::function wiring), annotated with a reviewed skip, or
// suppressed in place.  Must produce no findings.
#pragma once

#include <cstdint>
#include <functional>

namespace polca {

class Meter
{
  public:
    struct State
    {
        double joules = 0;
        std::int64_t meteredTicks = 0;
    };

    State saveState() const;
    void restoreState(const State &state);

  private:
    double joules_ = 0;
    std::int64_t meteredTicks_ = 0;           // mirrored in State
    static constexpr int kChannels = 4;       // exempt: constexpr
    const double calibration_ = 1.0;          // exempt: const
    int &hostCounter_;                        // exempt: reference
    int *rawSlot_ = nullptr;                  // exempt: raw pointer
    std::function<double()> supply_;          // exempt: callback
    // polca-snapshot: skip(scratch_, rebuilt by first sample after restore)
    double scratch_ = 0;
    bool armed_ = false;  // polca-analyze: allow(snapshot-coverage)
};

} // namespace polca
