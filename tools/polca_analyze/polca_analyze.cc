/**
 * @file
 * polca_analyze: structure-aware static analysis for the POLCA tree.
 *
 * Where polca_lint's rules are line-oriented greps, the two rules here
 * understand program structure (a real tokenizer plus a lightweight
 * class/member/function-body parser — no compiler dependency, stdlib
 * only, same as polca_lint):
 *
 *  - snapshot-coverage: every class implementing the sim/snapshot.hh
 *    re-arm protocol (declares BOTH `saveState()` and
 *    `restoreState(...)`) must capture and restore each of its
 *    non-static data members.  Members are cross-checked against the
 *    nested `struct State` value object and against the identifiers
 *    referenced inside the saveState/restoreState bodies (bodies may
 *    live out-of-line in a .cc file; the analysis is whole-tree).
 *    A member that is deliberately rebuilt instead of snapshotted is
 *    annotated `// polca-snapshot: skip(<member>, <reason>)`; a stale
 *    annotation (naming no such member) is itself a finding.  When no
 *    body is visible (header-only scans, e.g. the mutation oracle),
 *    the check falls back to the tree's naming convention: member
 *    `foo_` must have a State field `foo` and vice versa.
 *
 *    Ownership split with polca_lint: mutable static/global state is
 *    polca_lint's `snapshot-drift` rule; this rule owns instance
 *    members of protocol classes.  Static/constexpr members are
 *    therefore auto-exempt here, as are reference, raw-pointer, const
 *    and std::function members (wiring that is re-established by the
 *    constructor, not snapshotted).
 *
 *  - unit-consistency: lightweight dimensional analysis over the
 *    tree's unit-suffixed identifiers (`*_watts`, `*_joules`, `*Kwh`,
 *    `*_seconds`, `*_ms`, `*_hz`, `*Ticks`, ...).  Assignments,
 *    additive arithmetic and comparisons between quantities of
 *    different dimension — or of the same dimension at different
 *    scale (joules vs kilowatt-hours, seconds vs ms) — are flagged
 *    unless the conversion happens inside a function whose own name
 *    carries the target unit (`kilowattHours()` may divide joules by
 *    3.6e6; an unannotated `joules / 3.6e6` elsewhere may not).
 *    Numeric literals are scale-neutral in multiplication/division
 *    precisely so such conversions stay visible; identifiers with a
 *    "per" segment (`ticksPerSecond`) are conversion factors and are
 *    treated as wildcards.  Ticks are their own dimension: the
 *    tick-to-seconds ratio is a runtime constant, so crossing between
 *    them must go through sim::ticksToSeconds()/secondsToTicks().
 *
 * Suppression: `// polca-analyze: allow(<rule>)` on the finding line
 * (cross-recognized with `// polca-lint: allow(<rule>)`, see
 * tools/analyze_common).
 *
 * Exit status: 0 clean, 1 findings, 2 usage error.
 * Machine output:         --format=gcc   (file:line: error: ... [rule])
 * Self-test:              --self-test <fixtures-dir>
 */

#include "../analyze_common/analyze_common.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace {

using polca::analyze::FileText;
using polca::analyze::Finding;
using polca::analyze::SkipAnnotation;
using polca::analyze::Token;
using polca::analyze::TokenKind;
using polca::analyze::collectFiles;
using polca::analyze::loadFile;
using polca::analyze::printFindings;
using polca::analyze::report;
using polca::analyze::selfTest;
using polca::analyze::startsWith;
using polca::analyze::tokenize;
namespace fs = polca::analyze::fs;

// ===================================================================
// Unit model
// ===================================================================

/** Dimension vector over the three base dimensions the tree uses. */
struct Dim
{
    int energy = 0;   ///< joules
    int seconds = 0;  ///< wall/sim seconds
    int ticks = 0;    ///< sim::Tick (scale to seconds unknown statically)

    bool operator==(const Dim &o) const
    {
        return energy == o.energy && seconds == o.seconds &&
               ticks == o.ticks;
    }
    bool operator!=(const Dim &o) const { return !(*this == o); }
};

/** A dimension plus a scale factor relative to the base unit. */
struct Unit
{
    Dim dim;
    double scale = 1.0;
};

/**
 * What an expression evaluates to.  Wild: unknown, never flagged.
 * Pure: a bare numeric literal — dimensionless AND scale-neutral, so
 * `joules / 3.6e6` keeps the joules scale and a later kWh context can
 * still see the mismatch.  Known: a unit-suffixed quantity.
 */
struct Quantity
{
    enum Kind { Wild, Pure, Known } kind = Wild;
    Unit unit;
    std::string label;  ///< human-readable unit name for messages

    static Quantity wild() { return {}; }
    static Quantity pure() { return {Pure, {}, "number"}; }
    static Quantity known(const Unit &u, const std::string &l)
    {
        return {Known, u, l};
    }
};

bool
scaleEq(double a, double b)
{
    return std::fabs(a - b) <= 1e-9 * std::max(std::fabs(a),
                                               std::fabs(b));
}

/** Unit-suffix table, keyed by lowercased trailing name segment(s). */
const std::map<std::string, Unit> &
unitTable()
{
    static const std::map<std::string, Unit> table = [] {
        std::map<std::string, Unit> t;
        const Dim E{1, 0, 0};    // energy
        const Dim P{1, -1, 0};   // power
        const Dim S{0, 1, 0};    // time
        const Dim F{0, -1, 0};   // frequency
        const Dim K{0, 0, 1};    // ticks
        auto put = [&](std::initializer_list<const char *> names,
                       Dim d, double scale) {
            for (const char *n : names)
                t[n] = Unit{d, scale};
        };
        put({"joules", "joule"}, E, 1.0);
        put({"watthours", "watthour", "wh"}, E, 3600.0);
        put({"kilowatthours", "kilowatthour", "kwh"}, E, 3.6e6);
        put({"megawatthours", "megawatthour", "mwh"}, E, 3.6e9);
        put({"watts", "watt"}, P, 1.0);
        put({"kilowatts", "kilowatt", "kw"}, P, 1e3);
        put({"megawatts", "megawatt", "mw"}, P, 1e6);
        put({"gigawatts", "gigawatt", "gw"}, P, 1e9);
        put({"seconds", "second", "secs", "sec"}, S, 1.0);
        put({"milliseconds", "millisecond", "millis", "ms"}, S, 1e-3);
        put({"microseconds", "microsecond", "micros", "us"}, S, 1e-6);
        put({"nanoseconds", "nanosecond", "nanos", "ns"}, S, 1e-9);
        put({"minutes", "minute"}, S, 60.0);
        put({"hours", "hour", "hrs"}, S, 3600.0);
        put({"days", "day"}, S, 86400.0);
        put({"hertz", "hz"}, F, 1.0);
        put({"khz"}, F, 1e3);
        put({"mhz"}, F, 1e6);
        put({"ghz"}, F, 1e9);
        put({"ticks", "tick"}, K, 1.0);
        return t;
    }();
    return table;
}

/** Split an identifier into lowercased segments on '_' and camelCase
 *  boundaries ("meteredTicks" -> {"metered","ticks"}). */
std::vector<std::string>
segmentsOf(const std::string &name)
{
    std::vector<std::string> segs;
    std::string cur;
    auto flush = [&] {
        if (!cur.empty()) {
            segs.push_back(cur);
            cur.clear();
        }
    };
    for (std::size_t i = 0; i < name.size(); ++i) {
        char c = name[i];
        if (c == '_') {
            flush();
            continue;
        }
        if (std::isupper(static_cast<unsigned char>(c)) && !cur.empty() &&
            !std::isupper(static_cast<unsigned char>(cur.back())))
            flush();
        cur.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    }
    flush();
    return segs;
}

/**
 * Unit implied by an identifier's trailing segment(s), if any.
 * The two-segment join is tried first so `kilowattHours` resolves to
 * kWh rather than hours.  Identifiers with a "per" segment are
 * conversion factors (ticksPerSecond) and carry no checkable unit.
 */
std::optional<std::pair<Unit, std::string>>
unitOfIdentifier(const std::string &name)
{
    std::vector<std::string> segs = segmentsOf(name);
    if (segs.empty())
        return std::nullopt;
    for (const std::string &s : segs)
        if (s == "per")
            return std::nullopt;
    const auto &table = unitTable();
    if (segs.size() >= 2) {
        std::string two = segs[segs.size() - 2] + segs.back();
        auto it = table.find(two);
        if (it != table.end())
            return std::make_pair(it->second, two);
    }
    auto it = table.find(segs.back());
    if (it != table.end())
        return std::make_pair(it->second, segs.back());
    return std::nullopt;
}

// ===================================================================
// Expression evaluation (unit-consistency)
// ===================================================================

/** Shared state for one expression walk. */
struct ExprCtx
{
    const std::vector<Token> *toks;
    std::size_t end;  ///< exclusive bound of the statement
    const FileText *text;
    std::string rel;
    std::vector<Finding> *findings;
};

void
flagUnit(ExprCtx &ctx, int line, const std::string &message)
{
    report(*ctx.findings, *ctx.text, ctx.rel, line, "unit-consistency",
           message);
}

bool
unitsMatch(const Quantity &a, const Quantity &b)
{
    return a.unit.dim == b.unit.dim && scaleEq(a.unit.scale, b.unit.scale);
}

Quantity parseExpr(ExprCtx &ctx, std::size_t &i);
Quantity parseCmp(ExprCtx &ctx, std::size_t &i);

bool
isPunct(const ExprCtx &ctx, std::size_t i, const char *p)
{
    return i < ctx.end && (*ctx.toks)[i].kind == TokenKind::Punct &&
           (*ctx.toks)[i].text == p;
}

/** Skip a balanced <...> starting at `<`; false if not balanced. */
bool
skipAngles(const ExprCtx &ctx, std::size_t &i)
{
    if (!isPunct(ctx, i, "<"))
        return false;
    int depth = 0;
    std::size_t j = i;
    while (j < ctx.end) {
        const Token &t = (*ctx.toks)[j];
        if (t.kind == TokenKind::Punct) {
            if (t.text == "<")
                ++depth;
            else if (t.text == ">")
                --depth;
            else if (t.text == ">>")
                depth -= 2;
            else if (t.text == ";" || t.text == "{")
                return false;
            if (depth <= 0) {
                i = j + 1;
                return true;
            }
        }
        ++j;
    }
    return false;
}

/** Skip a balanced (...) / [...] block; i points at the opener. */
void
skipBalanced(const ExprCtx &ctx, std::size_t &i, const char *open,
             const char *close)
{
    int depth = 0;
    while (i < ctx.end) {
        if (isPunct(ctx, i, open))
            ++depth;
        else if (isPunct(ctx, i, close)) {
            if (--depth == 0) {
                ++i;
                return;
            }
        }
        ++i;
    }
}

/** Parse `(` args `)` evaluating each top-level argument expression
 *  (so mismatches inside call arguments are still flagged). */
void
parseCallArgs(ExprCtx &ctx, std::size_t &i)
{
    ++i;  // consume '('
    if (isPunct(ctx, i, ")")) {
        ++i;
        return;
    }
    while (i < ctx.end) {
        parseExpr(ctx, i);
        if (isPunct(ctx, i, ",")) {
            ++i;
            continue;
        }
        if (isPunct(ctx, i, ")")) {
            ++i;
            return;
        }
        ++i;  // unexpected token: keep making progress
    }
}

Quantity
parsePrimary(ExprCtx &ctx, std::size_t &i)
{
    if (i >= ctx.end)
        return Quantity::wild();
    const Token &t = (*ctx.toks)[i];
    if (t.kind == TokenKind::Number) {
        ++i;
        return Quantity::pure();
    }
    if (t.kind == TokenKind::String || t.kind == TokenKind::CharLit) {
        ++i;
        return Quantity::wild();
    }
    if (t.kind == TokenKind::Punct) {
        if (t.text == "(") {
            ++i;
            Quantity v = parseExpr(ctx, i);
            while (i < ctx.end && !isPunct(ctx, i, ")")) {
                if (isPunct(ctx, i, ",")) {  // comma expression
                    ++i;
                    v = parseExpr(ctx, i);
                    continue;
                }
                ++i;
            }
            if (isPunct(ctx, i, ")"))
                ++i;
            return v;
        }
        ++i;  // stray punctuation: consume for progress
        return Quantity::wild();
    }

    // Identifier chain: a::b.c->d, possibly with template args and a
    // trailing call.  The unit comes from the last name segment.
    static const std::set<std::string> casts = {
        "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast"};
    if (casts.count(t.text)) {
        ++i;
        skipAngles(ctx, i);
        if (isPunct(ctx, i, "(")) {
            ++i;
            Quantity v = parseExpr(ctx, i);
            if (isPunct(ctx, i, ")"))
                ++i;
            return v;  // casts change representation, not unit
        }
        return Quantity::wild();
    }

    std::string last = t.text;
    ++i;
    while (i < ctx.end) {
        if (isPunct(ctx, i, "::") || isPunct(ctx, i, ".") ||
            isPunct(ctx, i, "->")) {
            if (i + 1 < ctx.end &&
                (*ctx.toks)[i + 1].kind == TokenKind::Ident) {
                last = (*ctx.toks)[i + 1].text;
                i += 2;
                continue;
            }
            break;
        }
        if (isPunct(ctx, i, "[")) {
            skipBalanced(ctx, i, "[", "]");
            continue;
        }
        break;
    }
    bool isCall = isPunct(ctx, i, "(");
    if (isCall)
        parseCallArgs(ctx, i);
    auto u = unitOfIdentifier(last);
    if (!u)
        return Quantity::wild();
    return Quantity::known(u->first, u->second);
}

Quantity
parseUnary(ExprCtx &ctx, std::size_t &i)
{
    if (i < ctx.end && (*ctx.toks)[i].kind == TokenKind::Punct) {
        const std::string &p = (*ctx.toks)[i].text;
        if (p == "-" || p == "+" || p == "++" || p == "--") {
            ++i;
            return parseUnary(ctx, i);
        }
        if (p == "!" || p == "~") {
            ++i;
            parseUnary(ctx, i);
            return Quantity::pure();
        }
        if (p == "*" || p == "&") {  // deref / address-of
            ++i;
            parseUnary(ctx, i);
            return Quantity::wild();
        }
    }
    Quantity v = parsePrimary(ctx, i);
    while (i < ctx.end && (isPunct(ctx, i, "++") || isPunct(ctx, i, "--")))
        ++i;
    return v;
}

Quantity
parseMul(ExprCtx &ctx, std::size_t &i)
{
    Quantity lhs = parseUnary(ctx, i);
    while (i < ctx.end &&
           (isPunct(ctx, i, "*") || isPunct(ctx, i, "/") ||
            isPunct(ctx, i, "%"))) {
        std::string op = (*ctx.toks)[i].text;
        int line = (*ctx.toks)[i].line;
        ++i;
        Quantity rhs = parseUnary(ctx, i);
        if (lhs.kind == Quantity::Wild || rhs.kind == Quantity::Wild) {
            lhs = Quantity::wild();
            continue;
        }
        if (op == "%") {
            if (lhs.kind == Quantity::Known &&
                rhs.kind == Quantity::Known && !unitsMatch(lhs, rhs))
                flagUnit(ctx, line,
                         "'%' between mismatched units (" + lhs.label +
                             " vs " + rhs.label + ")");
            continue;  // result keeps lhs
        }
        if (rhs.kind == Quantity::Pure)
            continue;  // literals are scale-neutral: lhs unchanged
        if (lhs.kind == Quantity::Pure) {
            if (op == "*") {
                lhs = rhs;
            } else {  // 1 / unit inverts the dimension
                Quantity inv = rhs;
                inv.unit.dim.energy = -inv.unit.dim.energy;
                inv.unit.dim.seconds = -inv.unit.dim.seconds;
                inv.unit.dim.ticks = -inv.unit.dim.ticks;
                inv.unit.scale = 1.0 / inv.unit.scale;
                inv.label = "1/" + rhs.label;
                lhs = inv;
            }
            continue;
        }
        // Known op Known: combine dimensions and scales.
        Quantity out;
        out.kind = Quantity::Known;
        int sign = (op == "*") ? 1 : -1;
        out.unit.dim.energy =
            lhs.unit.dim.energy + sign * rhs.unit.dim.energy;
        out.unit.dim.seconds =
            lhs.unit.dim.seconds + sign * rhs.unit.dim.seconds;
        out.unit.dim.ticks = lhs.unit.dim.ticks + sign * rhs.unit.dim.ticks;
        out.unit.scale = (op == "*") ? lhs.unit.scale * rhs.unit.scale
                                     : lhs.unit.scale / rhs.unit.scale;
        out.label = lhs.label + op + rhs.label;
        lhs = out;
    }
    return lhs;
}

Quantity
parseAdd(ExprCtx &ctx, std::size_t &i)
{
    Quantity lhs = parseMul(ctx, i);
    while (i < ctx.end &&
           (isPunct(ctx, i, "+") || isPunct(ctx, i, "-"))) {
        std::string op = (*ctx.toks)[i].text;
        int line = (*ctx.toks)[i].line;
        ++i;
        Quantity rhs = parseMul(ctx, i);
        if (lhs.kind == Quantity::Known && rhs.kind == Quantity::Known &&
            !unitsMatch(lhs, rhs)) {
            flagUnit(ctx, line,
                     "'" + op + "' between mismatched units (" +
                         lhs.label + " vs " + rhs.label +
                         "); convert through a named helper first");
            lhs = Quantity::wild();
            continue;
        }
        if (lhs.kind == Quantity::Wild || rhs.kind == Quantity::Wild)
            lhs = Quantity::wild();
        else if (lhs.kind == Quantity::Pure)
            lhs = rhs;  // literal offset keeps the unit
    }
    return lhs;
}

Quantity
parseCmp(ExprCtx &ctx, std::size_t &i)
{
    static const std::set<std::string> cmps = {"<",  ">",  "<=",
                                               ">=", "==", "!="};
    Quantity lhs = parseAdd(ctx, i);
    bool compared = false;
    while (i < ctx.end && (*ctx.toks)[i].kind == TokenKind::Punct &&
           cmps.count((*ctx.toks)[i].text)) {
        std::string op = (*ctx.toks)[i].text;
        int line = (*ctx.toks)[i].line;
        ++i;
        Quantity rhs = parseAdd(ctx, i);
        if (lhs.kind == Quantity::Known && rhs.kind == Quantity::Known &&
            !unitsMatch(lhs, rhs))
            flagUnit(ctx, line,
                     "comparing mismatched units (" + lhs.label + " " +
                         op + " " + rhs.label + ")");
        lhs = rhs;  // chained comparisons check pairwise
        compared = true;
    }
    return compared ? Quantity::pure() : lhs;
}

Quantity
parseExpr(ExprCtx &ctx, std::size_t &i)
{
    Quantity v = parseCmp(ctx, i);
    while (i < ctx.end && (*ctx.toks)[i].kind == TokenKind::Punct) {
        const std::string &p = (*ctx.toks)[i].text;
        if (p == "?") {  // ternary: branches are independent
            ++i;
            parseExpr(ctx, i);
            if (isPunct(ctx, i, ":"))
                ++i;
            parseExpr(ctx, i);
            v = Quantity::wild();
            continue;
        }
        if (p == ")" || p == "]" || p == "}" || p == ";" || p == ":" ||
            p == ",")
            break;
        // Any other binary operator (<<, &&, |, ...) wildcards the
        // result but keeps walking so nested mismatches still flag.
        ++i;
        parseCmp(ctx, i);
        v = Quantity::wild();
    }
    return v;
}

// ===================================================================
// Statement scanner (unit-consistency driver)
// ===================================================================

/** Tokens with preprocessor lines dropped (tokenize() sees `#include
 *  <vector>` as code; directives are not statements). */
std::vector<Token>
codeTokens(const FileText &text)
{
    std::vector<bool> preproc(text.raw.size(), false);
    bool continued = false;
    for (std::size_t i = 0; i < text.raw.size(); ++i) {
        const std::string &code =
            i < text.code.size() ? text.code[i] : text.raw[i];
        std::size_t first = code.find_first_not_of(" \t");
        bool directive =
            continued ||
            (first != std::string::npos && code[first] == '#');
        preproc[i] = directive;
        const std::string &raw = text.raw[i];
        continued = directive && !raw.empty() && raw.back() == '\\';
    }
    std::vector<Token> out;
    for (const Token &t : tokenize(text))
        if (t.line < 1 ||
            !preproc[static_cast<std::size_t>(t.line - 1)])
            out.push_back(t);
    return out;
}

bool
isIdent(const std::vector<Token> &t, std::size_t i, const char *word)
{
    return i < t.size() && t[i].kind == TokenKind::Ident &&
           t[i].text == word;
}

const std::set<std::string> &
controlKeywords()
{
    static const std::set<std::string> kw = {
        "if", "for", "while", "switch", "catch", "return",
        "else", "do", "case", "default", "try"};
    return kw;
}

/**
 * If tokens [s,e) look like a function signature (`name (args) ...`),
 * return the function name.  Constructors and control statements
 * return nullopt.
 */
std::optional<std::string>
functionSigName(const std::vector<Token> &t, std::size_t s, std::size_t e)
{
    if (s >= e)
        return std::nullopt;
    if (t[s].kind == TokenKind::Ident &&
        (controlKeywords().count(t[s].text) || t[s].text == "namespace" ||
         t[s].text == "class" || t[s].text == "struct" ||
         t[s].text == "enum" || t[s].text == "union"))
        return std::nullopt;
    // Find the last top-level ')' and match it back to its '('.
    std::size_t close = e;
    int depth = 0;
    for (std::size_t j = e; j-- > s;) {
        if (t[j].kind != TokenKind::Punct)
            continue;
        if (t[j].text == ")") {
            if (depth == 0 && close == e)
                close = j;
            ++depth;
        } else if (t[j].text == "(") {
            --depth;
        }
    }
    if (close == e)
        return std::nullopt;
    depth = 0;
    std::size_t open = e;
    for (std::size_t j = close + 1; j-- > s;) {
        if (t[j].kind != TokenKind::Punct)
            continue;
        if (t[j].text == ")")
            ++depth;
        else if (t[j].text == "(") {
            if (--depth == 0) {
                open = j;
                break;
            }
        }
    }
    if (open == e || open == s)
        return std::nullopt;
    const Token &name = t[open - 1];
    if (name.kind != TokenKind::Ident ||
        controlKeywords().count(name.text))
        return std::nullopt;
    return name.text;
}

/** Analyze one statement [s,e) for unit mismatches. */
void
analyzeStatement(const std::vector<Token> &toks, std::size_t s,
                 std::size_t e, const std::optional<Quantity> &fnUnit,
                 const FileText &text, const std::string &rel,
                 std::vector<Finding> &findings)
{
    if (s >= e)
        return;
    ExprCtx ctx{&toks, e, &text, rel, &findings};
    static const std::set<std::string> skipLead = {
        "using",     "typedef",  "template", "namespace", "class",
        "struct",    "enum",     "union",    "friend",    "public",
        "private",   "protected", "goto",    "break",     "continue",
        "static_assert", "extern", "case",   "default",   "delete",
        "for",       "do",       "else",    "switch",     "catch",
        "try",       "operator"};
    const Token &first = toks[s];
    if (first.kind == TokenKind::Ident && skipLead.count(first.text))
        return;
    for (std::size_t j = s; j < e; ++j)
        if (isIdent(toks, j, "operator"))
            return;  // operator overloads: not worth the false positives

    if (first.kind == TokenKind::Ident && first.text == "return") {
        std::size_t i = s + 1;
        Quantity v = parseExpr(ctx, i);
        // Conversion exemption: a function named for its unit may
        // rescale within the dimension (kilowattHours() returning
        // joules/3.6e6), so only dimension mismatches flag here.
        if (fnUnit && v.kind == Quantity::Known &&
            v.unit.dim != fnUnit->unit.dim)
            flagUnit(ctx, first.line,
                     "returning " + v.label + " from a function named "
                     "in " + fnUnit->label);
        return;
    }
    if (first.kind == TokenKind::Ident &&
        (first.text == "if" || first.text == "while")) {
        std::size_t i = s + 1;
        parseExpr(ctx, i);  // the parenthesized condition
        return;
    }

    // Assignment? Find the first top-level =, +=, -=, *=, /=.
    static const std::set<std::string> assignOps = {"=", "+=", "-=",
                                                    "*=", "/="};
    int paren = 0;
    std::size_t assignAt = e;
    for (std::size_t j = s; j < e; ++j) {
        if (toks[j].kind != TokenKind::Punct)
            continue;
        const std::string &p = toks[j].text;
        if (p == "(" || p == "[")
            ++paren;
        else if (p == ")" || p == "]")
            --paren;
        else if (paren == 0 && assignOps.count(p)) {
            assignAt = j;
            break;
        }
    }
    if (assignAt == e) {
        std::size_t i = s;
        parseExpr(ctx, i);
        return;
    }
    std::string lhsName;
    for (std::size_t j = assignAt; j-- > s;)
        if (toks[j].kind == TokenKind::Ident) {
            lhsName = toks[j].text;
            break;
        }
    std::size_t i = assignAt + 1;
    Quantity rhs = parseExpr(ctx, i);
    const std::string &op = toks[assignAt].text;
    if (op == "*=" || op == "/=")
        return;  // deliberate dimension/scale change
    auto lhsUnit = unitOfIdentifier(lhsName);
    if (lhsUnit && rhs.kind == Quantity::Known) {
        Quantity lhs = Quantity::known(lhsUnit->first, lhsUnit->second);
        if (!unitsMatch(lhs, rhs))
            flagUnit(ctx, toks[assignAt].line,
                     "assigning " + rhs.label + " to '" + lhsName +
                         "' (" + lhs.label +
                         "); convert through a named helper first");
    }
}

/** Walk a file's statements, tracking function scopes for the
 *  return-unit check, and run the unit analysis on each. */
void
unitScan(const std::vector<Token> &toks, const FileText &text,
         const std::string &rel, std::vector<Finding> &findings)
{
    struct Scope
    {
        std::optional<Quantity> fnUnit;
        int savedParen;
    };
    std::vector<Scope> scopes;
    std::optional<Quantity> current;
    int paren = 0;
    std::size_t stmtStart = 0;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokenKind::Punct)
            continue;
        if (t.text == "(") {
            ++paren;
            continue;
        }
        if (t.text == ")") {
            --paren;
            continue;
        }
        if (t.text == ";") {
            if (paren == 0) {
                analyzeStatement(toks, stmtStart, i, current, text, rel,
                                 findings);
                stmtStart = i + 1;
            }
            continue;
        }
        if (t.text == "{") {
            std::optional<Quantity> entered = current;
            auto name = functionSigName(toks, stmtStart, i);
            if (name) {
                entered.reset();
                if (auto u = unitOfIdentifier(*name))
                    entered = Quantity::known(u->first, u->second);
            } else if (stmtStart < i &&
                       toks[stmtStart].kind == TokenKind::Ident &&
                       (toks[stmtStart].text == "class" ||
                        toks[stmtStart].text == "struct" ||
                        toks[stmtStart].text == "namespace" ||
                        toks[stmtStart].text == "union" ||
                        toks[stmtStart].text == "enum")) {
                entered.reset();
            }
            if (!name && stmtStart < i &&
                toks[stmtStart].kind == TokenKind::Ident &&
                (toks[stmtStart].text == "if" ||
                 toks[stmtStart].text == "while"))
                analyzeStatement(toks, stmtStart, i, current, text, rel,
                                 findings);
            scopes.push_back({current, paren});
            current = entered;
            paren = 0;
            stmtStart = i + 1;
            continue;
        }
        if (t.text == "}") {
            if (paren == 0)
                analyzeStatement(toks, stmtStart, i, current, text, rel,
                                 findings);
            if (!scopes.empty()) {
                current = scopes.back().fnUnit;
                paren = scopes.back().savedParen;
                scopes.pop_back();
            }
            stmtStart = i + 1;
            continue;
        }
    }
}

// ===================================================================
// Class/member parser (snapshot-coverage)
// ===================================================================

struct MemberInfo
{
    std::string name;
    int line;
    bool exempt;  ///< static/constexpr/const/ref/pointer/callback
};

struct StateField
{
    std::string name;
    int line;
};

/** Everything known about one class, merged across all scanned files
 *  (the declaration usually lives in a header, the bodies in a .cc). */
struct ClassData
{
    std::string file;  ///< file holding the class declaration
    int declLine = 0;
    int endLine = 0;
    bool declared = false;
    bool hasSave = false, hasRestore = false;
    bool saveBodySeen = false, restoreBodySeen = false;
    std::set<std::string> saveBody, restoreBody;  ///< referenced idents
    std::vector<MemberInfo> members;
    std::vector<StateField> stateFields;
    std::vector<SkipAnnotation> skips;
};

using Registry = std::map<std::string, ClassData>;

/** One file's token stream fed into the global registry. */
class StructParser
{
public:
    StructParser(const std::vector<Token> &toks, const FileText &text,
                 std::string rel, Registry &reg)
        : t_(toks), text_(text), rel_(std::move(rel)), reg_(reg)
    {
    }

    void run()
    {
        parseOuter(t_.size());
        attachSkips();
    }

private:
    const std::vector<Token> &t_;
    const FileText &text_;
    std::string rel_;
    Registry &reg_;
    std::size_t i_ = 0;
    /// Declared classes in this file, for innermost skip attachment.
    std::vector<std::string> declaredHere_;

    bool punct(const char *p) const
    {
        return i_ < t_.size() && t_[i_].kind == TokenKind::Punct &&
               t_[i_].text == p;
    }
    bool ident(const char *w) const
    {
        return i_ < t_.size() && t_[i_].kind == TokenKind::Ident &&
               t_[i_].text == w;
    }

    void skipBraces()
    {
        int depth = 0;
        while (i_ < t_.size()) {
            if (punct("{"))
                ++depth;
            else if (punct("}")) {
                if (--depth == 0) {
                    ++i_;
                    return;
                }
            }
            ++i_;
        }
    }

    void skipTemplateArgs()
    {
        if (!punct("<"))
            return;
        int depth = 0;
        while (i_ < t_.size()) {
            if (punct("<"))
                ++depth;
            else if (punct(">"))
                --depth;
            else if (t_[i_].kind == TokenKind::Punct &&
                     t_[i_].text == ">>")
                depth -= 2;
            else if (punct(";") || punct("{"))
                return;  // not template args after all
            ++i_;
            if (depth <= 0)
                return;
        }
    }

    /** Namespace / file scope: find class definitions and out-of-line
     *  saveState/restoreState bodies. */
    void parseOuter(std::size_t end)
    {
        std::vector<std::size_t> buf;
        while (i_ < end && i_ < t_.size()) {
            if (ident("namespace")) {
                ++i_;
                while (i_ < t_.size() && !punct("{") && !punct(";"))
                    ++i_;
                if (punct("{")) {
                    ++i_;
                    parseOuter(end);  // returns after matching '}'
                }
                else if (punct(";"))
                    ++i_;
                buf.clear();
                continue;
            }
            if (ident("template")) {
                ++i_;
                skipTemplateArgs();
                continue;
            }
            if (ident("class") || ident("struct")) {
                parseClassIntro("");
                buf.clear();
                continue;
            }
            if (ident("enum")) {
                while (i_ < t_.size() && !punct("{") && !punct(";"))
                    ++i_;
                if (punct("{"))
                    skipBraces();
                buf.clear();
                continue;
            }
            if (punct("{")) {
                handleOuterBrace(buf);
                buf.clear();
                continue;
            }
            if (punct(";")) {
                ++i_;
                buf.clear();
                continue;
            }
            if (punct("}")) {
                ++i_;
                return;  // end of enclosing namespace
            }
            buf.push_back(i_);
            ++i_;
        }
    }

    /** A '{' at namespace scope: function body (maybe an out-of-line
     *  saveState/restoreState), or an initializer block we skip. */
    void handleOuterBrace(const std::vector<std::size_t> &buf)
    {
        std::vector<Token> sig;
        sig.reserve(buf.size());
        for (std::size_t idx : buf)
            sig.push_back(t_[idx]);
        auto name = functionSigName(sig, 0, sig.size());
        if (name && (*name == "saveState" || *name == "restoreState")) {
            // Reconstruct the qualifier chain: idents joined by '::'
            // immediately before the function name.
            std::size_t nameIdx = sig.size();
            for (std::size_t j = sig.size(); j-- > 0;)
                if (sig[j].kind == TokenKind::Ident &&
                    sig[j].text == *name) {
                    nameIdx = j;
                    break;
                }
            std::vector<std::string> chain;
            std::size_t j = nameIdx;
            while (j >= 2 && sig[j - 1].kind == TokenKind::Punct &&
                   sig[j - 1].text == "::" &&
                   sig[j - 2].kind == TokenKind::Ident) {
                chain.insert(chain.begin(), sig[j - 2].text);
                j -= 2;
            }
            if (!chain.empty()) {
                std::string key;
                for (const std::string &c : chain)
                    key += (key.empty() ? "" : "::") + c;
                captureBody(reg_[key], *name == "saveState");
                return;
            }
        }
        skipBraces();
    }

    /** i_ sits at '{': record every identifier in the body. */
    void captureBody(ClassData &cd, bool save)
    {
        std::set<std::string> &dst = save ? cd.saveBody : cd.restoreBody;
        (save ? cd.saveBodySeen : cd.restoreBodySeen) = true;
        int depth = 0;
        while (i_ < t_.size()) {
            if (punct("{"))
                ++depth;
            else if (punct("}")) {
                if (--depth == 0) {
                    ++i_;
                    return;
                }
            } else if (t_[i_].kind == TokenKind::Ident)
                dst.insert(t_[i_].text);
            ++i_;
        }
    }

    /** i_ sits at 'class'/'struct': parse the intro and, if this is a
     *  definition, the body.  @p chain is the enclosing class chain. */
    void parseClassIntro(const std::string &chain)
    {
        ++i_;  // class/struct
        while (ident("alignas")) {  // rare specifiers before the name
            ++i_;
            if (punct("("))
                skipParens();
        }
        if (i_ >= t_.size() || t_[i_].kind != TokenKind::Ident) {
            // anonymous struct: skip its body if present
            while (i_ < t_.size() && !punct("{") && !punct(";"))
                ++i_;
            if (punct("{"))
                skipBraces();
            return;
        }
        std::string name = t_[i_].text;
        ++i_;
        // Base clause / final / template args up to '{' or ';'.
        while (i_ < t_.size() && !punct("{") && !punct(";"))
            ++i_;
        if (punct(";")) {  // forward declaration
            ++i_;
            return;
        }
        if (!punct("{"))
            return;
        std::string key = chain.empty() ? name : chain + "::" + name;
        int declLine = t_[i_].line;
        if (name == "State" && !chain.empty()) {
            parseStateBody(reg_[chain]);
            return;
        }
        ClassData &cd = reg_[key];
        cd.declared = true;
        cd.file = rel_;
        cd.declLine = declLine;
        declaredHere_.push_back(key);
        parseClassBody(key);
        reg_[key].endLine =
            i_ > 0 && i_ <= t_.size() ? t_[i_ - 1].line : declLine;
    }

    void skipParens()
    {
        int depth = 0;
        while (i_ < t_.size()) {
            if (punct("("))
                ++depth;
            else if (punct(")")) {
                if (--depth == 0) {
                    ++i_;
                    return;
                }
            }
            ++i_;
        }
    }

    /** i_ sits at the State body '{': record field names. */
    void parseStateBody(ClassData &cd)
    {
        ++i_;
        std::vector<std::size_t> buf;
        while (i_ < t_.size()) {
            if (punct("}")) {
                ++i_;
                if (punct(";"))
                    ++i_;
                return;
            }
            if (punct("{")) {  // brace initializer on a field
                skipBraces();
                continue;
            }
            if (punct("(")) {  // function in State (rare): drop decl
                skipParens();
                while (i_ < t_.size() && !punct(";") && !punct("{"))
                    ++i_;
                if (punct("{"))
                    skipBraces();
                else if (punct(";"))
                    ++i_;
                buf.clear();
                continue;
            }
            if (punct(";")) {
                if (auto m = declName(buf))
                    cd.stateFields.push_back({m->first, m->second});
                buf.clear();
                ++i_;
                continue;
            }
            buf.push_back(i_);
            ++i_;
        }
    }

    /** Name + line of the declared entity in a member-ish token run
     *  (last identifier before a top-level '='), or nullopt. */
    std::optional<std::pair<std::string, int>>
    declName(const std::vector<std::size_t> &buf) const
    {
        std::size_t stop = buf.size();
        for (std::size_t j = 0; j < buf.size(); ++j) {
            const Token &tok = t_[buf[j]];
            if (tok.kind == TokenKind::Punct && tok.text == "=") {
                stop = j;
                break;
            }
        }
        for (std::size_t j = stop; j-- > 0;) {
            const Token &tok = t_[buf[j]];
            if (tok.kind == TokenKind::Ident)
                return std::make_pair(tok.text, tok.line);
        }
        return std::nullopt;
    }

    /** i_ sits at the class body '{'. */
    void parseClassBody(const std::string &key)
    {
        ++i_;
        std::set<std::string> callbackAliases;
        std::vector<std::size_t> buf;
        while (i_ < t_.size()) {
            if (punct("}")) {
                ++i_;
                if (punct(";"))
                    ++i_;
                return;
            }
            if ((ident("public") || ident("private") ||
                 ident("protected")) &&
                i_ + 1 < t_.size() &&
                t_[i_ + 1].kind == TokenKind::Punct &&
                t_[i_ + 1].text == ":") {
                i_ += 2;
                buf.clear();
                continue;
            }
            if (ident("template")) {
                ++i_;
                skipTemplateArgs();
                continue;
            }
            if (buf.empty() && (ident("class") || ident("struct"))) {
                parseClassIntro(key);
                continue;
            }
            if (buf.empty() && ident("enum")) {
                while (i_ < t_.size() && !punct("{") && !punct(";"))
                    ++i_;
                if (punct("{"))
                    skipBraces();
                if (punct(";"))
                    ++i_;
                continue;
            }
            if (punct(";")) {
                processMemberDecl(key, buf, callbackAliases);
                buf.clear();
                ++i_;
                continue;
            }
            if (punct("{")) {
                // Inline function body, or a brace initializer.
                bool isFn = false;
                for (std::size_t idx : buf)
                    if (t_[idx].kind == TokenKind::Punct &&
                        t_[idx].text == "(") {
                        isFn = true;
                        break;
                    }
                if (isFn) {
                    std::string fn = memberFunctionName(buf);
                    ClassData &cd = reg_[key];
                    if (fn == "saveState") {
                        cd.hasSave = true;
                        captureBody(cd, true);
                    } else if (fn == "restoreState") {
                        cd.hasRestore = true;
                        captureBody(cd, false);
                    } else {
                        skipBraces();
                    }
                    if (punct(";"))
                        ++i_;
                    buf.clear();
                } else {
                    skipBraces();  // brace init: decl continues to ';'
                }
                continue;
            }
            buf.push_back(i_);
            ++i_;
        }
    }

    /** Identifier before the first top-level '(' in @p buf. */
    std::string memberFunctionName(const std::vector<std::size_t> &buf)
        const
    {
        for (std::size_t j = 0; j < buf.size(); ++j) {
            const Token &tok = t_[buf[j]];
            if (tok.kind == TokenKind::Punct && tok.text == "(") {
                for (std::size_t k = j; k-- > 0;) {
                    const Token &p = t_[buf[k]];
                    if (p.kind == TokenKind::Ident)
                        return p.text;
                    if (p.kind == TokenKind::Punct && p.text == "~")
                        return "~";
                    break;
                }
                break;
            }
        }
        return "";
    }

    void processMemberDecl(const std::string &key,
                           const std::vector<std::size_t> &buf,
                           std::set<std::string> &callbackAliases)
    {
        if (buf.empty())
            return;
        const Token &first = t_[buf[0]];
        if (first.kind == TokenKind::Ident) {
            if (first.text == "using") {
                bool fn = false;
                for (std::size_t idx : buf)
                    if (t_[idx].kind == TokenKind::Ident &&
                        t_[idx].text == "function")
                        fn = true;
                if (fn && buf.size() >= 2 &&
                    t_[buf[1]].kind == TokenKind::Ident)
                    callbackAliases.insert(t_[buf[1]].text);
                return;
            }
            if (first.text == "friend" || first.text == "typedef" ||
                first.text == "static_assert" || first.text == "operator")
                return;
        }
        // Function declaration (has a paren before any '=')?
        for (std::size_t j = 0; j < buf.size(); ++j) {
            const Token &tok = t_[buf[j]];
            if (tok.kind == TokenKind::Punct && tok.text == "=")
                break;
            if (tok.kind == TokenKind::Punct && tok.text == "(") {
                std::string fn = memberFunctionName(buf);
                ClassData &cd = reg_[key];
                if (fn == "saveState")
                    cd.hasSave = true;
                else if (fn == "restoreState")
                    cd.hasRestore = true;
                return;
            }
        }
        auto named = declName(buf);
        if (!named)
            return;
        bool exempt = false;
        int angle = 0;
        for (std::size_t idx : buf) {
            const Token &tok = t_[idx];
            if (tok.kind == TokenKind::Ident) {
                if (tok.text == named->first)
                    break;  // exemptions come from the type part only
                if (tok.text == "static" || tok.text == "constexpr" ||
                    tok.text == "const" || tok.text == "function" ||
                    callbackAliases.count(tok.text))
                    exempt = true;
            } else if (tok.kind == TokenKind::Punct) {
                if (tok.text == "<")
                    ++angle;
                else if (tok.text == ">")
                    angle = std::max(0, angle - 1);
                else if (tok.text == ">>")
                    angle = std::max(0, angle - 2);
                else if (angle == 0 &&
                         (tok.text == "&" || tok.text == "*"))
                    exempt = true;  // wiring, re-established by ctor
            }
        }
        reg_[key].members.push_back({named->first, named->second, exempt});
    }

    /** Attach polca-snapshot skip annotations to the innermost class
     *  declared in this file whose span contains them. */
    void attachSkips()
    {
        for (const SkipAnnotation &skip : text_.skips) {
            std::string best;
            int bestSpan = 0;
            for (const std::string &key : declaredHere_) {
                const ClassData &cd = reg_[key];
                if (skip.line < cd.declLine || skip.line > cd.endLine)
                    continue;
                int span = cd.endLine - cd.declLine;
                if (best.empty() || span < bestSpan) {
                    best = key;
                    bestSpan = span;
                }
            }
            if (!best.empty())
                reg_[best].skips.push_back(skip);
        }
    }
};

// ===================================================================
// Snapshot-coverage checks over the merged registry
// ===================================================================

const char *const kSkipHint =
    "; capture it in State + saveState()/restoreState() or annotate "
    "'// polca-snapshot: skip(<member>, <reason>)'";

void
snapshotChecks(const Registry &reg,
               const std::map<std::string, FileText> &texts,
               std::vector<Finding> &findings)
{
    for (const auto &[key, cd] : reg) {
        if (!cd.declared || !cd.hasSave || !cd.hasRestore)
            continue;
        auto textIt = texts.find(cd.file);
        if (textIt == texts.end())
            continue;
        const FileText &text = textIt->second;
        std::set<std::string> skipNames;
        for (const SkipAnnotation &s : cd.skips)
            skipNames.insert(s.member);
        const bool bodies = cd.saveBodySeen && cd.restoreBodySeen;

        for (const MemberInfo &m : cd.members) {
            if (m.exempt || skipNames.count(m.name))
                continue;
            if (bodies) {
                if (!cd.saveBody.count(m.name))
                    report(findings, text, cd.file, m.line,
                           "snapshot-coverage",
                           "class '" + key + "': member '" + m.name +
                               "' is never referenced by saveState()" +
                               kSkipHint);
                if (!cd.restoreBody.count(m.name))
                    report(findings, text, cd.file, m.line,
                           "snapshot-coverage",
                           "class '" + key + "': member '" + m.name +
                               "' is never referenced by restoreState()" +
                               kSkipHint);
            } else {
                std::string base = m.name;
                if (!base.empty() && base.back() == '_')
                    base.pop_back();
                bool matched = false;
                for (const StateField &f : cd.stateFields)
                    if (f.name == base)
                        matched = true;
                if (!matched)
                    report(findings, text, cd.file, m.line,
                           "snapshot-coverage",
                           "class '" + key + "': member '" + m.name +
                               "' has no matching State field '" + base +
                               "'" + kSkipHint);
            }
        }

        for (const StateField &f : cd.stateFields) {
            if (bodies) {
                if (!cd.saveBody.count(f.name))
                    report(findings, text, cd.file, f.line,
                           "snapshot-coverage",
                           "class '" + key + "': State field '" + f.name +
                               "' is never written by saveState()");
                if (!cd.restoreBody.count(f.name))
                    report(findings, text, cd.file, f.line,
                           "snapshot-coverage",
                           "class '" + key + "': State field '" + f.name +
                               "' is never read by restoreState()");
            } else {
                bool matched = false;
                for (const MemberInfo &m : cd.members)
                    if (m.name == f.name + "_" || m.name == f.name)
                        matched = true;
                if (!matched)
                    report(findings, text, cd.file, f.line,
                           "snapshot-coverage",
                           "class '" + key + "': State field '" + f.name +
                               "' matches no member '" + f.name + "_'");
            }
        }

        for (const SkipAnnotation &s : cd.skips) {
            bool known = false;
            for (const MemberInfo &m : cd.members)
                if (m.name == s.member)
                    known = true;
            if (!known)
                report(findings, text, cd.file, s.line,
                       "snapshot-coverage",
                       "class '" + key + "': stale snapshot skip: no "
                       "member '" + s.member + "'");
        }
    }
}

// ===================================================================
// Drivers
// ===================================================================

/** Feed one file into both analyses.  @p texts and @p reg accumulate
 *  across files; snapshotChecks() runs after the last file. */
void
scanInto(const fs::path &path, const std::string &rel,
         std::map<std::string, FileText> &texts, Registry &reg,
         std::vector<Finding> &findings)
{
    auto [it, inserted] = texts.emplace(rel, FileText{});
    if (inserted)
        it->second = loadFile(path);
    const FileText &text = it->second;
    std::vector<Token> toks = codeTokens(text);
    unitScan(toks, text, rel, findings);
    StructParser(toks, text, rel, reg).run();
}

void
sortFindings(std::vector<Finding> &findings)
{
    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         if (a.line != b.line)
                             return a.line < b.line;
                         return a.rule < b.rule;
                     });
}

/** Whole pipeline on a single file: the self-test fixtures and the
 *  mutation oracles exercise exactly this path. */
std::vector<Finding>
scanOneFile(const fs::path &path, const std::string &rel)
{
    std::map<std::string, FileText> texts;
    Registry reg;
    std::vector<Finding> findings;
    scanInto(path, rel, texts, reg, findings);
    snapshotChecks(reg, texts, findings);
    sortFindings(findings);
    return findings;
}

void
usage()
{
    std::cout <<
        "usage: polca_analyze [--root DIR] [--format=gcc|human] "
        "[paths...]\n"
        "       polca_analyze --self-test FIXTURES_DIR\n"
        "       polca_analyze --list-rules\n"
        "\n"
        "Structure-aware analysis of src/ (or the given paths,\n"
        "relative to --root): snapshot-coverage cross-checks every\n"
        "save/restoreState class against its State value object;\n"
        "unit-consistency runs dimensional analysis over unit-suffixed\n"
        "identifiers.\n"
        "Suppress a line with: // polca-analyze: allow(<rule>)\n"
        "Skip a member deliberately rebuilt on restore with:\n"
        "  // polca-snapshot: skip(<member>, <reason>)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = fs::current_path();
    bool gccFormat = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        }
        if (arg == "--list-rules") {
            std::cout << "snapshot-coverage\nunit-consistency\n";
            return 0;
        }
        if (arg == "--self-test") {
            if (i + 1 >= argc) {
                usage();
                return 2;
            }
            return selfTest(argv[i + 1], "polca_analyze", scanOneFile);
        }
        if (arg == "--format=gcc") {
            gccFormat = true;
            continue;
        }
        if (arg == "--format=human") {
            gccFormat = false;
            continue;
        }
        if (arg == "--root") {
            if (i + 1 >= argc) {
                usage();
                return 2;
            }
            root = argv[++i];
            continue;
        }
        if (startsWith(arg, "--")) {
            std::cout << "polca_analyze: unknown flag '" << arg << "'\n";
            usage();
            return 2;
        }
        paths.push_back(arg);
    }
    if (paths.empty())
        paths = {"src"};

    std::map<std::string, FileText> texts;
    Registry reg;
    std::vector<Finding> all;
    auto files = collectFiles(root, paths);
    for (const auto &[path, rel] : files)
        scanInto(path, rel, texts, reg, all);
    snapshotChecks(reg, texts, all);
    sortFindings(all);
    printFindings(all, gccFormat);
    if (!gccFormat) {
        std::cout << "polca_analyze: " << files.size() << " files, "
                  << all.size() << " finding"
                  << (all.size() == 1 ? "" : "s") << "\n";
    }
    return all.empty() ? 0 : 1;
}
