# Mutation oracle for snapshot-coverage: dropping a State field from a
# real protocol class must make the analyzer fire, and the pristine
# copy must stay clean.  Uses the header-only fallback (member <->
# State field name correspondence), the same path a reviewer sees when
# a header is edited without its .cc.
set(header src/telemetry/breaker_model.hh)
set(work ${WORK_DIR}/snapshot_mutation)
file(REMOVE_RECURSE ${work})
file(MAKE_DIRECTORY ${work}/pristine/src/telemetry)
file(MAKE_DIRECTORY ${work}/mutated/src/telemetry)

file(READ ${SOURCE_DIR}/${header} content)
file(WRITE ${work}/pristine/${header} "${content}")

# Drop one State field (the longest-streak counter).
string(REPLACE "sim::Tick longestStreak = 0;" "" mutated "${content}")
if(mutated STREQUAL content)
    message(FATAL_ERROR
        "mutation did not apply: 'sim::Tick longestStreak = 0;' "
        "not found in ${header}")
endif()
file(WRITE ${work}/mutated/${header} "${mutated}")

execute_process(
    COMMAND ${ANALYZER} --root ${work}/pristine --format=gcc
    RESULT_VARIABLE rc_pristine
    OUTPUT_VARIABLE out_pristine)
if(NOT rc_pristine EQUAL 0)
    message(FATAL_ERROR
        "pristine ${header} should scan clean:\n${out_pristine}")
endif()

execute_process(
    COMMAND ${ANALYZER} --root ${work}/mutated --format=gcc
    RESULT_VARIABLE rc_mutated
    OUTPUT_VARIABLE out_mutated)
if(rc_mutated EQUAL 0)
    message(FATAL_ERROR
        "analyzer missed the dropped State field in ${header}")
endif()
if(NOT out_mutated MATCHES "snapshot-coverage")
    message(FATAL_ERROR
        "expected a snapshot-coverage finding, got:\n${out_mutated}")
endif()
if(NOT out_mutated MATCHES "longestStreak")
    message(FATAL_ERROR
        "finding does not name the dropped field:\n${out_mutated}")
endif()
