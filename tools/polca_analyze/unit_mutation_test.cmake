# Mutation oracle for unit-consistency: deleting the ticks-to-seconds
# conversion in the energy meter's mean-power computation must make
# the analyzer fire (joules/ticks returned from a *Watts function),
# and the pristine copy must stay clean.
set(source src/telemetry/energy_meter.cc)
set(work ${WORK_DIR}/unit_mutation)
file(REMOVE_RECURSE ${work})
file(MAKE_DIRECTORY ${work}/pristine/src/telemetry)
file(MAKE_DIRECTORY ${work}/mutated/src/telemetry)

file(READ ${SOURCE_DIR}/${source} content)
file(WRITE ${work}/pristine/${source} "${content}")

string(REPLACE "joules_ / sim::ticksToSeconds(meteredTicks_)"
               "joules_ / meteredTicks_" mutated "${content}")
if(mutated STREQUAL content)
    message(FATAL_ERROR
        "mutation did not apply: mean-power expression not found "
        "in ${source}")
endif()
file(WRITE ${work}/mutated/${source} "${mutated}")

execute_process(
    COMMAND ${ANALYZER} --root ${work}/pristine --format=gcc
    RESULT_VARIABLE rc_pristine
    OUTPUT_VARIABLE out_pristine)
if(NOT rc_pristine EQUAL 0)
    message(FATAL_ERROR
        "pristine ${source} should scan clean:\n${out_pristine}")
endif()

execute_process(
    COMMAND ${ANALYZER} --root ${work}/mutated --format=gcc
    RESULT_VARIABLE rc_mutated
    OUTPUT_VARIABLE out_mutated)
if(rc_mutated EQUAL 0)
    message(FATAL_ERROR
        "analyzer missed the dropped unit conversion in ${source}")
endif()
if(NOT out_mutated MATCHES "unit-consistency")
    message(FATAL_ERROR
        "expected a unit-consistency finding, got:\n${out_mutated}")
endif()
