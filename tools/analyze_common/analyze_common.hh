/**
 * @file
 * Shared infrastructure for the tree's static-analysis tools
 * (`tools/polca_lint`, `tools/polca_analyze`).
 *
 * Both tools are zero-dependency (C++ stdlib only) source scanners;
 * this library is the single home for everything they have in common
 * so the two cannot drift apart:
 *
 *  - file loading with comment/string stripping (the "code view"),
 *  - the suppression engine (`// polca-lint: allow(<rule>)` and
 *    `// polca-analyze: allow(<rule>)` are cross-recognized: either
 *    tag silences either tool, so moving a hazard from one tool's
 *    rule to the other's never invalidates a reviewed suppression),
 *  - `// polca-snapshot: skip(<member>, <reason>)` annotation
 *    harvesting (consumed by polca_analyze's snapshot-coverage rule),
 *  - word-boundary search helpers for the line-oriented lint rules,
 *  - a real tokenizer for the structure-aware analyses,
 *  - deterministic file collection, finding reporting (`--format=gcc`),
 *    and the fire/suppressed fixture self-test harness.
 */

#pragma once

#include <filesystem>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace polca::analyze {

namespace fs = std::filesystem;

/** One rule violation at a source location. */
struct Finding
{
    std::string file;  ///< repo-relative, '/'-separated
    int line;
    std::string rule;
    std::string message;
};

/** A `// polca-snapshot: skip(<member>, <reason>)` annotation. */
struct SkipAnnotation
{
    std::string member;  ///< member name as written (e.g. "config_")
    std::string reason;  ///< free text; must not contain ')'
    int line;            ///< 1-based line the annotation sits on
};

/**
 * A loaded source file: the raw text, a "code" view with comments and
 * string/char literals blanked (spaces preserve column positions),
 * per-line suppression sets, and harvested skip annotations.
 */
struct FileText
{
    std::vector<std::string> raw;       ///< original lines
    std::vector<std::string> code;      ///< comments/strings blanked
    std::vector<std::set<std::string>> allowed;  ///< per-line rules
    std::vector<SkipAnnotation> skips;  ///< polca-snapshot annotations
};

/** True if @p text at @p pos starts identifier @p word with word
 *  boundaries on both sides. */
bool wordAt(const std::string &text, std::size_t pos,
            const std::string &word);

/** First occurrence of @p word as a whole identifier, or npos. */
std::size_t findWord(const std::string &text, const std::string &word,
                     std::size_t from = 0);

/**
 * Load a file, record per-line suppressions and skip annotations, and
 * produce the blanked "code" view.
 */
FileText loadFile(const fs::path &path);

bool isHeader(const std::string &rel);

bool startsWith(const std::string &s, const std::string &prefix);

/** Append a finding unless the line suppresses @p rule. */
void report(std::vector<Finding> &findings, const FileText &text,
            const std::string &rel, int line, const std::string &rule,
            const std::string &message);

/**
 * All scannable files (.cc/.hh/.cpp/.h) under @p roots, sorted by
 * repo-relative path for deterministic output.  Fixture directories
 * (`tools/<tool>/fixtures/`) are excluded: their files violate rules
 * on purpose.
 */
std::vector<std::pair<fs::path, std::string>>
collectFiles(const fs::path &base, const std::vector<std::string> &roots);

void printFindings(const std::vector<Finding> &findings, bool gccFormat);

/** Per-file scan callback: (path, repo-relative path) -> findings. */
using ScanFn = std::function<std::vector<Finding>(
    const fs::path &, const std::string &)>;

/**
 * Self-test over a fixtures directory: every `fire_<rule>.*` file
 * must produce at least one finding of exactly `<rule>` (and no other
 * rule), every `suppressed_<rule>.*` file must produce none.  Header
 * fixtures pose as `src/sim/` headers so path-scoped rules apply;
 * sources pose as `src/` files.  @p toolName labels the summary line.
 */
int selfTest(const fs::path &fixtures, const std::string &toolName,
             const ScanFn &scan);

/** @name Tokenizer (structure-aware analyses) */
/** @{ */

enum class TokenKind
{
    Ident,    ///< identifier or keyword
    Number,   ///< numeric literal (incl. 3.6e6, 0x1f, 1'000)
    Punct,    ///< operator/punctuator (multi-char ops are one token)
    String,   ///< string literal (contents blanked by the code view)
    CharLit,  ///< character literal
};

struct Token
{
    TokenKind kind;
    std::string text;  ///< literal text ("::", "+=", "joules_", ...)
    int line;          ///< 1-based source line
};

/**
 * Tokenize the code view of @p text.  Comments and literal contents
 * are already blanked, so every token is real code; multi-character
 * operators (`::`, `->`, `+=`, `==`, `<=`, `<<`, ...) come out as
 * single tokens so parsers never have to re-assemble them.
 */
std::vector<Token> tokenize(const FileText &text);

/** @} */

} // namespace polca::analyze
