#include "analyze_common.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>

namespace polca::analyze {

bool
wordAt(const std::string &text, std::size_t pos, const std::string &word)
{
    if (pos + word.size() > text.size())
        return false;
    if (text.compare(pos, word.size(), word) != 0)
        return false;
    auto isIdent = [](unsigned char c) {
        return std::isalnum(c) != 0 || c == '_';
    };
    if (pos > 0 && isIdent(text[pos - 1]))
        return false;
    std::size_t end = pos + word.size();
    if (end < text.size() && isIdent(text[end]))
        return false;
    return true;
}

std::size_t
findWord(const std::string &text, const std::string &word,
         std::size_t from)
{
    for (std::size_t pos = text.find(word, from);
         pos != std::string::npos; pos = text.find(word, pos + 1)) {
        if (wordAt(text, pos, word))
            return pos;
    }
    return std::string::npos;
}

namespace {

/** Harvest `tag(<payload>)` suppressions on one raw line. */
void
harvestAllows(const std::string &line, const std::string &tag,
              std::set<std::string> &allows)
{
    for (std::size_t pos = line.find(tag); pos != std::string::npos;
         pos = line.find(tag, pos + 1)) {
        std::size_t open = pos + tag.size();
        std::size_t close = line.find(')', open);
        if (close != std::string::npos)
            allows.insert(line.substr(open, close - open));
    }
}

std::string
trimmed(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return {};
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

} // namespace

FileText
loadFile(const fs::path &path)
{
    FileText out;
    std::ifstream in(path);
    std::string line;
    bool inBlockComment = false;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        // Suppressions and skip annotations live in // comments;
        // harvest them from the raw text before the comment is
        // stripped.  Both tools' allow() tags land in one set so a
        // suppression reviewed for either tool silences both.
        std::set<std::string> allows;
        harvestAllows(line, "polca-lint: allow(", allows);
        harvestAllows(line, "polca-analyze: allow(", allows);

        const std::string skipTag = "polca-snapshot: skip(";
        for (std::size_t pos = line.find(skipTag);
             pos != std::string::npos;
             pos = line.find(skipTag, pos + 1)) {
            std::size_t open = pos + skipTag.size();
            std::size_t comma = line.find(',', open);
            std::size_t close = line.find(')', open);
            if (close == std::string::npos)
                continue;
            SkipAnnotation skip;
            skip.line = lineNo;
            if (comma != std::string::npos && comma < close) {
                skip.member = trimmed(line.substr(open, comma - open));
                skip.reason =
                    trimmed(line.substr(comma + 1, close - comma - 1));
            } else {
                skip.member = trimmed(line.substr(open, close - open));
            }
            if (!skip.member.empty())
                out.skips.push_back(std::move(skip));
        }

        std::string code(line.size(), ' ');
        bool inString = false;
        bool inChar = false;
        for (std::size_t i = 0; i < line.size(); ++i) {
            char c = line[i];
            char next = i + 1 < line.size() ? line[i + 1] : '\0';
            if (inBlockComment) {
                if (c == '*' && next == '/') {
                    inBlockComment = false;
                    ++i;
                }
                continue;
            }
            if (inString) {
                if (c == '\\') {
                    ++i;
                } else if (c == '"') {
                    inString = false;
                    code[i] = '"';
                }
                continue;
            }
            if (inChar) {
                if (c == '\\') {
                    ++i;
                } else if (c == '\'') {
                    inChar = false;
                    code[i] = '\'';
                }
                continue;
            }
            if (c == '/' && next == '/')
                break;  // rest of line is a comment
            if (c == '/' && next == '*') {
                inBlockComment = true;
                ++i;
                continue;
            }
            if (c == '"') {
                inString = true;
                code[i] = '"';
                continue;
            }
            if (c == '\'') {
                // Digit separators (1'000'000) are not char literals.
                bool digitSep = i > 0 &&
                    std::isalnum(static_cast<unsigned char>(
                        line[i - 1])) != 0 &&
                    i + 1 < line.size() &&
                    std::isalnum(static_cast<unsigned char>(
                        line[i + 1])) != 0;
                if (!digitSep) {
                    inChar = true;
                    code[i] = '\'';
                    continue;
                }
            }
            code[i] = c;
        }
        // Unterminated "strings" crossing lines are rare in practice
        // (raw literals); treat end-of-line as closing them.
        out.raw.push_back(line);
        out.code.push_back(code);
        out.allowed.push_back(std::move(allows));
    }
    return out;
}

bool
isHeader(const std::string &rel)
{
    return rel.size() > 3 && (rel.ends_with(".hh") || rel.ends_with(".h"));
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

void
report(std::vector<Finding> &findings, const FileText &text,
       const std::string &rel, int line, const std::string &rule,
       const std::string &message)
{
    std::size_t idx = static_cast<std::size_t>(line) - 1;
    if (idx < text.allowed.size() && text.allowed[idx].count(rule))
        return;
    findings.push_back({rel, line, rule, message});
}

std::vector<std::pair<fs::path, std::string>>
collectFiles(const fs::path &base, const std::vector<std::string> &roots)
{
    std::vector<std::pair<fs::path, std::string>> files;
    for (const std::string &root : roots) {
        fs::path dir = base / root;
        if (!fs::exists(dir))
            continue;
        auto consider = [&](const fs::path &p) {
            std::string ext = p.extension().string();
            if (ext != ".cc" && ext != ".hh" && ext != ".cpp" &&
                ext != ".h") {
                return;
            }
            std::string rel =
                fs::relative(p, base).generic_string();
            // Fixture files violate rules on purpose.
            if (rel.find("/fixtures/") != std::string::npos ||
                startsWith(rel, "fixtures/")) {
                return;
            }
            files.emplace_back(p, rel);
        };
        if (fs::is_regular_file(dir)) {
            consider(dir);
            continue;
        }
        for (const auto &entry :
             fs::recursive_directory_iterator(dir)) {
            if (entry.is_regular_file())
                consider(entry.path());
        }
    }
    std::sort(files.begin(), files.end(),
              [](const auto &a, const auto &b) {
                  return a.second < b.second;
              });
    return files;
}

void
printFindings(const std::vector<Finding> &findings, bool gccFormat)
{
    for (const Finding &f : findings) {
        if (gccFormat) {
            std::cout << f.file << ":" << f.line << ": error: "
                      << f.message << " [" << f.rule << "]\n";
        } else {
            std::cout << f.file << ":" << f.line << ": [" << f.rule
                      << "] " << f.message << "\n";
        }
    }
}

int
selfTest(const fs::path &fixtures, const std::string &toolName,
         const ScanFn &scan)
{
    int failures = 0;
    int checked = 0;
    std::vector<fs::path> entries;
    for (const auto &entry : fs::directory_iterator(fixtures)) {
        if (entry.is_regular_file())
            entries.push_back(entry.path());
    }
    std::sort(entries.begin(), entries.end());
    for (const fs::path &path : entries) {
        std::string stem = path.stem().string();
        bool expectFire = startsWith(stem, "fire_");
        bool expectClean = startsWith(stem, "suppressed_");
        if (!expectFire && !expectClean)
            continue;
        ++checked;
        std::string rule = stem.substr(stem.find('_') + 1);
        // Scan as if the fixture sat at a path the path-scoped rules
        // care about: headers pose as src/sim/ headers so
        // sim-shared-ptr and pragma-once apply.
        std::string ext = path.extension().string();
        std::string rel = (ext == ".hh" || ext == ".h")
            ? "src/sim/" + path.filename().string()
            : "src/" + path.filename().string();
        std::vector<Finding> findings = scan(path, rel);
        if (expectFire) {
            bool hit = false;
            bool wrongRule = false;
            for (const Finding &f : findings) {
                if (f.rule == rule)
                    hit = true;
                else
                    wrongRule = true;
            }
            if (!hit || wrongRule) {
                ++failures;
                std::cout << "FAIL " << path.filename().string()
                          << ": expected only '" << rule
                          << "' findings, got";
                if (findings.empty()) {
                    std::cout << " none";
                } else {
                    for (const Finding &f : findings)
                        std::cout << " " << f.rule << "@" << f.line;
                }
                std::cout << "\n";
            }
        } else if (!findings.empty()) {
            ++failures;
            std::cout << "FAIL " << path.filename().string()
                      << ": expected clean, got";
            for (const Finding &f : findings)
                std::cout << " " << f.rule << "@" << f.line;
            std::cout << "\n";
        }
    }
    std::cout << toolName << " self-test: " << (checked - failures)
              << "/" << checked << " fixtures ok\n";
    if (checked == 0) {
        std::cout << toolName << " self-test: no fixtures found in "
                  << fixtures.string() << "\n";
        return 2;
    }
    return failures == 0 ? 0 : 1;
}

std::vector<Token>
tokenize(const FileText &text)
{
    std::vector<Token> tokens;
    auto isIdentStart = [](unsigned char c) {
        return std::isalpha(c) != 0 || c == '_';
    };
    auto isIdentChar = [](unsigned char c) {
        return std::isalnum(c) != 0 || c == '_';
    };
    // Multi-character punctuators, longest first within each family.
    static const std::vector<std::string> puncts = {
        "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "+=",
        "-=", "*=", "/=", "%=", "&=", "|=", "^=", "==", "!=", "<=",
        ">=", "&&", "||", "<<", ">>",
    };
    for (std::size_t li = 0; li < text.code.size(); ++li) {
        const std::string &code = text.code[li];
        int line = static_cast<int>(li) + 1;
        std::size_t i = 0;
        while (i < code.size()) {
            unsigned char c = static_cast<unsigned char>(code[i]);
            if (c == ' ' || c == '\t') {
                ++i;
                continue;
            }
            if (c == '"') {
                // The code view blanks literal contents but keeps the
                // delimiting quotes; consume to the closing quote.
                std::size_t end = code.find('"', i + 1);
                tokens.push_back({TokenKind::String, "\"\"", line});
                i = end == std::string::npos ? code.size() : end + 1;
                continue;
            }
            if (c == '\'') {
                std::size_t end = code.find('\'', i + 1);
                tokens.push_back({TokenKind::CharLit, "''", line});
                i = end == std::string::npos ? code.size() : end + 1;
                continue;
            }
            if (isIdentStart(c)) {
                std::size_t start = i;
                while (i < code.size() &&
                       isIdentChar(
                           static_cast<unsigned char>(code[i]))) {
                    ++i;
                }
                tokens.push_back({TokenKind::Ident,
                                  code.substr(start, i - start), line});
                continue;
            }
            if (std::isdigit(c) != 0) {
                // Numbers: digits, radix letters, '.', exponents with
                // an optional sign (3.6e6, 1e-3, 0x1f).
                std::size_t start = i;
                while (i < code.size()) {
                    unsigned char d =
                        static_cast<unsigned char>(code[i]);
                    if (std::isalnum(d) != 0 || d == '.') {
                        ++i;
                        continue;
                    }
                    if ((d == '+' || d == '-') && i > start) {
                        unsigned char prev = static_cast<unsigned char>(
                            code[i - 1]);
                        if (prev == 'e' || prev == 'E' || prev == 'p' ||
                            prev == 'P') {
                            ++i;
                            continue;
                        }
                    }
                    break;
                }
                tokens.push_back({TokenKind::Number,
                                  code.substr(start, i - start), line});
                continue;
            }
            bool matched = false;
            for (const std::string &p : puncts) {
                if (code.compare(i, p.size(), p) == 0) {
                    tokens.push_back({TokenKind::Punct, p, line});
                    i += p.size();
                    matched = true;
                    break;
                }
            }
            if (matched)
                continue;
            tokens.push_back(
                {TokenKind::Punct, std::string(1, code[i]), line});
            ++i;
        }
    }
    return tokens;
}

} // namespace polca::analyze
