# Chaos determinism test: the same campaign run twice must produce
# byte-identical console output and summary CSVs, and a violating
# seed must be reproducible from a single-run campaign.
execute_process(
    COMMAND ${POLCACTL} chaos --runs 5 --seed 42
            --scenario-file ${SCENARIO}
            --out-dir ${WORK_DIR}/chaos-a
    RESULT_VARIABLE rc1
    OUTPUT_VARIABLE out1)
if(NOT rc1 EQUAL 0)
    message(FATAL_ERROR "chaos campaign A failed: ${rc1}")
endif()

execute_process(
    COMMAND ${POLCACTL} chaos --runs 5 --seed 42
            --scenario-file ${SCENARIO}
            --out-dir ${WORK_DIR}/chaos-b
    RESULT_VARIABLE rc2
    OUTPUT_VARIABLE out2)
if(NOT rc2 EQUAL 0)
    message(FATAL_ERROR "chaos campaign B failed: ${rc2}")
endif()

if(NOT out1 STREQUAL out2)
    message(FATAL_ERROR "chaos campaigns are not deterministic: "
                        "identical seeds produced different output")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK_DIR}/chaos-a/chaos_summary.csv
            ${WORK_DIR}/chaos-b/chaos_summary.csv
    RESULT_VARIABLE csvdiff)
if(NOT csvdiff EQUAL 0)
    message(FATAL_ERROR "chaos summary CSVs differ between reruns")
endif()

# Run 3 of the campaign used seed 45; a one-run campaign based at 45
# must reproduce its row exactly (modulo the run index column).
execute_process(
    COMMAND ${POLCACTL} chaos --runs 1 --seed 45
            --scenario-file ${SCENARIO}
            --out-dir ${WORK_DIR}/chaos-repro
    RESULT_VARIABLE rc3)
if(NOT rc3 EQUAL 0)
    message(FATAL_ERROR "chaos repro campaign failed: ${rc3}")
endif()

file(STRINGS ${WORK_DIR}/chaos-a/chaos_summary.csv full_rows)
file(STRINGS ${WORK_DIR}/chaos-repro/chaos_summary.csv repro_rows)
list(GET full_rows 4 full_row)
list(GET repro_rows 1 repro_row)
string(REGEX REPLACE "^3," "" full_row "${full_row}")
string(REGEX REPLACE "^0," "" repro_row "${repro_row}")
if(NOT full_row STREQUAL repro_row)
    message(FATAL_ERROR "seed 45 did not reproduce: campaign row "
                        "'${full_row}' vs repro row '${repro_row}'")
endif()
