# CLI round-trip test: generate a trace, regenerate a synthetic one
# from it, and check statistics on both.
execute_process(
    COMMAND ${POLCACTL} trace generate --days 0.02 --servers 10
            --out ${WORK_DIR}/roundtrip_production.csv
    RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
    message(FATAL_ERROR "trace generate failed: ${rc1}")
endif()

execute_process(
    COMMAND ${POLCACTL} trace regenerate
            ${WORK_DIR}/roundtrip_production.csv --bin 60
            --out ${WORK_DIR}/roundtrip_synthetic.csv
    RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
    message(FATAL_ERROR "trace regenerate failed: ${rc2}")
endif()

execute_process(
    COMMAND ${POLCACTL} trace stats ${WORK_DIR}/roundtrip_synthetic.csv
    RESULT_VARIABLE rc3
    OUTPUT_VARIABLE stats)
if(NOT rc3 EQUAL 0)
    message(FATAL_ERROR "trace stats failed: ${rc3}")
endif()
if(NOT stats MATCHES "Requests")
    message(FATAL_ERROR "stats output missing expected fields")
endif()
