# CLI observability smoke test: run a faulted experiment with trace
# and metrics export enabled, then check the artifacts. The blackout
# scenario guarantees control-plane traffic (the watchdog fail-safe
# escalates every rule) but legitimately violates SLOs at this tiny
# scale, so the run's exit code may be 0 (SLOs met) or 1 (violated);
# anything else is a crash.
execute_process(
    COMMAND ${POLCACTL} run --added 0.2 --days 0.02 --servers 10
            --scenario blackout
            --trace ${WORK_DIR}/run_trace.json
            --metrics ${WORK_DIR}/run_metrics.txt
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0 AND NOT rc EQUAL 1)
    message(FATAL_ERROR "polcactl run crashed: ${rc}")
endif()

if(NOT EXISTS ${WORK_DIR}/run_trace.json)
    message(FATAL_ERROR "trace export missing")
endif()
file(READ ${WORK_DIR}/run_trace.json trace_json)
if(NOT trace_json MATCHES "\"traceEvents\"")
    message(FATAL_ERROR "trace export is not Chrome trace_event JSON")
endif()
if(NOT trace_json MATCHES "cap_issue")
    message(FATAL_ERROR "trace export has no cap_issue spans")
endif()

if(NOT EXISTS ${WORK_DIR}/run_metrics.txt)
    message(FATAL_ERROR "metrics export missing")
endif()
file(READ ${WORK_DIR}/run_metrics.txt metrics_text)
if(NOT metrics_text MATCHES "manager.cap_commands")
    message(FATAL_ERROR "metrics export missing manager counters")
endif()
