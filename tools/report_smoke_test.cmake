# Report pipeline smoke test: run the smoke scenario into a run
# directory twice, generate a report from the first, structurally
# check every artifact, and require the two same-seed run directories
# (reports included) to be byte-identical — the determinism contract
# `polcactl report` documents.
#
# Inputs: POLCACTL (binary), WORK_DIR (scratch), SCENARIO (smoke.toml)

set(run_a ${WORK_DIR}/report-smoke-a)
set(run_b ${WORK_DIR}/report-smoke-b)
file(REMOVE_RECURSE ${run_a} ${run_b})

foreach(dir ${run_a} ${run_b})
    execute_process(
        COMMAND ${POLCACTL} run --scenario-file ${SCENARIO}
                --out-dir ${dir}
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0 AND NOT rc EQUAL 1)
        message(FATAL_ERROR "polcactl run crashed: ${rc}")
    endif()
endforeach()

execute_process(
    COMMAND ${POLCACTL} report ${run_a}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "polcactl report failed: ${rc}")
endif()
execute_process(
    COMMAND ${POLCACTL} report ${run_b}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "polcactl report (second run) failed: ${rc}")
endif()

# --- structural checks on run A -----------------------------------
foreach(artifact manifest.json resolved.toml result.csv metrics.csv
        stats_interval.csv report.md report.html)
    if(NOT EXISTS ${run_a}/${artifact})
        message(FATAL_ERROR "missing artifact ${artifact}")
    endif()
endforeach()

file(READ ${run_a}/manifest.json manifest)
foreach(key "\"tool\"" "\"config_digest\"" "\"seed\"" "\"artifacts\""
        "\"metrics_interval_s\"")
    if(NOT manifest MATCHES ${key})
        message(FATAL_ERROR "manifest.json missing ${key}")
    endif()
endforeach()

file(READ ${run_a}/report.html html)
if(NOT html MATCHES "<svg ")
    message(FATAL_ERROR "report.html has no inline SVG timeline")
endif()
if(NOT html MATCHES "Percentiles")
    message(FATAL_ERROR "report.html has no percentile section")
endif()
if(NOT html MATCHES "</html>")
    message(FATAL_ERROR "report.html is truncated")
endif()
if(html MATCHES "http://" OR html MATCHES "https://")
    message(FATAL_ERROR "report.html is not self-contained")
endif()

file(READ ${run_a}/report.md md)
if(NOT md MATCHES "smbpbi.apply_latency_s")
    message(FATAL_ERROR "report.md missing cap-issue latency row")
endif()
if(NOT md MATCHES "config ")
    message(FATAL_ERROR "report.md footer missing config digest")
endif()

file(READ ${run_a}/stats_interval.csv interval)
if(NOT interval MATCHES "time_s,")
    message(FATAL_ERROR "stats_interval.csv missing time_s column")
endif()

# --- same-seed byte-compare ---------------------------------------
foreach(artifact manifest.json resolved.toml result.csv metrics.csv
        stats_interval.csv report.md report.html)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                ${run_a}/${artifact} ${run_b}/${artifact}
        RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
        message(FATAL_ERROR
            "same-seed runs differ in ${artifact}")
    endif()
endforeach()
