#pragma once

// Fixture: allow() silences sim-shared-ptr; unique_ptr is always
// fine in sim/ headers.
#include <memory>

struct Node
{
    std::unique_ptr<Node> child;
    std::shared_ptr<Node> next;  // polca-lint: allow(sim-shared-ptr)
};
