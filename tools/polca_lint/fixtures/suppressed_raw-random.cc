// Fixture: allow() silences raw-random; identifiers merely containing
// "rand" (operand, strand) never fire.
#include <cstdlib>

int
roll(int operand)
{
    int strand = operand + 1;
    return strand + rand();  // polca-lint: allow(raw-random)
}
