// Fixture: conforming (or suppressed, or non-literal) registration
// names produce no metric-name findings.

struct Registry
{
    int &counter(const char *name);
    double &gauge(const char *name);
    int &histogram(const char *name, double lo, double hi, int b);
    int &logHistogram(const char *name, double lo, double hi,
                      double err);
};

void
registerStats(Registry &registry, const char *dynamicName)
{
    registry.counter("manager.cap_commands");
    registry.gauge("telemetry.latest_row_watts");
    registry.histogram("smbpbi.apply_latency_s", 0.0, 1.0, 4);
    registry.logHistogram(
        "dispatcher.queue_delay_s", 0.001, 100.0, 0.01);
    // Hierarchical domain paths (site -> row -> rack) are dotted
    // lowercase segments, so they conform as-is:
    registry.gauge("site.row3.rack1.power");
    registry.counter("site.h1000.breaker_trips");
    registry.counter(dynamicName);  // non-literal: skipped
    // A documented legacy exception rides on a suppression:
    registry.counter("LegacyName");  // polca-lint: allow(metric-name)
}
