// Fixture: allow() silences raw-new-delete; deleted functions,
// comment prose about "a new series", and words containing the
// keywords (renewal, deleted_) never fire.
#include <memory>

struct NoCopy
{
    NoCopy() = default;
    NoCopy(const NoCopy &) = delete;
    NoCopy &operator=(const NoCopy &) = delete;
};

int
renewalCount(int deleted_rows)
{
    auto owned = std::unique_ptr<int>(new int(deleted_rows));  // polca-lint: allow(raw-new-delete)
    return *owned;
}
