// Fixture: a catch (...) whose handler never rethrows must fire
// catch-swallow (and only that rule).  The throw inside the try
// block must not count as a rethrow — it is outside the handler.

#include <stdexcept>

namespace polca {

int
swallowEverything(int x)
{
    try {
        if (x < 0)
            throw std::runtime_error("negative");
        return x;
    } catch (...) {
        return -1;
    }
}

} // namespace polca
