// Fixture: none of these may fire catch-swallow — an explicit
// suppression, a handler that rethrows (across multiple lines),
// and a typed catch (allowed: it documents what it absorbs).

#include <stdexcept>

namespace polca {

int
deliberateSink(int x)
{
    try {
        if (x < 0)
            throw std::runtime_error("negative");
        return x;
    } catch (...) {  // polca-lint: allow(catch-swallow)
        return -1;
    }
}

int
rethrows(int x)
{
    try {
        return x + 1;
    } catch (...) {
        if (x > 10) {
            throw;
        }
        throw std::runtime_error("wrapped");
    }
}

int
typedCatch(int x)
{
    try {
        return x + 2;
    } catch (const std::exception &) {
        return -2;
    }
}

} // namespace polca
