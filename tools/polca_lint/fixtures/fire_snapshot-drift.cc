// Fixture: mutable static/thread_local state that a warmup snapshot
// cannot capture.  Every declaration below must fire snapshot-drift.
#include <cstdint>

namespace polca {

static std::uint64_t totalBranches = 0;

thread_local int branchDepth = 0;

int
countBranch()
{
    static int calls = 0;
    ++calls;
    totalBranches += static_cast<std::uint64_t>(branchDepth);
    return calls;
}

} // namespace polca
