// Fixture: the allow() comment silences wall-clock on its line, and
// identifiers merely containing "time" (uptime, endTime) never fire.
#include <chrono>

long
uptime()
{
    return 3;
}

long
wallSeconds()
{
    auto now = std::chrono::system_clock::now();  // polca-lint: allow(wall-clock)
    long endTime = uptime();
    return endTime +
        std::chrono::duration_cast<std::chrono::seconds>(
            now.time_since_epoch())
            .count();
}
