// Fixture: pragma-once must fire — this header opens with an include
// guard instead of #pragma once.
#ifndef POLCA_FIXTURE_PRAGMA_ONCE_HH
#define POLCA_FIXTURE_PRAGMA_ONCE_HH

struct Empty
{
};

#endif
