// Fixture: statics that must NOT fire snapshot-drift — immutable
// tables, static functions, and a documented suppression.
#include <cstdint>

namespace polca {

static const int kTableSize = 64;
static constexpr double kScale = 1.5;

static int
helper(int x)
{
    return x + kTableSize;
}

// Monotonic diagnostics-only counter; never read by the model, so a
// branched run cannot diverge on it.
static std::uint64_t cachedTotal = 0;  // polca-lint: allow(snapshot-drift)

int
use()
{
    cachedTotal += static_cast<std::uint64_t>(helper(1));
    return static_cast<int>(cachedTotal + static_cast<std::uint64_t>(kScale));
}

} // namespace polca
