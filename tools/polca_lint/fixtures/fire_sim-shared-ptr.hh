#pragma once

// Fixture: sim-shared-ptr must fire — the self-test scans headers as
// if they lived under src/sim/.
#include <memory>

struct Node
{
    std::shared_ptr<Node> next;
};
