// Fixture: wall-clock must fire on system_clock and C time().
#include <chrono>
#include <ctime>

long
wallSeconds()
{
    auto now = std::chrono::system_clock::now();
    std::time_t raw = time(nullptr);
    return static_cast<long>(raw) +
        std::chrono::duration_cast<std::chrono::seconds>(
            now.time_since_epoch())
            .count();
}
