// Fixture: unordered-iter must fire — this file writes output (it
// opens an ofstream) and range-fors over an unordered_map.
#include <fstream>
#include <unordered_map>

void
dumpCounts(const char *path)
{
    std::unordered_map<int, int> counts;
    counts[1] = 2;
    std::ofstream out(path);
    for (const auto &entry : counts)
        out << entry.first << "," << entry.second << "\n";
}
