// polca-lint: allow(pragma-once) — fixture: the finding anchors to
// line 1, so a line-1 allow() suppresses it.
#ifndef POLCA_FIXTURE_SUPPRESSED_PRAGMA_ONCE_HH
#define POLCA_FIXTURE_SUPPRESSED_PRAGMA_ONCE_HH

struct Empty
{
};

#endif
