// Fixture: allow() silences unordered-iter; point lookups into the
// map (no iteration) never fire.
#include <fstream>
#include <unordered_map>

void
dumpCounts(const char *path)
{
    std::unordered_map<int, int> counts;
    counts[1] = 2;
    std::ofstream out(path);
    out << counts.at(1) << "\n";
    for (const auto &entry : counts)  // polca-lint: allow(unordered-iter)
        out << entry.first << "," << entry.second << "\n";
}
