// Fixture: raw-random must fire on random_device and rand().
#include <cstdlib>
#include <random>

int
roll()
{
    std::random_device seedSource;
    return static_cast<int>(seedSource()) + rand();
}
