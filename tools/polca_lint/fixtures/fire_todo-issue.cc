// Fixture: todo-issue must fire on a bare marker.
// TODO tighten the tolerance once the model is calibrated.
int
answer()
{
    return 42;
}
