// Fixture: a tracked marker is clean by construction, and allow()
// silences an untracked one.
// TODO(#101) tighten the tolerance once the model is calibrated.
// TODO revisit after the calibration lands.  polca-lint: allow(todo-issue)
int
answer()
{
    return 42;
}
