// Fixture: metric registration names that violate the dotted
// lowercase [a-z0-9_.] convention must fire metric-name.

struct Registry
{
    int &counter(const char *name);
    double &gauge(const char *name);
    int &histogram(const char *name, double lo, double hi, int b);
    int &logHistogram(const char *name, double lo, double hi,
                      double err);
};

void
registerStats(Registry &registry)
{
    registry.counter("BadName");       // uppercase and undotted
    registry.gauge("row watts");       // embedded space
    registry.histogram("manager.MTTR", 0.0, 1.0, 4);  // uppercase
    registry.logHistogram(
        "manager..dwell", 0.0, 1.0, 0.01);  // empty path segment
    registry.counter(".leading.dot");
    // Hierarchical domain paths obey the same convention at every
    // level of the tree:
    registry.gauge("site.Row3.power");       // uppercase segment
    registry.counter("site.row3.rack 1.trips");  // space in segment
}
