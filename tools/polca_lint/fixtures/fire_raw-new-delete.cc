// Fixture: raw-new-delete must fire on both the new expression and
// the matching delete.
int
leakyAdd(int a, int b)
{
    int *sum = new int(a + b);
    int result = *sum;
    delete sum;
    return result;
}
