/**
 * @file
 * polca_lint — the project's determinism and hygiene linter.
 *
 * A zero-dependency (C++ stdlib only) source scanner that walks
 * src/ tools/ examples/ tests/ and rejects the pattern classes that
 * break the simulator's headline guarantees: byte-identical reruns,
 * conserved accounting, and leak-free ownership.  Each rule and its
 * rationale is documented in tools/polca_lint/README.md.
 *
 * Rules (names are what suppressions and --format=gcc reference):
 *   wall-clock      wall-clock time sources outside the allowlist
 *   raw-random      rand()/srand()/std::random_device outside
 *                   src/sim/random
 *   unordered-iter  iterating an unordered container in a file that
 *                   also writes CSV/JSON/trace output
 *   raw-new-delete  raw new/delete expressions
 *   sim-shared-ptr  shared_ptr in src/sim/ headers (hot-path ABI)
 *   pragma-once     header missing #pragma once as its first
 *                   directive
 *   todo-issue      to-do comment without an issue reference
 *   catch-swallow   catch (...) in src/ whose handler never
 *                   rethrows
 *   metric-name     metric registered in src/ with a name that is
 *                   not dotted lowercase [a-z0-9_.]
 *   snapshot-drift  mutable static/thread_local state in src/
 *                   outside the allowlisted process-wide registries
 *                   (invisible to warmup snapshots)
 *
 * Per-line suppression:   // polca-lint: allow(<rule>)
 * Machine output:         --format=gcc   (file:line: error: ... [rule])
 * Self-test:              --self-test <fixtures-dir>
 *
 * The scanner strips comments and string literals (block comments
 * tracked across lines) before matching code rules, so prose like
 * "a new series" never trips raw-new-delete; todo-issue runs on the
 * raw text because to-dos live in comments.
 *
 * File loading, the suppression engine, finding output, and the
 * fixture self-test harness live in tools/analyze_common, shared
 * with polca_analyze so the two tools cannot drift apart.  Note the
 * ownership split with that tool: snapshot-drift (here) owns the
 * mutable-static hazard — state *outside any component* that no
 * snapshot can see — while polca_analyze's snapshot-coverage owns
 * completeness of each component's saveState()/restoreState() over
 * its non-static members.  Each hazard has exactly one owning rule.
 */

#include <algorithm>
#include <cctype>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "../analyze_common/analyze_common.hh"

namespace {

using polca::analyze::FileText;
using polca::analyze::Finding;
using polca::analyze::collectFiles;
using polca::analyze::findWord;
using polca::analyze::isHeader;
using polca::analyze::loadFile;
using polca::analyze::printFindings;
using polca::analyze::report;
using polca::analyze::selfTest;
using polca::analyze::startsWith;

namespace fs = polca::analyze::fs;

/** Scan one file; @p rel is the repo-relative path with '/'. */
std::vector<Finding>
scanFile(const fs::path &path, const std::string &rel)
{
    std::vector<Finding> findings;
    FileText text = loadFile(path);
    const int n = static_cast<int>(text.code.size());

    // --- wall-clock -----------------------------------------------
    // steady_clock is fine (monotonic, used only for wall-time
    // progress reporting); the banned sources are the ones whose
    // value differs between reruns.
    static const std::vector<std::string> wallClockWords = {
        "system_clock", "gettimeofday", "clock_gettime", "localtime",
        "gmtime", "mktime",
    };
    for (int i = 0; i < n; ++i) {
        const std::string &code = text.code[static_cast<std::size_t>(i)];
        for (const std::string &word : wallClockWords) {
            if (findWord(code, word) != std::string::npos) {
                report(findings, text, rel, i + 1, "wall-clock",
                       "wall-clock source '" + word +
                       "' breaks byte-identical reruns; use sim "
                       "time (EventQueue::now) or steady_clock for "
                       "progress only");
            }
        }
        // C time(): match the identifier followed by '(' so that
        // endTime(), totalLatency() and friends never trip it.
        // Member calls (x.time(), x->time()) and non-std qualified
        // names (Simulation::time) are someone else's time; only the
        // free function — bare, ::time or std::time — is the C call.
        for (std::size_t pos = findWord(code, "time");
             pos != std::string::npos;
             pos = findWord(code, "time", pos + 1)) {
            bool member = pos >= 1 &&
                (code[pos - 1] == '.' ||
                 (pos >= 2 && code[pos - 2] == '-' &&
                  code[pos - 1] == '>'));
            if (pos >= 2 && code[pos - 2] == ':' &&
                code[pos - 1] == ':') {
                std::size_t q = pos - 2;
                std::size_t qend = q;
                while (q > 0 &&
                       (std::isalnum(static_cast<unsigned char>(
                            code[q - 1])) != 0 ||
                        code[q - 1] == '_')) {
                    --q;
                }
                if (code.substr(q, qend - q) != "std" && qend != q)
                    member = true;  // SomeClass::time — not C time()
            }
            std::size_t after = pos + 4;
            while (after < code.size() && code[after] == ' ')
                ++after;
            if (!member && after < code.size() && code[after] == '(') {
                report(findings, text, rel, i + 1, "wall-clock",
                       "C time() reads the wall clock; use sim time "
                       "instead");
            }
        }
    }

    // --- raw-random ------------------------------------------------
    // Everything random must flow from sim::Rng's seeded streams.
    if (!startsWith(rel, "src/sim/random")) {
        for (int i = 0; i < n; ++i) {
            const std::string &code =
                text.code[static_cast<std::size_t>(i)];
            if (findWord(code, "random_device") != std::string::npos) {
                report(findings, text, rel, i + 1, "raw-random",
                       "std::random_device is nondeterministic; fork "
                       "a stream from sim::Rng");
            }
            for (const std::string &fn : {std::string("rand"),
                                          std::string("srand")}) {
                std::size_t pos = findWord(code, fn);
                if (pos == std::string::npos)
                    continue;
                std::size_t after = pos + fn.size();
                while (after < code.size() && code[after] == ' ')
                    ++after;
                if (after < code.size() && code[after] == '(') {
                    report(findings, text, rel, i + 1, "raw-random",
                           fn + "() bypasses the seeded sim::Rng "
                           "streams");
                }
            }
        }
    }

    // --- unordered-iter --------------------------------------------
    // Iteration order of unordered containers is
    // implementation-defined; in a file that also writes artifacts
    // the order leaks into output and breaks rerun diffs.  Heuristic:
    // collect names declared with an unordered type, then flag
    // range-fors (or .begin() walks) over them — but only when the
    // file contains an output-writing marker.
    bool writesOutput = false;
    static const std::vector<std::string> outputMarkers = {
        "ofstream", "fprintf", "writeCsv", "toCsv", "exportCsv",
        "csvEscape", "Json", "json",
    };
    for (int i = 0; i < n && !writesOutput; ++i) {
        for (const std::string &marker : outputMarkers) {
            if (text.code[static_cast<std::size_t>(i)].find(marker) !=
                std::string::npos) {
                writesOutput = true;
                break;
            }
        }
    }
    if (writesOutput) {
        std::set<std::string> unorderedNames;
        for (int i = 0; i < n; ++i) {
            const std::string &code =
                text.code[static_cast<std::size_t>(i)];
            std::size_t pos = code.find("unordered_");
            if (pos == std::string::npos)
                continue;
            // Declaration heuristic: "unordered_map<...> name" — take
            // the identifier after the closing template bracket.
            std::size_t depth = 0;
            std::size_t j = code.find('<', pos);
            if (j == std::string::npos)
                continue;
            for (; j < code.size(); ++j) {
                if (code[j] == '<')
                    ++depth;
                else if (code[j] == '>' && --depth == 0)
                    break;
            }
            if (j >= code.size())
                continue;
            ++j;
            while (j < code.size() &&
                   (code[j] == ' ' || code[j] == '&'))
                ++j;
            std::size_t start = j;
            while (j < code.size() &&
                   (std::isalnum(static_cast<unsigned char>(
                        code[j])) != 0 || code[j] == '_'))
                ++j;
            if (j > start)
                unorderedNames.insert(code.substr(start, j - start));
        }
        for (int i = 0; i < n; ++i) {
            const std::string &code =
                text.code[static_cast<std::size_t>(i)];
            std::size_t forPos = findWord(code, "for");
            if (forPos == std::string::npos)
                continue;
            for (const std::string &name : unorderedNames) {
                std::size_t colon = code.find(':', forPos);
                bool rangeFor = colon != std::string::npos &&
                    findWord(code, name, colon) != std::string::npos;
                bool beginWalk =
                    code.find(name + ".begin()") != std::string::npos;
                if (rangeFor || beginWalk) {
                    report(findings, text, rel, i + 1,
                           "unordered-iter",
                           "iterating unordered container '" + name +
                           "' in an output-writing file; sort into a "
                           "vector first (see MetricsRegistry::dump)");
                }
            }
        }
    }

    // --- raw-new-delete --------------------------------------------
    for (int i = 0; i < n; ++i) {
        const std::string &code = text.code[static_cast<std::size_t>(i)];
        std::size_t pos = findWord(code, "new");
        if (pos != std::string::npos) {
            // Allow "= new (nothrow)"-free placement-new is still raw;
            // only operator overloads/declarations are exempt.
            std::size_t after = pos + 3;
            while (after < code.size() && code[after] == ' ')
                ++after;
            bool typeFollows = after < code.size() &&
                (std::isalpha(static_cast<unsigned char>(
                     code[after])) != 0 ||
                 code[after] == ':' || code[after] == '(');
            bool isOperator =
                code.find("operator new") != std::string::npos;
            if (typeFollows && !isOperator) {
                report(findings, text, rel, i + 1, "raw-new-delete",
                       "raw new expression; use make_unique/"
                       "make_shared or a container");
            }
        }
        pos = findWord(code, "delete");
        if (pos != std::string::npos) {
            std::size_t after = pos + 6;
            while (after < code.size() && code[after] == ' ')
                ++after;
            // "= delete" (deleted functions) and "operator delete"
            // are declarations, not deallocations.
            bool deletedFn = after >= code.size() ||
                code[after] == ';' || code[after] == ',';
            bool isOperator =
                code.find("operator delete") != std::string::npos;
            if (!deletedFn && !isOperator) {
                report(findings, text, rel, i + 1, "raw-new-delete",
                       "raw delete expression; prefer unique_ptr "
                       "ownership");
            }
        }
    }

    // --- sim-shared-ptr --------------------------------------------
    if (isHeader(rel) && startsWith(rel, "src/sim/")) {
        for (int i = 0; i < n; ++i) {
            if (text.code[static_cast<std::size_t>(i)]
                    .find("shared_ptr") != std::string::npos) {
                report(findings, text, rel, i + 1, "sim-shared-ptr",
                       "shared_ptr in a sim/ hot-path header; "
                       "per-event refcounting costs the kernel "
                       "(see PR 4's EventQueue rework)");
            }
        }
    }

    // --- pragma-once -----------------------------------------------
    if (isHeader(rel)) {
        bool found = false;
        for (int i = 0; i < n; ++i) {
            const std::string &code =
                text.code[static_cast<std::size_t>(i)];
            std::size_t first = code.find_first_not_of(" \t");
            if (first == std::string::npos)
                continue;  // blank or comment-only line
            if (code.compare(first, 12, "#pragma once") == 0)
                found = true;
            break;  // only the first code line may hold it
        }
        if (!found) {
            report(findings, text, rel, 1, "pragma-once",
                   "header must open with #pragma once (before any "
                   "other code)");
        }
    }

    // --- catch-swallow ---------------------------------------------
    // A catch (...) that never rethrows swallows failures the
    // simulator's invariants (and the chaos harness) depend on
    // surfacing.  Typed catches are allowed — they document what is
    // being absorbed; a deliberate catch-all sink needs a
    // suppression plus a comment.  Library code only: tools and
    // tests may sink exceptions at their outermost loop.
    if (startsWith(rel, "src/")) {
        for (int i = 0; i < n; ++i) {
            const std::string &code =
                text.code[static_cast<std::size_t>(i)];
            for (std::size_t pos = findWord(code, "catch");
                 pos != std::string::npos;
                 pos = findWord(code, "catch", pos + 1)) {
                std::size_t open = code.find('(', pos);
                if (open == std::string::npos)
                    break;
                std::size_t close = code.find(')', open);
                if (close == std::string::npos)
                    break;
                std::string inner =
                    code.substr(open + 1, close - open - 1);
                inner.erase(std::remove(inner.begin(), inner.end(),
                                        ' '),
                            inner.end());
                if (inner != "...")
                    continue;
                // Walk the brace-balanced handler body (which may
                // span lines) looking for a rethrow.
                bool entered = false;
                bool sawThrow = false;
                bool done = false;
                int depth = 0;
                std::size_t col = close + 1;
                for (int j = i; j < n && !done; ++j) {
                    const std::string &body =
                        text.code[static_cast<std::size_t>(j)];
                    std::string inside;
                    for (std::size_t k = col; k < body.size(); ++k) {
                        char c = body[k];
                        if (!entered) {
                            if (c == '{') {
                                entered = true;
                                depth = 1;
                            }
                            continue;
                        }
                        if (c == '{') {
                            ++depth;
                        } else if (c == '}') {
                            if (--depth == 0) {
                                done = true;
                                break;
                            }
                        }
                        inside += c;
                    }
                    if (findWord(inside, "throw") !=
                        std::string::npos) {
                        sawThrow = true;
                    }
                    col = 0;
                }
                if (entered && !sawThrow) {
                    report(findings, text, rel, i + 1,
                           "catch-swallow",
                           "catch (...) swallows the exception; "
                           "rethrow, catch a concrete type, or "
                           "suppress a documented sink");
                }
            }
        }
    }

    // --- metric-name -----------------------------------------------
    // Registry names are the public observability namespace: every
    // dump, interval-stats column, and report row keys off them.  A
    // literal name at a registration site in src/ must be dotted
    // lowercase "component.metric" ([a-z0-9_.]) so artifacts group
    // and sort predictably.  Tests and tools may register ad-hoc
    // names; dynamic (non-literal) names are skipped.  The string
    // itself is read from the raw text (the code view blanks string
    // contents), with a two-line lookahead for wrapped calls.
    if (startsWith(rel, "src/")) {
        static const std::vector<std::string> registrars = {
            "counter", "gauge", "histogram", "logHistogram"};
        for (int i = 0; i < n; ++i) {
            const std::string &code =
                text.code[static_cast<std::size_t>(i)];
            for (const std::string &fn : registrars) {
                for (std::size_t pos = findWord(code, fn);
                     pos != std::string::npos;
                     pos = findWord(code, fn, pos + 1)) {
                    // Member calls only (registry.counter(...)):
                    // skips definitions (MetricsRegistry::counter)
                    // and unrelated identifiers.
                    if (pos == 0 || code[pos - 1] != '.')
                        continue;
                    std::size_t open = pos + fn.size();
                    while (open < code.size() && code[open] == ' ')
                        ++open;
                    if (open >= code.size() || code[open] != '(')
                        continue;
                    // First argument: a string literal, possibly on
                    // one of the next two lines for wrapped calls.
                    std::string name;
                    bool literal = false, decided = false;
                    std::size_t col = open + 1;
                    for (int j = i;
                         j < std::min(i + 3, n) && !decided; ++j) {
                        const std::string &raw =
                            text.raw[static_cast<std::size_t>(j)];
                        for (std::size_t k = col; k < raw.size();
                             ++k) {
                            char ch = raw[k];
                            if (ch == ' ' || ch == '\t')
                                continue;
                            decided = true;
                            if (ch == '"') {
                                std::size_t end =
                                    raw.find('"', k + 1);
                                if (end != std::string::npos) {
                                    name = raw.substr(k + 1,
                                                      end - k - 1);
                                    literal = true;
                                }
                            }
                            break;
                        }
                        col = 0;
                    }
                    if (!literal)
                        continue;
                    bool valid = !name.empty() &&
                        name.find('.') != std::string::npos &&
                        name.front() != '.' && name.back() != '.' &&
                        name.find("..") == std::string::npos;
                    for (char ch : name) {
                        if (!((ch >= 'a' && ch <= 'z') ||
                              (ch >= '0' && ch <= '9') ||
                              ch == '_' || ch == '.')) {
                            valid = false;
                        }
                    }
                    if (!valid) {
                        report(findings, text, rel, i + 1,
                               "metric-name",
                               "metric name \"" + name +
                               "\" is not dotted lowercase "
                               "[a-z0-9_.] (e.g. "
                               "\"manager.cap_commands\"); dumps, "
                               "interval stats, and reports key off "
                               "these names");
                    }
                }
            }
        }
    }

    // --- snapshot-drift --------------------------------------------
    // Checkpoint/branch sweeps (core::WarmupSnapshot) rebuild a run
    // from its config and restore captured component state, so any
    // mutable static or thread_local in library code is state the
    // snapshot cannot see: a branched run would silently diverge
    // from the from-scratch run the byte-identity tests compare
    // against.  Immutable statics (const/constexpr lookup tables)
    // and static functions are fine.  Two files legitimately hold
    // process-wide registries that snapshots deliberately do not
    // capture — src/sim/simulation.cc (the thread-local active-sim
    // stack) and src/sim/logging.cc (the log sink/time source) —
    // and are allowlisted; anything else needs a per-line
    // suppression plus a comment explaining why branching is safe.
    if (startsWith(rel, "src/") && rel != "src/sim/simulation.cc" &&
        rel != "src/sim/logging.cc") {
        for (int i = 0; i < n; ++i) {
            const std::string &code =
                text.code[static_cast<std::size_t>(i)];
            for (const std::string &kw :
                 {std::string("static"), std::string("thread_local")}) {
                std::size_t pos = findWord(code, kw);
                if (pos == std::string::npos)
                    continue;
                // Collect the declaration's leading keywords: either
                // storage keyword may precede the other, and
                // const/constexpr mark the value immutable.
                std::size_t j = pos + kw.size();
                bool immutable = false;
                for (;;) {
                    while (j < code.size() && code[j] == ' ')
                        ++j;
                    std::size_t start = j;
                    while (j < code.size() &&
                           (std::isalnum(static_cast<unsigned char>(
                                code[j])) != 0 ||
                            code[j] == '_')) {
                        ++j;
                    }
                    std::string word = code.substr(start, j - start);
                    if (word == "static" || word == "thread_local" ||
                        word == "inline") {
                        continue;  // more storage/linkage keywords
                    }
                    if (word == "const" || word == "constexpr")
                        immutable = true;
                    break;
                }
                if (immutable)
                    continue;
                // Walk the rest of the line at template depth 0: a
                // '(' before ';'/'='/'{' is a function declaration
                // (or a function-pointer variable, close enough);
                // hitting ';', '=', or a braced initializer first is
                // a mutable variable.  Undecided lines (declaration
                // continues past the line) stay silent — the
                // terminator line will be scanned on its own and the
                // rule is a tripwire, not a parser.
                int depth = 0;
                bool fired = false;
                for (; j < code.size(); ++j) {
                    char c = code[j];
                    if (c == '<') {
                        ++depth;
                    } else if (c == '>') {
                        if (depth > 0)
                            --depth;
                    } else if (depth == 0) {
                        if (c == '(')
                            break;  // function-ish: skip
                        if (c == ';' || c == '=' || c == '{') {
                            fired = true;
                            break;
                        }
                    }
                }
                if (fired) {
                    report(findings, text, rel, i + 1,
                           "snapshot-drift",
                           "mutable " + kw + " state in src/ is "
                           "invisible to warmup snapshots and makes "
                           "branched sweeps diverge from "
                           "from-scratch runs; move it into a "
                           "component with save/restoreState or "
                           "suppress with a comment explaining why "
                           "branching is safe");
                }
            }
        }
    }

    // --- todo-issue ------------------------------------------------
    // Runs on raw text: to-dos live in comments.  The marker is
    // spelled split so the linter's own source stays clean.
    const std::string todoWord = std::string("TO") + "DO";
    for (int i = 0; i < n; ++i) {
        const std::string &raw = text.raw[static_cast<std::size_t>(i)];
        for (std::size_t pos = raw.find(todoWord);
             pos != std::string::npos;
             pos = raw.find(todoWord, pos + 4)) {
            std::size_t after = pos + 4;
            bool hasIssue = after + 1 < raw.size() &&
                raw[after] == '(' && raw[after + 1] == '#';
            if (!hasIssue) {
                report(findings, text, rel, i + 1, "todo-issue",
                       todoWord + " without an issue reference; "
                       "write " + todoWord +
                       "(#123) so it can be tracked");
                break;  // one finding per line is enough
            }
        }
    }

    return findings;
}

void
usage()
{
    std::cout <<
        "usage: polca_lint [--root DIR] [--format=gcc|human] "
        "[paths...]\n"
        "       polca_lint --self-test FIXTURES_DIR\n"
        "       polca_lint --list-rules\n"
        "\n"
        "Scans src/ tools/ examples/ tests/ (or the given paths,\n"
        "relative to --root) for determinism and hygiene violations.\n"
        "Suppress a line with: // polca-lint: allow(<rule>)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = fs::current_path();
    bool gccFormat = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        }
        if (arg == "--list-rules") {
            std::cout << "wall-clock\nraw-random\nunordered-iter\n"
                         "raw-new-delete\nsim-shared-ptr\n"
                         "pragma-once\ntodo-issue\ncatch-swallow\n"
                         "metric-name\nsnapshot-drift\n";
            return 0;
        }
        if (arg == "--self-test") {
            if (i + 1 >= argc) {
                usage();
                return 2;
            }
            return selfTest(argv[i + 1], "polca_lint", scanFile);
        }
        if (arg == "--format=gcc") {
            gccFormat = true;
            continue;
        }
        if (arg == "--format=human") {
            gccFormat = false;
            continue;
        }
        if (arg == "--root") {
            if (i + 1 >= argc) {
                usage();
                return 2;
            }
            root = argv[++i];
            continue;
        }
        if (startsWith(arg, "--")) {
            std::cout << "polca_lint: unknown flag '" << arg << "'\n";
            usage();
            return 2;
        }
        paths.push_back(arg);
    }
    if (paths.empty())
        paths = {"src", "tools", "examples", "tests"};

    std::vector<Finding> all;
    auto files = collectFiles(root, paths);
    for (const auto &[path, rel] : files) {
        std::vector<Finding> findings = scanFile(path, rel);
        all.insert(all.end(), findings.begin(), findings.end());
    }
    printFindings(all, gccFormat);
    if (!gccFormat) {
        std::cout << "polca_lint: " << files.size() << " files, "
                  << all.size() << " finding"
                  << (all.size() == 1 ? "" : "s") << "\n";
    }
    return all.empty() ? 0 : 1;
}
