/**
 * @file
 * ThreadPool tests: result ordering via futures, exception
 * propagation, zero-worker clamping, more tasks than workers, and
 * destructor drain semantics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/thread_pool.hh"

namespace {

using namespace polca;

TEST(ThreadPool, ZeroWorkersClampsToOne)
{
    core::ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 1u);
    auto f = pool.submit([] { return 7; });
    EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, DefaultWorkerCountIsPositive)
{
    EXPECT_GE(core::ThreadPool::defaultWorkerCount(), 1u);
}

TEST(ThreadPool, RunsZeroTasks)
{
    core::ThreadPool pool(4);
    // Construction + destruction with an empty queue must not hang.
    EXPECT_EQ(pool.workerCount(), 4u);
}

TEST(ThreadPool, MoreTasksThanWorkersAllComplete)
{
    core::ThreadPool pool(2);
    std::atomic<int> completed{0};
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i) {
        futures.push_back(pool.submit([i, &completed] {
            ++completed;
            return i * i;
        }));
    }
    // Futures preserve submission order even though execution
    // interleaves — the deterministic-stitching property SweepRunner
    // relies on.
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
    EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    core::ThreadPool pool(2);
    auto ok = pool.submit([] { return 1; });
    auto bad = pool.submit([]() -> int {
        throw std::runtime_error("task exploded");
    });
    auto after = pool.submit([] { return 2; });
    EXPECT_EQ(ok.get(), 1);
    EXPECT_THROW(bad.get(), std::runtime_error);
    // A throwing task must not take its worker down with it.
    EXPECT_EQ(after.get(), 2);
}

TEST(ThreadPool, TasksRunConcurrently)
{
    core::ThreadPool pool(2);
    // A handshake that can only complete if both tasks are in
    // flight at once: each side signals, then waits for the other.
    std::promise<void> aReady, bReady;
    std::shared_future<void> aSignal = aReady.get_future().share();
    std::shared_future<void> bSignal = bReady.get_future().share();
    auto a = pool.submit([&] {
        aReady.set_value();
        return bSignal.wait_for(std::chrono::seconds(30)) ==
            std::future_status::ready;
    });
    auto b = pool.submit([&] {
        bReady.set_value();
        return aSignal.wait_for(std::chrono::seconds(30)) ==
            std::future_status::ready;
    });
    EXPECT_TRUE(a.get());
    EXPECT_TRUE(b.get());
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> completed{0};
    std::vector<std::future<void>> futures;
    {
        core::ThreadPool pool(1);
        for (int i = 0; i < 16; ++i)
            futures.push_back(pool.submit([&completed] {
                ++completed;
            }));
        // Destruction joins only after every queued task ran.
    }
    EXPECT_EQ(completed.load(), 16);
    for (auto &f : futures) {
        EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
    }
}

TEST(ThreadPool, SubmissionOrderResultsAreDeterministic)
{
    // Run the same task set on 1 and 8 workers; stitched results
    // must match exactly.
    auto runWith = [](std::size_t workers) {
        core::ThreadPool pool(workers);
        std::vector<std::future<int>> futures;
        for (int i = 0; i < 32; ++i)
            futures.push_back(pool.submit([i] { return 3 * i + 1; }));
        std::vector<int> out;
        for (auto &f : futures)
            out.push_back(f.get());
        return out;
    };
    EXPECT_EQ(runWith(1), runWith(8));
}

} // namespace
