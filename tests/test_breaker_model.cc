/** @file Unit tests for the row circuit-breaker model. */

#include <gtest/gtest.h>

#include "sim/simulation.hh"
#include "telemetry/breaker_model.hh"

using namespace polca::telemetry;
using namespace polca::sim;

namespace {

struct Fixture
{
    explicit Fixture(double limitWatts = 12500.0)
    {
        BreakerModel::Config config;
        config.provisionedWatts = 10000.0;
        config.breakerLimitWatts = limitWatts;
        config.tripDuration = secondsToTicks(30);
        breaker = std::make_unique<BreakerModel>(
            sim, [this] { return watts; }, config);
        breaker->start();
    }

    void
    runSeconds(double seconds)
    {
        sim.runFor(secondsToTicks(seconds));
    }

    Simulation sim;
    std::unique_ptr<BreakerModel> breaker;
    double watts = 5000.0;
};

} // namespace

TEST(BreakerModel, QuietUnderProvisionedPower)
{
    Fixture f;
    f.runSeconds(100);
    EXPECT_EQ(f.breaker->trips(), 0u);
    EXPECT_FALSE(f.breaker->tripped());
    EXPECT_EQ(f.breaker->ticksAboveProvisioned(), 0);
    EXPECT_DOUBLE_EQ(f.breaker->overdrawWattSeconds(), 0.0);
    EXPECT_EQ(f.breaker->firstTripTime(), -1);
}

TEST(BreakerModel, OverdrawBelowLimitAccountsButNeverTrips)
{
    Fixture f;
    f.watts = 11000.0;  // above provisioned, below the 12.5 kW limit
    f.runSeconds(100);
    EXPECT_EQ(f.breaker->trips(), 0u);
    EXPECT_EQ(f.breaker->ticksAboveProvisioned(), secondsToTicks(100));
    EXPECT_EQ(f.breaker->ticksAboveLimit(), 0);
    EXPECT_NEAR(f.breaker->overdrawWattSeconds(), 1000.0 * 100.0,
                1000.0);
}

TEST(BreakerModel, TripsAfterSustainedOverLimit)
{
    Fixture f;
    f.watts = 13000.0;
    f.runSeconds(29);
    EXPECT_EQ(f.breaker->trips(), 0u);
    f.runSeconds(2);
    EXPECT_EQ(f.breaker->trips(), 1u);
    EXPECT_TRUE(f.breaker->tripped());
    EXPECT_NEAR(ticksToSeconds(f.breaker->firstTripTime()), 30.0, 1.1);
}

TEST(BreakerModel, TransientRidesThrough)
{
    Fixture f;
    f.watts = 14000.0;
    f.runSeconds(10);  // only 10 s above: thermal element absorbs it
    f.watts = 5000.0;
    f.runSeconds(100);
    EXPECT_EQ(f.breaker->trips(), 0u);
    EXPECT_EQ(f.breaker->nearTrips(), 0u);  // under half the windup
    EXPECT_EQ(f.breaker->longestOverLimitStreak(), secondsToTicks(10));
}

TEST(BreakerModel, NearTripCountsLongNonTrippingStreak)
{
    Fixture f;
    f.watts = 13000.0;
    f.runSeconds(20);  // >= 50 % of the 30 s windup, no trip
    f.watts = 5000.0;
    f.runSeconds(10);
    EXPECT_EQ(f.breaker->trips(), 0u);
    EXPECT_EQ(f.breaker->nearTrips(), 1u);
}

TEST(BreakerModel, RearmsAndTripsAgain)
{
    Fixture f;
    f.watts = 13000.0;
    f.runSeconds(65);  // 30 s windup, trip, re-arm, wind up again
    EXPECT_EQ(f.breaker->trips(), 2u);
}

TEST(BreakerModel, DefaultLimitIsNecContinuousRating)
{
    Simulation sim;
    BreakerModel::Config config;
    config.provisionedWatts = 8000.0;
    BreakerModel breaker(sim, [] { return 0.0; }, config);
    EXPECT_DOUBLE_EQ(breaker.breakerLimitWatts(), 10000.0);
}

TEST(BreakerModel, StopFreezesAccounting)
{
    Fixture f;
    f.watts = 13000.0;
    f.runSeconds(10);
    f.breaker->stop();
    EXPECT_FALSE(f.breaker->running());
    f.runSeconds(100);
    EXPECT_EQ(f.breaker->trips(), 0u);
    EXPECT_EQ(f.breaker->ticksAboveLimit(), secondsToTicks(10));
}

TEST(BreakerModelDeath, LimitBelowProvisionedFatal)
{
    Simulation sim;
    BreakerModel::Config config;
    config.provisionedWatts = 10000.0;
    config.breakerLimitWatts = 9000.0;
    EXPECT_DEATH(BreakerModel(sim, [] { return 0.0; }, config),
                 "below provisioned");
}

TEST(BreakerModelDeath, EmptySupplyPanics)
{
    Simulation sim;
    BreakerModel::Config config;
    config.provisionedWatts = 10000.0;
    EXPECT_DEATH(BreakerModel(sim, BreakerModel::PowerSource{}, config),
                 "empty power source");
}
