/** @file Unit tests for the ASCII table formatter. */

#include <gtest/gtest.h>

#include "analysis/table.hh"

using namespace polca::analysis;

TEST(Table, CellsAndAccessors)
{
    Table t({"Name", "Value"});
    t.row().cell("alpha").cell(1.25, 2);
    t.row().cell("beta").cell(static_cast<long long>(7));
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.numCols(), 2u);
    EXPECT_EQ(t.at(0, 0), "alpha");
    EXPECT_EQ(t.at(0, 1), "1.25");
    EXPECT_EQ(t.at(1, 1), "7");
}

TEST(Table, PercentCell)
{
    Table t({"x"});
    t.row().percentCell(0.125, 1);
    EXPECT_EQ(t.at(0, 0), "12.5%");
}

TEST(Table, RenderContainsHeaderAndSeparator)
{
    Table t({"A", "B"});
    t.row().cell("1").cell("2");
    std::string out = t.str();
    EXPECT_NE(out.find("A"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(Table, ColumnsAlign)
{
    Table t({"Col", "V"});
    t.row().cell("short").cell("1");
    t.row().cell("a-much-longer-cell").cell("2");
    std::string out = t.str();
    // Both "1" and "2" columns start at the same offset.
    std::size_t line1 = out.find("short");
    std::size_t line2 = out.find("a-much-longer-cell");
    ASSERT_NE(line1, std::string::npos);
    ASSERT_NE(line2, std::string::npos);
    std::size_t col1 = out.find('1', line1) - out.rfind('\n', line1);
    std::size_t col2 = out.find('2', line2) - out.rfind('\n', line2);
    EXPECT_EQ(col1, col2);
}

TEST(TableDeath, CellBeforeRowPanics)
{
    Table t({"A"});
    EXPECT_DEATH(t.cell("x"), "before row");
}

TEST(TableDeath, TooManyCellsPanics)
{
    Table t({"A"});
    t.row().cell("x");
    EXPECT_DEATH(t.cell("y"), "wider than header");
}

TEST(FormatHelpers, FixedAndPercent)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatPercent(0.5, 0), "50%");
}
