/**
 * @file
 * StructSchema tests: unit-suffix token parsing, and — for every
 * bound config struct — the defaults -> dump -> reparse -> equal
 * round trip that underwrites the effective-config dump guarantee.
 * Plus hostile inputs: wrong units, out-of-range values, unknown
 * keys with suggestions, all anchored to exact file:line locations.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "config/bindings.hh"
#include "workload/workload_spec.hh"

namespace {

using namespace polca;
using namespace polca::config;

double
number(const std::string &raw, Unit unit)
{
    double out = 0.0;
    std::string err;
    EXPECT_TRUE(parseNumberToken(raw, unit, out, err))
        << raw << ": " << err;
    return out;
}

std::string
numberError(const std::string &raw, Unit unit)
{
    double out = 0.0;
    std::string err;
    EXPECT_FALSE(parseNumberToken(raw, unit, out, err)) << raw;
    return err;
}

TEST(SchemaTokens, UnitSuffixes)
{
    EXPECT_DOUBLE_EQ(number("30%", Unit::Fraction), 0.30);
    EXPECT_DOUBLE_EQ(number("0.3", Unit::Fraction), 0.3);
    EXPECT_DOUBLE_EQ(number("500ms", Unit::Seconds), 0.5);
    EXPECT_DOUBLE_EQ(number("2s", Unit::Seconds), 2.0);
    EXPECT_DOUBLE_EQ(number("3min", Unit::Seconds), 180.0);
    EXPECT_DOUBLE_EQ(number("1.5h", Unit::Seconds), 5400.0);
    EXPECT_DOUBLE_EQ(number("2d", Unit::Seconds), 172800.0);
    EXPECT_DOUBLE_EQ(number("6.5kW", Unit::Watts), 6500.0);
    EXPECT_DOUBLE_EQ(number("400W", Unit::Watts), 400.0);
    EXPECT_DOUBLE_EQ(number("2MW", Unit::Watts), 2e6);
    EXPECT_DOUBLE_EQ(number("1275MHz", Unit::Megahertz), 1275.0);
    EXPECT_DOUBLE_EQ(number("1.41GHz", Unit::Megahertz), 1410.0);
    // Bare numbers read in the canonical unit.
    EXPECT_DOUBLE_EQ(number("86400", Unit::Seconds), 86400.0);
    EXPECT_DOUBLE_EQ(number("1e6", Unit::Watts), 1e6);
}

TEST(SchemaTokens, UnitMismatchesAndGarbage)
{
    EXPECT_NE(numberError("10W", Unit::Fraction).find("does not fit"),
              std::string::npos);
    EXPECT_NE(numberError("2s", Unit::Watts).find("does not fit"),
              std::string::npos);
    EXPECT_NE(numberError("10zorps", Unit::Watts)
                  .find("unknown unit suffix"),
              std::string::npos);
    EXPECT_NE(numberError("1.2.3", Unit::None).find("malformed"),
              std::string::npos);
    EXPECT_NE(numberError("", Unit::None).find("empty"),
              std::string::npos);
}

TEST(SchemaTokens, IntBoolString)
{
    long long i = 0;
    std::string err;
    EXPECT_TRUE(parseIntToken("42", i, err));
    EXPECT_EQ(i, 42);
    EXPECT_FALSE(parseIntToken("12.5", i, err));
    EXPECT_FALSE(parseIntToken("42x", i, err));

    bool b = false;
    EXPECT_TRUE(parseBoolToken("true", b, err));
    EXPECT_TRUE(b);
    EXPECT_TRUE(parseBoolToken("0", b, err));
    EXPECT_FALSE(b);
    EXPECT_FALSE(parseBoolToken("yes", b, err));

    std::string s;
    EXPECT_TRUE(parseStringToken("\"a\\nb\"", s, err));
    EXPECT_EQ(s, "a\nb");
    EXPECT_TRUE(parseStringToken("bare", s, err));
    EXPECT_EQ(s, "bare");
}

TEST(SchemaTokens, QuoteRoundTrip)
{
    std::string original = "line1\nline2\t\"quoted\" back\\slash";
    std::string err, decoded;
    ASSERT_TRUE(parseStringToken(quoteString(original), decoded, err))
        << err;
    EXPECT_EQ(decoded, original);
}

/**
 * dump() every bound field of @p value, reparse the dump as a
 * section, apply() it onto a second instance, and require field-wise
 * equality — the per-struct half of the dump/reparse identity
 * guarantee.
 */
template <typename T>
void
expectRoundTrip(const StructSchema<T> &schema, const T &value)
{
    std::ostringstream os;
    schema.dump(value, nullptr, os);

    Diagnostics diag;
    ConfigNode root =
        parseConfigString(os.str(), "dump.toml", diag);
    ASSERT_TRUE(diag.ok()) << schema.name() << ": " << diag.str();

    T reparsed{};
    ASSERT_TRUE(schema.apply(root, reparsed, diag))
        << schema.name() << ": " << diag.str();
    EXPECT_TRUE(schema.equal(value, reparsed))
        << schema.name() << " did not survive a dump/reparse cycle:\n"
        << os.str();
}

TEST(SchemaRoundTrip, EveryBoundStruct)
{
    expectRoundTrip(gpuSpecSchema(), power::GpuSpec::a100_80gb());
    expectRoundTrip(gpuSpecSchema(), power::GpuSpec::h100_80gb());
    expectRoundTrip(serverSpecSchema(),
                    power::ServerSpec::dgxA100_80gb());
    expectRoundTrip(serverSpecSchema(), power::ServerSpec::dgxH100());
    expectRoundTrip(modelSpecSchema(),
                    llm::ModelCatalog().byName("BLOOM-176B"));
    expectRoundTrip(workloadSpecSchema(),
                    workload::paperWorkloadMix().front());
    expectRoundTrip(diurnalSchema(),
                    workload::DiurnalModel::Params{});
    expectRoundTrip(rowConfigSchema(), cluster::RowConfig{});
    expectRoundTrip(thresholdRuleSchema(),
                    core::PolicyConfig::polca().rules.front());
    expectRoundTrip(policyConfigSchema(), core::PolicyConfig::polca());
    expectRoundTrip(policyConfigSchema(), core::PolicyConfig::noCap());
    expectRoundTrip(managerOptionsSchema(), core::ManagerOptions{});
    expectRoundTrip(experimentSchema(), core::ExperimentConfig{});

    faults::BlackoutWindow blackout;
    blackout.start = sim::secondsToTicks(300);
    blackout.duration = sim::secondsToTicks(12600);
    expectRoundTrip(blackoutSchema(), blackout);

    faults::BurstyLoss bursty;
    bursty.enabled = true;
    bursty.enterBurstProbability = 0.02;
    bursty.exitBurstProbability = 0.3;
    bursty.goodLossProbability = 0.001;
    bursty.burstLossProbability = 0.7;
    expectRoundTrip(burstyLossSchema(), bursty);

    faults::SensorFault sensor;
    sensor.start = sim::secondsToTicks(60);
    sensor.duration = sim::secondsToTicks(600);
    sensor.mode = faults::SensorFaultMode::Bias;
    sensor.biasWatts = -250.0;
    sensor.noiseStddevWatts = 42.5;
    expectRoundTrip(sensorFaultSchema(), sensor);

    faults::OobOutage outage;
    outage.start = sim::secondsToTicks(90);
    outage.duration = sim::secondsToTicks(45);
    expectRoundTrip(oobOutageSchema(), outage);

    faults::ServerCrash crash;
    crash.at = sim::secondsToTicks(1800);
    crash.downtime = sim::secondsToTicks(900);
    crash.serverIndex = 7;
    expectRoundTrip(serverCrashSchema(), crash);
}

TEST(SchemaRoundTrip, NonTrivialValuesSurvive)
{
    // Values that stress the shortest-round-trip formatting: sub-tick
    // durations, thirds, and large seeds.
    cluster::RowConfig row;
    row.addedServerFraction = 1.0 / 3.0;
    row.telemetryInterval = sim::secondsToTicks(0.25);
    expectRoundTrip(rowConfigSchema(), row);

    core::ExperimentConfig config;
    config.seed = 123456789012345ull;
    config.powerScaleFactor = 1.05;
    config.duration = sim::secondsToTicks(2.5 * 86400.0);
    expectRoundTrip(experimentSchema(), config);
}

/** Apply @p body (as section content) onto @p obj; return the first
 *  diagnostic. */
template <typename T>
std::string
applyError(const StructSchema<T> &schema, const std::string &body,
           T &obj)
{
    Diagnostics diag;
    ConfigNode root = parseConfigString(body, "hostile.toml", diag);
    EXPECT_TRUE(diag.ok()) << diag.str();
    EXPECT_FALSE(schema.apply(root, obj, diag));
    return diag.ok() ? std::string() : diag.errors().front();
}

TEST(SchemaHostile, WrongUnitNamesFieldAndLine)
{
    power::GpuSpec gpu = power::GpuSpec::a100_80gb();
    std::string err =
        applyError(gpuSpecSchema(), "tdp_watts = 30%\n", gpu);
    EXPECT_NE(err.find("hostile.toml:1"), std::string::npos) << err;
    EXPECT_NE(err.find("row.server.gpu.tdp_watts"),
              std::string::npos) << err;
}

TEST(SchemaHostile, OutOfRange)
{
    cluster::RowConfig row;
    std::string err =
        applyError(rowConfigSchema(), "base_servers = 0\n", row);
    EXPECT_NE(err.find("out of range"), std::string::npos) << err;

    std::string err2 = applyError(
        rowConfigSchema(), "added_server_fraction = 900%\n", row);
    EXPECT_NE(err2.find("out of range"), std::string::npos) << err2;
}

TEST(SchemaHostile, UnknownKeySuggestion)
{
    cluster::RowConfig row;
    std::string err =
        applyError(rowConfigSchema(), "based_servers = 4\n", row);
    EXPECT_NE(err.find("unknown key 'based_servers'"),
              std::string::npos) << err;
    EXPECT_NE(err.find("did you mean 'base_servers'"),
              std::string::npos) << err;
}

TEST(SchemaHostile, ScalarExpected)
{
    cluster::RowConfig row;
    std::string err = applyError(rowConfigSchema(),
                                 "base_servers = [1, 2]\n", row);
    EXPECT_NE(err.find("expected a scalar value"),
              std::string::npos) << err;
}

TEST(SchemaHostile, EnumAndBoolErrors)
{
    llm::ModelSpec model = llm::ModelCatalog().byName("BLOOM-176B");
    std::string err = applyError(
        modelSpecSchema(), "architecture = \"transformer\"\n", model);
    EXPECT_NE(err.find("unknown value 'transformer'"),
              std::string::npos) << err;
    EXPECT_NE(err.find("decoder"), std::string::npos) << err;

    core::ManagerOptions manager;
    std::string err2 = applyError(
        managerOptionsSchema(), "watchdog_enabled = maybe\n", manager);
    EXPECT_NE(err2.find("manager.watchdog_enabled"),
              std::string::npos) << err2;
}

TEST(SchemaHostile, LaterLinesAnchorCorrectly)
{
    core::ExperimentConfig config;
    std::string err = applyError(experimentSchema(),
                                 "seed = 1\n"
                                 "power_scale_factor = 1.05\n"
                                 "duration = 1q\n",
                                 config);
    EXPECT_NE(err.find("hostile.toml:3"), std::string::npos) << err;
}

TEST(SchemaMisc, FormatValueAndKeys)
{
    power::GpuSpec gpu = power::GpuSpec::a100_80gb();
    EXPECT_EQ(gpuSpecSchema().formatValue(gpu, "name"),
              quoteString(gpu.name));
    EXPECT_EQ(gpuSpecSchema().formatValue(gpu, "nope"),
              "<no such field>");
    // Every schema exposes at least one key, and apply() accepted
    // exactly those keys in the round-trip test above.
    EXPECT_FALSE(experimentSchema().keys().empty());
}

} // namespace
