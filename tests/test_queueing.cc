/**
 * @file
 * Queueing-theory property tests on the cluster: Little's-law
 * consistency, utilization-conservation, and latency monotonicity in
 * offered load — checks the event-driven serving path against
 * first-principles expectations.
 */

#include <gtest/gtest.h>

#include "cluster/row.hh"
#include "llm/phase_model.hh"
#include "sim/simulation.hh"
#include "workload/trace_gen.hh"

using namespace polca;
using namespace polca::cluster;
using namespace polca::workload;
using namespace polca::sim;

namespace {

struct RunStats
{
    double meanLatencySeconds;
    double completionsPerSecond;
    double meanBusyFraction;
    std::uint64_t completions;
};

RunStats
serve(double utilization, std::uint64_t seed, int servers = 8,
      double hours = 3.0)
{
    Simulation sim(seed);
    RowConfig rowConfig;
    rowConfig.baseServers = servers;
    Row row(sim, rowConfig, sim.rng().fork(1));

    TraceGenerator generator;
    llm::PhaseModel phases(row.model());
    TraceGenOptions options;
    options.duration = secondsToTicks(hours * 3600.0);
    options.numServers = servers;
    options.serviceSecondsPerRequest =
        generator.expectedServiceSeconds(phases);
    options.seed = seed;
    options.diurnal.baseUtilization = utilization;
    options.diurnal.dailyAmplitude = 0.0;
    options.diurnal.weekendDip = 0.0;
    options.diurnal.noiseAmplitude = 0.0;
    Trace trace = generator.generate(options);
    row.dispatcher().injectTrace(trace);
    sim.runUntil(options.duration);

    RunStats stats;
    Sampler all;
    for (Priority p : {Priority::Low, Priority::High}) {
        for (double v :
             row.dispatcher().latencySeconds(p).values())
            all.add(v);
    }
    stats.completions =
        row.dispatcher().completions(Priority::Low) +
        row.dispatcher().completions(Priority::High);
    stats.meanLatencySeconds = all.mean();
    stats.completionsPerSecond =
        static_cast<double>(stats.completions) / (hours * 3600.0);

    Tick busy = 0;
    for (InferenceServer *server : row.servers())
        busy += server->busyTicks();
    stats.meanBusyFraction = static_cast<double>(busy) /
        (static_cast<double>(servers) *
         static_cast<double>(options.duration));
    return stats;
}

} // namespace

TEST(Queueing, ServerBusyFractionMatchesOfferedLoad)
{
    // Utilization conservation: busy fraction ~= offered rho at
    // moderate load (no drops in this system).
    RunStats stats = serve(0.6, 11);
    EXPECT_NEAR(stats.meanBusyFraction, 0.6, 0.07);
}

TEST(Queueing, ThroughputMatchesOfferedRate)
{
    // All offered requests complete: lambda_out ~= lambda_in.
    RunStats stats = serve(0.6, 13);
    double expectedRate = 0.6 * 8 /
        TraceGenerator().expectedServiceSeconds(llm::PhaseModel(
            llm::ModelCatalog().byName("BLOOM-176B")));
    EXPECT_NEAR(stats.completionsPerSecond, expectedRate,
                expectedRate * 0.1);
}

TEST(Queueing, LatencyMonotonicInLoad)
{
    // Mean sojourn time must not decrease with offered load.
    double previous = 0.0;
    for (double utilization : {0.3, 0.6, 0.85}) {
        RunStats stats = serve(utilization, 17);
        EXPECT_GE(stats.meanLatencySeconds, previous * 0.98)
            << "at utilization " << utilization;
        previous = stats.meanLatencySeconds;
    }
}

TEST(Queueing, LowLoadLatencyIsPureServiceTime)
{
    // At 20 % load queueing is negligible: mean latency ~= mean
    // service time of the mix.
    RunStats stats = serve(0.2, 19);
    double service = TraceGenerator().expectedServiceSeconds(
        llm::PhaseModel(llm::ModelCatalog().byName("BLOOM-176B")));
    EXPECT_NEAR(stats.meanLatencySeconds, service, service * 0.15);
}

TEST(Queueing, HeavyLoadInflatesTail)
{
    // At 95 % offered load the system queues: mean latency well
    // above the service time.
    RunStats light = serve(0.3, 23);
    RunStats heavy = serve(0.95, 23);
    EXPECT_GT(heavy.meanLatencySeconds,
              light.meanLatencySeconds * 1.15);
}

TEST(Queueing, LittlesLawHolds)
{
    // L = lambda * W within tolerance: mean requests in system
    // equals completion rate x mean sojourn time.  Estimate L from
    // busy servers + queue occupancy via busyTicks (service only),
    // so compare against service-time portion: busy-servers =
    // lambda * E[service].
    RunStats stats = serve(0.7, 29);
    double service = TraceGenerator().expectedServiceSeconds(
        llm::PhaseModel(llm::ModelCatalog().byName("BLOOM-176B")));
    double busyServers = stats.meanBusyFraction * 8;
    EXPECT_NEAR(busyServers, stats.completionsPerSecond * service,
                busyServers * 0.12);
}
