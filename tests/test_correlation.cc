/** @file Unit tests for Pearson correlation utilities. */

#include <gtest/gtest.h>

#include "analysis/correlation.hh"

using namespace polca::analysis;

TEST(Pearson, PerfectPositive)
{
    std::vector<double> x{1, 2, 3, 4};
    std::vector<double> y{2, 4, 6, 8};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative)
{
    std::vector<double> x{1, 2, 3, 4};
    std::vector<double> y{8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ShiftAndScaleInvariant)
{
    std::vector<double> x{1, 5, 2, 8, 3};
    std::vector<double> y;
    for (double v : x)
        y.push_back(v * 3.5 + 100.0);
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceGivesZero)
{
    std::vector<double> x{1, 1, 1};
    std::vector<double> y{1, 2, 3};
    EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Pearson, TooFewSamplesGivesZero)
{
    EXPECT_DOUBLE_EQ(pearson({1.0}, {2.0}), 0.0);
    EXPECT_DOUBLE_EQ(pearson({}, {}), 0.0);
}

TEST(PearsonDeath, LengthMismatchPanics)
{
    std::vector<double> x{1, 2};
    std::vector<double> y{1};
    EXPECT_DEATH(pearson(x, y), "length mismatch");
}

TEST(Pearson, UncorrelatedNearZero)
{
    // Deterministic pseudo-random pair with no linear relation.
    std::vector<double> x, y;
    unsigned a = 12345, b = 67890;
    for (int i = 0; i < 2000; ++i) {
        a = a * 1103515245 + 12345;
        b = b * 22695477 + 1;
        x.push_back((a >> 16) % 1000);
        y.push_back((b >> 16) % 1000);
    }
    EXPECT_NEAR(pearson(x, y), 0.0, 0.1);
}

TEST(CorrelationMatrix, DiagonalIsOne)
{
    CorrelationMatrix m;
    m.addSignal("a", {1, 2, 3});
    m.addSignal("b", {3, 1, 2});
    auto matrix = m.matrix();
    EXPECT_DOUBLE_EQ(matrix[0][0], 1.0);
    EXPECT_DOUBLE_EQ(matrix[1][1], 1.0);
}

TEST(CorrelationMatrix, Symmetric)
{
    CorrelationMatrix m;
    m.addSignal("a", {1, 2, 3, 4});
    m.addSignal("b", {2, 1, 4, 3});
    m.addSignal("c", {4, 3, 2, 1});
    auto matrix = m.matrix();
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(matrix[i][j], matrix[j][i]);
    }
}

TEST(CorrelationMatrix, AtMatchesPearson)
{
    CorrelationMatrix m;
    std::vector<double> a{1, 2, 3, 5};
    std::vector<double> b{2, 2, 4, 6};
    m.addSignal("a", a);
    m.addSignal("b", b);
    EXPECT_DOUBLE_EQ(m.at(0, 1), pearson(a, b));
}

TEST(CorrelationMatrixDeath, MismatchedLengthPanics)
{
    CorrelationMatrix m;
    m.addSignal("a", {1, 2, 3});
    EXPECT_DEATH(m.addSignal("b", {1, 2}), "expected 3");
}
