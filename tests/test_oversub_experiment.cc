/** @file Integration tests for the oversubscription harness. */

#include <gtest/gtest.h>

#include "core/oversub_experiment.hh"
#include "workload/trace_gen.hh"

using namespace polca::core;
using namespace polca::workload;
using namespace polca::sim;

namespace {

/** Small row / short horizon configuration for fast tests. */
ExperimentConfig
smallConfig(double added = 0.0)
{
    ExperimentConfig config;
    config.row.baseServers = 20;
    config.row.addedServerFraction = added;
    config.duration = secondsToTicks(2 * 3600.0);
    config.seed = 7;
    return config;
}

} // namespace

TEST(OversubExperiment, BaselineServesTrafficWithinBudget)
{
    ExperimentConfig config = unthrottledBaseline(smallConfig());
    ExperimentResult result = runOversubExperiment(config);
    EXPECT_GT(result.lowCompletions, 100u);
    EXPECT_GT(result.highCompletions, 100u);
    EXPECT_EQ(result.powerBrakeEvents, 0u);
    EXPECT_EQ(result.capCommands, 0u);
    // Default fleet: peak utilization around Table 4's 79 %.
    EXPECT_GT(result.maxUtilization, 0.65);
    EXPECT_LT(result.maxUtilization, 0.95);
}

TEST(OversubExperiment, PerWorkloadStatsPopulated)
{
    ExperimentResult result = runOversubExperiment(smallConfig());
    // Summarize / Search / Chat classes all served.
    ASSERT_EQ(result.byWorkload.size(), 3u);
    for (const LatencyStats &stats : result.byWorkload) {
        EXPECT_GT(stats.count, 0u);
        EXPECT_GT(stats.p50, 0.0);
    }
    // Search generates the most tokens -> slowest class.
    EXPECT_GT(result.byWorkload[1].p50, result.byWorkload[0].p50);
}

TEST(OversubExperiment, EnergyAccounted)
{
    ExperimentResult result = runOversubExperiment(smallConfig());
    EXPECT_GT(result.energyKwh, 0.0);
    EXPECT_GT(result.energyPerRequestKj, 0.0);
    // Sanity scale: a 20-server row for 2 h at ~60-80 kW.
    EXPECT_GT(result.energyKwh, 80.0);
    EXPECT_LT(result.energyKwh, 250.0);
}

TEST(OversubExperiment, LatencyStatsAreOrdered)
{
    ExperimentResult result = runOversubExperiment(smallConfig());
    EXPECT_GT(result.low.p50, 0.0);
    EXPECT_LE(result.low.p50, result.low.p99);
    EXPECT_LE(result.low.p99, result.low.max);
    EXPECT_LE(result.high.p50, result.high.p99);
}

TEST(OversubExperiment, DeterministicPerSeed)
{
    ExperimentResult a = runOversubExperiment(smallConfig(0.2));
    ExperimentResult b = runOversubExperiment(smallConfig(0.2));
    EXPECT_EQ(a.lowCompletions, b.lowCompletions);
    EXPECT_DOUBLE_EQ(a.low.p99, b.low.p99);
    EXPECT_EQ(a.capCommands, b.capCommands);
}

TEST(OversubExperiment, TrafficScalesWithAddedServers)
{
    ExperimentResult base = runOversubExperiment(smallConfig(0.0));
    ExperimentResult more = runOversubExperiment(smallConfig(0.3));
    double baseArrivals =
        static_cast<double>(base.lowArrivals + base.highArrivals);
    double moreArrivals =
        static_cast<double>(more.lowArrivals + more.highArrivals);
    EXPECT_NEAR(moreArrivals / baseArrivals, 1.3, 0.1);
}

TEST(OversubExperiment, Polca30PercentRunsBrakeFree)
{
    // The headline result at test scale: +30 % servers under POLCA
    // completes with zero power brakes.
    ExperimentConfig config = smallConfig(0.3);
    ExperimentResult result = runOversubExperiment(config);
    EXPECT_EQ(result.powerBrakeEvents, 0u);
    EXPECT_LT(result.maxUtilization, 1.0);
}

TEST(OversubExperiment, OversubscriptionRaisesUtilization)
{
    ExperimentResult base = runOversubExperiment(smallConfig(0.0));
    ExperimentResult more = runOversubExperiment(smallConfig(0.3));
    EXPECT_GT(more.meanUtilization, base.meanUtilization * 1.15);
}

TEST(OversubExperiment, PolcaCapsAtHighOversubscription)
{
    ExperimentConfig config = smallConfig(0.35);
    ExperimentResult result = runOversubExperiment(config);
    // The T1/T2 machinery must actually engage at this level.
    EXPECT_GT(result.capCommands, 0u);
    EXPECT_GT(result.lpLockedTicks, 0);
}

TEST(OversubExperiment, NoCapBrakesAtExtremeOversubscription)
{
    ExperimentConfig config = smallConfig(0.6);
    config.policy = PolicyConfig::noCap();
    ExperimentResult result = runOversubExperiment(config);
    EXPECT_GT(result.powerBrakeEvents, 0u);
}

TEST(OversubExperiment, PolcaAvoidsBrakesWhereNoCapDoesNot)
{
    ExperimentConfig config = smallConfig(0.4);
    ExperimentResult polca = runOversubExperiment(config);
    config.policy = PolicyConfig::noCap();
    ExperimentResult nocap = runOversubExperiment(config);
    EXPECT_LE(polca.powerBrakeEvents, nocap.powerBrakeEvents);
}

TEST(OversubExperiment, NormalizedLatencyAgainstBaseline)
{
    ExperimentConfig config = smallConfig(0.3);
    ExperimentResult managed = runOversubExperiment(config);
    ExperimentResult baseline =
        runOversubExperiment(unthrottledBaseline(config));

    NormalizedLatency low =
        normalizeLatency(managed.low, baseline.low);
    NormalizedLatency high =
        normalizeLatency(managed.high, baseline.high);

    // Capping can only slow things down; HP stays nearly untouched.
    EXPECT_GE(low.p50, 0.99);
    EXPECT_GE(high.p50, 0.99);
    EXPECT_LT(high.p50, 1.02);
    EXPECT_LT(low.p99, 1.6);
}

TEST(OversubExperiment, RobustToTelemetryDropout)
{
    // A third of row readings silently lost: POLCA still manages
    // the +30% row without brakes (decisions just arrive a little
    // later on average).
    ExperimentConfig config = smallConfig(0.3);
    config.row.telemetryDropoutProbability = 0.33;
    ExperimentResult result = runOversubExperiment(config);
    EXPECT_EQ(result.powerBrakeEvents, 0u);
    EXPECT_GT(result.capCommands, 0u);
}

TEST(OversubExperiment, PowerScaleFactorRaisesUtilization)
{
    ExperimentConfig config = smallConfig(0.2);
    ExperimentResult base = runOversubExperiment(config);
    config.powerScaleFactor = 1.05;
    ExperimentResult scaled = runOversubExperiment(config);
    EXPECT_GT(scaled.meanUtilization, base.meanUtilization * 1.01);
}

TEST(OversubExperiment, RecordedRowSeriesSpansRun)
{
    ExperimentConfig config = smallConfig();
    config.recordRowSeries = true;
    config.duration = secondsToTicks(600.0);
    ExperimentResult result = runOversubExperiment(config);
    ASSERT_FALSE(result.rowPowerSeries.empty());
    EXPECT_NEAR(
        ticksToSeconds(result.rowPowerSeries.endTime()), 600.0, 4.0);
}

TEST(OversubExperiment, ExternalTraceHonored)
{
    Trace trace(secondsToTicks(600.0));
    Request r;
    r.arrival = secondsToTicks(1.0);
    r.priority = Priority::High;
    r.inputTokens = 1024;
    r.outputTokens = 64;
    trace.add(r);

    ExperimentConfig config = smallConfig();
    config.duration = secondsToTicks(600.0);
    config.externalTrace = &trace;
    ExperimentResult result = runOversubExperiment(config);
    EXPECT_EQ(result.highArrivals, 1u);
    EXPECT_EQ(result.lowArrivals, 0u);
    EXPECT_EQ(result.highCompletions, 1u);
}

TEST(NormalizeLatency, RatiosAndDegenerateCases)
{
    LatencyStats value{2.0, 4.0, 8.0, 3.0, 10};
    LatencyStats base{1.0, 2.0, 4.0, 1.5, 10};
    NormalizedLatency n = normalizeLatency(value, base);
    EXPECT_DOUBLE_EQ(n.p50, 2.0);
    EXPECT_DOUBLE_EQ(n.p99, 2.0);
    EXPECT_DOUBLE_EQ(n.max, 2.0);

    LatencyStats empty;
    NormalizedLatency d = normalizeLatency(value, empty);
    EXPECT_DOUBLE_EQ(d.p50, 1.0);  // degenerate -> neutral
}

/**
 * Seed sweep: the headline +30% brake-free result must not hinge on
 * one lucky random stream.
 */
class HeadlineSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HeadlineSeeds, ThirtyPercentBrakeFree)
{
    // Paper-scale row (40 base servers) over a full diurnal cycle:
    // the 20-server test fixture has relatively larger spikes and is
    // not what the +30% result is calibrated for.
    ExperimentConfig config;
    config.row.baseServers = 40;
    config.row.addedServerFraction = 0.30;
    config.duration = secondsToTicks(24 * 3600.0);
    config.seed = GetParam();
    ExperimentResult result = runOversubExperiment(config);
    EXPECT_EQ(result.powerBrakeEvents, 0u)
        << "seed " << GetParam();
    EXPECT_LT(result.maxUtilization, 1.0) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeadlineSeeds,
                         ::testing::Values(11u, 42u, 123u));

TEST(MeetsSlos, Table6Boundaries)
{
    SloSpec slos = paperSlos();
    NormalizedLatency okLow{1.04, 1.40, 2.0};
    NormalizedLatency okHigh{1.005, 1.04, 1.5};
    EXPECT_TRUE(meetsSlos(okLow, okHigh, 0, slos));
    EXPECT_FALSE(meetsSlos(okLow, okHigh, 1, slos));  // brake

    NormalizedLatency badLow{1.06, 1.40, 2.0};  // LP p50 > 5 %
    EXPECT_FALSE(meetsSlos(badLow, okHigh, 0, slos));

    NormalizedLatency badHigh{1.02, 1.04, 1.5};  // HP p50 > 1 %
    EXPECT_FALSE(meetsSlos(okLow, badHigh, 0, slos));
}
