/** @file Unit tests for the recursive power-domain tree. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/power_domain.hh"

using namespace polca::cluster;
using namespace polca::sim;

namespace {

PowerDomain::Options
domain(std::string name, DomainLevel level, double budget = 0.0,
       Tick interval = 0)
{
    PowerDomain::Options options;
    options.name = std::move(name);
    options.level = level;
    options.budgetWatts = budget;
    options.telemetryInterval = interval;
    return options;
}

} // namespace

TEST(PowerDomain, PathJoinsAncestorNamesWithDots)
{
    Simulation sim;
    PowerDomain site(sim, domain("site", DomainLevel::Site));
    PowerDomain &row = site.addChild(domain("row3", DomainLevel::Row));
    PowerDomain &rack =
        row.addChild(domain("rack1", DomainLevel::Rack));

    EXPECT_EQ(site.path(), "site");
    EXPECT_EQ(row.path(), "site.row3");
    EXPECT_EQ(rack.path(), "site.row3.rack1");
    EXPECT_EQ(rack.parent(), &row);
    EXPECT_EQ(site.parent(), nullptr);
}

TEST(PowerDomain, ProvisionedSumsLeafBudgets)
{
    Simulation sim;
    PowerDomain site(sim, domain("site", DomainLevel::Site));
    PowerDomain &row = site.addChild(domain("row0", DomainLevel::Row));
    row.addLeaf("a", [] { return 0.0; }, 100.0);
    row.addLeaf("b", [] { return 0.0; }, 250.0);
    site.finalize();

    EXPECT_DOUBLE_EQ(row.provisionedWatts(), 350.0);
    EXPECT_DOUBLE_EQ(site.provisionedWatts(), 350.0);
}

TEST(PowerDomain, BudgetDefaultsToProvisionedWhenUnset)
{
    Simulation sim;
    PowerDomain site(sim, domain("site", DomainLevel::Site));
    site.addLeaf("a", [] { return 0.0; }, 100.0);
    site.finalize();

    EXPECT_DOUBLE_EQ(site.budgetWatts(), 100.0);
}

TEST(PowerDomain, ExplicitBudgetOversubscribes)
{
    Simulation sim;
    PowerDomain site(sim, domain("site", DomainLevel::Site, 80.0));
    site.addLeaf("a", [] { return 0.0; }, 100.0);
    site.finalize();

    EXPECT_DOUBLE_EQ(site.provisionedWatts(), 100.0);
    EXPECT_DOUBLE_EQ(site.budgetWatts(), 80.0);
}

TEST(PowerDomain, PowerIsLeftToRightChildSum)
{
    Simulation sim;
    PowerDomain site(sim, domain("site", DomainLevel::Site));
    PowerDomain &row0 = site.addChild(domain("r0", DomainLevel::Row));
    PowerDomain &row1 = site.addChild(domain("r1", DomainLevel::Row));
    row0.addLeaf("a", [] { return 10.0; }, 100.0);
    row0.addLeaf("b", [] { return 20.0; }, 100.0);
    row1.addLeaf("c", [] { return 30.0; }, 100.0);
    site.finalize();

    EXPECT_DOUBLE_EQ(row0.powerWatts(), 30.0);
    EXPECT_DOUBLE_EQ(row1.powerWatts(), 30.0);
    EXPECT_DOUBLE_EQ(site.powerWatts(), 60.0);
}

TEST(PowerDomain, EffectiveBudgetSharesTightestAncestor)
{
    // Two equal rows under a site budget smaller than their sum:
    // each row's share is 500/1000 x 800 = 400, tighter than its
    // own 500 budget.
    Simulation sim;
    PowerDomain site(sim, domain("site", DomainLevel::Site, 800.0));
    PowerDomain &row0 =
        site.addChild(domain("r0", DomainLevel::Row, 500.0));
    PowerDomain &row1 =
        site.addChild(domain("r1", DomainLevel::Row, 500.0));
    row0.addLeaf("a", [] { return 0.0; }, 500.0);
    row1.addLeaf("b", [] { return 0.0; }, 500.0);
    site.finalize();

    EXPECT_DOUBLE_EQ(row0.effectiveBudgetWatts(), 400.0);
    EXPECT_DOUBLE_EQ(row1.effectiveBudgetWatts(), 400.0);
}

TEST(PowerDomain, EffectiveBudgetKeepsOwnWhenAncestorsAreLoose)
{
    Simulation sim;
    PowerDomain site(sim, domain("site", DomainLevel::Site, 2000.0));
    PowerDomain &row =
        site.addChild(domain("r0", DomainLevel::Row, 300.0));
    row.addLeaf("a", [] { return 0.0; }, 500.0);
    site.finalize();

    EXPECT_DOUBLE_EQ(row.effectiveBudgetWatts(), 300.0);
}

TEST(PowerDomain, ManagerRollsChildReadingsUp)
{
    Simulation sim;
    PowerDomain site(sim, domain("site", DomainLevel::Site, 0.0,
                                 secondsToTicks(2)));
    PowerDomain &row = site.addChild(
        domain("r0", DomainLevel::Row, 0.0, secondsToTicks(2)));
    row.addLeaf("a", [] { return 70.0; }, 100.0);
    row.addLeaf("b", [] { return 40.0; }, 100.0);
    site.finalize();

    sim.runFor(secondsToTicks(10));
    ASSERT_NE(site.manager(), nullptr);
    ASSERT_NE(row.manager(), nullptr);
    EXPECT_DOUBLE_EQ(row.manager()->latestReading(), 110.0);
    EXPECT_DOUBLE_EQ(site.manager()->latestReading(), 110.0);
}

TEST(PowerDomain, VisitIsPreOrder)
{
    Simulation sim;
    PowerDomain site(sim, domain("site", DomainLevel::Site));
    PowerDomain &row0 = site.addChild(domain("r0", DomainLevel::Row));
    row0.addChild(domain("k0", DomainLevel::Rack));
    site.addChild(domain("r1", DomainLevel::Row));
    site.finalize();

    std::vector<std::string> paths;
    const PowerDomain &constSite = site;
    constSite.visit([&](const PowerDomain &node) {
        paths.push_back(node.path());
    });
    EXPECT_EQ(paths, (std::vector<std::string>{
                         "site", "site.r0", "site.r0.k0", "site.r1"}));
}

TEST(PowerDomain, ConstApiMatchesMutable)
{
    Simulation sim;
    PowerDomain site(sim, domain("site", DomainLevel::Site, 0.0,
                                 secondsToTicks(2)));
    site.addLeaf("a", [] { return 5.0; }, 10.0);
    site.finalize();

    const PowerDomain &constSite = site;
    EXPECT_EQ(constSite.numServers(), 0);
    EXPECT_TRUE(constSite.servers().empty());
    EXPECT_NE(constSite.manager(), nullptr);
    EXPECT_EQ(constSite.breaker(), nullptr);
    EXPECT_FALSE(constSite.isLeaf());
    EXPECT_TRUE(constSite.children().front()->isLeaf());
    EXPECT_DOUBLE_EQ(constSite.powerWatts(), 5.0);
}
