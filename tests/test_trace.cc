/** @file Unit tests for the request trace container. */

#include <gtest/gtest.h>

#include <sstream>

#include "workload/trace.hh"

using namespace polca::workload;
using polca::sim::secondsToTicks;

namespace {

Request
makeRequest(polca::sim::Tick arrival, Priority priority = Priority::Low)
{
    Request r;
    r.arrival = arrival;
    r.priority = priority;
    r.inputTokens = 2048;
    r.outputTokens = 256;
    return r;
}

} // namespace

TEST(Trace, AddAndDuration)
{
    Trace trace(secondsToTicks(100));
    trace.add(makeRequest(secondsToTicks(1)));
    trace.add(makeRequest(secondsToTicks(50)));
    EXPECT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.duration(), secondsToTicks(100));
}

TEST(Trace, DurationExtendsWithLateArrivals)
{
    Trace trace(secondsToTicks(10));
    trace.add(makeRequest(secondsToTicks(50)));
    EXPECT_EQ(trace.duration(), secondsToTicks(50));
}

TEST(TraceDeath, OutOfOrderArrivalPanics)
{
    Trace trace;
    trace.add(makeRequest(100));
    EXPECT_DEATH(trace.add(makeRequest(50)), "precedes");
}

TEST(Trace, MeanArrivalRate)
{
    Trace trace(secondsToTicks(10));
    for (int i = 0; i < 20; ++i)
        trace.add(makeRequest(secondsToTicks(i * 0.5)));
    EXPECT_NEAR(trace.meanArrivalRate(), 2.0, 0.1);
}

TEST(Trace, BinnedArrivals)
{
    Trace trace(secondsToTicks(30));
    trace.add(makeRequest(secondsToTicks(1)));
    trace.add(makeRequest(secondsToTicks(2)));
    trace.add(makeRequest(secondsToTicks(15)));
    auto bins = trace.binnedArrivals(secondsToTicks(10));
    ASSERT_EQ(bins.size(), 3u);
    EXPECT_EQ(bins[0], 2u);
    EXPECT_EQ(bins[1], 1u);
    EXPECT_EQ(bins[2], 0u);
}

TEST(Trace, SliceRebasesArrivals)
{
    Trace trace(secondsToTicks(30));
    trace.add(makeRequest(secondsToTicks(5)));
    trace.add(makeRequest(secondsToTicks(15)));
    trace.add(makeRequest(secondsToTicks(25)));
    Trace sliced =
        trace.slice(secondsToTicks(10), secondsToTicks(20));
    ASSERT_EQ(sliced.size(), 1u);
    EXPECT_EQ(sliced.requests()[0].arrival, secondsToTicks(5));
    EXPECT_EQ(sliced.duration(), secondsToTicks(10));
}

TEST(Trace, HighPriorityFraction)
{
    Trace trace;
    trace.add(makeRequest(1, Priority::High));
    trace.add(makeRequest(2, Priority::Low));
    trace.add(makeRequest(3, Priority::High));
    trace.add(makeRequest(4, Priority::High));
    EXPECT_DOUBLE_EQ(trace.highPriorityFraction(), 0.75);
}

TEST(Trace, CsvRoundTrip)
{
    Trace trace(secondsToTicks(60));
    Request r = makeRequest(secondsToTicks(3), Priority::High);
    r.id = 42;
    r.workloadIndex = 2;
    r.inputTokens = 4096;
    r.outputTokens = 1024;
    trace.add(r);
    trace.add(makeRequest(secondsToTicks(30)));

    std::stringstream ss;
    trace.save(ss);
    Trace loaded = Trace::load(ss);

    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.duration(), trace.duration());
    const Request &first = loaded.requests()[0];
    EXPECT_EQ(first.arrival, secondsToTicks(3));
    EXPECT_EQ(first.id, 42u);
    EXPECT_EQ(first.workloadIndex, 2u);
    EXPECT_EQ(first.priority, Priority::High);
    EXPECT_EQ(first.inputTokens, 4096);
    EXPECT_EQ(first.outputTokens, 1024);
    EXPECT_EQ(loaded.requests()[1].priority, Priority::Low);
}

TEST(TraceDeath, LoadRejectsMalformedLines)
{
    std::stringstream garbage(
        "arrival_us,id,workload,priority,input_tokens,output_tokens\n"
        "not-a-number,0,0,L,1,1\n");
    EXPECT_DEATH(Trace::load(garbage), "malformed line 2");

    std::stringstream truncated(
        "arrival_us,id,workload,priority,input_tokens,output_tokens\n"
        "100,1,0,L\n");
    EXPECT_DEATH(Trace::load(truncated), "malformed line 2");
}

TEST(Trace, LoadSkipsBlankLines)
{
    std::stringstream ss(
        "arrival_us,id,workload,priority,input_tokens,output_tokens\n"
        "\n"
        "100,1,0,H,64,8\n");
    Trace trace = Trace::load(ss);
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace.requests()[0].priority, Priority::High);
}

TEST(Trace, EmptyTraceProperties)
{
    Trace trace;
    EXPECT_TRUE(trace.empty());
    EXPECT_DOUBLE_EQ(trace.meanArrivalRate(), 0.0);
    EXPECT_DOUBLE_EQ(trace.highPriorityFraction(), 0.0);
}
