/** @file Unit tests for the seeded chaos fault-space generator. */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "faults/chaos.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

using namespace polca::faults;
using polca::sim::Rng;
using polca::sim::secondsToTicks;
using polca::sim::Tick;

namespace {

constexpr Tick kDuration = secondsToTicks(4 * 3600.0);
constexpr int kServers = 16;

ChaosConfig
richConfig()
{
    // Ceilings high enough that a draw essentially always produces
    // at least one event of several classes.
    ChaosConfig config;
    config.enabled = true;
    config.blackoutCountMax = 4;
    config.sensorFaultCountMax = 4;
    config.crashCountMax = 6;
    config.controllerCrashCountMax = 2;
    return config;
}

bool
samePlan(const FaultPlan &a, const FaultPlan &b)
{
    if (a.blackouts.size() != b.blackouts.size() ||
        a.sensorFaults.size() != b.sensorFaults.size() ||
        a.oobOutages.size() != b.oobOutages.size() ||
        a.crashes.size() != b.crashes.size() ||
        a.controllerCrashes.size() != b.controllerCrashes.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.blackouts.size(); ++i) {
        if (a.blackouts[i].start != b.blackouts[i].start ||
            a.blackouts[i].duration != b.blackouts[i].duration) {
            return false;
        }
    }
    for (std::size_t i = 0; i < a.sensorFaults.size(); ++i) {
        if (a.sensorFaults[i].start != b.sensorFaults[i].start ||
            a.sensorFaults[i].mode != b.sensorFaults[i].mode ||
            a.sensorFaults[i].biasWatts != b.sensorFaults[i].biasWatts) {
            return false;
        }
    }
    for (std::size_t i = 0; i < a.crashes.size(); ++i) {
        if (a.crashes[i].at != b.crashes[i].at ||
            a.crashes[i].serverIndex != b.crashes[i].serverIndex) {
            return false;
        }
    }
    for (std::size_t i = 0; i < a.controllerCrashes.size(); ++i) {
        if (a.controllerCrashes[i].at != b.controllerCrashes[i].at ||
            a.controllerCrashes[i].coldRestart !=
                b.controllerCrashes[i].coldRestart) {
            return false;
        }
    }
    return a.burstyLoss.enabled == b.burstyLoss.enabled;
}

} // namespace

TEST(Chaos, SameSeedDrawsIdenticalPlan)
{
    ChaosConfig config = richConfig();
    Rng a(42), b(42);
    FaultPlan planA = generateChaosPlan(config, kDuration, kServers, a);
    FaultPlan planB = generateChaosPlan(config, kDuration, kServers, b);
    EXPECT_TRUE(samePlan(planA, planB));
}

TEST(Chaos, DifferentSeedsDrawDifferentPlans)
{
    ChaosConfig config = richConfig();
    // A handful of seeds: at least one pair must differ (all-equal
    // would mean the generator ignores its rng).
    std::vector<FaultPlan> plans;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng(seed);
        plans.push_back(
            generateChaosPlan(config, kDuration, kServers, rng));
    }
    bool anyDiffer = false;
    for (std::size_t i = 1; i < plans.size(); ++i)
        anyDiffer = anyDiffer || !samePlan(plans[0], plans[i]);
    EXPECT_TRUE(anyDiffer);
}

TEST(Chaos, GeneratedPlansAreAlwaysWellFormed)
{
    // Across many seeds: every window inside the run, no degenerate
    // windows, and problems() empty (validate() would fatal).
    ChaosConfig config = richConfig();
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        Rng rng(seed);
        FaultPlan plan =
            generateChaosPlan(config, kDuration, kServers, rng);
        EXPECT_TRUE(plan.problems().empty())
            << "seed " << seed << ": " << plan.problems().front();
        for (const BlackoutWindow &w : plan.blackouts) {
            EXPECT_GT(w.duration, 0);
            EXPECT_GE(w.start, 0);
            EXPECT_LE(w.start + w.duration, kDuration);
        }
        for (const SensorFault &f : plan.sensorFaults) {
            EXPECT_GT(f.duration, 0);
            EXPECT_LE(f.start + f.duration, kDuration);
            // Bias is drawn negative: under-reporting is the lie
            // that makes POLCA think an overloaded row is safe.
            if (f.mode == SensorFaultMode::Bias) {
                EXPECT_LE(f.biasWatts, 0.0);
            }
        }
        for (const ServerCrash &c : plan.crashes) {
            EXPECT_GE(c.serverIndex, 0);
            EXPECT_LT(c.serverIndex, kServers);
            EXPECT_FALSE(c.permanent);
            EXPECT_GT(c.downtime, 0);
        }
        for (const ControllerCrash &c : plan.controllerCrashes) {
            EXPECT_GT(c.downtime, 0);
            EXPECT_LE(c.at + c.downtime, kDuration + c.downtime);
        }
    }
}

TEST(Chaos, BlackoutWindowsNeverOverlap)
{
    ChaosConfig config = richConfig();
    config.blackoutCountMax = 8;
    config.blackoutDurationMax = secondsToTicks(3600);
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        Rng rng(seed);
        FaultPlan plan =
            generateChaosPlan(config, kDuration, kServers, rng);
        std::vector<BlackoutWindow> sorted = plan.blackouts;
        std::sort(sorted.begin(), sorted.end(),
                  [](const BlackoutWindow &a, const BlackoutWindow &b) {
                      return a.start < b.start;
                  });
        for (std::size_t i = 1; i < sorted.size(); ++i) {
            EXPECT_GE(sorted[i].start,
                      sorted[i - 1].start + sorted[i - 1].duration);
        }
    }
}

TEST(Chaos, ZeroIntensityDrawsNothing)
{
    ChaosConfig config = richConfig();
    config.intensity = 0.0;
    config.burstyProbability = 0.0;
    Rng rng(9);
    FaultPlan plan = generateChaosPlan(config, kDuration, kServers, rng);
    EXPECT_TRUE(plan.empty());
}

TEST(Chaos, IntensityScalesEventCeilings)
{
    // Averaged over seeds, doubling intensity must yield clearly
    // more events (counts are uniform in [0, round(max*intensity)]).
    ChaosConfig mild = richConfig();
    mild.intensity = 0.5;
    ChaosConfig wild = richConfig();
    wild.intensity = 2.0;
    std::size_t mildEvents = 0, wildEvents = 0;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        Rng a(seed), b(seed);
        FaultPlan planMild =
            generateChaosPlan(mild, kDuration, kServers, a);
        FaultPlan planWild =
            generateChaosPlan(wild, kDuration, kServers, b);
        mildEvents += planMild.blackouts.size() + planMild.crashes.size();
        wildEvents += planWild.blackouts.size() + planWild.crashes.size();
    }
    EXPECT_GT(wildEvents, mildEvents + mildEvents / 2);
}

TEST(ChaosDeath, InvalidConfigFatal)
{
    ChaosConfig config;
    config.blackoutCountMax = -1;
    EXPECT_DEATH(config.validate(), "negative blackout");

    ChaosConfig inverted;
    inverted.blackoutDurationMin = secondsToTicks(900);
    inverted.blackoutDurationMax = secondsToTicks(100);
    EXPECT_DEATH(inverted.validate(), "not a valid range");

    ChaosConfig probability;
    probability.burstyProbability = 1.5;
    EXPECT_DEATH(probability.validate(), "outside");
}
