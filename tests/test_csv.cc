/** @file Unit tests for CSV read/write round-tripping. */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/csv.hh"

using namespace polca::analysis;

TEST(Csv, WriterBasicRows)
{
    std::ostringstream oss;
    CsvWriter w(oss);
    w.header({"a", "b"});
    w.row({1.5, 2.0});
    EXPECT_EQ(oss.str(), "a,b\n1.5,2\n");
}

TEST(Csv, EscapingQuotesAndCommas)
{
    EXPECT_EQ(escapeCsvField("plain"), "plain");
    EXPECT_EQ(escapeCsvField("with,comma"), "\"with,comma\"");
    EXPECT_EQ(escapeCsvField("with\"quote"), "\"with\"\"quote\"");
}

TEST(CsvDeath, ColumnCountMismatchPanics)
{
    std::ostringstream oss;
    CsvWriter w(oss);
    w.header({"a", "b"});
    EXPECT_DEATH(w.row({1.0}), "expected 2");
}

TEST(Csv, ParseSimple)
{
    auto rows = parseCsv("a,b\n1,2\n");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(Csv, ParseQuotedFields)
{
    auto rows = parseCsv("\"x,y\",\"he said \"\"hi\"\"\"\n");
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0][0], "x,y");
    EXPECT_EQ(rows[0][1], "he said \"hi\"");
}

TEST(Csv, ParseEmptyFields)
{
    auto rows = parseCsv("a,,c\n");
    ASSERT_EQ(rows.size(), 1u);
    ASSERT_EQ(rows[0].size(), 3u);
    EXPECT_EQ(rows[0][1], "");
}

TEST(Csv, ParseCrlf)
{
    auto rows = parseCsv("a,b\r\nc,d\r\n");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1][0], "c");
}

TEST(Csv, ParseNoTrailingNewline)
{
    auto rows = parseCsv("a,b");
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0][1], "b");
}

TEST(Csv, RoundTrip)
{
    std::ostringstream oss;
    CsvWriter w(oss);
    w.rowStrings({"x,1", "plain", "q\"q"});
    auto rows = parseCsv(oss.str());
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0][0], "x,1");
    EXPECT_EQ(rows[0][1], "plain");
    EXPECT_EQ(rows[0][2], "q\"q");
}

TEST(Csv, EscapingNewlinesAndCarriageReturns)
{
    EXPECT_EQ(escapeCsvField("two\nlines"), "\"two\nlines\"");
    EXPECT_EQ(escapeCsvField("cr\rhere"), "\"cr\rhere\"");
    EXPECT_EQ(escapeCsvField("both\r\n"), "\"both\r\n\"");
}

TEST(Csv, QuotedFieldSpansLines)
{
    auto rows = parseCsv("\"two\nlines\",b\nc,d\n");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0][0], "two\nlines");
    EXPECT_EQ(rows[0][1], "b");
    EXPECT_EQ(rows[1][0], "c");
}

TEST(Csv, RoundTripHostileFields)
{
    // Every CSV metacharacter in one row: commas, quotes, LF, CR,
    // CRLF, and leading/trailing whitespace must survive exactly.
    std::vector<std::string> fields = {
        "two\nlines",       "bare\rcr",       "crlf\r\nend",
        "mix,\"of\"\nall",  " padded ",       "",
    };
    std::ostringstream oss;
    CsvWriter w(oss);
    w.rowStrings(fields);
    auto rows = parseCsv(oss.str());
    ASSERT_EQ(rows.size(), 1u);
    ASSERT_EQ(rows[0].size(), fields.size());
    for (std::size_t i = 0; i < fields.size(); ++i)
        EXPECT_EQ(rows[0][i], fields[i]) << "field " << i;
}

TEST(Csv, RoundTripMultipleRowsWithEmbeddedNewlines)
{
    std::ostringstream oss;
    CsvWriter w(oss);
    w.header({"name", "value"});
    w.rowStrings({"a\nb", "1"});
    w.rowStrings({"c", "2"});
    auto rows = parseCsv(oss.str());
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[1][0], "a\nb");
    EXPECT_EQ(rows[2][0], "c");
}
