/** @file Unit tests for the training iteration waveform model. */

#include <gtest/gtest.h>

#include "power/gpu_power_model.hh"
#include "llm/training_model.hh"

using namespace polca::llm;
using namespace polca::sim;

namespace {

double
powerAtActivity(const polca::power::GpuActivity &activity)
{
    polca::power::GpuPowerModel gpu(polca::power::GpuSpec::a100_80gb());
    gpu.setActivity(activity);
    return gpu.powerWatts();
}

} // namespace

TEST(TrainingSpec, PaperModelsAvailable)
{
    for (const char *name : {"RoBERTa", "GPT-NeoX-20B", "Flan-T5-XXL"})
        EXPECT_NO_FATAL_FAILURE(TrainingSpec::forModel(name));
}

TEST(TrainingSpecDeath, InferenceOnlyModelFatal)
{
    EXPECT_DEATH(TrainingSpec::forModel("BLOOM-176B"),
                 "no training calibration");
}

TEST(TrainingSpec, TroughLevelsMatchFigure4)
{
    // Fig 4: sync troughs at ~75 % (RoBERTa), ~50 % (GPT-NeoX),
    // ~20 % (Flan-T5) of TDP.
    double tdp = 400.0;
    double roberta = powerAtActivity(
        TrainingSpec::forModel("RoBERTa").syncActivity);
    double neox = powerAtActivity(
        TrainingSpec::forModel("GPT-NeoX-20B").syncActivity);
    double flant5 = powerAtActivity(
        TrainingSpec::forModel("Flan-T5-XXL").syncActivity);
    EXPECT_NEAR(roberta / tdp, 0.75, 0.03);
    EXPECT_NEAR(neox / tdp, 0.50, 0.03);
    EXPECT_NEAR(flant5 / tdp, 0.20, 0.03);
}

TEST(TrainingSpec, PeaksReachTdpExceptRoberta)
{
    // Insight 1 / Fig 4: GPT-NeoX and Flan-T5 reach/exceed TDP;
    // RoBERTa stays below.
    double tdp = 400.0;
    EXPECT_GE(powerAtActivity(
                  TrainingSpec::forModel("GPT-NeoX-20B")
                      .computeActivity),
              tdp);
    EXPECT_GE(powerAtActivity(
                  TrainingSpec::forModel("Flan-T5-XXL")
                      .computeActivity),
              tdp);
    EXPECT_LT(powerAtActivity(
                  TrainingSpec::forModel("RoBERTa").computeActivity),
              tdp);
}

TEST(TrainingModel, SegmentsSumToIterationPeriod)
{
    TrainingModel m(TrainingSpec::forModel("RoBERTa"));
    EXPECT_EQ(m.iterationDuration(1.0),
              m.spec().iterationPeriod);
}

TEST(TrainingModel, RobertaIterationIsOneSecond)
{
    TrainingModel m(TrainingSpec::forModel("RoBERTa"));
    EXPECT_EQ(m.spec().iterationPeriod, secondsToTicks(1.0));
}

TEST(TrainingModel, SlowdownStretchesComputeOnly)
{
    TrainingModel m(TrainingSpec::forModel("GPT-NeoX-20B"));
    auto base = m.segments(1.0);
    auto slow = m.segments(2.0);
    ASSERT_EQ(base.size(), slow.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        if (base[i].computeBound)
            EXPECT_EQ(slow[i].duration, 2 * base[i].duration);
        else
            EXPECT_EQ(slow[i].duration, base[i].duration);
    }
}

TEST(TrainingModel, ThroughputSublinearInSlowdown)
{
    // Sync time is clock-independent, so halving the clock does not
    // halve throughput.
    TrainingModel m(TrainingSpec::forModel("GPT-NeoX-20B"));
    double relative = m.relativeThroughput(2.0);
    EXPECT_GT(relative, 0.5);
    EXPECT_LT(relative, 1.0);
}

TEST(TrainingModel, ActivityAtWalksThePhases)
{
    TrainingModel m(TrainingSpec::forModel("GPT-NeoX-20B"));
    Tick period = m.spec().iterationPeriod;
    // Early in the iteration: forward compute.
    EXPECT_DOUBLE_EQ(m.activityAt(period / 10).compute,
                     m.spec().computeActivity.compute);
    // At the very end: sync trough.
    EXPECT_DOUBLE_EQ(m.activityAt(period - 1).compute,
                     m.spec().syncActivity.compute);
    // Wraps around modulo the period.
    EXPECT_DOUBLE_EQ(m.activityAt(period + period / 10).compute,
                     m.spec().computeActivity.compute);
}

TEST(TrainingModel, MidDipSitsBetweenForwardAndBackward)
{
    TrainingModel m(TrainingSpec::forModel("RoBERTa"));
    const TrainingSpec &spec = m.spec();
    Tick period = spec.iterationPeriod;
    auto fwdEnd = static_cast<Tick>(
        static_cast<double>(period) * spec.forwardFraction);
    Tick midDip = fwdEnd + static_cast<Tick>(
        static_cast<double>(period) * spec.midDipFraction / 2);
    EXPECT_DOUBLE_EQ(m.activityAt(midDip).compute,
                     spec.midDipActivity.compute);
}

TEST(TrainingModelDeath, SlowdownBelowOnePanics)
{
    TrainingModel m(TrainingSpec::forModel("RoBERTa"));
    EXPECT_DEATH(m.segments(0.5), "below 1");
}

TEST(TrainingModel, DipShallowestForRoberta)
{
    // Fig 4: RoBERTa's communication dip is the smallest.
    double roberta =
        TrainingSpec::forModel("RoBERTa").syncActivity.compute;
    double neox =
        TrainingSpec::forModel("GPT-NeoX-20B").syncActivity.compute;
    double flant5 =
        TrainingSpec::forModel("Flan-T5-XXL").syncActivity.compute;
    EXPECT_GT(roberta, neox);
    EXPECT_GT(neox, flant5);
}
