/** @file Unit tests for TimeSeries and its window analytics. */

#include <gtest/gtest.h>

#include <tuple>

#include "sim/timeseries.hh"

using namespace polca::sim;

namespace {

TimeSeries
makeSeries(std::initializer_list<std::pair<Tick, double>> points)
{
    TimeSeries s;
    for (const auto &[t, v] : points)
        s.add(t, v);
    return s;
}

} // namespace

TEST(TimeSeries, BasicAccessors)
{
    TimeSeries s = makeSeries({{0, 1.0}, {10, 2.0}, {20, 3.0}});
    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(s.startTime(), 0);
    EXPECT_EQ(s.endTime(), 20);
    EXPECT_DOUBLE_EQ(s.maxValue(), 3.0);
    EXPECT_DOUBLE_EQ(s.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(s.meanValue(), 2.0);
}

TEST(TimeSeries, StepValueAt)
{
    TimeSeries s = makeSeries({{10, 1.0}, {20, 2.0}});
    EXPECT_DOUBLE_EQ(s.valueAt(5), 1.0);   // before first: first value
    EXPECT_DOUBLE_EQ(s.valueAt(10), 1.0);
    EXPECT_DOUBLE_EQ(s.valueAt(15), 1.0);  // step holds
    EXPECT_DOUBLE_EQ(s.valueAt(20), 2.0);
    EXPECT_DOUBLE_EQ(s.valueAt(1000), 2.0);
}

TEST(TimeSeries, EqualTimestampsAllowed)
{
    TimeSeries s = makeSeries({{10, 1.0}, {10, 2.0}});
    EXPECT_DOUBLE_EQ(s.valueAt(10), 2.0);  // later sample wins
}

TEST(TimeSeriesDeath, BackwardsTimePanics)
{
    TimeSeries s = makeSeries({{10, 1.0}});
    EXPECT_DEATH(s.add(5, 2.0), "precedes");
}

TEST(TimeSeries, TimeWeightedMean)
{
    // 1.0 for 10 ticks then 3.0 for 10 ticks -> 2.0
    TimeSeries s = makeSeries({{0, 1.0}, {10, 3.0}, {20, 3.0}});
    EXPECT_DOUBLE_EQ(s.timeWeightedMean(), 2.0);
}

TEST(TimeSeries, ResampledOnGrid)
{
    TimeSeries s = makeSeries({{0, 1.0}, {25, 2.0}, {50, 3.0}});
    TimeSeries r = s.resampled(10);
    EXPECT_EQ(r.size(), 6u);
    EXPECT_DOUBLE_EQ(r.valueAt(20), 1.0);
    EXPECT_DOUBLE_EQ(r.valueAt(30), 2.0);
    EXPECT_DOUBLE_EQ(r.valueAt(50), 3.0);
}

TEST(TimeSeries, MovingAverageSmooths)
{
    TimeSeries s;
    for (Tick t = 0; t < 10; ++t)
        s.add(t, t % 2 ? 2.0 : 0.0);  // alternating 0/2
    TimeSeries avg = s.movingAverage(4);
    // After warm-up, the 4-tick window holds two 0s and two 2s.
    EXPECT_NEAR(avg.points().back().value, 1.0, 1e-9);
}

TEST(TimeSeries, MovingAverageWindowOne)
{
    TimeSeries s = makeSeries({{0, 1.0}, {1, 5.0}});
    TimeSeries avg = s.movingAverage(1);
    EXPECT_DOUBLE_EQ(avg.points()[1].value, 5.0);
}

TEST(TimeSeries, MaxRiseWithinFindsSpike)
{
    // Rise of 5 within 2 ticks (10->15), bigger rise 9 but over 6
    // ticks.
    TimeSeries s = makeSeries(
        {{0, 10.0}, {2, 15.0}, {4, 12.0}, {6, 19.0}});
    EXPECT_DOUBLE_EQ(s.maxRiseWithin(2), 7.0);   // 12->19
    EXPECT_DOUBLE_EQ(s.maxRiseWithin(6), 9.0);   // 10->19
}

TEST(TimeSeries, MaxRiseMonotonicDecreaseIsZero)
{
    TimeSeries s = makeSeries({{0, 5.0}, {1, 4.0}, {2, 3.0}});
    EXPECT_DOUBLE_EQ(s.maxRiseWithin(10), 0.0);
}

TEST(TimeSeries, MaxRiseRespectsWindow)
{
    TimeSeries s = makeSeries({{0, 0.0}, {100, 10.0}});
    EXPECT_DOUBLE_EQ(s.maxRiseWithin(50), 0.0);
    EXPECT_DOUBLE_EQ(s.maxRiseWithin(100), 10.0);
}

TEST(TimeSeries, ScaledMultipliesValues)
{
    TimeSeries s = makeSeries({{0, 1.0}, {10, 2.0}});
    TimeSeries scaled = s.scaled(3.0);
    EXPECT_DOUBLE_EQ(scaled.valueAt(0), 3.0);
    EXPECT_DOUBLE_EQ(scaled.valueAt(10), 6.0);
}

TEST(TimeSeries, SumOnGridAddsSeries)
{
    TimeSeries a = makeSeries({{0, 1.0}, {10, 2.0}});
    TimeSeries b = makeSeries({{0, 10.0}, {5, 20.0}});
    TimeSeries sum = sumOnGrid({&a, &b}, 5);
    EXPECT_DOUBLE_EQ(sum.valueAt(0), 11.0);
    EXPECT_DOUBLE_EQ(sum.valueAt(5), 21.0);
    EXPECT_DOUBLE_EQ(sum.valueAt(10), 22.0);
}

TEST(TimeSeries, SumOnGridHandlesEmptyInputs)
{
    TimeSeries a = makeSeries({{0, 1.0}});
    TimeSeries empty;
    TimeSeries sum = sumOnGrid({&a, &empty}, 5);
    EXPECT_EQ(sum.size(), 1u);
    EXPECT_DOUBLE_EQ(sum.valueAt(0), 1.0);
}

TEST(TimeSeriesDeath, EmptyAccessorsPanic)
{
    TimeSeries s;
    EXPECT_DEATH(std::ignore = s.maxValue(), "empty series");
    EXPECT_DEATH(std::ignore = s.startTime(), "empty series");
    EXPECT_DEATH(std::ignore = s.valueAt(0), "empty series");
}
