/** @file Unit tests for the multi-row datacenter topology. */

#include <gtest/gtest.h>

#include "cluster/datacenter.hh"

using namespace polca::cluster;
using namespace polca::workload;
using namespace polca::sim;

namespace {

DatacenterConfig
smallDatacenter()
{
    DatacenterConfig config;
    config.numRows = 3;
    config.row.baseServers = 4;
    return config;
}

} // namespace

TEST(Datacenter, BuildsRequestedRows)
{
    Simulation sim;
    Datacenter dc(sim, smallDatacenter(), Rng(1));
    EXPECT_EQ(dc.numRows(), 3);
    EXPECT_EQ(dc.numServers(), 12);
}

TEST(Datacenter, BudgetsAndPowerAggregate)
{
    Simulation sim;
    Datacenter dc(sim, smallDatacenter(), Rng(1));
    EXPECT_DOUBLE_EQ(dc.provisionedWatts(), 3 * 4 * 4950.0);
    // Idle fleet: 12 idle servers.
    double perServer = dc.row(0).servers()[0]->powerWatts();
    EXPECT_NEAR(dc.powerWatts(), 12 * perServer, 1.0);
}

TEST(Datacenter, RowsHaveIndependentRandomStreams)
{
    Simulation sim;
    Datacenter dc(sim, smallDatacenter(), Rng(1));
    // Priority layouts may coincide, but dispatcher RNG streams must
    // differ; check via row object distinctness and server ids.
    EXPECT_NE(&dc.row(0), &dc.row(1));
    EXPECT_EQ(dc.row(0).numServers(), dc.row(1).numServers());
}

TEST(Datacenter, ServesTrafficPerRow)
{
    Simulation sim;
    Datacenter dc(sim, smallDatacenter(), Rng(1));

    std::vector<Trace> traces(3);
    for (int r = 0; r < 3; ++r) {
        for (int i = 0; i < 4; ++i) {
            Request req;
            req.arrival = secondsToTicks(static_cast<double>(i));
            req.id = static_cast<std::uint64_t>(r * 10 + i);
            req.priority = i % 2 ? Priority::High : Priority::Low;
            req.inputTokens = 1024;
            req.outputTokens = 64;
            traces[static_cast<std::size_t>(r)].add(req);
        }
        dc.row(r).dispatcher().injectTrace(
            traces[static_cast<std::size_t>(r)]);
    }
    sim.runFor(secondsToTicks(120));
    EXPECT_EQ(dc.completions(Priority::Low), 6u);
    EXPECT_EQ(dc.completions(Priority::High), 6u);
}

TEST(DatacenterDeath, ZeroRowsFatal)
{
    Simulation sim;
    DatacenterConfig config = smallDatacenter();
    config.numRows = 0;
    EXPECT_DEATH(Datacenter(sim, config, Rng(1)), "row count");
}
