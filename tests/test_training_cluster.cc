/** @file Tests for synchronized training-cluster power at scale. */

#include <gtest/gtest.h>

#include "cluster/training_cluster.hh"

using namespace polca::cluster;
using namespace polca::llm;
using namespace polca::sim;

namespace {

TrainingClusterOptions
shortRun(int servers = 40)
{
    TrainingClusterOptions options;
    options.numServers = servers;
    options.duration = secondsToTicks(120.0);
    options.sampleInterval = msToTicks(100);
    return options;
}

} // namespace

TEST(TrainingCluster, ProducesSamplesAtCadence)
{
    TrainingModel model(TrainingSpec::forModel("GPT-NeoX-20B"));
    auto series = trainingClusterPower(
        model, polca::power::ServerSpec::dgxA100_40gb(), shortRun());
    EXPECT_EQ(series.size(), 1201u);
}

TEST(TrainingCluster, SwingsAreLargeAndCoordinated)
{
    // Insight 2 / Table 4: synchronized training swings a large
    // fraction of cluster power within seconds.
    TrainingModel model(TrainingSpec::forModel("Flan-T5-XXL"));
    auto series = trainingClusterPower(
        model, polca::power::ServerSpec::dgxA100_40gb(), shortRun());
    double swing = (series.maxValue() - series.minValue()) /
        series.maxValue();
    EXPECT_GT(swing, 0.35);  // Flan-T5 drops to idle at sync
}

TEST(TrainingCluster, SpikeWithinSecondsMatchesTable4Scale)
{
    // Table 4: training can spike ~37.5 % of provisioned power
    // within 2 s.
    TrainingModel model(TrainingSpec::forModel("Flan-T5-XXL"));
    TrainingClusterOptions options = shortRun();
    auto series = trainingClusterPower(
        model, polca::power::ServerSpec::dgxA100_40gb(), options);
    // Training rows are provisioned for peak (~5.85 kW/server puts
    // peak utilization at Table 4's ~97 %).
    double provisioned = options.numServers * 5850.0;
    double spike = series.maxRiseWithin(secondsToTicks(2.0)) /
        provisioned;
    EXPECT_GT(spike, 0.25);
    EXPECT_LT(spike, 0.85);
}

TEST(TrainingCluster, RobertaSwingsSmallerThanFlanT5)
{
    auto run = [&](const char *name) {
        TrainingModel model(TrainingSpec::forModel(name));
        auto series = trainingClusterPower(
            model, polca::power::ServerSpec::dgxA100_40gb(),
            shortRun());
        return (series.maxValue() - series.minValue()) /
            series.maxValue();
    };
    EXPECT_LT(run("RoBERTa"), run("Flan-T5-XXL"));
}

TEST(TrainingCluster, PowerScalesWithServerCount)
{
    TrainingModel model(TrainingSpec::forModel("GPT-NeoX-20B"));
    auto small = trainingClusterPower(
        model, polca::power::ServerSpec::dgxA100_40gb(), shortRun(10));
    auto large = trainingClusterPower(
        model, polca::power::ServerSpec::dgxA100_40gb(), shortRun(40));
    EXPECT_NEAR(large.meanValue() / small.meanValue(), 4.0, 0.2);
}

TEST(TrainingCluster, DeterministicPerSeed)
{
    TrainingModel model(TrainingSpec::forModel("GPT-NeoX-20B"));
    auto a = trainingClusterPower(
        model, polca::power::ServerSpec::dgxA100_40gb(), shortRun());
    auto b = trainingClusterPower(
        model, polca::power::ServerSpec::dgxA100_40gb(), shortRun());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i += 100)
        EXPECT_DOUBLE_EQ(a.at(i).value, b.at(i).value);
}

TEST(TrainingCluster, PeakUtilizationNearProvisionedLimit)
{
    // Table 4: training peak utilization ~97 % of provisioned.
    TrainingModel model(TrainingSpec::forModel("GPT-NeoX-20B"));
    TrainingClusterOptions options = shortRun();
    auto series = trainingClusterPower(
        model, polca::power::ServerSpec::dgxA100_40gb(), options);
    double provisioned = options.numServers * 5850.0;
    double peakUtil = series.maxValue() / provisioned;
    EXPECT_GT(peakUtil, 0.90);
    EXPECT_LT(peakUtil, 1.05);
}

TEST(TrainingClusterDeath, InvalidOptionsFatal)
{
    TrainingModel model(TrainingSpec::forModel("RoBERTa"));
    TrainingClusterOptions options = shortRun(0);
    EXPECT_DEATH(trainingClusterPower(
                     model, polca::power::ServerSpec::dgxA100_40gb(),
                     options),
                 "invalid options");
}
