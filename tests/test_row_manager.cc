/** @file Unit tests for the row manager telemetry aggregator. */

#include <gtest/gtest.h>

#include "sim/simulation.hh"
#include "telemetry/row_manager.hh"

using namespace polca::telemetry;
using namespace polca::sim;

TEST(RowManager, SumsSourcesEveryInterval)
{
    Simulation sim;
    RowManager manager(sim);
    double a = 100.0, b = 200.0;
    manager.addSource([&] { return a; });
    manager.addSource([&] { return b; });
    manager.start();
    sim.runFor(secondsToTicks(2));
    EXPECT_DOUBLE_EQ(manager.latestReading(), 300.0);
    EXPECT_EQ(manager.latestReadingTime(), secondsToTicks(2));
}

TEST(RowManager, SeriesRecordsHistory)
{
    Simulation sim;
    RowManager manager(sim);
    double v = 1.0;
    manager.addSource([&] { return v; });
    manager.start();
    sim.runFor(secondsToTicks(2));
    v = 2.0;
    sim.runFor(secondsToTicks(2));
    ASSERT_EQ(manager.series().size(), 2u);
    EXPECT_DOUBLE_EQ(manager.series().points()[0].value, 1.0);
    EXPECT_DOUBLE_EQ(manager.series().points()[1].value, 2.0);
}

TEST(RowManager, RecordingCanBeDisabled)
{
    Simulation sim;
    RowManager manager(sim, secondsToTicks(2), /*recordSeries=*/false);
    manager.addSource([] { return 5.0; });
    manager.start();
    sim.runFor(secondsToTicks(10));
    EXPECT_TRUE(manager.series().empty());
    EXPECT_DOUBLE_EQ(manager.latestReading(), 5.0);
}

TEST(RowManager, ListenersSeeEveryReading)
{
    Simulation sim;
    RowManager manager(sim);
    manager.addSource([] { return 7.0; });
    int calls = 0;
    double last = 0.0;
    manager.addListener([&](Tick, double watts) {
        ++calls;
        last = watts;
    });
    manager.start();
    sim.runFor(secondsToTicks(10));
    EXPECT_EQ(calls, 5);
    EXPECT_DOUBLE_EQ(last, 7.0);
}

TEST(RowManager, ReadNowBypassesSchedule)
{
    Simulation sim;
    RowManager manager(sim);
    manager.addSource([] { return 9.0; });
    EXPECT_DOUBLE_EQ(manager.readNow(), 9.0);
    EXPECT_DOUBLE_EQ(manager.latestReading(), 0.0);  // not periodic
}

TEST(RowManager, StopHaltsReadings)
{
    Simulation sim;
    RowManager manager(sim);
    manager.addSource([] { return 1.0; });
    manager.start();
    sim.runFor(secondsToTicks(4));
    manager.stop();
    sim.runFor(secondsToTicks(10));
    EXPECT_EQ(manager.series().size(), 2u);
}

TEST(RowManager, CustomInterval)
{
    Simulation sim;
    RowManager manager(sim, secondsToTicks(5));
    manager.addSource([] { return 1.0; });
    manager.start();
    sim.runFor(secondsToTicks(20));
    EXPECT_EQ(manager.series().size(), 4u);
}

TEST(RowManager, DropoutSkipsReadingsSilently)
{
    Simulation sim;
    RowManager manager(sim);
    manager.addSource([] { return 1.0; });
    int notified = 0;
    manager.addListener([&](Tick, double) { ++notified; });
    manager.setDropoutProbability(0.5, Rng(3));
    manager.start();
    sim.runFor(secondsToTicks(2000));  // 1000 scheduled readings
    EXPECT_NEAR(static_cast<double>(manager.droppedReadings()),
                500.0, 80.0);
    EXPECT_EQ(static_cast<std::uint64_t>(notified) +
                  manager.droppedReadings(),
              1000u);
}

TEST(RowManager, StopThenStartResumesSchedule)
{
    Simulation sim;
    RowManager manager(sim);
    manager.addSource([] { return 1.0; });
    manager.start();
    EXPECT_TRUE(manager.running());
    sim.runFor(secondsToTicks(4));  // readings at 2 s and 4 s
    manager.stop();
    EXPECT_FALSE(manager.running());
    sim.runFor(secondsToTicks(10));
    ASSERT_EQ(manager.series().size(), 2u);

    manager.start();
    EXPECT_TRUE(manager.running());
    sim.runFor(secondsToTicks(4));  // readings at 16 s and 18 s
    ASSERT_EQ(manager.series().size(), 4u);
    EXPECT_EQ(manager.series().points()[2].time, secondsToTicks(16));
    EXPECT_EQ(manager.latestReadingTime(), secondsToTicks(18));
}

TEST(RowManager, FaultHookDropsReadings)
{
    Simulation sim;
    RowManager manager(sim);
    manager.addSource([] { return 4.0; });
    int notified = 0;
    manager.addListener([&](Tick, double) { ++notified; });
    manager.setFaultHook(
        [](Tick, double) { return std::optional<double>(); });
    manager.start();
    sim.runFor(secondsToTicks(10));
    EXPECT_EQ(notified, 0);
    EXPECT_EQ(manager.droppedReadings(), 5u);
    EXPECT_TRUE(manager.series().empty());
}

TEST(RowManager, FaultHookRewritesValues)
{
    Simulation sim;
    RowManager manager(sim);
    manager.addSource([] { return 4.0; });
    manager.setFaultHook(
        [](Tick, double watts) { return std::optional(watts * 2.0); });
    manager.start();
    sim.runFor(secondsToTicks(2));
    EXPECT_DOUBLE_EQ(manager.latestReading(), 8.0);
    EXPECT_EQ(manager.droppedReadings(), 0u);
}

TEST(RowManager, FaultHookRunsAfterDropoutFilter)
{
    // A reading lost to i.i.d. dropout never reaches the hook, so
    // hook-based fault statistics exclude benign dropout losses: the
    // hook fires exactly once per *delivered* reading.
    Simulation sim;
    RowManager manager(sim);
    manager.addSource([] { return 4.0; });
    int hookCalls = 0, notified = 0;
    manager.addListener([&](Tick, double) { ++notified; });
    manager.setDropoutProbability(0.5, Rng(2));
    manager.setFaultHook([&](Tick, double watts) {
        ++hookCalls;
        return std::optional(watts);
    });
    manager.start();
    sim.runFor(secondsToTicks(200));  // 100 scheduled readings
    EXPECT_EQ(hookCalls, notified);
    EXPECT_LT(notified, 100);
    EXPECT_GT(notified, 0);
    EXPECT_EQ(manager.droppedReadings(),
              100u - static_cast<std::uint64_t>(notified));
}

TEST(RowManagerDeath, BadDropoutProbabilityFatal)
{
    Simulation sim;
    RowManager manager(sim);
    EXPECT_DEATH(manager.setDropoutProbability(1.5, Rng(1)),
                 "outside");
}

TEST(RowManagerDeath, EmptySourcePanics)
{
    Simulation sim;
    RowManager manager(sim);
    EXPECT_DEATH(manager.addSource(RowManager::PowerSource{}),
                 "empty power source");
}
