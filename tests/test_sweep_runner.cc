/**
 * @file
 * SweepRunner tests: artifact-stem sanitization, per-point metrics
 * CSVs plus the summary CSV, baseline normalization, and the
 * cross-point summary table.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/sweep_runner.hh"
#include "sim/logging.hh"

namespace {

using namespace polca;

core::ExperimentConfig
tinyConfig(std::uint64_t seed)
{
    core::ExperimentConfig config;
    config.row.baseServers = 2;
    config.duration = sim::secondsToTicks(900);
    config.seed = seed;
    return config;
}

TEST(SweepRunner, ArtifactStemSanitizes)
{
    EXPECT_EQ(core::SweepRunner::artifactStem(
                  "seed=1,policy.preset=polca", 0),
              "seed-1_policy.preset-polca");
    EXPECT_EQ(core::SweepRunner::artifactStem("", 3), "point-3");
    EXPECT_EQ(core::SweepRunner::artifactStem("a b/c", 0), "a_b_c");
}

TEST(SweepRunner, RunsEveryPointAndWritesArtifacts)
{
    sim::QuietScope quiet(true);
    const std::string dir = "sweep_runner_test_artifacts";
    std::filesystem::remove_all(dir);

    std::vector<core::SweepPoint> points;
    points.push_back({"seed=1", tinyConfig(1), ""});
    points.push_back({"seed=2", tinyConfig(2), ""});

    core::SweepOptions options;
    options.artifactDir = dir;
    options.runBaseline = false;
    options.echoProgress = false;
    core::SweepRunner runner(points, options);
    const std::vector<core::SweepPointResult> &results = runner.run();

    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].label, "seed=1");
    EXPECT_EQ(results[1].label, "seed=2");
    for (const core::SweepPointResult &r : results) {
        ASSERT_FALSE(r.artifactPath.empty());
        EXPECT_TRUE(std::filesystem::exists(r.artifactPath))
            << r.artifactPath;
        // The metrics CSV has a header plus at least one metric row.
        std::ifstream in(r.artifactPath);
        std::string line;
        EXPECT_TRUE(std::getline(in, line));
        EXPECT_TRUE(std::getline(in, line)) << r.artifactPath;
        // Both points actually simulated: work was completed.
        EXPECT_GT(r.result.lowCompletions + r.result.highCompletions,
                  0u);
    }
    EXPECT_NE(results[0].artifactPath, results[1].artifactPath);
    EXPECT_TRUE(std::filesystem::exists(
        std::filesystem::path(dir) / "summary.csv"));

    // summary.csv: header + one line per point.
    std::ifstream summary(std::filesystem::path(dir) /
                          "summary.csv");
    int lines = 0;
    std::string line;
    while (std::getline(summary, line))
        ++lines;
    EXPECT_EQ(lines, 3);

    analysis::Table table = runner.summaryTable();
    EXPECT_EQ(table.numRows(), 2u);
    EXPECT_EQ(table.at(0, 0), "seed=1");
    EXPECT_EQ(table.at(1, 0), "seed=2");

    std::filesystem::remove_all(dir);
}

TEST(SweepRunner, NoArtifactDirWritesNothing)
{
    sim::QuietScope quiet(true);
    std::vector<core::SweepPoint> points;
    points.push_back({"", tinyConfig(1), ""});
    core::SweepOptions options;
    options.runBaseline = false;
    options.echoProgress = false;
    core::SweepRunner runner(points, options);
    const std::vector<core::SweepPointResult> &results = runner.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].artifactPath.empty());
}

TEST(SweepRunner, BaselineNormalization)
{
    sim::QuietScope quiet(true);
    std::vector<core::SweepPoint> points;
    points.push_back({"seed=1", tinyConfig(1), ""});
    core::SweepOptions options;
    options.runBaseline = true;
    options.echoProgress = false;
    core::SweepRunner runner(points, options);
    const std::vector<core::SweepPointResult> &results = runner.run();
    ASSERT_EQ(results.size(), 1u);
    const core::SweepPointResult &r = results[0];
    EXPECT_GT(r.baseline.lowCompletions + r.baseline.highCompletions,
              0u);
    // Normalized latencies are ratios against the baseline run.
    EXPECT_GT(r.lowNorm.p99, 0.0);
    EXPECT_GT(r.highNorm.p99, 0.0);
}

} // namespace
