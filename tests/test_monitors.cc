/** @file Unit tests for DCGM/IPMI monitor simulations. */

#include <gtest/gtest.h>

#include "power/server_model.hh"
#include "sim/simulation.hh"
#include "telemetry/interface_registry.hh"
#include "telemetry/monitors.hh"

using namespace polca::telemetry;
using namespace polca::power;
using namespace polca::sim;

TEST(InterfaceRegistry, Table1Contents)
{
    auto interfaces = monitoringInterfaces();
    ASSERT_EQ(interfaces.size(), 5u);
    EXPECT_EQ(interfaces[1].mechanism, "DCGM");
    EXPECT_EQ(interfaces[1].path, "IB");
    EXPECT_EQ(interfaces[1].typicalInterval, msToTicks(100));
    EXPECT_EQ(interfaces[2].mechanism, "SMBPBI");
    EXPECT_EQ(interfaces[2].path, "OOB");
    EXPECT_EQ(interfaces[4].mechanism, "Row manager");
    EXPECT_EQ(interfaces[4].typicalInterval, secondsToTicks(2));
}

TEST(InterfaceRegistry, Table2Parameters)
{
    RowParameters params = paperRowParameters();
    EXPECT_EQ(params.numServers, 40);
    EXPECT_EQ(params.powerTelemetryDelay, secondsToTicks(2));
    EXPECT_EQ(params.powerBrakeLatency, secondsToTicks(5));
    EXPECT_EQ(params.oobControlLatency, secondsToTicks(40));
    EXPECT_EQ(params.upsCappingDeadline, secondsToTicks(10));
    // The OOB cap path misses the UPS deadline — the design tension
    // POLCA resolves (Section 6.2).
    EXPECT_GT(params.oobControlLatency, params.upsCappingDeadline);
    EXPECT_LT(params.powerBrakeLatency, params.upsCappingDeadline);
}

TEST(DcgmMonitor, SamplesEvery100ms)
{
    Simulation sim;
    ServerModel server(ServerSpec::dgxA100_80gb());
    DcgmMonitor dcgm(sim, server, Rng(1));
    dcgm.start();
    sim.runFor(secondsToTicks(1));
    EXPECT_EQ(dcgm.gpuPowerSeries().size(), 10u);
}

TEST(DcgmMonitor, ReadingsTrackGpuPower)
{
    Simulation sim;
    ServerModel server(ServerSpec::dgxA100_80gb());
    server.setActivityAll({0.5, 0.5});
    DcgmMonitor dcgm(sim, server, Rng(1));
    dcgm.start();
    sim.runFor(secondsToTicks(1));
    EXPECT_NEAR(dcgm.latestGpuPower(), server.gpuPowerWatts(), 10.0);
}

TEST(DcgmMonitor, StopHaltsSampling)
{
    Simulation sim;
    ServerModel server(ServerSpec::dgxA100_80gb());
    DcgmMonitor dcgm(sim, server, Rng(1));
    dcgm.start();
    sim.runFor(secondsToTicks(0.5));
    dcgm.stop();
    EXPECT_FALSE(dcgm.running());
    std::size_t samples = dcgm.gpuPowerSeries().size();
    sim.runFor(secondsToTicks(1));
    EXPECT_EQ(dcgm.gpuPowerSeries().size(), samples);
}

TEST(IpmiMonitor, SeesDcgmOverheadWhileRunning)
{
    // Section 3.4: DCGM adds ~5-10 W to IPMI server readings.
    Simulation sim;
    ServerModel server(ServerSpec::dgxA100_80gb());
    DcgmMonitor dcgm(sim, server, Rng(1));

    IpmiMonitor::Options quietIpmi;
    quietIpmi.noiseStddevWatts = 0.0;
    IpmiMonitor ipmi(sim, server, Rng(2), quietIpmi);
    ipmi.attachDcgm(&dcgm);
    ipmi.start();

    sim.runFor(secondsToTicks(4));
    double withoutDcgm = ipmi.latestServerPower();

    dcgm.start();
    sim.runFor(secondsToTicks(4));
    double withDcgm = ipmi.latestServerPower();

    EXPECT_NEAR(withDcgm - withoutDcgm, dcgm.overheadWatts(), 0.5);
    EXPECT_GE(dcgm.overheadWatts(), 5.0);
    EXPECT_LE(dcgm.overheadWatts(), 10.0);
}

TEST(IpmiMonitor, SamplesSlowerThanDcgm)
{
    Simulation sim;
    ServerModel server(ServerSpec::dgxA100_80gb());
    DcgmMonitor dcgm(sim, server, Rng(1));
    IpmiMonitor ipmi(sim, server, Rng(2));
    dcgm.start();
    ipmi.start();
    sim.runFor(secondsToTicks(9));
    EXPECT_GT(dcgm.gpuPowerSeries().size(),
              5 * ipmi.serverPowerSeries().size());
}
