/** @file Unit tests for the diurnal utilization model. */

#include <gtest/gtest.h>

#include "workload/diurnal.hh"

using namespace polca::workload;
using namespace polca::sim;

namespace {

constexpr double day = 24.0 * 3600.0;

DiurnalModel::Params
quietParams()
{
    DiurnalModel::Params p;
    p.noiseAmplitude = 0.0;
    return p;
}

} // namespace

TEST(Diurnal, PeakAtConfiguredHour)
{
    DiurnalModel model(quietParams(), Rng(1));
    double peak = model.deterministicAt(secondsToTicks(14 * 3600));
    double trough = model.deterministicAt(secondsToTicks(2 * 3600));
    EXPECT_GT(peak, trough);
    DiurnalModel::Params p = quietParams();
    EXPECT_NEAR(peak, p.baseUtilization + p.dailyAmplitude, 1e-9);
}

TEST(Diurnal, DailyPeriodicity)
{
    DiurnalModel model(quietParams(), Rng(1));
    double d0 = model.deterministicAt(secondsToTicks(10 * 3600));
    double d1 = model.deterministicAt(secondsToTicks(day + 10 * 3600));
    EXPECT_NEAR(d0, d1, 1e-9);
}

TEST(Diurnal, WeekendDip)
{
    DiurnalModel model(quietParams(), Rng(1));
    // Day 0 = Monday; day 5 = Saturday.
    double weekday = model.deterministicAt(
        secondsToTicks(2 * day + 12 * 3600));
    double weekend = model.deterministicAt(
        secondsToTicks(5 * day + 12 * 3600));
    EXPECT_NEAR(weekday - weekend, quietParams().weekendDip, 1e-9);
}

TEST(Diurnal, ClampsToConfiguredRange)
{
    DiurnalModel::Params p;
    p.baseUtilization = 0.95;
    p.dailyAmplitude = 0.30;   // would exceed 1.0
    p.noiseAmplitude = 0.0;
    DiurnalModel model(p, Rng(1));
    for (int h = 0; h < 24; ++h) {
        double u = model.deterministicAt(secondsToTicks(h * 3600.0));
        EXPECT_LE(u, p.maxUtilization);
        EXPECT_GE(u, p.minUtilization);
    }
}

TEST(Diurnal, NoiseIsDeterministicPerSeed)
{
    DiurnalModel a(DiurnalModel::Params{}, Rng(5));
    DiurnalModel b(DiurnalModel::Params{}, Rng(5));
    for (int i = 0; i < 100; ++i) {
        Tick t = secondsToTicks(i * 60.0);
        ASSERT_DOUBLE_EQ(a.utilizationAt(t), b.utilizationAt(t));
    }
}

TEST(Diurnal, NoiseHasConfiguredScale)
{
    DiurnalModel::Params p;
    p.noiseAmplitude = 0.05;
    DiurnalModel model(p, Rng(7));
    double sumSq = 0.0;
    int n = 5000;
    for (int i = 0; i < n; ++i) {
        // Sample far apart so the AR(1) state decorrelates.
        Tick t = secondsToTicks(i * 3600.0);
        double noise =
            model.utilizationAt(t) - model.deterministicAt(t);
        sumSq += noise * noise;
    }
    double stddev = std::sqrt(sumSq / n);
    // Clamping shaves a bit off the tails.
    EXPECT_NEAR(stddev, 0.05, 0.02);
}

TEST(Diurnal, NoiseIsCorrelatedOverShortLags)
{
    DiurnalModel::Params p;
    p.noiseAmplitude = 0.05;
    p.noiseCorrSeconds = 600.0;
    DiurnalModel model(p, Rng(9));
    // Consecutive 1 s samples should be nearly identical.
    double prev = model.utilizationAt(secondsToTicks(1000.0));
    double next = model.utilizationAt(secondsToTicks(1001.0));
    EXPECT_NEAR(next, prev, 0.01);
}

TEST(DiurnalDeath, BackwardsQueryPanics)
{
    DiurnalModel model(DiurnalModel::Params{}, Rng(1));
    model.utilizationAt(secondsToTicks(100.0));
    EXPECT_DEATH(model.utilizationAt(secondsToTicks(50.0)),
                 "precedes");
}
