/**
 * @file
 * obs::IntervalStats: delta-vs-sample semantics, reconciliation of
 * interval columns against the cumulative registry dump, dropped
 * duplicate snapshots, and deterministic CSV output.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/csv.hh"
#include "obs/interval_stats.hh"
#include "obs/metrics.hh"

namespace {

using namespace polca;

double
columnSum(const std::vector<std::vector<std::string>> &rows,
          const std::string &column)
{
    std::size_t col = rows[0].size();
    for (std::size_t c = 0; c < rows[0].size(); ++c) {
        if (rows[0][c] == column)
            col = c;
    }
    EXPECT_LT(col, rows[0].size()) << "missing column " << column;
    double sum = 0.0;
    for (std::size_t r = 1; r < rows.size(); ++r)
        sum += std::strtod(rows[r][col].c_str(), nullptr);
    return sum;
}

TEST(IntervalStats, CountersAreDeltasGaugesAreSamples)
{
    obs::MetricsRegistry registry;
    obs::Counter &c = registry.counter("work.done");
    obs::Gauge &g = registry.gauge("level");
    obs::IntervalStats stats;

    c += 5;
    g.set(1.0);
    stats.snapshot(1.0, registry);
    c += 7;
    g.set(2.5);
    stats.snapshot(2.0, registry);

    std::ostringstream os;
    stats.writeCsv(os);
    auto rows = analysis::parseCsv(os.str());
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0][0], "time_s");

    // Counter column: per-interval deltas (5 then 7), not 5 then 12.
    EXPECT_DOUBLE_EQ(columnSum(rows, "work.done"), 12.0);
    std::size_t cCol = 0, gCol = 0;
    for (std::size_t i = 0; i < rows[0].size(); ++i) {
        if (rows[0][i] == "work.done")
            cCol = i;
        if (rows[0][i] == "level")
            gCol = i;
    }
    EXPECT_EQ(rows[1][cCol], "5");
    EXPECT_EQ(rows[2][cCol], "7");
    // Gauge column: point samples.
    EXPECT_EQ(rows[1][gCol], "1.000000");
    EXPECT_EQ(rows[2][gCol], "2.500000");
}

TEST(IntervalStats, DeltaColumnsReconcileWithCumulativeDump)
{
    obs::MetricsRegistry registry;
    obs::Counter &c = registry.counter("events");
    obs::LogHistogram &h =
        registry.logHistogram("lat", 1e-3, 10.0, 0.01);
    obs::IntervalStats stats;

    // Uneven activity across intervals, including an idle one.
    for (int interval = 0; interval < 4; ++interval) {
        int work = interval == 2 ? 0 : (interval + 1) * 3;
        for (int i = 0; i < work; ++i) {
            ++c;
            h.add(0.5);
        }
        stats.snapshot(static_cast<double>(interval + 1), registry);
    }

    std::ostringstream os;
    stats.writeCsv(os);
    auto rows = analysis::parseCsv(os.str());
    // Column sums reconcile exactly with the cumulative registry:
    // the registry is never reset by snapshots.
    EXPECT_DOUBLE_EQ(columnSum(rows, "events"),
                     static_cast<double>(c.value()));
    EXPECT_DOUBLE_EQ(columnSum(rows, "lat::count"),
                     static_cast<double>(h.count()));
    EXPECT_EQ(c.value(), 21u);  // 3 + 6 + 0 + 12
}

TEST(IntervalStats, DuplicateTimeSnapshotDropped)
{
    obs::MetricsRegistry registry;
    registry.counter("c") += 1;
    obs::IntervalStats stats;
    stats.snapshot(5.0, registry);
    registry.counter("c") += 1;
    // The end-of-run partial snapshot lands on the last periodic one
    // when the cadence divides the duration — dropped, not doubled.
    stats.snapshot(5.0, registry);
    EXPECT_EQ(stats.rows(), 1u);
    EXPECT_DOUBLE_EQ(stats.lastTimeS(), 5.0);
}

TEST(IntervalStatsDeathTest, TimeBackwardsPanics)
{
    obs::MetricsRegistry registry;
    obs::IntervalStats stats;
    stats.snapshot(2.0, registry);
    EXPECT_DEATH(stats.snapshot(1.0, registry), "precedes");
}

TEST(IntervalStats, MetricRegisteredMidRunBackfillsZero)
{
    obs::MetricsRegistry registry;
    registry.counter("early") += 1;
    obs::IntervalStats stats;
    stats.snapshot(1.0, registry);
    registry.counter("late") += 4;
    stats.snapshot(2.0, registry);

    std::ostringstream os;
    stats.writeCsv(os);
    auto rows = analysis::parseCsv(os.str());
    ASSERT_EQ(rows.size(), 3u);
    std::size_t lateCol = 0;
    for (std::size_t i = 0; i < rows[0].size(); ++i) {
        if (rows[0][i] == "late")
            lateCol = i;
    }
    ASSERT_GT(lateCol, 0u);
    EXPECT_EQ(rows[1][lateCol], "0");  // before it existed
    EXPECT_EQ(rows[2][lateCol], "4");
}

TEST(IntervalStats, WriteCsvDeterministic)
{
    auto build = [] {
        obs::MetricsRegistry registry;
        obs::IntervalStats stats;
        registry.counter("b.two") += 2;
        registry.counter("a.one") += 1;
        registry.gauge("g").set(0.25);
        stats.snapshot(1.0, registry);
        registry.counter("a.one") += 3;
        stats.snapshot(2.0, registry);
        std::ostringstream os;
        stats.writeCsv(os);
        return os.str();
    };
    std::string first = build();
    EXPECT_EQ(first, build());
    // Header is name-sorted after time_s.
    auto rows = analysis::parseCsv(first);
    ASSERT_GE(rows[0].size(), 4u);
    EXPECT_EQ(rows[0][0], "time_s");
    EXPECT_EQ(rows[0][1], "a.one");
    EXPECT_EQ(rows[0][2], "b.two");
}

} // namespace
