/** @file Unit tests for the Table 6 workload mix and SLOs. */

#include <gtest/gtest.h>

#include "workload/workload_spec.hh"

using namespace polca::workload;

TEST(WorkloadSpec, Table6Mix)
{
    auto mix = paperWorkloadMix();
    ASSERT_EQ(mix.size(), 3u);

    EXPECT_EQ(mix[0].name, "Summarize");
    EXPECT_EQ(mix[0].promptMin, 2048);
    EXPECT_EQ(mix[0].promptMax, 8192);
    EXPECT_EQ(mix[0].outputMin, 256);
    EXPECT_EQ(mix[0].outputMax, 512);
    EXPECT_DOUBLE_EQ(mix[0].trafficFraction, 0.25);
    EXPECT_DOUBLE_EQ(mix[0].highPriorityFraction, 0.0);

    EXPECT_EQ(mix[1].name, "Search");
    EXPECT_DOUBLE_EQ(mix[1].highPriorityFraction, 1.0);

    EXPECT_EQ(mix[2].name, "Chat");
    EXPECT_DOUBLE_EQ(mix[2].trafficFraction, 0.50);
    EXPECT_DOUBLE_EQ(mix[2].highPriorityFraction, 0.5);
}

TEST(WorkloadSpec, TrafficFractionsSumToOne)
{
    double total = 0.0;
    for (const auto &w : paperWorkloadMix())
        total += w.trafficFraction;
    EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(WorkloadSpec, OverallHighPriorityShareIsHalf)
{
    // Search (25 %, all HP) + half of Chat (50 %) = 50 % HP traffic.
    double hp = 0.0;
    for (const auto &w : paperWorkloadMix())
        hp += w.trafficFraction * w.highPriorityFraction;
    EXPECT_DOUBLE_EQ(hp, 0.5);
}

TEST(WorkloadSpec, SummarizeHasLongestPrompts)
{
    auto mix = paperWorkloadMix();
    EXPECT_GT(mix[0].promptMax, mix[1].promptMax);
    EXPECT_GE(mix[0].promptMax, mix[2].promptMax);
}

TEST(SloSpec, Table6Slos)
{
    SloSpec slos = paperSlos();
    EXPECT_DOUBLE_EQ(slos.hpP50Limit, 1.01);
    EXPECT_DOUBLE_EQ(slos.hpP99Limit, 1.05);
    EXPECT_DOUBLE_EQ(slos.lpP50Limit, 1.05);
    EXPECT_DOUBLE_EQ(slos.lpP99Limit, 1.50);
    EXPECT_EQ(slos.maxPowerBrakes, 0);
}

TEST(Priority, ToString)
{
    EXPECT_STREQ(toString(Priority::Low), "Low");
    EXPECT_STREQ(toString(Priority::High), "High");
}
