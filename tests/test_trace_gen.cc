/** @file Unit tests for production/synthetic trace generation. */

#include <gtest/gtest.h>

#include "analysis/error_metrics.hh"
#include "llm/phase_model.hh"
#include "workload/trace_gen.hh"

using namespace polca::workload;
using namespace polca::sim;

namespace {

TraceGenOptions
shortOptions()
{
    TraceGenOptions options;
    options.duration = secondsToTicks(2 * 3600.0);
    options.numServers = 40;
    options.serviceSecondsPerRequest = 50.0;
    options.seed = 42;
    return options;
}

} // namespace

TEST(TraceGen, DeterministicPerSeed)
{
    TraceGenerator gen;
    Trace a = gen.generate(shortOptions());
    Trace b = gen.generate(shortOptions());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.requests()[i].arrival, b.requests()[i].arrival);
        EXPECT_EQ(a.requests()[i].inputTokens,
                  b.requests()[i].inputTokens);
    }
}

TEST(TraceGen, DifferentSeedsDiffer)
{
    TraceGenerator gen;
    TraceGenOptions options = shortOptions();
    Trace a = gen.generate(options);
    options.seed = 43;
    Trace b = gen.generate(options);
    EXPECT_NE(a.size(), b.size());
}

TEST(TraceGen, ArrivalRateMatchesOfferedLoad)
{
    // Over a full day the mean rate tracks the base utilization.
    TraceGenerator gen;
    TraceGenOptions options = shortOptions();
    options.duration = secondsToTicks(24 * 3600.0);
    Trace trace = gen.generate(options);
    double expected = 0.78 * 40 / 50.0;
    EXPECT_NEAR(trace.meanArrivalRate(), expected, expected * 0.10);
}

TEST(TraceGen, RateScalesWithServerCount)
{
    TraceGenerator gen;
    TraceGenOptions options = shortOptions();
    Trace base = gen.generate(options);
    options.numServers = 52;  // +30 %
    Trace scaled = gen.generate(options);
    double ratio = scaled.meanArrivalRate() / base.meanArrivalRate();
    EXPECT_NEAR(ratio, 1.3, 0.08);
}

TEST(TraceGen, MixFractionsRespected)
{
    TraceGenerator gen;
    Trace trace = gen.generate(shortOptions());
    ASSERT_GT(trace.size(), 1000u);
    std::vector<int> counts(3, 0);
    for (const auto &r : trace.requests())
        ++counts.at(r.workloadIndex);
    double n = static_cast<double>(trace.size());
    EXPECT_NEAR(counts[0] / n, 0.25, 0.03);  // Summarize
    EXPECT_NEAR(counts[1] / n, 0.25, 0.03);  // Search
    EXPECT_NEAR(counts[2] / n, 0.50, 0.03);  // Chat
}

TEST(TraceGen, PrioritiesFollowTable6)
{
    TraceGenerator gen;
    Trace trace = gen.generate(shortOptions());
    EXPECT_NEAR(trace.highPriorityFraction(), 0.5, 0.03);
    for (const auto &r : trace.requests()) {
        if (r.workloadIndex == 0) {
            EXPECT_EQ(r.priority, Priority::Low);     // Summarize
        } else if (r.workloadIndex == 1) {
            EXPECT_EQ(r.priority, Priority::High);    // Search
        }
    }
}

TEST(TraceGen, SizesWithinWorkloadRanges)
{
    TraceGenerator gen;
    auto mix = gen.mix();
    Trace trace = gen.generate(shortOptions());
    for (const auto &r : trace.requests()) {
        const WorkloadSpec &w = mix.at(r.workloadIndex);
        ASSERT_GE(r.inputTokens, w.promptMin);
        ASSERT_LE(r.inputTokens, w.promptMax);
        ASSERT_GE(r.outputTokens, w.outputMin);
        ASSERT_LE(r.outputTokens, w.outputMax);
    }
}

TEST(TraceGen, RegenerateMatchesBinnedRate)
{
    TraceGenerator gen;
    Trace production = gen.generate(shortOptions());
    Tick bin = secondsToTicks(60.0);
    Trace synthetic = gen.regenerate(production, bin, 99);

    auto refBins = production.binnedArrivals(bin);
    auto synBins = synthetic.binnedArrivals(bin);
    ASSERT_EQ(refBins.size(), synBins.size());
    for (std::size_t i = 0; i < refBins.size(); ++i)
        EXPECT_EQ(refBins[i], synBins[i]);
}

TEST(TraceGen, RegenerateRedrawsSizes)
{
    TraceGenerator gen;
    Trace production = gen.generate(shortOptions());
    Trace synthetic =
        gen.regenerate(production, secondsToTicks(60.0), 99);
    ASSERT_EQ(production.size(), synthetic.size());
    int identical = 0;
    for (std::size_t i = 0; i < production.size(); ++i) {
        identical += production.requests()[i].inputTokens ==
            synthetic.requests()[i].inputTokens;
    }
    // Sizes are redrawn, so near-total agreement would be a bug.
    EXPECT_LT(identical, static_cast<int>(production.size() / 10));
}

TEST(TraceGen, RegeneratePreservesOfferedTokenLoad)
{
    // The synthetic trace must offer the same token volume within a
    // few percent (what makes the MAPE <= 3 % possible).
    TraceGenerator gen;
    Trace production = gen.generate(shortOptions());
    Trace synthetic =
        gen.regenerate(production, secondsToTicks(60.0), 99);

    auto tokenSum = [](const Trace &t) {
        double total = 0.0;
        for (const auto &r : t.requests())
            total += r.outputTokens;
        return total;
    };
    double ratio = tokenSum(synthetic) / tokenSum(production);
    EXPECT_NEAR(ratio, 1.0, 0.05);
}

TEST(TraceGen, ExpectedServiceSecondsIsBloomScale)
{
    TraceGenerator gen;
    polca::llm::ModelCatalog catalog;
    polca::llm::PhaseModel phases(catalog.byName("BLOOM-176B"));
    double seconds = gen.expectedServiceSeconds(phases);
    // Mean mix output ~1 K tokens at ~48 ms/token plus prompt.
    EXPECT_GT(seconds, 30.0);
    EXPECT_LT(seconds, 80.0);
}

TEST(TraceGenDeath, InvalidOptionsFatal)
{
    TraceGenerator gen;
    TraceGenOptions options = shortOptions();
    options.numServers = 0;
    EXPECT_DEATH(gen.generate(options), "invalid options");
}

TEST(TraceGenDeath, BadMixFatal)
{
    std::vector<WorkloadSpec> mix = paperWorkloadMix();
    mix.pop_back();
    EXPECT_DEATH(TraceGenerator{mix}, "sum to");
}
