/** @file Unit tests for the DGX server power model. */

#include <gtest/gtest.h>

#include <numeric>

#include "power/server_model.hh"

using namespace polca::power;

TEST(ServerSpec, ProvisionedBreakdownSumsToRated)
{
    ServerSpec spec = ServerSpec::dgxA100_80gb();
    double total = 0.0;
    for (const auto &[name, watts] : spec.provisionedBreakdown())
        total += watts;
    EXPECT_NEAR(total, spec.ratedPowerWatts, 1e-9);
}

TEST(ServerSpec, GpusAreAboutHalfOfProvisionedPower)
{
    // Figure 3: ~50 % of provisioned power goes to GPUs.
    ServerSpec spec = ServerSpec::dgxA100_80gb();
    double fraction = spec.provisionedGpuWatts() / spec.ratedPowerWatts;
    EXPECT_NEAR(fraction, 0.50, 0.03);
}

TEST(ServerSpec, FansAreAboutQuarterOfProvisionedPower)
{
    // Figure 3 / Section 5: fans are nearly 25 % of server power.
    ServerSpec spec = ServerSpec::dgxA100_80gb();
    EXPECT_NEAR(spec.provisionedFansWatts / spec.ratedPowerWatts, 0.25,
                0.02);
}

TEST(ServerModel, IdlePower)
{
    ServerModel server(ServerSpec::dgxA100_80gb());
    double expected = server.spec().hostIdleWatts +
        8 * server.spec().gpu.idleWatts;
    EXPECT_DOUBLE_EQ(server.powerWatts(), expected);
}

TEST(ServerModel, PeakStaysUnderRatedPower)
{
    // Section 5: observed peak (~5.7 kW) never hits the 6.5 kW
    // rating — the derating opportunity.
    ServerModel server(ServerSpec::dgxA100_80gb());
    // Worst observed phase: a saturated prompt burst.
    server.setActivityAll({1.1, 0.55});
    EXPECT_LT(server.powerWatts(), server.spec().ratedPowerWatts);
    EXPECT_GT(server.powerWatts(), 5400.0);
    EXPECT_LT(server.powerWatts(), 5900.0);
}

TEST(ServerModel, GpusAreMajorityOfLoadedPower)
{
    // Insight 8: GPUs ~60 % of server power under load.
    ServerModel server(ServerSpec::dgxA100_80gb());
    server.setActivityAll({1.0, 0.6});
    double fraction = server.gpuPowerWatts() / server.powerWatts();
    EXPECT_GT(fraction, 0.55);
    EXPECT_LT(fraction, 0.70);
}

TEST(ServerModel, HostPowerTracksGpuPower)
{
    ServerModel server(ServerSpec::dgxA100_80gb());
    EXPECT_DOUBLE_EQ(server.hostPowerWatts(),
                     server.spec().hostIdleWatts);
    server.setActivityAll({1.0, 0.5});
    double gpuDynamic = server.gpuPowerWatts() -
        8 * server.spec().gpu.idleWatts;
    EXPECT_DOUBLE_EQ(server.hostPowerWatts(),
                     server.spec().hostIdleWatts +
                         server.spec().hostGpuTrackingFactor *
                             gpuDynamic);
}

TEST(ServerModel, FrequencyCappingReclaimsHostPowerToo)
{
    // Fans/VR losses follow GPU draw, so locking clocks reduces
    // host power as well — part of why row-level capping works.
    ServerModel server(ServerSpec::dgxA100_80gb());
    server.setActivityAll({0.55, 0.9});  // token-phase-like
    double before = server.hostPowerWatts();
    server.lockClockAll(1110.0);
    EXPECT_LT(server.hostPowerWatts(), before);
}

TEST(ServerModel, FleetControlsReachAllGpus)
{
    ServerModel server(ServerSpec::dgxA100_80gb());
    server.lockClockAll(1200.0);
    for (std::size_t i = 0; i < server.numGpus(); ++i)
        EXPECT_DOUBLE_EQ(server.gpu(i).effectiveClockMhz(), 1200.0);
    server.unlockClockAll();
    for (std::size_t i = 0; i < server.numGpus(); ++i)
        EXPECT_FALSE(server.gpu(i).clockLocked());
    server.setPowerBrakeAll(true);
    for (std::size_t i = 0; i < server.numGpus(); ++i)
        EXPECT_TRUE(server.gpu(i).powerBrake());
}

TEST(ServerModel, WorstSlowdownPicksSlowestGpu)
{
    ServerModel server(ServerSpec::dgxA100_80gb());
    server.gpu(3).lockClock(705.0);
    EXPECT_NEAR(server.worstSlowdownFactor(1.0), 2.0, 1e-9);
}

TEST(ServerModel, PerGpuActivityIndependent)
{
    ServerModel server(ServerSpec::dgxA100_80gb());
    server.gpu(0).setActivity({1.0, 0.5});
    double p = server.gpuPowerWatts();
    double idle = server.spec().gpu.idleWatts;
    EXPECT_GT(p, 7 * idle + 300.0);
    EXPECT_LT(p, 7 * idle + 500.0);
}

TEST(ServerModel, H100SpecsLoad)
{
    ServerModel server(ServerSpec::dgxH100());
    EXPECT_EQ(server.numGpus(), 8u);
    EXPECT_DOUBLE_EQ(server.spec().ratedPowerWatts, 10200.0);
}

TEST(ServerModel, CapControllersStepAcrossGpus)
{
    ServerModel server(ServerSpec::dgxA100_80gb());
    server.setActivityAll({1.05, 0.5});
    server.setPowerCapAll(325.0);
    for (int i = 0; i < 200; ++i)
        server.stepCapControllers();
    for (std::size_t i = 0; i < server.numGpus(); ++i)
        EXPECT_LE(server.gpu(i).powerWatts(), 330.0);
    server.clearPowerCapAll();
    EXPECT_GT(server.gpu(0).powerWatts(), 400.0);
}
