/** @file Unit tests for the Row topology object. */

#include <gtest/gtest.h>

#include "cluster/row.hh"

using namespace polca::cluster;
using namespace polca::workload;
using namespace polca::sim;

namespace {

RowConfig
smallRow(int base = 4, double added = 0.0)
{
    RowConfig config;
    config.baseServers = base;
    config.addedServerFraction = added;
    return config;
}

} // namespace

TEST(Row, DeploysBasePlusAddedServers)
{
    Simulation sim;
    Row row(sim, smallRow(10, 0.30), Rng(1));
    EXPECT_EQ(row.numServers(), 13);
}

TEST(Row, ProvisionedBudgetUsesBaseServersOnly)
{
    // Oversubscription adds servers under the *same* budget.
    Simulation sim;
    Row row(sim, smallRow(10, 0.30), Rng(1));
    EXPECT_DOUBLE_EQ(row.provisionedWatts(), 10 * 4950.0);
}

TEST(Row, PoolSplitFollowsLpFraction)
{
    Simulation sim;
    RowConfig config = smallRow(10);
    config.lpServerFraction = 0.5;
    Row row(sim, config, Rng(1));
    EXPECT_EQ(row.pool(Priority::Low).size(), 5u);
    EXPECT_EQ(row.pool(Priority::High).size(), 5u);
}

TEST(Row, IdleRowPowerIsSumOfIdleServers)
{
    Simulation sim;
    Row row(sim, smallRow(4), Rng(1));
    double perServer = row.servers()[0]->powerWatts();
    EXPECT_NEAR(row.powerWatts(), 4 * perServer, 1.0);
}

TEST(Row, RowManagerSeesAllServers)
{
    Simulation sim;
    RowConfig config = smallRow(4);
    config.recordPowerSeries = true;
    Row row(sim, config, Rng(1));
    sim.runFor(secondsToTicks(2));
    EXPECT_NEAR(row.rowManager().latestReading(), row.powerWatts(),
                1.0);
}

TEST(Row, TelemetryIntervalRespected)
{
    Simulation sim;
    RowConfig config = smallRow(2);
    config.recordPowerSeries = true;
    config.telemetryInterval = secondsToTicks(5);
    Row row(sim, config, Rng(1));
    sim.runFor(secondsToTicks(20));
    EXPECT_EQ(row.rowManager().series().size(), 4u);
}

TEST(Row, ServesTrafficEndToEnd)
{
    Simulation sim;
    Row row(sim, smallRow(4), Rng(1));

    Trace trace;
    for (int i = 0; i < 8; ++i) {
        Request r;
        r.arrival = secondsToTicks(static_cast<double>(i));
        r.id = static_cast<std::uint64_t>(i);
        r.priority = i % 2 ? Priority::High : Priority::Low;
        r.inputTokens = 1024;
        r.outputTokens = 64;
        trace.add(r);
    }
    row.dispatcher().injectTrace(trace);
    sim.runFor(secondsToTicks(120));
    EXPECT_EQ(row.dispatcher().completions(Priority::Low), 4u);
    EXPECT_EQ(row.dispatcher().completions(Priority::High), 4u);
}

TEST(Row, ModelResolvedFromCatalog)
{
    Simulation sim;
    RowConfig config = smallRow(2);
    config.modelName = "Llama2-70B";
    Row row(sim, config, Rng(1));
    EXPECT_EQ(row.model().name, "Llama2-70B");
    EXPECT_EQ(row.model().inferenceGpus, 4);
}

TEST(RowDeath, UnknownModelFatal)
{
    Simulation sim;
    RowConfig config = smallRow(2);
    config.modelName = "GPT-5";
    EXPECT_DEATH(Row(sim, config, Rng(1)), "unknown model");
}
