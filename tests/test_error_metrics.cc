/** @file Unit tests for MAPE/RMSE error metrics. */

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/error_metrics.hh"

using namespace polca::analysis;
using polca::sim::TimeSeries;
using polca::sim::Tick;

TEST(Mape, IdenticalVectorsZero)
{
    std::vector<double> v{1, 2, 3};
    EXPECT_DOUBLE_EQ(mape(v, v), 0.0);
}

TEST(Mape, KnownValue)
{
    std::vector<double> ref{100, 200};
    std::vector<double> cand{110, 180};
    // |10|/100 = 0.10, |20|/200 = 0.10 -> 0.10
    EXPECT_NEAR(mape(ref, cand), 0.10, 1e-12);
}

TEST(Mape, SkipsNonPositiveReference)
{
    std::vector<double> ref{0.0, 100.0};
    std::vector<double> cand{5.0, 110.0};
    EXPECT_NEAR(mape(ref, cand), 0.10, 1e-12);
}

TEST(Mape, AllSkippedGivesZero)
{
    std::vector<double> ref{0.0, -1.0};
    std::vector<double> cand{5.0, 5.0};
    EXPECT_DOUBLE_EQ(mape(ref, cand), 0.0);
}

TEST(MapeDeath, LengthMismatchPanics)
{
    std::vector<double> a{1.0};
    std::vector<double> b{1.0, 2.0};
    EXPECT_DEATH(mape(a, b), "length mismatch");
}

TEST(Mape, TimeSeriesOverlapGrid)
{
    TimeSeries ref, cand;
    for (Tick t = 0; t <= 100; t += 10) {
        ref.add(t, 100.0);
        cand.add(t, 105.0);
    }
    EXPECT_NEAR(mape(ref, cand, 10), 0.05, 1e-12);
}

TEST(Mape, TimeSeriesDifferentExtents)
{
    TimeSeries ref, cand;
    for (Tick t = 0; t <= 100; t += 10)
        ref.add(t, 100.0);
    for (Tick t = 50; t <= 200; t += 10)
        cand.add(t, 110.0);
    // Overlap [50, 100].
    EXPECT_NEAR(mape(ref, cand, 10), 0.10, 1e-12);
}

TEST(MapeDeath, NonOverlappingSeriesPanics)
{
    TimeSeries ref, cand;
    ref.add(0, 1.0);
    ref.add(10, 1.0);
    cand.add(100, 1.0);
    cand.add(110, 1.0);
    EXPECT_DEATH(mape(ref, cand, 5), "do not overlap");
}

TEST(Rmse, KnownValue)
{
    std::vector<double> ref{0.0, 0.0};
    std::vector<double> cand{3.0, 4.0};
    EXPECT_NEAR(rmse(ref, cand), std::sqrt(12.5), 1e-12);
}

TEST(Rmse, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(rmse({}, {}), 0.0);
}
