/** @file Unit tests for priority-aware server allocation. */

#include <gtest/gtest.h>

#include "cluster/allocator.hh"

using namespace polca::cluster;
using polca::workload::Priority;

namespace {

int
countLow(const std::vector<Priority> &v)
{
    int n = 0;
    for (Priority p : v)
        n += p == Priority::Low;
    return n;
}

} // namespace

TEST(Allocator, ExactCounts)
{
    auto v = allocatePriorities(40, 0.5);
    EXPECT_EQ(v.size(), 40u);
    EXPECT_EQ(countLow(v), 20);
}

TEST(Allocator, RoundsFractionalCounts)
{
    EXPECT_EQ(countLow(allocatePriorities(10, 0.25)), 3);
    EXPECT_EQ(countLow(allocatePriorities(10, 0.33)), 3);
}

TEST(Allocator, AllLowOrAllHigh)
{
    auto low = allocatePriorities(8, 1.0);
    auto high = allocatePriorities(8, 0.0);
    EXPECT_EQ(countLow(low), 8);
    EXPECT_EQ(countLow(high), 0);
}

TEST(Allocator, InterleavesAcrossRackSlices)
{
    // Every contiguous 4-server slice of a 50:50 allocation must
    // contain both priorities (the "good mix per row" requirement).
    auto v = allocatePriorities(40, 0.5);
    for (std::size_t start = 0; start + 4 <= v.size(); ++start) {
        int low = 0;
        for (std::size_t i = start; i < start + 4; ++i)
            low += v[i] == Priority::Low;
        EXPECT_GE(low, 1) << "slice at " << start;
        EXPECT_LE(low, 3) << "slice at " << start;
    }
}

TEST(Allocator, SparseLowStillSpread)
{
    auto v = allocatePriorities(40, 0.1);
    EXPECT_EQ(countLow(v), 4);
    // The 4 LP servers should not be adjacent.
    for (std::size_t i = 0; i + 1 < v.size(); ++i) {
        EXPECT_FALSE(v[i] == Priority::Low &&
                     v[i + 1] == Priority::Low);
    }
}

TEST(AllocatorDeath, InvalidArgumentsFatal)
{
    EXPECT_DEATH(allocatePriorities(0, 0.5), "non-positive");
    EXPECT_DEATH(allocatePriorities(10, 1.5), "outside");
}
