/** @file Tests for workload-aware policy derivation (Section 6.7). */

#include <gtest/gtest.h>

#include "core/workload_aware.hh"
#include "core/oversub_experiment.hh"
#include "power/gpu_power_model.hh"

using namespace polca;
using namespace polca::core;
using polca::workload::Priority;

namespace {

const llm::ModelCatalog &
catalog()
{
    static llm::ModelCatalog instance;
    return instance;
}

} // namespace

TEST(WorkloadAware, FrequencyInvertsSlowdownModel)
{
    // Round trip: lock at the derived frequency, measure the token
    // slowdown via the GPU model -> equals the target.
    const llm::ModelSpec &bloom = catalog().byName("BLOOM-176B");
    power::GpuSpec spec = power::GpuSpec::a100_80gb();
    double f = frequencyForSlowdown(bloom, spec, 0.08);

    power::GpuPowerModel gpu(spec);
    gpu.lockClock(f);
    double slowdown =
        gpu.slowdownFactor(bloom.tokenComputeBoundFraction) - 1.0;
    EXPECT_NEAR(slowdown, 0.08, 1e-9);
}

TEST(WorkloadAware, InsensitiveModelsGetDeeperLocks)
{
    // GPT-NeoX (cf 0.05) can be locked far deeper than BLOOM
    // (cf 0.22) for the same slowdown budget.
    power::GpuSpec spec = power::GpuSpec::a100_80gb();
    double neox = frequencyForSlowdown(
        catalog().byName("GPT-NeoX-20B"), spec, 0.03);
    double bloom = frequencyForSlowdown(
        catalog().byName("BLOOM-176B"), spec, 0.03);
    EXPECT_LT(neox, bloom);
    EXPECT_LT(neox, 1000.0);
    EXPECT_GT(bloom, 1150.0);
}

TEST(WorkloadAware, ClampsToLegalClockRange)
{
    power::GpuSpec spec = power::GpuSpec::a100_80gb();
    // Tiny target -> near max clock.
    double shallow = frequencyForSlowdown(
        catalog().byName("BLOOM-176B"), spec, 1e-6);
    EXPECT_NEAR(shallow, spec.maxSmClockMhz, 1.0);
    // Huge target -> clamped to min clock.
    double deep = frequencyForSlowdown(
        catalog().byName("BLOOM-176B"), spec, 10.0);
    EXPECT_DOUBLE_EQ(deep, spec.minSmClockMhz);
}

TEST(WorkloadAware, PolicyValidatesAndOrdersLocks)
{
    PolicyConfig policy =
        workloadAwarePolicy(catalog().byName("BLOOM-176B"));
    ASSERT_EQ(policy.rules.size(), 3u);
    // T2's LP lock at least as deep as T1's.
    EXPECT_LE(policy.rules[1].lockMhz, policy.rules[0].lockMhz);
    // HP lock is the shallowest cap on HP.
    EXPECT_GT(policy.rules[2].lockMhz, policy.rules[1].lockMhz);
    EXPECT_DOUBLE_EQ(policy.rules[0].capFraction, 0.80);
    EXPECT_DOUBLE_EQ(policy.rules[1].capFraction, 0.89);
}

TEST(WorkloadAware, BloomPolicyNearPaperConstants)
{
    // The paper's Table 5 frequencies were chosen for BLOOM-class
    // sensitivity; the derived policy should land nearby.
    PolicyConfig policy =
        workloadAwarePolicy(catalog().byName("BLOOM-176B"));
    EXPECT_NEAR(policy.rules[0].lockMhz, 1275.0, 75.0);  // T1
    EXPECT_NEAR(policy.rules[1].lockMhz, 1110.0, 100.0); // T2-LP
    EXPECT_NEAR(policy.rules[2].lockMhz, 1305.0, 75.0);  // T2-HP
}

TEST(WorkloadAware, EndToEndMeetsSlosAt30Percent)
{
    ExperimentConfig config;
    config.row.baseServers = 20;
    config.row.addedServerFraction = 0.30;
    config.duration = sim::secondsToTicks(2 * 3600.0);
    config.seed = 7;
    config.policy = workloadAwarePolicy(
        llm::ModelCatalog().byName("BLOOM-176B"));

    ExperimentResult managed = runOversubExperiment(config);
    ExperimentResult baseline =
        runOversubExperiment(unthrottledBaseline(config));
    NormalizedLatency low =
        normalizeLatency(managed.low, baseline.low);
    NormalizedLatency high =
        normalizeLatency(managed.high, baseline.high);
    EXPECT_EQ(managed.powerBrakeEvents, 0u);
    EXPECT_TRUE(meetsSlos(low, high, managed.powerBrakeEvents,
                          workload::paperSlos()));
}

TEST(WorkloadAwareDeath, NonPositiveTargetFatal)
{
    EXPECT_DEATH(frequencyForSlowdown(
                     catalog().byName("BLOOM-176B"),
                     power::GpuSpec::a100_80gb(), 0.0),
                 "non-positive target");
}
