/** @file Unit tests for the LLM catalog (Table 3). */

#include <gtest/gtest.h>

#include "llm/model_spec.hh"

using namespace polca::llm;

TEST(ModelCatalog, ContainsTable3Models)
{
    ModelCatalog catalog;
    for (const char *name :
         {"RoBERTa", "Llama2-13B", "Llama2-70B", "GPT-NeoX-20B",
          "OPT-30B", "BLOOM-176B", "Flan-T5-XXL"}) {
        EXPECT_TRUE(catalog.contains(name)) << name;
    }
    EXPECT_FALSE(catalog.contains("GPT-4"));
}

TEST(ModelCatalog, Table3GpuCounts)
{
    ModelCatalog catalog;
    EXPECT_EQ(catalog.byName("RoBERTa").inferenceGpus, 1);
    EXPECT_EQ(catalog.byName("Llama2-13B").inferenceGpus, 1);
    EXPECT_EQ(catalog.byName("Llama2-70B").inferenceGpus, 4);
    EXPECT_EQ(catalog.byName("GPT-NeoX-20B").inferenceGpus, 2);
    EXPECT_EQ(catalog.byName("OPT-30B").inferenceGpus, 4);
    EXPECT_EQ(catalog.byName("BLOOM-176B").inferenceGpus, 8);
    EXPECT_EQ(catalog.byName("Flan-T5-XXL").inferenceGpus, 1);
}

TEST(ModelCatalog, Table3Architectures)
{
    ModelCatalog catalog;
    EXPECT_EQ(catalog.byName("RoBERTa").architecture,
              Architecture::Encoder);
    EXPECT_EQ(catalog.byName("BLOOM-176B").architecture,
              Architecture::Decoder);
    EXPECT_EQ(catalog.byName("Flan-T5-XXL").architecture,
              Architecture::EncoderDecoder);
}

TEST(ModelCatalog, TrainableFlagsMatchPaper)
{
    // Table 3 stars Llama2/OPT/BLOOM as inference-only.
    ModelCatalog catalog;
    EXPECT_TRUE(catalog.byName("RoBERTa").trainable);
    EXPECT_TRUE(catalog.byName("GPT-NeoX-20B").trainable);
    EXPECT_TRUE(catalog.byName("Flan-T5-XXL").trainable);
    EXPECT_FALSE(catalog.byName("Llama2-70B").trainable);
    EXPECT_FALSE(catalog.byName("OPT-30B").trainable);
    EXPECT_FALSE(catalog.byName("BLOOM-176B").trainable);
}

TEST(ModelCatalogDeath, UnknownModelFatal)
{
    ModelCatalog catalog;
    EXPECT_DEATH(catalog.byName("nonexistent"), "unknown model");
}

TEST(ModelCatalog, InferenceSubsetIsTheFigure6Five)
{
    ModelCatalog catalog;
    auto names = catalog.inferenceModelNames();
    EXPECT_EQ(names.size(), 5u);
    for (const auto &name : names)
        EXPECT_TRUE(catalog.contains(name));
}

TEST(ModelCatalog, TrainingSubsetIsTheFigure4Three)
{
    ModelCatalog catalog;
    auto names = catalog.trainingModelNames();
    EXPECT_EQ(names.size(), 3u);
    for (const auto &name : names)
        EXPECT_TRUE(catalog.byName(name).trainable) << name;
}

TEST(ModelSpec, TokenTimeGrowsWithModelSize)
{
    ModelCatalog catalog;
    EXPECT_LT(catalog.byName("Llama2-13B").tokenTimeMs,
              catalog.byName("Llama2-70B").tokenTimeMs);
    EXPECT_LT(catalog.byName("Llama2-70B").tokenTimeMs,
              catalog.byName("BLOOM-176B").tokenTimeMs);
}

TEST(ModelSpec, FrequencySensitivityOrdering)
{
    // Fig 10a: GPT-NeoX nearly insensitive, BLOOM most sensitive.
    ModelCatalog catalog;
    double neox =
        catalog.byName("GPT-NeoX-20B").tokenComputeBoundFraction;
    double bloom =
        catalog.byName("BLOOM-176B").tokenComputeBoundFraction;
    EXPECT_LT(neox, 0.10);
    EXPECT_GT(bloom, 0.20);
}

TEST(ModelSpec, DatatypeGpuRequirements)
{
    // Section 4.2: Llama2-70B needs 4 GPUs at FP32, 2 at FP16/INT8;
    // all Llama2-13B variants fit on one GPU.
    ModelCatalog catalog;
    const ModelSpec &llama70 = catalog.byName("Llama2-70B");
    EXPECT_EQ(llama70.gpusForDatatype(Datatype::FP32), 4);
    EXPECT_EQ(llama70.gpusForDatatype(Datatype::FP16), 4);  // Table 3
    EXPECT_EQ(llama70.gpusForDatatype(Datatype::INT8), 2);

    const ModelSpec &llama13 = catalog.byName("Llama2-13B");
    EXPECT_EQ(llama13.gpusForDatatype(Datatype::FP32), 1);
    EXPECT_EQ(llama13.gpusForDatatype(Datatype::FP16), 1);
    EXPECT_EQ(llama13.gpusForDatatype(Datatype::INT8), 1);
}

TEST(ModelSpec, DatatypeFactors)
{
    // FP16 is fastest and peaks highest (tensor cores).
    EXPECT_LT(ModelSpec::datatypeLatencyFactor(Datatype::FP16),
              ModelSpec::datatypeLatencyFactor(Datatype::INT8));
    EXPECT_LT(ModelSpec::datatypeLatencyFactor(Datatype::INT8),
              ModelSpec::datatypeLatencyFactor(Datatype::FP32));
    EXPECT_GT(ModelSpec::datatypePowerFactor(Datatype::FP16),
              ModelSpec::datatypePowerFactor(Datatype::FP32));
}

TEST(ModelSpec, EnumToStringCoverage)
{
    EXPECT_STREQ(toString(Architecture::Encoder), "Encoder");
    EXPECT_STREQ(toString(Architecture::Decoder), "Decoder");
    EXPECT_STREQ(toString(Architecture::EncoderDecoder),
                 "Encoder-Decoder");
    EXPECT_STREQ(toString(Datatype::FP32), "FP32");
    EXPECT_STREQ(toString(Datatype::FP16), "FP16");
    EXPECT_STREQ(toString(Datatype::INT8), "INT8");
}
