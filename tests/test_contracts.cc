/**
 * @file
 * The contract layer: macro semantics, failure-report format
 * (including the simulated-time prefix), the pluggable handler, and
 * the NDEBUG behavior of POLCA_DCHECK.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/contracts.hh"
#include "sim/simulation.hh"
#include "sim/types.hh"

using namespace polca;
using core::ContractError;
using core::ScopedContractHandler;
using core::throwingContractHandler;

TEST(Contracts, PassingConditionsAreSilent)
{
    ScopedContractHandler guard(&throwingContractHandler);
    int evaluations = 0;
    POLCA_ASSERT(++evaluations == 1, "assert should pass");
    POLCA_CHECK(++evaluations == 2, "check should pass");
    EXPECT_EQ(evaluations, 2);
}

TEST(Contracts, ThrowingHandlerRoundTrip)
{
    ScopedContractHandler guard(&throwingContractHandler);
    EXPECT_THROW(POLCA_CHECK(false, "nope"), ContractError);
    // The layer stays usable after a failure (the handler threw, the
    // process lives): a passing contract is still silent.
    POLCA_CHECK(true, "fine");
}

TEST(Contracts, ReportCarriesAllFields)
{
    ScopedContractHandler guard(&throwingContractHandler);
    std::string report;
    try {
        int limit = 3;
        POLCA_CHECK(limit > 10, "limit=", limit, " too small");
    } catch (const ContractError &err) {
        report = err.what();
    }
    EXPECT_NE(report.find("POLCA_CHECK failed"), std::string::npos)
        << report;
    EXPECT_NE(report.find("limit > 10"), std::string::npos) << report;
    EXPECT_NE(report.find("limit=3 too small"), std::string::npos)
        << report;
    EXPECT_NE(report.find("test_contracts.cc"), std::string::npos)
        << report;
    // No Simulation is alive here, so no time prefix.
    EXPECT_EQ(report.find("[t="), std::string::npos) << report;
}

TEST(Contracts, AssertAndDcheckNameTheirMacro)
{
    ScopedContractHandler guard(&throwingContractHandler);
    std::string report;
    try {
        POLCA_ASSERT(false, "broken invariant");
    } catch (const ContractError &err) {
        report = err.what();
    }
    EXPECT_NE(report.find("POLCA_ASSERT failed"), std::string::npos)
        << report;
}

TEST(Contracts, MessageIsOptional)
{
    ScopedContractHandler guard(&throwingContractHandler);
    std::string report;
    try {
        POLCA_CHECK(1 + 1 == 3);
    } catch (const ContractError &err) {
        report = err.what();
    }
    EXPECT_NE(report.find("1 + 1 == 3"), std::string::npos) << report;
}

TEST(Contracts, ReportIncludesSimTimeWhileSimulationRuns)
{
    ScopedContractHandler guard(&throwingContractHandler);
    sim::Simulation simulation(1);
    std::string report;
    simulation.queue().post(sim::secondsToTicks(12.0), [&] {
        try {
            POLCA_ASSERT(false, "mid-run failure");
        } catch (const ContractError &err) {
            report = err.what();
        }
    });
    simulation.runUntil(sim::secondsToTicks(20.0));
    EXPECT_NE(report.find("[t=12.000000s]"), std::string::npos)
        << report;
    EXPECT_NE(report.find("POLCA_ASSERT failed"), std::string::npos)
        << report;
}

TEST(Contracts, ScopedHandlerRestoresPrevious)
{
    ScopedContractHandler outer(&throwingContractHandler);
    {
        // Inner scope installs a distinct handler, then restores the
        // throwing one on exit.
        static bool innerCalled;
        innerCalled = false;
        ScopedContractHandler inner(
            +[](const core::ContractViolation &violation) {
                innerCalled = true;
                throw ContractError(violation);
            });
        EXPECT_THROW(POLCA_CHECK(false), ContractError);
        EXPECT_TRUE(innerCalled);
    }
    // Back to throwingContractHandler: failures still throw (and the
    // inner handler is gone).
    EXPECT_THROW(POLCA_CHECK(false), ContractError);
}

TEST(Contracts, DcheckFollowsNdebug)
{
    ScopedContractHandler guard(&throwingContractHandler);
    int evaluations = 0;
#ifdef NDEBUG
    // Compiled out: the condition must not even be evaluated, and a
    // false condition must not fail.
    POLCA_DCHECK(++evaluations > 0, "never evaluated");
    EXPECT_EQ(evaluations, 0);
    POLCA_DCHECK(false, "compiled out");
#else
    // Debug build: behaves exactly like POLCA_ASSERT.
    POLCA_DCHECK(++evaluations > 0, "evaluated");
    EXPECT_EQ(evaluations, 1);
    EXPECT_THROW(POLCA_DCHECK(false, "fires in debug"), ContractError);
#endif
}

TEST(ContractsDeathTest, DefaultHandlerAbortsWithReport)
{
    // No scoped handler: the default aborting handler prints the
    // report to stderr and aborts.
    EXPECT_DEATH(POLCA_CHECK(false, "fatal by default"),
                 "POLCA_CHECK failed.*fatal by default");
}
