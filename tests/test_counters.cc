/** @file Tests for GPU counter synthesis (Figure 7 structure). */

#include <gtest/gtest.h>

#include "analysis/correlation.hh"
#include "llm/counters.hh"

using namespace polca::llm;
using namespace polca::analysis;
using polca::sim::Rng;

namespace {

/** Collect n samples of each counter into a correlation matrix. */
CorrelationMatrix
collect(Phase phase, int n, std::uint64_t seed)
{
    ModelCatalog catalog;
    CounterSynthesizer synth(catalog.byName("BLOOM-176B"), Rng(seed));
    InferenceConfig config;
    config.inputTokens = 2048;
    config.outputTokens = 256;

    auto names = counterNames();
    std::vector<std::vector<double>> columns(names.size());
    for (int i = 0; i < n; ++i) {
        auto values = counterValues(synth.sample(phase, config));
        for (std::size_t c = 0; c < values.size(); ++c)
            columns[c].push_back(values[c]);
    }
    CorrelationMatrix m;
    for (std::size_t c = 0; c < names.size(); ++c)
        m.addSignal(names[c], std::move(columns[c]));
    return m;
}

std::size_t
indexOf(const CorrelationMatrix &m, const std::string &name)
{
    for (std::size_t i = 0; i < m.names().size(); ++i) {
        if (m.names()[i] == name)
            return i;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
}

} // namespace

TEST(Counters, NamesAndValuesAlign)
{
    EXPECT_EQ(counterNames().size(), 7u);
    CounterSample sample{};
    EXPECT_EQ(counterValues(sample).size(), counterNames().size());
}

TEST(Counters, SamplesAreDeterministicPerSeed)
{
    ModelCatalog catalog;
    InferenceConfig config;
    CounterSynthesizer a(catalog.byName("BLOOM-176B"), Rng(5));
    CounterSynthesizer b(catalog.byName("BLOOM-176B"), Rng(5));
    for (int i = 0; i < 10; ++i) {
        auto sa = a.sample(Phase::Prompt, config);
        auto sb = b.sample(Phase::Prompt, config);
        EXPECT_DOUBLE_EQ(sa.powerWatts, sb.powerWatts);
        EXPECT_DOUBLE_EQ(sa.smActivity, sb.smActivity);
    }
}

TEST(Counters, PromptPowerCorrelatesWithSmAndTensor)
{
    // Fig 7 left: power moves with SM/tensor activity.
    auto m = collect(Phase::Prompt, 3000, 11);
    std::size_t power = indexOf(m, "Power");
    std::size_t sm = indexOf(m, "SM Activity");
    std::size_t tensor = indexOf(m, "Tensor Activity");
    EXPECT_GT(m.at(power, sm), 0.6);
    EXPECT_GT(m.at(power, tensor), 0.6);
}

TEST(Counters, PromptPowerAnticorrelatesWithMemory)
{
    // Fig 7 left: memory activity moves against power.
    auto m = collect(Phase::Prompt, 3000, 13);
    EXPECT_LT(m.at(indexOf(m, "Power"),
                   indexOf(m, "Memory Util")), -0.6);
}

TEST(Counters, TokenCountersLargelyUncorrelated)
{
    // Fig 7 right: token-phase counters fluctuate independently.
    auto m = collect(Phase::Token, 3000, 17);
    std::size_t power = indexOf(m, "Power");
    for (const char *name :
         {"SM Activity", "Tensor Activity", "Memory Util"}) {
        EXPECT_LT(std::abs(m.at(power, indexOf(m, name))), 0.15)
            << name;
    }
}

TEST(Counters, TokenPowerLowerThanPromptPower)
{
    ModelCatalog catalog;
    CounterSynthesizer synth(catalog.byName("BLOOM-176B"), Rng(19));
    InferenceConfig config;
    config.inputTokens = 4096;
    double promptMean = 0.0, tokenMean = 0.0;
    for (int i = 0; i < 500; ++i) {
        promptMean += synth.sample(Phase::Prompt, config).powerWatts;
        tokenMean += synth.sample(Phase::Token, config).powerWatts;
    }
    EXPECT_GT(promptMean, tokenMean * 1.2);
}

TEST(Counters, UtilizationsStayInUnitRange)
{
    ModelCatalog catalog;
    CounterSynthesizer synth(catalog.byName("BLOOM-176B"), Rng(23));
    InferenceConfig config;
    for (int i = 0; i < 2000; ++i) {
        for (Phase phase : {Phase::Prompt, Phase::Token}) {
            auto s = synth.sample(phase, config);
            for (double v :
                 {s.gpuUtilization, s.memoryUtilization, s.smActivity,
                  s.tensorActivity, s.pcieTxRate, s.pcieRxRate}) {
                ASSERT_GE(v, 0.0);
                ASSERT_LE(v, 1.0);
            }
        }
    }
}
