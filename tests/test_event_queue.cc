/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace polca::sim;

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue queue;
    EXPECT_EQ(queue.now(), 0);
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_FALSE(queue.runOne());
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(30, [&] { order.push_back(3); });
    queue.schedule(10, [&] { order.push_back(1); });
    queue.schedule(20, [&] { order.push_back(2); });
    queue.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(queue.now(), 30);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(5, [&] { order.push_back(1); });
    queue.schedule(5, [&] { order.push_back(2); });
    queue.schedule(5, [&] { order.push_back(3); });
    queue.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, NowAdvancesToEventTime)
{
    EventQueue queue;
    Tick seen = -1;
    queue.schedule(42, [&] { seen = queue.now(); });
    queue.runOne();
    EXPECT_EQ(seen, 42);
    EXPECT_EQ(queue.now(), 42);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(10, [&] { ++fired; });
    queue.schedule(20, [&] { ++fired; });
    queue.schedule(21, [&] { ++fired; });
    EXPECT_EQ(queue.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(queue.now(), 20);
    EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenDrained)
{
    EventQueue queue;
    queue.runUntil(1000);
    EXPECT_EQ(queue.now(), 1000);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue queue;
    Tick seen = -1;
    queue.schedule(100, [&] {
        queue.scheduleAfter(50, [&] { seen = queue.now(); });
    });
    queue.runAll();
    EXPECT_EQ(seen, 150);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue queue;
    bool fired = false;
    auto handle = queue.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(handle.pending());
    queue.cancel(handle);
    EXPECT_FALSE(handle.pending());
    queue.runAll();
    EXPECT_FALSE(fired);
    EXPECT_EQ(queue.numProcessed(), 0u);
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue queue;
    auto handle = queue.schedule(10, [] {});
    queue.runAll();
    EXPECT_FALSE(handle.pending());
    queue.cancel(handle);  // must not crash or corrupt counters
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, DefaultHandleIsInert)
{
    EventQueue queue;
    EventQueue::Handle handle;
    EXPECT_FALSE(handle.pending());
    queue.cancel(handle);  // no-op
}

TEST(EventQueue, CancelledEventsDoNotCountAsLive)
{
    EventQueue queue;
    auto a = queue.schedule(10, [] {});
    queue.schedule(20, [] {});
    EXPECT_EQ(queue.size(), 2u);
    queue.cancel(a);
    EXPECT_EQ(queue.size(), 1u);
    EXPECT_FALSE(queue.empty());
}

TEST(EventQueue, ReentrantSchedulingDuringCallback)
{
    EventQueue queue;
    std::vector<Tick> times;
    queue.schedule(10, [&] {
        times.push_back(queue.now());
        queue.schedule(15, [&] { times.push_back(queue.now()); });
        queue.schedule(12, [&] { times.push_back(queue.now()); });
    });
    queue.runAll();
    EXPECT_EQ(times, (std::vector<Tick>{10, 12, 15}));
}

TEST(EventQueue, SchedulingAtCurrentTimeDuringCallbackFiresSameRun)
{
    EventQueue queue;
    int count = 0;
    queue.schedule(10, [&] {
        ++count;
        if (count < 3)
            queue.schedule(queue.now(), [&] { ++count; });
    });
    queue.runAll();
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, NumProcessedCounts)
{
    EventQueue queue;
    for (int i = 0; i < 5; ++i)
        queue.schedule(i, [] {});
    queue.runAll();
    EXPECT_EQ(queue.numProcessed(), 5u);
}

TEST(EventQueueDeath, SchedulingInPastPanics)
{
    EventQueue queue;
    queue.schedule(10, [] {});
    queue.runAll();
    EXPECT_DEATH(queue.schedule(5, [] {}), "in the past");
}

TEST(EventQueueDeath, NegativeDelayPanics)
{
    EventQueue queue;
    EXPECT_DEATH(queue.scheduleAfter(-1, [] {}), "negative delay");
}

TEST(EventQueueDeath, EmptyCallbackPanics)
{
    EventQueue queue;
    EXPECT_DEATH(queue.schedule(1, EventQueue::Callback{}),
                 "empty callback");
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue queue;
    Tick last = -1;
    bool ordered = true;
    for (int i = 0; i < 10000; ++i) {
        Tick when = (i * 7919) % 1000;  // scrambled times
        queue.schedule(when, [&, when] {
            if (when < last)
                ordered = false;
            last = when;
        });
    }
    queue.runAll();
    EXPECT_TRUE(ordered);
    EXPECT_EQ(queue.numProcessed(), 10000u);
}
