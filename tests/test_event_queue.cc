/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "sim/event_queue.hh"

using namespace polca::sim;

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue queue;
    EXPECT_EQ(queue.now(), 0);
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_FALSE(queue.runOne());
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    std::ignore = queue.schedule(30, [&] { order.push_back(3); });
    std::ignore = queue.schedule(10, [&] { order.push_back(1); });
    std::ignore = queue.schedule(20, [&] { order.push_back(2); });
    queue.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(queue.now(), 30);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue queue;
    std::vector<int> order;
    std::ignore = queue.schedule(5, [&] { order.push_back(1); });
    std::ignore = queue.schedule(5, [&] { order.push_back(2); });
    std::ignore = queue.schedule(5, [&] { order.push_back(3); });
    queue.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, NowAdvancesToEventTime)
{
    EventQueue queue;
    Tick seen = -1;
    std::ignore = queue.schedule(42, [&] { seen = queue.now(); });
    queue.runOne();
    EXPECT_EQ(seen, 42);
    EXPECT_EQ(queue.now(), 42);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue queue;
    int fired = 0;
    std::ignore = queue.schedule(10, [&] { ++fired; });
    std::ignore = queue.schedule(20, [&] { ++fired; });
    std::ignore = queue.schedule(21, [&] { ++fired; });
    EXPECT_EQ(queue.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(queue.now(), 20);
    EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenDrained)
{
    EventQueue queue;
    queue.runUntil(1000);
    EXPECT_EQ(queue.now(), 1000);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue queue;
    Tick seen = -1;
    std::ignore = queue.schedule(100, [&] {
        std::ignore = queue.scheduleAfter(50, [&] { seen = queue.now(); });
    });
    queue.runAll();
    EXPECT_EQ(seen, 150);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue queue;
    bool fired = false;
    auto handle = queue.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(handle.pending());
    queue.cancel(handle);
    EXPECT_FALSE(handle.pending());
    queue.runAll();
    EXPECT_FALSE(fired);
    EXPECT_EQ(queue.numProcessed(), 0u);
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue queue;
    auto handle = queue.schedule(10, [] {});
    queue.runAll();
    EXPECT_FALSE(handle.pending());
    queue.cancel(handle);  // must not crash or corrupt counters
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, DefaultHandleIsInert)
{
    EventQueue queue;
    EventQueue::Handle handle;
    EXPECT_FALSE(handle.pending());
    queue.cancel(handle);  // no-op
}

TEST(EventQueue, CancelledEventsDoNotCountAsLive)
{
    EventQueue queue;
    auto a = queue.schedule(10, [] {});
    std::ignore = queue.schedule(20, [] {});
    EXPECT_EQ(queue.size(), 2u);
    queue.cancel(a);
    EXPECT_EQ(queue.size(), 1u);
    EXPECT_FALSE(queue.empty());
}

TEST(EventQueue, ReentrantSchedulingDuringCallback)
{
    EventQueue queue;
    std::vector<Tick> times;
    std::ignore = queue.schedule(10, [&] {
        times.push_back(queue.now());
        std::ignore = queue.schedule(15, [&] { times.push_back(queue.now()); });
        std::ignore = queue.schedule(12, [&] { times.push_back(queue.now()); });
    });
    queue.runAll();
    EXPECT_EQ(times, (std::vector<Tick>{10, 12, 15}));
}

TEST(EventQueue, SchedulingAtCurrentTimeDuringCallbackFiresSameRun)
{
    EventQueue queue;
    int count = 0;
    std::ignore = queue.schedule(10, [&] {
        ++count;
        if (count < 3)
            std::ignore = queue.schedule(queue.now(), [&] { ++count; });
    });
    queue.runAll();
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, NumProcessedCounts)
{
    EventQueue queue;
    for (int i = 0; i < 5; ++i)
        std::ignore = queue.schedule(i, [] {});
    queue.runAll();
    EXPECT_EQ(queue.numProcessed(), 5u);
}

TEST(EventQueueDeath, SchedulingInPastPanics)
{
    EventQueue queue;
    std::ignore = queue.schedule(10, [] {});
    queue.runAll();
    EXPECT_DEATH(queue.schedule(5, [] {}), "in the past");
}

TEST(EventQueueDeath, NegativeDelayPanics)
{
    EventQueue queue;
    EXPECT_DEATH(queue.scheduleAfter(-1, [] {}), "negative delay");
}

TEST(EventQueueDeath, EmptyCallbackPanics)
{
    EventQueue queue;
    EXPECT_DEATH(queue.schedule(1, EventQueue::Callback{}),
                 "empty callback");
}

TEST(EventQueue, PostFiresInTimeOrderInterleavedWithSchedule)
{
    EventQueue queue;
    std::vector<int> order;
    queue.post(30, [&] { order.push_back(3); });
    std::ignore = queue.schedule(10, [&] { order.push_back(1); });
    queue.post(20, [&] { order.push_back(2); });
    std::ignore = queue.schedule(20, [&] { order.push_back(4); });  // tie: after 2
    queue.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 3}));
    EXPECT_EQ(queue.numProcessed(), 4u);
}

TEST(EventQueue, PostCountsAsLive)
{
    EventQueue queue;
    queue.post(10, [] {});
    queue.postAfter(5, [] {});
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_FALSE(queue.empty());
    queue.runAll();
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.highWaterMark(), 2u);
}

TEST(EventQueue, PostAfterUsesCurrentTime)
{
    EventQueue queue;
    Tick seen = -1;
    queue.post(100, [&] {
        queue.postAfter(50, [&] { seen = queue.now(); });
    });
    queue.runAll();
    EXPECT_EQ(seen, 150);
}

TEST(EventQueueDeath, PostInPastPanics)
{
    EventQueue queue;
    queue.post(10, [] {});
    queue.runAll();
    EXPECT_DEATH(queue.post(5, [] {}), "in the past");
}

TEST(EventQueueDeath, PostAfterNegativeDelayPanics)
{
    EventQueue queue;
    EXPECT_DEATH(queue.postAfter(-1, [] {}), "negative delay");
}

TEST(EventQueueDeath, PostEmptyCallbackPanics)
{
    EventQueue queue;
    EXPECT_DEATH(queue.post(1, EventQueue::Callback{}),
                 "empty callback");
}

TEST(EventQueue, StaleHandleCancelDoesNotKillRecycledSlot)
{
    EventQueue queue;
    // Fire A; its slab slot is recycled by B.  Cancelling A's stale
    // handle afterwards must be a no-op, not kill B.
    auto a = queue.schedule(10, [] {});
    queue.runAll();
    bool bFired = false;
    auto b = queue.schedule(20, [&] { bFired = true; });
    queue.cancel(a);
    EXPECT_TRUE(b.pending());
    queue.runAll();
    EXPECT_TRUE(bFired);
}

TEST(EventQueue, CancelledSlotIsRecycledAfterPop)
{
    EventQueue queue;
    auto a = queue.schedule(10, [] {});
    queue.cancel(a);
    int fired = 0;
    std::ignore = queue.schedule(5, [&] { ++fired; });
    queue.runAll();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(queue.numProcessed(), 1u);
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, NameTracingOffRecordsNothing)
{
    EventQueue queue;
    EXPECT_FALSE(queue.nameTracing());
    std::ignore = queue.schedule(10, [] {}, "visible");
    queue.post(20, [] {}, "also-visible");
    std::vector<std::string> names = queue.pendingEventNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "(unnamed)");
    EXPECT_EQ(names[1], "(unnamed)");
}

TEST(EventQueue, NameTracingRecordsLiveNamesInFiringOrder)
{
    EventQueue queue;
    queue.setNameTracing(true);
    queue.post(30, [] {}, "late");
    auto cancelled = queue.schedule(20, [] {}, "cancelled");
    std::ignore = queue.schedule(10, [] {}, "early");
    queue.post(15, [] {});  // unnamed
    queue.cancel(cancelled);
    std::vector<std::string> names = queue.pendingEventNames();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "early");
    EXPECT_EQ(names[1], "(unnamed)");
    EXPECT_EQ(names[2], "late");

    // Fired events drop out of the table.
    queue.runOne();
    names = queue.pendingEventNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "(unnamed)");
    EXPECT_EQ(names[1], "late");
}

TEST(EventQueue, ReserveDoesNotDisturbPendingEvents)
{
    EventQueue queue;
    int fired = 0;
    queue.post(10, [&] { ++fired; });
    queue.reserve(1000);
    queue.post(20, [&] { ++fired; });
    queue.runAll();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue queue;
    Tick last = -1;
    bool ordered = true;
    for (int i = 0; i < 10000; ++i) {
        Tick when = (i * 7919) % 1000;  // scrambled times
        std::ignore = queue.schedule(when, [&, when] {
            if (when < last)
                ordered = false;
            last = when;
        });
    }
    queue.runAll();
    EXPECT_TRUE(ordered);
    EXPECT_EQ(queue.numProcessed(), 10000u);
}

TEST(EventQueue, StressMixedPathsWithCancellations)
{
    // Hammer the slab free list: interleave handled and
    // fire-and-forget events, cancel a deterministic third of the
    // handled ones, and check the survivors all fire in order.
    EventQueue queue;
    Tick last = -1;
    bool ordered = true;
    int fired = 0;
    std::vector<EventQueue::Handle> toCancel;
    for (int i = 0; i < 5000; ++i) {
        Tick when = (i * 7919) % 1000;
        auto cb = [&, when] {
            if (when < last)
                ordered = false;
            last = when;
            ++fired;
        };
        if (i % 2 == 0) {
            auto handle = queue.schedule(when, cb);
            if (i % 6 == 0)
                toCancel.push_back(handle);
        } else {
            queue.post(when, cb);
        }
    }
    for (auto &handle : toCancel)
        queue.cancel(handle);
    EXPECT_EQ(queue.size(), 5000u - toCancel.size());
    queue.runAll();
    EXPECT_TRUE(ordered);
    EXPECT_EQ(fired, 5000 - static_cast<int>(toCancel.size()));
    EXPECT_TRUE(queue.empty());
}
