/** @file Unit tests for POLCA policy configurations (Table 5). */

#include <gtest/gtest.h>

#include "core/policy.hh"

using namespace polca::core;
using polca::workload::Priority;

TEST(Policy, PolcaDefaultMatchesPaper)
{
    PolicyConfig p = PolicyConfig::polca();
    EXPECT_EQ(p.name, "POLCA");
    ASSERT_EQ(p.rules.size(), 3u);

    // T1 = 80 %: LP to the A100 base clock.
    EXPECT_EQ(p.rules[0].name, "T1");
    EXPECT_EQ(p.rules[0].target, Priority::Low);
    EXPECT_DOUBLE_EQ(p.rules[0].capFraction, 0.80);
    EXPECT_DOUBLE_EQ(p.rules[0].lockMhz, 1275.0);

    // T2 = 89 %: LP deeper to 1110, then HP to 1305.
    EXPECT_EQ(p.rules[1].target, Priority::Low);
    EXPECT_DOUBLE_EQ(p.rules[1].capFraction, 0.89);
    EXPECT_DOUBLE_EQ(p.rules[1].lockMhz, 1110.0);
    EXPECT_EQ(p.rules[2].target, Priority::High);
    EXPECT_DOUBLE_EQ(p.rules[2].capFraction, 0.89);
    EXPECT_DOUBLE_EQ(p.rules[2].lockMhz, 1305.0);
}

TEST(Policy, UncapThresholdsFivePercentBelow)
{
    // Section 6.3: uncap thresholds 5 % below caps.
    for (const auto &rule : PolicyConfig::polca().rules) {
        EXPECT_NEAR(rule.capFraction - rule.uncapFraction, 0.05,
                    1e-12);
    }
}

TEST(Policy, ParameterizedThresholds)
{
    PolicyConfig p = PolicyConfig::polca(0.75, 0.85, 1200.0);
    EXPECT_DOUBLE_EQ(p.rules[0].capFraction, 0.75);
    EXPECT_DOUBLE_EQ(p.rules[0].lockMhz, 1200.0);
    EXPECT_DOUBLE_EQ(p.rules[1].capFraction, 0.85);
}

TEST(Policy, OneThreshLowPriSingleRule)
{
    PolicyConfig p = PolicyConfig::oneThreshLowPri();
    ASSERT_EQ(p.rules.size(), 1u);
    EXPECT_EQ(p.rules[0].target, Priority::Low);
    EXPECT_DOUBLE_EQ(p.rules[0].capFraction, 0.89);
    EXPECT_DOUBLE_EQ(p.rules[0].lockMhz, 1110.0);
}

TEST(Policy, OneThreshAllCapsBothPools)
{
    PolicyConfig p = PolicyConfig::oneThreshAll();
    ASSERT_EQ(p.rules.size(), 2u);
    EXPECT_EQ(p.rules[0].target, Priority::Low);
    EXPECT_EQ(p.rules[1].target, Priority::High);
    EXPECT_DOUBLE_EQ(p.rules[1].lockMhz, 1110.0);  // aggressive
}

TEST(Policy, NoCapHasNoRulesButKeepsBrake)
{
    PolicyConfig p = PolicyConfig::noCap();
    EXPECT_TRUE(p.rules.empty());
    EXPECT_TRUE(p.powerBrakeEnabled);
}

TEST(Policy, AllPoliciesBrakeAtProvisionedLimit)
{
    for (const PolicyConfig &p :
         {PolicyConfig::polca(), PolicyConfig::oneThreshLowPri(),
          PolicyConfig::oneThreshAll(), PolicyConfig::noCap()}) {
        EXPECT_DOUBLE_EQ(p.powerBrakeFraction, 1.0) << p.name;
        EXPECT_LT(p.powerBrakeReleaseFraction, p.powerBrakeFraction);
    }
}

TEST(PolicyDeath, ReleaseAboveTriggerFatal)
{
    PolicyConfig p = PolicyConfig::polca();
    p.rules[0].uncapFraction = p.rules[0].capFraction + 0.01;
    EXPECT_DEATH(p.validate(), "below its trigger");
}

TEST(PolicyDeath, NonPositiveLockFatal)
{
    PolicyConfig p = PolicyConfig::polca();
    p.rules[0].lockMhz = 0.0;
    EXPECT_DEATH(p.validate(), "non-positive lock");
}

TEST(PolicyDeath, BrakeReleaseAboveTriggerFatal)
{
    PolicyConfig p = PolicyConfig::noCap();
    p.powerBrakeReleaseFraction = 1.2;
    EXPECT_DEATH(p.validate(), "brake release");
}
