/**
 * @file
 * obs::LogHistogram: the relative-error bound against an
 * exact-percentile oracle on adversarial distributions, merge
 * algebra (associative + commutative), empty/single-sample edges,
 * and byte-identical registry dumps.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "obs/metrics.hh"
#include "sim/random.hh"

namespace {

using namespace polca;

/** Exact nearest-rank percentile of a sample set. */
double
exactQuantile(std::vector<double> values, double q)
{
    std::sort(values.begin(), values.end());
    std::size_t n = values.size();
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    rank = std::clamp<std::size_t>(rank, 1, n);
    return values[rank - 1];
}

/** Record @p values and check every headline quantile against the
 *  oracle within the histogram's documented relative error. */
void
expectQuantilesWithin(const std::vector<double> &values, double minV,
                      double maxV, double err)
{
    obs::LogHistogram h(minV, maxV, err);
    for (double v : values)
        h.add(v);
    ASSERT_EQ(h.count(), values.size());
    for (double q : {0.50, 0.90, 0.95, 0.99, 0.999}) {
        double exact = exactQuantile(values, q);
        double approx = h.quantile(q);
        // In-range samples must honor the bound; clamped samples
        // report the tracked exact extreme, which also satisfies it.
        EXPECT_NEAR(approx, exact, exact * err + 1e-12)
            << "q=" << q << " exact=" << exact
            << " approx=" << approx;
    }
}

TEST(LogHistogram, ErrorBoundLogUniform)
{
    // Log-uniform over 5 decades: equal mass per decade is the
    // adversarial case for linear-bucket histograms.
    sim::Rng rng(7);
    std::vector<double> values;
    values.reserve(20000);
    for (int i = 0; i < 20000; ++i)
        values.push_back(std::pow(10.0, rng.uniform(-2.0, 3.0)));
    expectQuantilesWithin(values, 1e-3, 1e4, 0.01);
}

TEST(LogHistogram, ErrorBoundHeavyTail)
{
    // Pareto-ish tail: most samples tiny, p99/p999 far out in the
    // tail.  Exercises sparse high buckets.
    sim::Rng rng(11);
    std::vector<double> values;
    values.reserve(20000);
    for (int i = 0; i < 20000; ++i) {
        double u = rng.uniform(1e-6, 1.0);
        values.push_back(0.001 / std::pow(u, 1.5));
    }
    expectQuantilesWithin(values, 1e-4, 1e7, 0.01);
}

TEST(LogHistogram, ErrorBoundClustered)
{
    // Point masses right at bucket-boundary-ish values plus
    // duplicates: nearest-rank must still land within the bound.
    std::vector<double> values;
    for (int i = 0; i < 1000; ++i)
        values.push_back(1.0);
    for (int i = 0; i < 10; ++i)
        values.push_back(99.5);
    for (int i = 0; i < 3; ++i)
        values.push_back(999.0);
    expectQuantilesWithin(values, 0.1, 1e4, 0.05);
}

TEST(LogHistogram, EmptyHistogram)
{
    obs::LogHistogram h(0.001, 100.0, 0.01);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.p999(), 0.0);
}

TEST(LogHistogram, SingleSample)
{
    obs::LogHistogram h(0.001, 100.0, 0.01);
    h.add(3.25);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.min(), 3.25);
    EXPECT_DOUBLE_EQ(h.max(), 3.25);
    // Every quantile of a single sample is that sample.
    for (double q : {0.0, 0.25, 0.5, 0.99, 1.0})
        EXPECT_NEAR(h.quantile(q), 3.25, 3.25 * 0.01);
}

TEST(LogHistogram, UnderflowAndOverflowClamp)
{
    obs::LogHistogram h(1.0, 1000.0, 0.01);
    h.add(0.0);
    h.add(-5.0);
    h.add(0.25);   // below min
    h.add(4000.0); // above max
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucketCount(0), 3u);
    EXPECT_EQ(h.bucketCount(h.buckets() - 1), 1u);
    // Clamped buckets report the tracked exact extremes.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), -5.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 4000.0);
}

TEST(LogHistogram, ResetClearsEverything)
{
    obs::LogHistogram h(0.001, 100.0, 0.01);
    h.add(1.0);
    h.add(50.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    for (std::size_t b = 0; b < h.buckets(); ++b)
        EXPECT_EQ(h.bucketCount(b), 0u);
}

obs::LogHistogram
filled(std::uint64_t seed, int n)
{
    obs::LogHistogram h(1e-3, 1e4, 0.01);
    sim::Rng rng(seed);
    for (int i = 0; i < n; ++i)
        h.add(std::pow(10.0, rng.uniform(-2.0, 3.0)));
    return h;
}

void
expectSame(const obs::LogHistogram &a, const obs::LogHistogram &b)
{
    ASSERT_EQ(a.buckets(), b.buckets());
    for (std::size_t i = 0; i < a.buckets(); ++i)
        EXPECT_EQ(a.bucketCount(i), b.bucketCount(i));
    EXPECT_EQ(a.count(), b.count());
    // Bucket counts and extremes are exact; the sum is a double
    // accumulation, associative only up to rounding.
    EXPECT_NEAR(a.sum(), b.sum(), 1e-9 * std::abs(a.sum()));
    EXPECT_DOUBLE_EQ(a.min(), b.min());
    EXPECT_DOUBLE_EQ(a.max(), b.max());
}

TEST(LogHistogram, MergeCommutative)
{
    obs::LogHistogram ab = filled(1, 500);
    ab.merge(filled(2, 700));
    obs::LogHistogram ba = filled(2, 700);
    ba.merge(filled(1, 500));
    expectSame(ab, ba);
}

TEST(LogHistogram, MergeAssociative)
{
    // (a + b) + c == a + (b + c)
    obs::LogHistogram left = filled(1, 300);
    left.merge(filled(2, 400));
    left.merge(filled(3, 500));

    obs::LogHistogram bc = filled(2, 400);
    bc.merge(filled(3, 500));
    obs::LogHistogram right = filled(1, 300);
    right.merge(bc);

    expectSame(left, right);
    // And the merged quantiles equal the all-in-one histogram's.
    obs::LogHistogram all(1e-3, 1e4, 0.01);
    for (std::uint64_t s : {1u, 2u, 3u}) {
        sim::Rng rng(s);
        int n = s == 1 ? 300 : s == 2 ? 400 : 500;
        for (int i = 0; i < n; ++i)
            all.add(std::pow(10.0, rng.uniform(-2.0, 3.0)));
    }
    expectSame(left, all);
    EXPECT_DOUBLE_EQ(left.p99(), all.p99());
}

TEST(LogHistogram, MergeShapeMismatchPanics)
{
    obs::LogHistogram a(1e-3, 1e4, 0.01);
    obs::LogHistogram b(1e-3, 1e4, 0.02);
    EXPECT_FALSE(a.sameShape(b));
    EXPECT_DEATH(a.merge(b), "shape");
}

TEST(LogHistogram, RegistryDumpByteIdentical)
{
    // Two registries fed the same samples dump the same bytes — the
    // determinism contract every artifact depends on.
    auto build = [](obs::MetricsRegistry &reg) {
        obs::LogHistogram &h =
            reg.logHistogram("test.latency_s", 1e-4, 100.0, 0.01,
                             "test histogram");
        sim::Rng rng(42);
        for (int i = 0; i < 5000; ++i)
            h.add(std::pow(10.0, rng.uniform(-3.0, 1.5)));
    };
    obs::MetricsRegistry a, b;
    build(a);
    build(b);
    std::ostringstream dumpA, dumpB, csvA, csvB;
    a.dump(dumpA);
    b.dump(dumpB);
    a.dumpCsv(csvA);
    b.dumpCsv(csvB);
    EXPECT_EQ(dumpA.str(), dumpB.str());
    EXPECT_EQ(csvA.str(), csvB.str());
    EXPECT_FALSE(dumpA.str().empty());
    // Percentile lines and bucket bounds are part of the dump.
    EXPECT_NE(dumpA.str().find("test.latency_s::p99"),
              std::string::npos);
    EXPECT_NE(dumpA.str().find("["), std::string::npos);
}

} // namespace
