/**
 * @file
 * Scenario-layer tests: binding a parsed tree into an
 * ExperimentConfig, the defaults < file < --set < sweep precedence
 * chain, cartesian sweep expansion with labels, hostile scenarios
 * with line-precise suggestions, and the headline guarantee that
 * dumpResolved() output reparses to the identical resolved config.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "config/scenario.hh"

namespace {

using namespace polca;
using namespace polca::config;

ScenarioSet
load(const std::string &text,
     const std::vector<std::string> &overrides = {})
{
    Diagnostics diag;
    ScenarioSet set =
        loadScenarioString(text, "test.toml", overrides, diag);
    EXPECT_TRUE(diag.ok()) << diag.str();
    return set;
}

std::string
loadError(const std::string &text,
          const std::vector<std::string> &overrides = {})
{
    Diagnostics diag;
    loadScenarioString(text, "test.toml", overrides, diag);
    EXPECT_FALSE(diag.ok()) << "expected a binding error";
    return diag.str();
}

TEST(Scenario, BindsEverySection)
{
    ScenarioSet set = load("[experiment]\n"
                           "duration = 1h\n"
                           "seed = 7\n"
                           "breaker_limit_fraction = 1.05\n"
                           "\n"
                           "[row]\n"
                           "base_servers = 4\n"
                           "added_server_fraction = 25%\n"
                           "\n"
                           "[policy]\n"
                           "preset = \"1tlp\"\n"
                           "threshold = 85%\n"
                           "\n"
                           "[manager]\n"
                           "watchdog_enabled = false\n"
                           "\n"
                           "[workload.diurnal]\n"
                           "base_utilization = 40%\n"
                           "\n"
                           "[faults]\n"
                           "[[faults.blackouts]]\n"
                           "start = 5min\n"
                           "duration = 1h\n");
    ASSERT_EQ(set.points.size(), 1u);
    EXPECT_FALSE(set.isSweep());
    const core::ExperimentConfig &config = set.points[0].config;
    EXPECT_EQ(config.duration, sim::secondsToTicks(3600));
    EXPECT_EQ(config.seed, 7u);
    EXPECT_DOUBLE_EQ(config.breakerLimitFraction, 1.05);
    EXPECT_EQ(config.row.baseServers, 4);
    EXPECT_DOUBLE_EQ(config.row.addedServerFraction, 0.25);
    ASSERT_EQ(config.policy.rules.size(), 1u);
    EXPECT_DOUBLE_EQ(config.policy.rules[0].capFraction, 0.85);
    EXPECT_FALSE(config.manager.watchdogEnabled);
    EXPECT_DOUBLE_EQ(config.diurnal.baseUtilization, 0.40);
    ASSERT_EQ(config.faultPlan.blackouts.size(), 1u);
    EXPECT_EQ(config.faultPlan.blackouts[0].start,
              sim::secondsToTicks(300));
}

TEST(Scenario, CliOverridesFile)
{
    ScenarioSet set = load("[row]\n"
                           "added_server_fraction = 40%\n",
                           {"row.added_server_fraction=0.45"});
    ASSERT_EQ(set.points.size(), 1u);
    EXPECT_DOUBLE_EQ(
        set.points[0].config.row.addedServerFraction, 0.45);
    const ConfigNode *node =
        set.points[0].tree.findPath("row.added_server_fraction");
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->origin, "cli");
}

TEST(Scenario, SweepOverridesCli)
{
    ScenarioSet set = load("[sweep]\n"
                           "\"experiment.seed\" = [1..2]\n",
                           {"experiment.seed=9"});
    ASSERT_EQ(set.points.size(), 2u);
    EXPECT_TRUE(set.isSweep());
    EXPECT_EQ(set.points[0].config.seed, 1u);
    EXPECT_EQ(set.points[1].config.seed, 2u);
    EXPECT_EQ(set.points[0].label, "experiment.seed=1");
    const ConfigNode *node =
        set.points[0].tree.findPath("experiment.seed");
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->origin, "sweep");
}

TEST(Scenario, CartesianExpansionAndLabels)
{
    ScenarioSet set =
        load("[sweep]\n"
             "\"policy.preset\" = [\"polca\", \"1tlp\", \"nocap\"]\n"
             "\"experiment.seed\" = [1, 2]\n");
    ASSERT_EQ(set.points.size(), 6u);
    std::vector<std::string> labels;
    for (const ResolvedScenario &point : set.points) {
        EXPECT_NE(point.label.find("policy.preset="),
                  std::string::npos);
        EXPECT_NE(point.label.find("experiment.seed="),
                  std::string::npos);
        labels.push_back(point.label);
    }
    std::sort(labels.begin(), labels.end());
    EXPECT_EQ(std::unique(labels.begin(), labels.end()),
              labels.end()) << "sweep labels must be unique";
    // nocap points really bound the nocap policy (no rules).
    for (const ResolvedScenario &point : set.points) {
        if (point.label.find("nocap") != std::string::npos) {
            EXPECT_TRUE(point.config.policy.rules.empty());
        }
    }
}

TEST(Scenario, UnknownSectionSuggestion)
{
    std::string err = loadError("[rows]\n"
                                "base_servers = 2\n");
    EXPECT_NE(err.find("unknown top-level section [rows]"),
              std::string::npos) << err;
    EXPECT_NE(err.find("did you mean 'row'"), std::string::npos)
        << err;
    EXPECT_NE(err.find("test.toml:1"), std::string::npos) << err;
}

TEST(Scenario, UnknownPolicyPresetAnchored)
{
    std::string err = loadError("[policy]\n"
                                "\n"
                                "preset = \"polka\"\n");
    EXPECT_NE(err.find("unknown policy preset 'polka'"),
              std::string::npos) << err;
    EXPECT_NE(err.find("test.toml:3"), std::string::npos) << err;
}

TEST(Scenario, PresetParameterCompatibility)
{
    std::string err = loadError("[policy]\n"
                                "preset = \"nocap\"\n"
                                "t1 = 50%\n");
    EXPECT_NE(err.find("t1/t2/t1_lock_mhz only apply"),
              std::string::npos) << err;

    std::string err2 = loadError("[policy]\n"
                                 "threshold = 80%\n"
                                 "preset = \"polca\"\n");
    EXPECT_NE(err2.find("threshold only applies"),
              std::string::npos) << err2;
}

TEST(Scenario, ExplicitRulesReplacePreset)
{
    ScenarioSet set = load("[policy]\n"
                           "preset = \"polca\"\n"
                           "[[policy.rules]]\n"
                           "name = \"only\"\n"
                           "target = \"low\"\n"
                           "cap_at = 70%\n"
                           "uncap_at = 60%\n"
                           "lock_mhz = 900\n");
    ASSERT_EQ(set.points.size(), 1u);
    const core::PolicyConfig &policy = set.points[0].config.policy;
    ASSERT_EQ(policy.rules.size(), 1u);
    EXPECT_EQ(policy.rules[0].name, "only");
    EXPECT_DOUBLE_EQ(policy.rules[0].capFraction, 0.70);
}

TEST(Scenario, RuleOrderingValidated)
{
    std::string err = loadError("[policy]\n"
                                "[[policy.rules]]\n"
                                "name = \"bad\"\n"
                                "target = \"low\"\n"
                                "cap_at = 60%\n"
                                "uncap_at = 70%\n"
                                "lock_mhz = 900\n");
    EXPECT_NE(err.find("uncap_at must sit below cap_at"),
              std::string::npos) << err;
}

TEST(Scenario, MixMustSumToOne)
{
    std::string err = loadError("[workload]\n"
                                "[[workload.mix]]\n"
                                "name = \"only\"\n"
                                "prompt_min = 10\n"
                                "prompt_max = 20\n"
                                "output_min = 10\n"
                                "output_max = 20\n"
                                "traffic_fraction = 90%\n"
                                "high_priority_fraction = 50%\n");
    EXPECT_NE(err.find("sum to"), std::string::npos) << err;
}

TEST(Scenario, IncompleteFaultEntry)
{
    std::string err = loadError("[faults]\n"
                                "[[faults.blackouts]]\n"
                                "start = 5min\n");
    EXPECT_NE(err.find("missing required key 'duration'"),
              std::string::npos) << err;
}

TEST(Scenario, FaultScenarioSuggestion)
{
    std::string err = loadError("[faults]\n"
                                "scenario = \"blackot\"\n");
    EXPECT_NE(err.find("unknown fault scenario 'blackot'"),
              std::string::npos) << err;
    EXPECT_NE(err.find("did you mean 'blackout'"),
              std::string::npos) << err;
}

TEST(Scenario, ModelOverrideFromCatalogPreset)
{
    ScenarioSet set = load("[model]\n"
                           "preset = \"BLOOM-176B\"\n"
                           "params_billions = 200\n");
    ASSERT_EQ(set.points.size(), 1u);
    const cluster::RowConfig &row = set.points[0].config.row;
    ASSERT_TRUE(row.modelOverride.has_value());
    EXPECT_DOUBLE_EQ(effectiveModelSpec(row).paramsBillions, 200.0);
    // Untouched fields keep the catalog values.
    EXPECT_EQ(effectiveModelSpec(row).name, "BLOOM-176B");
}

TEST(Scenario, ServerAndGpuPresets)
{
    ScenarioSet set = load("[row.server]\n"
                           "preset = \"DGX-H100\"\n"
                           "[row.server.gpu]\n"
                           "tdp_watts = 650\n");
    const cluster::RowConfig &row = set.points[0].config.row;
    EXPECT_EQ(row.serverSpec.name,
              power::ServerSpec::dgxH100().name);
    EXPECT_DOUBLE_EQ(row.serverSpec.gpu.tdpWatts, 650.0);
}

TEST(Scenario, SetOverrideErrorsNameTheFlag)
{
    std::string err =
        loadError("", {"policy.preset=polka"});
    EXPECT_NE(err.find("--set policy.preset=polka"),
              std::string::npos) << err;
    EXPECT_NE(err.find("unknown policy preset 'polka'"),
              std::string::npos) << err;
}

TEST(Scenario, MalformedOverrides)
{
    EXPECT_NE(loadError("", {"=value"}).find("expected path=value"),
              std::string::npos);
    EXPECT_NE(loadError("", {"experiment.seed="}).find("empty value"),
              std::string::npos);
    // An override cannot tunnel through an existing scalar.
    EXPECT_NE(loadError("[row]\nbase_servers = 2\n",
                        {"row.base_servers.x=1"})
                  .find("is not a section"),
              std::string::npos);
}

/** Load -> dumpResolved -> reload -> compare; the acceptance
 *  criterion for the effective-config dump. */
void
expectDumpReparseIdentity(const std::string &text,
                          const std::vector<std::string> &overrides)
{
    Diagnostics diag;
    ScenarioSet original =
        loadScenarioString(text, "orig.toml", overrides, diag);
    ASSERT_TRUE(diag.ok()) << diag.str();
    ASSERT_EQ(original.points.size(), 1u);

    std::ostringstream os;
    dumpResolved(original.points[0].config, original.points[0].tree,
                 os);

    Diagnostics diag2;
    ScenarioSet reparsed =
        loadScenarioString(os.str(), "dump.toml", {}, diag2);
    ASSERT_TRUE(diag2.ok()) << diag2.str() << "\n--- dump was:\n"
                            << os.str();
    ASSERT_EQ(reparsed.points.size(), 1u);
    EXPECT_TRUE(resolvedConfigsEqual(original.points[0].config,
                                     reparsed.points[0].config))
        << "dump did not reparse to the identical resolved config:\n"
        << os.str();

    // And the dump itself is a fixed point: dumping the reparsed
    // config produces byte-identical output.
    std::ostringstream os2;
    dumpResolved(reparsed.points[0].config, reparsed.points[0].tree,
                 os2);
    std::string a = os.str(), b = os2.str();
    // Provenance comments legitimately differ (file names, origins);
    // compare with comments stripped.
    auto stripComments = [](const std::string &s) {
        std::string out;
        std::istringstream in(s);
        std::string line;
        while (std::getline(in, line)) {
            std::size_t hash = line.find('#');
            if (hash != std::string::npos)
                line = line.substr(0, hash);
            while (!line.empty() &&
                   (line.back() == ' ' || line.back() == '\t'))
                line.pop_back();
            out += line;
            out += '\n';
        }
        return out;
    };
    EXPECT_EQ(stripComments(a), stripComments(b));
}

TEST(Scenario, DumpReparsesToIdenticalConfigDefaults)
{
    expectDumpReparseIdentity("", {});
}

TEST(Scenario, DumpReparsesToIdenticalConfigRich)
{
    expectDumpReparseIdentity(
        "[experiment]\n"
        "duration = 6h\n"
        "seed = 11\n"
        "breaker_limit_fraction = 1.05\n"
        "[row]\n"
        "base_servers = 12\n"
        "added_server_fraction = 50%\n"
        "[row.server]\n"
        "preset = \"DGX-A100-40GB\"\n"
        "[row.server.gpu]\n"
        "tdp_watts = 390\n"
        "[model]\n"
        "preset = \"BLOOM-176B\"\n"
        "token_time_ms = 90\n"
        "[policy]\n"
        "preset = \"polca\"\n"
        "t1 = 78%\n"
        "[manager]\n"
        "watchdog_timeout = 40s\n"
        "[workload.diurnal]\n"
        "base_utilization = 45%\n"
        "[faults]\n"
        "[[faults.blackouts]]\n"
        "start = 5min\n"
        "duration = 1h\n",
        {"experiment.power_scale_factor=1.05"});
}

TEST(Scenario, SweepPointDumpReparses)
{
    Diagnostics diag;
    ScenarioSet set = loadScenarioString(
        "[sweep]\n"
        "\"policy.preset\" = [\"polca\", \"nocap\"]\n",
        "sweep.toml", {}, diag);
    ASSERT_TRUE(diag.ok()) << diag.str();
    ASSERT_EQ(set.points.size(), 2u);
    for (const ResolvedScenario &point : set.points) {
        std::ostringstream os;
        dumpResolved(point.config, point.tree, os);
        Diagnostics diag2;
        ScenarioSet reparsed =
            loadScenarioString(os.str(), "dump.toml", {}, diag2);
        ASSERT_TRUE(diag2.ok())
            << point.label << ": " << diag2.str();
        ASSERT_EQ(reparsed.points.size(), 1u);
        EXPECT_TRUE(resolvedConfigsEqual(
            point.config, reparsed.points[0].config))
            << point.label;
    }
}

} // namespace
