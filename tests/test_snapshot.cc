/**
 * @file
 * Snapshot/branch round-trip tests, bottom-up: the EventQueue re-arm
 * protocol, PeriodicTask schedule position, Rng fork purity (the
 * reason the root stream needs no snapshot entry), PowerManager
 * durable-state rehydration, and end-to-end warmup branching — a
 * branched experiment must be bit-identical to one that simulated
 * its own warmup, at row and site scale.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/oversub_experiment.hh"
#include "core/power_manager.hh"
#include "core/warmup_snapshot.hh"
#include "faults/fault_plan.hh"
#include "obs/observability.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/snapshot.hh"

namespace {

using namespace polca;
using polca::workload::Priority;

TEST(SnapshotEventQueue, RearmContinuationMatchesSource)
{
    // Source: A(10), B(20), post C(20), D(30); same-tick B/C tie
    // breaks by seq (B scheduled first).
    sim::EventQueue source;
    std::vector<std::string> sourceLog;
    auto handleA = source.schedule(10, [&] { sourceLog.push_back("A"); });
    auto handleB = source.schedule(20, [&] { sourceLog.push_back("B"); });
    std::uint64_t seqC =
        source.post(20, [&] { sourceLog.push_back("C"); });
    auto handleD = source.schedule(30, [&] { sourceLog.push_back("D"); });
    (void)handleA;

    source.runUntil(15);  // A fired; B, C, D pending.
    sim::EventQueueState state = source.captureState();
    EXPECT_EQ(state.now, 15);
    EXPECT_EQ(state.liveEvents, 3u);

    struct Pending
    {
        sim::Tick when;
        std::uint64_t seq;
        std::string tag;
    };
    std::vector<Pending> pending = {
        {handleB.when(), handleB.seq(), "B"},
        {20, seqC, "C"},
        {handleD.when(), handleD.seq(), "D"},
    };

    source.runUntil(40);
    ASSERT_EQ(sourceLog,
              (std::vector<std::string>{"A", "B", "C", "D"}));

    // Branch: fresh queue whose build-time events are discarded by
    // beginRestore; re-arm in reverse order — the saved seqs, not
    // the re-arm order, decide same-tick firing order.
    sim::EventQueue branch;
    std::vector<std::string> branchLog;
    (void)branch.post(5, [&] { branchLog.push_back("build-time"); });
    branch.beginRestore(state);
    for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
        std::string tag = it->tag;
        branch.rearmPost(it->when, it->seq,
                         [&branchLog, tag] { branchLog.push_back(tag); });
    }
    branch.endRestore(pending.size());

    EXPECT_EQ(branch.now(), 15);
    branch.runUntil(40);
    EXPECT_EQ(branchLog, (std::vector<std::string>{"B", "C", "D"}));
    EXPECT_EQ(branch.numProcessed(), source.numProcessed());
    EXPECT_EQ(branch.now(), source.now());
}

TEST(SnapshotPeriodicTask, RestoredTaskKeepsPhaseAndSeq)
{
    sim::Simulation source(1);
    std::vector<sim::Tick> sourceFires;
    auto sourceTask = source.every(
        7, [&](sim::Tick at) { sourceFires.push_back(at); });
    source.runUntil(20);  // fired at 7, 14; next at 21.
    sim::Simulation::PeriodicTask::State taskState =
        sourceTask->saveState();
    sim::Snapshot snapshot{source.queue().captureState()};
    source.runUntil(40);
    ASSERT_EQ(sourceFires, (std::vector<sim::Tick>{7, 14, 21, 28, 35}));

    sim::Simulation branch(1);
    std::vector<sim::Tick> branchFires;
    auto branchTask = branch.every(
        7, [&](sim::Tick at) { branchFires.push_back(at); });
    branch.queue().beginRestore(snapshot.queue);
    branchTask->restoreState(taskState);
    branch.queue().endRestore(1);

    branch.runUntil(40);
    EXPECT_EQ(branchFires, (std::vector<sim::Tick>{21, 28, 35}));
    EXPECT_TRUE(branchTask->running());
}

TEST(SnapshotRng, ForkIsPureSoRebuiltWorldsDeriveIdenticalStreams)
{
    // fork()/forkPath() are const: drawing from the root or forking
    // other children must not perturb a child's stream.  This is why
    // sim::Snapshot carries no root-Rng entry.
    sim::Rng rootA(42);
    sim::Rng first = rootA.fork(0xA110);
    (void)rootA.fork(0xBEEF);
    for (int i = 0; i < 8; ++i)
        (void)rootA.uniform();
    sim::Rng second = rootA.fork(0xA110);

    sim::Rng rootB(42);
    sim::Rng rebuilt = rootB.fork(0xA110);

    for (int i = 0; i < 64; ++i) {
        double expected = first.uniform();
        EXPECT_DOUBLE_EQ(expected, second.uniform());
        EXPECT_DOUBLE_EQ(expected, rebuilt.uniform());
    }

    sim::Rng pathA = sim::Rng(7).forkPath("rows").forkPath("a100-0");
    sim::Rng pathB = sim::Rng(7).forkPath("rows").forkPath("a100-0");
    for (int i = 0; i < 16; ++i)
        EXPECT_DOUBLE_EQ(pathA.uniform(), pathB.uniform());
}

/** Recording fake control target (PowerManager snapshot test). */
class FakeTarget : public telemetry::ClockControllable
{
  public:
    void applyClockLock(double mhz) override { lockMhz_ = mhz; }
    void applyClockUnlock() override { lockMhz_ = 0.0; }
    void applyPowerBrake(bool engaged) override { brake_ = engaged; }
    double appliedClockLockMhz() const override { return lockMhz_; }
    bool powerBrakeEngaged() const override { return brake_; }

  private:
    double lockMhz_ = 0.0;
    bool brake_ = false;
};

TEST(SnapshotPowerManager, DurableStateSurvivesWarmRestart)
{
    sim::Simulation sim;
    telemetry::RowManager telemetry(sim, sim::secondsToTicks(2),
                                    false);
    core::PowerManager manager(sim, telemetry, 10000.0,
                               core::PolicyConfig::polca(),
                               sim::Rng(1));
    double watts = 10100.0;  // 101 %: brake territory.
    telemetry.addSource([&watts] { return watts; });
    std::vector<std::unique_ptr<FakeTarget>> targets;
    for (int i = 0; i < 2; ++i) {
        targets.push_back(std::make_unique<FakeTarget>());
        manager.addTarget(i == 0 ? Priority::Low : Priority::High,
                          targets.back().get());
    }
    manager.start();
    telemetry.start();
    sim.runFor(sim::secondsToTicks(10));
    ASSERT_TRUE(manager.brakeEngaged());

    core::PowerManager::Snapshot before = manager.snapshot();
    EXPECT_TRUE(before.brakeEngaged);

    manager.controllerCrash();
    sim.runFor(sim::secondsToTicks(4));
    manager.controllerRestart(/*coldRestart=*/false);

    // Rehydrated durable state: same brake posture and commanded
    // caps as at crash time.
    EXPECT_TRUE(manager.brakeEngaged());
    core::PowerManager::Snapshot after = manager.snapshot();
    EXPECT_EQ(after.brakeEngaged, before.brakeEngaged);
    EXPECT_EQ(after.brakeEngagedAt, before.brakeEngagedAt);
    EXPECT_DOUBLE_EQ(after.lowCommandedMhz, before.lowCommandedMhz);
    EXPECT_DOUBLE_EQ(after.highCommandedMhz, before.highCommandedMhz);
    ASSERT_EQ(after.ruleActive.size(), before.ruleActive.size());
    for (std::size_t i = 0; i < after.ruleActive.size(); ++i) {
        EXPECT_EQ(after.ruleActive[i], before.ruleActive[i]);
        EXPECT_EQ(after.ruleActivatedAt[i], before.ruleActivatedAt[i]);
    }
}

core::ExperimentConfig
warmRowConfig()
{
    core::ExperimentConfig config;
    config.seed = 11;
    config.row.baseServers = 3;
    config.duration = sim::secondsToTicks(1800);
    config.warmup = sim::secondsToTicks(600);
    config.obsOptions.metricsInterval = sim::secondsToTicks(120);
    return config;
}

core::ExperimentConfig
warmSiteConfig()
{
    core::ExperimentConfig config;
    config.seed = 5;
    config.duration = sim::secondsToTicks(360);
    config.warmup = sim::secondsToTicks(120);
    config.topology.enabled = true;
    cluster::TopologyRowGroup group;
    group.name = "a100";
    group.rows = 2;
    group.racksPerRow = 2;
    group.serversPerRack = 2;
    config.topology.groups.push_back(group);
    return config;
}

std::string
metricsDump(obs::Observability &obs)
{
    std::ostringstream os;
    obs.metrics.dumpCsv(os);
    return os.str();
}

std::string
intervalDump(obs::Observability &obs)
{
    std::ostringstream os;
    obs.interval.writeCsv(os);
    return os.str();
}

/** Run @p config three ways — fresh, leader (capturing the warmup
 *  snapshot), and branched from that snapshot — and require
 *  bit-identical metrics, interval stats, and headline results. */
void
expectBranchMatchesFresh(const core::ExperimentConfig &base)
{
    sim::QuietScope quiet(true);

    obs::Observability freshObs;
    core::ExperimentConfig fresh = base;
    fresh.obs = &freshObs;
    core::ExperimentResult freshResult = runOversubExperiment(fresh);

    obs::Observability leaderObs;
    core::ExperimentConfig leader = base;
    leader.obs = &leaderObs;
    std::shared_ptr<const core::WarmupSnapshot> snapshot;
    leader.onWarmupSnapshot =
        [&snapshot](std::shared_ptr<const core::WarmupSnapshot> s) {
            snapshot = std::move(s);
        };
    core::ExperimentResult leaderResult = runOversubExperiment(leader);
    ASSERT_TRUE(snapshot);
    EXPECT_EQ(snapshot->warmup, base.warmup);

    obs::Observability branchObs;
    core::ExperimentConfig branch = base;
    branch.obs = &branchObs;
    branch.resumeFrom = snapshot;
    core::ExperimentResult branchResult = runOversubExperiment(branch);

    // Capturing the snapshot is a pure read...
    EXPECT_EQ(metricsDump(freshObs), metricsDump(leaderObs));
    // ...and the branch is a bit-exact continuation.
    EXPECT_EQ(metricsDump(freshObs), metricsDump(branchObs));
    EXPECT_EQ(intervalDump(freshObs), intervalDump(branchObs));

    auto expectResultsEqual = [](const core::ExperimentResult &a,
                                 const core::ExperimentResult &b) {
        EXPECT_EQ(a.lowCompletions, b.lowCompletions);
        EXPECT_EQ(a.highCompletions, b.highCompletions);
        EXPECT_DOUBLE_EQ(a.low.p99, b.low.p99);
        EXPECT_DOUBLE_EQ(a.high.p99, b.high.p99);
        EXPECT_DOUBLE_EQ(a.energyKwh, b.energyKwh);
        EXPECT_EQ(a.powerBrakeEvents, b.powerBrakeEvents);
        EXPECT_EQ(a.breakerTrips, b.breakerTrips);
        EXPECT_DOUBLE_EQ(a.maxUtilization, b.maxUtilization);
        EXPECT_EQ(a.failSafeTicks, b.failSafeTicks);
        EXPECT_EQ(a.domains.size(), b.domains.size());
        for (std::size_t i = 0; i < a.domains.size(); ++i) {
            EXPECT_EQ(a.domains[i].path, b.domains[i].path);
            EXPECT_DOUBLE_EQ(a.domains[i].peakWatts,
                             b.domains[i].peakWatts);
            EXPECT_DOUBLE_EQ(a.domains[i].meanWatts,
                             b.domains[i].meanWatts);
        }
    };
    expectResultsEqual(freshResult, leaderResult);
    expectResultsEqual(freshResult, branchResult);
}

TEST(SnapshotExperiment, RowBranchIsBitIdenticalToFreshWarmup)
{
    expectBranchMatchesFresh(warmRowConfig());
}

TEST(SnapshotExperiment, SiteBranchIsBitIdenticalToFreshWarmup)
{
    expectBranchMatchesFresh(warmSiteConfig());
}

TEST(SnapshotExperiment, UnobservedBaselineBranchesFromObservedLeader)
{
    sim::QuietScope quiet(true);
    core::ExperimentConfig base = warmRowConfig();

    obs::Observability leaderObs;
    core::ExperimentConfig leader = base;
    leader.obs = &leaderObs;
    std::shared_ptr<const core::WarmupSnapshot> snapshot;
    leader.onWarmupSnapshot =
        [&snapshot](std::shared_ptr<const core::WarmupSnapshot> s) {
            snapshot = std::move(s);
        };
    (void)runOversubExperiment(leader);
    ASSERT_TRUE(snapshot);

    // Baseline derivation drops the control plane and observability;
    // it must still branch cleanly from the observed leader (the
    // leader's stats-task event is deliberately not re-armed).
    core::ExperimentConfig branched =
        core::unthrottledBaseline(base);
    branched.obs = nullptr;
    branched.resumeFrom = snapshot;
    core::ExperimentResult branchedResult =
        runOversubExperiment(branched);

    core::ExperimentConfig fresh = core::unthrottledBaseline(base);
    fresh.obs = nullptr;
    core::ExperimentResult freshResult = runOversubExperiment(fresh);

    EXPECT_EQ(freshResult.lowCompletions,
              branchedResult.lowCompletions);
    EXPECT_EQ(freshResult.highCompletions,
              branchedResult.highCompletions);
    EXPECT_DOUBLE_EQ(freshResult.low.p99, branchedResult.low.p99);
    EXPECT_DOUBLE_EQ(freshResult.high.p99, branchedResult.high.p99);
    EXPECT_DOUBLE_EQ(freshResult.energyKwh,
                     branchedResult.energyKwh);
}

TEST(SnapshotExperiment, ValidateWarmupConfigRejectsConflicts)
{
    core::ExperimentConfig config = warmRowConfig();
    config.warmup = config.duration;  // boundary at/after the end
    EXPECT_DEATH(core::validateWarmupConfig(config), "warmup");

    config = warmRowConfig();
    faults::ServerCrash crash;
    crash.at = config.warmup / 2;  // fires inside the warmup
    config.faultPlan.crashes.push_back(crash);
    EXPECT_DEATH(core::validateWarmupConfig(config), "warmup");

    config = warmRowConfig();
    config.chaos.enabled = true;
    EXPECT_DEATH(core::validateWarmupConfig(config), "chaos");
}

} // namespace
