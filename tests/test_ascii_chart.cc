/** @file Unit tests for the ASCII chart renderers. */

#include <gtest/gtest.h>

#include "analysis/ascii_chart.hh"

using namespace polca::analysis;
using polca::sim::TimeSeries;

namespace {

TimeSeries
ramp()
{
    TimeSeries s;
    for (int i = 0; i <= 100; ++i)
        s.add(i * 1000, static_cast<double>(i));
    return s;
}

} // namespace

TEST(AsciiChart, RendersNonEmpty)
{
    TimeSeries s = ramp();
    ChartOptions options;
    options.title = "ramp";
    std::string out = asciiChart(s, options);
    EXPECT_NE(out.find("ramp"), std::string::npos);
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find('+'), std::string::npos);  // axis corner
}

TEST(AsciiChart, HeightControlsLineCount)
{
    TimeSeries s = ramp();
    ChartOptions options;
    options.height = 8;
    std::string out = asciiChart(s, options);
    int lines = 0;
    for (char c : out)
        lines += c == '\n';
    // 8 plot rows + axis + time labels.
    EXPECT_GE(lines, 10);
    EXPECT_LE(lines, 12);
}

TEST(AsciiChart, MultipleSeriesUseDistinctGlyphs)
{
    TimeSeries a = ramp();
    TimeSeries b = ramp().scaled(0.5);
    std::string out = asciiChart({&a, &b}, {"a", "b"});
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find('o'), std::string::npos);
    EXPECT_NE(out.find("legend"), std::string::npos);
}

TEST(AsciiChartDeath, EmptySeriesPanics)
{
    TimeSeries empty;
    EXPECT_DEATH(asciiChart(empty), "empty series");
}

TEST(AsciiChartDeath, LabelMismatchPanics)
{
    TimeSeries a = ramp();
    EXPECT_DEATH(asciiChart({&a}, {"x", "y"}), "mismatch");
}

TEST(AsciiBars, ScalesToMax)
{
    std::string out =
        asciiBars({"small", "large"}, {1.0, 2.0}, 20);
    // The larger bar must have more '#'.
    std::size_t firstLine = out.find('\n');
    std::string line1 = out.substr(0, firstLine);
    std::string line2 = out.substr(firstLine + 1);
    auto hashes = [](const std::string &s) {
        return std::count(s.begin(), s.end(), '#');
    };
    EXPECT_LT(hashes(line1), hashes(line2));
}

TEST(AsciiBars, HandlesAllZero)
{
    std::string out = asciiBars({"a"}, {0.0});
    EXPECT_NE(out.find('a'), std::string::npos);
}

TEST(FormatFixedWidth, PadsLeft)
{
    std::string out = formatFixedWidth(1.5, 9);
    EXPECT_EQ(out.size(), 9u);
    EXPECT_EQ(out.back(), '0');  // "    1.500"
}
