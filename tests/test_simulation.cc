/** @file Unit tests for the Simulation context and periodic tasks. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hh"

using namespace polca::sim;

TEST(Simulation, RunForAdvancesTime)
{
    Simulation sim;
    sim.runFor(secondsToTicks(2));
    EXPECT_EQ(sim.now(), secondsToTicks(2));
    sim.runFor(secondsToTicks(1));
    EXPECT_EQ(sim.now(), secondsToTicks(3));
}

TEST(Simulation, PeriodicTaskFiresAtPeriod)
{
    Simulation sim;
    std::vector<Tick> fires;
    auto task = sim.every(100, [&](Tick t) { fires.push_back(t); });
    sim.runUntil(350);
    EXPECT_EQ(fires, (std::vector<Tick>{100, 200, 300}));
}

TEST(Simulation, PeriodicTaskCustomPhase)
{
    Simulation sim;
    std::vector<Tick> fires;
    auto task = sim.every(100, [&](Tick t) { fires.push_back(t); },
                          /*phase=*/10);
    sim.runUntil(250);
    EXPECT_EQ(fires, (std::vector<Tick>{10, 110, 210}));
}

TEST(Simulation, PeriodicTaskStops)
{
    Simulation sim;
    int count = 0;
    auto task = sim.every(100, [&](Tick) { ++count; });
    sim.runUntil(250);
    task->stop();
    EXPECT_FALSE(task->running());
    sim.runUntil(1000);
    EXPECT_EQ(count, 2);
}

TEST(Simulation, PeriodicTaskStopsFromItsOwnCallback)
{
    Simulation sim;
    int count = 0;
    std::unique_ptr<Simulation::PeriodicTask> task;
    task = sim.every(100, [&](Tick) {
        if (++count == 3)
            task->stop();
    });
    sim.runUntil(10000);
    EXPECT_EQ(count, 3);
}

TEST(Simulation, PeriodicTaskDestructionCancels)
{
    Simulation sim;
    int count = 0;
    {
        auto task = sim.every(100, [&](Tick) { ++count; });
        sim.runUntil(150);
    }
    sim.runUntil(1000);
    EXPECT_EQ(count, 1);
}

TEST(Simulation, MultiplePeriodicTasksInterleave)
{
    Simulation sim;
    int fast = 0, slow = 0;
    auto a = sim.every(10, [&](Tick) { ++fast; });
    auto b = sim.every(25, [&](Tick) { ++slow; });
    sim.runUntil(100);
    EXPECT_EQ(fast, 10);
    EXPECT_EQ(slow, 4);
}

TEST(Simulation, SeededRngIsDeterministic)
{
    Simulation a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.rng().uniform(), b.rng().uniform());
}
