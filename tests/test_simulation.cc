/** @file Unit tests for the Simulation context and periodic tasks. */

#include <gtest/gtest.h>

#include <latch>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/logging.hh"
#include "sim/simulation.hh"

using namespace polca::sim;

TEST(Simulation, RunForAdvancesTime)
{
    Simulation sim;
    sim.runFor(secondsToTicks(2));
    EXPECT_EQ(sim.now(), secondsToTicks(2));
    sim.runFor(secondsToTicks(1));
    EXPECT_EQ(sim.now(), secondsToTicks(3));
}

TEST(Simulation, PeriodicTaskFiresAtPeriod)
{
    Simulation sim;
    std::vector<Tick> fires;
    auto task = sim.every(100, [&](Tick t) { fires.push_back(t); });
    sim.runUntil(350);
    EXPECT_EQ(fires, (std::vector<Tick>{100, 200, 300}));
}

TEST(Simulation, PeriodicTaskCustomPhase)
{
    Simulation sim;
    std::vector<Tick> fires;
    auto task = sim.every(100, [&](Tick t) { fires.push_back(t); },
                          /*phase=*/10);
    sim.runUntil(250);
    EXPECT_EQ(fires, (std::vector<Tick>{10, 110, 210}));
}

TEST(Simulation, PeriodicTaskStops)
{
    Simulation sim;
    int count = 0;
    auto task = sim.every(100, [&](Tick) { ++count; });
    sim.runUntil(250);
    task->stop();
    EXPECT_FALSE(task->running());
    sim.runUntil(1000);
    EXPECT_EQ(count, 2);
}

TEST(Simulation, PeriodicTaskStopsFromItsOwnCallback)
{
    Simulation sim;
    int count = 0;
    std::unique_ptr<Simulation::PeriodicTask> task;
    task = sim.every(100, [&](Tick) {
        if (++count == 3)
            task->stop();
    });
    sim.runUntil(10000);
    EXPECT_EQ(count, 3);
}

TEST(Simulation, PeriodicTaskDestructionCancels)
{
    Simulation sim;
    int count = 0;
    {
        auto task = sim.every(100, [&](Tick) { ++count; });
        sim.runUntil(150);
    }
    sim.runUntil(1000);
    EXPECT_EQ(count, 1);
}

TEST(Simulation, MultiplePeriodicTasksInterleave)
{
    Simulation sim;
    int fast = 0, slow = 0;
    auto a = sim.every(10, [&](Tick) { ++fast; });
    auto b = sim.every(25, [&](Tick) { ++slow; });
    sim.runUntil(100);
    EXPECT_EQ(fast, 10);
    EXPECT_EQ(slow, 4);
}

TEST(Simulation, SeededRngIsDeterministic)
{
    Simulation a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.rng().uniform(), b.rng().uniform());
}

namespace {

/** Thread-safe warn()/inform() capture; restores the sink on exit. */
class ConcurrentSinkCapture
{
  public:
    ConcurrentSinkCapture()
    {
        setLogSink(
            [this](const char *, const std::string &line) {
                std::lock_guard<std::mutex> lock(mutex_);
                lines_.push_back(line);
            });
    }
    ~ConcurrentSinkCapture() { setLogSink(nullptr); }

    std::vector<std::string>
    lines()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return lines_;
    }

    /** The captured line containing @p tag ("" when absent). */
    std::string
    lineWith(const std::string &tag)
    {
        for (const std::string &line : lines()) {
            if (line.find(tag) != std::string::npos)
                return line;
        }
        return "";
    }

  private:
    std::mutex mutex_;
    std::vector<std::string> lines_;
};

} // namespace

TEST(Simulation, LogTimePrefixIsPerThread)
{
    // Two threads each run their own simulation to a different time
    // and log while BOTH simulations are alive.  The "current
    // simulation" stack is thread_local, so each thread's log lines
    // must carry its own simulated time, not the other thread's.
    ConcurrentSinkCapture capture;
    QuietScope loud(false);
    std::latch bothAlive(2), bothLogged(2);

    auto worker = [&](double seconds, const std::string &tag) {
        Simulation sim;
        sim.runFor(secondsToTicks(seconds));
        bothAlive.arrive_and_wait();
        warn("mark ", tag);
        bothLogged.arrive_and_wait();
    };
    std::thread a(worker, 2.0, "alpha");
    std::thread b(worker, 5.0, "beta");
    a.join();
    b.join();

    std::string alpha = capture.lineWith("mark alpha");
    std::string beta = capture.lineWith("mark beta");
    ASSERT_FALSE(alpha.empty());
    ASSERT_FALSE(beta.empty());
    EXPECT_NE(alpha.find("[t=2.000000s]"), std::string::npos)
        << alpha;
    EXPECT_NE(beta.find("[t=5.000000s]"), std::string::npos) << beta;

    // All simulations are gone: the time source is uninstalled and
    // new messages are unprefixed.
    warn("mark after");
    std::string after = capture.lineWith("mark after");
    ASSERT_FALSE(after.empty());
    EXPECT_EQ(after.find("[t="), std::string::npos) << after;
}

TEST(Simulation, InnermostSimulationPrefixesOnOneThread)
{
    // Nested simulations on one thread: the innermost live one wins,
    // and destroying it hands the prefix back to the outer one.
    ConcurrentSinkCapture capture;
    QuietScope loud(false);

    Simulation outer;
    outer.runFor(secondsToTicks(10));
    {
        Simulation inner;
        inner.runFor(secondsToTicks(3));
        warn("mark inner");
    }
    warn("mark outer");

    EXPECT_NE(capture.lineWith("mark inner").find("[t=3.000000s]"),
              std::string::npos);
    EXPECT_NE(capture.lineWith("mark outer").find("[t=10.000000s]"),
              std::string::npos);
}
