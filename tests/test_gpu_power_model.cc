/** @file Unit and property tests for the GPU power model and knobs. */

#include <gtest/gtest.h>

#include "power/gpu_power_model.hh"

using namespace polca::power;

namespace {

GpuPowerModel
a100()
{
    return GpuPowerModel(GpuSpec::a100_80gb());
}

/** Prompt-like activity calibrated to exceed TDP slightly. */
constexpr GpuActivity promptActivity{1.05, 0.5};

/** Token-like activity: low compute, high memory. */
constexpr GpuActivity tokenActivity{0.35, 0.9};

} // namespace

TEST(GpuSpec, CatalogLookup)
{
    EXPECT_EQ(GpuSpec::byName("A100-80GB").tdpWatts, 400.0);
    EXPECT_EQ(GpuSpec::byName("A100-40GB").memoryGb, 40.0);
    EXPECT_EQ(GpuSpec::byName("H100-80GB").tdpWatts, 700.0);
}

TEST(GpuSpecDeath, UnknownNameFatal)
{
    EXPECT_DEATH(GpuSpec::byName("B200"), "unknown GPU");
}

TEST(GpuPowerModel, IdlePowerAtZeroActivity)
{
    GpuPowerModel gpu = a100();
    EXPECT_DOUBLE_EQ(gpu.powerWatts(), gpu.spec().idleWatts);
}

TEST(GpuPowerModel, PromptActivityExceedsTdp)
{
    // Insight 4: prompt phases reach or exceed TDP.
    GpuPowerModel gpu = a100();
    gpu.setActivity(promptActivity);
    EXPECT_GT(gpu.powerWatts(), gpu.spec().tdpWatts);
    EXPECT_LT(gpu.powerWatts(), gpu.spec().tdpWatts * 1.15);
}

TEST(GpuPowerModel, TokenActivityWellBelowTdp)
{
    GpuPowerModel gpu = a100();
    gpu.setActivity(tokenActivity);
    double ratio = gpu.powerWatts() / gpu.spec().tdpWatts;
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 0.8);
}

TEST(GpuPowerModel, PowerMonotonicInActivity)
{
    GpuPowerModel gpu = a100();
    double last = 0.0;
    for (double a = 0.0; a <= 1.1; a += 0.1) {
        gpu.setActivity({a, a * 0.5});
        double p = gpu.powerWatts();
        EXPECT_GT(p, last);
        last = p;
    }
}

TEST(GpuPowerModel, PowerMonotonicInClock)
{
    GpuPowerModel gpu = a100();
    gpu.setActivity(promptActivity);
    double last = 1e9;
    for (double mhz = 1410.0; mhz >= 210.0; mhz -= 100.0) {
        gpu.lockClock(mhz);
        double p = gpu.powerWatts();
        EXPECT_LT(p, last);
        last = p;
    }
}

TEST(GpuPowerModel, LockClampedToLegalRange)
{
    GpuPowerModel gpu = a100();
    gpu.lockClock(50.0);
    EXPECT_DOUBLE_EQ(gpu.effectiveClockMhz(), gpu.spec().minSmClockMhz);
    gpu.lockClock(5000.0);
    EXPECT_DOUBLE_EQ(gpu.effectiveClockMhz(), gpu.spec().maxSmClockMhz);
}

TEST(GpuPowerModel, UnlockRestoresMaxClock)
{
    GpuPowerModel gpu = a100();
    gpu.lockClock(1100.0);
    EXPECT_TRUE(gpu.clockLocked());
    gpu.unlockClock();
    EXPECT_FALSE(gpu.clockLocked());
    EXPECT_DOUBLE_EQ(gpu.effectiveClockMhz(), gpu.spec().maxSmClockMhz);
}

TEST(GpuPowerModel, FrequencyLockReclaimsPaperRange)
{
    // Fig 10: a 1.1 GHz lock reclaims roughly 20 % of peak power.
    GpuPowerModel gpu = a100();
    gpu.setActivity(promptActivity);
    double uncapped = gpu.powerWatts();
    gpu.lockClock(1100.0);
    double reduction = 1.0 - gpu.powerWatts() / uncapped;
    EXPECT_GT(reduction, 0.15);
    EXPECT_LT(reduction, 0.30);
}

TEST(GpuPowerModel, PowerBrakeDropsPowerDrastically)
{
    GpuPowerModel gpu = a100();
    gpu.setActivity(promptActivity);
    double before = gpu.powerWatts();
    gpu.setPowerBrake(true);
    EXPECT_DOUBLE_EQ(gpu.effectiveClockMhz(),
                     gpu.spec().powerBrakeClockMhz);
    EXPECT_LT(gpu.powerWatts(), before * 0.55);
    gpu.setPowerBrake(false);
    EXPECT_DOUBLE_EQ(gpu.powerWatts(), before);
}

TEST(GpuPowerModel, BrakeOverridesLock)
{
    GpuPowerModel gpu = a100();
    gpu.lockClock(1300.0);
    gpu.setPowerBrake(true);
    EXPECT_DOUBLE_EQ(gpu.effectiveClockMhz(),
                     gpu.spec().powerBrakeClockMhz);
    gpu.setPowerBrake(false);
    EXPECT_DOUBLE_EQ(gpu.effectiveClockMhz(), 1300.0);
}

TEST(GpuPowerModel, CapControllerConvergesUnderCap)
{
    GpuPowerModel gpu = a100();
    gpu.setActivity(promptActivity);
    gpu.setPowerCap(325.0);
    // Before any controller step the cap has no effect (reactive).
    EXPECT_GT(gpu.powerWatts(), 325.0);
    for (int i = 0; i < 200; ++i)
        gpu.stepCapController();
    EXPECT_LE(gpu.powerWatts(), 325.0 * 1.01);
    EXPECT_GT(gpu.powerWatts(), 325.0 * 0.85);
}

TEST(GpuPowerModel, CapOvershootOnSuddenSpike)
{
    // Fig 9b: prompt spikes exceed the cap before the controller
    // reacts.
    GpuPowerModel gpu = a100();
    gpu.setPowerCap(325.0);
    gpu.setActivity(tokenActivity);
    for (int i = 0; i < 200; ++i)
        gpu.stepCapController();
    // Token phase sits under the cap without throttling...
    EXPECT_LT(gpu.powerWatts(), 325.0);
    // ...so a sudden prompt spike overshoots it.
    gpu.setActivity(promptActivity);
    EXPECT_GT(gpu.powerWatts(), 325.0);
}

TEST(GpuPowerModel, CapRecoveryIsGradual)
{
    GpuPowerModel gpu = a100();
    gpu.setActivity(promptActivity);
    gpu.setPowerCap(325.0);
    for (int i = 0; i < 200; ++i)
        gpu.stepCapController();
    double throttled = gpu.effectiveClockMhz();
    // Load drops; clock must recover but not instantly.
    gpu.setActivity(tokenActivity);
    gpu.stepCapController();
    double oneStep = gpu.effectiveClockMhz();
    EXPECT_GT(oneStep, throttled);
    EXPECT_LT(oneStep, gpu.spec().maxSmClockMhz);
    for (int i = 0; i < 500; ++i)
        gpu.stepCapController();
    EXPECT_NEAR(gpu.effectiveClockMhz(), gpu.spec().maxSmClockMhz, 1.0);
}

TEST(GpuPowerModel, ClearPowerCapRestores)
{
    GpuPowerModel gpu = a100();
    gpu.setActivity(promptActivity);
    gpu.setPowerCap(325.0);
    for (int i = 0; i < 100; ++i)
        gpu.stepCapController();
    gpu.clearPowerCap();
    EXPECT_FALSE(gpu.powerCapped());
    EXPECT_DOUBLE_EQ(gpu.effectiveClockMhz(), gpu.spec().maxSmClockMhz);
}

TEST(GpuPowerModel, CapClampedToLegalRange)
{
    GpuPowerModel gpu = a100();
    gpu.setPowerCap(100.0);
    EXPECT_DOUBLE_EQ(gpu.powerCapWatts(), gpu.spec().minPowerCapWatts);
    gpu.setPowerCap(9999.0);
    EXPECT_DOUBLE_EQ(gpu.powerCapWatts(), gpu.spec().maxPowerCapWatts);
}

TEST(GpuPowerModel, SlowdownIdentityAtMaxClock)
{
    GpuPowerModel gpu = a100();
    EXPECT_DOUBLE_EQ(gpu.slowdownFactor(1.0), 1.0);
    EXPECT_DOUBLE_EQ(gpu.slowdownFactor(0.0), 1.0);
}

TEST(GpuPowerModel, SlowdownScalesWithComputeBoundFraction)
{
    GpuPowerModel gpu = a100();
    gpu.lockClock(705.0);  // half of max
    EXPECT_NEAR(gpu.slowdownFactor(1.0), 2.0, 1e-9);
    EXPECT_NEAR(gpu.slowdownFactor(0.5), 1.5, 1e-9);
    EXPECT_DOUBLE_EQ(gpu.slowdownFactor(0.0), 1.0);
}

TEST(GpuPowerModelDeath, NegativeActivityPanics)
{
    GpuPowerModel gpu = a100();
    EXPECT_DEATH(gpu.setActivity({-0.1, 0.0}), "negative activity");
}

TEST(GpuPowerModelDeath, BadComputeBoundFractionPanics)
{
    GpuPowerModel gpu = a100();
    EXPECT_DEATH(gpu.slowdownFactor(1.5), "outside");
}

/**
 * Property sweep: superlinear power/performance trade-off of
 * Insight 7 — relative power reduction always exceeds relative
 * performance loss across the supported lock range for a
 * memory-bound (token-like) phase.
 */
class FrequencySweep : public ::testing::TestWithParam<double>
{
};

TEST_P(FrequencySweep, PowerSavingsBeatPerfLossForTokenPhase)
{
    double mhz = GetParam();
    GpuPowerModel gpu = a100();
    gpu.setActivity(tokenActivity);
    double basePower = gpu.powerWatts();

    gpu.lockClock(mhz);
    double powerReduction = 1.0 - gpu.powerWatts() / basePower;
    double perfLoss = 1.0 - 1.0 / gpu.slowdownFactor(0.35);

    EXPECT_GT(powerReduction, perfLoss);
}

TEST_P(FrequencySweep, PeakPowerNeverBelowIdle)
{
    GpuPowerModel gpu = a100();
    gpu.setActivity(promptActivity);
    gpu.lockClock(GetParam());
    EXPECT_GE(gpu.powerWatts(), gpu.spec().idleWatts);
}

INSTANTIATE_TEST_SUITE_P(LockRange, FrequencySweep,
                         ::testing::Values(1100.0, 1150.0, 1200.0,
                                           1275.0, 1305.0, 1350.0,
                                           1400.0));
