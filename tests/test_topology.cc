/**
 * @file
 * Site-builder and [topology] binding tests, including the
 * path-keyed RNG regression: a row's random streams depend only on
 * (site seed, row name), so adding a row group elsewhere in the
 * topology never perturbs the rows that were already there.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/topology.hh"
#include "config/scenario.hh"
#include "core/oversub_experiment.hh"
#include "sim/random.hh"

namespace {

using namespace polca;
using namespace polca::cluster;

TopologyConfig
twoGroupConfig()
{
    TopologyConfig config;
    config.enabled = true;
    TopologyRowGroup a;
    a.name = "a100";
    a.rows = 2;
    a.racksPerRow = 2;
    a.serversPerRack = 3;
    config.groups.push_back(a);
    TopologyRowGroup h;
    h.name = "h100";
    h.rows = 1;
    h.racksPerRow = 2;
    h.serversPerRack = 3;
    h.server = "DGX-H100";
    h.model = "Llama2-70B";
    config.groups.push_back(h);
    return config;
}

} // namespace

TEST(Topology, BuildsTheDeclaredTree)
{
    sim::Simulation sim(1);
    TopologyConfig config = twoGroupConfig();
    Site site(sim, config, RowConfig{}, sim::Rng(11));

    EXPECT_EQ(site.numServers(), 3 * 2 * 3);
    ASSERT_EQ(site.rows().size(), 3u);
    EXPECT_EQ(site.rows()[0].name, "a1000");
    EXPECT_EQ(site.rows()[1].name, "a1001");
    EXPECT_EQ(site.rows()[2].name, "h1000");
    EXPECT_EQ(site.rows()[0].domain->path(), "site.a1000");
    EXPECT_EQ(site.rows()[2].domain->path(), "site.h1000");

    // Each row: two rack children of three server leaves.
    const PowerDomain &row = *site.rows()[0].domain;
    ASSERT_EQ(row.children().size(), 2u);
    EXPECT_EQ(row.children()[0]->path(), "site.a1000.rack0");
    EXPECT_EQ(row.children()[0]->children().size(), 3u);
    EXPECT_EQ(row.children()[0]->numServers(), 3);
}

TEST(Topology, BudgetsStackMultiplicatively)
{
    sim::Simulation sim(1);
    TopologyConfig config = twoGroupConfig();
    config.rowBudgetFraction = 0.9;
    config.siteBudgetFraction = 0.8;
    Site site(sim, config, RowConfig{}, sim::Rng(11));

    double rowNameplate = 2 * 3 * 4950.0;
    EXPECT_DOUBLE_EQ(site.rows()[0].domain->budgetWatts(),
                     0.9 * rowNameplate);
    EXPECT_DOUBLE_EQ(site.root().budgetWatts(),
                     0.8 * (3 * 0.9 * rowNameplate));
}

TEST(Topology, ScenarioBindingRoundTrips)
{
    config::Diagnostics diag;
    config::ScenarioSet set = config::loadScenarioString(
        "[topology]\n"
        "enabled = true\n"
        "row_budget_fraction = 90%\n"
        "site_budget_fraction = 85%\n"
        "rack_breaker_limit_fraction = 1.3\n"
        "\n"
        "[[topology.rows]]\n"
        "name = \"a100\"\n"
        "rows = 2\n"
        "racks_per_row = 3\n"
        "servers_per_rack = 4\n"
        "server = \"DGX-A100-40GB\"\n"
        "model = \"Llama2-70B\"\n"
        "lp_server_fraction = 40%\n",
        "test.toml", {}, diag);
    ASSERT_TRUE(diag.ok()) << diag.str();

    const TopologyConfig &topology =
        set.points.front().config.topology;
    EXPECT_TRUE(topology.enabled);
    EXPECT_DOUBLE_EQ(topology.rowBudgetFraction, 0.9);
    EXPECT_DOUBLE_EQ(topology.siteBudgetFraction, 0.85);
    EXPECT_DOUBLE_EQ(topology.rackBreakerLimitFraction, 1.3);
    ASSERT_EQ(topology.groups.size(), 1u);
    EXPECT_EQ(topology.groups[0].name, "a100");
    EXPECT_EQ(topology.groups[0].rows, 2);
    EXPECT_EQ(topology.groups[0].racksPerRow, 3);
    EXPECT_EQ(topology.groups[0].serversPerRack, 4);
    EXPECT_EQ(topology.groups[0].server, "DGX-A100-40GB");
    EXPECT_EQ(topology.groups[0].model, "Llama2-70B");
    EXPECT_DOUBLE_EQ(topology.groups[0].lpServerFraction, 0.4);
    EXPECT_EQ(topology.numRows(), 2);
    EXPECT_EQ(topology.numServers(), 24);
}

TEST(Topology, RejectsHostileGroups)
{
    auto error = [](const std::string &body) {
        config::Diagnostics diag;
        config::loadScenarioString("[topology]\nenabled = true\n" +
                                       body,
                                   "test.toml", {}, diag);
        EXPECT_FALSE(diag.ok()) << "expected a binding error";
        return diag.str();
    };

    EXPECT_NE(error("[[topology.rows]]\nname = \"Row3\"\n")
                  .find("lowercase"),
              std::string::npos);
    EXPECT_NE(error("[[topology.rows]]\nserver = \"DGX-9000\"\n")
                  .find("unknown server preset"),
              std::string::npos);
    EXPECT_NE(error("[[topology.rows]]\nmodel = \"GPT-9\"\n")
                  .find("unknown model"),
              std::string::npos);
    EXPECT_NE(error("[[topology.rows]]\nname = \"a\"\n"
                    "[[topology.rows]]\nname = \"a\"\n")
                  .find("duplicate group name"),
              std::string::npos);
    EXPECT_NE(error("").find("without any"), std::string::npos);
}

TEST(Topology, SiteModeRejectsArmedFaultAndChaosPlans)
{
    config::Diagnostics diag;
    config::loadScenarioString("[topology]\n"
                               "enabled = true\n"
                               "[[topology.rows]]\n"
                               "name = \"a\"\n"
                               "[faults]\n"
                               "scenario = \"flaky-sensor\"\n",
                               "test.toml", {}, diag);
    EXPECT_FALSE(diag.ok());
    EXPECT_NE(diag.str().find("fault injection"), std::string::npos);

    config::Diagnostics diag2;
    config::loadScenarioString("[topology]\n"
                               "enabled = true\n"
                               "[[topology.rows]]\n"
                               "name = \"a\"\n"
                               "[chaos]\n"
                               "enabled = true\n",
                               "test.toml", {}, diag2);
    EXPECT_FALSE(diag2.ok());
    EXPECT_NE(diag2.str().find("chaos"), std::string::npos);
}

TEST(Topology, ForkPathDecorrelatesByNameOnly)
{
    sim::Rng parent(42);
    sim::Rng again(42);
    EXPECT_EQ(parent.forkPath("row3").seed(),
              again.forkPath("row3").seed());
    EXPECT_NE(parent.forkPath("row3").seed(),
              parent.forkPath("row4").seed());
    EXPECT_NE(parent.forkPath("row3").seed(),
              sim::Rng(43).forkPath("row3").seed());
}

TEST(Topology, AddingAGroupLeavesOtherRowsByteIdentical)
{
    // The satellite regression: run a site, then the same site with
    // an extra group appended, and require the original rows' power
    // traces to be byte-identical — path-keyed streams mean new
    // domains never reshuffle old ones.
    auto run = [](bool withExtraGroup) {
        core::ExperimentConfig config;
        config.seed = 9;
        config.duration = sim::secondsToTicks(120);
        config.recordRowSeries = true;
        config.topology.enabled = true;
        TopologyRowGroup a;
        a.name = "a100";
        a.rows = 2;
        a.racksPerRow = 2;
        a.serversPerRack = 2;
        config.topology.groups.push_back(a);
        if (withExtraGroup) {
            TopologyRowGroup h;
            h.name = "h100";
            h.rows = 1;
            h.racksPerRow = 2;
            h.serversPerRack = 2;
            h.server = "DGX-H100";
            h.model = "Llama2-70B";
            config.topology.groups.push_back(h);
        }
        return core::runOversubExperiment(config);
    };

    core::ExperimentResult before = run(false);
    core::ExperimentResult after = run(true);

    ASSERT_EQ(before.domainPowerSeries.size(), 2u);
    ASSERT_EQ(after.domainPowerSeries.size(), 3u);
    for (std::size_t r = 0; r < 2; ++r) {
        const core::DomainPowerSeries &b = before.domainPowerSeries[r];
        const core::DomainPowerSeries &a = after.domainPowerSeries[r];
        EXPECT_EQ(b.path, a.path);
        ASSERT_EQ(b.series.size(), a.series.size());
        for (std::size_t i = 0; i < b.series.size(); ++i) {
            ASSERT_EQ(b.series.at(i).time, a.series.at(i).time);
            // Bitwise equality: the row's whole trajectory — trace,
            // dispatch, batching, telemetry — must be unperturbed.
            ASSERT_EQ(b.series.at(i).value, a.series.at(i).value)
                << b.path << " diverged at sample " << i;
        }
    }
}
