/**
 * @file
 * obs::TraceRecorder: recording semantics, category gating, ring
 * overflow, export formats, and whole-experiment determinism.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#include "analysis/csv.hh"
#include "core/oversub_experiment.hh"
#include "faults/fault_plan.hh"
#include "obs/observability.hh"
#include "obs/trace_recorder.hh"

namespace {

using namespace polca;

TEST(TraceRecorder, DisabledByDefault)
{
    obs::TraceRecorder recorder;
    EXPECT_FALSE(recorder.enabled(obs::TraceCategory::Control));
    recorder.instant(obs::TraceCategory::Control, "x", 10);
    EXPECT_EQ(recorder.size(), 0u);
    EXPECT_EQ(recorder.recorded(), 0u);
}

TEST(TraceRecorder, RecordsInstantAndComplete)
{
    obs::TraceRecorder recorder;
    recorder.setCategoryMask(obs::kAllTraceCategories);
    recorder.complete(obs::TraceCategory::Control, "span", 100, 40, 2,
                      1.5);
    recorder.instant(obs::TraceCategory::Power, "mark", 50, 1, 7.0);

    auto events = recorder.events();
    ASSERT_EQ(events.size(), 2u);
    // events() is ordered by start time, not record order.
    EXPECT_STREQ(events[0].name, "mark");
    EXPECT_EQ(events[0].start, 50);
    EXPECT_LT(events[0].duration, 0);  // instant
    EXPECT_STREQ(events[1].name, "span");
    EXPECT_EQ(events[1].duration, 40);
    EXPECT_EQ(events[1].track, 2);
    EXPECT_DOUBLE_EQ(events[1].value, 1.5);
}

TEST(TraceRecorder, CategoryMaskFilters)
{
    obs::TraceRecorder recorder;
    recorder.setCategoryMask(
        static_cast<std::uint32_t>(obs::TraceCategory::Control));
    recorder.instant(obs::TraceCategory::Control, "kept", 1);
    recorder.instant(obs::TraceCategory::Cluster, "filtered", 2);
    auto events = recorder.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "kept");
}

TEST(TraceRecorder, ParseCategories)
{
    EXPECT_EQ(obs::parseTraceCategories("all"),
              obs::kAllTraceCategories);
    EXPECT_EQ(obs::parseTraceCategories(""),
              obs::kAllTraceCategories);
    EXPECT_EQ(
        obs::parseTraceCategories("control,fault"),
        static_cast<std::uint32_t>(obs::TraceCategory::Control) |
            static_cast<std::uint32_t>(obs::TraceCategory::Fault));
}

TEST(TraceRecorderDeathTest, ParseRejectsUnknownCategory)
{
    EXPECT_EXIT(obs::parseTraceCategories("control,bogus"),
                ::testing::ExitedWithCode(1), "bogus");
}

TEST(TraceRecorder, RingOverflowDropsOldest)
{
    obs::TraceRecorder recorder(4);
    recorder.setCategoryMask(obs::kAllTraceCategories);
    for (int i = 0; i < 6; ++i) {
        recorder.instant(obs::TraceCategory::Sim, "e",
                         static_cast<sim::Tick>(i));
    }
    EXPECT_EQ(recorder.size(), 4u);
    EXPECT_EQ(recorder.recorded(), 6u);
    EXPECT_EQ(recorder.overwritten(), 2u);
    auto events = recorder.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().start, 2);  // 0 and 1 were overwritten
    EXPECT_EQ(events.back().start, 5);
}

TEST(TraceRecorder, ChromeJsonShape)
{
    obs::TraceRecorder recorder;
    recorder.setCategoryMask(obs::kAllTraceCategories);
    recorder.complete(obs::TraceCategory::Control, "cap_issue", 1000,
                      40, 3, 940.0);
    recorder.instant(obs::TraceCategory::Power, "breaker_trip", 2000,
                     0, 15000.0);

    std::ostringstream os;
    recorder.exportChromeJson(os);
    std::string json = os.str();

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"cap_issue\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":40"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"control\""), std::string::npos);
    // Balanced braces/brackets => loadable by chrome://tracing.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(TraceRecorder, CsvExportParsesBack)
{
    obs::TraceRecorder recorder;
    recorder.setCategoryMask(obs::kAllTraceCategories);
    recorder.complete(obs::TraceCategory::Cluster, "batch", 10, 5, 1,
                      2.0);

    std::ostringstream os;
    recorder.exportCsv(os);
    auto rows = analysis::parseCsv(os.str());
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0][0], "start_us");
    EXPECT_EQ(rows[1][0], "10");
    EXPECT_EQ(rows[1][1], "5");
    EXPECT_EQ(rows[1][2], "batch");
    EXPECT_EQ(rows[1][3], "cluster");
}

TEST(TraceRecorder, ClearEmptiesBuffer)
{
    obs::TraceRecorder recorder;
    recorder.setCategoryMask(obs::kAllTraceCategories);
    recorder.instant(obs::TraceCategory::Sim, "e", 1);
    recorder.clear();
    EXPECT_EQ(recorder.size(), 0u);
    EXPECT_TRUE(recorder.events().empty());
}

/** Run a small seeded experiment with full observability. */
void
runObserved(obs::Observability &observability, std::string &metrics,
            std::string &json)
{
    observability.trace.setCategoryMask(obs::kAllTraceCategories);

    core::ExperimentConfig config;
    config.row.baseServers = 6;
    config.row.addedServerFraction = 0.30;
    config.duration = sim::secondsToTicks(1200.0);
    config.seed = 7;
    config.manager.smbpbiFailureProbability = 0.2;
    // A telemetry blackout guarantees cap traffic regardless of the
    // load level: the watchdog's fail-safe escalates every rule,
    // which issues lock commands on both pools.
    config.faultPlan = faults::scenarioByName(
        "blackout", config.duration,
        static_cast<int>(config.row.baseServers *
                         (1.0 + config.row.addedServerFraction)));
    config.obs = &observability;
    core::runOversubExperiment(config);

    std::ostringstream metricsOs;
    observability.metrics.dump(metricsOs);
    metrics = metricsOs.str();
    std::ostringstream jsonOs;
    observability.trace.exportChromeJson(jsonOs);
    json = jsonOs.str();
}

TEST(TraceExport, DeterministicAcrossIdenticalRuns)
{
    obs::Observability a;
    obs::Observability b;
    std::string metricsA, metricsB, jsonA, jsonB;
    runObserved(a, metricsA, jsonA);
    runObserved(b, metricsB, jsonB);

    EXPECT_FALSE(metricsA.empty());
    EXPECT_EQ(metricsA, metricsB);
    EXPECT_EQ(jsonA, jsonB);
    EXPECT_GT(a.trace.recorded(), 0u);
    EXPECT_EQ(a.trace.recorded(), b.trace.recorded());
}

TEST(TraceExport, CapIssueSpansMatchConfiguredLatency)
{
    obs::Observability observability;
    std::string metrics, json;
    runObserved(observability, metrics, json);

    core::ExperimentConfig config;  // defaults match runObserved
    std::size_t spans = 0;
    for (const obs::TraceEvent &e : observability.trace.events()) {
        if (std::strcmp(e.name, "cap_issue") != 0)
            continue;
        ++spans;
        EXPECT_EQ(e.duration, config.manager.oobCommandLatency);
    }
    EXPECT_GT(spans, 0u);
}

} // namespace
