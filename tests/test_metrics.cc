/**
 * @file
 * obs::MetricsRegistry: counter/gauge/histogram semantics,
 * get-or-create identity, reset, and deterministic dumps.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <tuple>

#include "analysis/csv.hh"
#include "obs/metrics.hh"

namespace {

using namespace polca;

TEST(Counter, IncrementForms)
{
    obs::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    ++c;
    c += 40;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndSource)
{
    obs::Gauge g;
    g.set(3.5);
    EXPECT_DOUBLE_EQ(g.value(), 3.5);

    double backing = 7.0;
    g.setSource([&backing] { return backing; });
    EXPECT_DOUBLE_EQ(g.value(), 7.0);
    backing = 9.0;
    EXPECT_DOUBLE_EQ(g.value(), 9.0);

    // freeze() snapshots the source and drops it: later changes to
    // the backing variable no longer show through.
    g.freeze();
    backing = 100.0;
    EXPECT_DOUBLE_EQ(g.value(), 9.0);
}

TEST(Gauge, VolatileFlag)
{
    obs::Gauge g;
    EXPECT_FALSE(g.isVolatile());
    g.setVolatile(true);
    EXPECT_TRUE(g.isVolatile());
}

TEST(Histogram, BucketsAndSummary)
{
    obs::Histogram h(0.0, 10.0, 5);
    h.add(1.0);   // bucket 0
    h.add(3.0);   // bucket 1
    h.add(9.9);   // bucket 4
    h.add(-5.0);  // clamps to bucket 0
    h.add(25.0);  // clamps to bucket 4

    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(4), 2u);
    EXPECT_DOUBLE_EQ(h.min(), -5.0);
    EXPECT_DOUBLE_EQ(h.max(), 25.0);
    EXPECT_DOUBLE_EQ(h.sum(), 33.9);
    EXPECT_NEAR(h.mean(), 33.9 / 5.0, 1e-12);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucketCount(0), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(MetricsRegistry, GetOrCreateReturnsSameObject)
{
    obs::MetricsRegistry registry;
    obs::Counter &a = registry.counter("x.count", "first");
    obs::Counter &b = registry.counter("x.count", "ignored");
    EXPECT_EQ(&a, &b);
    ++a;
    ++b;
    EXPECT_EQ(a.value(), 2u);

    obs::Histogram &h1 = registry.histogram("x.hist", 0.0, 1.0, 4);
    obs::Histogram &h2 = registry.histogram("x.hist", 0.0, 1.0, 4);
    EXPECT_EQ(&h1, &h2);

    EXPECT_TRUE(registry.has("x.count"));
    EXPECT_FALSE(registry.has("x.other"));
    EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistryDeathTest, KindMismatchPanics)
{
    obs::MetricsRegistry registry;
    std::ignore = registry.counter("dup");
    EXPECT_DEATH(std::ignore = registry.gauge("dup"), "another kind");
    EXPECT_DEATH(std::ignore = registry.histogram("dup", 0.0, 1.0, 2),
                 "another kind");

    std::ignore = registry.histogram("shaped", 0.0, 1.0, 4);
    EXPECT_DEATH(std::ignore = registry.histogram("shaped", 0.0, 2.0, 4),
                 "different shape");
}

TEST(MetricsRegistry, ResetZeroesEverything)
{
    obs::MetricsRegistry registry;
    registry.counter("c") += 5;
    registry.gauge("g").set(2.0);
    registry.histogram("h", 0.0, 1.0, 2).add(0.5);

    registry.reset();
    EXPECT_EQ(registry.counter("c").value(), 0u);
    EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 0.0);
    EXPECT_EQ(registry.histogram("h", 0.0, 1.0, 2).count(), 0u);
}

TEST(MetricsRegistry, DumpIsNameSortedAndRepeatable)
{
    obs::MetricsRegistry registry;
    // Register deliberately out of order.
    registry.counter("z.last") += 3;
    registry.counter("a.first", "described") += 1;
    registry.gauge("m.middle").set(0.5);

    std::ostringstream first;
    registry.dump(first);
    std::ostringstream second;
    registry.dump(second);
    EXPECT_EQ(first.str(), second.str());

    std::string text = first.str();
    std::size_t posA = text.find("a.first");
    std::size_t posM = text.find("m.middle");
    std::size_t posZ = text.find("z.last");
    ASSERT_NE(posA, std::string::npos);
    ASSERT_NE(posM, std::string::npos);
    ASSERT_NE(posZ, std::string::npos);
    EXPECT_LT(posA, posM);
    EXPECT_LT(posM, posZ);
    // Descriptions ride along as trailing comments.
    EXPECT_NE(text.find("# described"), std::string::npos);
}

TEST(MetricsRegistry, VolatileGaugesSkippedByDumps)
{
    obs::MetricsRegistry registry;
    registry.counter("kept") += 1;
    obs::Gauge &rate = registry.gauge("wallclock.rate");
    rate.setVolatile(true);
    rate.set(123.0);

    std::ostringstream text;
    registry.dump(text);
    EXPECT_NE(text.str().find("kept"), std::string::npos);
    EXPECT_EQ(text.str().find("wallclock.rate"), std::string::npos);

    std::ostringstream csv;
    registry.dumpCsv(csv);
    EXPECT_EQ(csv.str().find("wallclock.rate"), std::string::npos);

    // The value itself stays readable for interactive use.
    EXPECT_DOUBLE_EQ(rate.value(), 123.0);
}

TEST(MetricsRegistry, DumpCsvParsesBack)
{
    obs::MetricsRegistry registry;
    registry.counter("c.one") += 7;
    registry.histogram("h.lat", 0.0, 2.0, 2).add(0.5);

    std::ostringstream csv;
    registry.dumpCsv(csv);
    auto rows = analysis::parseCsv(csv.str());
    ASSERT_GE(rows.size(), 2u);
    EXPECT_EQ(rows[0],
              (std::vector<std::string>{"name", "kind", "value"}));
    // First data row is the counter (names sort before h.*).
    EXPECT_EQ(rows[1][0], "c.one");
    EXPECT_EQ(rows[1][1], "counter");
    EXPECT_EQ(rows[1][2], "7");
    // Histogram expands to ::count/::mean/... scalar rows.
    bool sawCount = false;
    for (const auto &row : rows) {
        if (row[0] == "h.lat::count") {
            sawCount = true;
            EXPECT_EQ(row[2], "1");
        }
    }
    EXPECT_TRUE(sawCount);
}

TEST(MetricsRegistry, FreezeGaugesSnapshotsSources)
{
    obs::MetricsRegistry registry;
    double live = 4.0;
    registry.gauge("snap").setSource([&live] { return live; });
    registry.freezeGauges();
    live = 99.0;  // a destroyed component would dangle here
    EXPECT_DOUBLE_EQ(registry.gauge("snap").value(), 4.0);
}

TEST(Gauge, ResetKeepsSourceBackedView)
{
    // A source-backed gauge is a live view, not an accumulator:
    // reset() must not zero its cached value or drop the source.
    double live = 6.0;
    obs::Gauge g;
    g.setSource([&live] { return live; });
    EXPECT_TRUE(g.hasSource());
    g.reset();
    EXPECT_TRUE(g.hasSource());
    EXPECT_DOUBLE_EQ(g.value(), 6.0);
    live = 8.5;
    EXPECT_DOUBLE_EQ(g.value(), 8.5);

    // A plain set() gauge is owned state and does reset to zero.
    obs::Gauge plain;
    plain.set(3.0);
    EXPECT_FALSE(plain.hasSource());
    plain.reset();
    EXPECT_DOUBLE_EQ(plain.value(), 0.0);
}

TEST(MetricsRegistry, DumpEmitsBucketBounds)
{
    obs::MetricsRegistry registry;
    obs::Histogram &h = registry.histogram("fix.hist", 0.0, 10.0, 5);
    h.add(1.0);
    h.add(9.9);

    std::ostringstream text;
    registry.dump(text);
    // Fixed-width buckets label their [lo,hi) range (all five are
    // dumped; only log histograms skip empty buckets).
    EXPECT_NE(text.str().find("fix.hist::bucket0[0,2)"),
              std::string::npos);
    EXPECT_NE(text.str().find("fix.hist::bucket1[2,4)"),
              std::string::npos);
    EXPECT_NE(text.str().find("fix.hist::bucket4[8,10)"),
              std::string::npos);
}

TEST(MetricsRegistry, LogHistogramDumpHasPercentiles)
{
    obs::MetricsRegistry registry;
    obs::LogHistogram &h =
        registry.logHistogram("lat.s", 1e-3, 100.0, 0.01);
    for (int i = 1; i <= 100; ++i)
        h.add(static_cast<double>(i) * 0.01);

    std::ostringstream csv;
    registry.dumpCsv(csv);
    auto rows = analysis::parseCsv(csv.str());
    bool sawP99 = false, sawBucket = false;
    for (const auto &row : rows) {
        if (row[0] == "lat.s::p99") {
            sawP99 = true;
            EXPECT_EQ(row[1], "loghist");
            double v = std::stod(row[2]);
            EXPECT_NEAR(v, 0.99, 0.99 * 0.01 + 1e-9);
        }
        if (row[0].rfind("lat.s::bucket", 0) == 0) {
            sawBucket = true;
            // Bucket labels carry their bounds.
            EXPECT_NE(row[0].find('['), std::string::npos);
            EXPECT_NE(row[0].find(')'), std::string::npos);
        }
    }
    EXPECT_TRUE(sawP99);
    EXPECT_TRUE(sawBucket);
}

TEST(MetricsRegistry, VisitScalarsKindsAndVolatileSkip)
{
    obs::MetricsRegistry registry;
    registry.counter("c.total") += 4;
    registry.gauge("g.level").set(1.5);
    obs::Gauge &vol = registry.gauge("v.rate");
    vol.setVolatile(true);
    vol.set(99.0);
    registry.histogram("h.fix", 0.0, 1.0, 2).add(0.5);
    registry.logHistogram("h.log", 1e-3, 10.0, 0.01).add(0.5);

    std::map<std::string,
             std::pair<obs::MetricsRegistry::ScalarKind, double>>
        seen;
    registry.visitScalars([&](const std::string &name,
                              obs::MetricsRegistry::ScalarKind kind,
                              double value) {
        seen[name] = {kind, value};
    });

    using Kind = obs::MetricsRegistry::ScalarKind;
    ASSERT_EQ(seen.count("c.total"), 1u);
    EXPECT_EQ(seen["c.total"].first, Kind::Counter);
    EXPECT_DOUBLE_EQ(seen["c.total"].second, 4.0);
    ASSERT_EQ(seen.count("g.level"), 1u);
    EXPECT_EQ(seen["g.level"].first, Kind::Gauge);
    EXPECT_EQ(seen.count("v.rate"), 0u);  // volatile gauges skipped
    ASSERT_EQ(seen.count("h.fix::count"), 1u);
    EXPECT_EQ(seen["h.fix::count"].first, Kind::HistogramCount);
    EXPECT_DOUBLE_EQ(seen["h.fix::count"].second, 1.0);
    ASSERT_EQ(seen.count("h.log::count"), 1u);
    EXPECT_EQ(seen["h.log::count"].first, Kind::HistogramCount);
}

} // namespace
