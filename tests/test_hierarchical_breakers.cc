/**
 * @file
 * Hierarchical breaker accounting over the power-domain tree: each
 * level's breaker watches only its own rollup, so protection at one
 * level is independent of the levels above and below it — a site can
 * trip while every row clears, and one hot row can trip while the
 * site rides through.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/power_domain.hh"
#include "sim/timeseries.hh"

using namespace polca::cluster;
using namespace polca::telemetry;
using namespace polca::sim;

namespace {

PowerDomain::Options
domain(std::string name, DomainLevel level, double budget,
       Tick interval = 0, bool record = false)
{
    PowerDomain::Options options;
    options.name = std::move(name);
    options.level = level;
    options.budgetWatts = budget;
    options.telemetryInterval = interval;
    options.recordSeries = record;
    return options;
}

BreakerModel::Config
breaker(double limitWatts)
{
    BreakerModel::Config config;
    config.breakerLimitWatts = limitWatts;
    config.tripDuration = secondsToTicks(10);
    return config;
}

} // namespace

TEST(HierarchicalBreakers, SiteTripsWhileEveryRowClears)
{
    // Two rows, each drawing 90 W against a 120 W row limit — both
    // clear.  The site breaker sees their 180 W sum against a 160 W
    // limit and trips.
    Simulation sim;
    PowerDomain site(sim, domain("site", DomainLevel::Site, 150.0));
    PowerDomain &row0 =
        site.addChild(domain("r0", DomainLevel::Row, 100.0));
    PowerDomain &row1 =
        site.addChild(domain("r1", DomainLevel::Row, 100.0));
    row0.addLeaf("a", [] { return 90.0; }, 100.0);
    row1.addLeaf("b", [] { return 90.0; }, 100.0);
    row0.armBreaker(breaker(120.0));
    row1.armBreaker(breaker(120.0));
    site.armBreaker(breaker(160.0));
    site.finalize();

    sim.runFor(secondsToTicks(60));

    EXPECT_TRUE(site.breaker()->tripped());
    EXPECT_FALSE(row0.breaker()->tripped());
    EXPECT_FALSE(row1.breaker()->tripped());
}

TEST(HierarchicalBreakers, RowTripsWhileSiteClears)
{
    // One hot row above its own limit; the site rollup stays well
    // under the site limit because the other row idles.
    Simulation sim;
    PowerDomain site(sim, domain("site", DomainLevel::Site, 300.0));
    PowerDomain &hot =
        site.addChild(domain("r0", DomainLevel::Row, 100.0));
    PowerDomain &cold =
        site.addChild(domain("r1", DomainLevel::Row, 100.0));
    hot.addLeaf("a", [] { return 140.0; }, 100.0);
    cold.addLeaf("b", [] { return 10.0; }, 100.0);
    hot.armBreaker(breaker(120.0));
    cold.armBreaker(breaker(120.0));
    site.armBreaker(breaker(300.0));
    site.finalize();

    sim.runFor(secondsToTicks(60));

    EXPECT_TRUE(hot.breaker()->tripped());
    EXPECT_FALSE(cold.breaker()->tripped());
    EXPECT_FALSE(site.breaker()->tripped());
}

TEST(HierarchicalBreakers, SiteTraceIsExactRowSumAtEveryTick)
{
    // The compositional invariant (Wilkins et al.): at every shared
    // telemetry tick the site reading equals the sum of the row
    // readings bit for bit, because the parent's sources are
    // per-child rollups evaluated at the same instant.
    Simulation sim(3);
    Tick interval = secondsToTicks(2);
    PowerDomain site(sim, domain("site", DomainLevel::Site, 0.0,
                                 interval, /*record=*/true));
    PowerDomain &row0 = site.addChild(
        domain("r0", DomainLevel::Row, 0.0, interval, true));
    PowerDomain &row1 = site.addChild(
        domain("r1", DomainLevel::Row, 0.0, interval, true));

    // Time-varying, irrational-ish draws so float identity is a real
    // statement and not an artifact of round numbers.
    row0.addLeaf("a", [&sim] {
        return 90.0 + 13.7 * std::sin(ticksToSeconds(sim.now()));
    }, 100.0);
    row0.addLeaf("b", [&sim] {
        return 45.3 + 7.1 * std::cos(0.3 * ticksToSeconds(sim.now()));
    }, 100.0);
    row1.addLeaf("c", [&sim] {
        return 61.9 + 11.3 * std::sin(0.7 * ticksToSeconds(sim.now()));
    }, 100.0);
    site.finalize();

    sim.runFor(secondsToTicks(120));

    const TimeSeries &siteSeries = site.manager()->series();
    const TimeSeries &s0 = row0.manager()->series();
    const TimeSeries &s1 = row1.manager()->series();
    ASSERT_GT(siteSeries.size(), 10u);
    ASSERT_EQ(siteSeries.size(), s0.size());
    ASSERT_EQ(siteSeries.size(), s1.size());
    for (std::size_t i = 0; i < siteSeries.size(); ++i) {
        EXPECT_EQ(siteSeries.at(i).time, s0.at(i).time);
        // Exact equality on purpose: the rollup must be the
        // left-to-right float sum, not an approximation of it.
        EXPECT_EQ(siteSeries.at(i).value,
                  s0.at(i).value + s1.at(i).value);
    }
}

TEST(HierarchicalBreakers, NearTripAccountsAtItsOwnLevelOnly)
{
    // A site-level excursion shorter than the trip duration counts a
    // near trip at the site; the rows never even see their budgets.
    Simulation sim;
    PowerDomain site(sim, domain("site", DomainLevel::Site, 150.0));
    PowerDomain &row0 =
        site.addChild(domain("r0", DomainLevel::Row, 100.0));
    PowerDomain &row1 =
        site.addChild(domain("r1", DomainLevel::Row, 100.0));
    // Above the 160 W site limit for 8 s of the 10 s trip windup,
    // then back down: a near trip.
    row0.addLeaf("a", [&sim] {
        double t = ticksToSeconds(sim.now());
        return (t >= 10.0 && t < 18.0) ? 95.0 : 60.0;
    }, 100.0);
    row1.addLeaf("b", [&sim] {
        double t = ticksToSeconds(sim.now());
        return (t >= 10.0 && t < 18.0) ? 95.0 : 60.0;
    }, 100.0);
    row0.armBreaker(breaker(120.0));
    row1.armBreaker(breaker(120.0));
    site.armBreaker(breaker(160.0));
    site.finalize();

    sim.runFor(secondsToTicks(60));

    EXPECT_FALSE(site.breaker()->tripped());
    EXPECT_EQ(site.breaker()->nearTrips(), 1u);
    EXPECT_EQ(row0.breaker()->nearTrips(), 0u);
    EXPECT_EQ(row1.breaker()->nearTrips(), 0u);
}
