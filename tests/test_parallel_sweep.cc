/**
 * @file
 * Parallel sweep determinism: a sweep executed with jobs=1 and
 * jobs=8 must produce byte-identical summary.csv and per-point
 * metrics CSVs, and identical in-memory results.  Also covers the
 * scenario layer's reserved [sweep] jobs key.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "config/scenario.hh"
#include "core/sweep_runner.hh"
#include "sim/logging.hh"

namespace {

using namespace polca;

core::ExperimentConfig
tinyConfig(std::uint64_t seed)
{
    core::ExperimentConfig config;
    config.row.baseServers = 2;
    config.duration = sim::secondsToTicks(900);
    config.seed = seed;
    return config;
}

std::vector<core::SweepPoint>
fourPoints()
{
    std::vector<core::SweepPoint> points;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        points.push_back({"seed=" + std::to_string(seed),
                          tinyConfig(seed), ""});
    }
    return points;
}

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(ParallelSweep, ArtifactsAreByteIdenticalAcrossJobCounts)
{
    sim::QuietScope quiet(true);
    const std::string dirSeq = "parallel_sweep_test_j1";
    const std::string dirPar = "parallel_sweep_test_j8";
    std::filesystem::remove_all(dirSeq);
    std::filesystem::remove_all(dirPar);

    core::SweepOptions seq;
    seq.artifactDir = dirSeq;
    seq.runBaseline = true;
    seq.echoProgress = false;
    seq.jobs = 1;

    core::SweepOptions par = seq;
    par.artifactDir = dirPar;
    par.jobs = 8;

    core::SweepRunner seqRunner(fourPoints(), seq);
    core::SweepRunner parRunner(fourPoints(), par);
    const auto &seqResults = seqRunner.run();
    const auto &parResults = parRunner.run();

    ASSERT_EQ(seqResults.size(), 4u);
    ASSERT_EQ(parResults.size(), 4u);

    EXPECT_EQ(slurp(std::filesystem::path(dirSeq) / "summary.csv"),
              slurp(std::filesystem::path(dirPar) / "summary.csv"));

    for (std::size_t i = 0; i < seqResults.size(); ++i) {
        const auto &a = seqResults[i];
        const auto &b = parResults[i];
        EXPECT_EQ(a.label, b.label);
        // Per-point artifact CSVs: same file name stem, same bytes.
        ASSERT_FALSE(a.artifactPath.empty());
        ASSERT_FALSE(b.artifactPath.empty());
        EXPECT_EQ(std::filesystem::path(a.artifactPath).filename(),
                  std::filesystem::path(b.artifactPath).filename());
        EXPECT_EQ(slurp(a.artifactPath), slurp(b.artifactPath))
            << a.artifactPath;
        // Stitched results match field-for-field where it counts.
        EXPECT_EQ(a.result.lowCompletions, b.result.lowCompletions);
        EXPECT_EQ(a.result.highCompletions, b.result.highCompletions);
        EXPECT_EQ(a.result.powerBrakeEvents,
                  b.result.powerBrakeEvents);
        EXPECT_DOUBLE_EQ(a.result.low.p99, b.result.low.p99);
        EXPECT_DOUBLE_EQ(a.result.energyKwh, b.result.energyKwh);
        EXPECT_DOUBLE_EQ(a.lowNorm.p99, b.lowNorm.p99);
        EXPECT_DOUBLE_EQ(a.highNorm.p99, b.highNorm.p99);
        EXPECT_EQ(a.baseline.lowCompletions,
                  b.baseline.lowCompletions);
    }

    std::filesystem::remove_all(dirSeq);
    std::filesystem::remove_all(dirPar);
}

TEST(ParallelSweep, MoreWorkersThanPointsCompletes)
{
    sim::QuietScope quiet(true);
    std::vector<core::SweepPoint> points;
    points.push_back({"only", tinyConfig(3), ""});

    core::SweepOptions options;
    options.runBaseline = true;
    options.echoProgress = false;
    options.jobs = 8;
    core::SweepRunner runner(points, options);
    const auto &results = runner.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GT(results[0].result.lowCompletions +
                  results[0].result.highCompletions,
              0u);
    EXPECT_GT(results[0].baseline.lowCompletions +
                  results[0].baseline.highCompletions,
              0u);
}

TEST(ParallelSweep, SweepJobsKeyIsParsedAndIsNotAnAxis)
{
    const std::string text =
        "[experiment]\n"
        "duration = 900s\n"
        "[row]\n"
        "base_servers = 2\n"
        "[sweep]\n"
        "jobs = 4\n"
        "\"experiment.seed\" = [1, 2]\n";
    config::Diagnostics diag;
    config::ScenarioSet set =
        config::loadScenarioString(text, "jobs-key", {}, diag);
    ASSERT_TRUE(diag.ok()) << diag.str();
    EXPECT_EQ(set.jobs, 4);
    // jobs did not multiply the point count.
    ASSERT_EQ(set.points.size(), 2u);
    EXPECT_EQ(set.points[0].label, "experiment.seed=1");
    // ...and did not leak into the point labels.
    EXPECT_EQ(set.points[0].label.find("jobs"), std::string::npos);
}

TEST(ParallelSweep, SweepJobsZeroMeansHardwareConcurrency)
{
    const std::string text =
        "[sweep]\n"
        "jobs = 0\n";
    config::Diagnostics diag;
    config::ScenarioSet set =
        config::loadScenarioString(text, "jobs-zero", {}, diag);
    ASSERT_TRUE(diag.ok()) << diag.str();
    EXPECT_GE(set.jobs, 1);
}

TEST(ParallelSweep, SweepJobsRejectsBadValues)
{
    for (const char *bad : {"jobs = -2\n", "jobs = \"many\"\n",
                            "jobs = [1, 2]\n"}) {
        config::Diagnostics diag;
        config::loadScenarioString(std::string("[sweep]\n") + bad,
                                   "jobs-bad", {}, diag);
        EXPECT_FALSE(diag.ok()) << bad;
    }
}

/** A point sharing one warmup trajectory, diverging only in policy. */
core::ExperimentConfig
warmupConfig(core::PolicyConfig policy)
{
    core::ExperimentConfig config = tinyConfig(9);
    config.duration = sim::secondsToTicks(1200);
    config.warmup = sim::secondsToTicks(600);
    config.obsOptions.metricsInterval = sim::secondsToTicks(120);
    config.policy = std::move(policy);
    return config;
}

TEST(ParallelSweep, BranchedSweepIsByteIdenticalToFullSimulation)
{
    sim::QuietScope quiet(true);
    const std::string dirFull = "parallel_sweep_test_full";
    const std::string dirBranch = "parallel_sweep_test_branch";
    std::filesystem::remove_all(dirFull);
    std::filesystem::remove_all(dirBranch);

    auto makePoints = [] {
        std::vector<core::SweepPoint> points;
        points.push_back({"policy=polca",
                          warmupConfig(core::PolicyConfig::polca()),
                          "shared-warmup"});
        points.push_back({"policy=nocap",
                          warmupConfig(core::PolicyConfig::noCap()),
                          "shared-warmup"});
        return points;
    };

    core::SweepOptions full;
    full.artifactDir = dirFull;
    full.runBaseline = true;
    full.echoProgress = false;
    full.jobs = 1;
    full.branch = false;

    core::SweepOptions branched = full;
    branched.artifactDir = dirBranch;
    branched.jobs = 4;
    branched.branch = true;

    core::SweepRunner fullRunner(makePoints(), full);
    core::SweepRunner branchRunner(makePoints(), branched);
    const auto &fullResults = fullRunner.run();
    const auto &branchResults = branchRunner.run();

    ASSERT_EQ(fullResults.size(), 2u);
    ASSERT_EQ(branchResults.size(), 2u);
    EXPECT_EQ(slurp(std::filesystem::path(dirFull) / "summary.csv"),
              slurp(std::filesystem::path(dirBranch) /
                    "summary.csv"));
    for (std::size_t i = 0; i < fullResults.size(); ++i) {
        const auto &a = fullResults[i];
        const auto &b = branchResults[i];
        EXPECT_EQ(a.label, b.label);
        ASSERT_FALSE(a.artifactPath.empty());
        EXPECT_EQ(slurp(a.artifactPath), slurp(b.artifactPath))
            << a.artifactPath;
        EXPECT_EQ(a.result.lowCompletions, b.result.lowCompletions);
        EXPECT_DOUBLE_EQ(a.result.low.p99, b.result.low.p99);
        EXPECT_DOUBLE_EQ(a.result.energyKwh, b.result.energyKwh);
        EXPECT_DOUBLE_EQ(a.lowNorm.p99, b.lowNorm.p99);
        EXPECT_DOUBLE_EQ(a.highNorm.p99, b.highNorm.p99);
        EXPECT_EQ(a.baseline.lowCompletions,
                  b.baseline.lowCompletions);
        EXPECT_DOUBLE_EQ(a.baseline.low.p99, b.baseline.low.p99);
    }

    std::filesystem::remove_all(dirFull);
    std::filesystem::remove_all(dirBranch);
}

TEST(ParallelSweep, SweepWarmupAndBranchKeysAreReservedNotAxes)
{
    const std::string text =
        "[experiment]\n"
        "duration = 1200s\n"
        "[row]\n"
        "base_servers = 2\n"
        "[sweep]\n"
        "warmup = 300s\n"
        "branch = false\n"
        "\"experiment.seed\" = [1, 2]\n";
    config::Diagnostics diag;
    config::ScenarioSet set =
        config::loadScenarioString(text, "warmup-key", {}, diag);
    ASSERT_TRUE(diag.ok()) << diag.str();
    EXPECT_FALSE(set.branch);
    ASSERT_EQ(set.points.size(), 2u);
    for (const config::ResolvedScenario &point : set.points) {
        EXPECT_EQ(point.config.warmup, sim::secondsToTicks(300));
        EXPECT_EQ(point.label.find("warmup"), std::string::npos);
        EXPECT_EQ(point.label.find("branch"), std::string::npos);
    }
}

TEST(ParallelSweep, WarmupDigestIgnoresControlPlaneAxesOnly)
{
    const std::string text =
        "[experiment]\n"
        "duration = 1200s\n"
        "[row]\n"
        "base_servers = 2\n"
        "[sweep]\n"
        "warmup = 300s\n"
        "\"policy.preset\" = [\"polca\", \"nocap\"]\n"
        "\"experiment.seed\" = [1, 2]\n";
    config::Diagnostics diag;
    config::ScenarioSet set =
        config::loadScenarioString(text, "digest", {}, diag);
    ASSERT_TRUE(diag.ok()) << diag.str();
    ASSERT_EQ(set.points.size(), 4u);

    std::vector<std::string> digests;
    for (const config::ResolvedScenario &point : set.points) {
        digests.push_back(
            config::warmupDigest(point.config, point.tree));
    }
    // Policy divergence keeps points in one warmup group...
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = i + 1; j < 4; ++j) {
            if (set.points[i].config.seed ==
                set.points[j].config.seed)
                EXPECT_EQ(digests[i], digests[j]) << i << "," << j;
            else  // ...seed divergence does not.
                EXPECT_NE(digests[i], digests[j]) << i << "," << j;
        }
    }
}

TEST(ParallelSweep, SweepWarmupAndBranchRejectBadValues)
{
    for (const char *bad :
         {"warmup = [300s, 600s]\n", "branch = 7\n",
          "branch = \"yes\"\n", "branch = [true, false]\n"}) {
        config::Diagnostics diag;
        config::loadScenarioString(std::string("[sweep]\n") + bad,
                                   "reserved-bad", {}, diag);
        EXPECT_FALSE(diag.ok()) << bad;
    }
}

} // namespace
