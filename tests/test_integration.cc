/**
 * @file
 * Cross-module integration tests reproducing the paper's headline
 * characterization claims at test scale.
 */

#include <gtest/gtest.h>

#include "llm/executor.hh"
#include "llm/model_spec.hh"
#include "llm/phase_model.hh"
#include "llm/segments.hh"
#include "llm/training_model.hh"
#include "power/server_model.hh"
#include "sim/stats.hh"

using namespace polca;
using namespace polca::llm;
using namespace polca::sim;

namespace {

power::ServerModel
makeServer()
{
    return power::ServerModel(power::ServerSpec::dgxA100_80gb());
}

std::vector<std::size_t>
gpusFor(const ModelSpec &model)
{
    std::vector<std::size_t> ids;
    for (int i = 0; i < model.inferenceGpus; ++i)
        ids.push_back(static_cast<std::size_t>(i));
    return ids;
}

} // namespace

TEST(Integration, InferencePowerHasPromptSpikeAndTokenPlateau)
{
    // Fig 6: each request shows a brief spike then a long plateau.
    ModelCatalog catalog;
    const ModelSpec &model = catalog.byName("BLOOM-176B");
    PhaseModel phases(model);
    InferenceConfig config;
    config.inputTokens = 4096;
    config.outputTokens = 256;

    power::ServerModel server = makeServer();
    SegmentExecutor exec(server, gpusFor(model));
    exec.run(inferenceSegments(phases, config));

    const TimeSeries &series = exec.firstGpuPowerSeries();
    double peak = series.maxValue();
    double tdp = 400.0;
    EXPECT_GT(peak, tdp);  // prompt spike at/above TDP

    // Plateau: the median sample is well below the peak and stable.
    Sampler values;
    for (const auto &p : series.points())
        values.add(p.value);
    double median = values.p50();
    EXPECT_LT(median, 0.75 * peak);
    EXPECT_GT(median, 0.5 * tdp);
}

TEST(Integration, PromptPhaseShortRelativeToTokenPhase)
{
    ModelCatalog catalog;
    PhaseModel phases(catalog.byName("BLOOM-176B"));
    InferenceConfig config;
    config.inputTokens = 2048;
    config.outputTokens = 512;

    power::ServerModel server = makeServer();
    SegmentExecutor exec(server,
                         gpusFor(catalog.byName("BLOOM-176B")));
    exec.run(inferenceSegments(phases, config));

    const auto &executed = exec.executedSegments();
    ASSERT_EQ(executed.size(), 2u);
    EXPECT_LT(executed[0].duration * 10, executed[1].duration);
}

TEST(Integration, TrainingWaveformPeaksAndTroughs)
{
    // Fig 4 at server scale: peaks >= TDP with model-specific
    // troughs, repeating each iteration.
    power::ServerModel server(power::ServerSpec::dgxA100_40gb());
    TrainingModel model(TrainingSpec::forModel("GPT-NeoX-20B"));
    SegmentExecutor exec(server, {0, 1, 2, 3, 4, 5, 6, 7});
    auto iteration = trainingIterationSegments(model);
    for (int i = 0; i < 5; ++i)
        exec.run(iteration);

    const TimeSeries &series = exec.firstGpuPowerSeries();
    EXPECT_GE(series.maxValue(), 400.0);             // at/above TDP
    EXPECT_NEAR(series.minValue(), 0.5 * 400.0, 25.0);  // ~50 % trough
}

TEST(Integration, PowerCapClipsTrainingPeaksKeepsTroughs)
{
    // Insight 3: capping reduces peaks without touching troughs.
    auto run = [](bool capped) {
        power::ServerModel server(power::ServerSpec::dgxA100_40gb());
        if (capped)
            server.setPowerCapAll(325.0);
        TrainingModel model(TrainingSpec::forModel("GPT-NeoX-20B"));
        SegmentExecutor exec(server, {0, 1, 2, 3, 4, 5, 6, 7});
        auto iteration = trainingIterationSegments(model);
        for (int i = 0; i < 5; ++i)
            exec.run(iteration);
        return exec.firstGpuPowerSeries();
    };

    TimeSeries uncapped = run(false);
    TimeSeries capped = run(true);

    auto quantile = [](const TimeSeries &series, double q) {
        Sampler sampler;
        for (const auto &p : series.points())
            sampler.add(p.value);
        return sampler.quantile(q);
    };

    // Sustained peaks (p90) drop well below the uncapped level;
    // brief reactive overshoots above the cap remain (Fig 9b).
    EXPECT_LT(quantile(capped, 0.90), quantile(uncapped, 0.90) * 0.88);
    // Troughs are essentially untouched: the cap controller only
    // throttles above the cap (slow clock recovery causes a small
    // residual dip right after the compute phase).
    EXPECT_NEAR(quantile(capped, 0.05), quantile(uncapped, 0.05),
                quantile(uncapped, 0.05) * 0.15);
}

TEST(Integration, FrequencyLockLowersWholeWaveform)
{
    // Insight 3: locking reduces power throughout execution.
    auto run = [](double lockMhz) {
        power::ServerModel server(power::ServerSpec::dgxA100_40gb());
        if (lockMhz > 0)
            server.lockClockAll(lockMhz);
        TrainingModel model(TrainingSpec::forModel("RoBERTa"));
        SegmentExecutor exec(server, {0, 1, 2, 3, 4, 5, 6, 7});
        auto iteration = trainingIterationSegments(model);
        for (int i = 0; i < 3; ++i)
            exec.run(iteration);
        return exec.firstGpuPowerSeries();
    };

    TimeSeries base = run(0.0);
    TimeSeries locked = run(1100.0);
    EXPECT_LT(locked.maxValue(), base.maxValue() * 0.9);
    // RoBERTa's trough draws real power, so locking lowers it too.
    EXPECT_LT(locked.minValue(), base.minValue());
}

TEST(Integration, CappingTrainingCostsThroughput)
{
    // Fig 5 shape: ~20 % peak power reduction for ~10 % throughput.
    auto iterationSeconds = [](double lockMhz) {
        power::ServerModel server(power::ServerSpec::dgxA100_40gb());
        if (lockMhz > 0)
            server.lockClockAll(lockMhz);
        TrainingModel model(TrainingSpec::forModel("Flan-T5-XXL"));
        SegmentExecutor exec(server, {0, 1, 2, 3, 4, 5, 6, 7});
        Tick t = exec.run(trainingIterationSegments(model));
        return ticksToSeconds(t);
    };
    double base = iterationSeconds(0.0);
    double locked = iterationSeconds(1100.0);
    double slowdown = locked / base;
    EXPECT_GT(slowdown, 1.10);
    EXPECT_LT(slowdown, 1.35);
}

TEST(Integration, DeratingHeadroomMatchesSection5)
{
    // Section 5: peak draw never exceeds ~5.7 kW on a 6.5 kW-rated
    // box -> ~800 W of derating headroom.
    power::ServerModel server = makeServer();
    ModelCatalog catalog;
    double worst = 0.0;
    for (const auto &model : catalog.models()) {
        PhaseModel phases(model);
        InferenceConfig config;
        config.inputTokens = 8192;
        config.batchSize = 16;
        config.outputTokens = 16;
        power::GpuActivity activity = phases.promptActivity(config);
        server.setActivityAll(activity);
        worst = std::max(worst, server.powerWatts());
    }
    double headroom = server.spec().ratedPowerWatts - worst;
    EXPECT_GT(headroom, 600.0);
    EXPECT_LT(headroom, 1400.0);
}

TEST(Integration, StatisticalMultiplexingLowersClusterPeak)
{
    // Insight 9's mechanism: aligned prompt spikes produce a higher
    // aggregate peak than staggered ones.
    ModelCatalog catalog;
    const ModelSpec &model = catalog.byName("BLOOM-176B");
    PhaseModel phases(model);
    InferenceConfig config;
    config.inputTokens = 4096;
    config.outputTokens = 64;

    auto serverSeries = [&](Tick startOffset) {
        power::ServerModel server = makeServer();
        SegmentExecutor exec(server, gpusFor(model));
        exec.idle(startOffset);
        exec.run(inferenceSegments(phases, config));
        exec.idle(secondsToTicks(10));
        return exec.serverPowerSeries();
    };

    // Aligned: both servers start together.
    TimeSeries a0 = serverSeries(0);
    TimeSeries b0 = serverSeries(0);
    double alignedPeak = sumOnGrid({&a0, &b0}, msToTicks(100))
        .maxValue();

    // Staggered: second server starts mid token phase of the first.
    TimeSeries b1 = serverSeries(secondsToTicks(5));
    double staggeredPeak = sumOnGrid({&a0, &b1}, msToTicks(100))
        .maxValue();

    EXPECT_GT(alignedPeak, staggeredPeak * 1.1);
}
