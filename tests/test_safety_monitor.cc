/** @file Unit tests for the runtime safety-invariant monitor. */

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "core/power_manager.hh"
#include "core/safety_monitor.hh"
#include "sim/simulation.hh"

using namespace polca::core;
using namespace polca::telemetry;
using namespace polca::sim;
using polca::workload::Priority;

namespace {

/** Recording fake control target. */
class FakeTarget : public ClockControllable
{
  public:
    void applyClockLock(double mhz) override { lockMhz_ = mhz; }
    void applyClockUnlock() override { lockMhz_ = 0.0; }
    void applyPowerBrake(bool engaged) override { brake_ = engaged; }
    double appliedClockLockMhz() const override { return lockMhz_; }
    bool powerBrakeEngaged() const override { return brake_; }

  private:
    double lockMhz_ = 0.0;
    bool brake_ = false;
};

/** Limits matching the default polca() policy on a 10 kW row. */
SafetyMonitor::Limits
defaultLimits()
{
    SafetyMonitor::Limits limits;
    limits.breakerLimitWatts = 12500.0;
    limits.breakerGrace = secondsToTicks(30);
    limits.failSafeDeadline = secondsToTicks(36);  // watchdog 30 + 6
    limits.capReleaseDeadline = secondsToTicks(600);
    limits.capFloorMhz = 1110.0;       // deepest polca rule
    limits.quietUtilization = 0.75;    // min release threshold
    limits.maxBrakeTimeFraction = 1.0; // disabled unless a test arms it
    limits.provisionedWatts = 10000.0;
    return limits;
}

/** Managed row with the monitor riding beside the manager. */
struct Fixture
{
    explicit Fixture(SafetyMonitor::Limits limits = defaultLimits(),
                     ManagerOptions options = ManagerOptions())
        : telemetry(sim, secondsToTicks(2), false),
          manager(sim, telemetry, 10000.0, PolicyConfig::polca(),
                  Rng(1), options),
          monitor(sim, limits, [this] { return watts; }, &manager)
    {
        telemetry.addSource([this] { return watts; });
        for (int i = 0; i < 2; ++i) {
            low.push_back(std::make_unique<FakeTarget>());
            high.push_back(std::make_unique<FakeTarget>());
            manager.addTarget(Priority::Low, low.back().get());
            manager.addTarget(Priority::High, high.back().get());
        }
        monitor.attachTelemetry(telemetry);
        manager.start();
        telemetry.start();
        monitor.start();
    }

    void
    runSeconds(double seconds)
    {
        sim.runFor(secondsToTicks(seconds));
    }

    std::size_t
    count(SafetyInvariant invariant) const
    {
        std::size_t n = 0;
        for (const SafetyViolation &v : monitor.violations())
            n += v.invariant == invariant ? 1 : 0;
        return n;
    }

    Simulation sim;
    RowManager telemetry;
    PowerManager manager;
    SafetyMonitor monitor;
    std::vector<std::unique_ptr<FakeTarget>> low;
    std::vector<std::unique_ptr<FakeTarget>> high;
    double watts = 5000.0;
};

} // namespace

TEST(SafetyMonitor, CleanManagedRunHasNoViolations)
{
    // A load swing that caps and then releases through the normal
    // hysteresis path breaks nothing.
    Fixture f;
    f.runSeconds(120);
    f.watts = 8200.0;  // cross T1
    f.runSeconds(180);
    f.watts = 5000.0;  // subside; caps release well inside deadline
    f.runSeconds(400);
    f.monitor.finish(f.sim.now());
    EXPECT_TRUE(f.monitor.violations().empty());
}

TEST(SafetyMonitor, WatchdogDisabledFailsInvariantSuite)
{
    // The acceptance check for a deliberately weakened config: with
    // the watchdog off, a telemetry blackout leaves the manager
    // frozen — no fail-safe inside the deadline — and the invariant
    // suite must catch it.
    ManagerOptions options;
    options.watchdogEnabled = false;
    Fixture f(defaultLimits(), options);
    f.runSeconds(20);
    f.telemetry.setFaultHook(
        [](Tick, double) { return std::optional<double>(); });
    f.runSeconds(120);
    EXPECT_EQ(f.count(SafetyInvariant::FailSafeDeadline), 1u);
    // Stamped when staleness first crossed the 36 s deadline.
    const SafetyViolation &v = f.monitor.violations().front();
    EXPECT_GE(v.at, secondsToTicks(36));
    EXPECT_LE(v.at, secondsToTicks(60));
    EXPECT_GT(v.value, v.limit);
}

TEST(SafetyMonitor, WatchdogOnSameBlackoutStaysClean)
{
    // Same blackout, watchdog enabled: fail-safe engages at 30 s
    // staleness, inside the 36 s deadline — no violation.
    Fixture f;
    f.runSeconds(20);
    f.telemetry.setFaultHook(
        [](Tick, double) { return std::optional<double>(); });
    f.runSeconds(120);
    ASSERT_TRUE(f.manager.failSafeActive());
    EXPECT_TRUE(f.monitor.violations().empty());
}

TEST(SafetyMonitor, StuckCapsBreakReleaseDeadline)
{
    // A manager mis-tuned to hold rules for 30 min keeps the cap
    // long after the row goes quiet; the monitor flags it once.
    SafetyMonitor::Limits limits = defaultLimits();
    limits.capReleaseDeadline = secondsToTicks(60);
    ManagerOptions options;
    options.minRuleDwell = secondsToTicks(1800);
    Fixture f(limits, options);
    f.watts = 8200.0;
    f.runSeconds(50);
    ASSERT_DOUBLE_EQ(f.manager.desiredLockMhz(Priority::Low), 1275.0);
    f.watts = 5000.0;  // quiet: below every release threshold
    f.runSeconds(200);
    EXPECT_DOUBLE_EQ(f.manager.desiredLockMhz(Priority::Low), 1275.0);
    EXPECT_EQ(f.count(SafetyInvariant::CapRelease), 1u);
}

TEST(SafetyMonitor, BrakeOverBudgetFailsPerfCheck)
{
    // Scripted power that ignores the brake keeps it engaged for
    // nearly the whole run; the finish() pass compares brake time
    // against the perf budget.
    SafetyMonitor::Limits limits = defaultLimits();
    limits.maxBrakeTimeFraction = 0.05;
    Fixture f(limits);
    f.watts = 10100.0;  // over the brake threshold, forever
    f.runSeconds(200);
    ASSERT_TRUE(f.manager.brakeEngaged());
    f.monitor.finish(f.sim.now());
    EXPECT_EQ(f.count(SafetyInvariant::PerfBudget), 1u);
    const SafetyViolation &v = f.monitor.violations().back();
    EXPECT_GT(v.value, 0.9);  // braked ~everything after t=7 s
    EXPECT_DOUBLE_EQ(v.limit, 0.05);
}

TEST(SafetyMonitor, BreakerEnvelopeReportedOncePerExcursion)
{
    // Manager-less monitor: only the ground-truth envelope check
    // runs.  Excursions shorter than the grace are tolerated; longer
    // ones report exactly once each.
    Simulation sim;
    SafetyMonitor::Limits limits = defaultLimits();
    double watts = 5000.0;
    SafetyMonitor monitor(sim, limits, [&watts] { return watts; },
                          nullptr);
    monitor.start();

    sim.runFor(secondsToTicks(60));
    watts = 13000.0;
    sim.runFor(secondsToTicks(20));  // inside the 30 s grace
    watts = 5000.0;
    sim.runFor(secondsToTicks(10));
    EXPECT_TRUE(monitor.violations().empty());

    watts = 13000.0;
    sim.runFor(secondsToTicks(90));  // one excursion, one report
    watts = 5000.0;
    sim.runFor(secondsToTicks(10));
    watts = 13000.0;
    sim.runFor(secondsToTicks(90));  // a second excursion
    ASSERT_EQ(monitor.violations().size(), 2u);
    for (const SafetyViolation &v : monitor.violations()) {
        EXPECT_EQ(v.invariant, SafetyInvariant::BreakerEnvelope);
        EXPECT_DOUBLE_EQ(v.value, 13000.0);
        EXPECT_DOUBLE_EQ(v.limit, 12500.0);
    }
}

TEST(SafetyMonitorDeath, MissingPowerSourceFatal)
{
    Simulation sim;
    EXPECT_DEATH(SafetyMonitor(sim, defaultLimits(), nullptr, nullptr),
                 "raw power");
}
