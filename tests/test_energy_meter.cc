/** @file Unit tests for the energy meter. */

#include <gtest/gtest.h>

#include "telemetry/energy_meter.hh"

using namespace polca::telemetry;
using namespace polca::sim;

TEST(EnergyMeter, ConstantPowerIntegratesExactly)
{
    Simulation sim;
    EnergyMeter meter(sim, [] { return 1000.0; });
    meter.start();
    sim.runFor(secondsToTicks(3600));
    EXPECT_NEAR(meter.joules(), 1000.0 * 3600.0, 2100.0);
    EXPECT_NEAR(meter.kilowattHours(), 1.0, 0.001);
}

TEST(EnergyMeter, StepChangeCaptured)
{
    Simulation sim;
    double watts = 100.0;
    EnergyMeter meter(sim, [&] { return watts; });
    meter.start();
    sim.runFor(secondsToTicks(100));
    watts = 300.0;
    sim.runFor(secondsToTicks(100));
    // 100s at 100W + 100s at 300W = 40 kJ (left-rectangle, +-1
    // sample of error at the boundary).
    EXPECT_NEAR(meter.joules(), 40000.0, 700.0);
}

TEST(EnergyMeter, MeanPowerMatchesIntegral)
{
    Simulation sim;
    double watts = 200.0;
    EnergyMeter meter(sim, [&] { return watts; });
    meter.start();
    sim.runFor(secondsToTicks(50));
    watts = 400.0;
    sim.runFor(secondsToTicks(50));
    EXPECT_NEAR(meter.meanPowerWatts(), 300.0, 10.0);
}

TEST(EnergyMeter, StopFreezesTotal)
{
    Simulation sim;
    EnergyMeter meter(sim, [] { return 500.0; });
    meter.start();
    sim.runFor(secondsToTicks(10));
    meter.stop();
    double frozen = meter.joules();
    sim.runFor(secondsToTicks(100));
    EXPECT_DOUBLE_EQ(meter.joules(), frozen);
    EXPECT_FALSE(meter.running());
}

TEST(EnergyMeter, ZeroBeforeStart)
{
    Simulation sim;
    EnergyMeter meter(sim, [] { return 500.0; });
    sim.runFor(secondsToTicks(100));
    EXPECT_DOUBLE_EQ(meter.joules(), 0.0);
    EXPECT_DOUBLE_EQ(meter.meanPowerWatts(), 0.0);
}

TEST(EnergyMeter, CustomInterval)
{
    Simulation sim;
    EnergyMeter meter(sim, [] { return 100.0; },
                      secondsToTicks(10));
    meter.start();
    sim.runFor(secondsToTicks(100));
    EXPECT_NEAR(meter.joules(), 10000.0, 1100.0);
}

TEST(EnergyMeterDeath, InvalidConstruction)
{
    Simulation sim;
    EXPECT_DEATH(EnergyMeter(sim, EnergyMeter::PowerSource{}),
                 "empty power source");
    EXPECT_DEATH(EnergyMeter(sim, [] { return 1.0; }, 0),
                 "non-positive interval");
}
