/**
 * @file
 * Scale demonstration: a 10k-server heterogeneous site runs end to
 * end inside the ctest budget, and two same-seed runs write
 * byte-identical artifact directories (manifest included).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/oversub_experiment.hh"
#include "core/run_artifacts.hh"

namespace {

using namespace polca;
using namespace polca::core;
namespace fs = std::filesystem;

ExperimentConfig
tenThousandServerSite()
{
    ExperimentConfig config;
    config.seed = 7;
    config.duration = sim::secondsToTicks(30);
    config.topology.enabled = true;
    config.topology.rowBudgetFraction = 0.9;
    config.topology.siteBudgetFraction = 0.92;
    cluster::TopologyRowGroup a;
    a.name = "a100";
    a.rows = 6;
    a.racksPerRow = 24;
    a.serversPerRack = 42;
    config.topology.groups.push_back(a);
    cluster::TopologyRowGroup h;
    h.name = "h100";
    h.rows = 4;
    h.racksPerRow = 24;
    h.serversPerRack = 42;
    h.server = "DGX-H100";
    h.model = "Llama2-70B";
    config.topology.groups.push_back(h);
    return config;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

std::vector<std::string>
writeSiteRun(const fs::path &dir)
{
    ExperimentConfig config = tenThousandServerSite();
    ExperimentResult result = runOversubExperiment(config);
    EXPECT_GT(result.lowCompletions + result.highCompletions, 0u);
    EXPECT_EQ(result.domains.front().servers, 10080);

    RunDirOptions options;
    options.dir = dir.string();
    options.scenarioPath = "scenarios/site_10k.toml";
    options.resolvedConfig = "stub";
    return writeRunDir(options, config, result, NormalizedLatency{},
                       NormalizedLatency{}, nullptr);
}

} // namespace

TEST(SiteScale, TenThousandServersRunByteIdentically)
{
    fs::path base = fs::temp_directory_path() / "polca_site_scale";
    fs::remove_all(base);
    fs::path dirA = base / "a";
    fs::path dirB = base / "b";

    std::vector<std::string> writtenA = writeSiteRun(dirA);
    std::vector<std::string> writtenB = writeSiteRun(dirB);
    ASSERT_FALSE(writtenA.empty());
    ASSERT_EQ(writtenA, writtenB);

    // manifest.json first, domains.csv present.
    EXPECT_EQ(writtenA.front(), "manifest.json");
    EXPECT_NE(std::find(writtenA.begin(), writtenA.end(),
                        "domains.csv"),
              writtenA.end());

    for (const std::string &name : writtenA) {
        EXPECT_EQ(slurp(dirA / name), slurp(dirB / name))
            << name << " differs between same-seed runs";
    }
    fs::remove_all(base);
}
