/**
 * @file
 * End-to-end site-mode experiment tests: determinism, per-level
 * rollup stats, the compositional site trace, and parent-budget
 * awareness of the per-row managers.
 */

#include <gtest/gtest.h>

#include "core/oversub_experiment.hh"

namespace {

using namespace polca;
using namespace polca::core;

ExperimentConfig
smallSite(double siteBudgetFraction = 1.0)
{
    ExperimentConfig config;
    config.seed = 5;
    config.duration = sim::secondsToTicks(180);
    config.topology.enabled = true;
    config.topology.siteBudgetFraction = siteBudgetFraction;
    cluster::TopologyRowGroup a;
    a.name = "a100";
    a.rows = 2;
    a.racksPerRow = 2;
    a.serversPerRack = 3;
    config.topology.groups.push_back(a);
    cluster::TopologyRowGroup h;
    h.name = "h100";
    h.rows = 1;
    h.racksPerRow = 2;
    h.serversPerRack = 3;
    h.server = "DGX-H100";
    h.model = "Llama2-70B";
    config.topology.groups.push_back(h);
    return config;
}

} // namespace

TEST(SiteExperiment, ProducesPreOrderDomainRollup)
{
    ExperimentResult result = runOversubExperiment(smallSite());

    // site + 3 rows + 6 racks, pre-order, site first.
    ASSERT_EQ(result.domains.size(), 10u);
    EXPECT_EQ(result.domains[0].path, "site");
    EXPECT_EQ(result.domains[0].level, "site");
    EXPECT_EQ(result.domains[0].servers, 18);
    EXPECT_EQ(result.domains[1].path, "site.a1000");
    EXPECT_EQ(result.domains[1].level, "row");
    EXPECT_EQ(result.domains[2].path, "site.a1000.rack0");
    EXPECT_EQ(result.domains[2].level, "rack");
    EXPECT_EQ(result.domains[2].servers, 3);
    EXPECT_EQ(result.domains[7].path, "site.h1000");

    // Every domain saw power; rows saw completions.
    for (const DomainStats &d : result.domains) {
        EXPECT_GT(d.peakWatts, 0.0) << d.path;
        EXPECT_GT(d.provisionedWatts, 0.0) << d.path;
        if (d.level == "row") {
            EXPECT_GT(d.completions, 0u) << d.path;
        }
    }
    EXPECT_GT(result.lowCompletions + result.highCompletions, 0u);
}

TEST(SiteExperiment, SameSeedIsDeterministic)
{
    ExperimentResult a = runOversubExperiment(smallSite());
    ExperimentResult b = runOversubExperiment(smallSite());

    EXPECT_EQ(a.lowCompletions, b.lowCompletions);
    EXPECT_EQ(a.highCompletions, b.highCompletions);
    EXPECT_EQ(a.low.p99, b.low.p99);
    EXPECT_EQ(a.high.p99, b.high.p99);
    EXPECT_EQ(a.capCommands, b.capCommands);
    EXPECT_EQ(a.energyKwh, b.energyKwh);
    ASSERT_EQ(a.domains.size(), b.domains.size());
    for (std::size_t i = 0; i < a.domains.size(); ++i) {
        EXPECT_EQ(a.domains[i].path, b.domains[i].path);
        EXPECT_EQ(a.domains[i].peakWatts, b.domains[i].peakWatts);
        EXPECT_EQ(a.domains[i].meanWatts, b.domains[i].meanWatts);
        EXPECT_EQ(a.domains[i].completions,
                  b.domains[i].completions);
    }
}

TEST(SiteExperiment, SiteTraceIsRowSumAtEveryTick)
{
    ExperimentConfig config = smallSite();
    config.recordRowSeries = true;
    ExperimentResult result = runOversubExperiment(config);

    ASSERT_FALSE(result.rowPowerSeries.empty());
    ASSERT_EQ(result.domainPowerSeries.size(), 3u);
    for (std::size_t i = 0; i < result.rowPowerSeries.size(); ++i) {
        double sum = 0.0;
        for (const DomainPowerSeries &row : result.domainPowerSeries)
            sum += row.series.at(i).value;
        // Exact float identity: the site manager reads per-row
        // rollups left to right at the same instant.
        EXPECT_EQ(result.rowPowerSeries.at(i).value, sum)
            << "tick " << i;
    }
}

TEST(SiteExperiment, TighterSiteBudgetThrottlesRows)
{
    ExperimentResult loose = runOversubExperiment(smallSite(1.0));
    ExperimentResult tight = runOversubExperiment(smallSite(0.6));

    // Parent-budget awareness: per-row managers cap against their
    // share of the site budget, so shrinking only the *site* budget
    // must produce more capping without any row config change.
    EXPECT_GT(tight.capCommands, loose.capCommands);
}

TEST(SiteExperiment, UnmanagedSiteRunsWithoutManagers)
{
    ExperimentConfig config = smallSite();
    config.managed = false;
    ExperimentResult result = runOversubExperiment(config);
    EXPECT_EQ(result.capCommands, 0u);
    EXPECT_GT(result.lowCompletions + result.highCompletions, 0u);
}
