/** @file Unit tests for the event-driven inference server. */

#include <gtest/gtest.h>

#include "cluster/inference_server.hh"
#include "llm/model_spec.hh"

using namespace polca::cluster;
using namespace polca::workload;
using namespace polca::sim;

namespace {

struct Fixture
{
    Fixture()
        : server(sim, polca::power::ServerSpec::dgxA100_80gb(),
                 catalog.byName("BLOOM-176B"), Priority::Low, 0)
    {
        server.setCompletionCallback(
            [this](InferenceServer &,
                   const InferenceServer::Completion &c) {
                completions.push_back(c);
            });
    }

    Request
    request(Tick arrival, int input = 2048, int output = 256)
    {
        Request r;
        r.arrival = arrival;
        r.id = nextId++;
        r.inputTokens = input;
        r.outputTokens = output;
        return r;
    }

    Simulation sim;
    polca::llm::ModelCatalog catalog;
    InferenceServer server;
    std::vector<InferenceServer::Completion> completions;
    std::uint64_t nextId = 0;
};

} // namespace

TEST(InferenceServer, CompletesRequestAtModelLatency)
{
    Fixture f;
    polca::llm::PhaseModel phases(f.catalog.byName("BLOOM-176B"));
    polca::llm::InferenceConfig config;
    config.inputTokens = 2048;
    config.outputTokens = 256;
    Tick expected = phases.totalLatency(config);

    f.server.submit(f.request(0));
    f.sim.runFor(expected + secondsToTicks(1));

    ASSERT_EQ(f.completions.size(), 1u);
    EXPECT_NEAR(static_cast<double>(f.completions[0].latency),
                static_cast<double>(expected), 2000.0);
    EXPECT_EQ(f.server.completedRequests(), 1u);
}

TEST(InferenceServer, IdleThenBusyThenIdle)
{
    Fixture f;
    EXPECT_TRUE(f.server.idleNow());
    f.server.submit(f.request(0));
    EXPECT_FALSE(f.server.idleNow());
    f.sim.runFor(secondsToTicks(120));
    EXPECT_TRUE(f.server.idleNow());
}

TEST(InferenceServer, BufferHoldsOneRequest)
{
    Fixture f;
    f.server.submit(f.request(0));
    EXPECT_TRUE(f.server.canAccept());
    f.server.submit(f.request(0));
    EXPECT_FALSE(f.server.canAccept());
    EXPECT_EQ(f.server.queueDepth(), 1u);
}

TEST(InferenceServerDeath, SubmitWhenFullPanics)
{
    Fixture f;
    f.server.submit(f.request(0));
    f.server.submit(f.request(0));
    EXPECT_DEATH(f.server.submit(f.request(0)), "full buffer");
}

TEST(InferenceServer, BufferedRequestRunsAfterActive)
{
    Fixture f;
    f.server.submit(f.request(0, 1024, 64));
    f.server.submit(f.request(0, 1024, 64));
    f.sim.runFor(secondsToTicks(60));
    EXPECT_EQ(f.completions.size(), 2u);
    // Second completion strictly later.
    EXPECT_GT(f.completions[1].completionTime,
              f.completions[0].completionTime);
    // Second latency includes queueing.
    EXPECT_GT(f.completions[1].latency, f.completions[0].latency);
}

TEST(InferenceServer, PowerSpikyInPromptFlatInToken)
{
    Fixture f;
    double idle = f.server.powerWatts();
    f.server.submit(f.request(0, 8192, 512));

    // Mid-prompt (an 8K BLOOM prompt takes ~3 s): high power.
    f.sim.runFor(secondsToTicks(1.0));
    double promptPower = f.server.powerWatts();

    // Mid-token phase: lower, stable power.
    f.sim.runFor(secondsToTicks(10.0));
    double tokenPower = f.server.powerWatts();

    EXPECT_GT(promptPower, tokenPower * 1.25);
    EXPECT_GT(tokenPower, idle * 1.5);
}

TEST(InferenceServer, PromptPowerExceedsGpuTdp)
{
    // Insight 4 at server scope: prompt GPU draw above 8x TDP is
    // visible in the server's GPU power.
    Fixture f;
    f.server.submit(f.request(0, 8192, 512));
    f.sim.runFor(secondsToTicks(1.0));
    EXPECT_GT(f.server.serverModel().gpuPowerWatts(), 8 * 400.0);
}

TEST(InferenceServer, ClockLockStretchesLatency)
{
    Fixture f;
    Request r = f.request(0, 2048, 512);

    f.server.submit(r);
    f.sim.runFor(secondsToTicks(120));
    ASSERT_EQ(f.completions.size(), 1u);
    Tick unthrottled = f.completions[0].latency;

    f.server.applyClockLock(1110.0);
    Request r2 = f.request(f.sim.now(), 2048, 512);
    f.server.submit(r2);
    f.sim.runFor(secondsToTicks(180));
    ASSERT_EQ(f.completions.size(), 2u);
    Tick locked = f.completions[1].latency;

    double slowdown =
        static_cast<double>(locked) / static_cast<double>(unthrottled);
    // BLOOM at 1110 MHz: ~9-11 % end-to-end (Fig 10a scale).
    EXPECT_GT(slowdown, 1.05);
    EXPECT_LT(slowdown, 1.15);
}

TEST(InferenceServer, MidFlightClockChangeReschedules)
{
    Fixture f;
    f.server.submit(f.request(0, 2048, 512));

    // Throttle mid token phase.
    f.sim.runFor(secondsToTicks(10));
    f.server.applyClockLock(1110.0);
    f.sim.runFor(secondsToTicks(120));
    ASSERT_EQ(f.completions.size(), 1u);

    // Latency sits between fully-unthrottled and fully-locked runs.
    polca::llm::PhaseModel phases(f.catalog.byName("BLOOM-176B"));
    polca::llm::InferenceConfig config;
    config.inputTokens = 2048;
    config.outputTokens = 512;
    Tick unthrottled = phases.totalLatency(config);
    EXPECT_GT(f.completions[0].latency, unthrottled);

    polca::power::GpuPowerModel locked(
        polca::power::GpuSpec::a100_80gb());
    locked.lockClock(1110.0);
    Tick fullyLocked = phases.latencyAtClock(config, locked);
    EXPECT_LT(f.completions[0].latency, fullyLocked);
}

TEST(InferenceServer, UnlockRestoresSpeedMidFlight)
{
    Fixture f;
    f.server.applyClockLock(1110.0);
    f.server.submit(f.request(0, 2048, 512));
    f.sim.runFor(secondsToTicks(5));
    f.server.applyClockUnlock();
    EXPECT_DOUBLE_EQ(f.server.appliedClockLockMhz(), 0.0);
    f.sim.runFor(secondsToTicks(120));
    EXPECT_EQ(f.completions.size(), 1u);
}

TEST(InferenceServer, PowerBrakeMassivelySlowsService)
{
    Fixture f;
    f.server.applyPowerBrake(true);
    EXPECT_TRUE(f.server.powerBrakeEngaged());
    f.server.submit(f.request(0, 1024, 128));
    f.sim.runFor(secondsToTicks(8));
    EXPECT_EQ(f.completions.size(), 0u);  // would be done unbraked
    f.server.applyPowerBrake(false);
    f.sim.runFor(secondsToTicks(60));
    EXPECT_EQ(f.completions.size(), 1u);
}

TEST(InferenceServer, PowerScaleFactorRaisesDraw)
{
    Fixture f;
    f.server.submit(f.request(0, 2048, 512));
    f.sim.runFor(secondsToTicks(10));
    double base = f.server.powerWatts();
    f.server.setPowerScaleFactor(1.05);
    EXPECT_GT(f.server.powerWatts(), base * 1.01);
}

TEST(InferenceServer, SmallModelLeavesGpusIdle)
{
    Simulation sim;
    polca::llm::ModelCatalog catalog;
    InferenceServer server(sim,
                           polca::power::ServerSpec::dgxA100_80gb(),
                           catalog.byName("Llama2-13B"), Priority::Low,
                           0);
    Request r;
    r.arrival = 0;
    r.inputTokens = 2048;
    r.outputTokens = 128;
    server.submit(r);
    sim.runFor(secondsToTicks(1));
    // Only GPU 0 is active; GPU 7 idles.
    EXPECT_GT(server.serverModel().gpu(0).powerWatts(), 150.0);
    EXPECT_NEAR(server.serverModel().gpu(7).powerWatts(), 80.0, 1.0);
}

TEST(InferenceServer, PhaseAwareTokenClockAppliesInTokenPhaseOnly)
{
    // Section 5.2: lower clocks during token phases; full clock for
    // prompts.
    Fixture f;
    f.server.setPhaseAwareTokenClock(1200.0);
    f.server.submit(f.request(0, 8192, 512));

    // Mid-prompt (an 8K BLOOM prompt takes ~3 s): full clock.
    f.sim.runFor(secondsToTicks(1.0));
    EXPECT_DOUBLE_EQ(
        f.server.serverModel().gpu(0).effectiveClockMhz(), 1410.0);

    // Mid-token phase: the phase-aware clock.
    f.sim.runFor(secondsToTicks(10.0));
    EXPECT_DOUBLE_EQ(
        f.server.serverModel().gpu(0).effectiveClockMhz(), 1200.0);

    // After completion: unlocked again.
    f.sim.runFor(secondsToTicks(120.0));
    ASSERT_TRUE(f.server.idleNow());
    EXPECT_FALSE(f.server.serverModel().gpu(0).clockLocked());
}

TEST(InferenceServer, PhaseAwareClockLowersTokenPower)
{
    Fixture plain, aware;
    aware.server.setPhaseAwareTokenClock(1200.0);
    plain.server.submit(plain.request(0, 2048, 512));
    aware.server.submit(aware.request(0, 2048, 512));
    plain.sim.runFor(secondsToTicks(10.0));
    aware.sim.runFor(secondsToTicks(10.0));
    EXPECT_LT(aware.server.powerWatts(),
              plain.server.powerWatts() - 50.0);
}

TEST(InferenceServer, PhaseAwareClockComposesWithPolicyLock)
{
    // The deeper of the OOB lock and the token clock wins.
    Fixture f;
    f.server.setPhaseAwareTokenClock(1200.0);
    f.server.applyClockLock(1110.0);
    f.server.submit(f.request(0, 2048, 512));
    f.sim.runFor(secondsToTicks(10.0));  // token phase
    EXPECT_DOUBLE_EQ(
        f.server.serverModel().gpu(0).effectiveClockMhz(), 1110.0);
    // The BMC-visible applied state stays the policy lock.
    EXPECT_DOUBLE_EQ(f.server.appliedClockLockMhz(), 1110.0);
}

TEST(InferenceServer, PhaseAwareClockReportedSeparately)
{
    Fixture f;
    f.server.setPhaseAwareTokenClock(1230.0);
    EXPECT_DOUBLE_EQ(f.server.phaseAwareTokenClockMhz(), 1230.0);
    // No OOB lock commanded: BMC sees none even mid token phase.
    f.server.submit(f.request(0, 2048, 512));
    f.sim.runFor(secondsToTicks(10.0));
    EXPECT_DOUBLE_EQ(f.server.appliedClockLockMhz(), 0.0);
}

TEST(InferenceServer, BatchingCoalescesBufferedRequests)
{
    // Insight 5: batching as a throughput/power knob.  Two buffered
    // requests coalesce into one batch when the server frees up.
    Simulation sim;
    polca::llm::ModelCatalog catalog;
    InferenceServer server(sim,
                           polca::power::ServerSpec::dgxA100_80gb(),
                           catalog.byName("BLOOM-176B"), Priority::Low,
                           0, /*bufferSize=*/4);
    server.setMaxBatchSize(4);
    std::vector<InferenceServer::Completion> completions;
    server.setCompletionCallback(
        [&](InferenceServer &, const InferenceServer::Completion &c) {
            completions.push_back(c);
        });

    auto request = [](int id) {
        Request r;
        r.arrival = 0;
        r.id = static_cast<std::uint64_t>(id);
        r.inputTokens = 1024;
        r.outputTokens = 128;
        return r;
    };
    // First request starts alone; the next three buffer up.
    for (int i = 0; i < 4; ++i)
        server.submit(request(i));
    EXPECT_EQ(server.activeBatchSize(), 1u);
    EXPECT_EQ(server.queueDepth(), 3u);

    // When the first finishes, the remaining three run as one batch.
    sim.runFor(secondsToTicks(10));
    EXPECT_EQ(server.activeBatchSize(), 3u);
    sim.runFor(secondsToTicks(60));
    EXPECT_EQ(completions.size(), 4u);
}

TEST(InferenceServer, BatchedServiceFasterThanSequential)
{
    // 4 requests at batch 4 finish well before 4 sequential ones
    // (the point of batching), at higher peak power (Fig 8c).
    auto run = [](std::size_t maxBatch) {
        Simulation sim;
        polca::llm::ModelCatalog catalog;
        InferenceServer server(
            sim, polca::power::ServerSpec::dgxA100_80gb(),
            catalog.byName("BLOOM-176B"), Priority::Low, 0,
            /*bufferSize=*/8);
        server.setMaxBatchSize(maxBatch);
        Tick last = 0;
        server.setCompletionCallback(
            [&](InferenceServer &,
                const InferenceServer::Completion &c) {
                last = std::max(last, c.completionTime);
            });
        for (int i = 0; i < 4; ++i) {
            Request r;
            r.arrival = 0;
            r.id = static_cast<std::uint64_t>(i);
            r.inputTokens = 1024;
            r.outputTokens = 256;
            server.submit(r);
        }
        sim.runFor(secondsToTicks(300));
        return last;
    };
    Tick sequential = run(1);
    Tick batched = run(4);
    // First request runs alone, the other three as one batch:
    // ~2 batch-latencies instead of 4 sequential ones.
    EXPECT_LT(static_cast<double>(batched),
              static_cast<double>(sequential) * 0.6);
}

TEST(InferenceServer, BatchConfigUsesPaddedMaxima)
{
    // Mixed sizes batch to the maxima, not the defaults.
    Simulation sim;
    polca::llm::ModelCatalog catalog;
    polca::llm::PhaseModel phases(catalog.byName("BLOOM-176B"));
    InferenceServer server(sim,
                           polca::power::ServerSpec::dgxA100_80gb(),
                           catalog.byName("BLOOM-176B"), Priority::Low,
                           0, /*bufferSize=*/4);
    server.setMaxBatchSize(2);
    Tick last = 0;
    std::uint64_t done = 0;
    server.setCompletionCallback(
        [&](InferenceServer &, const InferenceServer::Completion &c) {
            last = std::max(last, c.completionTime);
            ++done;
        });

    Request small;
    small.arrival = 0;
    small.inputTokens = 64;
    small.outputTokens = 16;
    Request blocker = small;  // occupies the server first
    server.submit(blocker);
    server.submit(small);
    Request large = small;
    large.id = 2;
    large.inputTokens = 512;
    large.outputTokens = 64;
    server.submit(large);

    sim.runFor(secondsToTicks(60));
    EXPECT_EQ(done, 3u);

    // The batched pair's service time matches the large request at
    // batch size 2 (padding), measured from when the blocker ended.
    polca::llm::InferenceConfig padded;
    padded.inputTokens = 512;
    padded.outputTokens = 64;
    padded.batchSize = 2;
    polca::llm::InferenceConfig blockerConfig;
    blockerConfig.inputTokens = 64;
    blockerConfig.outputTokens = 16;
    blockerConfig.batchSize = 1;
    Tick expected = phases.totalLatency(blockerConfig) +
        phases.totalLatency(padded);
    EXPECT_NEAR(static_cast<double>(last),
                static_cast<double>(expected), 3000.0);
}

TEST(InferenceServerDeath, ZeroBatchSizeFatal)
{
    Fixture f;
    EXPECT_DEATH(f.server.setMaxBatchSize(0), "zero max batch");
}

TEST(InferenceServer, BusyTicksAccumulate)
{
    Fixture f;
    f.server.submit(f.request(0, 1024, 64));
    f.sim.runFor(secondsToTicks(60));
    EXPECT_GT(f.server.busyTicks(), secondsToTicks(2));
    EXPECT_LT(f.server.busyTicks(), secondsToTicks(10));
}
