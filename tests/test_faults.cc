/** @file Unit tests for the fault-injection subsystem. */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "cluster/inference_server.hh"
#include "core/power_manager.hh"
#include "faults/fault_injector.hh"
#include "faults/fault_plan.hh"
#include "llm/model_spec.hh"
#include "sim/simulation.hh"
#include "telemetry/breaker_model.hh"
#include "telemetry/row_manager.hh"

using namespace polca;
using namespace polca::faults;
using namespace polca::sim;
using polca::workload::Priority;

namespace {

/** A scripted row: 2 s telemetry over one mutable watts value, with
 *  an injector wired to it. */
struct TelemetryFixture
{
    explicit TelemetryFixture(FaultPlan plan, std::uint64_t seed = 7)
        : row(sim, secondsToTicks(2), false),
          injector(sim, std::move(plan), Rng(seed))
    {
        row.addSource([this] { return watts; });
        row.addListener([this](Tick now, double value) {
            delivered.emplace_back(now, value);
        });
        injector.attachTelemetry(row);
        injector.start();
        row.start();
    }

    Simulation sim;
    telemetry::RowManager row;
    FaultInjector injector;
    double watts = 5000.0;
    std::vector<std::pair<Tick, double>> delivered;
};

} // namespace

TEST(FaultPlan, EmptyByDefault)
{
    FaultPlan plan;
    EXPECT_TRUE(plan.empty());
    plan.burstyLoss.enabled = true;
    EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, CannedScenariosAreValidAndNonEmpty)
{
    Tick duration = secondsToTicks(24 * 3600.0);
    for (const std::string &name : scenarioNames()) {
        FaultPlan plan = scenarioByName(name, duration, 40);
        EXPECT_EQ(plan.empty(), name == "none") << name;
    }
}

TEST(FaultPlanDeath, BadWindowFatal)
{
    FaultPlan plan;
    BlackoutWindow window;
    window.start = secondsToTicks(10);
    window.duration = 0;
    plan.blackouts.push_back(window);
    EXPECT_DEATH(plan.validate(), "not a valid interval");
}

TEST(FaultPlanDeath, BadProbabilityFatal)
{
    FaultPlan plan;
    plan.burstyLoss.enabled = true;
    plan.burstyLoss.enterBurstProbability = 1.5;
    EXPECT_DEATH(plan.validate(), "outside");
}

TEST(FaultPlanDeath, UnknownScenarioFatal)
{
    EXPECT_DEATH(scenarioByName("meteor", secondsToTicks(100), 4),
                 "unknown fault scenario");
}

TEST(FaultInjector, BlackoutSuppressesReadingsThenRecovers)
{
    FaultPlan plan;
    BlackoutWindow window;
    window.start = secondsToTicks(10);
    window.duration = secondsToTicks(10);
    plan.blackouts.push_back(window);
    TelemetryFixture f(std::move(plan));

    f.sim.runFor(secondsToTicks(30));
    // Readings at 2..30 s; the ones in [10, 20) are suppressed.
    EXPECT_EQ(f.injector.blackedOutReadings(), 5u);
    EXPECT_EQ(f.row.droppedReadings(), 5u);
    EXPECT_EQ(f.delivered.size(), 10u);
    for (const auto &[tick, value] : f.delivered) {
        EXPECT_TRUE(tick < window.start ||
                    tick >= window.start + window.duration);
        EXPECT_DOUBLE_EQ(value, 5000.0);
    }
}

TEST(FaultInjector, BurstyLossIsDeterministicUnderSeed)
{
    FaultPlan plan;
    plan.burstyLoss.enabled = true;
    plan.burstyLoss.enterBurstProbability = 0.05;
    plan.burstyLoss.exitBurstProbability = 0.2;
    plan.burstyLoss.goodLossProbability = 0.0;
    plan.burstyLoss.burstLossProbability = 1.0;

    TelemetryFixture a(plan, 11), b(plan, 11), c(plan, 12);
    a.sim.runFor(secondsToTicks(2000));
    b.sim.runFor(secondsToTicks(2000));
    c.sim.runFor(secondsToTicks(2000));

    EXPECT_GT(a.injector.burstDroppedReadings(), 0u);
    EXPECT_EQ(a.injector.burstDroppedReadings(),
              b.injector.burstDroppedReadings());
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_NE(a.injector.burstDroppedReadings(),
              c.injector.burstDroppedReadings());
}

TEST(FaultInjector, BurstLossesComeInStreaks)
{
    // With loss only inside bursts, every loss belongs to a streak
    // whose expected length is 1 / exitBurstProbability = 10; verify
    // that at least one long streak occurs, which i.i.d. loss at the
    // same average rate would make vanishingly unlikely.
    FaultPlan plan;
    plan.burstyLoss.enabled = true;
    plan.burstyLoss.enterBurstProbability = 0.02;
    plan.burstyLoss.exitBurstProbability = 0.1;
    plan.burstyLoss.goodLossProbability = 0.0;
    plan.burstyLoss.burstLossProbability = 1.0;
    TelemetryFixture f(std::move(plan));

    f.sim.runFor(secondsToTicks(4000));
    ASSERT_GT(f.delivered.size(), 2u);
    Tick longestGap = 0;
    for (std::size_t i = 1; i < f.delivered.size(); ++i) {
        longestGap = std::max(
            longestGap, f.delivered[i].first - f.delivered[i - 1].first);
    }
    // A streak of >= 5 consecutive losses (12 s gap between
    // delivered readings).
    EXPECT_GE(longestGap, secondsToTicks(12));
}

TEST(FaultInjector, SensorBiasShiftsWindowedReadings)
{
    FaultPlan plan;
    SensorFault fault;
    fault.start = secondsToTicks(10);
    fault.duration = secondsToTicks(10);
    fault.mode = SensorFaultMode::Bias;
    fault.biasWatts = -1500.0;
    plan.sensorFaults.push_back(fault);
    TelemetryFixture f(std::move(plan));

    f.sim.runFor(secondsToTicks(30));
    EXPECT_EQ(f.injector.corruptedReadings(), 5u);
    for (const auto &[tick, value] : f.delivered) {
        bool inWindow = tick >= fault.start &&
            tick < fault.start + fault.duration;
        EXPECT_DOUBLE_EQ(value, inWindow ? 3500.0 : 5000.0);
    }
}

TEST(FaultInjector, CorruptedReadingsClampAtZero)
{
    FaultPlan plan;
    SensorFault fault;
    fault.start = secondsToTicks(2);
    fault.duration = secondsToTicks(100);
    fault.mode = SensorFaultMode::Bias;
    fault.biasWatts = -99999.0;
    plan.sensorFaults.push_back(fault);
    TelemetryFixture f(std::move(plan));

    f.sim.runFor(secondsToTicks(10));
    ASSERT_FALSE(f.delivered.empty());
    for (const auto &[tick, value] : f.delivered)
        EXPECT_DOUBLE_EQ(value, 0.0);
}

TEST(FaultInjector, StuckAtLastRepeatsPreFaultValue)
{
    FaultPlan plan;
    SensorFault fault;
    fault.start = secondsToTicks(10);
    fault.duration = secondsToTicks(10);
    fault.mode = SensorFaultMode::StuckAtLast;
    plan.sensorFaults.push_back(fault);
    TelemetryFixture f(std::move(plan));

    f.sim.runFor(secondsToTicks(9));  // readings at 2..8 s see 5000
    f.watts = 9000.0;                 // real power moves...
    f.sim.runFor(secondsToTicks(12)); // ...but the sensor is stuck
    for (const auto &[tick, value] : f.delivered) {
        // In-window readings repeat the last pre-fault value (5000)
        // even though real power moved to 9000 just before the
        // window opened; post-window readings see the truth again.
        bool afterWindow = tick >= fault.start + fault.duration;
        EXPECT_DOUBLE_EQ(value, afterWindow ? 9000.0 : 5000.0)
            << "at " << ticksToSeconds(tick) << " s";
    }
}

TEST(FaultPlan, ProblemsPinpointDegeneratePlans)
{
    FaultPlan plan;
    BlackoutWindow zero;
    zero.start = secondsToTicks(10);
    zero.duration = 0;
    plan.blackouts.push_back(zero);

    BlackoutWindow a, b;
    a.start = secondsToTicks(100);
    a.duration = secondsToTicks(60);
    b.start = secondsToTicks(120);  // overlaps a
    b.duration = secondsToTicks(60);
    plan.blackouts.push_back(a);
    plan.blackouts.push_back(b);

    ServerCrash noRestart;
    noRestart.at = secondsToTicks(5);
    noRestart.downtime = 0;  // no restart, not marked permanent
    plan.crashes.push_back(noRestart);

    ServerCrash contradictory;
    contradictory.at = secondsToTicks(10);
    contradictory.downtime = secondsToTicks(60);
    contradictory.permanent = true;  // permanent AND a downtime
    plan.crashes.push_back(contradictory);

    ControllerCrash c1, c2;
    c1.at = secondsToTicks(100);
    c1.downtime = secondsToTicks(120);
    c2.at = secondsToTicks(150);  // inside c1's downtime
    c2.downtime = secondsToTicks(60);
    plan.controllerCrashes.push_back(c1);
    plan.controllerCrashes.push_back(c2);

    std::vector<std::string> problems = plan.problems();
    EXPECT_EQ(problems.size(), 5u);

    // A well-formed permanent crash reports nothing.
    FaultPlan good;
    ServerCrash dark;
    dark.at = secondsToTicks(5);
    dark.permanent = true;
    good.crashes.push_back(dark);
    EXPECT_TRUE(good.problems().empty());
}

namespace {

/** Records the crash/restart calls a FaultPlan drives. */
class RecordingHooks : public ControllerHooks
{
  public:
    void controllerCrash() override { ++crashes; }
    void controllerRestart(bool coldRestart) override
    {
        ++restarts;
        lastCold = coldRestart;
    }
    void serverRestarted(telemetry::ClockControllable *) override
    {
        ++serverRestarts;
    }

    int crashes = 0;
    int restarts = 0;
    int serverRestarts = 0;
    bool lastCold = false;
};

} // namespace

TEST(FaultInjector, ControllerCrashAndRestartAreScheduled)
{
    FaultPlan plan;
    ControllerCrash crash;
    crash.at = secondsToTicks(10);
    crash.downtime = secondsToTicks(20);
    crash.coldRestart = true;
    plan.controllerCrashes.push_back(crash);

    Simulation sim;
    FaultInjector injector(sim, plan, Rng(5));
    RecordingHooks hooks;
    injector.attachController(&hooks);
    injector.start();

    sim.runFor(secondsToTicks(15));
    EXPECT_EQ(hooks.crashes, 1);
    EXPECT_EQ(hooks.restarts, 0);
    EXPECT_EQ(injector.controllerCrashesInjected(), 1u);

    sim.runFor(secondsToTicks(20));  // restore at t=30
    EXPECT_EQ(hooks.restarts, 1);
    EXPECT_TRUE(hooks.lastCold);
}

TEST(FaultInjector, ControllerCrashSkippedWithoutController)
{
    // An unmanaged run has nothing to crash: the events are skipped,
    // not fatal.
    FaultPlan plan;
    ControllerCrash crash;
    crash.at = secondsToTicks(10);
    crash.downtime = secondsToTicks(20);
    plan.controllerCrashes.push_back(crash);

    Simulation sim;
    FaultInjector injector(sim, plan, Rng(5));
    injector.start();
    sim.runFor(secondsToTicks(60));
    EXPECT_EQ(injector.controllerCrashesInjected(), 0u);
}

TEST(FaultInjector, PermanentCrashNeverRestores)
{
    Simulation sim;
    llm::ModelCatalog catalog;
    cluster::InferenceServer server(
        sim, power::ServerSpec::dgxA100_80gb(),
        catalog.byName("BLOOM-176B"), Priority::Low, 0);

    FaultPlan plan;
    ServerCrash crash;
    crash.at = secondsToTicks(10);
    crash.permanent = true;
    plan.crashes.push_back(crash);

    FaultInjector injector(sim, plan, Rng(5));
    RecordingHooks hooks;
    injector.attachServers({&server});
    injector.attachController(&hooks);
    injector.start();

    sim.runFor(secondsToTicks(3600));
    EXPECT_TRUE(server.crashed());
    EXPECT_EQ(injector.crashesInjected(), 1u);
    // No restore event: the controller is never told the server
    // came back, because it never does.
    EXPECT_EQ(hooks.serverRestarts, 0);
}

TEST(FaultInjector, ServerRestoreNotifiesController)
{
    Simulation sim;
    llm::ModelCatalog catalog;
    cluster::InferenceServer server(
        sim, power::ServerSpec::dgxA100_80gb(),
        catalog.byName("BLOOM-176B"), Priority::Low, 0);

    FaultPlan plan;
    ServerCrash crash;
    crash.at = secondsToTicks(10);
    crash.downtime = secondsToTicks(20);
    plan.crashes.push_back(crash);

    FaultInjector injector(sim, plan, Rng(5));
    RecordingHooks hooks;
    injector.attachServers({&server});
    injector.attachController(&hooks);
    injector.start();

    sim.runFor(secondsToTicks(60));
    EXPECT_FALSE(server.crashed());
    EXPECT_EQ(hooks.serverRestarts, 1);
}

TEST(FaultInjector, OobOutageSwallowsCommandsBrakeSurvives)
{
    Simulation sim;

    struct Target : telemetry::ClockControllable
    {
        void applyClockLock(double mhz) override { lock = mhz; }
        void applyClockUnlock() override { lock = 0.0; }
        void applyPowerBrake(bool on) override { brake = on; }
        double appliedClockLockMhz() const override { return lock; }
        bool powerBrakeEngaged() const override { return brake; }
        double lock = 0.0;
        bool brake = false;
    } target;

    telemetry::SmbpbiController::Options options;
    options.commandLatency = secondsToTicks(1);
    options.brakeLatency = secondsToTicks(1);
    telemetry::SmbpbiController channel(sim, target, Rng(5), options);

    FaultPlan plan;
    OobOutage outage;
    outage.start = secondsToTicks(10);
    outage.duration = secondsToTicks(10);
    plan.oobOutages.push_back(outage);

    FaultInjector injector(sim, plan, Rng(5));
    injector.attachChannels({&channel});
    injector.start();

    // During the outage: capping lost on the wire, brake unaffected.
    std::ignore = sim.queue().schedule(secondsToTicks(12), [&] {
        channel.requestClockLock(1275.0);
        channel.requestPowerBrake(true);
    });
    sim.runFor(secondsToTicks(15));
    EXPECT_TRUE(channel.outage());
    EXPECT_DOUBLE_EQ(target.lock, 0.0);
    EXPECT_TRUE(target.brake);
    EXPECT_EQ(channel.commandsDropped(), 1u);

    // After the outage the same command goes through.
    std::ignore = sim.queue().schedule(secondsToTicks(22), [&] {
        channel.requestClockLock(1275.0);
    });
    sim.runFor(secondsToTicks(10));
    EXPECT_FALSE(channel.outage());
    EXPECT_DOUBLE_EQ(target.lock, 1275.0);
}

TEST(FaultInjector, CrashDropsWorkRestoreRejoins)
{
    Simulation sim;
    llm::ModelCatalog catalog;
    cluster::InferenceServer server(
        sim, power::ServerSpec::dgxA100_80gb(),
        catalog.byName("BLOOM-176B"), Priority::Low, 0);

    FaultPlan plan;
    ServerCrash crash;
    crash.at = secondsToTicks(10);
    crash.downtime = secondsToTicks(20);
    plan.crashes.push_back(crash);

    FaultInjector injector(sim, plan, Rng(5));
    injector.attachServers({&server});
    injector.start();

    workload::Request request;
    request.arrival = 0;
    request.id = 1;
    request.inputTokens = 2048;
    request.outputTokens = 512;  // runs well past the crash
    server.submit(request);

    sim.runFor(secondsToTicks(15));
    EXPECT_TRUE(server.crashed());
    EXPECT_FALSE(server.canAccept());
    EXPECT_DOUBLE_EQ(server.powerWatts(), 0.0);
    EXPECT_EQ(server.droppedRequests(), 1u);
    EXPECT_EQ(injector.crashesInjected(), 1u);

    sim.runFor(secondsToTicks(20));  // past restore at t=30
    EXPECT_FALSE(server.crashed());
    EXPECT_TRUE(server.idleNow());
    EXPECT_EQ(server.completedRequests(), 0u);
}

TEST(FaultInjectorDeath, CrashIndexOutOfRangeFatal)
{
    Simulation sim;
    FaultPlan plan;
    ServerCrash crash;
    crash.at = secondsToTicks(1);
    crash.downtime = secondsToTicks(1);
    crash.serverIndex = 3;
    plan.crashes.push_back(crash);
    FaultInjector injector(sim, plan, Rng(1));
    EXPECT_DEATH(injector.start(), "crash server index");
}

TEST(FaultInjectorDeath, DoubleStartPanics)
{
    Simulation sim;
    FaultInjector injector(sim, FaultPlan(), Rng(1));
    injector.start();
    EXPECT_DEATH(injector.start(), "twice");
}

namespace {

/** Recording control target for the acceptance scenario. */
class FakeTarget : public telemetry::ClockControllable
{
  public:
    void applyClockLock(double mhz) override { lockMhz_ = mhz; }
    void applyClockUnlock() override { lockMhz_ = 0.0; }
    void applyPowerBrake(bool engaged) override { brake_ = engaged; }
    double appliedClockLockMhz() const override { return lockMhz_; }
    bool powerBrakeEngaged() const override { return brake_; }

  private:
    double lockMhz_ = 0.0;
    bool brake_ = false;
};

/**
 * The acceptance scenario: a 10 kW row whose supply spikes to 13 kW
 * at t = 70 s — ten seconds after a telemetry blackout begins — and
 * collapses to 3 kW whenever the power brake reaches the servers.
 * The breaker (trip limit 12.5 kW, 30 s thermal element) watches the
 * raw supply throughout.
 */
struct AcceptanceFixture
{
    explicit AcceptanceFixture(bool watchdogEnabled)
        : row(sim, secondsToTicks(2), false),
          manager(sim, row, 10000.0, core::PolicyConfig::polca(),
                  Rng(1), options(watchdogEnabled)),
          injector(sim, plan(), Rng(0xFA17))
    {
        row.addSource([this] { return supplyWatts(); });
        for (int i = 0; i < 2; ++i) {
            low.push_back(std::make_unique<FakeTarget>());
            high.push_back(std::make_unique<FakeTarget>());
            manager.addTarget(Priority::Low, low.back().get());
            manager.addTarget(Priority::High, high.back().get());
        }

        telemetry::BreakerModel::Config breakerConfig;
        breakerConfig.provisionedWatts = 10000.0;
        breakerConfig.breakerLimitWatts = 12500.0;
        breakerConfig.tripDuration = secondsToTicks(30);
        breaker = std::make_unique<telemetry::BreakerModel>(
            sim, [this] { return supplyWatts(); }, breakerConfig);

        injector.attachTelemetry(row);
        injector.start();
        manager.start();
        row.start();
        breaker->start();
    }

    static core::ManagerOptions
    options(bool watchdogEnabled)
    {
        core::ManagerOptions opts;
        opts.watchdogEnabled = watchdogEnabled;
        opts.watchdogTimeout = secondsToTicks(10);
        return opts;
    }

    static FaultPlan
    plan()
    {
        FaultPlan plan;
        BlackoutWindow window;
        window.start = secondsToTicks(60);
        window.duration = secondsToTicks(600);
        plan.blackouts.push_back(window);
        return plan;
    }

    double
    supplyWatts() const
    {
        if (low[0]->powerBrakeEngaged())
            return 3000.0;
        return sim.now() >= secondsToTicks(70) ? 13000.0 : 5000.0;
    }

    Simulation sim;
    telemetry::RowManager row;
    core::PowerManager manager;
    FaultInjector injector;
    std::unique_ptr<telemetry::BreakerModel> breaker;
    std::vector<std::unique_ptr<FakeTarget>> low;
    std::vector<std::unique_ptr<FakeTarget>> high;
};

} // namespace

TEST(FaultAcceptance, BlackoutMidSpikeTripsBreakerWithoutWatchdog)
{
    AcceptanceFixture f(/*watchdogEnabled=*/false);

    // Mid-blackout: the manager is frozen in its benign pre-blackout
    // state.  Power has been over the brake threshold for minutes,
    // but no reading ever arrives, so the brake cannot engage.
    f.sim.runFor(secondsToTicks(300));
    EXPECT_FALSE(f.manager.brakeEngaged());
    EXPECT_EQ(f.manager.powerBrakeEvents(), 0u);
    EXPECT_EQ(f.manager.failSafeEntries(), 0u);
    EXPECT_GT(f.breaker->trips(), 0u);

    // Once telemetry returns (t = 660 s) the manager reacts.
    f.sim.runFor(secondsToTicks(400));
    EXPECT_GT(f.manager.powerBrakeEvents(), 0u);
    Tick firstTrip = f.breaker->firstTripTime();
    EXPECT_GE(firstTrip, secondsToTicks(70));
    EXPECT_LT(firstTrip, secondsToTicks(660));
}

TEST(FaultAcceptance, WatchdogFailSafePreventsBreakerTrip)
{
    AcceptanceFixture f(/*watchdogEnabled=*/true);

    // The watchdog notices stale telemetry within its 10 s timeout
    // and pulls the brake over the dedicated line: the supply spike
    // is cut off before the breaker's 30 s thermal element winds up.
    f.sim.runFor(secondsToTicks(300));
    EXPECT_TRUE(f.manager.failSafeActive());
    EXPECT_TRUE(f.manager.brakeEngaged());
    EXPECT_TRUE(f.low[0]->powerBrakeEngaged());
    EXPECT_EQ(f.breaker->trips(), 0u);
    EXPECT_EQ(f.manager.failSafeEntries(), 1u);
    // Precautionary engagement is not a paper-metric brake event.
    EXPECT_EQ(f.manager.powerBrakeEvents(), 0u);
    EXPECT_LT(f.breaker->longestOverLimitStreak(), secondsToTicks(30));

    // Telemetry returns at t = 660 s: fail-safe exits and the run
    // finishes with the breaker never having opened.
    f.sim.runFor(secondsToTicks(400));
    EXPECT_FALSE(f.manager.failSafeActive());
    EXPECT_EQ(f.breaker->trips(), 0u);
    EXPECT_GE(f.manager.failSafeTicks(), secondsToTicks(500));
}
