/** @file Unit tests for accumulators, samplers, and histograms. */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/stats.hh"

using namespace polca::sim;

TEST(Accumulator, EmptyDefaults)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
    EXPECT_TRUE(std::isinf(acc.min()));
    EXPECT_TRUE(std::isinf(acc.max()));
}

TEST(Accumulator, BasicMoments)
{
    Accumulator acc;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(v);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
    EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, MergeEqualsCombinedStream)
{
    Accumulator a, b, all;
    for (int i = 0; i < 100; ++i) {
        double v = i * 0.37;
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty)
{
    Accumulator a, empty;
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Accumulator, ResetClears)
{
    Accumulator acc;
    acc.add(1.0);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
}

TEST(Sampler, QuantilesOfKnownSequence)
{
    Sampler s;
    for (int i = 1; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_NEAR(s.quantile(0.0), 1.0, 1e-12);
    EXPECT_NEAR(s.quantile(1.0), 100.0, 1e-12);
    EXPECT_NEAR(s.p50(), 50.5, 1e-12);
    EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-12);
}

TEST(Sampler, QuantileInterpolates)
{
    Sampler s;
    s.add(10.0);
    s.add(20.0);
    EXPECT_NEAR(s.quantile(0.5), 15.0, 1e-12);
    EXPECT_NEAR(s.quantile(0.75), 17.5, 1e-12);
}

TEST(Sampler, SingleValueAllQuantiles)
{
    Sampler s;
    s.add(7.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 7.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 7.0);
}

TEST(Sampler, AddAfterQuantileStillCorrect)
{
    Sampler s;
    s.add(3.0);
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.p50(), 2.0);
    s.add(2.0);  // forces resort on next query
    EXPECT_DOUBLE_EQ(s.p50(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(Sampler, MeanOfEmptyIsZero)
{
    Sampler s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(SamplerDeath, QuantileOfEmptyPanics)
{
    Sampler s;
    EXPECT_DEATH(s.quantile(0.5), "empty sampler");
}

TEST(SamplerDeath, QuantileOutOfRangePanics)
{
    Sampler s;
    s.add(1.0);
    EXPECT_DEATH(s.quantile(1.5), "outside");
}

TEST(Histogram, BinningAndEdges)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);   // bin 0
    h.add(3.0);   // bin 1
    h.add(9.99);  // bin 4
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_DOUBLE_EQ(h.binLow(1), 2.0);
    EXPECT_DOUBLE_EQ(h.binHigh(1), 4.0);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-5.0);
    h.add(100.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
}

TEST(Histogram, FractionsSumToOne)
{
    Histogram h(0.0, 1.0, 4);
    for (int i = 0; i < 100; ++i)
        h.add(i / 100.0);
    double total = 0.0;
    for (std::size_t b = 0; b < h.bins(); ++b)
        total += h.binFraction(b);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HistogramDeath, ZeroBinsFatal)
{
    EXPECT_DEATH(Histogram(0.0, 1.0, 0), "zero bins");
}

TEST(HistogramDeath, InvertedRangeFatal)
{
    EXPECT_DEATH(Histogram(1.0, 0.0, 4), "must exceed");
}

TEST(QuantileOf, OneShotHelper)
{
    EXPECT_DOUBLE_EQ(quantileOf({3.0, 1.0, 2.0}, 0.5), 2.0);
}
