/** @file Tests for the phase-splitting deployment (Section 5.2). */

#include <gtest/gtest.h>

#include "cluster/phase_split.hh"
#include "llm/phase_model.hh"

using namespace polca::cluster;
using namespace polca::workload;
using namespace polca::sim;

namespace {

PhaseSplitConfig
smallSplit()
{
    PhaseSplitConfig config;
    config.promptServers = 1;
    config.tokenServers = 2;
    return config;
}

Trace
singleRequest(int input = 2048, int output = 256)
{
    Trace trace;
    Request r;
    r.arrival = 0;
    r.inputTokens = input;
    r.outputTokens = output;
    trace.add(r);
    return trace;
}

} // namespace

TEST(ServerRole, ToStringCoverage)
{
    EXPECT_STREQ(toString(ServerRole::Combined), "combined");
    EXPECT_STREQ(toString(ServerRole::PromptOnly), "prompt-only");
    EXPECT_STREQ(toString(ServerRole::TokenOnly), "token-only");
}

TEST(PhaseSplit, CompletesEndToEnd)
{
    Simulation sim;
    PhaseSplitCluster split(sim, smallSplit(), Rng(1));
    Trace trace = singleRequest();
    split.injectTrace(trace);
    sim.runFor(secondsToTicks(120));
    EXPECT_EQ(split.completions(), 1u);
    EXPECT_EQ(split.latencySeconds().count(), 1u);
}

TEST(PhaseSplit, LatencyIncludesTransferAndTokenLock)
{
    Simulation sim;
    PhaseSplitConfig config = smallSplit();
    PhaseSplitCluster split(sim, config, Rng(1));
    Trace trace = singleRequest(2048, 256);
    split.injectTrace(trace);
    sim.runFor(secondsToTicks(120));

    polca::llm::ModelCatalog catalog;
    polca::llm::PhaseModel phases(catalog.byName("BLOOM-176B"));
    polca::llm::InferenceConfig ic;
    ic.inputTokens = 2048;
    ic.outputTokens = 256;
    double combined = ticksToSeconds(phases.totalLatency(ic));

    ASSERT_EQ(split.completions(), 1u);
    double measured = split.latencySeconds().max();
    // Split is slower: transfer (~0.16 s) plus the token lock
    // slowdown; but within ~15 % of the combined latency.
    EXPECT_GT(measured, combined);
    EXPECT_LT(measured, combined * 1.15);
}

TEST(PhaseSplit, TokenMachinesRunLocked)
{
    Simulation sim;
    PhaseSplitConfig config = smallSplit();
    config.tokenClockMhz = 1110.0;
    PhaseSplitCluster split(sim, config, Rng(1));
    auto servers = split.servers();
    ASSERT_EQ(servers.size(), 3u);
    EXPECT_EQ(servers[0]->role(), ServerRole::PromptOnly);
    EXPECT_DOUBLE_EQ(servers[0]->appliedClockLockMhz(), 0.0);
    EXPECT_EQ(servers[1]->role(), ServerRole::TokenOnly);
    EXPECT_DOUBLE_EQ(servers[1]->appliedClockLockMhz(), 1110.0);
}

TEST(PhaseSplit, PromptServerNeverEntersTokenPhase)
{
    // A prompt-only server's power must drop back to idle right
    // after the (short) prompt, instead of holding a token plateau.
    Simulation sim;
    PhaseSplitCluster split(sim, smallSplit(), Rng(1));
    Trace trace = singleRequest(8192, 4096);  // very long token phase
    split.injectTrace(trace);

    auto servers = split.servers();
    InferenceServer *prompt = servers[0];
    sim.runFor(secondsToTicks(1.0));
    EXPECT_FALSE(prompt->idleNow());  // mid prompt (~3 s)
    sim.runFor(secondsToTicks(5.0));
    EXPECT_TRUE(prompt->idleNow());   // prompt done, token elsewhere
    EXPECT_EQ(prompt->completedRequests(), 1u);
    EXPECT_EQ(split.completions(), 0u);  // token stage still running
}

TEST(PhaseSplit, ManyRequestsAllComplete)
{
    Simulation sim;
    PhaseSplitConfig config;
    config.promptServers = 2;
    config.tokenServers = 6;
    PhaseSplitCluster split(sim, config, Rng(1));

    Trace trace;
    for (int i = 0; i < 30; ++i) {
        Request r;
        r.arrival = secondsToTicks(i * 2.0);
        r.id = static_cast<std::uint64_t>(i);
        r.inputTokens = 1024 + (i % 4) * 512;
        r.outputTokens = 128 + (i % 3) * 64;
        trace.add(r);
    }
    split.injectTrace(trace);
    sim.runFor(secondsToTicks(600));
    EXPECT_EQ(split.completions(), 30u);
}

TEST(PhaseSplit, TokenPoolPowerIsFlat)
{
    // The headline benefit: token machines never see prompt spikes,
    // so their power stays in a narrow band while serving.
    Simulation sim;
    PhaseSplitConfig config = smallSplit();
    PhaseSplitCluster split(sim, config, Rng(1));
    Trace trace = singleRequest(4096, 1024);
    split.injectTrace(trace);

    auto servers = split.servers();
    InferenceServer *token = servers[1];
    double maxPower = 0.0;
    // Sample the busy token server.
    auto sampler = sim.every(msToTicks(100), [&](Tick) {
        if (!token->idleNow())
            maxPower = std::max(maxPower, token->powerWatts());
    });
    sim.runFor(secondsToTicks(120));
    ASSERT_GT(maxPower, 0.0);
    // Never anywhere near the prompt spike level (~5.7 kW).
    EXPECT_LT(maxPower, 4000.0);
}

TEST(PhaseSplitDeath, EmptyPoolFatal)
{
    Simulation sim;
    PhaseSplitConfig config = smallSplit();
    config.tokenServers = 0;
    EXPECT_DEATH(PhaseSplitCluster(sim, config, Rng(1)),
                 "both pools");
}
