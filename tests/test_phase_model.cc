/** @file Unit and property tests for the inference phase model. */

#include <gtest/gtest.h>

#include "llm/phase_model.hh"
#include "power/gpu_power_model.hh"

using namespace polca::llm;
using namespace polca::sim;

namespace {

const ModelCatalog &
catalog()
{
    static ModelCatalog instance;
    return instance;
}

InferenceConfig
config(int input, int batch, int output)
{
    InferenceConfig c;
    c.inputTokens = input;
    c.batchSize = batch;
    c.outputTokens = output;
    return c;
}

} // namespace

TEST(PhaseModel, PromptDurationScalesWithInput)
{
    PhaseModel m(catalog().byName("BLOOM-176B"));
    Tick d1 = m.promptDuration(config(1024, 1, 128));
    Tick d2 = m.promptDuration(config(4096, 1, 128));
    EXPECT_NEAR(static_cast<double>(d2) / static_cast<double>(d1),
                4.0, 0.01);
}

TEST(PhaseModel, PromptDurationScalesWithBatch)
{
    PhaseModel m(catalog().byName("BLOOM-176B"));
    Tick d1 = m.promptDuration(config(1024, 1, 128));
    Tick d2 = m.promptDuration(config(1024, 8, 128));
    EXPECT_NEAR(static_cast<double>(d2) / static_cast<double>(d1),
                8.0, 0.01);
}

TEST(PhaseModel, TokenPhaseScalesLinearlyWithOutput)
{
    // Fig 8f: output size stretches latency linearly.
    PhaseModel m(catalog().byName("BLOOM-176B"));
    Tick d1 = m.tokenPhaseDuration(config(1024, 1, 256));
    Tick d2 = m.tokenPhaseDuration(config(1024, 1, 1024));
    EXPECT_NEAR(static_cast<double>(d2) / static_cast<double>(d1),
                4.0, 0.01);
}

TEST(PhaseModel, BloomPromptAt8kIsSecondsScale)
{
    // Calibration anchor: an 8K-token BLOOM prompt takes ~3 s.
    PhaseModel m(catalog().byName("BLOOM-176B"));
    double seconds =
        ticksToSeconds(m.promptDuration(config(8192, 1, 1)));
    EXPECT_GT(seconds, 2.0);
    EXPECT_LT(seconds, 4.0);
}

TEST(PhaseModel, TokenPhaseDominatesLatencyForLongOutputs)
{
    PhaseModel m(catalog().byName("BLOOM-176B"));
    InferenceConfig c = config(2048, 1, 1024);
    EXPECT_GT(m.tokenPhaseDuration(c), 10 * m.promptDuration(c));
}

TEST(PhaseModel, InputSizeBarelyMovesLatencyUntilVeryLarge)
{
    // Fig 8b: latency is insensitive to input size below ~4K.
    PhaseModel m(catalog().byName("BLOOM-176B"));
    Tick small = m.totalLatency(config(256, 1, 512));
    Tick large = m.totalLatency(config(4096, 1, 512));
    EXPECT_LT(static_cast<double>(large) / static_cast<double>(small),
              1.10);
}

TEST(PhaseModel, ZeroOutputSkipsTokenPhase)
{
    PhaseModel m(catalog().byName("BLOOM-176B"));
    EXPECT_EQ(m.tokenPhaseDuration(config(1024, 1, 0)), 0);
    EXPECT_EQ(m.totalLatency(config(1024, 1, 0)),
              m.promptDuration(config(1024, 1, 0)));
}

TEST(PhaseModel, PromptActivityGrowsAndSaturates)
{
    // Fig 8a: peak power rises with input size, then saturates.
    PhaseModel m(catalog().byName("BLOOM-176B"));
    double a256 = m.promptActivity(config(256, 1, 1)).compute;
    double a2048 = m.promptActivity(config(2048, 1, 1)).compute;
    double a8192 = m.promptActivity(config(8192, 1, 1)).compute;
    double a16384 = m.promptActivity(config(16384, 1, 1)).compute;
    EXPECT_LT(a256, a2048);
    EXPECT_LT(a2048, a8192);
    EXPECT_DOUBLE_EQ(a8192, a16384);  // saturated
    EXPECT_DOUBLE_EQ(a8192, m.model().promptComputeMax);
}

TEST(PhaseModel, BatchRaisesPromptActivityLikeInput)
{
    // Fig 8c: batch multiplies the tokens in the prompt computation.
    PhaseModel m(catalog().byName("BLOOM-176B"));
    double viaBatch = m.promptActivity(config(512, 4, 1)).compute;
    double viaInput = m.promptActivity(config(2048, 1, 1)).compute;
    EXPECT_DOUBLE_EQ(viaBatch, viaInput);
}

TEST(PhaseModel, TokenActivityLowComputeHighMemory)
{
    PhaseModel m(catalog().byName("BLOOM-176B"));
    polca::power::GpuActivity a = m.tokenActivity(config(2048, 1, 512));
    EXPECT_LT(a.compute, 0.5);
    EXPECT_GT(a.memory, 0.8);
}

TEST(PhaseModel, TokenActivityRisesMildlyWithBatch)
{
    PhaseModel m(catalog().byName("BLOOM-176B"));
    double b1 = m.tokenActivity(config(2048, 1, 512)).compute;
    double b16 = m.tokenActivity(config(2048, 16, 512)).compute;
    EXPECT_GT(b16, b1);
    EXPECT_LT(b16 / b1, 1.6);
}

TEST(PhaseModel, OutputSizeDoesNotChangeActivity)
{
    // Fig 8e: output size affects duration only.
    PhaseModel m(catalog().byName("BLOOM-176B"));
    auto a1 = m.tokenActivity(config(2048, 1, 128));
    auto a2 = m.tokenActivity(config(2048, 1, 4096));
    EXPECT_DOUBLE_EQ(a1.compute, a2.compute);
    EXPECT_DOUBLE_EQ(a1.memory, a2.memory);
}

TEST(PhaseModel, LargerModelsDrawMorePower)
{
    PhaseModel small(catalog().byName("Flan-T5-XXL"));
    PhaseModel large(catalog().byName("BLOOM-176B"));
    InferenceConfig c = config(2048, 1, 512);
    EXPECT_LT(small.promptActivity(c).compute,
              large.promptActivity(c).compute);
    EXPECT_LT(small.tokenActivity(c).compute,
              large.tokenActivity(c).compute);
}

TEST(PhaseModel, DatatypeLatencyOrdering)
{
    PhaseModel m(catalog().byName("Llama2-13B"));
    InferenceConfig fp16 = config(2048, 1, 256);
    InferenceConfig fp32 = fp16;
    fp32.datatype = Datatype::FP32;
    InferenceConfig int8 = fp16;
    int8.datatype = Datatype::INT8;
    EXPECT_LT(m.totalLatency(fp16), m.totalLatency(int8));
    EXPECT_LT(m.totalLatency(int8), m.totalLatency(fp32));
}

TEST(PhaseModel, DatatypePeakPowerOrdering)
{
    // Insight 6: FP16 peaks highest.
    PhaseModel m(catalog().byName("Llama2-13B"));
    InferenceConfig fp16 = config(4096, 1, 256);
    InferenceConfig int8 = fp16;
    int8.datatype = Datatype::INT8;
    EXPECT_GT(m.promptActivity(fp16).compute,
              m.promptActivity(int8).compute);
}

TEST(PhaseModel, LatencyAtLockedClockStretchesTokenPhaseLess)
{
    // Insight 7: memory-bound token phase is clock insensitive.
    PhaseModel m(catalog().byName("GPT-NeoX-20B"));
    polca::power::GpuPowerModel gpu(polca::power::GpuSpec::a100_80gb());
    InferenceConfig c = config(2048, 1, 1024);
    Tick base = m.latencyAtClock(c, gpu);
    gpu.lockClock(1100.0);
    Tick locked = m.latencyAtClock(c, gpu);
    double slowdown =
        static_cast<double>(locked) / static_cast<double>(base);
    EXPECT_GT(slowdown, 1.0);
    EXPECT_LT(slowdown, 1.05);  // GPT-NeoX: nearly free (Fig 10a)
}

TEST(PhaseModel, BloomMoreSensitiveThanNeoX)
{
    polca::power::GpuPowerModel gpu(polca::power::GpuSpec::a100_80gb());
    gpu.lockClock(1100.0);
    InferenceConfig c = config(2048, 1, 1024);

    PhaseModel neox(catalog().byName("GPT-NeoX-20B"));
    PhaseModel bloom(catalog().byName("BLOOM-176B"));
    double neoxSlow =
        static_cast<double>(neox.latencyAtClock(c, gpu)) /
        static_cast<double>(neox.totalLatency(c));
    double bloomSlow =
        static_cast<double>(bloom.latencyAtClock(c, gpu)) /
        static_cast<double>(bloom.totalLatency(c));
    EXPECT_LT(neoxSlow, bloomSlow);
    EXPECT_LT(bloomSlow, 1.12);  // ~10 % at the deepest lock
}

TEST(PhaseModelDeath, InvalidConfigFatal)
{
    PhaseModel m(catalog().byName("BLOOM-176B"));
    EXPECT_DEATH(m.promptDuration(config(0, 1, 1)), "non-positive");
    EXPECT_DEATH(m.tokenPhaseDuration(config(16, 1, -1)), "negative");
}

/** Property sweep across all catalog models. */
class AllModels : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AllModels, DurationsArePositiveAndFinite)
{
    PhaseModel m(catalog().byName(GetParam()));
    InferenceConfig c = config(1024, 2, 128);
    EXPECT_GT(m.promptDuration(c), 0);
    EXPECT_GT(m.tokenPhaseDuration(c), 0);
    EXPECT_EQ(m.totalLatency(c),
              m.promptDuration(c) + m.tokenPhaseDuration(c));
}

TEST_P(AllModels, PromptBeatsTokenOnComputeIntensity)
{
    // Insight 4 holds for every model: prompt is compute heavy,
    // token is memory heavy.
    PhaseModel m(catalog().byName(GetParam()));
    InferenceConfig c = config(4096, 1, 512);
    EXPECT_GT(m.promptActivity(c).compute, m.tokenActivity(c).compute);
    EXPECT_LT(m.promptActivity(c).memory, m.tokenActivity(c).memory);
}

TEST_P(AllModels, PromptIsComputeBoundTokenIsNot)
{
    PhaseModel m(catalog().byName(GetParam()));
    EXPECT_GT(m.computeBoundFraction(Phase::Prompt), 0.7);
    EXPECT_LT(m.computeBoundFraction(Phase::Token), 0.55);
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, AllModels,
    ::testing::Values("RoBERTa", "Llama2-13B", "Llama2-70B",
                      "GPT-NeoX-20B", "OPT-30B", "BLOOM-176B",
                      "Flan-T5-XXL"));
