/**
 * @file
 * sim logging: quiet-flag contract, QuietScope, the test sink, and
 * simulated-time prefixes on warn()/inform().
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace {

using namespace polca;

/** Captures warn()/inform() lines; restores stderr/stdout on exit. */
class SinkCapture
{
  public:
    SinkCapture()
    {
        sim::setLogSink(
            [this](const char *severity, const std::string &line) {
                lines_.emplace_back(severity, line);
            });
    }
    ~SinkCapture() { sim::setLogSink(nullptr); }

    const std::vector<std::pair<std::string, std::string>> &
    lines() const
    {
        return lines_;
    }

  private:
    std::vector<std::pair<std::string, std::string>> lines_;
};

TEST(Logging, QuietScopeRestoresPreviousState)
{
    // The shared test main sets quiet(true).
    ASSERT_TRUE(sim::quiet());
    {
        sim::QuietScope loud(false);
        EXPECT_FALSE(sim::quiet());
        {
            sim::QuietScope quiet(true);
            EXPECT_TRUE(sim::quiet());
        }
        EXPECT_FALSE(sim::quiet());
    }
    EXPECT_TRUE(sim::quiet());
}

TEST(Logging, QuietSuppressesSink)
{
    SinkCapture capture;
    sim::warn("dropped on the floor");
    EXPECT_TRUE(capture.lines().empty());

    sim::QuietScope loud(false);
    sim::warn("captured");
    ASSERT_EQ(capture.lines().size(), 1u);
    EXPECT_EQ(capture.lines()[0].first, "warn");
    EXPECT_EQ(capture.lines()[0].second, "captured");
}

TEST(Logging, ToggleMidStreamTakesEffectOnNextMessage)
{
    SinkCapture capture;
    sim::QuietScope loud(false);
    sim::inform("one");
    sim::setQuiet(true);
    sim::inform("two");  // discarded, not buffered
    sim::setQuiet(false);
    sim::inform("three");
    ASSERT_EQ(capture.lines().size(), 2u);
    EXPECT_EQ(capture.lines()[0].second, "one");
    EXPECT_EQ(capture.lines()[1].second, "three");
}

TEST(Logging, ActiveSimulationPrefixesTime)
{
    SinkCapture capture;
    sim::QuietScope loud(false);

    {
        sim::Simulation simulation(1);
        std::ignore = simulation.queue().schedule(sim::secondsToTicks(5.0),
                                    [] { sim::warn("mid-run"); });
        simulation.runUntil(sim::secondsToTicks(10.0));
        sim::inform("after events");
    }
    // Simulation destroyed: no prefix any more.
    sim::warn("no sim");

    ASSERT_EQ(capture.lines().size(), 3u);
    EXPECT_EQ(capture.lines()[0].second, "[t=5.000000s] mid-run");
    // runUntil() advances now() to the end time even when the queue
    // drains early, so post-run messages carry the final time.
    EXPECT_EQ(capture.lines()[1].second,
              "[t=10.000000s] after events");
    EXPECT_EQ(capture.lines()[2].second, "no sim");
}

TEST(Logging, NestedSimulationsInnermostWins)
{
    SinkCapture capture;
    sim::QuietScope loud(false);

    sim::Simulation outer(1);
    outer.runUntil(sim::secondsToTicks(100.0));
    {
        sim::Simulation inner(2);
        inner.runUntil(sim::secondsToTicks(3.0));
        sim::warn("inner speaks");
    }
    sim::warn("outer speaks");

    ASSERT_EQ(capture.lines().size(), 2u);
    EXPECT_EQ(capture.lines()[0].second, "[t=3.000000s] inner speaks");
    EXPECT_EQ(capture.lines()[1].second,
              "[t=100.000000s] outer speaks");
}

} // namespace
