/** @file Unit and statistical tests for the deterministic Rng. */

#include <gtest/gtest.h>

#include "sim/random.hh"
#include "sim/stats.hh"

using namespace polca::sim;

TEST(Rng, SameSeedSameStream)
{
    Rng a(7), b(7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(7), b(8);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.uniform() == b.uniform();
    EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng rng(7);
    double first = rng.uniform();
    rng.uniform();
    rng.reseed(7);
    EXPECT_DOUBLE_EQ(rng.uniform(), first);
}

TEST(Rng, ForkIsIndependentOfParentDraws)
{
    Rng a(7);
    Rng childBefore = a.fork(1);
    a.uniform();
    a.uniform();
    Rng childAfter = a.fork(1);
    // Forks depend only on seed+salt, not on parent's draw position.
    EXPECT_DOUBLE_EQ(childBefore.uniform(), childAfter.uniform());
}

TEST(Rng, ForkWithDifferentSaltsDiffer)
{
    Rng a(7);
    Rng c1 = a.fork(1);
    Rng c2 = a.fork(2);
    EXPECT_NE(c1.uniform(), c2.uniform());
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        double v = rng.uniform(2.0, 5.0);
        ASSERT_GE(v, 2.0);
        ASSERT_LT(v, 5.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(11);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.uniformInt(1, 6);
        ASSERT_GE(v, 1);
        ASSERT_LE(v, 6);
        sawLo |= v == 1;
        sawHi |= v == 6;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(13);
    Accumulator acc;
    for (int i = 0; i < 50000; ++i)
        acc.add(rng.exponential(2.0));
    EXPECT_NEAR(acc.mean(), 0.5, 0.02);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(17);
    Accumulator acc;
    for (int i = 0; i < 50000; ++i)
        acc.add(rng.normal(10.0, 3.0));
    EXPECT_NEAR(acc.mean(), 10.0, 0.1);
    EXPECT_NEAR(acc.stddev(), 3.0, 0.1);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(19);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, WeightedIndexFollowsWeights)
{
    Rng rng(23);
    std::vector<double> weights{1.0, 3.0, 6.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[rng.weightedIndex(weights)];
    EXPECT_NEAR(counts[0] / 100000.0, 0.1, 0.01);
    EXPECT_NEAR(counts[1] / 100000.0, 0.3, 0.01);
    EXPECT_NEAR(counts[2] / 100000.0, 0.6, 0.01);
}

TEST(Rng, WeightedIndexSkipsZeroWeights)
{
    Rng rng(29);
    std::vector<double> weights{0.0, 1.0, 0.0};
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(rng.weightedIndex(weights), 1u);
}

TEST(RngDeath, WeightedIndexRejectsAllZero)
{
    Rng rng(1);
    std::vector<double> weights{0.0, 0.0};
    EXPECT_DEATH(rng.weightedIndex(weights), "sum to zero");
}

TEST(RngDeath, WeightedIndexRejectsNegative)
{
    Rng rng(1);
    std::vector<double> weights{0.5, -0.1};
    EXPECT_DEATH(rng.weightedIndex(weights), "negative weight");
}
