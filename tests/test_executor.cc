/** @file Unit tests for the sub-stepped segment executor. */

#include <gtest/gtest.h>

#include "llm/executor.hh"
#include "llm/model_spec.hh"
#include "llm/phase_model.hh"
#include "llm/segments.hh"
#include "llm/training_model.hh"

using namespace polca::llm;
using namespace polca::power;
using namespace polca::sim;

namespace {

ServerModel
makeServer()
{
    return ServerModel(ServerSpec::dgxA100_80gb());
}

std::vector<std::size_t>
allGpus()
{
    return {0, 1, 2, 3, 4, 5, 6, 7};
}

} // namespace

TEST(SegmentExecutor, UnthrottledSegmentTakesNominalTime)
{
    ServerModel server = makeServer();
    SegmentExecutor exec(server, allGpus());
    WorkSegment seg{secondsToTicks(2.0), {0.5, 0.5}, 0.9, "work"};
    Tick elapsed = exec.run({seg});
    EXPECT_NEAR(ticksToSeconds(elapsed), 2.0, 0.02);
}

TEST(SegmentExecutor, LockedClockStretchesComputeSegment)
{
    ServerModel server = makeServer();
    server.lockClockAll(705.0);  // 2x slowdown for pure compute
    SegmentExecutor exec(server, allGpus());
    WorkSegment seg{secondsToTicks(1.0), {0.5, 0.5}, 1.0, "compute"};
    Tick elapsed = exec.run({seg});
    EXPECT_NEAR(ticksToSeconds(elapsed), 2.0, 0.05);
}

TEST(SegmentExecutor, MemoryBoundSegmentUnaffectedByClock)
{
    ServerModel server = makeServer();
    server.lockClockAll(705.0);
    SegmentExecutor exec(server, allGpus());
    WorkSegment seg{secondsToTicks(1.0), {0.3, 0.9}, 0.0, "memory"};
    Tick elapsed = exec.run({seg});
    EXPECT_NEAR(ticksToSeconds(elapsed), 1.0, 0.02);
}

TEST(SegmentExecutor, SamplesPowerAtInterval)
{
    ServerModel server = makeServer();
    SegmentExecutor exec(server, allGpus());
    WorkSegment seg{secondsToTicks(1.0), {0.5, 0.5}, 0.9, "work"};
    exec.run({seg});
    // 100 ms cadence over 1 s -> ~10 samples (plus t=0).
    EXPECT_GE(exec.gpuPowerSeries().size(), 10u);
    EXPECT_LE(exec.gpuPowerSeries().size(), 12u);
    EXPECT_EQ(exec.gpuPowerSeries().size(),
              exec.serverPowerSeries().size());
}

TEST(SegmentExecutor, PowerReflectsSegmentActivity)
{
    ServerModel server = makeServer();
    SegmentExecutor exec(server, allGpus());
    WorkSegment hot{secondsToTicks(1.0), {1.05, 0.5}, 0.9, "hot"};
    WorkSegment cold{secondsToTicks(1.0), {0.1, 0.2}, 0.9, "cold"};
    exec.run({hot, cold});
    const auto &series = exec.gpuPowerSeries();
    // First-half samples are hotter than the second half.
    double early = series.valueAt(secondsToTicks(0.5));
    double late = series.valueAt(secondsToTicks(1.5));
    EXPECT_GT(early, late * 1.8);
}

TEST(SegmentExecutor, ReactiveCapStretchesCappedWorkload)
{
    // A capped prompt-like phase throttles and therefore takes
    // longer than nominal.
    ServerModel server = makeServer();
    server.setPowerCapAll(325.0);
    SegmentExecutor exec(server, allGpus());
    WorkSegment seg{secondsToTicks(2.0), {1.05, 0.5}, 0.9, "prompt"};
    Tick elapsed = exec.run({seg});
    EXPECT_GT(ticksToSeconds(elapsed), 2.05);
    // Steady-state power ends up at/below the cap.
    EXPECT_LE(server.gpu(0).powerWatts(), 330.0);
}

TEST(SegmentExecutor, IdleAdvancesTimeAtIdlePower)
{
    ServerModel server = makeServer();
    SegmentExecutor exec(server, allGpus());
    exec.idle(secondsToTicks(1.0));
    EXPECT_EQ(exec.now(), secondsToTicks(1.0));
    double gpuIdle = 8 * server.spec().gpu.idleWatts;
    EXPECT_NEAR(exec.gpuPowerSeries().points().back().value, gpuIdle,
                1.0);
}

TEST(SegmentExecutor, ExecutedSegmentsLogged)
{
    ServerModel server = makeServer();
    SegmentExecutor exec(server, allGpus());
    WorkSegment a{secondsToTicks(0.5), {0.5, 0.5}, 0.9, "a"};
    WorkSegment b{secondsToTicks(0.25), {0.5, 0.5}, 0.9, "b"};
    exec.run({a, b});
    ASSERT_EQ(exec.executedSegments().size(), 2u);
    EXPECT_EQ(exec.executedSegments()[0].label, "a");
    EXPECT_EQ(exec.executedSegments()[1].label, "b");
    EXPECT_NEAR(
        ticksToSeconds(exec.executedSegments()[0].duration), 0.5,
        0.02);
}

TEST(SegmentExecutorDeath, NoGpusFatal)
{
    ServerModel server = makeServer();
    EXPECT_DEATH(SegmentExecutor(server, {}), "no GPUs");
}

TEST(SegmentExecutorDeath, GpuIndexOutOfRangeFatal)
{
    ServerModel server = makeServer();
    EXPECT_DEATH(SegmentExecutor(server, {42}), "out of range");
}

TEST(Segments, InferenceSegmentsMatchPhaseModel)
{
    ModelCatalog catalog;
    PhaseModel phases(catalog.byName("BLOOM-176B"));
    InferenceConfig config;
    config.inputTokens = 2048;
    config.outputTokens = 256;
    auto segments = inferenceSegments(phases, config);
    ASSERT_EQ(segments.size(), 2u);
    EXPECT_EQ(segments[0].label, "prompt");
    EXPECT_EQ(segments[1].label, "token");
    EXPECT_EQ(segments[0].workAtMaxClock,
              phases.promptDuration(config));
    EXPECT_EQ(segments[1].workAtMaxClock,
              phases.tokenPhaseDuration(config));
}

TEST(Segments, ZeroOutputOmitsTokenSegment)
{
    ModelCatalog catalog;
    PhaseModel phases(catalog.byName("BLOOM-176B"));
    InferenceConfig config;
    config.outputTokens = 0;
    auto segments = inferenceSegments(phases, config);
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].label, "prompt");
}

TEST(Segments, TrainingIterationHasFourPhases)
{
    TrainingModel model(TrainingSpec::forModel("RoBERTa"));
    auto segments = trainingIterationSegments(model);
    ASSERT_EQ(segments.size(), 4u);
    EXPECT_EQ(segments[0].label, "forward");
    EXPECT_EQ(segments[3].label, "sync");
    // Sync is communication: not compute bound.
    EXPECT_DOUBLE_EQ(segments[3].computeBoundFraction, 0.0);
    EXPECT_GT(segments[0].computeBoundFraction, 0.4);
}
