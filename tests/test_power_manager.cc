/** @file Unit tests for the POLCA power manager state machine. */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/power_manager.hh"
#include "sim/simulation.hh"

using namespace polca::core;
using namespace polca::telemetry;
using namespace polca::sim;
using polca::workload::Priority;

namespace {

/** Recording fake control target. */
class FakeTarget : public ClockControllable
{
  public:
    void applyClockLock(double mhz) override { lockMhz_ = mhz; }
    void applyClockUnlock() override { lockMhz_ = 0.0; }
    void applyPowerBrake(bool engaged) override { brake_ = engaged; }
    double appliedClockLockMhz() const override { return lockMhz_; }
    bool powerBrakeEngaged() const override { return brake_; }

  private:
    double lockMhz_ = 0.0;
    bool brake_ = false;
};

/**
 * Harness: a row manager fed by a scripted power value, a manager
 * over two pools of fake targets, and a 10 kW provisioned budget so
 * utilization = watts / 10000.
 */
struct Fixture
{
    explicit Fixture(PolicyConfig policy = PolicyConfig::polca(),
                     ManagerOptions options = ManagerOptions())
        : telemetry(sim, secondsToTicks(2), false),
          manager(sim, telemetry, 10000.0, std::move(policy), Rng(1),
                  options)
    {
        telemetry.addSource([this] { return watts; });
        for (int i = 0; i < 2; ++i) {
            low.push_back(std::make_unique<FakeTarget>());
            high.push_back(std::make_unique<FakeTarget>());
            manager.addTarget(Priority::Low, low.back().get());
            manager.addTarget(Priority::High, high.back().get());
        }
        manager.start();
        telemetry.start();
    }

    void
    runSeconds(double seconds)
    {
        sim.runFor(secondsToTicks(seconds));
    }

    Simulation sim;
    RowManager telemetry;
    PowerManager manager;
    std::vector<std::unique_ptr<FakeTarget>> low;
    std::vector<std::unique_ptr<FakeTarget>> high;
    double watts = 5000.0;  // 50 % utilization
};

} // namespace

TEST(PowerManager, QuietBelowThresholds)
{
    Fixture f;
    f.runSeconds(300);
    EXPECT_EQ(f.manager.capCommands(), 0u);
    EXPECT_DOUBLE_EQ(f.low[0]->appliedClockLockMhz(), 0.0);
    EXPECT_NEAR(f.manager.meanUtilization(), 0.5, 1e-9);
}

TEST(PowerManager, T1CapsLowPriorityAfterOobLatency)
{
    Fixture f;
    f.watts = 8200.0;  // above T1 = 80 %
    f.runSeconds(4);   // telemetry notices
    EXPECT_DOUBLE_EQ(f.manager.desiredLockMhz(Priority::Low), 1275.0);
    // Not yet applied: the OOB path takes 40 s.
    EXPECT_DOUBLE_EQ(f.low[0]->appliedClockLockMhz(), 0.0);
    f.runSeconds(42);
    EXPECT_DOUBLE_EQ(f.low[0]->appliedClockLockMhz(), 1275.0);
    EXPECT_DOUBLE_EQ(f.high[0]->appliedClockLockMhz(), 0.0);
    EXPECT_EQ(f.manager.capCommands(), 1u);
}

TEST(PowerManager, T2EscalatesLpThenHp)
{
    Fixture f;
    f.watts = 9200.0;  // above T2 = 89 %
    f.runSeconds(120);
    // LP first locked deeper, then HP gently.
    EXPECT_DOUBLE_EQ(f.low[0]->appliedClockLockMhz(), 1110.0);
    EXPECT_DOUBLE_EQ(f.high[0]->appliedClockLockMhz(), 1305.0);
    EXPECT_GE(f.manager.capCommands(), 2u);
}

TEST(PowerManager, EscalationIsStaged)
{
    Fixture f;
    f.watts = 9200.0;
    // After one telemetry reading only T1 is active; HP untouched
    // even as a desired state.
    f.runSeconds(3);
    EXPECT_DOUBLE_EQ(f.manager.desiredLockMhz(Priority::High), 0.0);
    f.runSeconds(2);  // second reading: T2-LP
    EXPECT_DOUBLE_EQ(f.manager.desiredLockMhz(Priority::Low), 1110.0);
    EXPECT_DOUBLE_EQ(f.manager.desiredLockMhz(Priority::High), 0.0);
    f.runSeconds(2);  // third reading: T2-HP
    EXPECT_DOUBLE_EQ(f.manager.desiredLockMhz(Priority::High), 1305.0);
}

TEST(PowerManager, HysteresisHoldsCapUntilRelease)
{
    Fixture f;
    f.watts = 8200.0;  // cross T1 (80 %)
    f.runSeconds(50);
    ASSERT_DOUBLE_EQ(f.low[0]->appliedClockLockMhz(), 1275.0);

    // Drop just below the cap threshold but above release (75 %).
    f.watts = 7800.0;
    f.runSeconds(100);
    EXPECT_DOUBLE_EQ(f.manager.desiredLockMhz(Priority::Low), 1275.0);

    // Below the release threshold: uncap (after the smoothing
    // window drains and the 40 s OOB unlock lands).
    f.watts = 7400.0;
    f.runSeconds(90);
    EXPECT_DOUBLE_EQ(f.manager.desiredLockMhz(Priority::Low), 0.0);
    EXPECT_DOUBLE_EQ(f.low[0]->appliedClockLockMhz(), 0.0);
    EXPECT_GE(f.manager.uncapCommands(), 1u);
}

TEST(PowerManager, DeescalationRestoresShallowerLock)
{
    Fixture f;
    f.watts = 9200.0;
    f.runSeconds(120);
    ASSERT_DOUBLE_EQ(f.low[0]->appliedClockLockMhz(), 1110.0);

    // Fall to 82 %: releases T2 rules (release 84 %) but T1 stays.
    f.watts = 8200.0;
    f.runSeconds(180);
    EXPECT_DOUBLE_EQ(f.manager.desiredLockMhz(Priority::Low), 1275.0);
    EXPECT_DOUBLE_EQ(f.manager.desiredLockMhz(Priority::High), 0.0);
    EXPECT_DOUBLE_EQ(f.low[0]->appliedClockLockMhz(), 1275.0);
}

TEST(PowerManager, BrakeEngagesAtProvisionedLimit)
{
    Fixture f;
    f.watts = 10100.0;  // 101 %
    f.runSeconds(10);   // 2 s telemetry + 5 s brake latency
    EXPECT_TRUE(f.manager.brakeEngaged());
    EXPECT_TRUE(f.low[0]->powerBrakeEngaged());
    EXPECT_TRUE(f.high[0]->powerBrakeEngaged());
    EXPECT_EQ(f.manager.powerBrakeEvents(), 1u);
}

TEST(PowerManager, BrakeHeldThenReleased)
{
    Fixture f;
    f.watts = 10100.0;
    f.runSeconds(10);
    ASSERT_TRUE(f.manager.brakeEngaged());

    // Power collapses under braking.
    f.watts = 4000.0;
    f.runSeconds(4);
    // Held for the minimum duration despite low power.
    EXPECT_TRUE(f.manager.brakeEngaged());
    f.runSeconds(40);
    EXPECT_FALSE(f.manager.brakeEngaged());
    EXPECT_FALSE(f.low[0]->powerBrakeEngaged());
    EXPECT_EQ(f.manager.powerBrakeEvents(), 1u);
}

TEST(PowerManager, BrakeDisabledPolicyNeverBrakes)
{
    PolicyConfig policy = PolicyConfig::noCap();
    policy.powerBrakeEnabled = false;
    Fixture f(policy);
    f.watts = 12000.0;
    f.runSeconds(60);
    EXPECT_EQ(f.manager.powerBrakeEvents(), 0u);
    EXPECT_FALSE(f.low[0]->powerBrakeEngaged());
}

TEST(PowerManager, NoCapPolicyNeverLocksClocks)
{
    Fixture f(PolicyConfig::noCap());
    f.watts = 9900.0;
    f.runSeconds(300);
    EXPECT_EQ(f.manager.capCommands(), 0u);
    EXPECT_DOUBLE_EQ(f.low[0]->appliedClockLockMhz(), 0.0);
}

TEST(PowerManager, SilentFailuresAreReissued)
{
    // Guardrail: verification detects a dropped command and
    // re-issues it until the applied state matches.
    ManagerOptions options;
    options.smbpbiFailureProbability = 0.5;
    Fixture f(PolicyConfig::polca(), options);
    f.watts = 8200.0;
    f.runSeconds(600);
    EXPECT_DOUBLE_EQ(f.low[0]->appliedClockLockMhz(), 1275.0);
    EXPECT_DOUBLE_EQ(f.low[1]->appliedClockLockMhz(), 1275.0);
    EXPECT_GT(f.manager.reissuedCommands(), 0u);
}

TEST(PowerManager, LockedTimeAccounted)
{
    Fixture f;
    f.watts = 8200.0;
    f.runSeconds(100);
    f.watts = 5000.0;
    f.runSeconds(200);
    Tick lp = f.manager.lockedTicks(Priority::Low);
    EXPECT_GT(lp, secondsToTicks(80));
    EXPECT_LT(lp, secondsToTicks(160));
    EXPECT_EQ(f.manager.lockedTicks(Priority::High), 0);
}

TEST(PowerManager, UtilizationStatsTrackTelemetry)
{
    Fixture f;
    f.watts = 6000.0;
    f.runSeconds(20);
    f.watts = 9000.0;
    f.runSeconds(20);
    EXPECT_NEAR(f.manager.maxUtilization(), 0.9, 1e-9);
    EXPECT_GT(f.manager.meanUtilization(), 0.6);
    EXPECT_LT(f.manager.meanUtilization(), 0.9);
}

TEST(PowerManager, VerifyToleratesSubMhzApplicationError)
{
    // Satellite guardrail fix: applied clocks that differ from the
    // command by less than the tolerance must not be re-issued
    // forever.
    class OffByALittle : public FakeTarget
    {
      public:
        void applyClockLock(double mhz) override
        {
            FakeTarget::applyClockLock(mhz + 0.4);
        }
    };

    Simulation sim;
    RowManager telemetry(sim, secondsToTicks(2), false);
    PowerManager manager(sim, telemetry, 10000.0,
                         PolicyConfig::polca(), Rng(1));
    OffByALittle target;
    manager.addTarget(Priority::Low, &target);
    manager.start();
    double watts = 8200.0;  // hold T1 active
    telemetry.addSource([&watts] { return watts; });
    telemetry.start();

    sim.runFor(secondsToTicks(600));
    EXPECT_NEAR(target.appliedClockLockMhz(), 1275.4, 1e-9);
    EXPECT_EQ(manager.reissuedCommands(), 0u);
    EXPECT_EQ(manager.flaggedChannels(), 0u);
}

TEST(PowerManager, WatchdogEntersFailSafeWhenTelemetryGoesDark)
{
    ManagerOptions options;
    options.watchdogTimeout = secondsToTicks(10);
    Fixture f(PolicyConfig::polca(), options);
    f.runSeconds(20);  // healthy: readings every 2 s
    EXPECT_FALSE(f.manager.failSafeActive());

    // Telemetry goes completely dark.
    f.telemetry.setFaultHook(
        [](Tick, double) { return std::optional<double>(); });
    f.runSeconds(30);

    EXPECT_TRUE(f.manager.failSafeActive());
    EXPECT_EQ(f.manager.failSafeEntries(), 1u);
    // Flying blind: every rule escalated to the deepest caps...
    EXPECT_DOUBLE_EQ(f.manager.desiredLockMhz(Priority::Low), 1110.0);
    EXPECT_DOUBLE_EQ(f.manager.desiredLockMhz(Priority::High), 1305.0);
    // ...and the brake pulled, precautionary (not a brake event).
    EXPECT_TRUE(f.manager.brakeEngaged());
    EXPECT_TRUE(f.low[0]->powerBrakeEngaged());
    EXPECT_EQ(f.manager.powerBrakeEvents(), 0u);
}

TEST(PowerManager, FailSafeRecoversOnFreshReading)
{
    ManagerOptions options;
    options.watchdogTimeout = secondsToTicks(10);
    Fixture f(PolicyConfig::polca(), options);
    f.telemetry.setFaultHook(
        [](Tick, double) { return std::optional<double>(); });
    f.runSeconds(40);
    ASSERT_TRUE(f.manager.failSafeActive());

    f.telemetry.setFaultHook({});  // telemetry returns
    f.runSeconds(4);
    EXPECT_FALSE(f.manager.failSafeActive());
    EXPECT_EQ(f.manager.failSafeEntries(), 1u);
    EXPECT_GE(f.manager.failSafeTicks(), secondsToTicks(20));
    EXPECT_LE(f.manager.failSafeTicks(), secondsToTicks(40));

    // At 50 % utilization the escalated rules and the brake release
    // through the normal hysteresis path.
    f.runSeconds(200);
    EXPECT_FALSE(f.manager.brakeEngaged());
    EXPECT_DOUBLE_EQ(f.manager.desiredLockMhz(Priority::High), 0.0);
}

TEST(PowerManager, BrakeCannotEngageWhileBlindWithoutWatchdog)
{
    // The failure mode the watchdog exists for, pinned down: with
    // the watchdog disabled, a telemetry blackout freezes the
    // manager — power may sit far above the brake threshold and the
    // brake never engages.
    ManagerOptions options;
    options.watchdogEnabled = false;
    Fixture f(PolicyConfig::polca(), options);
    f.runSeconds(10);
    f.telemetry.setFaultHook(
        [](Tick, double) { return std::optional<double>(); });
    f.watts = 13000.0;  // 130 % of provisioned, unseen
    f.runSeconds(600);
    EXPECT_FALSE(f.manager.brakeEngaged());
    EXPECT_EQ(f.manager.powerBrakeEvents(), 0u);
    EXPECT_EQ(f.manager.failSafeEntries(), 0u);

    // The first reading after the blackout triggers the brake.
    f.telemetry.setFaultHook({});
    f.runSeconds(10);
    EXPECT_TRUE(f.manager.brakeEngaged());
    EXPECT_EQ(f.manager.powerBrakeEvents(), 1u);
}

TEST(PowerManager, BenignDropoutDoesNotTriggerFailSafe)
{
    // The default 30 s timeout is 15 missed 2 s readings: i.i.d.
    // dropout at the paper's "sometimes fails" rates essentially
    // never produces such a streak.
    Fixture f;
    f.telemetry.setDropoutProbability(0.33, Rng(3));
    f.runSeconds(4000);
    EXPECT_EQ(f.manager.failSafeEntries(), 0u);
    EXPECT_GT(f.telemetry.droppedReadings(), 400u);
}

TEST(PowerManager, RepeatedlyFailingChannelIsFlagged)
{
    ManagerOptions options;
    options.smbpbiFailureProbability = 1.0;  // OOB path is dead
    Fixture f(PolicyConfig::polca(), options);
    f.watts = 8200.0;  // T1 commands a LP lock that never applies
    f.runSeconds(400);

    // Both LP channels hit the consecutive re-issue threshold; HP
    // channels never had a command to verify.
    EXPECT_EQ(f.manager.flaggedChannels(), 2u);
    EXPECT_TRUE(f.manager.channelFlagged(Priority::Low, 0));
    EXPECT_TRUE(f.manager.channelFlagged(Priority::Low, 1));
    EXPECT_FALSE(f.manager.channelFlagged(Priority::High, 0));
    EXPECT_GE(f.manager.reissuedCommands(),
              static_cast<std::uint64_t>(
                  2 * options.channelFlagThreshold));
}

TEST(PowerManager, HealthyChannelIsNeverFlagged)
{
    ManagerOptions options;
    options.smbpbiFailureProbability = 0.3;  // flaky but alive
    Fixture f(PolicyConfig::polca(), options);
    f.watts = 8200.0;
    f.runSeconds(2000);
    // Re-issues happen, but a success resets the consecutive count
    // before the flag threshold with overwhelming probability.
    EXPECT_GT(f.manager.reissuedCommands(), 0u);
    EXPECT_EQ(f.manager.flaggedChannels(), 0u);
}

TEST(PowerManager, BackToBackBlackoutsCountSeparateFailSafeEntries)
{
    ManagerOptions options;
    options.watchdogTimeout = secondsToTicks(10);
    Fixture f(PolicyConfig::polca(), options);
    f.runSeconds(10);

    for (int round = 0; round < 2; ++round) {
        f.telemetry.setFaultHook(
            [](Tick, double) { return std::optional<double>(); });
        f.runSeconds(20);
        ASSERT_TRUE(f.manager.failSafeActive()) << "round " << round;
        ASSERT_EQ(f.manager.mode(), ControlMode::Blind);
        f.telemetry.setFaultHook({});
        f.runSeconds(4);
        ASSERT_FALSE(f.manager.failSafeActive()) << "round " << round;
        ASSERT_EQ(f.manager.mode(), ControlMode::Full);
    }
    EXPECT_EQ(f.manager.failSafeEntries(), 2u);
    // Both spans accounted: each ran from the 10-12 s staleness
    // trigger to the first delivered reading after restoration.
    EXPECT_GE(f.manager.failSafeTicks(), secondsToTicks(16));
    EXPECT_LE(f.manager.failSafeTicks(), secondsToTicks(32));
}

TEST(PowerManager, FailSafeEngagesExactlyAtWatchdogTimeout)
{
    // The watchdog heartbeat shares the 2 s grid with telemetry, so
    // entry lands at staleness == timeout exactly, never later.
    ManagerOptions options;
    options.watchdogTimeout = secondsToTicks(10);
    Fixture f(PolicyConfig::polca(), options);
    f.runSeconds(20);
    f.telemetry.setFaultHook(
        [](Tick, double) { return std::optional<double>(); });
    f.runSeconds(7);  // staleness at the last heartbeat < 10 s
    EXPECT_FALSE(f.manager.failSafeActive());
    f.runSeconds(5);
    EXPECT_TRUE(f.manager.failSafeActive());
    EXPECT_EQ(f.manager.timeToFailSafeMaxTicks(), secondsToTicks(10));
}

TEST(PowerManager, FailSafeTicksAccountedWhileStillActive)
{
    // A run that ends inside fail-safe must still account the open
    // span (the accessor adds the in-progress time).
    ManagerOptions options;
    options.watchdogTimeout = secondsToTicks(10);
    Fixture f(PolicyConfig::polca(), options);
    f.runSeconds(20);
    f.telemetry.setFaultHook(
        [](Tick, double) { return std::optional<double>(); });
    f.runSeconds(40);
    ASSERT_TRUE(f.manager.failSafeActive());
    EXPECT_GE(f.manager.failSafeTicks(), secondsToTicks(28));
    EXPECT_LE(f.manager.failSafeTicks(), secondsToTicks(32));
}

TEST(PowerManager, StaleTelemetryDegradesModeBeforeFailSafe)
{
    // The ladder's middle rung: staleness past staleWarnTimeout but
    // short of the fail-safe timeout reads as StalePartial, and a
    // delivered reading restores Full.
    Fixture f;  // warn 10 s, timeout 30 s
    f.runSeconds(20);
    EXPECT_EQ(f.manager.mode(), ControlMode::Full);
    f.telemetry.setFaultHook(
        [](Tick, double) { return std::optional<double>(); });
    f.runSeconds(15);
    EXPECT_EQ(f.manager.mode(), ControlMode::StalePartial);
    EXPECT_FALSE(f.manager.failSafeActive());
    f.telemetry.setFaultHook({});
    f.runSeconds(4);
    EXPECT_EQ(f.manager.mode(), ControlMode::Full);
    EXPECT_GE(f.manager.staleTicks(), secondsToTicks(4));
    EXPECT_EQ(f.manager.failSafeEntries(), 0u);
}

TEST(PowerManager, ControllerCrashWipesProcessStateNotHardware)
{
    Fixture f;
    f.watts = 8200.0;
    f.runSeconds(50);
    ASSERT_DOUBLE_EQ(f.low[0]->appliedClockLockMhz(), 1275.0);

    f.manager.controllerCrash();
    EXPECT_TRUE(f.manager.crashed());
    EXPECT_EQ(f.manager.mode(), ControlMode::Blind);
    // Process memory (the commanded posture) is gone...
    EXPECT_DOUBLE_EQ(f.manager.desiredLockMhz(Priority::Low), 0.0);
    // ...but applied hardware state survives the crash.
    EXPECT_DOUBLE_EQ(f.low[0]->appliedClockLockMhz(), 1275.0);

    // Nobody restarts it: readings are ignored and the watchdog
    // died with the process, so nothing ever fires.
    f.runSeconds(120);
    EXPECT_TRUE(f.manager.crashed());
    EXPECT_EQ(f.manager.failSafeEntries(), 0u);
    EXPECT_EQ(f.manager.controllerCrashes(), 1u);
}

TEST(PowerManager, WarmRestartResumesLastKnownCaps)
{
    Fixture f;
    f.watts = 8200.0;
    f.runSeconds(50);
    ASSERT_DOUBLE_EQ(f.manager.desiredLockMhz(Priority::Low), 1275.0);

    f.manager.controllerCrash();
    f.runSeconds(30);
    f.manager.controllerRestart(/*coldRestart=*/false);
    EXPECT_FALSE(f.manager.crashed());
    // Rehydrated from the crash-time snapshot and re-asserting it:
    // stale until a fresh reading proves the world out.
    EXPECT_EQ(f.manager.mode(), ControlMode::StalePartial);
    EXPECT_DOUBLE_EQ(f.manager.desiredLockMhz(Priority::Low), 1275.0);
    EXPECT_FALSE(f.manager.failSafeActive());

    f.runSeconds(4);  // first delivered reading completes recovery
    EXPECT_EQ(f.manager.mode(), ControlMode::Full);
    EXPECT_EQ(f.manager.controllerCrashes(), 1u);
    EXPECT_EQ(f.manager.controllerRecoveries(), 1u);
    EXPECT_EQ(f.manager.controllerDownTicks(), secondsToTicks(30));
    // MTTR spans crash -> first reading: the downtime plus at most
    // one telemetry period.
    EXPECT_GE(f.manager.mttrMaxTicks(), secondsToTicks(30));
    EXPECT_LE(f.manager.mttrMaxTicks(), secondsToTicks(34));
    // The whole downtime held a cap with nobody watching.
    EXPECT_GE(f.manager.capsHeldStaleTicks(), secondsToTicks(30));
}

TEST(PowerManager, ColdRestartEntersFailSafeUntilTelemetryReturns)
{
    Fixture f;
    f.watts = 8200.0;
    f.runSeconds(50);
    f.manager.controllerCrash();
    f.runSeconds(10);
    f.manager.controllerRestart(/*coldRestart=*/true);
    // No snapshot: assume the worst until telemetry proves the
    // world out — deepest caps, brake pulled, flying blind.
    EXPECT_TRUE(f.manager.failSafeActive());
    EXPECT_EQ(f.manager.mode(), ControlMode::Blind);
    EXPECT_EQ(f.manager.failSafeEntries(), 1u);
    EXPECT_DOUBLE_EQ(f.manager.desiredLockMhz(Priority::Low), 1110.0);
    EXPECT_DOUBLE_EQ(f.manager.desiredLockMhz(Priority::High), 1305.0);
    EXPECT_TRUE(f.manager.brakeEngaged());

    f.runSeconds(4);  // first delivered reading ends the blindness
    EXPECT_FALSE(f.manager.failSafeActive());
    EXPECT_EQ(f.manager.mode(), ControlMode::Full);
    EXPECT_EQ(f.manager.controllerRecoveries(), 1u);
}

TEST(PowerManager, ServerRestartResetsChannelCircuitBreaker)
{
    // Satellite regression: a crashed server's channel racks up
    // verification re-issues until the breaker flags it.  The flag
    // and streak describe the dead server, not the channel — both
    // must reset when it restarts, and the pool's lock must be
    // re-asserted on the state-wiped server.
    class Crashable : public FakeTarget
    {
      public:
        bool dead = false;
        void applyClockLock(double mhz) override
        {
            if (!dead)
                FakeTarget::applyClockLock(mhz);
        }
        double appliedClockLockMhz() const override
        {
            return dead ? 0.0 : FakeTarget::appliedClockLockMhz();
        }
    };

    Simulation sim;
    RowManager telemetry(sim, secondsToTicks(2), false);
    PowerManager manager(sim, telemetry, 10000.0,
                         PolicyConfig::polca(), Rng(1));
    Crashable target;
    manager.addTarget(Priority::Low, &target);
    manager.start();
    double watts = 8200.0;  // hold T1 active
    telemetry.addSource([&watts] { return watts; });
    telemetry.start();

    sim.runFor(secondsToTicks(50));
    ASSERT_DOUBLE_EQ(target.appliedClockLockMhz(), 1275.0);
    ASSERT_FALSE(manager.channelFlagged(Priority::Low, 0));

    // The server dies: applied state reads as wiped, every re-issue
    // fails, the circuit breaker flags the channel.
    target.dead = true;
    target.applyClockUnlock();
    sim.runFor(secondsToTicks(400));
    ASSERT_TRUE(manager.channelFlagged(Priority::Low, 0));
    EXPECT_GE(manager.reissuedCommands(), 3u);

    // The server reboots; the fault layer notifies the controller.
    target.dead = false;
    manager.serverRestarted(&target);
    EXPECT_FALSE(manager.channelFlagged(Priority::Low, 0));

    // The restart re-issue lands after the OOB latency and then
    // verifies clean: the flag stays clear.
    sim.runFor(secondsToTicks(60));
    EXPECT_DOUBLE_EQ(target.appliedClockLockMhz(), 1275.0);
    EXPECT_FALSE(manager.channelFlagged(Priority::Low, 0));
}

TEST(PowerManagerDeath, AddTargetAfterStartPanics)
{
    Fixture f;
    FakeTarget extra;
    EXPECT_DEATH(f.manager.addTarget(Priority::Low, &extra),
                 "after start");
}

TEST(PowerManagerDeath, DoubleCrashPanics)
{
    Fixture f;
    f.runSeconds(10);
    f.manager.controllerCrash();
    EXPECT_DEATH(f.manager.controllerCrash(), "twice");
}

TEST(PowerManagerDeath, RestartWithoutCrashPanics)
{
    Fixture f;
    f.runSeconds(10);
    EXPECT_DEATH(f.manager.controllerRestart(false),
                 "without a crash");
}
