/** @file Unit tests for the load-balancing dispatcher. */

#include <gtest/gtest.h>

#include <memory>

#include "cluster/dispatcher.hh"
#include "llm/model_spec.hh"

using namespace polca::cluster;
using namespace polca::workload;
using namespace polca::sim;

namespace {

struct Fixture
{
    Fixture(int lowServers, int highServers)
        : dispatcher(sim, Rng(3))
    {
        auto addServers = [&](int n, Priority p) {
            for (int i = 0; i < n; ++i) {
                servers.push_back(std::make_unique<InferenceServer>(
                    sim, polca::power::ServerSpec::dgxA100_80gb(),
                    catalog.byName("BLOOM-176B"), p,
                    static_cast<int>(servers.size())));
                dispatcher.addServer(servers.back().get());
            }
        };
        addServers(lowServers, Priority::Low);
        addServers(highServers, Priority::High);
    }

    Trace
    burst(int n, Priority priority, Tick start = 0,
          int output = 64)
    {
        Trace trace;
        for (int i = 0; i < n; ++i) {
            Request r;
            r.arrival = start + i;
            r.id = static_cast<std::uint64_t>(i);
            r.priority = priority;
            r.inputTokens = 1024;
            r.outputTokens = output;
            trace.add(r);
        }
        return trace;
    }

    Simulation sim;
    polca::llm::ModelCatalog catalog;
    Dispatcher dispatcher;
    std::vector<std::unique_ptr<InferenceServer>> servers;
};

} // namespace

TEST(Dispatcher, RoutesToMatchingPriorityPool)
{
    Fixture f(2, 2);
    Trace lows = f.burst(2, Priority::Low);
    f.dispatcher.injectTrace(lows);
    f.sim.runFor(secondsToTicks(1));

    // Both low-priority servers busy; high pool untouched.
    EXPECT_FALSE(f.servers[0]->idleNow());
    EXPECT_FALSE(f.servers[1]->idleNow());
    EXPECT_TRUE(f.servers[2]->idleNow());
    EXPECT_TRUE(f.servers[3]->idleNow());
}

TEST(Dispatcher, CountsArrivalsAndCompletions)
{
    Fixture f(2, 0);
    Trace trace = f.burst(4, Priority::Low);
    f.dispatcher.injectTrace(trace);
    f.sim.runFor(secondsToTicks(60));
    EXPECT_EQ(f.dispatcher.arrivals(Priority::Low), 4u);
    EXPECT_EQ(f.dispatcher.completions(Priority::Low), 4u);
    EXPECT_EQ(f.dispatcher.latencySeconds(Priority::Low).count(), 4u);
}

TEST(Dispatcher, OverflowGoesToCentralQueueThenDrains)
{
    Fixture f(1, 0);
    // One server, buffer one: 5 requests -> 3 in the central queue.
    Trace trace = f.burst(5, Priority::Low);
    f.dispatcher.injectTrace(trace);
    f.sim.runFor(secondsToTicks(1));
    EXPECT_EQ(f.dispatcher.centralQueueDepth(Priority::Low), 3u);
    f.sim.runFor(secondsToTicks(300));
    EXPECT_EQ(f.dispatcher.centralQueueDepth(Priority::Low), 0u);
    EXPECT_EQ(f.dispatcher.completions(Priority::Low), 5u);
}

TEST(Dispatcher, QueueingInflatesLatencyOfLaterRequests)
{
    Fixture f(1, 0);
    Trace trace = f.burst(3, Priority::Low);
    f.dispatcher.injectTrace(trace);
    f.sim.runFor(secondsToTicks(300));
    const auto &sampler = f.dispatcher.latencySeconds(Priority::Low);
    ASSERT_EQ(sampler.count(), 3u);
    EXPECT_GT(sampler.max(), 2.0 * sampler.min());
}

TEST(Dispatcher, SpreadsLoadAcrossIdleServers)
{
    Fixture f(8, 0);
    Trace trace = f.burst(8, Priority::Low);
    f.dispatcher.injectTrace(trace);
    f.sim.runFor(secondsToTicks(1));
    for (const auto &server : f.servers)
        EXPECT_FALSE(server->idleNow());
}

TEST(Dispatcher, ThroughputReflectsCompletions)
{
    Fixture f(2, 0);
    Trace trace = f.burst(4, Priority::Low);
    f.dispatcher.injectTrace(trace);
    f.sim.runFor(secondsToTicks(100));
    EXPECT_NEAR(f.dispatcher.throughput(Priority::Low), 4.0 / 100.0,
                1e-6);
}

TEST(Dispatcher, PerWorkloadLatencyTracked)
{
    Fixture f(2, 0);
    Trace trace;
    Request r;
    r.arrival = 0;
    r.priority = Priority::Low;
    r.workloadIndex = 2;
    r.inputTokens = 1024;
    r.outputTokens = 64;
    trace.add(r);
    f.dispatcher.injectTrace(trace);
    f.sim.runFor(secondsToTicks(60));
    ASSERT_GE(f.dispatcher.latencyByWorkload().size(), 3u);
    EXPECT_EQ(f.dispatcher.latencyByWorkload()[2].count(), 1u);
}

TEST(DispatcherDeath, NoPoolServersFatal)
{
    Fixture f(1, 0);
    Trace trace = f.burst(1, Priority::High);
    f.dispatcher.injectTrace(trace);
    EXPECT_DEATH(f.sim.runFor(secondsToTicks(1)), "priority pool");
}

TEST(Dispatcher, EmptyTraceIsNoop)
{
    Fixture f(1, 1);
    Trace empty;
    f.dispatcher.injectTrace(empty);
    f.sim.runFor(secondsToTicks(1));
    EXPECT_EQ(f.dispatcher.arrivals(Priority::Low), 0u);
}
