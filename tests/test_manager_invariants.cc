/**
 * @file
 * Randomized invariant tests: drive the power manager with random
 * power walks and check safety/consistency properties that must hold
 * for ANY input, plus a Little's-law consistency check on the
 * dispatcher's queueing behaviour.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/power_manager.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

using namespace polca::core;
using namespace polca::telemetry;
using namespace polca::sim;
using polca::workload::Priority;

namespace {

class RecordingTarget : public ClockControllable
{
  public:
    void applyClockLock(double mhz) override
    {
        lockMhz_ = mhz;
        ++applies_;
    }
    void applyClockUnlock() override
    {
        lockMhz_ = 0.0;
        ++applies_;
    }
    void applyPowerBrake(bool engaged) override { brake_ = engaged; }
    double appliedClockLockMhz() const override { return lockMhz_; }
    bool powerBrakeEngaged() const override { return brake_; }

    int applies() const { return applies_; }

  private:
    double lockMhz_ = 0.0;
    bool brake_ = false;
    int applies_ = 0;
};

struct Harness
{
    explicit Harness(std::uint64_t seed,
                     PolicyConfig policy = PolicyConfig::polca(),
                     ManagerOptions options = ManagerOptions())
        : telemetry(sim, secondsToTicks(2), false),
          manager(sim, telemetry, 10000.0, std::move(policy),
                  Rng(seed), options),
          walkRng(seed ^ 0xF00D)
    {
        telemetry.addSource([this] { return watts; });
        for (int i = 0; i < 3; ++i) {
            low.push_back(std::make_unique<RecordingTarget>());
            high.push_back(std::make_unique<RecordingTarget>());
            manager.addTarget(Priority::Low, low.back().get());
            manager.addTarget(Priority::High, high.back().get());
        }
        manager.start();
        telemetry.start();
    }

    /** Random power walk: bounded steps, occasional spikes. */
    void
    walk(int readings)
    {
        for (int i = 0; i < readings; ++i) {
            watts += walkRng.normal(0.0, 250.0);
            if (walkRng.bernoulli(0.02))
                watts += walkRng.uniform(500.0, 2500.0);  // spike
            watts = std::clamp(watts, 2000.0, 11500.0);
            sim.runFor(secondsToTicks(2));
        }
    }

    Simulation sim;
    RowManager telemetry;
    PowerManager manager;
    std::vector<std::unique_ptr<RecordingTarget>> low;
    std::vector<std::unique_ptr<RecordingTarget>> high;
    Rng walkRng;
    double watts = 5000.0;
};

} // namespace

/** Sweep several seeds: invariants hold for any power trajectory. */
class RandomWalk : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomWalk, DesiredLockAlwaysAPolicyFrequencyOrZero)
{
    Harness h(GetParam());
    const PolicyConfig &policy = h.manager.policy();
    for (int round = 0; round < 60; ++round) {
        h.walk(10);
        for (Priority p : {Priority::Low, Priority::High}) {
            double desired = h.manager.desiredLockMhz(p);
            if (desired == 0.0)
                continue;
            bool known = false;
            for (const auto &rule : policy.rules)
                known |= rule.target == p && rule.lockMhz == desired;
            EXPECT_TRUE(known)
                << "desired lock " << desired
                << " is not any policy frequency";
        }
    }
}

TEST_P(RandomWalk, AppliedStateConvergesToDesired)
{
    Harness h(GetParam());
    h.walk(200);
    // Freeze the power level; after the OOB pipeline drains
    // (latency + verification slack), applied == desired.
    h.watts = 5000.0;
    h.sim.runFor(secondsToTicks(200));
    for (auto *pool : {&h.low, &h.high}) {
        Priority p = pool == &h.low ? Priority::Low : Priority::High;
        for (auto &target : *pool) {
            EXPECT_DOUBLE_EQ(target->appliedClockLockMhz(),
                             h.manager.desiredLockMhz(p));
        }
    }
}

TEST_P(RandomWalk, QuietWalkIssuesNoCommands)
{
    // A walk that never crosses T1 must never lock anything.
    Harness h(GetParam());
    for (int i = 0; i < 300; ++i) {
        h.watts = 4000.0 + h.walkRng.uniform(0.0, 3500.0);  // < 75 %
        h.sim.runFor(secondsToTicks(2));
    }
    EXPECT_EQ(h.manager.capCommands(), 0u);
    EXPECT_EQ(h.manager.powerBrakeEvents(), 0u);
    EXPECT_DOUBLE_EQ(h.manager.desiredLockMhz(Priority::Low), 0.0);
}

TEST_P(RandomWalk, BrakeStateConsistentWithTargets)
{
    Harness h(GetParam());
    h.walk(400);
    // Settle: if the manager believes the brake is off and no brake
    // command is in flight, no target may remain braked.
    h.watts = 3000.0;
    h.sim.runFor(secondsToTicks(120));
    EXPECT_FALSE(h.manager.brakeEngaged());
    for (auto *pool : {&h.low, &h.high}) {
        for (auto &target : *pool)
            EXPECT_FALSE(target->powerBrakeEngaged());
    }
}

TEST_P(RandomWalk, UtilizationStatsAreSane)
{
    Harness h(GetParam());
    h.walk(300);
    EXPECT_GT(h.manager.meanUtilization(), 0.0);
    EXPECT_GE(h.manager.maxUtilization(), h.manager.meanUtilization());
    EXPECT_LE(h.manager.maxUtilization(), 1.2);
}

TEST_P(RandomWalk, LockedTimeNeverExceedsWallTime)
{
    Harness h(GetParam());
    h.walk(300);
    Tick wall = h.sim.now();
    EXPECT_LE(h.manager.lockedTicks(Priority::Low), wall);
    EXPECT_LE(h.manager.lockedTicks(Priority::High), wall);
    // Escalation order: HP only locks while LP locked at least as
    // long cumulatively.
    EXPECT_LE(h.manager.lockedTicks(Priority::High),
              h.manager.lockedTicks(Priority::Low));
}

TEST_P(RandomWalk, FailureInjectionStillConverges)
{
    ManagerOptions options;
    options.smbpbiFailureProbability = 0.4;
    Harness h(GetParam(), PolicyConfig::polca(), options);
    h.watts = 8300.0;  // hold above T1
    h.sim.runFor(secondsToTicks(900));
    for (auto &target : h.low) {
        EXPECT_DOUBLE_EQ(target->appliedClockLockMhz(),
                         h.manager.desiredLockMhz(Priority::Low));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWalk,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));
