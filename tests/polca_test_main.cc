/**
 * @file
 * Shared gtest main: silences warn()/inform() chatter so test output
 * stays readable.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    polca::sim::setQuiet(true);
    return RUN_ALL_TESTS();
}
