/**
 * @file
 * Scenario-file parser tests: the TOML subset (sections, dotted
 * headers, array-of-tables, lists, ranges, comments, quoting),
 * line-precise duplicate/conflict errors, path helpers, and the
 * nearest-key suggestion machinery.
 */

#include <gtest/gtest.h>

#include <string>

#include "config/config_node.hh"

namespace {

using namespace polca::config;

ConfigNode
parseOk(const std::string &text)
{
    Diagnostics diag;
    ConfigNode root = parseConfigString(text, "test.toml", diag);
    EXPECT_TRUE(diag.ok()) << diag.str();
    return root;
}

/** First diagnostic produced by parsing @p text. */
std::string
parseError(const std::string &text)
{
    Diagnostics diag;
    parseConfigString(text, "test.toml", diag);
    EXPECT_FALSE(diag.ok()) << "expected a parse error for: " << text;
    return diag.ok() ? std::string() : diag.errors().front();
}

TEST(ConfigNode, ScalarsSectionsComments)
{
    ConfigNode root = parseOk("# header comment\n"
                              "[row]\n"
                              "base_servers = 40  # trailing\n"
                              "\n"
                              "added_server_fraction = 30%\n");
    const ConfigNode *servers = root.findPath("row.base_servers");
    ASSERT_NE(servers, nullptr);
    EXPECT_EQ(servers->kind, ConfigNode::Kind::Scalar);
    EXPECT_EQ(servers->raw, "40");
    EXPECT_EQ(servers->loc.line, 3);
    EXPECT_EQ(servers->origin, "test.toml:3");
    const ConfigNode *added =
        root.findPath("row.added_server_fraction");
    ASSERT_NE(added, nullptr);
    EXPECT_EQ(added->raw, "30%");
    EXPECT_EQ(added->loc.line, 5);
}

TEST(ConfigNode, DottedHeadersNest)
{
    ConfigNode root = parseOk("[row.server.gpu]\n"
                              "tdp_watts = 400\n");
    const ConfigNode *gpu = root.findPath("row.server.gpu");
    ASSERT_NE(gpu, nullptr);
    EXPECT_EQ(gpu->kind, ConfigNode::Kind::Section);
    const ConfigNode *tdp =
        root.findPath("row.server.gpu.tdp_watts");
    ASSERT_NE(tdp, nullptr);
    EXPECT_EQ(tdp->raw, "400");
}

TEST(ConfigNode, QuotedKeysStayLiteral)
{
    // Dots inside a quoted key do NOT nest — exactly what sweep axes
    // need.
    ConfigNode root = parseOk("[sweep]\n"
                              "\"policy.preset\" = [\"polca\"]\n");
    const ConfigNode *sweep = root.find("sweep");
    ASSERT_NE(sweep, nullptr);
    const ConfigNode *axis = sweep->find("policy.preset");
    ASSERT_NE(axis, nullptr);
    EXPECT_EQ(axis->kind, ConfigNode::Kind::List);
    ASSERT_EQ(axis->items.size(), 1u);
    EXPECT_EQ(axis->items[0].raw, "\"polca\"");
}

TEST(ConfigNode, QuotedStringKeepsRawAndHashes)
{
    ConfigNode root = parseOk("[model]\n"
                              "name = \"a # not-a-comment\"\n");
    const ConfigNode *name = root.findPath("model.name");
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(name->raw, "\"a # not-a-comment\"");
}

TEST(ConfigNode, ListsAndRanges)
{
    ConfigNode root = parseOk("[sweep]\n"
                              "a = [1, 2, 3]\n"
                              "b = [4..7]\n"
                              "c = [1, 5..7]\n"
                              "d = []\n");
    const ConfigNode *sweep = root.find("sweep");
    ASSERT_NE(sweep, nullptr);
    ASSERT_EQ(sweep->find("a")->items.size(), 3u);
    const ConfigNode *b = sweep->find("b");
    ASSERT_EQ(b->items.size(), 4u);
    EXPECT_EQ(b->items.front().raw, "4");
    EXPECT_EQ(b->items.back().raw, "7");
    const ConfigNode *c = sweep->find("c");
    ASSERT_EQ(c->items.size(), 4u);
    EXPECT_EQ(c->items[0].raw, "1");
    EXPECT_EQ(c->items[1].raw, "5");
    EXPECT_EQ(c->items[3].raw, "7");
    EXPECT_TRUE(sweep->find("d")->items.empty());
}

TEST(ConfigNode, ArrayOfTables)
{
    ConfigNode root = parseOk("[[policy.rules]]\n"
                              "name = \"t1\"\n"
                              "[[policy.rules]]\n"
                              "name = \"t2\"\n");
    const ConfigNode *rules = root.findPath("policy.rules");
    ASSERT_NE(rules, nullptr);
    EXPECT_EQ(rules->kind, ConfigNode::Kind::List);
    ASSERT_EQ(rules->items.size(), 2u);
    EXPECT_EQ(rules->items[0].kind, ConfigNode::Kind::Section);
    EXPECT_EQ(rules->items[0].find("name")->raw, "\"t1\"");
    EXPECT_EQ(rules->items[1].find("name")->raw, "\"t2\"");
}

TEST(ConfigNode, DuplicateKeyReportsBothLines)
{
    std::string err = parseError("[row]\n"
                                 "base_servers = 40\n"
                                 "base_servers = 41\n");
    EXPECT_NE(err.find("test.toml:3"), std::string::npos) << err;
    EXPECT_NE(err.find("duplicate key 'base_servers'"),
              std::string::npos) << err;
    EXPECT_NE(err.find("first defined at test.toml:2"),
              std::string::npos) << err;
}

TEST(ConfigNode, DuplicateSectionError)
{
    std::string err = parseError("[row]\n"
                                 "base_servers = 40\n"
                                 "[row]\n");
    EXPECT_NE(err.find("test.toml:3"), std::string::npos) << err;
    EXPECT_NE(err.find("duplicate section [row]"), std::string::npos)
        << err;
}

TEST(ConfigNode, SectionValueConflict)
{
    std::string err = parseError("x = 1\n"
                                 "[x]\n"
                                 "y = 2\n");
    EXPECT_NE(err.find("already defined as a value at test.toml:1"),
              std::string::npos) << err;
}

TEST(ConfigNode, MalformedLineErrors)
{
    EXPECT_NE(parseError("just some words\n")
                  .find("expected 'key = value'"),
              std::string::npos);
    EXPECT_NE(parseError("[row\n").find("malformed section header"),
              std::string::npos);
    EXPECT_NE(parseError("x = [1, 2\n").find("unterminated list"),
              std::string::npos);
    EXPECT_NE(parseError("x = \"abc\n").find("unterminated"),
              std::string::npos);
    EXPECT_NE(parseError("x = \n").find("missing value"),
              std::string::npos);
    EXPECT_NE(parseError("x = [9..2]\n").find("empty or too large"),
              std::string::npos);
    EXPECT_NE(parseError("x = [a..b]\n").find("bad range"),
              std::string::npos);
}

TEST(ConfigNode, ErrorsCarryExactLines)
{
    Diagnostics diag;
    parseConfigString("[row]\n"
                      "ok = 1\n"
                      "\n"
                      "# comment\n"
                      "broken line\n",
                      "lines.toml", diag);
    ASSERT_EQ(diag.errors().size(), 1u);
    EXPECT_NE(diag.errors()[0].find("lines.toml:5"),
              std::string::npos) << diag.str();
}

TEST(ConfigNode, SetPathCreatesIntermediates)
{
    ConfigNode root;
    Diagnostics diag;
    EXPECT_TRUE(root.setPath("row.server.gpu.tdp_watts",
                             makeScalar("400", "cli"), diag));
    ASSERT_TRUE(diag.ok()) << diag.str();
    const ConfigNode *node =
        root.findPath("row.server.gpu.tdp_watts");
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->raw, "400");
    EXPECT_EQ(node->origin, "cli");
}

TEST(ConfigNode, SetPathRejectsConflicts)
{
    ConfigNode root = parseOk("[row]\n"
                              "base_servers = 40\n");
    Diagnostics diag;
    // A scalar cannot become an intermediate section...
    EXPECT_FALSE(root.setPath("row.base_servers.x",
                              makeScalar("1", "cli"), diag));
    EXPECT_FALSE(diag.ok());
    // ...and a section cannot be overwritten by a scalar.
    Diagnostics diag2;
    EXPECT_FALSE(root.setPath("row", makeScalar("1", "cli"), diag2));
    EXPECT_NE(diag2.errors().front().find("names a section"),
              std::string::npos);
}

TEST(ConfigNode, FindPathMisses)
{
    ConfigNode root = parseOk("[row]\n"
                              "base_servers = 40\n");
    EXPECT_EQ(root.findPath("row.nope"), nullptr);
    EXPECT_EQ(root.findPath("row.base_servers.deeper"), nullptr);
    EXPECT_EQ(root.findPath("nope.at.all"), nullptr);
}

TEST(ConfigNode, NearestKeySuggestions)
{
    std::vector<std::string> keys = {"base_servers",
                                     "added_server_fraction",
                                     "telemetry_interval"};
    EXPECT_EQ(nearestKey("based_servers", keys), "base_servers");
    EXPECT_EQ(nearestKey("base_servers", keys), "base_servers");
    EXPECT_EQ(nearestKey("zzzzz", keys), "");
}

TEST(ConfigNode, SourceLocFormats)
{
    EXPECT_EQ((SourceLoc{}).str(), "<unknown>");
    EXPECT_EQ((SourceLoc{"a.toml", 7}).str(), "a.toml:7");
    // Synthetic sources (--set overrides) have a file but no line.
    EXPECT_EQ((SourceLoc{"--set a.b=c", 0}).str(), "--set a.b=c");
}

} // namespace
