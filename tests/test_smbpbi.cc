/** @file Unit tests for the SMBPBI OOB control path simulation. */

#include <gtest/gtest.h>

#include "power/server_model.hh"
#include "sim/simulation.hh"
#include "telemetry/smbpbi.hh"

using namespace polca::telemetry;
using namespace polca::power;
using namespace polca::sim;

namespace {

/** Bare adapter exposing a ServerModel as a control target. */
class ServerTarget : public ClockControllable
{
  public:
    explicit ServerTarget(ServerModel &server) : server_(server) {}

    void applyClockLock(double mhz) override
    {
        server_.lockClockAll(mhz);
    }
    void applyClockUnlock() override { server_.unlockClockAll(); }
    void applyPowerBrake(bool engaged) override
    {
        server_.setPowerBrakeAll(engaged);
    }
    double
    appliedClockLockMhz() const override
    {
        return server_.gpu(0).clockLocked()
            ? server_.gpu(0).lockedClockMhz() : 0.0;
    }
    bool
    powerBrakeEngaged() const override
    {
        return server_.gpu(0).powerBrake();
    }

  private:
    ServerModel &server_;
};

struct Fixture
{
    Simulation sim;
    ServerModel server{ServerSpec::dgxA100_80gb()};
    ServerTarget target{server};
};

} // namespace

TEST(Smbpbi, CapTakesEffectAfterLatencyNotBefore)
{
    Fixture f;
    SmbpbiController smbpbi(f.sim, f.target, Rng(1));
    smbpbi.requestClockLock(1110.0);
    EXPECT_TRUE(smbpbi.commandPending());

    f.sim.runFor(secondsToTicks(39));
    EXPECT_DOUBLE_EQ(f.target.appliedClockLockMhz(), 0.0);

    f.sim.runFor(secondsToTicks(2));
    EXPECT_DOUBLE_EQ(f.target.appliedClockLockMhz(), 1110.0);
    EXPECT_FALSE(smbpbi.commandPending());
}

TEST(Smbpbi, BrakeIsFasterThanCap)
{
    Fixture f;
    SmbpbiController smbpbi(f.sim, f.target, Rng(1));
    smbpbi.requestPowerBrake(true);
    f.sim.runFor(secondsToTicks(6));
    EXPECT_TRUE(f.target.powerBrakeEngaged());
}

TEST(Smbpbi, BrakeRelease)
{
    Fixture f;
    SmbpbiController smbpbi(f.sim, f.target, Rng(1));
    smbpbi.requestPowerBrake(true);
    f.sim.runFor(secondsToTicks(6));
    smbpbi.requestPowerBrake(false);
    f.sim.runFor(secondsToTicks(6));
    EXPECT_FALSE(f.target.powerBrakeEngaged());
    EXPECT_EQ(smbpbi.brakesIssued(), 2u);
}

TEST(Smbpbi, NewerCommandSupersedesPending)
{
    Fixture f;
    SmbpbiController smbpbi(f.sim, f.target, Rng(1));
    smbpbi.requestClockLock(1110.0);
    f.sim.runFor(secondsToTicks(10));
    smbpbi.requestClockLock(1275.0);
    f.sim.runFor(secondsToTicks(41));
    // Only the newer command lands; 1110 never applies.
    EXPECT_DOUBLE_EQ(f.target.appliedClockLockMhz(), 1275.0);
    EXPECT_EQ(smbpbi.commandsIssued(), 2u);
}

TEST(Smbpbi, UnlockCommand)
{
    Fixture f;
    SmbpbiController smbpbi(f.sim, f.target, Rng(1));
    smbpbi.requestClockLock(1110.0);
    f.sim.runFor(secondsToTicks(41));
    smbpbi.requestClockUnlock();
    f.sim.runFor(secondsToTicks(41));
    EXPECT_DOUBLE_EQ(f.target.appliedClockLockMhz(), 0.0);
}

TEST(Smbpbi, SilentFailuresDropCommands)
{
    // Section 3.3: OOB interfaces "may sometimes fail without
    // signaling completion or errors".
    Fixture f;
    SmbpbiController::Options options;
    options.silentFailureProbability = 1.0;  // always fail
    SmbpbiController smbpbi(f.sim, f.target, Rng(1), options);
    smbpbi.requestClockLock(1110.0);
    f.sim.runFor(secondsToTicks(60));
    EXPECT_DOUBLE_EQ(f.target.appliedClockLockMhz(), 0.0);
    EXPECT_EQ(smbpbi.commandsDropped(), 1u);
}

TEST(Smbpbi, FailureRateRoughlyMatchesProbability)
{
    Fixture f;
    SmbpbiController::Options options;
    options.silentFailureProbability = 0.3;
    options.commandLatency = secondsToTicks(1);
    SmbpbiController smbpbi(f.sim, f.target, Rng(42), options);
    for (int i = 0; i < 500; ++i) {
        smbpbi.requestClockLock(1110.0);
        f.sim.runFor(secondsToTicks(2));
    }
    double rate = static_cast<double>(smbpbi.commandsDropped()) /
        static_cast<double>(smbpbi.commandsIssued());
    EXPECT_NEAR(rate, 0.3, 0.06);
}

TEST(Smbpbi, BrakeNeverDrops)
{
    Fixture f;
    SmbpbiController::Options options;
    options.silentFailureProbability = 1.0;
    SmbpbiController smbpbi(f.sim, f.target, Rng(1), options);
    smbpbi.requestPowerBrake(true);
    f.sim.runFor(secondsToTicks(6));
    EXPECT_TRUE(f.target.powerBrakeEngaged());
}
