#include "telemetry/monitors.hh"

namespace polca::telemetry {

DcgmMonitor::DcgmMonitor(sim::Simulation &sim,
                         const power::ServerModel &server, sim::Rng rng,
                         Options options)
    : sim_(sim), server_(server), rng_(rng), options_(options)
{
}

void
DcgmMonitor::start()
{
    if (task_)
        return;
    task_ = sim_.every(options_.interval,
                       [this](sim::Tick now) { sample(now); });
}

void
DcgmMonitor::stop()
{
    task_.reset();
}

void
DcgmMonitor::sample(sim::Tick now)
{
    double reading = server_.gpuPowerWatts() +
        rng_.normal(0.0, options_.noiseStddevWatts);
    latest_ = reading;
    gpuPower_.add(now, reading);
}

IpmiMonitor::IpmiMonitor(sim::Simulation &sim,
                         const power::ServerModel &server, sim::Rng rng,
                         Options options)
    : sim_(sim), server_(server), rng_(rng), options_(options)
{
}

void
IpmiMonitor::start()
{
    if (task_)
        return;
    task_ = sim_.every(options_.interval,
                       [this](sim::Tick now) { sample(now); });
}

void
IpmiMonitor::stop()
{
    task_.reset();
}

void
IpmiMonitor::sample(sim::Tick now)
{
    double reading = server_.powerWatts() +
        rng_.normal(0.0, options_.noiseStddevWatts);
    if (dcgm_ && dcgm_->running())
        reading += dcgm_->overheadWatts();
    latest_ = reading;
    power_.add(now, reading);
}

} // namespace polca::telemetry
