#include "telemetry/domain_manager.hh"

#include "core/contracts.hh"
#include "sim/logging.hh"

namespace polca::telemetry {

DomainManager::DomainManager(sim::Simulation &sim, sim::Tick interval,
                             bool recordSeries)
    : sim_(sim), interval_(interval), recordSeries_(recordSeries)
{
    if (interval_ <= 0)
        sim::fatal("DomainManager: non-positive interval");
}

void
DomainManager::addSource(PowerSource source)
{
    POLCA_CHECK(static_cast<bool>(source), "empty power source");
    sources_.push_back(std::move(source));
}

void
DomainManager::addListener(Listener listener)
{
    POLCA_CHECK(static_cast<bool>(listener), "empty listener");
    listeners_.push_back(std::move(listener));
}

void
DomainManager::reserveSeries(sim::Tick horizon)
{
    if (!recordSeries_ || horizon <= 0)
        return;
    series_.reserve(
        static_cast<std::size_t>(horizon / interval_) + 2);
}

void
DomainManager::start()
{
    if (task_)
        return;
    task_ = sim_.every(interval_,
                       [this](sim::Tick now) { sample(now); });
}

void
DomainManager::stop()
{
    task_.reset();
}

double
DomainManager::readNow()
{
    double total = 0.0;
    for (const auto &source : sources_)
        total += source();
    return total;
}

void
DomainManager::setDropoutProbability(double probability, sim::Rng rng)
{
    if (probability < 0.0 || probability >= 1.0)
        sim::fatal("DomainManager: dropout probability ", probability,
                   " outside [0,1)");
    dropoutProbability_ = probability;
    dropoutRng_ = rng;
}

void
DomainManager::attachObservability(obs::Observability *obs)
{
    if (!obs) {
        trace_ = nullptr;
        deliveredStat_ = droppedStat_ = corruptedStat_ = nullptr;
        rowWattsStat_ = nullptr;
        return;
    }
    trace_ = &obs->trace;
    deliveredStat_ = &obs->metrics.counter(
        "telemetry.readings_delivered",
        "row power readings delivered to listeners");
    droppedStat_ = &obs->metrics.counter(
        "telemetry.readings_dropped",
        "row power readings lost (dropout or injected faults)");
    corruptedStat_ = &obs->metrics.counter(
        "telemetry.readings_corrupted",
        "readings whose value was altered by the fault hook");
    obs->metrics
        .gauge("telemetry.latest_row_watts", "last delivered reading")
        .setSource([this] { return latest_; });
    // 1 W .. 10 MW at 1 % relative error spans any modeled row.
    rowWattsStat_ = &obs->metrics.logHistogram(
        "telemetry.row_watts", 1.0, 1e7, 0.01,
        "distribution of delivered row power readings (watts)");
}

void
DomainManager::attachDomainObservability(obs::Observability *obs,
                                         const std::string &path)
{
    if (!obs)
        return;
    obs->metrics
        .gauge(path + ".power",
               "latest rolled-up power reading at this domain (watts)")
        .setSource([this] { return latest_; });
}

DomainManager::State
DomainManager::saveState() const
{
    State state;
    state.latest = latest_;
    state.latestTime = latestTime_;
    state.dropped = dropped_;
    state.dropoutRng = dropoutRng_;
    state.series = series_;
    if (task_)
        state.task = task_->saveState();
    return state;
}

void
DomainManager::restoreState(const State &state)
{
    latest_ = state.latest;
    latestTime_ = state.latestTime;
    dropped_ = state.dropped;
    dropoutRng_ = state.dropoutRng;
    series_ = state.series;
    if (state.task.running && !task_) {
        sim::panic("DomainManager: restoring a running sampler on a "
                   "stopped manager (start() it first)");
    }
    if (task_)
        task_->restoreState(state.task);
}

void
DomainManager::sample(sim::Tick now)
{
    if (dropoutProbability_ > 0.0 &&
        dropoutRng_.bernoulli(dropoutProbability_)) {
        ++dropped_;
        if (droppedStat_)
            ++*droppedStat_;
        if (trace_) {
            trace_->instant(obs::TraceCategory::Telemetry,
                            "reading_dropped", now);
        }
        return;  // silent failure: no reading, no notification
    }
    double total = readNow();
    if (faultHook_) {
        std::optional<double> faulted = faultHook_(now, total);
        if (!faulted.has_value()) {
            ++dropped_;
            if (droppedStat_)
                ++*droppedStat_;
            if (trace_) {
                trace_->instant(obs::TraceCategory::Telemetry,
                                "reading_dropped", now);
            }
            return;  // injected loss: indistinguishable from dropout
        }
        if (corruptedStat_ && *faulted != total)
            ++*corruptedStat_;
        total = *faulted;
    }
    latest_ = total;
    latestTime_ = now;
    if (deliveredStat_)
        ++*deliveredStat_;
    if (rowWattsStat_)
        rowWattsStat_->add(total);
    if (trace_) {
        trace_->instant(obs::TraceCategory::Telemetry, "row_reading",
                        now, 0, total);
    }
    if (recordSeries_)
        series_.add(now, total);
    for (const auto &listener : listeners_)
        listener(now, total);
}

} // namespace polca::telemetry
