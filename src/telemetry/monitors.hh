/**
 * @file
 * In-band and out-of-band power monitors (Section 3.1).
 *
 * DcgmMonitor samples GPU power at 100 ms like NVIDIA DCGM; running
 * it adds a small measurement overhead to server power, which the
 * paper quantifies at 5-10 W.  IpmiMonitor samples whole-server power
 * at a 1-5 s OOB cadence and sees that overhead.
 */

#pragma once

#include <functional>
#include <memory>

#include "power/server_model.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/timeseries.hh"

namespace polca::telemetry {

/**
 * DCGM-style in-band GPU power sampler bound to one server.
 * Readings carry small gaussian measurement noise.
 */
class DcgmMonitor
{
  public:
    struct Options
    {
        sim::Tick interval;
        double noiseStddevWatts;
        double overheadWatts;

        Options()
            : interval(sim::msToTicks(100)), noiseStddevWatts(2.0),
              overheadWatts(7.5)
        {}
    };

    DcgmMonitor(sim::Simulation &sim, const power::ServerModel &server,
                sim::Rng rng, Options options = Options());

    /** Begin periodic sampling. */
    void start();

    /** Stop sampling (series retained). */
    void stop();

    bool running() const { return task_ != nullptr; }

    /** Power/perf overhead DCGM adds to the server (Section 3.4). */
    double overheadWatts() const { return options_.overheadWatts; }

    /** Per-sample sum of GPU power across the server. */
    const sim::TimeSeries &gpuPowerSeries() const { return gpuPower_; }

    /** Latest aggregate GPU power reading (0 before first sample). */
    double latestGpuPower() const { return latest_; }

  private:
    void sample(sim::Tick now);

    sim::Simulation &sim_;
    const power::ServerModel &server_;
    sim::Rng rng_;
    Options options_;
    sim::TimeSeries gpuPower_;
    double latest_ = 0.0;
    std::unique_ptr<sim::Simulation::PeriodicTask> task_;
};

/**
 * IPMI-style OOB server power sampler.  Readings include the DCGM
 * measurement overhead when a DcgmMonitor is attached and running.
 */
class IpmiMonitor
{
  public:
    struct Options
    {
        sim::Tick interval;
        double noiseStddevWatts;

        Options()
            : interval(sim::secondsToTicks(3)), noiseStddevWatts(10.0)
        {}
    };

    IpmiMonitor(sim::Simulation &sim, const power::ServerModel &server,
                sim::Rng rng, Options options = Options());

    /** Include @p dcgm overhead in readings while it runs. */
    void attachDcgm(const DcgmMonitor *dcgm) { dcgm_ = dcgm; }

    void start();
    void stop();
    bool running() const { return task_ != nullptr; }

    const sim::TimeSeries &serverPowerSeries() const { return power_; }
    double latestServerPower() const { return latest_; }

  private:
    void sample(sim::Tick now);

    sim::Simulation &sim_;
    const power::ServerModel &server_;
    sim::Rng rng_;
    Options options_;
    const DcgmMonitor *dcgm_ = nullptr;
    sim::TimeSeries power_;
    double latest_ = 0.0;
    std::unique_ptr<sim::Simulation::PeriodicTask> task_;
};

} // namespace polca::telemetry

