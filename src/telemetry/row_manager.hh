/**
 * @file
 * Backwards-compatible alias: the row manager was generalized into
 * telemetry::DomainManager (domain_manager.hh) when the flat
 * Row/Datacenter topology grew into the cluster::PowerDomain tree.
 * A "row manager" is simply the domain manager of a row-level
 * domain; existing call sites keep the RowManager name.
 */

#pragma once

#include "telemetry/domain_manager.hh"

namespace polca::telemetry {

using RowManager = DomainManager;

} // namespace polca::telemetry
