/**
 * @file
 * Physical row circuit-breaker model and power-violation accounting.
 *
 * Oversubscription is only "safe" if the provisioned limit is never
 * violated long enough to trip the row breaker (Section 3.1: the
 * entire point of capping is to avoid tripping upstream protection).
 * This model closes the loop the simulator was missing: it watches
 * the *raw* electrical draw — independently of the OOB telemetry
 * that POLCA sees, and therefore through telemetry blackouts — and
 * trips when power stays above the breaker limit for a sustained
 * duration (thermal breakers ride through short transients).
 *
 * A trip here is an accounting event, not a simulated outage: the
 * run keeps going so experiments can count how often a policy would
 * have taken the row down.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "obs/observability.hh"
#include "sim/simulation.hh"

namespace polca::telemetry {

/**
 * Sampled thermal-breaker model over one row's supply.
 */
class BreakerModel
{
  public:
    using PowerSource = std::function<double()>;

    struct Config
    {
        /** Row power budget; overdraw accounting is against this. */
        double provisionedWatts;

        /**
         * Breaker trip limit in watts.  0 selects the NEC-style
         * default: breakers are continuously rated at 80 % of their
         * trip limit, so a row provisioned at the continuous rating
         * has a trip limit of provisioned / 0.8.
         */
        double breakerLimitWatts;

        /** Sustained time above the limit before the breaker trips
         *  (thermal element: transients ride through). */
        sim::Tick tripDuration;

        /** An above-limit streak at least this fraction of
         *  tripDuration that ends without tripping counts as a
         *  near trip. */
        double nearTripFraction;

        /** Supply sampling cadence. */
        sim::Tick sampleInterval;

        Config()
            : provisionedWatts(0.0), breakerLimitWatts(0.0),
              tripDuration(sim::secondsToTicks(30)),
              nearTripFraction(0.5),
              sampleInterval(sim::secondsToTicks(1))
        {}
    };

    BreakerModel(sim::Simulation &sim, PowerSource supply,
                 Config config);

    /**
     * Register trip/near-trip counters, the windup-occupancy
     * histogram (fraction of tripDuration each above-limit streak
     * reached), and windup/trip trace events with @p obs.
     *
     * @p prefix names the metric namespace: the flat "breaker"
     * default keeps the historical row-experiment names
     * (breaker.trips, ...); hierarchical topologies pass the
     * domain's metric path (e.g. "site.row3.breaker") so every
     * level's breaker reports under its own namespace.
     */
    void attachObservability(obs::Observability *obs,
                             const std::string &prefix = "breaker");

    /** Begin sampling the supply. */
    void start();

    /** Stop sampling (accounting retained). */
    void stop();

    bool running() const { return task_ != nullptr; }

    /** Effective trip limit in watts. */
    double breakerLimitWatts() const { return limitWatts_; }

    /** @name Violation accounting */
    /** @{ */
    /** Breaker trips so far (the breaker re-arms after each). */
    std::uint64_t trips() const { return trips_; }

    /** @return true if the breaker has ever tripped. */
    bool tripped() const { return trips_ > 0; }

    /** Tick of the first trip, or -1 when never tripped. */
    sim::Tick firstTripTime() const { return firstTrip_; }

    /** Above-limit streaks that came close but did not trip. */
    std::uint64_t nearTrips() const { return nearTrips_; }

    /** Total time spent above the provisioned budget. */
    sim::Tick ticksAboveProvisioned() const { return aboveBudget_; }

    /** Total time spent above the breaker limit. */
    sim::Tick ticksAboveLimit() const { return aboveLimit_; }

    /** Integral of max(0, draw - provisioned) over time. */
    double overdrawWattSeconds() const { return overdrawWs_; }

    /** Longest contiguous above-limit streak observed. */
    sim::Tick longestOverLimitStreak() const { return longestStreak_; }
    /** @} */

    /** Mutable state at a snapshot boundary: the violation
     *  accounting plus the sampler's schedule position. */
    struct State
    {
        sim::Tick streak = 0;
        sim::Tick longestStreak = 0;
        sim::Tick aboveBudget = 0;
        sim::Tick aboveLimit = 0;
        double overdrawWs = 0.0;
        std::uint64_t trips = 0;
        std::uint64_t nearTrips = 0;
        sim::Tick firstTrip = -1;
        sim::Simulation::PeriodicTask::State task;
    };

    /** Capture mutable state (snapshot support). */
    [[nodiscard]] State saveState() const;

    /** Restore from a snapshot while the queue has a restore open;
     *  the breaker must be start()ed when the saved task was
     *  running. */
    void restoreState(const State &state);

  private:
    void sample(sim::Tick now);
    void endStreak(sim::Tick now, bool tripped);

    sim::Simulation &sim_;
    PowerSource supply_;
    // polca-snapshot: skip(config_, immutable breaker config)
    Config config_;
    // polca-snapshot: skip(limitWatts_, derived from config_ at construction)
    double limitWatts_;
    std::unique_ptr<sim::Simulation::PeriodicTask> task_;

    sim::Tick streak_ = 0;          ///< current above-limit streak
    sim::Tick longestStreak_ = 0;
    sim::Tick aboveBudget_ = 0;
    sim::Tick aboveLimit_ = 0;
    double overdrawWs_ = 0.0;
    std::uint64_t trips_ = 0;
    std::uint64_t nearTrips_ = 0;
    sim::Tick firstTrip_ = -1;

    obs::TraceRecorder *trace_ = nullptr;
    obs::Counter *tripStat_ = nullptr;
    obs::Counter *nearTripStat_ = nullptr;
    obs::Histogram *windupStat_ = nullptr;
    obs::LogHistogram *overdrawStat_ = nullptr;
};

} // namespace polca::telemetry

