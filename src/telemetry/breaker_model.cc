#include "telemetry/breaker_model.hh"

#include <algorithm>

#include "core/contracts.hh"
#include "sim/logging.hh"

namespace polca::telemetry {

BreakerModel::BreakerModel(sim::Simulation &sim, PowerSource supply,
                           Config config)
    : sim_(sim), supply_(std::move(supply)), config_(config)
{
    POLCA_CHECK(static_cast<bool>(supply_), "empty power source");
    if (config_.provisionedWatts <= 0.0)
        sim::fatal("BreakerModel: non-positive provisioned power");
    if (config_.sampleInterval <= 0 || config_.tripDuration <= 0)
        sim::fatal("BreakerModel: non-positive interval/duration");
    if (config_.nearTripFraction < 0.0 ||
        config_.nearTripFraction > 1.0) {
        sim::fatal("BreakerModel: near-trip fraction ",
                   config_.nearTripFraction, " outside [0,1]");
    }
    limitWatts_ = config_.breakerLimitWatts > 0.0
        ? config_.breakerLimitWatts
        : config_.provisionedWatts / 0.8;
    if (limitWatts_ < config_.provisionedWatts)
        sim::fatal("BreakerModel: breaker limit below provisioned");
}

void
BreakerModel::start()
{
    if (task_)
        return;
    task_ = sim_.every(config_.sampleInterval,
                       [this](sim::Tick now) { sample(now); });
}

void
BreakerModel::stop()
{
    task_.reset();
}

void
BreakerModel::attachObservability(obs::Observability *obs,
                                  const std::string &prefix)
{
    if (!obs) {
        trace_ = nullptr;
        tripStat_ = nearTripStat_ = nullptr;
        windupStat_ = nullptr;
        overdrawStat_ = nullptr;
        return;
    }
    trace_ = &obs->trace;
    tripStat_ = &obs->metrics.counter(prefix + ".trips",
                                      "breaker trips at this domain");
    nearTripStat_ = &obs->metrics.counter(
        prefix + ".near_trips",
        "above-limit streaks that nearly tripped");
    windupStat_ = &obs->metrics.histogram(
        prefix + ".windup_occupancy", 0.0, 1.0, 10,
        "fraction of the trip windup each streak reached");
    // 1 W .. 10 MW at 1 % relative error; sampled only while the
    // draw is actually above provisioned.
    overdrawStat_ = &obs->metrics.logHistogram(
        prefix + ".overdraw_watts", 1.0, 1e7, 0.01,
        "watts above provisioned, per sample while overdrawn");
}

BreakerModel::State
BreakerModel::saveState() const
{
    State state;
    state.streak = streak_;
    state.longestStreak = longestStreak_;
    state.aboveBudget = aboveBudget_;
    state.aboveLimit = aboveLimit_;
    state.overdrawWs = overdrawWs_;
    state.trips = trips_;
    state.nearTrips = nearTrips_;
    state.firstTrip = firstTrip_;
    if (task_)
        state.task = task_->saveState();
    return state;
}

void
BreakerModel::restoreState(const State &state)
{
    streak_ = state.streak;
    longestStreak_ = state.longestStreak;
    aboveBudget_ = state.aboveBudget;
    aboveLimit_ = state.aboveLimit;
    overdrawWs_ = state.overdrawWs;
    trips_ = state.trips;
    nearTrips_ = state.nearTrips;
    firstTrip_ = state.firstTrip;
    if (state.task.running && !task_) {
        sim::panic("BreakerModel: restoring a running sampler on a "
                   "stopped breaker (start() it first)");
    }
    if (task_)
        task_->restoreState(state.task);
}

void
BreakerModel::endStreak(sim::Tick now, bool tripped)
{
    if (streak_ <= 0)
        return;
    if (!tripped &&
        static_cast<double>(streak_) >=
            config_.nearTripFraction *
                static_cast<double>(config_.tripDuration)) {
        ++nearTrips_;
        if (nearTripStat_)
            ++*nearTripStat_;
    }
    if (windupStat_) {
        windupStat_->add(
            std::min(1.0, static_cast<double>(streak_) /
                              static_cast<double>(config_.tripDuration)));
    }
    if (trace_) {
        trace_->complete(obs::TraceCategory::Power, "breaker_windup",
                         now - streak_, streak_, 0,
                         tripped ? 1.0 : 0.0);
    }
    streak_ = 0;
}

void
BreakerModel::sample(sim::Tick now)
{
    // Left-rectangle accounting: each sample stands for the
    // preceding interval (same convention as EnergyMeter).
    double watts = supply_();
    sim::Tick dt = config_.sampleInterval;

    // Conserved-accounting invariants: overdraw energy and time above
    // budget/limit only ever accumulate, and the trip windup can
    // never outrun the time that has actually elapsed above limit.
    POLCA_ASSERT(overdrawWs_ >= 0.0,
                 "overdraw went negative: ", overdrawWs_, " Ws");
    POLCA_ASSERT(streak_ >= 0 && streak_ <= aboveLimit_,
                 "windup streak ", streak_,
                 " outside [0, aboveLimit=", aboveLimit_, "]");
    POLCA_DCHECK(aboveLimit_ <= aboveBudget_,
                 "time above limit ", aboveLimit_,
                 " exceeds time above budget ", aboveBudget_);

    if (watts > config_.provisionedWatts) {
        aboveBudget_ += dt;
        overdrawWs_ += (watts - config_.provisionedWatts) *
            sim::ticksToSeconds(dt);
        if (overdrawStat_)
            overdrawStat_->add(watts - config_.provisionedWatts);
    }

    if (watts > limitWatts_) {
        aboveLimit_ += dt;
        streak_ += dt;
        longestStreak_ = std::max(longestStreak_, streak_);
        if (streak_ >= config_.tripDuration) {
            ++trips_;
            if (tripStat_)
                ++*tripStat_;
            if (firstTrip_ < 0)
                firstTrip_ = now;
            if (trace_) {
                trace_->instant(obs::TraceCategory::Power,
                                "breaker_trip", now, 0, watts);
            }
            // Thermal element resets; the breaker re-arms.
            endStreak(now, /*tripped=*/true);
        }
    } else {
        endStreak(now, /*tripped=*/false);
    }
}

} // namespace polca::telemetry
