#include "telemetry/breaker_model.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace polca::telemetry {

BreakerModel::BreakerModel(sim::Simulation &sim, PowerSource supply,
                           Config config)
    : sim_(sim), supply_(std::move(supply)), config_(config)
{
    if (!supply_)
        sim::panic("BreakerModel: empty power source");
    if (config_.provisionedWatts <= 0.0)
        sim::fatal("BreakerModel: non-positive provisioned power");
    if (config_.sampleInterval <= 0 || config_.tripDuration <= 0)
        sim::fatal("BreakerModel: non-positive interval/duration");
    if (config_.nearTripFraction < 0.0 ||
        config_.nearTripFraction > 1.0) {
        sim::fatal("BreakerModel: near-trip fraction ",
                   config_.nearTripFraction, " outside [0,1]");
    }
    limitWatts_ = config_.breakerLimitWatts > 0.0
        ? config_.breakerLimitWatts
        : config_.provisionedWatts / 0.8;
    if (limitWatts_ < config_.provisionedWatts)
        sim::fatal("BreakerModel: breaker limit below provisioned");
}

void
BreakerModel::start()
{
    if (task_)
        return;
    task_ = sim_.every(config_.sampleInterval,
                       [this](sim::Tick now) { sample(now); });
}

void
BreakerModel::stop()
{
    task_.reset();
}

void
BreakerModel::endStreak()
{
    if (streak_ > 0 &&
        static_cast<double>(streak_) >=
            config_.nearTripFraction *
                static_cast<double>(config_.tripDuration)) {
        ++nearTrips_;
    }
    streak_ = 0;
}

void
BreakerModel::sample(sim::Tick now)
{
    // Left-rectangle accounting: each sample stands for the
    // preceding interval (same convention as EnergyMeter).
    double watts = supply_();
    sim::Tick dt = config_.sampleInterval;

    if (watts > config_.provisionedWatts) {
        aboveBudget_ += dt;
        overdrawWs_ += (watts - config_.provisionedWatts) *
            sim::ticksToSeconds(dt);
    }

    if (watts > limitWatts_) {
        aboveLimit_ += dt;
        streak_ += dt;
        longestStreak_ = std::max(longestStreak_, streak_);
        if (streak_ >= config_.tripDuration) {
            ++trips_;
            if (firstTrip_ < 0)
                firstTrip_ = now;
            streak_ = 0;  // thermal element resets; breaker re-arms
        }
    } else {
        endStreak();
    }
}

} // namespace polca::telemetry
