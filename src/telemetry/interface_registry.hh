/**
 * @file
 * Queryable registry of the power monitoring/control interfaces and
 * row-level parameters the paper tabulates (Tables 1 and 2).  The
 * simulated interfaces (DcgmMonitor, IpmiMonitor, SmbpbiController,
 * RowManager) take their latencies from here so the modelled
 * environment is auditable in one place.
 */

#pragma once

#include <string>
#include <vector>

#include "sim/types.hh"

namespace polca::telemetry {

/** One row of Table 1. */
struct MonitoringInterface
{
    std::string mechanism;
    std::string granularity;
    std::string path;           ///< "IB" or "OOB"
    std::string intervalText;   ///< as printed in the paper
    sim::Tick typicalInterval;  ///< value the simulator uses
};

/** Table 1: power monitoring interfaces in an LLM cluster. */
std::vector<MonitoringInterface> monitoringInterfaces();

/** Table 2: row-level parameters. */
struct RowParameters
{
    int numServers = 40;
    std::string serverType = "DGX-A100";

    /** Row power telemetry arrives every 2 s. */
    sim::Tick powerTelemetryDelay = sim::secondsToTicks(2.0);

    /** OOB power brake takes effect within 5 s. */
    sim::Tick powerBrakeLatency = sim::secondsToTicks(5.0);

    /** OOB frequency/power capping takes up to 40 s. */
    sim::Tick oobControlLatency = sim::secondsToTicks(40.0);

    /** The UPS requires capping within 10 s of an emergency. */
    sim::Tick upsCappingDeadline = sim::secondsToTicks(10.0);

    /** In-band (nvidia-smi/DCGM) control latency: few milliseconds. */
    sim::Tick ibControlLatency = sim::msToTicks(5.0);
};

/** The paper's production row configuration. */
RowParameters paperRowParameters();

} // namespace polca::telemetry

