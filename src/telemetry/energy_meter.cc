#include "telemetry/energy_meter.hh"

#include "sim/logging.hh"

namespace polca::telemetry {

EnergyMeter::EnergyMeter(sim::Simulation &sim, PowerSource source,
                         sim::Tick interval)
    : sim_(sim), source_(std::move(source)), interval_(interval)
{
    if (!source_)
        sim::fatal("EnergyMeter: empty power source");
    if (interval_ <= 0)
        sim::fatal("EnergyMeter: non-positive interval");
}

void
EnergyMeter::start()
{
    if (task_)
        return;
    // Sample at the *start* of each interval (left rectangle): read
    // power now, credit it for the next interval.
    task_ = sim_.every(interval_, [this](sim::Tick now) { sample(now); },
                       /*phase=*/0);
}

void
EnergyMeter::stop()
{
    task_.reset();
}

EnergyMeter::State
EnergyMeter::saveState() const
{
    State state;
    state.joules = joules_;
    state.meteredTicks = meteredTicks_;
    if (task_)
        state.task = task_->saveState();
    return state;
}

void
EnergyMeter::restoreState(const State &state)
{
    joules_ = state.joules;
    meteredTicks_ = state.meteredTicks;
    if (state.task.running && !task_) {
        sim::panic("EnergyMeter: restoring a running meter on a "
                   "stopped one (start() it first)");
    }
    if (task_)
        task_->restoreState(state.task);
}

void
EnergyMeter::sample(sim::Tick)
{
    joules_ += source_() * sim::ticksToSeconds(interval_);
    meteredTicks_ += interval_;
}

double
EnergyMeter::meanPowerWatts() const
{
    if (meteredTicks_ <= 0)
        return 0.0;
    return joules_ / sim::ticksToSeconds(meteredTicks_);
}

} // namespace polca::telemetry
