#include "telemetry/interface_registry.hh"

namespace polca::telemetry {

std::vector<MonitoringInterface>
monitoringInterfaces()
{
    return {
        {"RAPL", "CPU & DRAM", "IB", "1-10ms", sim::msToTicks(5)},
        {"DCGM", "GPU", "IB", "100ms+", sim::msToTicks(100)},
        {"SMBPBI", "GPU", "OOB", "5s+", sim::secondsToTicks(5)},
        {"IPMI", "Server", "OOB", "1-5s", sim::secondsToTicks(3)},
        {"Row manager", "Row of racks", "OOB", "2s",
         sim::secondsToTicks(2)},
    };
}

RowParameters
paperRowParameters()
{
    return RowParameters{};
}

} // namespace polca::telemetry
