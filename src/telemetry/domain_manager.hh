/**
 * @file
 * Domain manager: out-of-band aggregation of one power domain's draw
 * on a periodic cadence.  For a row (PDU) domain this is the paper's
 * 2 s row telemetry (Table 1) that POLCA caps from, because the row
 * is where statistical multiplexing of prompt/token phases pays off
 * (Insight 9).  The same machinery aggregates racks, rows, and whole
 * sites: every non-leaf cluster::PowerDomain owns a DomainManager
 * whose sources are its children, so readings roll up the tree with
 * each level sampling on its own cadence.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/observability.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/timeseries.hh"

namespace polca::telemetry {

/**
 * Periodically sums power across registered sources and notifies
 * listeners.  Sources are polled at reading time (step-accurate for
 * the 2 s cadence).
 */
class DomainManager
{
  public:
    using PowerSource = std::function<double()>;
    using Listener = std::function<void(sim::Tick, double)>;

    /**
     * Hook applied to every periodic reading before it is recorded
     * and delivered.  Returning std::nullopt drops the reading
     * (counted in droppedReadings()); returning a value replaces the
     * measured watts (sensor corruption).  One hook at a time; the
     * fault-injection subsystem (faults::FaultInjector) composes its
     * scenarios into a single hook.
     */
    using FaultHook =
        std::function<std::optional<double>(sim::Tick, double)>;

    DomainManager(sim::Simulation &sim,
                  sim::Tick interval = sim::secondsToTicks(2),
                  bool recordSeries = true);

    /**
     * Inject reading dropout: each periodic reading is silently
     * skipped with probability @p probability (OOB telemetry "may
     * sometimes fail", Section 3.3).  Listeners simply do not fire
     * for dropped readings.
     */
    void setDropoutProbability(double probability, sim::Rng rng);

    /** Install (or clear, with an empty function) the fault hook.
     *  Applied after the i.i.d. dropout filter. */
    void setFaultHook(FaultHook hook) { faultHook_ = std::move(hook); }

    /**
     * Register reading delivery/drop/corruption counters and row
     * trace events with @p obs (which must outlive this object).
     * Metric names keep the flat `telemetry.*` namespace the
     * single-row experiments always used.  Null detaches.
     */
    void attachObservability(obs::Observability *obs);

    /**
     * Register this manager's latest reading as the per-domain gauge
     * `<path>.power` (e.g. `site.row3.power`), giving each tree
     * level its own metric namespace.  Composable with
     * attachObservability(); @p obs must outlive this object.
     */
    void attachDomainObservability(obs::Observability *obs,
                                   const std::string &path);

    /** Register a power source (e.g. one server's draw, or a child
     *  domain's rolled-up draw). */
    void addSource(PowerSource source);

    /** Register a reading listener (e.g. the POLCA manager). */
    void addListener(Listener listener);

    /** Begin periodic readings; start() after stop() resumes the
     *  periodic schedule (first reading one interval later). */
    void start();

    /** Stop readings. */
    void stop();

    /** @return true while the periodic schedule is active. */
    bool running() const { return task_ != nullptr; }

    /** Sampling interval. */
    sim::Tick interval() const { return interval_; }

    /** Latest domain power reading (0 before the first). */
    double latestReading() const { return latest_; }

    /** Tick of the latest reading. */
    sim::Tick latestReadingTime() const { return latestTime_; }

    /** Full reading history (empty when recording disabled). */
    const sim::TimeSeries &series() const { return series_; }

    /**
     * Pre-size the reading history for a run spanning @p horizon
     * ticks — one sample per interval — so steady-state recording
     * never reallocates mid-run.  No-op when recording is disabled.
     */
    void reserveSeries(sim::Tick horizon);

    /** Take an immediate reading outside the periodic schedule. */
    double readNow();

    /** Readings silently dropped so far. */
    std::uint64_t droppedReadings() const { return dropped_; }

    /** Mutable state at a snapshot boundary: the reading history and
     *  dropout stream plus the periodic task's schedule position.
     *  Sources/listeners/hooks are wiring, reproduced by rebuild. */
    struct State
    {
        double latest = 0.0;
        sim::Tick latestTime = 0;
        std::uint64_t dropped = 0;
        sim::Rng dropoutRng;
        sim::TimeSeries series;
        sim::Simulation::PeriodicTask::State task;
    };

    /** Capture mutable state (snapshot support). */
    [[nodiscard]] State saveState() const;

    /** Restore from a snapshot while the queue has a restore open.
     *  The manager must be start()ed (its build-time event was
     *  discarded by beginRestore) when the saved task was running. */
    void restoreState(const State &state);

  private:
    void sample(sim::Tick now);

    sim::Simulation &sim_;
    // polca-snapshot: skip(interval_, immutable sampling config)
    sim::Tick interval_;
    // polca-snapshot: skip(recordSeries_, immutable recording config)
    bool recordSeries_;
    std::vector<PowerSource> sources_;
    std::vector<Listener> listeners_;
    sim::TimeSeries series_;
    double latest_ = 0.0;
    sim::Tick latestTime_ = 0;
    // polca-snapshot: skip(dropoutProbability_, setup-time config; set before warmup)
    double dropoutProbability_ = 0.0;
    sim::Rng dropoutRng_;
    FaultHook faultHook_;
    std::uint64_t dropped_ = 0;
    std::unique_ptr<sim::Simulation::PeriodicTask> task_;

    obs::TraceRecorder *trace_ = nullptr;
    obs::Counter *deliveredStat_ = nullptr;
    obs::Counter *droppedStat_ = nullptr;
    obs::Counter *corruptedStat_ = nullptr;
    obs::LogHistogram *rowWattsStat_ = nullptr;
};

} // namespace polca::telemetry
