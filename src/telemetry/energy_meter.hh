/**
 * @file
 * Energy accounting: integrates a power source over simulated time.
 *
 * The paper's framing is peak power (provisioning), but its related
 * work contrasts with energy-oriented systems (Zeus et al.); an
 * energy meter lets the benches report the kWh and per-request
 * energy implications of capping policies as well.
 */

#pragma once

#include <functional>
#include <memory>

#include "sim/simulation.hh"

namespace polca::telemetry {

/**
 * Left-rectangle integration of a power source sampled on a fixed
 * interval.  Good to ~interval/phase-length accuracy, which is ample
 * at the default 2 s cadence against >10 s phases.
 */
class EnergyMeter
{
  public:
    using PowerSource = std::function<double()>;

    EnergyMeter(sim::Simulation &sim, PowerSource source,
                sim::Tick interval = sim::secondsToTicks(2));

    /** Begin integrating. */
    void start();

    /** Stop integrating (total retained). */
    void stop();

    bool running() const { return task_ != nullptr; }

    /** Accumulated energy in joules. */
    double joules() const { return joules_; }

    /** Accumulated energy in kilowatt-hours. */
    double kilowattHours() const { return joules_ / 3.6e6; }

    /** Mean power over the metered interval, watts. */
    double meanPowerWatts() const;

    /** Mutable state at a snapshot boundary. */
    struct State
    {
        double joules = 0.0;
        sim::Tick meteredTicks = 0;
        sim::Simulation::PeriodicTask::State task;
    };

    /** Capture mutable state (snapshot support). */
    [[nodiscard]] State saveState() const;

    /** Restore from a snapshot while the queue has a restore open;
     *  the meter must be start()ed when the saved task was running. */
    void restoreState(const State &state);

  private:
    void sample(sim::Tick now);

    sim::Simulation &sim_;
    PowerSource source_;
    // polca-snapshot: skip(interval_, immutable sampling config)
    sim::Tick interval_;
    double joules_ = 0.0;
    sim::Tick meteredTicks_ = 0;
    std::unique_ptr<sim::Simulation::PeriodicTask> task_;
};

} // namespace polca::telemetry

