/**
 * @file
 * SMBPBI-style out-of-band GPU control path (Section 3.2/3.3).
 *
 * The defining properties the paper measures — and which POLCA must
 * design around — are modelled here:
 *  - frequency/power capping commands take up to 40 s to take effect
 *    on a server;
 *  - the power brake is faster (~5 s) but drastic (clocks to 288 MHz);
 *  - commands may fail silently, "without signaling completion or
 *    errors", so callers need verification guardrails.
 */

#pragma once

#include <cstdint>

#include "obs/observability.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/types.hh"

namespace polca::telemetry {

/**
 * Control target of an OOB path.  Implemented by anything whose
 * clocks a BMC can set: a bare power::ServerModel adapter for the
 * characterization benches, or cluster::InferenceServer, which also
 * reschedules in-flight work when the clock changes.
 */
class ClockControllable
{
  public:
    virtual ~ClockControllable() = default;

    /** Lock all GPUs' SM clock to @p mhz. */
    virtual void applyClockLock(double mhz) = 0;

    /** Remove any frequency lock. */
    virtual void applyClockUnlock() = 0;

    /** Engage/release the power brake on all GPUs. */
    virtual void applyPowerBrake(bool engaged) = 0;

    /** Currently applied lock in MHz, or 0 when unlocked. */
    virtual double appliedClockLockMhz() const = 0;

    /** @return true while the power brake is engaged. */
    virtual bool powerBrakeEngaged() const = 0;
};

/**
 * One server's OOB command channel.  At most one capping command is
 * in flight at a time (the BMC serializes); a command issued while
 * another is pending supersedes it.  Brake commands use the faster
 * dedicated path and are never dropped (the brake signal is a simple
 * hardware line).
 */
class SmbpbiController
{
  public:
    struct Options
    {
        sim::Tick commandLatency;
        sim::Tick brakeLatency;
        double silentFailureProbability;

        Options()
            : commandLatency(sim::secondsToTicks(40)),
              brakeLatency(sim::secondsToTicks(5)),
              silentFailureProbability(0.0)
        {}
    };

    SmbpbiController(sim::Simulation &sim, ClockControllable &target,
                     sim::Rng rng, Options options = Options());

    /**
     * Register command counters, the command->apply latency
     * histogram, and cap_issue/cap_dropped/cap_superseded trace
     * events with @p obs.  @p track labels this channel in the
     * exported trace (one Chrome "thread" per channel).
     */
    void attachObservability(obs::Observability *obs,
                             std::int32_t track);

    /** Request a frequency lock; applies after commandLatency. */
    void requestClockLock(double mhz);

    /** Request removal of the lock; applies after commandLatency. */
    void requestClockUnlock();

    /** Request brake engage/release; applies after brakeLatency. */
    void requestPowerBrake(bool engage);

    /**
     * Channel outage (fault injection): while set, every capping
     * command is lost on the wire — silently, like the stochastic
     * failures.  The power brake is a dedicated hardware line and
     * keeps working, which is exactly why POLCA's fail-safe can
     * lean on it when the BMC path goes dark.
     */
    void setOutage(bool outage) { outage_ = outage; }

    /** @return true while an injected outage is active. */
    bool outage() const { return outage_; }

    /** @return true while a capping command is pending. */
    bool commandPending() const { return pending_.pending(); }

    /** @name Statistics */
    /** @{ */
    std::uint64_t commandsIssued() const { return issued_; }
    std::uint64_t commandsDropped() const { return dropped_; }
    std::uint64_t brakesIssued() const { return brakes_; }
    /** @} */

  private:
    void issue(double lockMhz);

    sim::Simulation &sim_;
    ClockControllable &target_;
    sim::Rng rng_;
    Options options_;
    sim::EventQueue::Handle pending_;
    sim::Tick pendingIssueTime_ = -1;
    bool outage_ = false;
    std::uint64_t issued_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t brakes_ = 0;

    obs::TraceRecorder *trace_ = nullptr;
    std::int32_t track_ = 0;
    obs::Counter *issuedStat_ = nullptr;
    obs::Counter *droppedStat_ = nullptr;
    obs::Counter *supersededStat_ = nullptr;
    obs::Counter *brakeStat_ = nullptr;
    obs::LogHistogram *applyLatencyStat_ = nullptr;
};

} // namespace polca::telemetry

