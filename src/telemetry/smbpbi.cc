#include "telemetry/smbpbi.hh"

namespace polca::telemetry {

SmbpbiController::SmbpbiController(sim::Simulation &sim,
                                   ClockControllable &target,
                                   sim::Rng rng, Options options)
    : sim_(sim), target_(target), rng_(rng), options_(options)
{
}

void
SmbpbiController::issue(double lockMhz)
{
    // A newer command supersedes any pending one.
    sim_.queue().cancel(pending_);
    ++issued_;

    // Loss is decided when the command hits the wire: an injected
    // channel outage swallows it just like a stochastic failure.
    bool drop = outage_ ||
        rng_.bernoulli(options_.silentFailureProbability);
    pending_ = sim_.queue().scheduleAfter(
        options_.commandLatency,
        [this, lockMhz, drop] {
            if (drop) {
                // Silent failure: no state change, no error signal.
                ++dropped_;
                return;
            }
            if (lockMhz > 0.0)
                target_.applyClockLock(lockMhz);
            else
                target_.applyClockUnlock();
        },
        "smbpbi-cap");
}

void
SmbpbiController::requestClockLock(double mhz)
{
    issue(mhz);
}

void
SmbpbiController::requestClockUnlock()
{
    issue(0.0);
}

void
SmbpbiController::requestPowerBrake(bool engage)
{
    ++brakes_;
    sim_.queue().scheduleAfter(
        options_.brakeLatency,
        [this, engage] { target_.applyPowerBrake(engage); },
        "smbpbi-brake");
}

} // namespace polca::telemetry
