#include "telemetry/smbpbi.hh"

namespace polca::telemetry {

SmbpbiController::SmbpbiController(sim::Simulation &sim,
                                   ClockControllable &target,
                                   sim::Rng rng, Options options)
    : sim_(sim), target_(target), rng_(rng), options_(options)
{
}

void
SmbpbiController::attachObservability(obs::Observability *obs,
                                      std::int32_t track)
{
    if (!obs) {
        trace_ = nullptr;
        issuedStat_ = droppedStat_ = supersededStat_ = brakeStat_ =
            nullptr;
        applyLatencyStat_ = nullptr;
        return;
    }
    trace_ = &obs->trace;
    track_ = track;
    issuedStat_ = &obs->metrics.counter(
        "smbpbi.commands_issued", "OOB capping commands put on the wire");
    droppedStat_ = &obs->metrics.counter(
        "smbpbi.commands_dropped", "capping commands lost silently");
    supersededStat_ = &obs->metrics.counter(
        "smbpbi.commands_superseded",
        "capping commands replaced while still in flight");
    brakeStat_ = &obs->metrics.counter(
        "smbpbi.brake_commands", "power-brake line togglings");
    // 100 us .. 100 s at 1 % relative error: OOB command latencies
    // sit around seconds, brake latencies around milliseconds.
    applyLatencyStat_ = &obs->metrics.logHistogram(
        "smbpbi.apply_latency_s", 1e-4, 100.0, 0.01,
        "command issue to application latency (seconds)");
}

void
SmbpbiController::issue(double lockMhz)
{
    // A newer command supersedes any pending one.
    if (pending_.pending()) {
        if (supersededStat_)
            ++*supersededStat_;
        if (trace_) {
            trace_->instant(obs::TraceCategory::Control,
                            "cap_superseded", sim_.now(), track_);
        }
    }
    sim_.queue().cancel(pending_);
    ++issued_;
    if (issuedStat_)
        ++*issuedStat_;

    // Loss is decided when the command hits the wire: an injected
    // channel outage swallows it just like a stochastic failure.
    bool drop = outage_ ||
        rng_.bernoulli(options_.silentFailureProbability);
    sim::Tick issuedAt = sim_.now();
    pendingIssueTime_ = issuedAt;
    pending_ = sim_.queue().scheduleAfter(
        options_.commandLatency,
        [this, lockMhz, drop, issuedAt] {
            sim::Tick now = sim_.now();
            // The cap_issue span covers issue -> (attempted)
            // application; its duration is the OOB command latency
            // by construction, which the control_plane_timeline
            // example cross-checks against the configuration.
            if (trace_) {
                trace_->complete(obs::TraceCategory::Control,
                                 "cap_issue", issuedAt, now - issuedAt,
                                 track_, lockMhz);
            }
            if (applyLatencyStat_) {
                applyLatencyStat_->add(
                    sim::ticksToSeconds(now - issuedAt));
            }
            if (drop) {
                // Silent failure: no state change, no error signal.
                ++dropped_;
                if (droppedStat_)
                    ++*droppedStat_;
                if (trace_) {
                    trace_->instant(obs::TraceCategory::Control,
                                    "cap_dropped", now, track_,
                                    lockMhz);
                }
                return;
            }
            if (lockMhz > 0.0)
                target_.applyClockLock(lockMhz);
            else
                target_.applyClockUnlock();
        },
        "smbpbi-cap");
}

void
SmbpbiController::requestClockLock(double mhz)
{
    issue(mhz);
}

void
SmbpbiController::requestClockUnlock()
{
    issue(0.0);
}

void
SmbpbiController::requestPowerBrake(bool engage)
{
    ++brakes_;
    if (brakeStat_)
        ++*brakeStat_;
    sim::Tick issuedAt = sim_.now();
    sim_.queue().postAfter(
        options_.brakeLatency,
        [this, engage, issuedAt] {
            if (trace_) {
                trace_->complete(obs::TraceCategory::Control,
                                 "brake_cmd", issuedAt,
                                 sim_.now() - issuedAt, track_,
                                 engage ? 1.0 : 0.0);
            }
            target_.applyPowerBrake(engage);
        },
        "smbpbi-brake");
}

} // namespace polca::telemetry
