#include "core/safety_monitor.hh"

#include <algorithm>
#include <utility>

#include "core/contracts.hh"
#include "sim/logging.hh"

namespace polca::core {

const char *
toString(SafetyInvariant invariant)
{
    switch (invariant) {
      case SafetyInvariant::BreakerEnvelope:
        return "breaker-envelope";
      case SafetyInvariant::FailSafeDeadline:
        return "fail-safe-deadline";
      case SafetyInvariant::CapRelease:
        return "cap-release";
      case SafetyInvariant::CapFloor:
        return "cap-floor";
      case SafetyInvariant::PerfBudget:
        return "perf-budget";
    }
    return "unknown";
}

SafetyMonitor::SafetyMonitor(sim::Simulation &sim, Limits limits,
                             std::function<double()> rawPower,
                             PowerManager *manager)
    : sim_(sim), limits_(limits), rawPower_(std::move(rawPower)),
      manager_(manager)
{
    POLCA_CHECK(rawPower_ != nullptr,
                "SafetyMonitor: no raw power source");
    POLCA_CHECK(limits_.checkInterval > 0,
                "SafetyMonitor: non-positive check interval");
    POLCA_CHECK(limits_.provisionedWatts > 0.0,
                "SafetyMonitor: non-positive provisioned power");
}

void
SafetyMonitor::attachTelemetry(telemetry::RowManager &telemetry)
{
    telemetry.addListener([this](sim::Tick now, double watts) {
        lastDelivered_ = now;
        staleReported_ = false;
        // Quiet-episode tracking: the cap-release clock starts when
        // the row drops below every release threshold and stops the
        // moment it pops back over any of them.
        double utilization = watts / limits_.provisionedWatts;
        if (utilization < limits_.quietUtilization) {
            if (!quiet_) {
                quiet_ = true;
                quietSince_ = now;
                quietReported_ = false;
            }
        } else {
            quiet_ = false;
        }
    });
}

void
SafetyMonitor::attachObservability(obs::Observability *obs)
{
    if (!obs) {
        trace_ = nullptr;
        violationStat_ = nullptr;
        return;
    }
    trace_ = &obs->trace;
    violationStat_ = &obs->metrics.counter(
        "safety.violations", "safety invariants breached");
}

void
SafetyMonitor::start()
{
    POLCA_CHECK(!started_, "SafetyMonitor: start called twice");
    started_ = true;
    lastDelivered_ = sim_.now();
    sweep_ = sim_.every(limits_.checkInterval,
                        [this](sim::Tick now) { check(now); });
}

void
SafetyMonitor::record(SafetyInvariant invariant, sim::Tick at,
                      double value, double limit)
{
    violations_.push_back({invariant, at, value, limit});
    if (violationStat_)
        ++*violationStat_;
    if (trace_) {
        trace_->instant(obs::TraceCategory::Control,
                        "safety_violation", at, -4,
                        static_cast<double>(invariant));
    }
    sim::warn("SafetyMonitor: ", toString(invariant),
              " violated at t=", sim::ticksToSeconds(at),
              " s (value ", value, ", limit ", limit, ")");
}

void
SafetyMonitor::check(sim::Tick now)
{
    // 1. Breaker envelope on ground-truth power.  Excursions are
    //    tolerated up to the breaker's own grace, then reported once
    //    per excursion.
    if (limits_.breakerLimitWatts > 0.0) {
        double raw = rawPower_();
        if (raw > limits_.breakerLimitWatts) {
            if (!excursionActive_) {
                excursionActive_ = true;
                excursionSince_ = now;
                excursionReported_ = false;
            }
            if (!excursionReported_ &&
                now - excursionSince_ >= limits_.breakerGrace) {
                excursionReported_ = true;
                record(SafetyInvariant::BreakerEnvelope, now, raw,
                       limits_.breakerLimitWatts);
            }
        } else {
            excursionActive_ = false;
        }
    }

    if (!manager_)
        return;

    // A crashed controller holds no invariants — what matters is
    // what its replacement does, and the restart path either
    // rehydrates or fails safe.  Restart the clocks so episodes that
    // straddle the crash are measured from revival.
    if (manager_->crashed()) {
        staleReported_ = false;
        quietSince_ = now;
        quietReported_ = false;
        return;
    }

    // 2. Fail-safe deadline: telemetry stale past the bound with no
    //    fail-safe active means the watchdog is broken or off.
    //    Staleness is measured against this controller incarnation.
    sim::Tick freshPoint = std::max(lastDelivered_,
                                    manager_->aliveSince());
    sim::Tick staleness = now - freshPoint;
    if (staleness > limits_.failSafeDeadline &&
        !manager_->failSafeActive() && !staleReported_) {
        staleReported_ = true;
        record(SafetyInvariant::FailSafeDeadline, now,
               sim::ticksToSeconds(staleness),
               sim::ticksToSeconds(limits_.failSafeDeadline));
    }

    // 3. Cap release: with the controller healthy, telemetry fresh,
    //    and the row quiet beyond the deadline, caps must be gone.
    //    Fail-safe and staleness pause (and restart) the clock —
    //    holding caps while blind is correct behavior.
    if (manager_->failSafeActive() ||
        staleness > limits_.failSafeDeadline) {
        quietSince_ = now;
        quietReported_ = false;
    } else if (quiet_ && !quietReported_ &&
               now - quietSince_ > limits_.capReleaseDeadline) {
        bool capsHeld =
            manager_->brakeEngaged() ||
            manager_->desiredLockMhz(workload::Priority::Low) > 0.0 ||
            manager_->desiredLockMhz(workload::Priority::High) > 0.0;
        if (capsHeld) {
            quietReported_ = true;
            record(SafetyInvariant::CapRelease, now,
                   sim::ticksToSeconds(now - quietSince_),
                   sim::ticksToSeconds(limits_.capReleaseDeadline));
        }
    }

    // 4. Cap floor: no commanded lock may undercut the deepest rule
    //    in the policy (reported once per pool per episode).
    if (limits_.capFloorMhz > 0.0) {
        double low = manager_->desiredLockMhz(workload::Priority::Low);
        double high =
            manager_->desiredLockMhz(workload::Priority::High);
        bool lowBad = low > 0.0 && low < limits_.capFloorMhz - 0.5;
        bool highBad = high > 0.0 && high < limits_.capFloorMhz - 0.5;
        if (lowBad && !floorReportedLow_) {
            floorReportedLow_ = true;
            record(SafetyInvariant::CapFloor, now, low,
                   limits_.capFloorMhz);
        } else if (!lowBad) {
            floorReportedLow_ = false;
        }
        if (highBad && !floorReportedHigh_) {
            floorReportedHigh_ = true;
            record(SafetyInvariant::CapFloor, now, high,
                   limits_.capFloorMhz);
        } else if (!highBad) {
            floorReportedHigh_ = false;
        }
    }
}

void
SafetyMonitor::finish(sim::Tick end)
{
    POLCA_CHECK(started_, "SafetyMonitor: finish before start");
    if (finished_)
        return;
    finished_ = true;
    sweep_.reset();

    // 5. Perf budget: total brake time over the whole run.
    if (manager_ && end > 0 && limits_.maxBrakeTimeFraction < 1.0) {
        double fraction =
            static_cast<double>(manager_->brakeTicks()) /
            static_cast<double>(end);
        if (fraction > limits_.maxBrakeTimeFraction) {
            record(SafetyInvariant::PerfBudget, end, fraction,
                   limits_.maxBrakeTimeFraction);
        }
    }
}

} // namespace polca::core
