#include "core/oversub_experiment.hh"

#include <algorithm>
#include <chrono>

#include "core/site_experiment.hh"
#include "faults/fault_injector.hh"
#include "llm/phase_model.hh"
#include "sim/logging.hh"
#include "telemetry/energy_meter.hh"
#include "workload/trace_gen.hh"

namespace polca::core {

LatencyStats
LatencyStats::from(const sim::Sampler &sampler)
{
    LatencyStats stats;
    stats.count = sampler.count();
    if (sampler.empty())
        return stats;
    stats.p50 = sampler.quantile(0.50);
    stats.p99 = sampler.quantile(0.99);
    stats.max = sampler.max();
    stats.mean = sampler.mean();
    return stats;
}

ExperimentConfig
unthrottledBaseline(ExperimentConfig config)
{
    config.managed = false;
    config.recordRowSeries = false;
    // The baseline is the ideal unthrottled reference: no injected
    // faults, so normalized latencies isolate the policy's cost.
    config.faultPlan = faults::FaultPlan();
    config.chaos.enabled = false;
    config.safety.monitor = false;
    return config;
}

namespace {

/** Merge a generated chaos plan into the explicit plan. */
void
mergeFaultPlans(faults::FaultPlan &into, faults::FaultPlan add)
{
    auto append = [](auto &dst, auto &src) {
        dst.insert(dst.end(), src.begin(), src.end());
    };
    append(into.blackouts, add.blackouts);
    append(into.sensorFaults, add.sensorFaults);
    append(into.oobOutages, add.oobOutages);
    append(into.crashes, add.crashes);
    append(into.controllerCrashes, add.controllerCrashes);
    if (add.burstyLoss.enabled)
        into.burstyLoss = add.burstyLoss;
}

} // namespace

ExperimentResult
runOversubExperiment(const ExperimentConfig &config)
{
    if (config.topology.enabled)
        return runSiteExperiment(config);

    sim::Simulation sim(config.seed);

    cluster::RowConfig rowConfig = config.row;
    rowConfig.recordPowerSeries = config.recordRowSeries;
    if (config.autoBalancePools) {
        llm::ModelCatalog catalog;
        llm::PhaseModel phases(catalog.byName(rowConfig.modelName));
        rowConfig.lpServerFraction =
            workload::TraceGenerator(config.mix)
                .lowPriorityWorkShare(phases);
    }
    cluster::Row row(sim, rowConfig, sim.rng().fork(0xA110));

    if (config.powerScaleFactor != 1.0)
        row.setPowerScaleFactor(config.powerScaleFactor);

    obs::Observability *obs = config.obs;
    if (obs) {
        row.rowManager().attachObservability(obs);
        row.dispatcher().attachObservability(obs);
        for (cluster::InferenceServer *server : row.servers())
            server->attachObservability(obs);
        // Sim-core stats: the sim layer cannot depend on obs, so the
        // harness registers gauge sources over the queue's own
        // accessors; freezeGauges() below snapshots them.
        obs->metrics
            .gauge("sim.events_processed", "event callbacks executed")
            .setSource([&sim] {
                return static_cast<double>(sim.queue().numProcessed());
            });
        obs->metrics
            .gauge("sim.queue_high_water",
                   "most events pending at once")
            .setSource([&sim] {
                return static_cast<double>(
                    sim.queue().highWaterMark());
            });
        obs->metrics
            .gauge("sim.final_time_s", "simulated time at run end")
            .setSource(
                [&sim] { return sim::ticksToSeconds(sim.now()); });
    }

    // Trace: external, or generated at an offered load matched to
    // the deployed server count (oversubscribed rows serve
    // proportionally more traffic — that is the point of adding
    // servers).
    workload::Trace generated;
    const workload::Trace *trace = config.externalTrace;
    if (!trace) {
        workload::TraceGenerator generator(config.mix);
        llm::PhaseModel phases(row.model());
        workload::TraceGenOptions traceOptions;
        traceOptions.duration = config.duration;
        traceOptions.numServers = row.numServers();
        traceOptions.serviceSecondsPerRequest =
            generator.expectedServiceSeconds(phases);
        traceOptions.diurnal = config.diurnal;
        traceOptions.seed = config.seed ^ 0x7ace;
        generated = generator.generate(traceOptions);
        trace = &generated;
    }

    telemetry::EnergyMeter energy(
        sim, [&row] { return row.powerWatts(); });
    energy.start();

    // Track row utilization independently of management so that
    // unthrottled baselines also report max/mean utilization.
    sim::Accumulator utilization;
    double provisioned = row.provisionedWatts();
    row.rowManager().addListener(
        [&utilization, provisioned](sim::Tick, double watts) {
            utilization.add(watts / provisioned);
        });

    std::unique_ptr<PowerManager> manager;
    if (config.managed) {
        manager = std::make_unique<PowerManager>(
            sim, row.rowManager(), row.provisionedWatts(),
            config.policy, sim.rng().fork(0x90CA), config.manager);
        if (obs)
            manager->attachObservability(obs);
        for (workload::Priority pool :
             {workload::Priority::Low, workload::Priority::High}) {
            for (cluster::InferenceServer *server : row.pool(pool))
                manager->addTarget(pool, server);
        }
        manager->start();
    }

    // The physical breaker watches the raw electrical draw — not
    // the row telemetry — so it keeps seeing power through
    // telemetry blackouts.
    std::unique_ptr<telemetry::BreakerModel> breaker;
    if (config.modelBreaker) {
        telemetry::BreakerModel::Config breakerConfig;
        breakerConfig.provisionedWatts = provisioned;
        breakerConfig.breakerLimitWatts =
            provisioned * config.breakerLimitFraction;
        breakerConfig.tripDuration = config.breakerTripDuration;
        breaker = std::make_unique<telemetry::BreakerModel>(
            sim, [&row] { return row.powerWatts(); }, breakerConfig);
        if (obs)
            breaker->attachObservability(obs);
        breaker->start();
    }

    // Fault plan = explicit scenario faults plus (when enabled) a
    // chaos plan drawn from the run seed, so a chaos campaign
    // replays bit-identically.
    faults::FaultPlan plan = config.faultPlan;
    if (config.chaos.enabled) {
        sim::Rng chaosRng = sim.rng().fork(0xC4A0);
        mergeFaultPlans(plan,
                        faults::generateChaosPlan(
                            config.chaos, config.duration,
                            row.numServers(), chaosRng));
    }

    std::unique_ptr<faults::FaultInjector> injector;
    if (!plan.empty()) {
        injector = std::make_unique<faults::FaultInjector>(
            sim, plan, sim.rng().fork(0xFA17));
        if (obs)
            injector->attachObservability(obs);
        injector->attachTelemetry(row.rowManager());
        injector->attachServers(row.servers());
        if (manager) {
            for (workload::Priority pool :
                 {workload::Priority::Low, workload::Priority::High})
                injector->attachChannels(manager->channels(pool));
            injector->attachController(manager.get());
        }
        injector->start();
    }

    // The safety monitor watches ground-truth power (what the
    // breaker sees), delivered telemetry, and the manager's posture.
    std::unique_ptr<SafetyMonitor> safety;
    if (config.safety.monitor) {
        SafetyMonitor::Limits limits;
        limits.provisionedWatts = provisioned;
        limits.breakerLimitWatts =
            provisioned * config.breakerLimitFraction;
        limits.breakerGrace = config.breakerTripDuration;
        limits.failSafeDeadline = config.manager.watchdogTimeout +
            config.safety.failSafeMargin;
        limits.capReleaseDeadline = config.safety.capReleaseDeadline;
        limits.maxBrakeTimeFraction =
            config.safety.maxBrakeTimeFraction;
        limits.checkInterval = config.safety.checkInterval;
        // Quiet = below every release threshold, so no rule (or the
        // brake) has any reason to stay engaged.
        limits.quietUtilization = config.policy.powerBrakeEnabled
            ? config.policy.powerBrakeReleaseFraction
            : 1.0;
        for (const ThresholdRule &rule : config.policy.rules) {
            limits.quietUtilization = std::min(
                limits.quietUtilization, rule.uncapFraction);
            if (limits.capFloorMhz == 0.0 ||
                rule.lockMhz < limits.capFloorMhz)
                limits.capFloorMhz = rule.lockMhz;
        }
        safety = std::make_unique<SafetyMonitor>(
            sim, limits, [&row] { return row.powerWatts(); },
            manager.get());
        if (obs)
            safety->attachObservability(obs);
        safety->attachTelemetry(row.rowManager());
        safety->start();
    }

    row.dispatcher().injectTrace(*trace);

    // Interval stats: snapshot the registry on a fixed sim-time
    // cadence.  Counters are delta'd inside IntervalStats; the
    // registry itself is never reset, so the end-of-run cumulative
    // dump is unaffected and reconciles with the column sums.
    std::unique_ptr<sim::Simulation::PeriodicTask> statsTask;
    if (obs && config.obsOptions.metricsInterval > 0) {
        statsTask = sim.every(
            config.obsOptions.metricsInterval, [obs](sim::Tick at) {
                obs->interval.snapshot(sim::ticksToSeconds(at),
                                       obs->metrics);
            });
    }

    auto wallStart = std::chrono::steady_clock::now();
    sim.runUntil(config.duration);
    if (safety)
        safety->finish(config.duration);
    if (statsTask) {
        // Final partial interval at the run end (a no-op when the
        // cadence divides the duration exactly); after it the column
        // sums of every delta column equal the cumulative dump.
        obs->interval.snapshot(sim::ticksToSeconds(config.duration),
                               obs->metrics);
        statsTask->stop();
    }
    if (obs) {
        // Wall-clock throughput is inherently non-reproducible, so
        // it is a volatile gauge: visible via value(), skipped by
        // dump() to keep same-seed dumps byte-identical.
        double wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wallStart)
                .count();
        obs::Gauge &rate = obs->metrics.gauge(
            "sim.wallclock_events_per_s",
            "event callbacks per wall-clock second (volatile)");
        rate.setVolatile(true);
        rate.set(wallSeconds > 0.0
                     ? static_cast<double>(sim.queue().numProcessed()) /
                           wallSeconds
                     : 0.0);
        obs->metrics.freezeGauges();
    }

    ExperimentResult result;
    cluster::Dispatcher &dispatcher = row.dispatcher();
    result.low = LatencyStats::from(
        dispatcher.latencySeconds(workload::Priority::Low));
    result.high = LatencyStats::from(
        dispatcher.latencySeconds(workload::Priority::High));
    result.lowThroughput =
        dispatcher.throughput(workload::Priority::Low);
    result.highThroughput =
        dispatcher.throughput(workload::Priority::High);
    result.lowArrivals = dispatcher.arrivals(workload::Priority::Low);
    result.highArrivals = dispatcher.arrivals(workload::Priority::High);
    result.lowCompletions =
        dispatcher.completions(workload::Priority::Low);
    result.highCompletions =
        dispatcher.completions(workload::Priority::High);
    for (const sim::Sampler &sampler : dispatcher.latencyByWorkload())
        result.byWorkload.push_back(LatencyStats::from(sampler));

    result.energyKwh = energy.kilowattHours();
    std::uint64_t completions =
        result.lowCompletions + result.highCompletions;
    if (completions > 0) {
        result.energyPerRequestKj = energy.joules() / 1000.0 /
            static_cast<double>(completions);
    }

    if (utilization.count() > 0) {
        result.maxUtilization = utilization.max();
        result.meanUtilization = utilization.mean();
    }
    if (manager) {
        result.powerBrakeEvents = manager->powerBrakeEvents();
        result.capCommands = manager->capCommands();
        result.uncapCommands = manager->uncapCommands();
        result.reissuedCommands = manager->reissuedCommands();
        result.lpLockedTicks =
            manager->lockedTicks(workload::Priority::Low);
        result.hpLockedTicks =
            manager->lockedTicks(workload::Priority::High);
        result.failSafeEntries = manager->failSafeEntries();
        result.failSafeTicks = manager->failSafeTicks();
        result.flaggedChannels = manager->flaggedChannels();
        result.controllerCrashes = manager->controllerCrashes();
        result.controllerRecoveries = manager->controllerRecoveries();
        result.controllerDownTicks = manager->controllerDownTicks();
        result.mttrTotalTicks = manager->mttrTotalTicks();
        result.mttrMaxTicks = manager->mttrMaxTicks();
        result.timeToFailSafeMaxTicks =
            manager->timeToFailSafeMaxTicks();
        result.capsHeldStaleTicks = manager->capsHeldStaleTicks();
        result.staleTicks = manager->staleTicks();
        result.brakeTicks = manager->brakeTicks();
        result.modeTransitions = manager->modeTransitions();
    }
    if (safety)
        result.violations = safety->violations();
    if (breaker) {
        result.breakerTrips = breaker->trips();
        result.breakerNearTrips = breaker->nearTrips();
        result.firstBreakerTrip = breaker->firstTripTime();
        result.ticksAboveProvisioned = breaker->ticksAboveProvisioned();
        result.overdrawWattSeconds = breaker->overdrawWattSeconds();
        result.longestOverLimitStreak =
            breaker->longestOverLimitStreak();
    }
    result.droppedReadings = row.rowManager().droppedReadings();
    if (injector) {
        result.corruptedReadings = injector->corruptedReadings();
        result.crashesInjected = injector->crashesInjected();
    }
    for (cluster::InferenceServer *server : row.servers())
        result.droppedRequests += server->droppedRequests();

    if (config.recordRowSeries)
        result.rowPowerSeries = row.rowManager().series();
    return result;
}

NormalizedLatency
normalizeLatency(const LatencyStats &value, const LatencyStats &baseline)
{
    NormalizedLatency out;
    if (baseline.count == 0 || value.count == 0)
        return out;
    out.p50 = value.p50 / baseline.p50;
    out.p99 = value.p99 / baseline.p99;
    out.max = value.max / baseline.max;
    return out;
}

bool
meetsSlos(const NormalizedLatency &low, const NormalizedLatency &high,
          std::uint64_t powerBrakeEvents, const workload::SloSpec &slos)
{
    return low.p50 <= slos.lpP50Limit && low.p99 <= slos.lpP99Limit &&
        high.p50 <= slos.hpP50Limit && high.p99 <= slos.hpP99Limit &&
        powerBrakeEvents <=
            static_cast<std::uint64_t>(slos.maxPowerBrakes);
}

} // namespace polca::core
