#include "core/oversub_experiment.hh"

#include <algorithm>
#include <chrono>

#include "core/contracts.hh"
#include "core/site_experiment.hh"
#include "core/warmup_snapshot.hh"
#include "faults/fault_injector.hh"
#include "llm/phase_model.hh"
#include "sim/logging.hh"
#include "telemetry/energy_meter.hh"
#include "workload/trace_gen.hh"

namespace polca::core {

LatencyStats
LatencyStats::from(const sim::Sampler &sampler)
{
    LatencyStats stats;
    stats.count = sampler.count();
    if (sampler.empty())
        return stats;
    stats.p50 = sampler.quantile(0.50);
    stats.p99 = sampler.quantile(0.99);
    stats.max = sampler.max();
    stats.mean = sampler.mean();
    return stats;
}

ExperimentConfig
unthrottledBaseline(ExperimentConfig config)
{
    config.managed = false;
    config.recordRowSeries = false;
    // The baseline is the ideal unthrottled reference: no injected
    // faults, so normalized latencies isolate the policy's cost.
    config.faultPlan = faults::FaultPlan();
    config.chaos.enabled = false;
    config.safety.monitor = false;
    return config;
}

namespace {

/** Merge a generated chaos plan into the explicit plan. */
void
mergeFaultPlans(faults::FaultPlan &into, faults::FaultPlan add)
{
    auto append = [](auto &dst, auto &src) {
        dst.insert(dst.end(), src.begin(), src.end());
    };
    append(into.blackouts, add.blackouts);
    append(into.sensorFaults, add.sensorFaults);
    append(into.oobOutages, add.oobOutages);
    append(into.crashes, add.crashes);
    append(into.controllerCrashes, add.controllerCrashes);
    if (add.burstyLoss.enabled)
        into.burstyLoss = add.burstyLoss;
}

/** Row knobs resolved from the experiment config (series recording,
 *  work-share pool balancing). */
cluster::RowConfig
resolvedRowConfig(const ExperimentConfig &config)
{
    cluster::RowConfig rowConfig = config.row;
    rowConfig.recordPowerSeries = config.recordRowSeries;
    if (config.autoBalancePools) {
        llm::ModelCatalog catalog;
        llm::PhaseModel phases(catalog.byName(rowConfig.modelName));
        rowConfig.lpServerFraction =
            workload::TraceGenerator(config.mix)
                .lowPriorityWorkShare(phases);
    }
    return rowConfig;
}

/**
 * One flat-row run's live components.  The build/control-plane/
 * capture/restore split exists for the warmup-branch machinery; a
 * warmup == 0 run assembles everything in the original single-pass
 * order, so its event trajectory stays pinned bit-for-bit.
 */
struct RowWorld
{
    explicit RowWorld(const ExperimentConfig &cfg)
        : config(cfg), sim(cfg.seed),
          row(sim, resolvedRowConfig(cfg), sim.rng().fork(0xA110))
    {
    }

    const ExperimentConfig &config;
    sim::Simulation sim;
    cluster::Row row;
    double provisioned = 0.0;
    obs::Observability *obs = nullptr;

    /** Owned when generated here or adopted from a snapshot; null
     *  for external traces.  `trace` is what the dispatcher feeds
     *  from either way. */
    std::shared_ptr<const workload::Trace> ownedTrace;
    const workload::Trace *trace = nullptr;

    std::unique_ptr<telemetry::EnergyMeter> energy;
    sim::Accumulator utilization;
    std::unique_ptr<PowerManager> manager;
    std::unique_ptr<telemetry::BreakerModel> breaker;
    std::unique_ptr<faults::FaultInjector> injector;
    std::unique_ptr<SafetyMonitor> safety;
    std::unique_ptr<sim::Simulation::PeriodicTask> statsTask;
};

void
attachRowObservability(RowWorld &world)
{
    obs::Observability *obs = world.obs;
    if (!obs)
        return;
    sim::Simulation &sim = world.sim;
    world.row.rowManager().attachObservability(obs);
    world.row.dispatcher().attachObservability(obs);
    for (cluster::InferenceServer *server : world.row.servers())
        server->attachObservability(obs);
    // Sim-core stats: the sim layer cannot depend on obs, so the
    // harness registers gauge sources over the queue's own
    // accessors; freezeGauges() at the run end snapshots them.
    obs->metrics
        .gauge("sim.events_processed", "event callbacks executed")
        .setSource([&sim] {
            return static_cast<double>(sim.queue().numProcessed());
        });
    obs->metrics
        .gauge("sim.queue_high_water",
               "most events pending at once")
        .setSource([&sim] {
            return static_cast<double>(
                sim.queue().highWaterMark());
        });
    obs->metrics
        .gauge("sim.final_time_s", "simulated time at run end")
        .setSource(
            [&sim] { return sim::ticksToSeconds(sim.now()); });
}

void
makeRowTrace(RowWorld &world, const WarmupSnapshot *resume)
{
    const ExperimentConfig &config = world.config;
    // Trace: external, or generated at an offered load matched to
    // the deployed server count (oversubscribed rows serve
    // proportionally more traffic — that is the point of adding
    // servers).  A branch adopts the snapshot's trace instead of
    // regenerating the identical one.
    if (config.externalTrace) {
        world.trace = config.externalTrace;
        return;
    }
    if (resume) {
        POLCA_CHECK(resume->trace,
                    "warmup snapshot carries no trace but the branch "
                    "has no external trace either");
        world.ownedTrace = resume->trace;
        world.trace = world.ownedTrace.get();
        return;
    }
    workload::TraceGenerator generator(config.mix);
    llm::PhaseModel phases(world.row.model());
    workload::TraceGenOptions traceOptions;
    traceOptions.duration = config.duration;
    traceOptions.numServers = world.row.numServers();
    traceOptions.serviceSecondsPerRequest =
        generator.expectedServiceSeconds(phases);
    traceOptions.diurnal = config.diurnal;
    traceOptions.seed = config.seed ^ 0x7ace;
    world.ownedTrace = std::make_shared<const workload::Trace>(
        generator.generate(traceOptions));
    world.trace = world.ownedTrace.get();
}

void
buildRowManager(RowWorld &world)
{
    const ExperimentConfig &config = world.config;
    if (!config.managed)
        return;
    world.manager = std::make_unique<PowerManager>(
        world.sim, world.row.rowManager(),
        world.row.provisionedWatts(), config.policy,
        world.sim.rng().fork(0x90CA), config.manager);
    if (world.obs)
        world.manager->attachObservability(world.obs);
    for (workload::Priority pool :
         {workload::Priority::Low, workload::Priority::High}) {
        for (cluster::InferenceServer *server : world.row.pool(pool))
            world.manager->addTarget(pool, server);
    }
    world.manager->start();
}

void
buildRowBreaker(RowWorld &world)
{
    const ExperimentConfig &config = world.config;
    if (!config.modelBreaker)
        return;
    // The physical breaker watches the raw electrical draw — not
    // the row telemetry — so it keeps seeing power through
    // telemetry blackouts.
    telemetry::BreakerModel::Config breakerConfig;
    breakerConfig.provisionedWatts = world.provisioned;
    breakerConfig.breakerLimitWatts =
        world.provisioned * config.breakerLimitFraction;
    breakerConfig.tripDuration = config.breakerTripDuration;
    cluster::Row &row = world.row;
    world.breaker = std::make_unique<telemetry::BreakerModel>(
        world.sim, [&row] { return row.powerWatts(); },
        breakerConfig);
    if (world.obs)
        world.breaker->attachObservability(world.obs);
    world.breaker->start();
}

void
buildRowInjector(RowWorld &world)
{
    const ExperimentConfig &config = world.config;
    // Fault plan = explicit scenario faults plus (when enabled) a
    // chaos plan drawn from the run seed, so a chaos campaign
    // replays bit-identically.
    faults::FaultPlan plan = config.faultPlan;
    if (config.chaos.enabled) {
        sim::Rng chaosRng = world.sim.rng().fork(0xC4A0);
        mergeFaultPlans(plan,
                        faults::generateChaosPlan(
                            config.chaos, config.duration,
                            world.row.numServers(), chaosRng));
    }
    if (plan.empty())
        return;
    world.injector = std::make_unique<faults::FaultInjector>(
        world.sim, plan, world.sim.rng().fork(0xFA17));
    if (world.obs)
        world.injector->attachObservability(world.obs);
    world.injector->attachTelemetry(world.row.rowManager());
    world.injector->attachServers(world.row.servers());
    if (world.manager) {
        for (workload::Priority pool :
             {workload::Priority::Low, workload::Priority::High})
            world.injector->attachChannels(
                world.manager->channels(pool));
        world.injector->attachController(world.manager.get());
    }
    world.injector->start();
}

void
buildRowSafety(RowWorld &world)
{
    const ExperimentConfig &config = world.config;
    if (!config.safety.monitor)
        return;
    // The safety monitor watches ground-truth power (what the
    // breaker sees), delivered telemetry, and the manager's posture.
    SafetyMonitor::Limits limits;
    limits.provisionedWatts = world.provisioned;
    limits.breakerLimitWatts =
        world.provisioned * config.breakerLimitFraction;
    limits.breakerGrace = config.breakerTripDuration;
    limits.failSafeDeadline = config.manager.watchdogTimeout +
        config.safety.failSafeMargin;
    limits.capReleaseDeadline = config.safety.capReleaseDeadline;
    limits.maxBrakeTimeFraction =
        config.safety.maxBrakeTimeFraction;
    limits.checkInterval = config.safety.checkInterval;
    // Quiet = below every release threshold, so no rule (or the
    // brake) has any reason to stay engaged.
    limits.quietUtilization = config.policy.powerBrakeEnabled
        ? config.policy.powerBrakeReleaseFraction
        : 1.0;
    for (const ThresholdRule &rule : config.policy.rules) {
        limits.quietUtilization = std::min(
            limits.quietUtilization, rule.uncapFraction);
        if (limits.capFloorMhz == 0.0 ||
            rule.lockMhz < limits.capFloorMhz)
            limits.capFloorMhz = rule.lockMhz;
    }
    cluster::Row &row = world.row;
    world.safety = std::make_unique<SafetyMonitor>(
        world.sim, limits, [&row] { return row.powerWatts(); },
        world.manager.get());
    if (world.obs)
        world.safety->attachObservability(world.obs);
    world.safety->attachTelemetry(world.row.rowManager());
    world.safety->start();
}

/** The control plane, started at t = warmup in deferred runs:
 *  manager, then injector, then safety — the same relative order a
 *  warmup == 0 run constructs them in. */
void
startRowControlPlane(RowWorld &world)
{
    buildRowManager(world);
    buildRowInjector(world);
    buildRowSafety(world);
}

/**
 * Assemble the physical world at t = 0.  With @p deferControl the
 * control plane is left for startRowControlPlane() at the warmup
 * boundary; without it every component is created inline in the
 * original (determinism-pinned) order.  With @p resume the trace is
 * adopted from the snapshot and not injected — restoreRowWorld()
 * re-arms the dispatcher's in-flight arrival instead.
 */
void
buildRowWorld(RowWorld &world, bool deferControl,
              const WarmupSnapshot *resume)
{
    const ExperimentConfig &config = world.config;
    cluster::Row &row = world.row;

    if (config.powerScaleFactor != 1.0)
        row.setPowerScaleFactor(config.powerScaleFactor);
    world.provisioned = row.provisionedWatts();
    world.obs = config.obs;

    // One telemetry sample lands per interval for the whole run:
    // size the recording buffer up front so the steady state never
    // reallocates.
    row.rowManager().reserveSeries(config.duration);

    attachRowObservability(world);
    makeRowTrace(world, resume);

    world.energy = std::make_unique<telemetry::EnergyMeter>(
        world.sim, [&row] { return row.powerWatts(); });
    world.energy->start();

    // Track row utilization independently of management so that
    // unthrottled baselines also report max/mean utilization.
    sim::Accumulator &utilization = world.utilization;
    double provisioned = world.provisioned;
    row.rowManager().addListener(
        [&utilization, provisioned](sim::Tick, double watts) {
            utilization.add(watts / provisioned);
        });

    if (!deferControl)
        buildRowManager(world);
    buildRowBreaker(world);
    if (!deferControl) {
        buildRowInjector(world);
        buildRowSafety(world);
    }

    if (!resume)
        row.dispatcher().injectTrace(*world.trace);

    // Interval stats: snapshot the registry on a fixed sim-time
    // cadence.  Counters are delta'd inside IntervalStats; the
    // registry itself is never reset, so the end-of-run cumulative
    // dump is unaffected and reconciles with the column sums.
    obs::Observability *obs = world.obs;
    if (obs && config.obsOptions.metricsInterval > 0) {
        world.statsTask = world.sim.every(
            config.obsOptions.metricsInterval, [obs](sim::Tick at) {
                obs->interval.snapshot(sim::ticksToSeconds(at),
                                       obs->metrics);
            });
    }
}

/** Capture the physical world at the warmup boundary (pure read). */
WarmupSnapshot
captureRowSnapshot(RowWorld &world)
{
    WarmupSnapshot snap;
    snap.warmup = world.config.warmup;
    snap.simState.queue = world.sim.queue().captureState();
    snap.trace = world.ownedTrace;
    snap.dispatchers.push_back(world.row.dispatcher().saveState());
    for (cluster::InferenceServer *server : world.row.servers())
        snap.servers.push_back(server->saveState());
    snap.domainManagers.push_back(world.row.rowManager().saveState());
    if (world.breaker)
        snap.breakers.push_back(world.breaker->saveState());
    snap.energy = world.energy->saveState();
    snap.utilization = world.utilization;
    if (world.obs) {
        snap.hasObs = true;
        snap.metrics = world.obs->metrics.saveValues();
        snap.intervalStats = world.obs->interval;
        if (world.statsTask)
            snap.statsTask = world.statsTask->saveState();
    }
    return snap;
}

/** Rewind a freshly built (deferControl, resume) world onto the
 *  snapshot: adopt queue counters, restore component state, re-arm
 *  every pending callback with its original (when, seq). */
void
restoreRowWorld(RowWorld &world, const WarmupSnapshot &snapshot)
{
    const ExperimentConfig &config = world.config;
    POLCA_CHECK(snapshot.warmup == config.warmup,
                "branching at warmup ", config.warmup,
                " from a snapshot captured at ", snapshot.warmup);
    POLCA_CHECK(!world.obs || snapshot.hasObs,
                "branching an observed run from an unobserved "
                "snapshot: the warmup's metric values are missing");
    std::vector<cluster::InferenceServer *> servers =
        world.row.servers();
    POLCA_CHECK(snapshot.servers.size() == servers.size(),
                "snapshot has ", snapshot.servers.size(),
                " servers, world has ", servers.size());
    POLCA_CHECK(snapshot.dispatchers.size() == 1,
                "flat-row snapshot carries ",
                snapshot.dispatchers.size(), " dispatchers");
    POLCA_CHECK(snapshot.breakers.size() ==
                    (world.breaker ? 1u : 0u),
                "snapshot/world breaker mismatch");

    world.sim.queue().beginRestore(snapshot.simState.queue);
    world.row.dispatcher().restoreState(snapshot.dispatchers[0],
                                        world.trace);
    for (std::size_t i = 0; i < servers.size(); ++i)
        servers[i]->restoreState(snapshot.servers[i]);
    world.row.rowManager().restoreState(snapshot.domainManagers.at(0));
    if (world.breaker)
        world.breaker->restoreState(snapshot.breakers[0]);
    world.energy->restoreState(snapshot.energy);
    world.utilization = snapshot.utilization;

    std::size_t expectedLive = snapshot.simState.queue.liveEvents;
    if (world.obs) {
        world.obs->metrics.restoreValues(snapshot.metrics);
        world.obs->interval = snapshot.intervalStats;
        if (world.statsTask)
            world.statsTask->restoreState(snapshot.statsTask);
        else if (snapshot.statsTask.running)
            --expectedLive;
    } else if (snapshot.statsTask.running) {
        // Unobserved branch (e.g. an unthrottled baseline) of an
        // observed leader: the leader's stats sampler stays behind.
        // Interval seqs shift relative to the leader, but the stats
        // callback never touches model state and relative model
        // order is preserved, so the trajectory is value-identical
        // — and an unobserved run writes no artifacts that could
        // expose the absolute seq difference.
        --expectedLive;
    }
    world.sim.queue().endRestore(expectedLive);
}

/** Post-run bookkeeping and result extraction (shared by every
 *  execution mode). */
ExperimentResult
finishRowRun(RowWorld &world,
             std::chrono::steady_clock::time_point wallStart)
{
    const ExperimentConfig &config = world.config;
    obs::Observability *obs = world.obs;
    sim::Simulation &sim = world.sim;
    cluster::Row &row = world.row;

    if (world.safety)
        world.safety->finish(config.duration);
    if (world.statsTask) {
        // Final partial interval at the run end (a no-op when the
        // cadence divides the duration exactly); after it the column
        // sums of every delta column equal the cumulative dump.
        obs->interval.snapshot(sim::ticksToSeconds(config.duration),
                               obs->metrics);
        world.statsTask->stop();
    }
    if (obs) {
        // Wall-clock throughput is inherently non-reproducible, so
        // it is a volatile gauge: visible via value(), skipped by
        // dump() to keep same-seed dumps byte-identical.
        double wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wallStart)
                .count();
        obs::Gauge &rate = obs->metrics.gauge(
            "sim.wallclock_events_per_s",
            "event callbacks per wall-clock second (volatile)");
        rate.setVolatile(true);
        rate.set(wallSeconds > 0.0
                     ? static_cast<double>(sim.queue().numProcessed()) /
                           wallSeconds
                     : 0.0);
        obs->metrics.freezeGauges();
    }

    PowerManager *manager = world.manager.get();
    SafetyMonitor *safety = world.safety.get();
    telemetry::BreakerModel *breaker = world.breaker.get();
    faults::FaultInjector *injector = world.injector.get();
    telemetry::EnergyMeter &energy = *world.energy;
    sim::Accumulator &utilization = world.utilization;

    ExperimentResult result;
    cluster::Dispatcher &dispatcher = row.dispatcher();
    result.low = LatencyStats::from(
        dispatcher.latencySeconds(workload::Priority::Low));
    result.high = LatencyStats::from(
        dispatcher.latencySeconds(workload::Priority::High));
    result.lowThroughput =
        dispatcher.throughput(workload::Priority::Low);
    result.highThroughput =
        dispatcher.throughput(workload::Priority::High);
    result.lowArrivals = dispatcher.arrivals(workload::Priority::Low);
    result.highArrivals = dispatcher.arrivals(workload::Priority::High);
    result.lowCompletions =
        dispatcher.completions(workload::Priority::Low);
    result.highCompletions =
        dispatcher.completions(workload::Priority::High);
    for (const sim::Sampler &sampler : dispatcher.latencyByWorkload())
        result.byWorkload.push_back(LatencyStats::from(sampler));

    result.energyKwh = energy.kilowattHours();
    std::uint64_t completions =
        result.lowCompletions + result.highCompletions;
    if (completions > 0) {
        result.energyPerRequestKj = energy.joules() / 1000.0 /
            static_cast<double>(completions);
    }

    if (utilization.count() > 0) {
        result.maxUtilization = utilization.max();
        result.meanUtilization = utilization.mean();
    }
    if (manager) {
        result.powerBrakeEvents = manager->powerBrakeEvents();
        result.capCommands = manager->capCommands();
        result.uncapCommands = manager->uncapCommands();
        result.reissuedCommands = manager->reissuedCommands();
        result.lpLockedTicks =
            manager->lockedTicks(workload::Priority::Low);
        result.hpLockedTicks =
            manager->lockedTicks(workload::Priority::High);
        result.failSafeEntries = manager->failSafeEntries();
        result.failSafeTicks = manager->failSafeTicks();
        result.flaggedChannels = manager->flaggedChannels();
        result.controllerCrashes = manager->controllerCrashes();
        result.controllerRecoveries = manager->controllerRecoveries();
        result.controllerDownTicks = manager->controllerDownTicks();
        result.mttrTotalTicks = manager->mttrTotalTicks();
        result.mttrMaxTicks = manager->mttrMaxTicks();
        result.timeToFailSafeMaxTicks =
            manager->timeToFailSafeMaxTicks();
        result.capsHeldStaleTicks = manager->capsHeldStaleTicks();
        result.staleTicks = manager->staleTicks();
        result.brakeTicks = manager->brakeTicks();
        result.modeTransitions = manager->modeTransitions();
    }
    if (safety)
        result.violations = safety->violations();
    if (breaker) {
        result.breakerTrips = breaker->trips();
        result.breakerNearTrips = breaker->nearTrips();
        result.firstBreakerTrip = breaker->firstTripTime();
        result.ticksAboveProvisioned = breaker->ticksAboveProvisioned();
        result.overdrawWattSeconds = breaker->overdrawWattSeconds();
        result.longestOverLimitStreak =
            breaker->longestOverLimitStreak();
    }
    result.droppedReadings = row.rowManager().droppedReadings();
    if (injector) {
        result.corruptedReadings = injector->corruptedReadings();
        result.crashesInjected = injector->crashesInjected();
    }
    for (cluster::InferenceServer *server : row.servers())
        result.droppedRequests += server->droppedRequests();

    if (config.recordRowSeries)
        result.rowPowerSeries = row.rowManager().series();
    return result;
}

} // namespace

void
validateWarmupConfig(const ExperimentConfig &config)
{
    if (config.warmup < 0)
        sim::fatal("experiment.warmup ", config.warmup,
                   " is negative");
    if (config.resumeFrom && config.warmup <= 0) {
        sim::fatal("resumeFrom requires a positive warmup (the "
                   "snapshot's boundary time)");
    }
    if (config.warmup == 0)
        return;
    if (config.warmup >= config.duration) {
        sim::fatal("experiment.warmup ",
                   sim::ticksToSeconds(config.warmup),
                   " s must end before the run's duration ",
                   sim::ticksToSeconds(config.duration), " s");
    }
    if (config.chaos.enabled) {
        sim::fatal("chaos generation cannot be combined with a "
                   "warmup boundary: generated faults may land "
                   "before t=warmup, where no injector exists");
    }
    // Event-posting faults are scheduled by the injector when it
    // starts at t=warmup; an entry before the boundary would post
    // into the past.  Window faults (blackouts, sensor corruption)
    // are pure time filters and may span the boundary.
    for (const faults::OobOutage &outage : config.faultPlan.oobOutages) {
        if (outage.start < config.warmup) {
            sim::fatal("OOB outage at ",
                       sim::ticksToSeconds(outage.start),
                       " s starts before the warmup boundary at ",
                       sim::ticksToSeconds(config.warmup), " s");
        }
    }
    for (const faults::ServerCrash &crash : config.faultPlan.crashes) {
        if (crash.at < config.warmup) {
            sim::fatal("server crash at ",
                       sim::ticksToSeconds(crash.at),
                       " s starts before the warmup boundary at ",
                       sim::ticksToSeconds(config.warmup), " s");
        }
    }
    for (const faults::ControllerCrash &crash :
         config.faultPlan.controllerCrashes) {
        if (crash.at < config.warmup) {
            sim::fatal("controller crash at ",
                       sim::ticksToSeconds(crash.at),
                       " s starts before the warmup boundary at ",
                       sim::ticksToSeconds(config.warmup), " s");
        }
    }
}

ExperimentResult
runOversubExperiment(const ExperimentConfig &config)
{
    if (config.topology.enabled)
        return runSiteExperiment(config);
    validateWarmupConfig(config);

    RowWorld world(config);
    const WarmupSnapshot *resume = config.resumeFrom.get();
    buildRowWorld(world, /*deferControl=*/config.warmup > 0, resume);

    auto wallStart = std::chrono::steady_clock::now();
    if (config.warmup > 0) {
        if (resume) {
            restoreRowWorld(world, *resume);
        } else {
            world.sim.runUntil(config.warmup);
            if (config.onWarmupSnapshot) {
                config.onWarmupSnapshot(
                    std::make_shared<const WarmupSnapshot>(
                        captureRowSnapshot(world)));
            }
        }
        startRowControlPlane(world);
    }
    world.sim.runUntil(config.duration);
    return finishRowRun(world, wallStart);
}

NormalizedLatency
normalizeLatency(const LatencyStats &value, const LatencyStats &baseline)
{
    NormalizedLatency out;
    if (baseline.count == 0 || value.count == 0)
        return out;
    out.p50 = value.p50 / baseline.p50;
    out.p99 = value.p99 / baseline.p99;
    out.max = value.max / baseline.max;
    return out;
}

bool
meetsSlos(const NormalizedLatency &low, const NormalizedLatency &high,
          std::uint64_t powerBrakeEvents, const workload::SloSpec &slos)
{
    return low.p50 <= slos.lpP50Limit && low.p99 <= slos.lpP99Limit &&
        high.p50 <= slos.hpP50Limit && high.p99 <= slos.hpP99Limit &&
        powerBrakeEvents <=
            static_cast<std::uint64_t>(slos.maxPowerBrakes);
}

} // namespace polca::core
