/**
 * @file
 * Execution of a list of resolved experiment configurations — the
 * execution half of the scenario layer's sweep expansion
 * (config/scenario.hh), but usable with any hand-built config list.
 *
 * Each point runs the managed experiment, optionally its unthrottled
 * baseline (for the paper's normalized-latency y-axes), and — when an
 * artifact directory is set — writes one metrics CSV per point plus a
 * combined summary CSV.  summaryTable() renders the cross-point
 * comparison the CLI prints after a sweep.
 *
 * With SweepOptions::jobs > 1 the points — and each point's
 * managed/baseline pair — execute concurrently on a core::ThreadPool.
 * Results are stitched back in point order on the calling thread, so
 * every artifact (per-point metrics CSVs, summary.csv) and the
 * results() vector are byte-identical to a jobs = 1 run; only
 * wall-clock time and the interleaving of log lines differ.  Each
 * point simulates in its own Simulation/EventQueue with its own
 * observability sink, so tasks share no mutable state.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hh"
#include "core/oversub_experiment.hh"
#include "obs/manifest.hh"
#include "obs/observability.hh"

namespace polca::core {

/** One experiment to run, with a display/artifact label. */
struct SweepPoint
{
    /** "seed=1,policy.preset=polca" style; may be empty for a
     *  single-point run. */
    std::string label;

    ExperimentConfig config;
};

struct SweepOptions
{
    /** Directory for per-point metrics CSVs and summary.csv; empty
     *  writes no artifacts. */
    std::string artifactDir;

    /** Also run the unthrottled baseline per point and normalize
     *  latencies against it. */
    bool runBaseline = true;

    /** Print a one-line progress note per point. */
    bool echoProgress = true;

    /** Worker threads for point execution; 1 = run in order on the
     *  calling thread, N > 1 = run points (and managed/baseline
     *  pairs) concurrently with deterministic stitching. */
    int jobs = 1;

    /**
     * Write a manifest.json into the artifact directory after the
     * sweep (inventory filled in from the artifacts actually
     * written).  Callers pre-populate `manifest` with provenance
     * (command, scenario path, config digest, seed, duration);
     * ignored when no artifact directory is set.
     */
    bool writeManifest = false;
    obs::RunManifest manifest;
};

/** Everything one executed sweep point produced. */
struct SweepPointResult
{
    std::string label;
    ExperimentResult result;

    /** Valid only when SweepOptions::runBaseline. */
    ExperimentResult baseline;
    NormalizedLatency lowNorm;
    NormalizedLatency highNorm;

    /** Metrics CSV path, empty when no artifact directory was set. */
    std::string artifactPath;
};

class SweepRunner
{
  public:
    SweepRunner(std::vector<SweepPoint> points, SweepOptions options);

    /** Execute every point; idempotent (reruns replace the previous
     *  results). */
    const std::vector<SweepPointResult> &run();

    const std::vector<SweepPointResult> &results() const
    {
        return results_;
    }

    /** Cross-point comparison of the headline metrics. */
    analysis::Table summaryTable() const;

    /** Label -> filesystem-safe artifact stem ("seed=1,x" ->
     *  "seed-1_x"); "point-<i>" for empty labels. */
    static std::string artifactStem(const std::string &label,
                                    std::size_t index);

  private:
    /** Run point @p index's managed experiment into results_[index],
     *  attaching @p fallbackObs when the point has no sink of its
     *  own and artifacts are wanted.  @return the effective sink (for
     *  the artifact dump), or null. */
    obs::Observability *runManaged(std::size_t index,
                                   obs::Observability *fallbackObs);

    /** Run point @p index's unthrottled baseline into
     *  results_[index].baseline. */
    void runBaseline(std::size_t index);

    /** Normalize latencies and write the per-point artifact CSV. */
    void finishPoint(std::size_t index, obs::Observability *sink);

    void runSequential();
    void runParallel(int jobs);
    void writeSummary();

    std::vector<SweepPoint> points_;
    SweepOptions options_;
    std::vector<SweepPointResult> results_;

    /** File names (relative to the artifact dir) written this run,
     *  in emission order; feeds the manifest inventory. */
    std::vector<std::string> artifacts_;
};

} // namespace polca::core

