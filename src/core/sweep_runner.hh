/**
 * @file
 * Execution of a list of resolved experiment configurations — the
 * execution half of the scenario layer's sweep expansion
 * (config/scenario.hh), but usable with any hand-built config list.
 *
 * Each point runs the managed experiment, optionally its unthrottled
 * baseline (for the paper's normalized-latency y-axes), and — when an
 * artifact directory is set — writes one metrics CSV per point plus a
 * combined summary CSV.  summaryTable() renders the cross-point
 * comparison the CLI prints after a sweep.
 *
 * With SweepOptions::jobs > 1 the points — and each point's
 * managed/baseline pair — execute concurrently on a core::ThreadPool.
 * Results are stitched back in point order on the calling thread, so
 * every artifact (per-point metrics CSVs, summary.csv) and the
 * results() vector are byte-identical to a jobs = 1 run; only
 * wall-clock time and the interleaving of log lines differ.  Each
 * point simulates in its own Simulation/EventQueue with its own
 * observability sink, so tasks share no mutable state.
 *
 * With SweepOptions::branch (the default) and warmup > 0, points
 * sharing a warmup prefix (SweepPoint::warmupKey) simulate the prefix
 * once: the group leader runs its warmup live, captures a
 * core::WarmupSnapshot at the boundary, and every other member — and
 * every baseline, including the leader's — forks from the immutable
 * in-memory snapshot instead of re-simulating [0, warmup).  Branched
 * runs are bit-exact continuations, so all artifacts stay
 * byte-identical to a branch = false sweep.
 */

#pragma once

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hh"
#include "core/oversub_experiment.hh"
#include "obs/manifest.hh"
#include "obs/observability.hh"

namespace polca::core {

struct WarmupSnapshot;

/** One experiment to run, with a display/artifact label. */
struct SweepPoint
{
    /** "seed=1,policy.preset=polca" style; may be empty for a
     *  single-point run. */
    std::string label;

    ExperimentConfig config;

    /**
     * Grouping key for checkpoint/branch execution: points with the
     * same non-empty key and config.warmup > 0 share a bit-identical
     * physical trajectory up to t = warmup (config::warmupDigest
     * fills this from the resolved dump with the control-plane
     * sections filtered out).  The runner simulates the warmup once
     * per distinct key and forks every member — and every baseline —
     * from the in-memory snapshot.  Empty key: the point still
     * branches its own baseline off its managed warmup when
     * warmup > 0, but shares nothing with other points.
     */
    std::string warmupKey;
};

struct SweepOptions
{
    /** Directory for per-point metrics CSVs and summary.csv; empty
     *  writes no artifacts. */
    std::string artifactDir;

    /** Also run the unthrottled baseline per point and normalize
     *  latencies against it. */
    bool runBaseline = true;

    /** Print a one-line progress note per point. */
    bool echoProgress = true;

    /** Worker threads for point execution; 1 = run in order on the
     *  calling thread, N > 1 = run points (and managed/baseline
     *  pairs) concurrently with deterministic stitching. */
    int jobs = 1;

    /**
     * Checkpoint/branch execution: for points with warmup > 0,
     * simulate each distinct warmup prefix (SweepPoint::warmupKey)
     * once and fork every dependent run from the captured snapshot
     * instead of re-simulating from t = 0.  Branched runs produce
     * byte-identical artifacts to from-scratch runs; false forces
     * every run to simulate its own warmup.
     */
    bool branch = true;

    /**
     * Write a manifest.json into the artifact directory after the
     * sweep (inventory filled in from the artifacts actually
     * written).  Callers pre-populate `manifest` with provenance
     * (command, scenario path, config digest, seed, duration);
     * ignored when no artifact directory is set.
     */
    bool writeManifest = false;
    obs::RunManifest manifest;
};

/** Everything one executed sweep point produced. */
struct SweepPointResult
{
    std::string label;
    ExperimentResult result;

    /** Valid only when SweepOptions::runBaseline. */
    ExperimentResult baseline;
    NormalizedLatency lowNorm;
    NormalizedLatency highNorm;

    /** Metrics CSV path, empty when no artifact directory was set. */
    std::string artifactPath;
};

class SweepRunner
{
  public:
    SweepRunner(std::vector<SweepPoint> points, SweepOptions options);

    /** Execute every point; idempotent (reruns replace the previous
     *  results). */
    const std::vector<SweepPointResult> &run();

    const std::vector<SweepPointResult> &results() const
    {
        return results_;
    }

    /** Cross-point comparison of the headline metrics. */
    analysis::Table summaryTable() const;

    /** Label -> filesystem-safe artifact stem ("seed=1,x" ->
     *  "seed-1_x"); "point-<i>" for empty labels. */
    static std::string artifactStem(const std::string &label,
                                    std::size_t index);

  private:
    /** Run point @p index's managed experiment into results_[index],
     *  attaching @p fallbackObs when the point has no sink of its
     *  own and artifacts are wanted.  @return the effective sink (for
     *  the artifact dump), or null. */
    obs::Observability *runManaged(std::size_t index,
                                   obs::Observability *fallbackObs);

    /** Run point @p index's unthrottled baseline into
     *  results_[index].baseline. */
    void runBaseline(std::size_t index);

    /** Normalize latencies and write the per-point artifact CSV. */
    void finishPoint(std::size_t index, obs::Observability *sink);

    void runSequential();
    void runParallel(int jobs);
    void writeSummary();

    /**
     * Group points for checkpoint/branch execution (fills group_,
     * groupLeader_, groupPromises_, groupSnapshots_).  Points with
     * warmup > 0 and the same non-empty warmupKey share one group; a
     * point with an empty key forms a group of its own (its baseline
     * still branches off its managed warmup).  The group leader —
     * the lowest point index — runs its managed warmup live and
     * fulfills the group's snapshot promise; every other run of the
     * group blocks on the shared future and resumes from the
     * snapshot.  Fails fast (sim::fatal) on configs whose fault plan
     * cannot honor a warmup boundary.
     */
    void planBranches();

    std::vector<SweepPoint> points_;
    SweepOptions options_;
    std::vector<SweepPointResult> results_;

    /** Per-point group id, -1 = unbranched (warmup == 0 or branching
     *  disabled). */
    std::vector<int> group_;

    /** Per-group leader point index. */
    std::vector<std::size_t> groupLeader_;

    /** Per-group snapshot hand-off: the leader's managed run sets the
     *  promise at its warmup boundary; dependents wait on the shared
     *  future.  The snapshot itself is immutable, so any number of
     *  branches may fork from it concurrently. */
    std::vector<std::promise<std::shared_ptr<const WarmupSnapshot>>>
        groupPromises_;
    std::vector<
        std::shared_future<std::shared_ptr<const WarmupSnapshot>>>
        groupSnapshots_;

    /** File names (relative to the artifact dir) written this run,
     *  in emission order; feeds the manifest inventory. */
    std::vector<std::string> artifacts_;
};

} // namespace polca::core

