/**
 * @file
 * Back-to-back execution of a list of resolved experiment
 * configurations — the execution half of the scenario layer's sweep
 * expansion (config/scenario.hh), but usable with any hand-built
 * config list.
 *
 * Each point runs the managed experiment, optionally its unthrottled
 * baseline (for the paper's normalized-latency y-axes), and — when an
 * artifact directory is set — writes one metrics CSV per point plus a
 * combined summary CSV.  summaryTable() renders the cross-point
 * comparison the CLI prints after a sweep.
 */

#ifndef POLCA_CORE_SWEEP_RUNNER_HH
#define POLCA_CORE_SWEEP_RUNNER_HH

#include <string>
#include <vector>

#include "analysis/table.hh"
#include "core/oversub_experiment.hh"

namespace polca::core {

/** One experiment to run, with a display/artifact label. */
struct SweepPoint
{
    /** "seed=1,policy.preset=polca" style; may be empty for a
     *  single-point run. */
    std::string label;

    ExperimentConfig config;
};

struct SweepOptions
{
    /** Directory for per-point metrics CSVs and summary.csv; empty
     *  writes no artifacts. */
    std::string artifactDir;

    /** Also run the unthrottled baseline per point and normalize
     *  latencies against it. */
    bool runBaseline = true;

    /** Print a one-line progress note per point. */
    bool echoProgress = true;
};

/** Everything one executed sweep point produced. */
struct SweepPointResult
{
    std::string label;
    ExperimentResult result;

    /** Valid only when SweepOptions::runBaseline. */
    ExperimentResult baseline;
    NormalizedLatency lowNorm;
    NormalizedLatency highNorm;

    /** Metrics CSV path, empty when no artifact directory was set. */
    std::string artifactPath;
};

class SweepRunner
{
  public:
    SweepRunner(std::vector<SweepPoint> points, SweepOptions options);

    /** Execute every point in order; idempotent (reruns replace the
     *  previous results). */
    const std::vector<SweepPointResult> &run();

    const std::vector<SweepPointResult> &results() const
    {
        return results_;
    }

    /** Cross-point comparison of the headline metrics. */
    analysis::Table summaryTable() const;

    /** Label -> filesystem-safe artifact stem ("seed=1,x" ->
     *  "seed-1_x"); "point-<i>" for empty labels. */
    static std::string artifactStem(const std::string &label,
                                    std::size_t index);

  private:
    std::vector<SweepPoint> points_;
    SweepOptions options_;
    std::vector<SweepPointResult> results_;
};

} // namespace polca::core

#endif // POLCA_CORE_SWEEP_RUNNER_HH
