#include "core/workload_aware.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace polca::core {

double
frequencyForSlowdown(const llm::ModelSpec &model,
                     const power::GpuSpec &gpu, double targetSlowdown)
{
    if (targetSlowdown <= 0.0)
        sim::fatal("frequencyForSlowdown: non-positive target");

    double cf = model.tokenComputeBoundFraction;
    if (cf <= 0.0)
        return gpu.minSmClockMhz;  // clock-insensitive: floor it

    double f = gpu.maxSmClockMhz * cf / (cf + targetSlowdown);
    return std::clamp(f, gpu.minSmClockMhz, gpu.maxSmClockMhz);
}

PolicyConfig
workloadAwarePolicy(const llm::ModelSpec &model,
                    const power::GpuSpec &gpu,
                    const SlowdownTargets &targets, double t1,
                    double t2)
{
    constexpr double hysteresisGap = 0.05;

    PolicyConfig config;
    config.name = "POLCA-workload-aware(" + model.name + ")";
    config.rules = {
        {"T1", workload::Priority::Low, t1, t1 - hysteresisGap,
         frequencyForSlowdown(model, gpu, targets.t1LowPriority)},
        {"T2-LP", workload::Priority::Low, t2, t2 - hysteresisGap,
         frequencyForSlowdown(model, gpu, targets.t2LowPriority)},
        {"T2-HP", workload::Priority::High, t2, t2 - hysteresisGap,
         frequencyForSlowdown(model, gpu, targets.t2HighPriority)},
    };

    // The escalation invariant: T2's LP lock must be at least as
    // deep as T1's (deeper caps win in the manager anyway, but keep
    // the policy self-consistent).
    if (config.rules[1].lockMhz > config.rules[0].lockMhz)
        config.rules[1].lockMhz = config.rules[0].lockMhz;

    config.validate();
    return config;
}

} // namespace polca::core
