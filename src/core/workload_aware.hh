/**
 * @file
 * Workload-aware policy construction (Section 6.7): instead of the
 * fixed A100 frequencies of Table 5, derive each threshold's lock
 * frequency from the served model's measured clock sensitivity so
 * that the capping stage costs a *chosen* slowdown.  Models with
 * memory-bound token phases (GPT-NeoX) can be capped far deeper than
 * BLOOM for the same SLO cost, reclaiming more power.
 */

#pragma once

#include "core/policy.hh"
#include "llm/model_spec.hh"
#include "power/gpu_spec.hh"

namespace polca::core {

/** Target token-phase slowdowns for each capping stage. */
struct SlowdownTargets
{
    double t1LowPriority = 0.03;   ///< T1: LP pays <= 3 %
    double t2LowPriority = 0.08;   ///< T2: LP pays <= 8 %
    double t2HighPriority = 0.02;  ///< T2: HP pays <= 2 %
};

/**
 * Lock frequency whose token-phase slowdown for @p model equals
 * @p targetSlowdown, clamped to the GPU's legal range.
 *
 * Inverts slowdown = cf * (fmax / f - 1):
 *   f = fmax * cf / (cf + target).
 * A clock-insensitive model (cf -> 0) maps to the minimum clock —
 * capping it is nearly free.
 */
double frequencyForSlowdown(const llm::ModelSpec &model,
                            const power::GpuSpec &gpu,
                            double targetSlowdown);

/**
 * POLCA with model-derived lock frequencies (thresholds and
 * hysteresis unchanged from the paper's 80/89 configuration).
 */
PolicyConfig workloadAwarePolicy(
    const llm::ModelSpec &model,
    const power::GpuSpec &gpu = power::GpuSpec::a100_80gb(),
    const SlowdownTargets &targets = SlowdownTargets(),
    double t1 = 0.80, double t2 = 0.89);

} // namespace polca::core

