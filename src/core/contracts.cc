#include "core/contracts.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"

namespace polca::core {

namespace {

/** Print the report and abort, gem5-panic style. */
void
abortingHandler(const ContractViolation &violation)
{
    std::fprintf(stderr, "%s\n", violation.report().c_str());
    std::fflush(stderr);
    std::abort();
}

/** Atomic so a handler swap on one thread never tears a concurrent
 *  failure report on another (parallel sweep workers). */
std::atomic<ContractFailureHandler> currentHandler{&abortingHandler};

} // namespace

std::string
ContractViolation::report() const
{
    std::ostringstream oss;
    oss << kind << " failed: " << condition;
    if (!message.empty())
        oss << " (" << message << ")";
    oss << " at " << file << ":" << line << " in " << function;
    return sim::withSimTimePrefix(oss.str());
}

ContractFailureHandler
setContractFailureHandler(ContractFailureHandler handler)
{
    if (!handler)
        handler = &abortingHandler;
    return currentHandler.exchange(handler);
}

void
throwingContractHandler(const ContractViolation &violation)
{
    throw ContractError(violation);
}

void
contractFail(const char *kind, const char *condition, const char *file,
             int line, const char *function, std::string message)
{
    ContractViolation violation{kind, condition, file, line, function,
                                std::move(message)};
    currentHandler.load()(violation);
    // A handler must abort or throw; returning would let the caller
    // run on with a violated invariant.
    std::abort();
}

} // namespace polca::core
