/**
 * @file
 * The experiment-level snapshot taken at a run's warmup boundary.
 *
 * A sweep whose points differ only in control-plane configuration
 * (policy, manager, safety, faults) shares one physical trajectory
 * until the control plane starts at t = warmup: same seed, same
 * trace, same unmanaged power draw.  The harness simulates that
 * prefix once, captures every stateful component through its
 * Snapshottable save/restore protocol (sim/snapshot.hh), and forks
 * each sweep point — and each point's unthrottled baseline — from
 * the in-memory snapshot instead of re-simulating the prefix.
 *
 * A WarmupSnapshot deliberately contains only the *physical* world:
 * servers, dispatchers, telemetry, energy/breaker accounting, and
 * the observability values accumulated so far.  Control-plane
 * components (PowerManager, FaultInjector, SafetyMonitor) are never
 * captured because they do not exist before the boundary — in every
 * warmup run, fresh or branched, they are constructed and started
 * at t = warmup.  That construction-at-the-boundary rule is what
 * makes a branched run bit-identical to a fresh one.
 *
 * Snapshots are immutable once captured (always held as
 * shared_ptr<const WarmupSnapshot>), so any number of branches can
 * restore from one snapshot concurrently.
 */

#pragma once

#include <memory>
#include <vector>

#include "cluster/dispatcher.hh"
#include "cluster/inference_server.hh"
#include "obs/interval_stats.hh"
#include "obs/metrics.hh"
#include "sim/simulation.hh"
#include "sim/snapshot.hh"
#include "sim/stats.hh"
#include "telemetry/breaker_model.hh"
#include "telemetry/domain_manager.hh"
#include "telemetry/energy_meter.hh"
#include "workload/trace.hh"

namespace polca::core {

/**
 * Everything needed to resume a run from its warmup boundary.
 * Captured by the flat-row and site harnesses; field vectors are
 * ordered deterministically so a rebuilt world can zip itself back
 * together without names:
 *
 *  - `servers`: construction order (flat row) / pre-order over the
 *    site tree's server leaves — both equal what servers() returns.
 *  - `dispatchers`: the single row dispatcher, or site rows in
 *    Site::rows() order.
 *  - `domainManagers`/`breakers`: the flat row manager/breaker, or
 *    pre-order over non-leaf tree domains that own one.
 *  - `domainWatts`: site-mode per-domain telemetry accumulators, in
 *    the same pre-order over manager-owning domains.
 */
struct WarmupSnapshot
{
    /** Boundary time; a branch must be configured with the same
     *  `experiment.warmup`. */
    sim::Tick warmup = 0;

    /** Whether the captured run had an Observability sink attached.
     *  A branch with a sink can only fork from an observed snapshot
     *  (the warmup's metric values must exist to be restored). */
    bool hasObs = false;

    /** Event-queue counters at the boundary (sim substrate). */
    sim::Snapshot simState;

    /** Shared ownership of the generated trace(s), so branches skip
     *  regeneration.  `trace` is null when the run fed an external
     *  trace (the branch config carries the same pointer). */
    std::shared_ptr<const workload::Trace> trace;
    std::shared_ptr<const std::vector<workload::Trace>> traces;

    std::vector<cluster::Dispatcher::State> dispatchers;
    std::vector<cluster::InferenceServer::State> servers;
    std::vector<telemetry::DomainManager::State> domainManagers;
    std::vector<telemetry::BreakerModel::State> breakers;
    telemetry::EnergyMeter::State energy;

    /** Harness-local utilization accumulator (row or site scope). */
    sim::Accumulator utilization;

    /** Site-mode per-domain watts accumulators (see ordering note). */
    std::vector<sim::Accumulator> domainWatts;

    /** @name Observability values (populated when hasObs) */
    /** @{ */
    obs::MetricsRegistry::Values metrics;
    obs::IntervalStats intervalStats;
    sim::Simulation::PeriodicTask::State statsTask;
    /** @} */
};

} // namespace polca::core
