/**
 * @file
 * Run-directory artifact emission for single-point runs: given a
 * finished experiment, lay down the canonical artifact set
 * `polcactl report` consumes —
 *
 *   manifest.json       provenance (scenario, config digest, seed,
 *                       jobs, duration, tool version) + inventory
 *   resolved.toml       the fully-resolved scenario with provenance
 *   result.csv          key,value rows of every headline metric
 *   violations.csv      safety-monitor breaches (when armed)
 *   metrics.csv         cumulative registry dump (when observed)
 *   stats_interval.csv  interval snapshots (when cadence was set)
 *   domains.csv         per-level tree rollup (site mode)
 *   site_power.csv      compositional site + per-row power trace
 *                       (site mode, when recording series)
 *
 * Everything is derived from the run's deterministic state; no
 * wall-clock values are written, so same-seed runs produce
 * byte-identical directories.
 */

#pragma once

#include <string>

#include "core/oversub_experiment.hh"
#include "obs/observability.hh"

namespace polca::core {

/** What to write and the provenance to stamp on it. */
struct RunDirOptions
{
    /** Output directory; created if missing. */
    std::string dir;

    /** Scenario file path as given on the command line (may be
     *  empty for defaults-only runs). */
    std::string scenarioPath;

    /** Manifest "command" field ("run", "chaos", ...). */
    std::string command = "run";

    /** Fully-resolved scenario text (config::dumpResolved); hashed
     *  into the manifest's config digest and written verbatim as
     *  resolved.toml.  May be empty (digest of ""). */
    std::string resolvedConfig;

    int jobs = 1;
};

/**
 * Write the artifact set for one finished run.  @p obs may be null
 * (metrics.csv / stats_interval.csv are skipped).  @return the list
 * of file names written (manifest.json first), empty on I/O failure.
 */
std::vector<std::string> writeRunDir(const RunDirOptions &options,
                                     const ExperimentConfig &config,
                                     const ExperimentResult &result,
                                     const NormalizedLatency &lowNorm,
                                     const NormalizedLatency &highNorm,
                                     const obs::Observability *obs);

} // namespace polca::core
