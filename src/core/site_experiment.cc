#include "core/site_experiment.hh"

#include <algorithm>
#include <chrono>
#include <map>

#include "llm/phase_model.hh"
#include "sim/logging.hh"
#include "telemetry/energy_meter.hh"
#include "workload/trace_gen.hh"

namespace polca::core {

namespace {

/** Same safety-limit derivation as the flat-row harness, scoped to
 *  one row's budget and breaker. */
SafetyMonitor::Limits
rowSafetyLimits(const ExperimentConfig &config, double budgetWatts,
                double breakerLimitWatts)
{
    SafetyMonitor::Limits limits;
    limits.provisionedWatts = budgetWatts;
    limits.breakerLimitWatts = breakerLimitWatts > 0.0
        ? breakerLimitWatts
        : budgetWatts / 0.8;
    limits.breakerGrace = config.topology.breakerTripDuration;
    limits.failSafeDeadline =
        config.manager.watchdogTimeout + config.safety.failSafeMargin;
    limits.capReleaseDeadline = config.safety.capReleaseDeadline;
    limits.maxBrakeTimeFraction = config.safety.maxBrakeTimeFraction;
    limits.checkInterval = config.safety.checkInterval;
    limits.quietUtilization = config.policy.powerBrakeEnabled
        ? config.policy.powerBrakeReleaseFraction
        : 1.0;
    for (const ThresholdRule &rule : config.policy.rules) {
        limits.quietUtilization =
            std::min(limits.quietUtilization, rule.uncapFraction);
        if (limits.capFloorMhz == 0.0 ||
            rule.lockMhz < limits.capFloorMhz)
            limits.capFloorMhz = rule.lockMhz;
    }
    return limits;
}

} // namespace

ExperimentResult
runSiteExperiment(const ExperimentConfig &config)
{
    if (config.externalTrace)
        sim::fatal("site mode does not support external traces");
    if (!config.faultPlan.empty() || config.chaos.enabled)
        sim::fatal("site mode does not support fault/chaos injection");

    sim::Simulation sim(config.seed);

    cluster::TopologyConfig topology = config.topology;
    topology.recordSeries =
        config.topology.recordSeries || config.recordRowSeries;
    cluster::Site site(sim, topology, config.row,
                       sim.rng().fork(0xA110));

    if (config.powerScaleFactor != 1.0) {
        for (cluster::InferenceServer *server : site.root().servers())
            server->setPowerScaleFactor(config.powerScaleFactor);
    }

    // Per-domain telemetry statistics, fed by manager listeners.
    std::map<const cluster::PowerDomain *, sim::Accumulator> wattsAcc;
    site.root().visit([&wattsAcc](cluster::PowerDomain &domain) {
        telemetry::DomainManager *manager = domain.manager();
        if (!manager)
            return;
        sim::Accumulator &acc = wattsAcc[&domain];
        manager->addListener(
            [&acc](sim::Tick, double watts) { acc.add(watts); });
    });

    obs::Observability *obs = config.obs;
    if (obs) {
        // The site root doubles as "the row" for the flat telemetry
        // namespace, so dashboards (and the report timeline) read
        // the site rollup from telemetry.latest_row_watts.
        site.root().manager()->attachObservability(obs);
        site.root().visit([obs](cluster::PowerDomain &domain) {
            if (domain.isLeaf())
                return;
            if (domain.manager())
                domain.manager()->attachDomainObservability(
                    obs, domain.path());
            if (domain.breaker())
                domain.breaker()->attachObservability(
                    obs, domain.path() + ".breaker");
        });
        for (cluster::Site::SiteRow &row : site.rows())
            row.dispatcher->attachObservability(obs);
        for (cluster::InferenceServer *server : site.root().servers())
            server->attachObservability(obs);
        obs->metrics
            .gauge("sim.events_processed", "event callbacks executed")
            .setSource([&sim] {
                return static_cast<double>(sim.queue().numProcessed());
            });
        obs->metrics
            .gauge("sim.queue_high_water",
                   "most events pending at once")
            .setSource([&sim] {
                return static_cast<double>(
                    sim.queue().highWaterMark());
            });
        obs->metrics
            .gauge("sim.final_time_s", "simulated time at run end")
            .setSource(
                [&sim] { return sim::ticksToSeconds(sim.now()); });
    }

    // One trace per row, keyed by row *name* (forkPath of the trace
    // master seed), so a row's offered load is invariant to the rest
    // of the site layout.
    sim::Rng traceMaster(config.seed ^ 0x7ace);
    std::vector<workload::Trace> traces;
    traces.reserve(site.rows().size());
    for (cluster::Site::SiteRow &row : site.rows()) {
        workload::TraceGenerator generator(config.mix);
        llm::PhaseModel phases(row.model);
        workload::TraceGenOptions traceOptions;
        traceOptions.duration = config.duration;
        traceOptions.numServers = row.domain->numServers();
        traceOptions.serviceSecondsPerRequest =
            generator.expectedServiceSeconds(phases);
        traceOptions.diurnal = config.diurnal;
        traceOptions.seed = traceMaster.forkPath(row.name).seed();
        traces.push_back(generator.generate(traceOptions));
    }

    telemetry::EnergyMeter energy(
        sim, [&site] { return site.root().powerWatts(); });
    energy.start();

    // Site utilization against the site budget, from the root
    // manager's delivered readings (mirrors the flat-row harness).
    sim::Accumulator utilization;
    double siteBudget = site.root().budgetWatts();
    site.root().manager()->addListener(
        [&utilization, siteBudget](sim::Tick, double watts) {
            utilization.add(watts / siteBudget);
        });

    // One POLCA manager per row, capping against the row's
    // *effective* budget: the row budget shrunk by any tighter
    // ancestor budget shared out pro rata (parent-budget awareness).
    std::vector<std::unique_ptr<PowerManager>> managers;
    if (config.managed && topology.manageRows) {
        for (cluster::Site::SiteRow &row : site.rows()) {
            auto manager = std::make_unique<PowerManager>(
                sim, *row.domain->manager(),
                row.domain->effectiveBudgetWatts(), config.policy,
                row.rng.fork(0x90CA), config.manager);
            if (obs)
                manager->attachObservability(obs);
            for (workload::Priority pool :
                 {workload::Priority::Low, workload::Priority::High}) {
                for (cluster::InferenceServer *server :
                     row.domain->pool(pool))
                    manager->addTarget(pool, server);
            }
            manager->start();
            managers.push_back(std::move(manager));
        }
    }

    std::vector<std::unique_ptr<SafetyMonitor>> monitors;
    if (config.safety.monitor) {
        for (std::size_t i = 0; i < site.rows().size(); ++i) {
            cluster::Site::SiteRow &row = site.rows()[i];
            cluster::PowerDomain *domain = row.domain;
            SafetyMonitor::Limits limits = rowSafetyLimits(
                config, domain->budgetWatts(),
                domain->breaker() ? domain->breaker()->breakerLimitWatts()
                                  : 0.0);
            auto monitor = std::make_unique<SafetyMonitor>(
                sim, limits, [domain] { return domain->powerWatts(); },
                i < managers.size() ? managers[i].get() : nullptr);
            if (obs)
                monitor->attachObservability(obs);
            monitor->attachTelemetry(*domain->manager());
            monitor->start();
            monitors.push_back(std::move(monitor));
        }
    }

    for (std::size_t i = 0; i < site.rows().size(); ++i)
        site.rows()[i].dispatcher->injectTrace(traces[i]);

    std::unique_ptr<sim::Simulation::PeriodicTask> statsTask;
    if (obs && config.obsOptions.metricsInterval > 0) {
        statsTask = sim.every(
            config.obsOptions.metricsInterval, [obs](sim::Tick at) {
                obs->interval.snapshot(sim::ticksToSeconds(at),
                                       obs->metrics);
            });
    }

    auto wallStart = std::chrono::steady_clock::now();
    sim.runUntil(config.duration);
    for (auto &monitor : monitors)
        monitor->finish(config.duration);
    if (statsTask) {
        obs->interval.snapshot(sim::ticksToSeconds(config.duration),
                               obs->metrics);
        statsTask->stop();
    }
    if (obs) {
        double wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wallStart)
                .count();
        obs::Gauge &rate = obs->metrics.gauge(
            "sim.wallclock_events_per_s",
            "event callbacks per wall-clock second (volatile)");
        rate.setVolatile(true);
        rate.set(wallSeconds > 0.0
                     ? static_cast<double>(sim.queue().numProcessed()) /
                           wallSeconds
                     : 0.0);
        obs->metrics.freezeGauges();
    }

    ExperimentResult result;

    // Fleet latency/throughput: merge every row's serving cell.
    sim::Sampler lowAll;
    sim::Sampler highAll;
    std::vector<sim::Sampler> byWorkload;
    for (cluster::Site::SiteRow &row : site.rows()) {
        const cluster::Dispatcher &dispatcher = *row.dispatcher;
        for (double v :
             dispatcher.latencySeconds(workload::Priority::Low).values())
            lowAll.add(v);
        for (double v :
             dispatcher.latencySeconds(workload::Priority::High).values())
            highAll.add(v);
        const std::vector<sim::Sampler> &perClass =
            dispatcher.latencyByWorkload();
        if (byWorkload.size() < perClass.size())
            byWorkload.resize(perClass.size());
        for (std::size_t w = 0; w < perClass.size(); ++w) {
            for (double v : perClass[w].values())
                byWorkload[w].add(v);
        }
        result.lowThroughput +=
            dispatcher.throughput(workload::Priority::Low);
        result.highThroughput +=
            dispatcher.throughput(workload::Priority::High);
        result.lowArrivals +=
            dispatcher.arrivals(workload::Priority::Low);
        result.highArrivals +=
            dispatcher.arrivals(workload::Priority::High);
        result.lowCompletions +=
            dispatcher.completions(workload::Priority::Low);
        result.highCompletions +=
            dispatcher.completions(workload::Priority::High);
    }
    result.low = LatencyStats::from(lowAll);
    result.high = LatencyStats::from(highAll);
    for (const sim::Sampler &sampler : byWorkload)
        result.byWorkload.push_back(LatencyStats::from(sampler));

    result.energyKwh = energy.kilowattHours();
    std::uint64_t completions =
        result.lowCompletions + result.highCompletions;
    if (completions > 0) {
        result.energyPerRequestKj = energy.joules() / 1000.0 /
            static_cast<double>(completions);
    }

    if (utilization.count() > 0) {
        result.maxUtilization = utilization.max();
        result.meanUtilization = utilization.mean();
    }

    for (const auto &manager : managers) {
        result.powerBrakeEvents += manager->powerBrakeEvents();
        result.capCommands += manager->capCommands();
        result.uncapCommands += manager->uncapCommands();
        result.reissuedCommands += manager->reissuedCommands();
        result.lpLockedTicks +=
            manager->lockedTicks(workload::Priority::Low);
        result.hpLockedTicks +=
            manager->lockedTicks(workload::Priority::High);
        result.failSafeEntries += manager->failSafeEntries();
        result.failSafeTicks += manager->failSafeTicks();
        result.flaggedChannels += manager->flaggedChannels();
        result.controllerCrashes += manager->controllerCrashes();
        result.controllerRecoveries += manager->controllerRecoveries();
        result.controllerDownTicks += manager->controllerDownTicks();
        result.mttrTotalTicks += manager->mttrTotalTicks();
        result.mttrMaxTicks =
            std::max(result.mttrMaxTicks, manager->mttrMaxTicks());
        result.timeToFailSafeMaxTicks =
            std::max(result.timeToFailSafeMaxTicks,
                     manager->timeToFailSafeMaxTicks());
        result.capsHeldStaleTicks += manager->capsHeldStaleTicks();
        result.staleTicks += manager->staleTicks();
        result.brakeTicks += manager->brakeTicks();
        result.modeTransitions += manager->modeTransitions();
    }

    for (const auto &monitor : monitors) {
        const std::vector<SafetyViolation> &violations =
            monitor->violations();
        result.violations.insert(result.violations.end(),
                                 violations.begin(), violations.end());
    }

    // The headline breaker columns report the *site* breaker — the
    // upstream protection the whole tree must not trip.
    if (const telemetry::BreakerModel *siteBreaker =
            site.root().breaker()) {
        result.breakerTrips = siteBreaker->trips();
        result.breakerNearTrips = siteBreaker->nearTrips();
        result.firstBreakerTrip = siteBreaker->firstTripTime();
        result.ticksAboveProvisioned =
            siteBreaker->ticksAboveProvisioned();
        result.overdrawWattSeconds =
            siteBreaker->overdrawWattSeconds();
        result.longestOverLimitStreak =
            siteBreaker->longestOverLimitStreak();
    }

    // Per-level rollup, pre-order so the site row leads the table.
    std::map<const cluster::PowerDomain *, std::size_t> rowIndex;
    for (std::size_t i = 0; i < site.rows().size(); ++i)
        rowIndex[site.rows()[i].domain] = i;
    site.root().visit([&](const cluster::PowerDomain &domain) {
        if (domain.isLeaf())
            return;
        DomainStats stats;
        stats.path = domain.path();
        stats.level = cluster::toString(domain.level());
        stats.servers = domain.numServers();
        stats.provisionedWatts = domain.provisionedWatts();
        stats.budgetWatts = domain.budgetWatts();
        auto accIt = wattsAcc.find(&domain);
        if (accIt != wattsAcc.end() && accIt->second.count() > 0) {
            stats.peakWatts = accIt->second.max();
            stats.meanWatts = accIt->second.mean();
        }
        if (const telemetry::BreakerModel *breaker = domain.breaker()) {
            stats.breakerLimitWatts = breaker->breakerLimitWatts();
            stats.breakerTrips = breaker->trips();
            stats.breakerNearTrips = breaker->nearTrips();
            stats.overdrawWattSeconds = breaker->overdrawWattSeconds();
            stats.secondsAboveBudget = sim::ticksToSeconds(
                breaker->ticksAboveProvisioned());
        }
        auto rowIt = rowIndex.find(&domain);
        if (rowIt != rowIndex.end()) {
            std::size_t i = rowIt->second;
            const cluster::Dispatcher &dispatcher =
                *site.rows()[i].dispatcher;
            stats.completions =
                dispatcher.completions(workload::Priority::Low) +
                dispatcher.completions(workload::Priority::High);
            const sim::Sampler &low =
                dispatcher.latencySeconds(workload::Priority::Low);
            const sim::Sampler &high =
                dispatcher.latencySeconds(workload::Priority::High);
            if (!low.empty())
                stats.lowP99 = low.p99();
            if (!high.empty())
                stats.highP99 = high.p99();
            if (i < managers.size()) {
                stats.capCommands = managers[i]->capCommands();
                stats.powerBrakeEvents =
                    managers[i]->powerBrakeEvents();
            }
            if (i < monitors.size()) {
                stats.violations = static_cast<std::uint64_t>(
                    monitors[i]->violations().size());
            }
        }
        result.domains.push_back(std::move(stats));
    });

    site.root().visit([&result](const cluster::PowerDomain &domain) {
        if (domain.manager())
            result.droppedReadings +=
                domain.manager()->droppedReadings();
    });
    for (const cluster::InferenceServer *server :
         static_cast<const cluster::PowerDomain &>(site.root())
             .servers())
        result.droppedRequests += server->droppedRequests();

    if (topology.recordSeries) {
        result.rowPowerSeries = site.root().manager()->series();
        for (const cluster::Site::SiteRow &row : site.rows()) {
            DomainPowerSeries series;
            series.path = row.domain->path();
            series.series = row.domain->manager()->series();
            result.domainPowerSeries.push_back(std::move(series));
        }
    }
    return result;
}

} // namespace polca::core
