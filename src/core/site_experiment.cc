#include "core/site_experiment.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>

#include "core/contracts.hh"
#include "core/warmup_snapshot.hh"
#include "llm/phase_model.hh"
#include "sim/logging.hh"
#include "telemetry/energy_meter.hh"
#include "workload/trace_gen.hh"

namespace polca::core {

namespace {

/** Same safety-limit derivation as the flat-row harness, scoped to
 *  one row's budget and breaker. */
SafetyMonitor::Limits
rowSafetyLimits(const ExperimentConfig &config, double budgetWatts,
                double breakerLimitWatts)
{
    SafetyMonitor::Limits limits;
    limits.provisionedWatts = budgetWatts;
    limits.breakerLimitWatts = breakerLimitWatts > 0.0
        ? breakerLimitWatts
        : budgetWatts / 0.8;
    limits.breakerGrace = config.topology.breakerTripDuration;
    limits.failSafeDeadline =
        config.manager.watchdogTimeout + config.safety.failSafeMargin;
    limits.capReleaseDeadline = config.safety.capReleaseDeadline;
    limits.maxBrakeTimeFraction = config.safety.maxBrakeTimeFraction;
    limits.checkInterval = config.safety.checkInterval;
    limits.quietUtilization = config.policy.powerBrakeEnabled
        ? config.policy.powerBrakeReleaseFraction
        : 1.0;
    for (const ThresholdRule &rule : config.policy.rules) {
        limits.quietUtilization =
            std::min(limits.quietUtilization, rule.uncapFraction);
        if (limits.capFloorMhz == 0.0 ||
            rule.lockMhz < limits.capFloorMhz)
            limits.capFloorMhz = rule.lockMhz;
    }
    return limits;
}

cluster::TopologyConfig
resolvedTopology(const ExperimentConfig &config)
{
    cluster::TopologyConfig topology = config.topology;
    topology.recordSeries =
        config.topology.recordSeries || config.recordRowSeries;
    return topology;
}

/**
 * One site-mode run's live components — the tree-scale sibling of
 * the flat-row RowWorld, with the same build/control-plane/capture/
 * restore split for warmup branching.  A warmup == 0 run assembles
 * everything in the original single-pass order.
 */
struct SiteWorld
{
    explicit SiteWorld(const ExperimentConfig &cfg)
        : config(cfg), sim(cfg.seed), topology(resolvedTopology(cfg)),
          site(sim, topology, cfg.row, sim.rng().fork(0xA110))
    {
    }

    const ExperimentConfig &config;
    sim::Simulation sim;
    cluster::TopologyConfig topology;
    cluster::Site site;
    obs::Observability *obs = nullptr;

    /** Per-domain telemetry statistics, fed by manager listeners.
     *  Keyed by node for the rollup; snapshots enumerate them in
     *  deterministic pre-order instead of pointer order. */
    std::map<const cluster::PowerDomain *, sim::Accumulator> wattsAcc;

    /** One trace per row, Site::rows() order; shared so branches
     *  skip regeneration. */
    std::shared_ptr<const std::vector<workload::Trace>> traces;

    std::unique_ptr<telemetry::EnergyMeter> energy;
    sim::Accumulator utilization;
    std::vector<std::unique_ptr<PowerManager>> managers;
    std::vector<std::unique_ptr<SafetyMonitor>> monitors;
    std::unique_ptr<sim::Simulation::PeriodicTask> statsTask;
};

void
attachSiteObservability(SiteWorld &world)
{
    obs::Observability *obs = world.obs;
    if (!obs)
        return;
    sim::Simulation &sim = world.sim;
    cluster::Site &site = world.site;
    // The site root doubles as "the row" for the flat telemetry
    // namespace, so dashboards (and the report timeline) read
    // the site rollup from telemetry.latest_row_watts.
    site.root().manager()->attachObservability(obs);
    site.root().visit([obs](cluster::PowerDomain &domain) {
        if (domain.isLeaf())
            return;
        if (domain.manager())
            domain.manager()->attachDomainObservability(
                obs, domain.path());
        if (domain.breaker())
            domain.breaker()->attachObservability(
                obs, domain.path() + ".breaker");
    });
    for (cluster::Site::SiteRow &row : site.rows())
        row.dispatcher->attachObservability(obs);
    for (cluster::InferenceServer *server : site.root().servers())
        server->attachObservability(obs);
    obs->metrics
        .gauge("sim.events_processed", "event callbacks executed")
        .setSource([&sim] {
            return static_cast<double>(sim.queue().numProcessed());
        });
    obs->metrics
        .gauge("sim.queue_high_water",
               "most events pending at once")
        .setSource([&sim] {
            return static_cast<double>(
                sim.queue().highWaterMark());
        });
    obs->metrics
        .gauge("sim.final_time_s", "simulated time at run end")
        .setSource(
            [&sim] { return sim::ticksToSeconds(sim.now()); });
}

void
makeSiteTraces(SiteWorld &world, const WarmupSnapshot *resume)
{
    const ExperimentConfig &config = world.config;
    cluster::Site &site = world.site;
    if (resume) {
        POLCA_CHECK(resume->traces,
                    "site warmup snapshot carries no traces");
        POLCA_CHECK(resume->traces->size() == site.rows().size(),
                    "snapshot has ", resume->traces->size(),
                    " traces, site has ", site.rows().size(),
                    " rows");
        world.traces = resume->traces;
        return;
    }
    // One trace per row, keyed by row *name* (forkPath of the trace
    // master seed), so a row's offered load is invariant to the rest
    // of the site layout.
    sim::Rng traceMaster(config.seed ^ 0x7ace);
    auto traces = std::make_shared<std::vector<workload::Trace>>();
    traces->reserve(site.rows().size());
    for (cluster::Site::SiteRow &row : site.rows()) {
        workload::TraceGenerator generator(config.mix);
        llm::PhaseModel phases(row.model);
        workload::TraceGenOptions traceOptions;
        traceOptions.duration = config.duration;
        traceOptions.numServers = row.domain->numServers();
        traceOptions.serviceSecondsPerRequest =
            generator.expectedServiceSeconds(phases);
        traceOptions.diurnal = config.diurnal;
        traceOptions.seed = traceMaster.forkPath(row.name).seed();
        traces->push_back(generator.generate(traceOptions));
    }
    world.traces = std::move(traces);
}

void
buildSiteManagers(SiteWorld &world)
{
    const ExperimentConfig &config = world.config;
    if (!config.managed || !world.topology.manageRows)
        return;
    // One POLCA manager per row, capping against the row's
    // *effective* budget: the row budget shrunk by any tighter
    // ancestor budget shared out pro rata (parent-budget awareness).
    for (cluster::Site::SiteRow &row : world.site.rows()) {
        auto manager = std::make_unique<PowerManager>(
            world.sim, *row.domain->manager(),
            row.domain->effectiveBudgetWatts(), config.policy,
            row.rng.fork(0x90CA), config.manager);
        if (world.obs)
            manager->attachObservability(world.obs);
        for (workload::Priority pool :
             {workload::Priority::Low, workload::Priority::High}) {
            for (cluster::InferenceServer *server :
                 row.domain->pool(pool))
                manager->addTarget(pool, server);
        }
        manager->start();
        world.managers.push_back(std::move(manager));
    }
}

void
buildSiteMonitors(SiteWorld &world)
{
    const ExperimentConfig &config = world.config;
    if (!config.safety.monitor)
        return;
    for (std::size_t i = 0; i < world.site.rows().size(); ++i) {
        cluster::Site::SiteRow &row = world.site.rows()[i];
        cluster::PowerDomain *domain = row.domain;
        SafetyMonitor::Limits limits = rowSafetyLimits(
            config, domain->budgetWatts(),
            domain->breaker() ? domain->breaker()->breakerLimitWatts()
                              : 0.0);
        auto monitor = std::make_unique<SafetyMonitor>(
            world.sim, limits,
            [domain] { return domain->powerWatts(); },
            i < world.managers.size() ? world.managers[i].get()
                                      : nullptr);
        if (world.obs)
            monitor->attachObservability(world.obs);
        monitor->attachTelemetry(*domain->manager());
        monitor->start();
        world.monitors.push_back(std::move(monitor));
    }
}

/** Control plane started at t = warmup in deferred runs: per-row
 *  managers, then per-row safety monitors — the same relative order
 *  a warmup == 0 run constructs them in. */
void
startSiteControlPlane(SiteWorld &world)
{
    buildSiteManagers(world);
    buildSiteMonitors(world);
}

void
buildSiteWorld(SiteWorld &world, bool deferControl,
               const WarmupSnapshot *resume)
{
    const ExperimentConfig &config = world.config;
    cluster::Site &site = world.site;

    if (config.powerScaleFactor != 1.0) {
        for (cluster::InferenceServer *server : site.root().servers())
            server->setPowerScaleFactor(config.powerScaleFactor);
    }

    site.root().visit([&world, &config](cluster::PowerDomain &domain) {
        telemetry::DomainManager *manager = domain.manager();
        if (!manager)
            return;
        // Size each domain's recording buffer for the full horizon
        // so steady-state sampling never reallocates.
        manager->reserveSeries(config.duration);
        sim::Accumulator &acc = world.wattsAcc[&domain];
        manager->addListener(
            [&acc](sim::Tick, double watts) { acc.add(watts); });
    });

    world.obs = config.obs;
    attachSiteObservability(world);
    makeSiteTraces(world, resume);

    world.energy = std::make_unique<telemetry::EnergyMeter>(
        world.sim, [&site] { return site.root().powerWatts(); });
    world.energy->start();

    // Site utilization against the site budget, from the root
    // manager's delivered readings (mirrors the flat-row harness).
    sim::Accumulator &utilization = world.utilization;
    double siteBudget = site.root().budgetWatts();
    site.root().manager()->addListener(
        [&utilization, siteBudget](sim::Tick, double watts) {
            utilization.add(watts / siteBudget);
        });

    if (!deferControl) {
        buildSiteManagers(world);
        buildSiteMonitors(world);
    }

    if (!resume) {
        for (std::size_t i = 0; i < site.rows().size(); ++i)
            site.rows()[i].dispatcher->injectTrace(
                (*world.traces)[i]);
    }

    obs::Observability *obs = world.obs;
    if (obs && config.obsOptions.metricsInterval > 0) {
        world.statsTask = world.sim.every(
            config.obsOptions.metricsInterval, [obs](sim::Tick at) {
                obs->interval.snapshot(sim::ticksToSeconds(at),
                                       obs->metrics);
            });
    }
}

/** Capture the physical world at the warmup boundary (pure read).
 *  Domain-owned state is enumerated in pre-order over the tree, so
 *  the rebuilt world can zip itself back together positionally. */
WarmupSnapshot
captureSiteSnapshot(SiteWorld &world)
{
    WarmupSnapshot snap;
    snap.warmup = world.config.warmup;
    snap.simState.queue = world.sim.queue().captureState();
    snap.traces = world.traces;
    for (cluster::Site::SiteRow &row : world.site.rows())
        snap.dispatchers.push_back(row.dispatcher->saveState());
    for (cluster::InferenceServer *server :
         world.site.root().servers())
        snap.servers.push_back(server->saveState());
    world.site.root().visit([&](cluster::PowerDomain &domain) {
        if (domain.manager()) {
            snap.domainManagers.push_back(
                domain.manager()->saveState());
            snap.domainWatts.push_back(world.wattsAcc[&domain]);
        }
        if (domain.breaker())
            snap.breakers.push_back(domain.breaker()->saveState());
    });
    snap.energy = world.energy->saveState();
    snap.utilization = world.utilization;
    if (world.obs) {
        snap.hasObs = true;
        snap.metrics = world.obs->metrics.saveValues();
        snap.intervalStats = world.obs->interval;
        if (world.statsTask)
            snap.statsTask = world.statsTask->saveState();
    }
    return snap;
}

void
restoreSiteWorld(SiteWorld &world, const WarmupSnapshot &snapshot)
{
    const ExperimentConfig &config = world.config;
    cluster::Site &site = world.site;
    POLCA_CHECK(snapshot.warmup == config.warmup,
                "branching at warmup ", config.warmup,
                " from a snapshot captured at ", snapshot.warmup);
    POLCA_CHECK(!world.obs || snapshot.hasObs,
                "branching an observed run from an unobserved "
                "snapshot: the warmup's metric values are missing");
    POLCA_CHECK(snapshot.dispatchers.size() == site.rows().size(),
                "snapshot has ", snapshot.dispatchers.size(),
                " dispatchers, site has ", site.rows().size(),
                " rows");
    std::vector<cluster::InferenceServer *> servers =
        site.root().servers();
    POLCA_CHECK(snapshot.servers.size() == servers.size(),
                "snapshot has ", snapshot.servers.size(),
                " servers, site has ", servers.size());

    world.sim.queue().beginRestore(snapshot.simState.queue);
    for (std::size_t i = 0; i < site.rows().size(); ++i) {
        site.rows()[i].dispatcher->restoreState(
            snapshot.dispatchers[i], &(*world.traces)[i]);
    }
    for (std::size_t i = 0; i < servers.size(); ++i)
        servers[i]->restoreState(snapshot.servers[i]);
    std::size_t managerIndex = 0;
    std::size_t breakerIndex = 0;
    site.root().visit([&](cluster::PowerDomain &domain) {
        if (domain.manager()) {
            POLCA_CHECK(managerIndex < snapshot.domainManagers.size(),
                        "snapshot is short of domain managers");
            domain.manager()->restoreState(
                snapshot.domainManagers[managerIndex]);
            world.wattsAcc[&domain] =
                snapshot.domainWatts[managerIndex];
            ++managerIndex;
        }
        if (domain.breaker()) {
            POLCA_CHECK(breakerIndex < snapshot.breakers.size(),
                        "snapshot is short of breakers");
            domain.breaker()->restoreState(
                snapshot.breakers[breakerIndex]);
            ++breakerIndex;
        }
    });
    POLCA_CHECK(managerIndex == snapshot.domainManagers.size() &&
                    breakerIndex == snapshot.breakers.size(),
                "snapshot carries more domain state than the tree");
    world.energy->restoreState(snapshot.energy);
    world.utilization = snapshot.utilization;

    std::size_t expectedLive = snapshot.simState.queue.liveEvents;
    if (world.obs) {
        world.obs->metrics.restoreValues(snapshot.metrics);
        world.obs->interval = snapshot.intervalStats;
        if (world.statsTask)
            world.statsTask->restoreState(snapshot.statsTask);
        else if (snapshot.statsTask.running)
            --expectedLive;
    } else if (snapshot.statsTask.running) {
        // Unobserved branch of an observed leader: the leader's
        // stats sampler stays behind (see the flat-row note in
        // oversub_experiment.cc).
        --expectedLive;
    }
    world.sim.queue().endRestore(expectedLive);
}

ExperimentResult
finishSiteRun(SiteWorld &world,
              std::chrono::steady_clock::time_point wallStart)
{
    const ExperimentConfig &config = world.config;
    obs::Observability *obs = world.obs;
    sim::Simulation &sim = world.sim;
    cluster::Site &site = world.site;
    const cluster::TopologyConfig &topology = world.topology;
    std::vector<std::unique_ptr<PowerManager>> &managers =
        world.managers;
    std::vector<std::unique_ptr<SafetyMonitor>> &monitors =
        world.monitors;
    std::map<const cluster::PowerDomain *, sim::Accumulator>
        &wattsAcc = world.wattsAcc;

    for (auto &monitor : monitors)
        monitor->finish(config.duration);
    if (world.statsTask) {
        obs->interval.snapshot(sim::ticksToSeconds(config.duration),
                               obs->metrics);
        world.statsTask->stop();
    }
    if (obs) {
        double wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wallStart)
                .count();
        obs::Gauge &rate = obs->metrics.gauge(
            "sim.wallclock_events_per_s",
            "event callbacks per wall-clock second (volatile)");
        rate.setVolatile(true);
        rate.set(wallSeconds > 0.0
                     ? static_cast<double>(sim.queue().numProcessed()) /
                           wallSeconds
                     : 0.0);
        obs->metrics.freezeGauges();
    }

    ExperimentResult result;

    // Fleet latency/throughput: merge every row's serving cell.
    sim::Sampler lowAll;
    sim::Sampler highAll;
    std::vector<sim::Sampler> byWorkload;
    for (cluster::Site::SiteRow &row : site.rows()) {
        const cluster::Dispatcher &dispatcher = *row.dispatcher;
        for (double v :
             dispatcher.latencySeconds(workload::Priority::Low).values())
            lowAll.add(v);
        for (double v :
             dispatcher.latencySeconds(workload::Priority::High).values())
            highAll.add(v);
        const std::vector<sim::Sampler> &perClass =
            dispatcher.latencyByWorkload();
        if (byWorkload.size() < perClass.size())
            byWorkload.resize(perClass.size());
        for (std::size_t w = 0; w < perClass.size(); ++w) {
            for (double v : perClass[w].values())
                byWorkload[w].add(v);
        }
        result.lowThroughput +=
            dispatcher.throughput(workload::Priority::Low);
        result.highThroughput +=
            dispatcher.throughput(workload::Priority::High);
        result.lowArrivals +=
            dispatcher.arrivals(workload::Priority::Low);
        result.highArrivals +=
            dispatcher.arrivals(workload::Priority::High);
        result.lowCompletions +=
            dispatcher.completions(workload::Priority::Low);
        result.highCompletions +=
            dispatcher.completions(workload::Priority::High);
    }
    result.low = LatencyStats::from(lowAll);
    result.high = LatencyStats::from(highAll);
    for (const sim::Sampler &sampler : byWorkload)
        result.byWorkload.push_back(LatencyStats::from(sampler));

    result.energyKwh = world.energy->kilowattHours();
    std::uint64_t completions =
        result.lowCompletions + result.highCompletions;
    if (completions > 0) {
        result.energyPerRequestKj = world.energy->joules() / 1000.0 /
            static_cast<double>(completions);
    }

    if (world.utilization.count() > 0) {
        result.maxUtilization = world.utilization.max();
        result.meanUtilization = world.utilization.mean();
    }

    for (const auto &manager : managers) {
        result.powerBrakeEvents += manager->powerBrakeEvents();
        result.capCommands += manager->capCommands();
        result.uncapCommands += manager->uncapCommands();
        result.reissuedCommands += manager->reissuedCommands();
        result.lpLockedTicks +=
            manager->lockedTicks(workload::Priority::Low);
        result.hpLockedTicks +=
            manager->lockedTicks(workload::Priority::High);
        result.failSafeEntries += manager->failSafeEntries();
        result.failSafeTicks += manager->failSafeTicks();
        result.flaggedChannels += manager->flaggedChannels();
        result.controllerCrashes += manager->controllerCrashes();
        result.controllerRecoveries += manager->controllerRecoveries();
        result.controllerDownTicks += manager->controllerDownTicks();
        result.mttrTotalTicks += manager->mttrTotalTicks();
        result.mttrMaxTicks =
            std::max(result.mttrMaxTicks, manager->mttrMaxTicks());
        result.timeToFailSafeMaxTicks =
            std::max(result.timeToFailSafeMaxTicks,
                     manager->timeToFailSafeMaxTicks());
        result.capsHeldStaleTicks += manager->capsHeldStaleTicks();
        result.staleTicks += manager->staleTicks();
        result.brakeTicks += manager->brakeTicks();
        result.modeTransitions += manager->modeTransitions();
    }

    for (const auto &monitor : monitors) {
        const std::vector<SafetyViolation> &violations =
            monitor->violations();
        result.violations.insert(result.violations.end(),
                                 violations.begin(), violations.end());
    }

    // The headline breaker columns report the *site* breaker — the
    // upstream protection the whole tree must not trip.
    if (const telemetry::BreakerModel *siteBreaker =
            site.root().breaker()) {
        result.breakerTrips = siteBreaker->trips();
        result.breakerNearTrips = siteBreaker->nearTrips();
        result.firstBreakerTrip = siteBreaker->firstTripTime();
        result.ticksAboveProvisioned =
            siteBreaker->ticksAboveProvisioned();
        result.overdrawWattSeconds =
            siteBreaker->overdrawWattSeconds();
        result.longestOverLimitStreak =
            siteBreaker->longestOverLimitStreak();
    }

    // Per-level rollup, pre-order so the site row leads the table.
    std::map<const cluster::PowerDomain *, std::size_t> rowIndex;
    for (std::size_t i = 0; i < site.rows().size(); ++i)
        rowIndex[site.rows()[i].domain] = i;
    site.root().visit([&](const cluster::PowerDomain &domain) {
        if (domain.isLeaf())
            return;
        DomainStats stats;
        stats.path = domain.path();
        stats.level = cluster::toString(domain.level());
        stats.servers = domain.numServers();
        stats.provisionedWatts = domain.provisionedWatts();
        stats.budgetWatts = domain.budgetWatts();
        auto accIt = wattsAcc.find(&domain);
        if (accIt != wattsAcc.end() && accIt->second.count() > 0) {
            stats.peakWatts = accIt->second.max();
            stats.meanWatts = accIt->second.mean();
        }
        if (const telemetry::BreakerModel *breaker = domain.breaker()) {
            stats.breakerLimitWatts = breaker->breakerLimitWatts();
            stats.breakerTrips = breaker->trips();
            stats.breakerNearTrips = breaker->nearTrips();
            stats.overdrawWattSeconds = breaker->overdrawWattSeconds();
            stats.secondsAboveBudget = sim::ticksToSeconds(
                breaker->ticksAboveProvisioned());
        }
        auto rowIt = rowIndex.find(&domain);
        if (rowIt != rowIndex.end()) {
            std::size_t i = rowIt->second;
            const cluster::Dispatcher &dispatcher =
                *site.rows()[i].dispatcher;
            stats.completions =
                dispatcher.completions(workload::Priority::Low) +
                dispatcher.completions(workload::Priority::High);
            const sim::Sampler &low =
                dispatcher.latencySeconds(workload::Priority::Low);
            const sim::Sampler &high =
                dispatcher.latencySeconds(workload::Priority::High);
            if (!low.empty())
                stats.lowP99 = low.p99();
            if (!high.empty())
                stats.highP99 = high.p99();
            if (i < managers.size()) {
                stats.capCommands = managers[i]->capCommands();
                stats.powerBrakeEvents =
                    managers[i]->powerBrakeEvents();
            }
            if (i < monitors.size()) {
                stats.violations = static_cast<std::uint64_t>(
                    monitors[i]->violations().size());
            }
        }
        result.domains.push_back(std::move(stats));
    });

    site.root().visit([&result](const cluster::PowerDomain &domain) {
        if (domain.manager())
            result.droppedReadings +=
                domain.manager()->droppedReadings();
    });
    for (const cluster::InferenceServer *server :
         static_cast<const cluster::PowerDomain &>(site.root())
             .servers())
        result.droppedRequests += server->droppedRequests();

    if (topology.recordSeries) {
        result.rowPowerSeries = site.root().manager()->series();
        for (const cluster::Site::SiteRow &row : site.rows()) {
            DomainPowerSeries series;
            series.path = row.domain->path();
            series.series = row.domain->manager()->series();
            result.domainPowerSeries.push_back(std::move(series));
        }
    }
    return result;
}

} // namespace

ExperimentResult
runSiteExperiment(const ExperimentConfig &config)
{
    if (config.externalTrace)
        sim::fatal("site mode does not support external traces");
    if (!config.faultPlan.empty() || config.chaos.enabled)
        sim::fatal("site mode does not support fault/chaos injection");
    validateWarmupConfig(config);

    SiteWorld world(config);
    const WarmupSnapshot *resume = config.resumeFrom.get();
    buildSiteWorld(world, /*deferControl=*/config.warmup > 0, resume);

    auto wallStart = std::chrono::steady_clock::now();
    if (config.warmup > 0) {
        if (resume) {
            restoreSiteWorld(world, *resume);
        } else {
            world.sim.runUntil(config.warmup);
            if (config.onWarmupSnapshot) {
                config.onWarmupSnapshot(
                    std::make_shared<const WarmupSnapshot>(
                        captureSiteSnapshot(world)));
            }
        }
        startSiteControlPlane(world);
    }
    world.sim.runUntil(config.duration);
    return finishSiteRun(world, wallStart);
}

} // namespace polca::core
