/**
 * @file
 * Online safety-invariant monitor for chaos campaigns.
 *
 * The chaos engine (faults::generateChaosPlan) makes runs hostile;
 * this monitor makes them falsifiable.  It rides the event queue
 * beside the power manager — never through it — and checks, every
 * tick of its own clock, the invariants the paper's guardrails
 * (Section 3.3, Section 6.3) promise: raw row power stays inside
 * the breaker trip envelope, fail-safe engages within a bounded
 * time of telemetry going stale, caps release within a bounded time
 * of load subsiding, commanded caps never go below the policy
 * floor, and the perf cost (brake time) stays within budget.  Every
 * violation is recorded with its sim-time stamp so a failing seed
 * reproduces to the exact tick.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/power_manager.hh"
#include "obs/observability.hh"
#include "sim/simulation.hh"
#include "telemetry/row_manager.hh"

namespace polca::core {

/** Scenario-file knobs for the monitor ([safety] section). */
struct SafetyOptions
{
    /** Master switch: arm the monitor for the run. */
    bool monitor = false;

    /** Cadence of the invariant sweep. */
    sim::Tick checkInterval = sim::secondsToTicks(1);

    /** Grace past the manager's watchdogTimeout before a missing
     *  fail-safe becomes a violation (covers the watchdog's own
     *  heartbeat quantization). */
    sim::Tick failSafeMargin = sim::secondsToTicks(6);

    /** Maximum time caps/brake may stay applied after row load
     *  subsides below every release threshold (with telemetry
     *  healthy and the controller alive). */
    sim::Tick capReleaseDeadline = sim::secondsToTicks(600);

    /** Maximum fraction of the run the power brake may be engaged
     *  (the perf-loss budget). */
    double maxBrakeTimeFraction = 0.5;
};

/** The invariants the monitor checks. */
enum class SafetyInvariant
{
    BreakerEnvelope,  ///< raw power exceeded the trip envelope
    FailSafeDeadline, ///< telemetry stale, fail-safe never engaged
    CapRelease,       ///< load subsided, caps never released
    CapFloor,         ///< commanded cap below the policy floor
    PerfBudget,       ///< brake time exceeded the perf-loss budget
};

const char *toString(SafetyInvariant invariant);

/** One recorded invariant breach. */
struct SafetyViolation
{
    SafetyInvariant invariant;
    sim::Tick at = 0;   ///< sim time the breach was detected
    double value = 0.0; ///< observed quantity (watts, seconds, ...)
    double limit = 0.0; ///< bound it broke
};

/**
 * Armed once per run; checks invariants on its own periodic clock
 * plus a finish() pass for whole-run budgets.
 */
class SafetyMonitor
{
  public:
    /** Derived invariant bounds (the experiment harness computes
     *  these from row/policy/manager config). */
    struct Limits
    {
        /** Breaker trip envelope on raw row power (W); excursions
         *  shorter than breakerGrace are tolerated, mirroring the
         *  breaker's own trip delay. */
        double breakerLimitWatts = 0.0;
        sim::Tick breakerGrace = 0;

        /** Staleness bound: telemetry older than this with no
         *  fail-safe active is a violation. */
        sim::Tick failSafeDeadline = 0;

        /** Caps must be fully released within this long of the row
         *  going quiet. */
        sim::Tick capReleaseDeadline = 0;

        /** Deepest clock lock any policy rule may command (MHz);
         *  0 disables the floor check. */
        double capFloorMhz = 0.0;

        /** Utilization below which the row counts as quiet (min of
         *  every release threshold, so no rule has a reason to stay
         *  active). */
        double quietUtilization = 0.0;

        /** Brake-time budget as a fraction of the run. */
        double maxBrakeTimeFraction = 1.0;

        sim::Tick checkInterval = sim::secondsToTicks(1);
        double provisionedWatts = 0.0;
    };

    /**
     * @param rawPower samples ground-truth row power (not the
     *        faultable telemetry path — the monitor must see what
     *        the breaker sees).
     * @param manager may be null (unmanaged run): only the breaker
     *        envelope is checked.
     */
    SafetyMonitor(sim::Simulation &sim, Limits limits,
                  std::function<double()> rawPower,
                  PowerManager *manager);

    /** Track delivered telemetry and quiet episodes. */
    void attachTelemetry(telemetry::RowManager &telemetry);

    /** Register the violation counter and trace events. */
    void attachObservability(obs::Observability *obs);

    /** Arm the periodic invariant sweep. */
    void start();

    /** Whole-run budget checks; call once when the run ends. */
    void finish(sim::Tick end);

    const std::vector<SafetyViolation> &violations() const
    {
        return violations_;
    }

  private:
    void check(sim::Tick now);
    void record(SafetyInvariant invariant, sim::Tick at, double value,
                double limit);

    sim::Simulation &sim_;
    Limits limits_;
    std::function<double()> rawPower_;
    PowerManager *manager_;
    std::unique_ptr<sim::Simulation::PeriodicTask> sweep_;
    bool started_ = false;
    bool finished_ = false;

    sim::Tick lastDelivered_ = 0;
    bool excursionActive_ = false;  ///< raw power above envelope
    sim::Tick excursionSince_ = 0;
    bool excursionReported_ = false;
    bool staleReported_ = false;
    bool quiet_ = false;            ///< row below quietUtilization
    sim::Tick quietSince_ = 0;
    bool quietReported_ = false;
    bool floorReportedLow_ = false;
    bool floorReportedHigh_ = false;

    std::vector<SafetyViolation> violations_;
    obs::TraceRecorder *trace_ = nullptr;
    obs::Counter *violationStat_ = nullptr;
};

} // namespace polca::core
