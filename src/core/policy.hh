/**
 * @file
 * POLCA capping policies (Section 6.3, Table 5).
 *
 * A policy is an ordered list of threshold rules.  Each rule names a
 * target priority pool, a trigger level (fraction of provisioned row
 * power), a release level placed below the trigger to avoid
 * capping/uncapping hysteresis (the paper uses 5 %), and the SM
 * frequency to lock the pool to.  Rules are escalated one at a time:
 * later rules only engage if power stays above their trigger after
 * the earlier rules have been applied.
 */

#pragma once

#include <string>
#include <vector>

#include "workload/workload_spec.hh"

namespace polca::core {

/** One capping threshold (a row of Table 5). */
struct ThresholdRule
{
    std::string name;               ///< e.g. "T1", "T2-LP", "T2-HP"
    workload::Priority target;
    double capFraction;             ///< trigger, fraction of budget
    double uncapFraction;           ///< release, below capFraction
    double lockMhz;                 ///< frequency to lock the pool to
};

/** A complete policy. */
struct PolicyConfig
{
    std::string name;
    std::vector<ThresholdRule> rules;

    /** Emergency power brake trigger (fraction of budget). */
    double powerBrakeFraction = 1.00;

    /** Brake releases when power falls to this fraction. */
    double powerBrakeReleaseFraction = 0.90;

    /** Disable the brake entirely (only for unprotected baselines
     *  in ablations; all of the paper's policies keep it). */
    bool powerBrakeEnabled = true;

    /**
     * The paper's dual-threshold POLCA policy.
     *
     * @param t1  T1 trigger (default 0.80): lock LP to @p t1LockMhz.
     * @param t2  T2 trigger (default 0.89): lock LP to 1110 MHz,
     *            then escalate HP to 1305 MHz.
     * @param t1LockMhz  LP frequency at T1 (default: A100 base
     *            clock, 1275 MHz; swept in Fig 15a).
     */
    static PolicyConfig polca(double t1 = 0.80, double t2 = 0.89,
                              double t1LockMhz = 1275.0);

    /** Baseline: single threshold for LP only (1-Thresh-Low-Pri). */
    static PolicyConfig oneThreshLowPri(double threshold = 0.89);

    /** Baseline: single threshold for all workloads (1-Thresh-All). */
    static PolicyConfig oneThreshAll(double threshold = 0.89);

    /** Baseline: no proactive capping; brake-only (No-cap). */
    static PolicyConfig noCap();

    /** Validate invariants (ordering, ranges); fatal() on error. */
    void validate() const;
};

} // namespace polca::core

