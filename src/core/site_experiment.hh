/**
 * @file
 * Site-mode experiment harness: the topology-enabled half of
 * runOversubExperiment (oversub_experiment.hh).  Builds the
 * heterogeneous power-domain tree from ExperimentConfig::topology,
 * runs every row's serving cell under per-level breakers and
 * budgets, and rolls per-domain stats into the shared
 * ExperimentResult.
 */

#pragma once

#include "core/oversub_experiment.hh"

namespace polca::core {

/**
 * Run a site-scale experiment end to end.  Callers go through
 * runOversubExperiment(), which dispatches here when
 * config.topology.enabled; the split keeps the flat-row harness —
 * whose trajectories are pinned bit-for-bit by the determinism
 * suite — untouched by site-mode evolution.
 *
 * Site mode restricts a few flat-row features: external traces and
 * fault/chaos injection are not supported (config check rejects
 * them), and pool auto-balancing is ignored because every group
 * declares its split explicitly.
 */
ExperimentResult runSiteExperiment(const ExperimentConfig &config);

} // namespace polca::core
