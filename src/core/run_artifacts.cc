#include "core/run_artifacts.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "analysis/csv.hh"
#include "obs/manifest.hh"
#include "sim/types.hh"

namespace polca::core {

namespace {

namespace fs = std::filesystem;

std::string
fmt(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

std::string
fmtCount(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
fmtTickSeconds(sim::Tick t)
{
    return fmt(sim::ticksToSeconds(t));
}

/** The headline key,value rows of result.csv, in emission order. */
std::vector<std::pair<std::string, std::string>>
resultRows(const ExperimentResult &r, const NormalizedLatency &lo,
           const NormalizedLatency &hi)
{
    std::vector<std::pair<std::string, std::string>> rows;
    auto add = [&](const char *key, std::string value) {
        rows.emplace_back(key, std::move(value));
    };

    add("lp_p50_s", fmt(r.low.p50));
    add("lp_p99_s", fmt(r.low.p99));
    add("lp_max_s", fmt(r.low.max));
    add("hp_p50_s", fmt(r.high.p50));
    add("hp_p99_s", fmt(r.high.p99));
    add("hp_max_s", fmt(r.high.max));
    add("lp_p99_norm", fmt(lo.p99));
    add("hp_p99_norm", fmt(hi.p99));
    add("lp_completions", fmtCount(r.lowCompletions));
    add("hp_completions", fmtCount(r.highCompletions));
    add("lp_throughput_rps", fmt(r.lowThroughput));
    add("hp_throughput_rps", fmt(r.highThroughput));

    add("brake_events", fmtCount(r.powerBrakeEvents));
    add("cap_commands", fmtCount(r.capCommands));
    add("uncap_commands", fmtCount(r.uncapCommands));
    add("reissued_commands", fmtCount(r.reissuedCommands));
    add("max_utilization", fmt(r.maxUtilization));
    add("mean_utilization", fmt(r.meanUtilization));
    add("energy_kwh", fmt(r.energyKwh));
    add("energy_per_request_kj", fmt(r.energyPerRequestKj));

    add("breaker_trips", fmtCount(r.breakerTrips));
    add("breaker_near_trips", fmtCount(r.breakerNearTrips));
    add("overdraw_watt_seconds", fmt(r.overdrawWattSeconds));
    add("dropped_readings", fmtCount(r.droppedReadings));
    add("corrupted_readings", fmtCount(r.corruptedReadings));
    add("dropped_requests", fmtCount(r.droppedRequests));

    add("failsafe_entries", fmtCount(r.failSafeEntries));
    add("failsafe_s", fmtTickSeconds(r.failSafeTicks));
    add("time_to_failsafe_max_s",
        fmtTickSeconds(r.timeToFailSafeMaxTicks));
    add("controller_crashes", fmtCount(r.controllerCrashes));
    add("controller_recoveries", fmtCount(r.controllerRecoveries));
    add("controller_down_s", fmtTickSeconds(r.controllerDownTicks));
    add("mttr_total_s", fmtTickSeconds(r.mttrTotalTicks));
    add("mttr_max_s", fmtTickSeconds(r.mttrMaxTicks));
    add("caps_stale_s", fmtTickSeconds(r.capsHeldStaleTicks));
    add("stale_s", fmtTickSeconds(r.staleTicks));
    add("brake_s", fmtTickSeconds(r.brakeTicks));
    add("mode_transitions", fmtCount(r.modeTransitions));
    add("safety_violations",
        fmtCount(static_cast<std::uint64_t>(r.violations.size())));
    return rows;
}

bool
writeResultCsv(const fs::path &path, const ExperimentResult &result,
               const NormalizedLatency &lo, const NormalizedLatency &hi)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    analysis::CsvWriter csv(os);
    csv.header({"metric", "value"});
    for (const auto &[key, value] : resultRows(result, lo, hi))
        csv.rowStrings({key, value});
    return true;
}

bool
writeViolationsCsv(const fs::path &path,
                   const ExperimentResult &result)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    analysis::CsvWriter csv(os);
    csv.header({"invariant", "at_s", "value", "limit"});
    for (const SafetyViolation &v : result.violations) {
        csv.rowStrings({toString(v.invariant),
                        fmt(sim::ticksToSeconds(v.at)), fmt(v.value),
                        fmt(v.limit)});
    }
    return true;
}

/** Per-level rollup of a site-mode run (one row per tree node). */
bool
writeDomainsCsv(const fs::path &path, const ExperimentResult &result)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    analysis::CsvWriter csv(os);
    csv.header({"path", "level", "servers", "provisioned_watts",
                "budget_watts", "breaker_limit_watts", "peak_watts",
                "mean_watts", "breaker_trips", "breaker_near_trips",
                "overdraw_watt_seconds", "seconds_above_budget",
                "completions", "lp_p99_s", "hp_p99_s", "cap_commands",
                "brake_events", "violations"});
    for (const DomainStats &d : result.domains) {
        csv.rowStrings({d.path, d.level, std::to_string(d.servers),
                        fmt(d.provisionedWatts), fmt(d.budgetWatts),
                        fmt(d.breakerLimitWatts), fmt(d.peakWatts),
                        fmt(d.meanWatts), fmtCount(d.breakerTrips),
                        fmtCount(d.breakerNearTrips),
                        fmt(d.overdrawWattSeconds),
                        fmt(d.secondsAboveBudget),
                        fmtCount(d.completions), fmt(d.lowP99),
                        fmt(d.highP99), fmtCount(d.capCommands),
                        fmtCount(d.powerBrakeEvents),
                        fmtCount(d.violations)});
    }
    return true;
}

/**
 * Compositional site power trace (Wilkins et al.): the site column
 * plus one column per row, sampled on the shared telemetry cadence —
 * each site sample is the rollup of that tick's row samples.
 */
bool
writeSitePowerCsv(const fs::path &path, const ExperimentResult &result)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    analysis::CsvWriter csv(os);

    std::vector<std::string> header{"time_s", "site"};
    for (const DomainPowerSeries &row : result.domainPowerSeries)
        header.push_back(row.path);
    csv.header(header);

    const sim::TimeSeries &site = result.rowPowerSeries;
    for (std::size_t i = 0; i < site.size(); ++i) {
        std::vector<std::string> cells;
        cells.reserve(2 + result.domainPowerSeries.size());
        cells.push_back(fmt(sim::ticksToSeconds(site.at(i).time)));
        cells.push_back(fmt(site.at(i).value));
        for (const DomainPowerSeries &row : result.domainPowerSeries) {
            cells.push_back(i < row.series.size()
                                ? fmt(row.series.at(i).value)
                                : fmt(0.0));
        }
        csv.rowStrings(cells);
    }
    return true;
}

} // namespace

std::vector<std::string>
writeRunDir(const RunDirOptions &options,
            const ExperimentConfig &config,
            const ExperimentResult &result,
            const NormalizedLatency &lowNorm,
            const NormalizedLatency &highNorm,
            const obs::Observability *obs)
{
    fs::path dir(options.dir);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        return {};

    std::vector<std::string> written;

    if (!options.resolvedConfig.empty()) {
        std::ofstream os(dir / "resolved.toml", std::ios::binary);
        if (!os)
            return {};
        os << options.resolvedConfig;
        written.push_back("resolved.toml");
    }

    if (!writeResultCsv(dir / "result.csv", result, lowNorm,
                        highNorm))
        return {};
    written.push_back("result.csv");

    if (config.safety.monitor) {
        if (!writeViolationsCsv(dir / "violations.csv", result))
            return {};
        written.push_back("violations.csv");
    }

    if (!result.domains.empty()) {
        if (!writeDomainsCsv(dir / "domains.csv", result))
            return {};
        written.push_back("domains.csv");
    }

    if (!result.domainPowerSeries.empty()) {
        if (!writeSitePowerCsv(dir / "site_power.csv", result))
            return {};
        written.push_back("site_power.csv");
    }

    if (obs) {
        std::ofstream os(dir / "metrics.csv", std::ios::binary);
        if (!os)
            return {};
        obs->metrics.dumpCsv(os);
        written.push_back("metrics.csv");

        if (!obs->interval.empty()) {
            std::ofstream is(dir / "stats_interval.csv",
                             std::ios::binary);
            if (!is)
                return {};
            obs->interval.writeCsv(is);
            written.push_back("stats_interval.csv");
        }
    }

    obs::RunManifest manifest;
    manifest.command = options.command;
    manifest.scenarioPath = options.scenarioPath;
    manifest.configDigest = obs::fnv1a64Hex(options.resolvedConfig);
    manifest.seed = config.seed;
    manifest.jobs = options.jobs;
    manifest.durationS = sim::ticksToSeconds(config.duration);
    manifest.metricsIntervalS =
        sim::ticksToSeconds(config.obsOptions.metricsInterval);
    manifest.artifacts = written;

    {
        std::ofstream os(dir / "manifest.json", std::ios::binary);
        if (!os)
            return {};
        manifest.writeJson(os);
    }
    written.insert(written.begin(), "manifest.json");
    return written;
}

} // namespace polca::core
