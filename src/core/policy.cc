#include "core/policy.hh"

#include "sim/logging.hh"

namespace polca::core {

namespace {
/** The paper selects uncap levels 5 % below the cap thresholds. */
constexpr double hysteresisGap = 0.05;
} // namespace

PolicyConfig
PolicyConfig::polca(double t1, double t2, double t1LockMhz)
{
    PolicyConfig config;
    config.name = "POLCA";
    config.rules = {
        {"T1", workload::Priority::Low, t1, t1 - hysteresisGap,
         t1LockMhz},
        {"T2-LP", workload::Priority::Low, t2, t2 - hysteresisGap,
         1110.0},
        {"T2-HP", workload::Priority::High, t2, t2 - hysteresisGap,
         1305.0},
    };
    config.validate();
    return config;
}

PolicyConfig
PolicyConfig::oneThreshLowPri(double threshold)
{
    PolicyConfig config;
    config.name = "1-Thresh-Low-Pri";
    config.rules = {
        {"T", workload::Priority::Low, threshold,
         threshold - hysteresisGap, 1110.0},
    };
    config.validate();
    return config;
}

PolicyConfig
PolicyConfig::oneThreshAll(double threshold)
{
    PolicyConfig config;
    config.name = "1-Thresh-All";
    config.rules = {
        {"T-LP", workload::Priority::Low, threshold,
         threshold - hysteresisGap, 1110.0},
        {"T-HP", workload::Priority::High, threshold,
         threshold - hysteresisGap, 1110.0},
    };
    config.validate();
    return config;
}

PolicyConfig
PolicyConfig::noCap()
{
    PolicyConfig config;
    config.name = "No-cap";
    config.validate();
    return config;
}

void
PolicyConfig::validate() const
{
    for (const auto &rule : rules) {
        if (rule.capFraction <= 0.0 || rule.capFraction > 1.5) {
            sim::fatal("PolicyConfig '", name, "': rule '", rule.name,
                       "' trigger ", rule.capFraction, " out of range");
        }
        if (rule.uncapFraction >= rule.capFraction) {
            sim::fatal("PolicyConfig '", name, "': rule '", rule.name,
                       "' release must sit below its trigger");
        }
        if (rule.lockMhz <= 0.0) {
            sim::fatal("PolicyConfig '", name, "': rule '", rule.name,
                       "' has non-positive lock frequency");
        }
    }
    if (powerBrakeReleaseFraction >= powerBrakeFraction) {
        sim::fatal("PolicyConfig '", name,
                   "': brake release must sit below the brake trigger");
    }
}

} // namespace polca::core
