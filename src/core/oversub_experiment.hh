/**
 * @file
 * The oversubscription experiment harness (Section 6.4-6.6): build a
 * row, generate (or accept) a request trace scaled to the deployed
 * server count, attach a power manager with a policy, run, and report
 * the paper's metrics — per-priority p50/p99/max latency, throughput,
 * and power-brake counts.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/row.hh"
#include "cluster/topology.hh"
#include "core/policy.hh"
#include "core/power_manager.hh"
#include "core/safety_monitor.hh"
#include "faults/chaos.hh"
#include "faults/fault_plan.hh"
#include "obs/observability.hh"
#include "sim/timeseries.hh"
#include "telemetry/breaker_model.hh"
#include "workload/diurnal.hh"
#include "workload/trace.hh"
#include "workload/workload_spec.hh"

namespace polca::core {

struct WarmupSnapshot;  // core/warmup_snapshot.hh

/** Observability knobs a scenario's [obs] section controls. */
struct ObsOptions
{
    /**
     * Cadence of interval stats snapshots (gem5 dumpresetstats
     * style): every `interval` of simulated time the registry is
     * snapshotted into Observability::interval, plus a final partial
     * snapshot at the run end.  0 disables interval stats.  Has no
     * effect unless an Observability sink is attached.
     */
    sim::Tick metricsInterval = 0;
};

/** Full experiment configuration. */
struct ExperimentConfig
{
    cluster::RowConfig row;

    /**
     * Hierarchical site topology ([topology] section).  Disabled,
     * the experiment runs the paper's single flat row built from
     * `row`; enabled, it builds the heterogeneous
     * servers → racks → rows → site tree described by the groups
     * (with `row` supplying the shared per-server knobs) and runs
     * every row's serving cell under per-level breakers and budgets.
     */
    cluster::TopologyConfig topology;

    PolicyConfig policy = PolicyConfig::polca();

    /** false = run without any power manager (unthrottled). */
    bool managed = true;

    sim::Tick duration = sim::secondsToTicks(7 * 24 * 3600.0);
    std::uint64_t seed = 42;

    /**
     * Warmup boundary ([sweep] warmup / experiment.warmup): the
     * control plane — power manager, fault injector, safety monitor
     * — is constructed and started at t = warmup instead of t = 0,
     * in *every* run with warmup > 0, fresh or branched.  The
     * physical world (servers, trace, telemetry, breaker, energy
     * metering) runs from t = 0 regardless.  0 (the default) keeps
     * the original everything-at-t=0 construction order, whose
     * trajectories the determinism suite pins bit-for-bit.
     *
     * With warmup > 0 the run must satisfy validateWarmupConfig():
     * chaos generation is rejected and every event-posting fault
     * (OOB outages, server crashes, controller crashes) must start
     * at or after the boundary — the injector does not exist before
     * it.  Window faults (blackouts, sensor corruption) may span
     * the boundary; only their post-warmup portion acts.
     */
    sim::Tick warmup = 0;

    /**
     * Branch this run from a warmup snapshot instead of simulating
     * the prefix (runtime-only, like `externalTrace`/`obs`; never
     * bound from scenario files).  The snapshot must have been
     * captured by a run with an identical physical configuration
     * and the same `warmup`; mismatches panic at restore time.
     */
    std::shared_ptr<const WarmupSnapshot> resumeFrom;

    /**
     * Invoked at the warmup boundary of a fresh warmup > 0 run with
     * the captured snapshot (runtime-only).  Capture is a pure read
     * of simulation state — a run with the hook and a run without
     * it produce byte-identical artifacts.
     */
    std::function<void(std::shared_ptr<const WarmupSnapshot>)>
        onWarmupSnapshot;

    /** Uniform workload power intensification (1.05 = the paper's
     *  +5 % robustness experiment). */
    double powerScaleFactor = 1.0;

    ManagerOptions manager;
    workload::DiurnalModel::Params diurnal;

    /** Optional externally-generated trace (must outlive the run);
     *  when null a trace is generated from `diurnal` and `seed`,
     *  scaled to the deployed server count. */
    const workload::Trace *externalTrace = nullptr;

    /** Record the 2 s row power series into the result (Fig 16). */
    bool recordRowSeries = false;

    /**
     * Size the LP/HP server pools by the workload mix's *work*
     * share (service-time weighted), overriding
     * row.lpServerFraction.  Disable to sweep the pool split
     * explicitly.
     */
    bool autoBalancePools = true;

    /** Workload mix (defaults to Table 6); Fig 15b sweeps the
     *  low- to high-priority ratio by overriding this. */
    std::vector<workload::WorkloadSpec> mix =
        workload::paperWorkloadMix();

    /**
     * Fault scenario executed against the run (empty = ideal
     * sensing/actuation).  Stochastic faults derive from `seed`, so
     * a scenario replays deterministically.
     */
    faults::FaultPlan faultPlan;

    /**
     * Randomized fault generation on top of `faultPlan`: when
     * enabled, a chaos plan drawn deterministically from `seed` is
     * merged into the explicit plan before the run.
     */
    faults::ChaosConfig chaos;

    /** Arm the runtime safety-invariant monitor for the run. */
    SafetyOptions safety;

    /** Model the physical row breaker and violation accounting. */
    bool modelBreaker = true;

    /** Breaker trip limit as a multiple of provisioned power
     *  (NEC-style 80 % continuous rating -> 1.25x trip limit). */
    double breakerLimitFraction = 1.25;

    /** Sustained time above the trip limit before the breaker
     *  trips. */
    sim::Tick breakerTripDuration = sim::secondsToTicks(30);

    /**
     * Observability sink (metrics + trace) threaded through every
     * component of the run; null runs unobserved (zero overhead).
     * Must outlive the call.  Gauge sources registered during the
     * run are frozen to plain values before returning, so the sink
     * stays dumpable after the simulated components are gone.
     */
    obs::Observability *obs = nullptr;

    /** Interval-stats cadence and friends (scenario [obs] section). */
    ObsOptions obsOptions;
};

/** Distribution summary of one priority class's latency. */
struct LatencyStats
{
    double p50 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
    double mean = 0.0;
    std::uint64_t count = 0;

    static LatencyStats from(const sim::Sampler &sampler);
};

/**
 * Per-domain rollup of one site-mode run: one entry per non-leaf
 * tree node, in pre-order (site first, then each row followed by its
 * racks).  Feeds domains.csv and the `polcactl report` rollup table.
 */
struct DomainStats
{
    std::string path;   ///< dotted metric path ("site.row3.rack1")
    std::string level;  ///< "site" | "row" | "rack"
    int servers = 0;

    double provisionedWatts = 0.0;   ///< nameplate sum of leaf budgets
    double budgetWatts = 0.0;        ///< oversubscription budget
    double breakerLimitWatts = 0.0;  ///< 0 = no breaker at this level

    /** Over delivered telemetry readings at this domain. */
    double peakWatts = 0.0;
    double meanWatts = 0.0;

    /** @name Breaker accounting (zero when no breaker armed) */
    /** @{ */
    std::uint64_t breakerTrips = 0;
    std::uint64_t breakerNearTrips = 0;
    double overdrawWattSeconds = 0.0;
    double secondsAboveBudget = 0.0;
    /** @} */

    /** @name Serving-cell stats (rows only) */
    /** @{ */
    std::uint64_t completions = 0;
    double lowP99 = 0.0;
    double highP99 = 0.0;
    std::uint64_t capCommands = 0;
    std::uint64_t powerBrakeEvents = 0;
    std::uint64_t violations = 0;  ///< safety breaches at this level
    /** @} */
};

/** One domain's recorded power trace (site mode, when recording). */
struct DomainPowerSeries
{
    std::string path;
    sim::TimeSeries series;
};

/** Everything a policy evaluation reports. */
struct ExperimentResult
{
    LatencyStats low;
    LatencyStats high;

    double lowThroughput = 0.0;    ///< completions per second
    double highThroughput = 0.0;

    std::uint64_t lowArrivals = 0;
    std::uint64_t highArrivals = 0;
    std::uint64_t lowCompletions = 0;
    std::uint64_t highCompletions = 0;

    std::uint64_t powerBrakeEvents = 0;
    std::uint64_t capCommands = 0;
    std::uint64_t uncapCommands = 0;
    std::uint64_t reissuedCommands = 0;

    double maxUtilization = 0.0;
    double meanUtilization = 0.0;

    /** @name Survival metrics (breaker, watchdog, faults) */
    /** @{ */
    std::uint64_t breakerTrips = 0;
    std::uint64_t breakerNearTrips = 0;
    sim::Tick firstBreakerTrip = -1;  ///< tick, -1 = never tripped
    sim::Tick ticksAboveProvisioned = 0;
    double overdrawWattSeconds = 0.0;
    sim::Tick longestOverLimitStreak = 0;

    std::uint64_t failSafeEntries = 0;   ///< watchdog stale events
    sim::Tick failSafeTicks = 0;         ///< time spent flying blind
    std::uint64_t flaggedChannels = 0;   ///< OOB circuit breaker

    std::uint64_t droppedReadings = 0;   ///< telemetry losses, total
    std::uint64_t corruptedReadings = 0;
    std::uint64_t crashesInjected = 0;
    std::uint64_t droppedRequests = 0;   ///< lost to server crashes
    /** @} */

    /** @name Controller failover / recovery SLOs */
    /** @{ */
    std::uint64_t controllerCrashes = 0;
    std::uint64_t controllerRecoveries = 0;
    sim::Tick controllerDownTicks = 0;
    sim::Tick mttrTotalTicks = 0;    ///< sum of crash-to-recovery
    sim::Tick mttrMaxTicks = 0;      ///< worst single recovery
    sim::Tick timeToFailSafeMaxTicks = 0;
    sim::Tick capsHeldStaleTicks = 0;
    sim::Tick staleTicks = 0;        ///< time in StalePartial mode
    sim::Tick brakeTicks = 0;        ///< total brake-engaged time
    std::uint64_t modeTransitions = 0;
    /** @} */

    /** Safety-monitor breaches (empty when the monitor is off or
     *  every invariant held). */
    std::vector<SafetyViolation> violations;

    /** Row energy over the run and its per-request share. */
    double energyKwh = 0.0;
    double energyPerRequestKj = 0.0;

    /** Per-workload-class latency (index = position in the mix:
     *  Summarize / Search / Chat for the Table 6 default). */
    std::vector<LatencyStats> byWorkload;

    sim::Tick lpLockedTicks = 0;
    sim::Tick hpLockedTicks = 0;

    sim::TimeSeries rowPowerSeries;  ///< empty unless recorded

    /** @name Site-mode rollups (empty for flat-row runs) */
    /** @{ */
    /** Per-level stats, pre-order over the tree's non-leaf nodes. */
    std::vector<DomainStats> domains;

    /** Per-row power traces (recordRowSeries only); the site trace
     *  in rowPowerSeries is their compositional per-tick sum. */
    std::vector<DomainPowerSeries> domainPowerSeries;
    /** @} */
};

/** Run one experiment end to end. */
ExperimentResult runOversubExperiment(const ExperimentConfig &config);

/**
 * Fatal() unless the config's warmup/branch settings are coherent:
 * warmup within [0, duration), no chaos generation across the
 * boundary, no event-posting fault scheduled before it, and
 * `resumeFrom` only alongside a positive matching warmup.  Called
 * by runOversubExperiment(); exposed for the sweep runner's
 * fail-fast grouping pass.
 */
void validateWarmupConfig(const ExperimentConfig &config);

/**
 * The same configuration with management disabled: the unthrottled
 * reference against which latencies are normalized.
 */
ExperimentConfig unthrottledBaseline(ExperimentConfig config);

/** Latency ratios against a baseline (the paper's "normalized
 *  latency" y-axes). */
struct NormalizedLatency
{
    double p50 = 1.0;
    double p99 = 1.0;
    double max = 1.0;
};

NormalizedLatency normalizeLatency(const LatencyStats &value,
                                   const LatencyStats &baseline);

/** Check a normalized result against the Table 6 SLOs. */
bool meetsSlos(const NormalizedLatency &low,
               const NormalizedLatency &high,
               std::uint64_t powerBrakeEvents,
               const workload::SloSpec &slos);

} // namespace polca::core

