#include "core/thread_pool.hh"

#include <algorithm>

#include "core/contracts.hh"

namespace polca::core {

ThreadPool::ThreadPool(std::size_t workers)
{
    workers = std::max<std::size_t>(1, workers);
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    POLCA_ASSERT(!workers_.empty(),
                 "pool constructed with zero worker threads");
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
    POLCA_ASSERT(queue_.empty(),
                 "workers joined with ", queue_.size(),
                 " tasks still queued");
}

std::size_t
ThreadPool::defaultWorkerCount()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        POLCA_CHECK(!stopping_, "submit after shutdown began");
        queue_.push_back(std::move(job));
    }
    wake_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return;  // stopping_ and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        // packaged_task captures any exception into the future.
        job();
    }
}

} // namespace polca::core
