/**
 * @file
 * Contract macros: the always-on invariant layer.
 *
 * Three macros, one failure path:
 *
 *  - POLCA_ASSERT(cond, msg...)  — internal invariant; a failure means
 *    the simulator itself is buggy (heap order violated, conserved
 *    quantity went negative).  Always compiled in.
 *  - POLCA_CHECK(cond, msg...)   — precondition on caller-supplied
 *    input (scheduling into the past, empty callback, out-of-range
 *    config).  Always compiled in.
 *  - POLCA_DCHECK(cond, msg...)  — expensive or hot-path invariant;
 *    compiled out under NDEBUG (Release / RelWithDebInfo), so it may
 *    sit inside per-event code without costing the hot path anything.
 *
 * Message arguments are streamed gem5-style, comma-separated:
 *
 *     POLCA_CHECK(when >= now_, "scheduling into the past: when=",
 *                 when, " now=", now_);
 *
 * On failure a report is built containing the macro name, the failed
 * condition text, file:line, the enclosing function, the streamed
 * message, and — when a Simulation is alive on the calling thread —
 * the current simulated time ("[t=12.000000s]"), then handed to the
 * installed ContractFailureHandler.  The default handler prints the
 * report to stderr and aborts (so a debugger or core dump captures
 * state, same contract as sim::panic).  Tests install
 * throwingContractHandler via ScopedContractHandler to turn failures
 * into catchable ContractError exceptions instead of process death.
 */

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace polca::core {

/** Everything known about one contract failure. */
struct ContractViolation
{
    const char *kind;       ///< "POLCA_ASSERT" / "POLCA_CHECK" / ...
    const char *condition;  ///< stringified condition text
    const char *file;
    int line;
    const char *function;
    std::string message;    ///< streamed user message; may be empty

    /**
     * Full report text, e.g.
     * "[t=12.000000s] POLCA_CHECK failed: when >= now_ (scheduling
     *  into the past: when=5 now=10) at src/sim/event_queue.cc:93 in
     *  schedule".  The time prefix appears only while a Simulation is
     *  alive on the calling thread.
     */
    std::string report() const;
};

/**
 * Called with the violation; returning is not an option — a handler
 * that neither aborts nor throws is followed by std::abort().
 */
using ContractFailureHandler = void (*)(const ContractViolation &);

/** Install @p handler (nullptr restores the default). @return the
 *  previously installed handler. */
ContractFailureHandler
setContractFailureHandler(ContractFailureHandler handler);

/** Thrown by throwingContractHandler; what() is the full report. */
class ContractError : public std::logic_error
{
  public:
    explicit ContractError(const ContractViolation &violation)
        : std::logic_error(violation.report())
    {}
};

/** Handler that throws ContractError instead of aborting; lets tests
 *  exercise contracts without forking a death-test child. */
[[noreturn]] void throwingContractHandler(const ContractViolation &v);

/** RAII: install a handler for a scope, restore the previous one. */
class ScopedContractHandler
{
  public:
    explicit ScopedContractHandler(ContractFailureHandler handler)
        : previous_(setContractFailureHandler(handler))
    {}
    ~ScopedContractHandler() { setContractFailureHandler(previous_); }
    ScopedContractHandler(const ScopedContractHandler &) = delete;
    ScopedContractHandler &operator=(const ScopedContractHandler &) =
        delete;

  private:
    ContractFailureHandler previous_;
};

/** Build the violation and invoke the installed handler.  Never
 *  returns: a handler that returns is followed by std::abort(). */
[[noreturn]] void contractFail(const char *kind, const char *condition,
                               const char *file, int line,
                               const char *function,
                               std::string message);

namespace detail {

/** Stream the message arguments; empty pack -> empty string. */
template <typename... Args>
std::string
contractMessage(Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return {};
    } else {
        std::ostringstream oss;
        (oss << ... << std::forward<Args>(args));
        return oss.str();
    }
}

} // namespace detail

} // namespace polca::core

#define POLCA_CONTRACT_FAIL_(kind, cond, ...)                          \
    ::polca::core::contractFail(                                       \
        kind, cond, __FILE__, __LINE__, __func__,                      \
        ::polca::core::detail::contractMessage(__VA_ARGS__))

/** Internal invariant; always on.  Failure == simulator bug. */
#define POLCA_ASSERT(cond, ...)                                        \
    ((cond) ? static_cast<void>(0)                                     \
            : POLCA_CONTRACT_FAIL_("POLCA_ASSERT", #cond, __VA_ARGS__))

/** Caller-input precondition; always on. */
#define POLCA_CHECK(cond, ...)                                         \
    ((cond) ? static_cast<void>(0)                                     \
            : POLCA_CONTRACT_FAIL_("POLCA_CHECK", #cond, __VA_ARGS__))

/** Debug-only invariant: free in Release (NDEBUG) builds.  The
 *  condition is parsed but never evaluated when compiled out, so
 *  variables it names do not become "unused". */
#ifdef NDEBUG
#define POLCA_DCHECK(cond, ...)                                        \
    static_cast<void>(sizeof(!(cond)))
#else
#define POLCA_DCHECK(cond, ...)                                        \
    ((cond) ? static_cast<void>(0)                                     \
            : POLCA_CONTRACT_FAIL_("POLCA_DCHECK", #cond, __VA_ARGS__))
#endif
