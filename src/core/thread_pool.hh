/**
 * @file
 * Fixed-size worker pool for running independent experiment tasks
 * concurrently (parallel sweep points, managed/baseline pairs).
 *
 * Tasks are queued in submission order and executed by the first free
 * worker; submit() returns a std::future so callers can stitch
 * results back together in a deterministic order and so exceptions
 * thrown inside a task propagate to whoever calls get().  Destruction
 * drains the queue: every task submitted before the destructor runs
 * is executed, then the workers join.
 *
 * The pool is intentionally dumb — no work stealing, no priorities —
 * because sweep tasks are coarse (whole simulations, seconds each)
 * and the pool's job is just to keep N cores busy.
 */

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace polca::core {

class ThreadPool
{
  public:
    /** Start @p workers worker threads (0 is clamped to 1). */
    explicit ThreadPool(std::size_t workers);

    /** Drains the queue (all submitted tasks run), then joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    [[nodiscard]] std::size_t workerCount() const { return workers_.size(); }

    /**
     * Queue @p fn for execution.  The returned future yields fn's
     * result; an exception thrown by fn is captured and rethrown from
     * future::get().
     */
    template <typename F>
    [[nodiscard]] auto
    submit(F fn) -> std::future<std::invoke_result_t<F &>>
    {
        using Result = std::invoke_result_t<F &>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::move(fn));
        std::future<Result> future = task->get_future();
        enqueue([task] { (*task)(); });
        return future;
    }

    /** Hardware thread count, with a floor of 1 when unknown. */
    static std::size_t defaultWorkerCount();

  private:
    void enqueue(std::function<void()> job);
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
};

} // namespace polca::core

