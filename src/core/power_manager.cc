#include "core/power_manager.hh"

#include <algorithm>
#include <cmath>

#include "core/contracts.hh"
#include "sim/logging.hh"

namespace polca::core {

namespace {

/** Applied-vs-commanded clocks within this margin count as equal;
 *  re-issuing over sub-MHz differences would churn the OOB path. */
constexpr double kClockToleranceMhz = 0.5;

bool
clocksMatch(double appliedMhz, double commandedMhz)
{
    return std::abs(appliedMhz - commandedMhz) <= kClockToleranceMhz;
}

} // namespace

const char *
toString(ControlMode mode)
{
    switch (mode) {
      case ControlMode::Full:
        return "full";
      case ControlMode::StalePartial:
        return "stale-partial";
      case ControlMode::Blind:
        return "blind";
    }
    return "unknown";
}

PowerManager::PowerManager(sim::Simulation &sim,
                           telemetry::RowManager &telemetry,
                           double provisionedWatts, PolicyConfig policy,
                           sim::Rng rng, ManagerOptions options)
    : sim_(sim), telemetry_(telemetry),
      provisionedWatts_(provisionedWatts), policy_(std::move(policy)),
      rng_(rng), options_(options),
      ruleActive_(policy_.rules.size(), false),
      ruleActivatedAt_(policy_.rules.size(), 0)
{
    if (provisionedWatts_ <= 0.0)
        sim::fatal("PowerManager: non-positive provisioned power");
    policy_.validate();
}

PowerManager::PoolState &
PowerManager::poolState(workload::Priority pool)
{
    return pool == workload::Priority::High ? highPool_ : lowPool_;
}

const PowerManager::PoolState &
PowerManager::poolState(workload::Priority pool) const
{
    return pool == workload::Priority::High ? highPool_ : lowPool_;
}

void
PowerManager::addTarget(workload::Priority pool,
                        telemetry::ClockControllable *target)
{
    POLCA_CHECK(!started_, "addTarget after start");
    POLCA_CHECK(target != nullptr, "null target");

    PoolState &state = poolState(pool);
    telemetry::SmbpbiController::Options channelOptions;
    channelOptions.commandLatency = options_.oobCommandLatency;
    channelOptions.brakeLatency = options_.brakeLatency;
    channelOptions.silentFailureProbability =
        options_.smbpbiFailureProbability;
    state.targets.push_back(target);
    state.channels.push_back(
        std::make_unique<telemetry::SmbpbiController>(
            sim_, *target,
            rng_.fork(0x5b + state.channels.size() * 17 +
                      (pool == workload::Priority::High ? 1000 : 0)),
            channelOptions));
    state.consecutiveReissues.push_back(0);
    state.flagged.push_back(false);
    if (obs_) {
        auto track = static_cast<std::int32_t>(
            state.channels.size() - 1 +
            (pool == workload::Priority::High ? 100 : 0));
        state.channels.back()->attachObservability(obs_, track);
    }
}

void
PowerManager::attachObservability(obs::Observability *obs)
{
    obs_ = obs;
    if (!obs) {
        trace_ = nullptr;
        capStat_ = uncapStat_ = reissueStat_ = brakeStat_ =
            failSafeStat_ = flaggedStat_ = modeStat_ = nullptr;
        decisionGapStat_ = nullptr;
        brakeDwellStat_ = mttrStat_ = nullptr;
        for (PoolState *pool : {&lowPool_, &highPool_}) {
            for (auto &channel : pool->channels)
                channel->attachObservability(nullptr, 0);
        }
        return;
    }
    trace_ = &obs->trace;
    capStat_ = &obs->metrics.counter(
        "manager.cap_commands", "pool-wide capping decisions");
    uncapStat_ = &obs->metrics.counter(
        "manager.uncap_commands", "pool-wide uncapping decisions");
    reissueStat_ = &obs->metrics.counter(
        "manager.reissues",
        "commands re-issued after failed verification");
    brakeStat_ = &obs->metrics.counter(
        "manager.brake_events", "reactive power-brake engagements");
    failSafeStat_ = &obs->metrics.counter(
        "manager.failsafe_entries",
        "watchdog-declared telemetry blackouts");
    flaggedStat_ = &obs->metrics.counter(
        "manager.flagged_channels",
        "OOB channels flagged by the re-issue circuit breaker");
    modeStat_ = &obs->metrics.counter(
        "manager.mode_transitions",
        "control-mode ladder transitions (Full/StalePartial/Blind)");
    decisionGapStat_ = &obs->metrics.histogram(
        "manager.decision_gap_s", 0.0, 30.0, 15,
        "gap between consecutive telemetry readings (seconds)");
    // 1 ms .. ~1 day at 1 % relative error covers both a minimum
    // brake hold and a blackout-length dwell or recovery.
    brakeDwellStat_ = &obs->metrics.logHistogram(
        "manager.brake_dwell_s", 1e-3, 1e5, 0.01,
        "power-brake engage-to-release dwell (seconds)");
    mttrStat_ = &obs->metrics.logHistogram(
        "manager.mttr_s", 1e-3, 1e5, 0.01,
        "controller crash to first delivered reading (seconds)");
    for (workload::Priority pool :
         {workload::Priority::Low, workload::Priority::High}) {
        PoolState &state = poolState(pool);
        for (std::size_t i = 0; i < state.channels.size(); ++i) {
            auto track = static_cast<std::int32_t>(
                i + (pool == workload::Priority::High ? 100 : 0));
            state.channels[i]->attachObservability(obs, track);
        }
    }
}

std::vector<telemetry::SmbpbiController *>
PowerManager::channels(workload::Priority pool)
{
    std::vector<telemetry::SmbpbiController *> out;
    for (const auto &channel : poolState(pool).channels)
        out.push_back(channel.get());
    return out;
}

void
PowerManager::start()
{
    if (started_)
        return;
    started_ = true;
    // Staleness is measured from start, not from tick 0: a manager
    // attached mid-run must not instantly declare telemetry dead.
    lastReadingTime_ = sim_.now();
    aliveSince_ = sim_.now();
    modeSince_ = sim_.now();
    telemetry_.addListener([this](sim::Tick now, double watts) {
        onReading(now, watts);
    });
    if (options_.watchdogEnabled) {
        watchdog_ = sim_.every(
            options_.watchdogInterval,
            [this](sim::Tick now) { watchdogCheck(now); });
    }
}

void
PowerManager::onReading(sim::Tick now, double watts)
{
    // A dead controller process sees nothing; the listener outlives
    // the crash, so readings during the downtime are dropped here.
    if (crashed_)
        return;

    // Telemetry readings arrive on the simulation clock, so they can
    // never run backwards, and sensors clamp at zero (FaultInjector
    // included), so a negative reading is a wiring bug upstream.
    POLCA_ASSERT(now >= lastReadingTime_,
                 "reading at t=", now, " behind previous t=",
                 lastReadingTime_);
    POLCA_CHECK(watts >= 0.0, "negative row power ", watts, " W");

    // A fresh reading means telemetry is back: leave fail-safe.
    // The escalated rules stay active and release through the normal
    // hysteresis path below, so recovery is conservative, not abrupt.
    if (failSafe_)
        exitFailSafe(now);
    if (mode_ != ControlMode::Full)
        setMode(now, ControlMode::Full);
    if (recovering_) {
        // First delivered reading since the restart closes the
        // recovery: the controller is acting on fresh data again.
        recovering_ = false;
        ++controllerRecoveries_;
        sim::Tick mttr = now - crashedAt_;
        mttrTotalTicks_ += mttr;
        mttrMaxTicks_ = std::max(mttrMaxTicks_, mttr);
        if (mttrStat_)
            mttrStat_->add(sim::ticksToSeconds(mttr));
    }

    double utilization = watts / provisionedWatts_;
    utilization_.add(utilization);

    // Trailing-mean smoothing for threshold decisions.  Readings
    // taken while the brake is engaged are artificially low and
    // would trick the thresholds into uncapping, so they are kept
    // out of the window.
    if (!brakeEngaged_) {
        recentReadings_.emplace_back(now, utilization);
        smoothedSum_ += utilization;
        while (now - recentReadings_.front().first >=
               options_.decisionSmoothingWindow) {
            smoothedSum_ -= recentReadings_.front().second;
            recentReadings_.pop_front();
        }
    }
    // The incremental window sum is a sum of non-negative terms;
    // float cancellation driving it negative would silently corrupt
    // every later cap decision.
    POLCA_ASSERT(smoothedSum_ >= -1e-9,
                 "smoothing window sum went negative: ", smoothedSum_);
    double smoothed = recentReadings_.empty()
        ? utilization
        : smoothedSum_ / static_cast<double>(recentReadings_.size());

    // Locked-time accounting across the telemetry interval.
    sim::Tick interval = now - lastReadingTime_;
    if (decisionGapStat_)
        decisionGapStat_->add(sim::ticksToSeconds(interval));
    lastReadingTime_ = now;
    for (PoolState *pool : {&lowPool_, &highPool_}) {
        if (pool->commandedMhz > 0.0)
            pool->lockedTicks += interval;
    }

    // Emergency power brake dominates rule transitions, but cap
    // commands keep flowing so the fleet is maximally capped by the
    // time the brake releases.
    if (brakeEngaged_) {
        if (utilization <= policy_.powerBrakeReleaseFraction &&
            now - brakeEngagedAt_ >= options_.minBrakeHold) {
            releaseBrake();
        }
        applyDesiredLocks(now);
        return;
    }
    if (policy_.powerBrakeEnabled &&
        utilization >= policy_.powerBrakeFraction) {
        engageBrake(now, /*countEvent=*/true);
        applyDesiredLocks(now);
        return;
    }

    updateRuleStates(now, smoothed);
    applyDesiredLocks(now);
}

void
PowerManager::updateRuleStates(sim::Tick now, double utilization)
{
    // Release with hysteresis: scan the escalation ladder from the
    // top, at most one rule per reading.  Uncapping is conservative:
    // it also waits out the rule's dwell time.
    for (std::size_t i = policy_.rules.size(); i-- > 0;) {
        if (ruleActive_[i] &&
            utilization <= policy_.rules[i].uncapFraction &&
            now - ruleActivatedAt_[i] >= options_.minRuleDwell) {
            ruleActive_[i] = false;
            if (trace_) {
                trace_->instant(obs::TraceCategory::Control,
                                "rule_release", now, -1,
                                static_cast<double>(i));
            }
            return;  // one transition per reading
        }
    }
    // Escalate: first inactive rule whose trigger is breached.
    for (std::size_t i = 0; i < policy_.rules.size(); ++i) {
        if (!ruleActive_[i] &&
            utilization >= policy_.rules[i].capFraction) {
            ruleActive_[i] = true;
            ruleActivatedAt_[i] = now;
            if (trace_) {
                trace_->instant(obs::TraceCategory::Control,
                                "rule_escalate", now, -1,
                                static_cast<double>(i));
            }
            return;
        }
    }
}

void
PowerManager::applyDesiredLocks(sim::Tick now)
{
    for (workload::Priority pool :
         {workload::Priority::Low, workload::Priority::High}) {
        PoolState &state = poolState(pool);

        // Desired lock = lowest frequency among active rules
        // targeting this pool (deeper caps win).
        double desired = 0.0;
        for (std::size_t i = 0; i < policy_.rules.size(); ++i) {
            if (!ruleActive_[i] || policy_.rules[i].target != pool)
                continue;
            if (desired == 0.0 || policy_.rules[i].lockMhz < desired)
                desired = policy_.rules[i].lockMhz;
        }

        // Cap-bound contract: a commanded lock must sit inside the
        // GPU's controllable range (policy.validate() bounds each
        // rule, so a violation here means the ladder logic broke).
        POLCA_ASSERT(desired >= 0.0,
                     "negative desired lock ", desired, " MHz");
        if (desired != state.commandedMhz) {
            bool capping = desired > 0.0 &&
                (state.commandedMhz == 0.0 ||
                 desired < state.commandedMhz);
            for (auto &channel : state.channels) {
                if (desired > 0.0)
                    channel->requestClockLock(desired);
                else
                    channel->requestClockUnlock();
            }
            state.commandedMhz = desired;
            state.lastCommandTime = now;
            if (capping) {
                ++capCommands_;
                if (capStat_)
                    ++*capStat_;
            } else {
                ++uncapCommands_;
                if (uncapStat_)
                    ++*uncapStat_;
            }
        } else {
            verifyApplied(now, state);
        }
    }
}

void
PowerManager::verifyApplied(sim::Tick now, PoolState &pool)
{
    if (pool.lastCommandTime < 0)
        return;
    if (now - pool.lastCommandTime <
        options_.oobCommandLatency + options_.verifySlack) {
        return;  // command may still be in flight
    }
    for (std::size_t i = 0; i < pool.targets.size(); ++i) {
        double applied = pool.targets[i]->appliedClockLockMhz();
        if (clocksMatch(applied, pool.commandedMhz)) {
            pool.consecutiveReissues[i] = 0;
            continue;
        }
        // Silent SMBPBI failure: re-issue on the affected channel.
        if (pool.commandedMhz > 0.0)
            pool.channels[i]->requestClockLock(pool.commandedMhz);
        else
            pool.channels[i]->requestClockUnlock();
        ++reissued_;
        if (reissueStat_)
            ++*reissueStat_;
        pool.lastCommandTime = now;
        // Circuit breaker: a channel that keeps needing re-issues is
        // likely broken, not unlucky — flag it for the operator.
        if (++pool.consecutiveReissues[i] >=
                options_.channelFlagThreshold &&
            !pool.flagged[i]) {
            pool.flagged[i] = true;
            ++flaggedChannels_;
            if (flaggedStat_)
                ++*flaggedStat_;
            sim::warn("PowerManager: OOB channel ", i,
                         " needed ", pool.consecutiveReissues[i],
                         " consecutive re-issues; flagging");
        }
    }
}

void
PowerManager::watchdogCheck(sim::Tick now)
{
    // The watchdog timer dies with the controller process
    // (controllerCrash resets it), so this never observes crashed_.
    sim::Tick staleness = now - lastReadingTime_;
    if (!failSafe_) {
        if (staleness >= options_.watchdogTimeout) {
            enterFailSafe(now);
        } else if (mode_ == ControlMode::Full &&
                   staleness >= options_.staleWarnTimeout) {
            setMode(now, ControlMode::StalePartial);
        }
    }
    // Recovery-SLO accounting: integrate (at heartbeat granularity)
    // the time the row sits under caps the manager cannot currently
    // justify with fresh data.
    if (mode_ != ControlMode::Full && capsHeld())
        capsHeldStaleTicks_ += options_.watchdogInterval;
}

void
PowerManager::escalateAllRules(sim::Tick now)
{
    for (std::size_t i = 0; i < policy_.rules.size(); ++i) {
        if (!ruleActive_[i]) {
            ruleActive_[i] = true;
            ruleActivatedAt_[i] = now;
        }
    }
}

void
PowerManager::enterFailSafe(sim::Tick now)
{
    failSafe_ = true;
    failSafeEnteredAt_ = now;
    // How long the row ran unprotected before the watchdog acted —
    // the headline number the chaos campaign's safety SLO checks.
    timeToFailSafeMax_ =
        std::max(timeToFailSafeMax_, now - lastReadingTime_);
    setMode(now, ControlMode::Blind);
    ++failSafeEntries_;
    if (failSafeStat_)
        ++*failSafeStat_;
    if (trace_) {
        trace_->instant(obs::TraceCategory::Control, "failsafe_enter",
                        now, -1,
                        sim::ticksToSeconds(now - lastReadingTime_));
    }
    sim::warn("PowerManager: telemetry stale for ",
                 sim::ticksToSeconds(now - lastReadingTime_),
                 " s; entering fail-safe");
    // Flying blind: assume the worst.  Escalate every rule to the
    // deepest caps and, when allowed, pull the brake — its dedicated
    // hardware line works even when the BMC command path does not.
    escalateAllRules(now);
    // Precautionary, not reactive: counted under failSafeEntries,
    // not powerBrakeEvents.
    if (options_.failSafeEngageBrake && policy_.powerBrakeEnabled &&
        !brakeEngaged_) {
        engageBrake(now, /*countEvent=*/false);
    }
    applyDesiredLocks(now);
}

void
PowerManager::exitFailSafe(sim::Tick now)
{
    POLCA_ASSERT(now >= failSafeEnteredAt_,
                 "fail-safe exit at t=", now, " before entry at t=",
                 failSafeEnteredAt_);
    failSafe_ = false;
    failSafeTicks_ += now - failSafeEnteredAt_;
    if (trace_) {
        trace_->complete(obs::TraceCategory::Control, "fail_safe",
                         failSafeEnteredAt_, now - failSafeEnteredAt_,
                         -1, 0.0);
    }
    // The brake (if we pulled it) releases through the regular
    // reading path once utilization is back under the release
    // threshold and the minimum hold has passed.
}

sim::Tick
PowerManager::failSafeTicks() const
{
    sim::Tick total = failSafeTicks_;
    if (failSafe_)
        total += sim_.now() - failSafeEnteredAt_;
    return total;
}

bool
PowerManager::channelFlagged(workload::Priority pool,
                             std::size_t index) const
{
    const PoolState &state = poolState(pool);
    return index < state.flagged.size() && state.flagged[index];
}

void
PowerManager::engageBrake(sim::Tick now, bool countEvent)
{
    POLCA_ASSERT(!brakeEngaged_, "brake engaged twice");
    brakeEngaged_ = true;
    brakeEngagedAt_ = now;
    if (countEvent) {
        ++brakeEvents_;
        if (brakeStat_)
            ++*brakeStat_;
    }
    if (trace_) {
        trace_->instant(obs::TraceCategory::Power, "brake_engage",
                        now, -1, countEvent ? 1.0 : 0.0);
    }
    for (PoolState *pool : {&lowPool_, &highPool_}) {
        for (auto &channel : pool->channels)
            channel->requestPowerBrake(true);
    }
    // Hitting the brake means the policy under-capped: escalate
    // every rule now so the row comes back from the brake at the
    // deepest capping level instead of rebounding over the limit.
    escalateAllRules(now);
}

void
PowerManager::releaseBrake()
{
    POLCA_ASSERT(brakeEngaged_, "releasing a brake that is not engaged");
    brakeEngaged_ = false;
    brakeTicks_ += sim_.now() - brakeEngagedAt_;
    if (brakeDwellStat_) {
        brakeDwellStat_->add(
            sim::ticksToSeconds(sim_.now() - brakeEngagedAt_));
    }
    if (trace_) {
        trace_->instant(obs::TraceCategory::Power, "brake_release",
                        sim_.now(), -1, 0.0);
    }
    for (PoolState *pool : {&lowPool_, &highPool_}) {
        for (auto &channel : pool->channels)
            channel->requestPowerBrake(false);
    }
}

void
PowerManager::setMode(sim::Tick now, ControlMode mode)
{
    if (mode == mode_)
        return;
    if (mode_ == ControlMode::StalePartial)
        staleTicks_ += now - modeSince_;
    mode_ = mode;
    modeSince_ = now;
    ++modeTransitions_;
    if (modeStat_)
        ++*modeStat_;
    if (trace_) {
        trace_->instant(obs::TraceCategory::Control, "mode_transition",
                        now, -1, static_cast<double>(mode));
    }
}

bool
PowerManager::capsHeld() const
{
    return brakeEngaged_ || lowPool_.commandedMhz > 0.0 ||
        highPool_.commandedMhz > 0.0;
}

PowerManager::Snapshot
PowerManager::snapshot() const
{
    Snapshot snap;
    snap.ruleActive = ruleActive_;
    snap.ruleActivatedAt = ruleActivatedAt_;
    snap.lowCommandedMhz = lowPool_.commandedMhz;
    snap.highCommandedMhz = highPool_.commandedMhz;
    snap.brakeEngaged = brakeEngaged_;
    snap.brakeEngagedAt = brakeEngagedAt_;
    return snap;
}

void
PowerManager::controllerCrash()
{
    POLCA_CHECK(started_, "controller crash before start");
    POLCA_CHECK(!crashed_, "controller crashed twice");
    sim::Tick now = sim_.now();
    // The durable store gets the last write before the process dies;
    // a warm restart rehydrates from exactly this.
    persistedSnapshot_ = snapshot();
    // A dead process is not "in" fail-safe: close out the span so
    // failSafeTicks() stays an honest account of armed fail-safe.
    if (failSafe_)
        exitFailSafe(now);
    crashed_ = true;
    crashedAt_ = now;
    ++controllerCrashes_;
    // Process memory and timers die with the process.  The hardware
    // side survives: in-flight OOB commands still land, applied
    // clock locks persist, and the brake line stays asserted
    // (brakeEngaged_ mirrors that line, so it is not wiped).
    watchdog_.reset();
    std::fill(ruleActive_.begin(), ruleActive_.end(), false);
    std::fill(ruleActivatedAt_.begin(), ruleActivatedAt_.end(),
              sim::Tick{0});
    recentReadings_.clear();
    smoothedSum_ = 0.0;
    for (PoolState *pool : {&lowPool_, &highPool_}) {
        pool->commandedMhz = 0.0;
        pool->lastCommandTime = -1;
        std::fill(pool->consecutiveReissues.begin(),
                  pool->consecutiveReissues.end(), 0u);
        pool->flagged.assign(pool->flagged.size(), false);
    }
    setMode(now, ControlMode::Blind);
    sim::warn("PowerManager: controller crashed at t=",
              sim::ticksToSeconds(now), " s");
}

void
PowerManager::controllerRestart(bool coldRestart)
{
    POLCA_CHECK(crashed_, "controller restart without a crash");
    sim::Tick now = sim_.now();
    crashed_ = false;
    controllerDownTicks_ += now - crashedAt_;
    aliveSince_ = now;
    // Staleness is measured from revival: the new process cannot
    // blame its predecessor's blackout for readings it never missed.
    lastReadingTime_ = now;
    recovering_ = true;
    // While the controller was down every cap and the brake line
    // were frozen in place with nobody watching: the whole downtime
    // counts as caps-held-stale.
    if (persistedSnapshot_.brakeEngaged ||
        persistedSnapshot_.lowCommandedMhz > 0.0 ||
        persistedSnapshot_.highCommandedMhz > 0.0) {
        capsHeldStaleTicks_ += now - crashedAt_;
    }
    if (options_.watchdogEnabled) {
        watchdog_ = sim_.every(
            options_.watchdogInterval,
            [this](sim::Tick tick) { watchdogCheck(tick); });
    }
    if (!coldRestart) {
        // Warm: resume from last-known caps instead of blind.
        ruleActive_ = persistedSnapshot_.ruleActive;
        ruleActivatedAt_ = persistedSnapshot_.ruleActivatedAt;
        lowPool_.commandedMhz = persistedSnapshot_.lowCommandedMhz;
        highPool_.commandedMhz = persistedSnapshot_.highCommandedMhz;
        brakeEngaged_ = persistedSnapshot_.brakeEngaged;
        brakeEngagedAt_ = persistedSnapshot_.brakeEngagedAt;
        // Whatever drifted during the downtime is unknowable; push
        // the rehydrated posture back down every channel.
        for (PoolState *pool : {&lowPool_, &highPool_}) {
            if (pool->commandedMhz > 0.0) {
                for (auto &channel : pool->channels)
                    channel->requestClockLock(pool->commandedMhz);
                pool->lastCommandTime = now;
            }
            if (brakeEngaged_) {
                for (auto &channel : pool->channels)
                    channel->requestPowerBrake(true);
            }
        }
        setMode(now, ControlMode::StalePartial);
        sim::inform("PowerManager: warm restart at t=",
                    sim::ticksToSeconds(now),
                    " s; resumed from snapshot");
    } else {
        // Cold: no snapshot to rehydrate.  Assume the worst until
        // telemetry proves the world out.
        sim::warn("PowerManager: cold restart at t=",
                  sim::ticksToSeconds(now),
                  " s; no snapshot, entering fail-safe");
        enterFailSafe(now);
    }
}

void
PowerManager::serverRestarted(telemetry::ClockControllable *target)
{
    if (crashed_ || target == nullptr)
        return;  // a dead controller notices nothing
    sim::Tick now = sim_.now();
    for (PoolState *pool : {&lowPool_, &highPool_}) {
        for (std::size_t i = 0; i < pool->targets.size(); ++i) {
            if (pool->targets[i] != target)
                continue;
            // The re-issue streak and any flag described the dead
            // server, not the channel hardware: reset them.
            pool->consecutiveReissues[i] = 0;
            if (pool->flagged[i]) {
                pool->flagged[i] = false;
                sim::inform("PowerManager: OOB channel ", i,
                            " unflagged after server restart");
            }
            // The reboot wiped the server's applied OOB state;
            // re-establish the pool's posture ahead of the next
            // verification pass.
            if (pool->commandedMhz > 0.0) {
                pool->channels[i]->requestClockLock(
                    pool->commandedMhz);
                pool->lastCommandTime = now;
                ++reissued_;
                if (reissueStat_)
                    ++*reissueStat_;
            }
            if (brakeEngaged_)
                pool->channels[i]->requestPowerBrake(true);
            return;
        }
    }
}

sim::Tick
PowerManager::staleTicks() const
{
    sim::Tick total = staleTicks_;
    if (mode_ == ControlMode::StalePartial)
        total += sim_.now() - modeSince_;
    return total;
}

sim::Tick
PowerManager::brakeTicks() const
{
    sim::Tick total = brakeTicks_;
    if (brakeEngaged_)
        total += sim_.now() - brakeEngagedAt_;
    return total;
}

sim::Tick
PowerManager::lockedTicks(workload::Priority pool) const
{
    return poolState(pool).lockedTicks;
}

double
PowerManager::desiredLockMhz(workload::Priority pool) const
{
    return poolState(pool).commandedMhz;
}

} // namespace polca::core
