#include "core/power_manager.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace polca::core {

PowerManager::PowerManager(sim::Simulation &sim,
                           telemetry::RowManager &telemetry,
                           double provisionedWatts, PolicyConfig policy,
                           sim::Rng rng, ManagerOptions options)
    : sim_(sim), telemetry_(telemetry),
      provisionedWatts_(provisionedWatts), policy_(std::move(policy)),
      rng_(rng), options_(options),
      ruleActive_(policy_.rules.size(), false),
      ruleActivatedAt_(policy_.rules.size(), 0)
{
    if (provisionedWatts_ <= 0.0)
        sim::fatal("PowerManager: non-positive provisioned power");
    policy_.validate();
}

PowerManager::PoolState &
PowerManager::poolState(workload::Priority pool)
{
    return pool == workload::Priority::High ? highPool_ : lowPool_;
}

const PowerManager::PoolState &
PowerManager::poolState(workload::Priority pool) const
{
    return pool == workload::Priority::High ? highPool_ : lowPool_;
}

void
PowerManager::addTarget(workload::Priority pool,
                        telemetry::ClockControllable *target)
{
    if (started_)
        sim::panic("PowerManager: addTarget after start");
    if (!target)
        sim::panic("PowerManager: null target");

    PoolState &state = poolState(pool);
    telemetry::SmbpbiController::Options channelOptions;
    channelOptions.commandLatency = options_.oobCommandLatency;
    channelOptions.brakeLatency = options_.brakeLatency;
    channelOptions.silentFailureProbability =
        options_.smbpbiFailureProbability;
    state.targets.push_back(target);
    state.channels.push_back(
        std::make_unique<telemetry::SmbpbiController>(
            sim_, *target,
            rng_.fork(0x5b + state.channels.size() * 17 +
                      (pool == workload::Priority::High ? 1000 : 0)),
            channelOptions));
}

void
PowerManager::start()
{
    if (started_)
        return;
    started_ = true;
    telemetry_.addListener([this](sim::Tick now, double watts) {
        onReading(now, watts);
    });
}

void
PowerManager::onReading(sim::Tick now, double watts)
{
    double utilization = watts / provisionedWatts_;
    utilization_.add(utilization);

    // Trailing-mean smoothing for threshold decisions.  Readings
    // taken while the brake is engaged are artificially low and
    // would trick the thresholds into uncapping, so they are kept
    // out of the window.
    if (!brakeEngaged_) {
        recentReadings_.emplace_back(now, utilization);
        smoothedSum_ += utilization;
        while (now - recentReadings_.front().first >=
               options_.decisionSmoothingWindow) {
            smoothedSum_ -= recentReadings_.front().second;
            recentReadings_.pop_front();
        }
    }
    double smoothed = recentReadings_.empty()
        ? utilization
        : smoothedSum_ / static_cast<double>(recentReadings_.size());

    // Locked-time accounting across the telemetry interval.
    sim::Tick interval = now - lastReadingTime_;
    lastReadingTime_ = now;
    for (PoolState *pool : {&lowPool_, &highPool_}) {
        if (pool->commandedMhz > 0.0)
            pool->lockedTicks += interval;
    }

    // Emergency power brake dominates rule transitions, but cap
    // commands keep flowing so the fleet is maximally capped by the
    // time the brake releases.
    if (brakeEngaged_) {
        if (utilization <= policy_.powerBrakeReleaseFraction &&
            now - brakeEngagedAt_ >= options_.minBrakeHold) {
            releaseBrake();
        }
        applyDesiredLocks(now);
        return;
    }
    if (policy_.powerBrakeEnabled &&
        utilization >= policy_.powerBrakeFraction) {
        engageBrake(now);
        applyDesiredLocks(now);
        return;
    }

    updateRuleStates(now, smoothed);
    applyDesiredLocks(now);
}

void
PowerManager::updateRuleStates(sim::Tick now, double utilization)
{
    // Release with hysteresis: scan the escalation ladder from the
    // top, at most one rule per reading.  Uncapping is conservative:
    // it also waits out the rule's dwell time.
    for (std::size_t i = policy_.rules.size(); i-- > 0;) {
        if (ruleActive_[i] &&
            utilization <= policy_.rules[i].uncapFraction &&
            now - ruleActivatedAt_[i] >= options_.minRuleDwell) {
            ruleActive_[i] = false;
            return;  // one transition per reading
        }
    }
    // Escalate: first inactive rule whose trigger is breached.
    for (std::size_t i = 0; i < policy_.rules.size(); ++i) {
        if (!ruleActive_[i] &&
            utilization >= policy_.rules[i].capFraction) {
            ruleActive_[i] = true;
            ruleActivatedAt_[i] = now;
            return;
        }
    }
}

void
PowerManager::applyDesiredLocks(sim::Tick now)
{
    for (workload::Priority pool :
         {workload::Priority::Low, workload::Priority::High}) {
        PoolState &state = poolState(pool);

        // Desired lock = lowest frequency among active rules
        // targeting this pool (deeper caps win).
        double desired = 0.0;
        for (std::size_t i = 0; i < policy_.rules.size(); ++i) {
            if (!ruleActive_[i] || policy_.rules[i].target != pool)
                continue;
            if (desired == 0.0 || policy_.rules[i].lockMhz < desired)
                desired = policy_.rules[i].lockMhz;
        }

        if (desired != state.commandedMhz) {
            bool capping = desired > 0.0 &&
                (state.commandedMhz == 0.0 ||
                 desired < state.commandedMhz);
            for (auto &channel : state.channels) {
                if (desired > 0.0)
                    channel->requestClockLock(desired);
                else
                    channel->requestClockUnlock();
            }
            state.commandedMhz = desired;
            state.lastCommandTime = now;
            if (capping)
                ++capCommands_;
            else
                ++uncapCommands_;
        } else {
            verifyApplied(now, state);
        }
    }
}

void
PowerManager::verifyApplied(sim::Tick now, PoolState &pool)
{
    if (pool.lastCommandTime < 0)
        return;
    if (now - pool.lastCommandTime <
        options_.oobCommandLatency + options_.verifySlack) {
        return;  // command may still be in flight
    }
    for (std::size_t i = 0; i < pool.targets.size(); ++i) {
        double applied = pool.targets[i]->appliedClockLockMhz();
        if (applied == pool.commandedMhz)
            continue;
        // Silent SMBPBI failure: re-issue on the affected channel.
        if (pool.commandedMhz > 0.0)
            pool.channels[i]->requestClockLock(pool.commandedMhz);
        else
            pool.channels[i]->requestClockUnlock();
        ++reissued_;
        pool.lastCommandTime = now;
    }
}

void
PowerManager::engageBrake(sim::Tick now)
{
    brakeEngaged_ = true;
    brakeEngagedAt_ = now;
    ++brakeEvents_;
    for (PoolState *pool : {&lowPool_, &highPool_}) {
        for (auto &channel : pool->channels)
            channel->requestPowerBrake(true);
    }
    // Hitting the brake means the policy under-capped: escalate
    // every rule now so the row comes back from the brake at the
    // deepest capping level instead of rebounding over the limit.
    for (std::size_t i = 0; i < policy_.rules.size(); ++i) {
        if (!ruleActive_[i]) {
            ruleActive_[i] = true;
            ruleActivatedAt_[i] = now;
        }
    }
}

void
PowerManager::releaseBrake()
{
    brakeEngaged_ = false;
    for (PoolState *pool : {&lowPool_, &highPool_}) {
        for (auto &channel : pool->channels)
            channel->requestPowerBrake(false);
    }
}

sim::Tick
PowerManager::lockedTicks(workload::Priority pool) const
{
    return poolState(pool).lockedTicks;
}

double
PowerManager::desiredLockMhz(workload::Priority pool) const
{
    return poolState(pool).commandedMhz;
}

} // namespace polca::core
