#include "core/sweep_runner.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <utility>

#include "core/thread_pool.hh"
#include "core/warmup_snapshot.hh"
#include "sim/logging.hh"

namespace polca::core {

SweepRunner::SweepRunner(std::vector<SweepPoint> points,
                         SweepOptions options)
    : points_(std::move(points)), options_(std::move(options))
{}

std::string
SweepRunner::artifactStem(const std::string &label, std::size_t index)
{
    if (label.empty())
        return "point-" + std::to_string(index);
    std::string stem;
    stem.reserve(label.size());
    for (char c : label) {
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '-' || c == '.') {
            stem += c;
        } else if (c == ',') {
            stem += '_';
        } else if (c == '=') {
            stem += '-';
        } else {
            stem += '_';
        }
    }
    return stem;
}

void
SweepRunner::planBranches()
{
    std::size_t n = points_.size();
    group_.assign(n, -1);
    groupLeader_.clear();
    groupPromises_.clear();
    groupSnapshots_.clear();
    if (!options_.branch)
        return;

    std::map<std::string, int> byKey;
    for (std::size_t i = 0; i < n; ++i) {
        const SweepPoint &point = points_[i];
        if (point.config.warmup <= 0)
            continue;
        // Surface fault-plan/warmup conflicts before any point has
        // burned simulation time.
        validateWarmupConfig(point.config);
        int g = -1;
        if (!point.warmupKey.empty()) {
            auto it = byKey.find(point.warmupKey);
            if (it != byKey.end())
                g = it->second;
        }
        if (g < 0) {
            g = static_cast<int>(groupLeader_.size());
            groupLeader_.push_back(i);
            if (!point.warmupKey.empty())
                byKey.emplace(point.warmupKey, g);
        }
        group_[i] = g;
    }

    groupPromises_ = std::vector<
        std::promise<std::shared_ptr<const WarmupSnapshot>>>(
        groupLeader_.size());
    groupSnapshots_.resize(groupLeader_.size());
    for (std::size_t g = 0; g < groupLeader_.size(); ++g)
        groupSnapshots_[g] = groupPromises_[g].get_future().share();
}

obs::Observability *
SweepRunner::runManaged(std::size_t index,
                        obs::Observability *fallbackObs)
{
    const SweepPoint &point = points_[index];
    SweepPointResult &out = results_[index];
    out.label = point.label;

    ExperimentConfig config = point.config;
    if (!options_.artifactDir.empty() && !config.obs)
        config.obs = fallbackObs;

    int g = group_[index];
    if (g >= 0) {
        if (groupLeader_[static_cast<std::size_t>(g)] == index) {
            // Leader: run the warmup live and publish the boundary
            // snapshot for the rest of the group (chaining any hook
            // the caller installed).
            auto user = config.onWarmupSnapshot;
            auto *promise = &groupPromises_[static_cast<std::size_t>(g)];
            config.onWarmupSnapshot =
                [promise,
                 user](std::shared_ptr<const WarmupSnapshot> snap) {
                    promise->set_value(snap);
                    if (user)
                        user(snap);
                };
        } else {
            // Dependent: fork from the leader's snapshot instead of
            // re-simulating [0, warmup).
            config.resumeFrom =
                groupSnapshots_[static_cast<std::size_t>(g)].get();
        }
    }
    out.result = runOversubExperiment(config);
    return config.obs;
}

void
SweepRunner::runBaseline(std::size_t index)
{
    ExperimentConfig base = unthrottledBaseline(points_[index].config);
    base.obs = nullptr;
    int g = group_[index];
    if (g >= 0) {
        // The baseline shares the point's warmup prefix: only
        // control-plane knobs differ, and the control plane does not
        // exist before t = warmup.
        base.onWarmupSnapshot = nullptr;
        base.resumeFrom =
            groupSnapshots_[static_cast<std::size_t>(g)].get();
    }
    results_[index].baseline = runOversubExperiment(base);
}

void
SweepRunner::finishPoint(std::size_t index, obs::Observability *sink)
{
    SweepPointResult &out = results_[index];
    if (options_.runBaseline) {
        out.lowNorm = normalizeLatency(out.result.low,
                                       out.baseline.low);
        out.highNorm = normalizeLatency(out.result.high,
                                        out.baseline.high);
    }
    if (options_.artifactDir.empty())
        return;

    std::string stem = artifactStem(out.label, index);
    std::filesystem::path path =
        std::filesystem::path(options_.artifactDir) /
        (stem + ".metrics.csv");
    std::ofstream os(path);
    if (!os) {
        sim::fatal("SweepRunner: cannot write artifact ",
                   path.string());
    }
    sink->metrics.dumpCsv(os);
    out.artifactPath = path.string();
    artifacts_.push_back(stem + ".metrics.csv");

    // Interval stats, when the point's [obs] cadence produced any.
    if (!sink->interval.empty()) {
        std::filesystem::path ipath =
            std::filesystem::path(options_.artifactDir) /
            (stem + ".stats_interval.csv");
        std::ofstream is(ipath);
        if (!is) {
            sim::fatal("SweepRunner: cannot write artifact ",
                       ipath.string());
        }
        sink->interval.writeCsv(is);
        artifacts_.push_back(stem + ".stats_interval.csv");
    }
}

void
SweepRunner::runSequential()
{
    for (std::size_t i = 0; i < points_.size(); ++i) {
        if (options_.echoProgress) {
            std::printf("[sweep %zu/%zu] %s\n", i + 1,
                        points_.size(),
                        points_[i].label.empty()
                            ? "(single point)"
                            : points_[i].label.c_str());
            std::fflush(stdout);
        }
        obs::Observability obs;
        obs::Observability *sink = runManaged(i, &obs);
        if (options_.runBaseline)
            runBaseline(i);
        finishPoint(i, sink);
    }
}

void
SweepRunner::runParallel(int jobs)
{
    std::size_t n = points_.size();
    if (options_.echoProgress) {
        std::printf("[sweep] running %zu point%s on %d workers\n", n,
                    n == 1 ? "" : "s", jobs);
        std::fflush(stdout);
    }

    // One sink per point: tasks must not share a metrics registry.
    std::vector<std::unique_ptr<obs::Observability>> sinks(n);
    for (std::size_t i = 0; i < n; ++i)
        sinks[i] = std::make_unique<obs::Observability>();

    std::vector<std::future<obs::Observability *>> managed(n);
    std::vector<std::future<void>> baselines(n);
    {
        ThreadPool pool(static_cast<std::size_t>(jobs));

        // Submit group-leader managed runs first.  The pool's queue
        // is FIFO, so by the time any worker picks up a dependent
        // run (which blocks on its group's snapshot future), the
        // leader that fulfills it has already been picked up by some
        // worker and is making progress — no worker can starve the
        // leader it is waiting for.
        std::vector<char> isLeader(n, 0);
        for (std::size_t leader : groupLeader_)
            isLeader[leader] = 1;
        for (std::size_t i = 0; i < n; ++i) {
            if (!isLeader[i])
                continue;
            managed[i] = pool.submit([this, i, &sinks] {
                return runManaged(i, sinks[i].get());
            });
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (!isLeader[i]) {
                managed[i] = pool.submit([this, i, &sinks] {
                    return runManaged(i, sinks[i].get());
                });
            }
            if (options_.runBaseline) {
                baselines[i] = pool.submit([this, i] {
                    runBaseline(i);
                });
            }
        }

        // Stitch in point order on this thread: artifacts and
        // progress come out in the same order as a jobs=1 run.
        for (std::size_t i = 0; i < n; ++i) {
            obs::Observability *sink = managed[i].get();
            if (options_.runBaseline)
                baselines[i].get();
            finishPoint(i, sink);
            if (options_.echoProgress) {
                std::printf("[sweep %zu/%zu] %s: done\n", i + 1, n,
                            points_[i].label.empty()
                                ? "(single point)"
                                : points_[i].label.c_str());
                std::fflush(stdout);
            }
        }
    }
}

void
SweepRunner::writeSummary()
{
    if (options_.artifactDir.empty())
        return;
    std::filesystem::path path =
        std::filesystem::path(options_.artifactDir) / "summary.csv";
    std::ofstream os(path);
    if (!os)
        return;
    os << "label,lp_p99_s,hp_p99_s,lp_p99_norm,hp_p99_norm,"
          "brake_events,breaker_trips,max_utilization,"
          "energy_kwh,failsafe_s,mttr_max_s,caps_stale_s,"
          "safety_violations\n";
    for (const SweepPointResult &r : results_) {
        os << '"' << r.label << '"' << ','
           << r.result.low.p99 << ',' << r.result.high.p99
           << ',' << r.lowNorm.p99 << ',' << r.highNorm.p99
           << ',' << r.result.powerBrakeEvents << ','
           << r.result.breakerTrips << ','
           << r.result.maxUtilization << ','
           << r.result.energyKwh << ','
           << sim::ticksToSeconds(r.result.failSafeTicks) << ','
           << sim::ticksToSeconds(r.result.mttrMaxTicks) << ','
           << sim::ticksToSeconds(r.result.capsHeldStaleTicks) << ','
           << r.result.violations.size() << '\n';
    }
    os.close();
    artifacts_.push_back("summary.csv");

    if (options_.writeManifest) {
        obs::RunManifest manifest = options_.manifest;
        manifest.artifacts = artifacts_;
        std::filesystem::path mpath =
            std::filesystem::path(options_.artifactDir) /
            "manifest.json";
        std::ofstream ms(mpath);
        if (ms)
            manifest.writeJson(ms);
    }
}

const std::vector<SweepPointResult> &
SweepRunner::run()
{
    results_.clear();
    results_.resize(points_.size());
    artifacts_.clear();

    planBranches();
    if (options_.echoProgress && !groupLeader_.empty()) {
        std::size_t branched = 0;
        for (int g : group_)
            branched += g >= 0;
        // Leaders simulate their own warmup live; every other run
        // of a group forks from the leader's snapshot.
        std::size_t runs = branched * (options_.runBaseline ? 2 : 1) -
                           groupLeader_.size();
        std::printf("[sweep] branch: %zu warmup snapshot%s feeding "
                    "%zu run%s\n",
                    groupLeader_.size(),
                    groupLeader_.size() == 1 ? "" : "s", runs,
                    runs == 1 ? "" : "s");
        std::fflush(stdout);
    }

    if (!options_.artifactDir.empty())
        std::filesystem::create_directories(options_.artifactDir);

    int jobs = options_.jobs;
    if (jobs < 1) {
        sim::fatal("SweepRunner: jobs must be >= 1 (got ", jobs,
                   ")");
    }
    if (jobs == 1)
        runSequential();
    else
        runParallel(jobs);

    writeSummary();
    return results_;
}

analysis::Table
SweepRunner::summaryTable() const
{
    analysis::Table table({"point", "LP p99 (s)", "HP p99 (s)",
                           "LP p99 (norm)", "HP p99 (norm)", "brakes",
                           "trips", "max util", "energy (kWh)",
                           "failsafe (s)", "MTTR max (s)",
                           "violations"});
    for (const SweepPointResult &r : results_) {
        table.row()
            .cell(r.label.empty() ? "(single point)" : r.label)
            .cell(r.result.low.p99, 2)
            .cell(r.result.high.p99, 2)
            .cell(r.lowNorm.p99, 3)
            .cell(r.highNorm.p99, 3)
            .cell(static_cast<long long>(r.result.powerBrakeEvents))
            .cell(static_cast<long long>(r.result.breakerTrips))
            .percentCell(r.result.maxUtilization)
            .cell(r.result.energyKwh, 1)
            .cell(sim::ticksToSeconds(r.result.failSafeTicks), 0)
            .cell(sim::ticksToSeconds(r.result.mttrMaxTicks), 0)
            .cell(static_cast<long long>(r.result.violations.size()));
    }
    return table;
}

} // namespace polca::core
