#include "core/sweep_runner.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "obs/observability.hh"
#include "sim/logging.hh"

namespace polca::core {

SweepRunner::SweepRunner(std::vector<SweepPoint> points,
                         SweepOptions options)
    : points_(std::move(points)), options_(std::move(options))
{}

std::string
SweepRunner::artifactStem(const std::string &label, std::size_t index)
{
    if (label.empty())
        return "point-" + std::to_string(index);
    std::string stem;
    stem.reserve(label.size());
    for (char c : label) {
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '-' || c == '.') {
            stem += c;
        } else if (c == ',') {
            stem += '_';
        } else if (c == '=') {
            stem += '-';
        } else {
            stem += '_';
        }
    }
    return stem;
}

const std::vector<SweepPointResult> &
SweepRunner::run()
{
    results_.clear();
    results_.reserve(points_.size());

    if (!options_.artifactDir.empty())
        std::filesystem::create_directories(options_.artifactDir);

    for (std::size_t i = 0; i < points_.size(); ++i) {
        const SweepPoint &point = points_[i];
        if (options_.echoProgress) {
            std::printf("[sweep %zu/%zu] %s\n", i + 1,
                        points_.size(),
                        point.label.empty() ? "(single point)"
                                            : point.label.c_str());
            std::fflush(stdout);
        }

        SweepPointResult out;
        out.label = point.label;

        obs::Observability obs;
        ExperimentConfig config = point.config;
        bool wantArtifact = !options_.artifactDir.empty();
        if (wantArtifact && !config.obs)
            config.obs = &obs;

        out.result = runOversubExperiment(config);

        if (options_.runBaseline) {
            ExperimentConfig base = unthrottledBaseline(point.config);
            base.obs = nullptr;
            out.baseline = runOversubExperiment(base);
            out.lowNorm =
                normalizeLatency(out.result.low, out.baseline.low);
            out.highNorm =
                normalizeLatency(out.result.high, out.baseline.high);
        }

        if (wantArtifact) {
            std::string stem = artifactStem(point.label, i);
            std::filesystem::path path =
                std::filesystem::path(options_.artifactDir) /
                (stem + ".metrics.csv");
            std::ofstream os(path);
            if (!os) {
                sim::fatal("SweepRunner: cannot write artifact ",
                           path.string());
            }
            config.obs->metrics.dumpCsv(os);
            out.artifactPath = path.string();
        }

        results_.push_back(std::move(out));
    }

    if (!options_.artifactDir.empty()) {
        std::filesystem::path path =
            std::filesystem::path(options_.artifactDir) /
            "summary.csv";
        std::ofstream os(path);
        if (os) {
            os << "label,lp_p99_s,hp_p99_s,lp_p99_norm,hp_p99_norm,"
                  "brake_events,breaker_trips,max_utilization,"
                  "energy_kwh\n";
            for (const SweepPointResult &r : results_) {
                os << '"' << r.label << '"' << ','
                   << r.result.low.p99 << ',' << r.result.high.p99
                   << ',' << r.lowNorm.p99 << ',' << r.highNorm.p99
                   << ',' << r.result.powerBrakeEvents << ','
                   << r.result.breakerTrips << ','
                   << r.result.maxUtilization << ','
                   << r.result.energyKwh << '\n';
            }
        }
    }
    return results_;
}

analysis::Table
SweepRunner::summaryTable() const
{
    analysis::Table table({"point", "LP p99 (s)", "HP p99 (s)",
                           "LP p99 (norm)", "HP p99 (norm)", "brakes",
                           "trips", "max util", "energy (kWh)"});
    for (const SweepPointResult &r : results_) {
        table.row()
            .cell(r.label.empty() ? "(single point)" : r.label)
            .cell(r.result.low.p99, 2)
            .cell(r.result.high.p99, 2)
            .cell(r.lowNorm.p99, 3)
            .cell(r.highNorm.p99, 3)
            .cell(static_cast<long long>(r.result.powerBrakeEvents))
            .cell(static_cast<long long>(r.result.breakerTrips))
            .percentCell(r.result.maxUtilization)
            .cell(r.result.energyKwh, 1);
    }
    return table;
}

} // namespace polca::core
