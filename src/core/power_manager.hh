/**
 * @file
 * The POLCA power manager (Section 6.3, Figure 12).
 *
 * Listens to 2 s row telemetry and drives per-server OOB control
 * channels.  Escalates threshold rules one at a time, releases them
 * with hysteresis, falls back to the power brake at the provisioned
 * limit, and re-issues commands whose silent failure it detects by
 * comparing desired against applied state (the guardrails Section
 * 3.3 calls for).
 */

#ifndef POLCA_CORE_POWER_MANAGER_HH
#define POLCA_CORE_POWER_MANAGER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "core/policy.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "telemetry/row_manager.hh"
#include "telemetry/smbpbi.hh"

namespace polca::core {

/** Latency/reliability parameters of the manager's control paths. */
struct ManagerOptions
{
    /** OOB capping command latency (Table 2: up to 40 s). */
    sim::Tick oobCommandLatency;

    /** Power brake actuation latency (Table 2: 5 s). */
    sim::Tick brakeLatency;

    /** Minimum time the brake is held before release is considered
     *  (limits brake-release thrash under sustained overload). */
    sim::Tick minBrakeHold;

    /** Probability an OOB capping command fails silently. */
    double smbpbiFailureProbability;

    /** Extra wait past the command latency before state
     *  verification triggers a re-issue. */
    sim::Tick verifySlack;

    /**
     * Cap/uncap decisions use a trailing mean of the readings in
     * this window; raw 2 s readings swing several percent from
     * prompt-phase multiplexing and would thrash the thresholds.
     * The brake decision always uses the raw reading (safety).
     */
    sim::Tick decisionSmoothingWindow;

    /** Minimum time a rule stays active before release is
     *  considered (uncapping is conservative; capping is not). */
    sim::Tick minRuleDwell;

    ManagerOptions()
        : oobCommandLatency(sim::secondsToTicks(40)),
          brakeLatency(sim::secondsToTicks(5)),
          minBrakeHold(sim::secondsToTicks(45)),
          smbpbiFailureProbability(0.0),
          verifySlack(sim::secondsToTicks(4)),
          decisionSmoothingWindow(sim::secondsToTicks(30)),
          minRuleDwell(sim::secondsToTicks(60))
    {}
};

/**
 * Threshold-policy power manager over one row.
 */
class PowerManager
{
  public:
    PowerManager(sim::Simulation &sim, telemetry::RowManager &telemetry,
                 double provisionedWatts, PolicyConfig policy,
                 sim::Rng rng, ManagerOptions options = ManagerOptions());

    /** Register a control target in a priority pool (one per
     *  server); call before start(). */
    void addTarget(workload::Priority pool,
                   telemetry::ClockControllable *target);

    /** Subscribe to telemetry and begin managing. */
    void start();

    const PolicyConfig &policy() const { return policy_; }
    double provisionedWatts() const { return provisionedWatts_; }

    /** @name Statistics */
    /** @{ */
    std::uint64_t powerBrakeEvents() const { return brakeEvents_; }
    std::uint64_t capCommands() const { return capCommands_; }
    std::uint64_t uncapCommands() const { return uncapCommands_; }
    std::uint64_t reissuedCommands() const { return reissued_; }

    /** Max/mean row utilization seen by telemetry. */
    double maxUtilization() const { return utilization_.max(); }
    double meanUtilization() const { return utilization_.mean(); }
    const sim::Accumulator &utilizationStats() const
    {
        return utilization_;
    }

    /** Total time the pool has spent under a non-zero desired lock. */
    sim::Tick lockedTicks(workload::Priority pool) const;

    /** Desired lock (MHz, 0 = none) currently commanded to a pool. */
    double desiredLockMhz(workload::Priority pool) const;

    /** @return true while the power brake is engaged. */
    bool brakeEngaged() const { return brakeEngaged_; }
    /** @} */

  private:
    struct PoolState
    {
        std::vector<telemetry::ClockControllable *> targets;
        std::vector<std::unique_ptr<telemetry::SmbpbiController>>
            channels;
        double commandedMhz = 0.0;      ///< last commanded lock
        sim::Tick lastCommandTime = -1;
        sim::Tick lockedTicks = 0;
    };

    void onReading(sim::Tick now, double watts);
    void updateRuleStates(sim::Tick now, double utilization);
    void applyDesiredLocks(sim::Tick now);
    void verifyApplied(sim::Tick now, PoolState &pool);
    void engageBrake(sim::Tick now);
    void releaseBrake();
    PoolState &poolState(workload::Priority pool);
    const PoolState &poolState(workload::Priority pool) const;

    sim::Simulation &sim_;
    telemetry::RowManager &telemetry_;
    double provisionedWatts_;
    PolicyConfig policy_;
    sim::Rng rng_;
    ManagerOptions options_;

    PoolState lowPool_;
    PoolState highPool_;
    std::vector<bool> ruleActive_;
    std::vector<sim::Tick> ruleActivatedAt_;
    std::deque<std::pair<sim::Tick, double>> recentReadings_;
    double smoothedSum_ = 0.0;
    bool started_ = false;
    bool brakeEngaged_ = false;
    sim::Tick brakeEngagedAt_ = 0;
    sim::Tick lastReadingTime_ = 0;

    std::uint64_t brakeEvents_ = 0;
    std::uint64_t capCommands_ = 0;
    std::uint64_t uncapCommands_ = 0;
    std::uint64_t reissued_ = 0;
    sim::Accumulator utilization_;
};

} // namespace polca::core

#endif // POLCA_CORE_POWER_MANAGER_HH
